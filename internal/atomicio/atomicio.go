// Package atomicio provides crash-safe file writes: content lands in
// a temporary file in the destination directory and is renamed over
// the target only after a successful write and sync. A reader (or a
// restarted process) therefore sees either the old file or the
// complete new one — never a truncated JSON report from a run that
// was interrupted mid-write.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile writes the output of fn to path atomically. The temporary
// file is created in path's directory (rename is only atomic within
// one filesystem) and removed on any error. The file is synced before
// the rename so a crash immediately after cannot surface an empty
// renamed file on journaling filesystems.
func WriteFile(path string, fn func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = fn(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	// CreateTemp uses 0600; published reports should have normal
	// permissions (subject to umask-free chmod).
	if err = tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: %w", err)
	}
	// The rename itself lives in the directory: without a directory
	// fsync, a crash after this return can roll the directory entry
	// back to the old file even though the data blocks are on disk.
	if err = syncDir(dir); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a completed rename survives a crash.
// A hook variable so tests can assert it runs on the write path.
var syncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		// The rename already succeeded; an unopenable directory (e.g.
		// search-only permissions) should not fail the write.
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems (and all of Windows) reject directory
		// fsync; the write is still complete and atomic.
		return nil
	}
	return nil
}

// WriteFileBytes is WriteFile for pre-rendered content.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
