package atomicio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileBytes(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("new content")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new content" {
		t.Fatalf("content = %q", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Fatalf("mode = %v, want 0644", info.Mode().Perm())
	}
}

// TestWriteFileFailureLeavesOldContent is the whole point of the
// package: a writer that dies mid-stream must not clobber or truncate
// the previous report.
func TestWriteFileFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	if err := WriteFileBytes(path, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("interrupted mid-write")
	err := WriteFile(path, func(w io.Writer) error {
		fmt.Fprint(w, `{"ok":`) // truncated JSON...
		return boom             // ...then the run dies
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the writer's error", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"ok":true}` {
		t.Fatalf("old content clobbered: %q", got)
	}
	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

// TestWriteFileSyncsParentDir asserts the directory fsync runs on the
// successful write path, after the rename has landed: without it a
// crash can roll the directory entry back to the old file even though
// the new data blocks are on disk.
func TestWriteFileSyncsParentDir(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")

	var syncedDirs []string
	orig := syncDir
	syncDir = func(d string) error {
		// The rename must already be visible when the dir sync runs.
		if got, err := os.ReadFile(path); err != nil || string(got) != "payload" {
			t.Errorf("dir sync before rename landed: %q, %v", got, err)
		}
		syncedDirs = append(syncedDirs, filepath.Clean(d))
		return orig(d)
	}
	defer func() { syncDir = orig }()

	if err := WriteFileBytes(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if len(syncedDirs) != 1 || syncedDirs[0] != filepath.Clean(dir) {
		t.Fatalf("parent dir not synced: %v (want [%s])", syncedDirs, dir)
	}

	// A failed write must not reach the directory sync (nothing was
	// renamed, so there is nothing to persist).
	syncedDirs = nil
	boom := errors.New("writer failed")
	_ = WriteFile(path, func(w io.Writer) error { return boom })
	if len(syncedDirs) != 0 {
		t.Fatalf("dir synced on failed write: %v", syncedDirs)
	}

	// And a dir-sync error propagates out of WriteFile.
	syncDir = func(string) error { return boom }
	if err := WriteFileBytes(path, []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("dir-sync error not propagated: %v", err)
	}
}

func TestWriteFileNoDirPrefix(t *testing.T) {
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if err := WriteFileBytes("bare.json", []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("bare.json")
	if err != nil || string(got) != "x" {
		t.Fatalf("got %q, %v", got, err)
	}
}
