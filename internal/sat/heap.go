package sat

// varHeap is an indexed max-heap over variables ordered by VSIDS
// activity. It supports decrease/increase-key via the position index,
// which plain container/heap cannot do without O(n) scans.
type varHeap struct {
	act   *[]float64 // shared activity array, indexed by Var
	heap  []Var      // heap of variables
	index []int32    // var -> position in heap, -1 if absent
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

func (h *varHeap) growTo(n int) {
	for len(h.index) < n {
		h.index = append(h.index, -1)
	}
}

func (h *varHeap) inHeap(v Var) bool {
	return int(v) < len(h.index) && h.index[v] >= 0
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) lt(a, b Var) bool { return (*h.act)[a] > (*h.act)[b] }

func (h *varHeap) percolateUp(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) >> 1
		if !h.lt(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.index[h.heap[i]] = int32(i)
		i = parent
	}
	h.heap[i] = v
	h.index[v] = int32(i)
}

func (h *varHeap) percolateDown(i int) {
	v := h.heap[i]
	for {
		left := 2*i + 1
		if left >= len(h.heap) {
			break
		}
		child := left
		if right := left + 1; right < len(h.heap) && h.lt(h.heap[right], h.heap[left]) {
			child = right
		}
		if !h.lt(h.heap[child], v) {
			break
		}
		h.heap[i] = h.heap[child]
		h.index[h.heap[i]] = int32(i)
		i = child
	}
	h.heap[i] = v
	h.index[v] = int32(i)
}

// insert adds v if absent.
func (h *varHeap) insert(v Var) {
	h.growTo(int(v) + 1)
	if h.inHeap(v) {
		return
	}
	h.index[v] = int32(len(h.heap))
	h.heap = append(h.heap, v)
	h.percolateUp(len(h.heap) - 1)
}

// decrease re-establishes heap order after v's activity increased
// (moves it toward the root of the max-heap).
func (h *varHeap) decrease(v Var) {
	if h.inHeap(v) {
		h.percolateUp(int(h.index[v]))
	}
}

// removeMin pops the highest-activity variable.
func (h *varHeap) removeMin() Var {
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.index[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.index[last] = 0
		h.percolateDown(0)
	}
	return v
}

// rebuild re-heapifies after a bulk activity rescale.
func (h *varHeap) rebuild() {
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.percolateDown(i)
	}
}
