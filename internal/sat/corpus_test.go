package sat

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// readDIMACSClauses parses a corpus file into plain clause lists, for
// checking models independently of the solver's own clause database
// (which drops satisfied/false literals during AddClause).
func readDIMACSClauses(t *testing.T, path string) (nVars int, clauses [][]int) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	var cur []int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			nVars, _ = strconv.Atoi(fields[2])
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				t.Fatalf("%s: bad literal %q", path, tok)
			}
			if v == 0 {
				clauses = append(clauses, cur)
				cur = nil
				continue
			}
			cur = append(cur, v)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return nVars, clauses
}

func loadCorpusSolver(t *testing.T, path string, cfg Config, withProof bool) *Solver {
	t.Helper()
	s := NewWithConfig(cfg)
	if withProof {
		s.StartProof()
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ParseDIMACSInto(f, s); err != nil {
		t.Fatal(err)
	}
	return s
}

// checkModel verifies that the solver's model satisfies every original
// clause of the instance.
func checkModel(t *testing.T, s *Solver, clauses [][]int) {
	t.Helper()
	for _, cl := range clauses {
		sat := false
		for _, dl := range cl {
			v := dl
			if v < 0 {
				v = -v
			}
			l := MkLit(Var(v-1), dl < 0)
			if s.ModelValue(l) != LFalse {
				// LTrue satisfies outright; LUndef means the variable
				// is unconstrained, so either phase works.
				sat = true
				break
			}
		}
		if !sat {
			t.Fatalf("model does not satisfy clause %v", cl)
		}
	}
}

// bruteForceSAT decides small instances by exhaustive enumeration.
func bruteForceSAT(nVars int, clauses [][]int) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, cl := range clauses {
			sat := false
			for _, dl := range cl {
				v := dl
				if v < 0 {
					v = -v
				}
				bit := m>>(v-1)&1 == 1
				if bit == (dl > 0) {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// litSet is a clause as a set, the currency of the proof checker.
type litSet map[Lit]bool

// resolveSeq checks a resolution chain step by step: each pivot must
// occur with opposite signs in the running resolvent and the next
// antecedent; the pivot literals are removed and the rest unioned.
func resolveSeq(t *testing.T, clauses map[int32]litSet, chain []int32, pivots []Var) litSet {
	t.Helper()
	if len(chain) != len(pivots)+1 {
		t.Fatalf("chain length %d does not match %d pivots", len(chain), len(pivots))
	}
	base, ok := clauses[chain[0]]
	if !ok {
		t.Fatalf("chain references unknown clause id %d", chain[0])
	}
	cur := make(litSet, len(base))
	for l := range base {
		cur[l] = true
	}
	for i, ant := range chain[1:] {
		antSet, ok := clauses[ant]
		if !ok {
			t.Fatalf("chain references unknown clause id %d", ant)
		}
		pv := pivots[i]
		pos, neg := MkLit(pv, false), MkLit(pv, true)
		var inCur, inAnt Lit
		switch {
		case cur[pos] && antSet[neg]:
			inCur, inAnt = pos, neg
		case cur[neg] && antSet[pos]:
			inCur, inAnt = neg, pos
		default:
			t.Fatalf("pivot %d does not occur with opposite signs (step %d)", pv, i)
		}
		delete(cur, inCur)
		for l := range antSet {
			if l != inAnt {
				cur[l] = true
			}
		}
	}
	return cur
}

// checkRefutation replays the proof log: every learnt clause is
// derived by its recorded chain, and the final chain must resolve to
// the empty clause.
func checkRefutation(t *testing.T, p *Proof) {
	t.Helper()
	if !p.HasFinal() {
		t.Fatal("UNSAT verdict but no empty-clause derivation recorded")
	}
	clauses := make(map[int32]litSet)
	for id := int32(1); id <= p.MaxID(); id++ {
		if root := p.RootLits(id); root != nil || p.RootPart(id) != 0 {
			set := make(litSet, len(root))
			for _, l := range root {
				set[l] = true
			}
			clauses[id] = set
			continue
		}
		chain, pivots, ok := p.Chain(id)
		if !ok {
			t.Fatalf("clause id %d is neither root nor learnt", id)
		}
		clauses[id] = resolveSeq(t, clauses, chain, pivots)
	}
	final := resolveSeq(t, clauses, p.FinalChain, p.FinalPivots)
	if len(final) != 0 {
		t.Fatalf("final chain resolves to %v, want empty clause", final)
	}
}

// TestDIMACSCorpus is the safety net for the clause-arena kernel: it
// runs every corpus formula under the default (Glucose) and the
// Luby-fallback configurations, requires identical verdicts, validates
// models on SAT, checks refutation proofs on UNSAT, and cross-checks
// small instances against brute force.
func TestDIMACSCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.cnf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus")
	}
	configs := []struct {
		name string
		cfg  Config
	}{
		{"glucose", DefaultConfig()},
		{"luby", Config{Restart: RestartLuby}},
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			nVars, clauses := readDIMACSClauses(t, path)
			verdicts := make(map[string]Status)
			for _, tc := range configs {
				s := loadCorpusSolver(t, path, tc.cfg, false)
				st := s.Solve()
				if st == Unknown {
					t.Fatalf("%s: solver gave up without budget", tc.name)
				}
				verdicts[tc.name] = st
				if st == Sat {
					checkModel(t, s, clauses)
				}
			}
			if verdicts["glucose"] != verdicts["luby"] {
				t.Fatalf("verdict mismatch: glucose=%v luby=%v",
					verdicts["glucose"], verdicts["luby"])
			}
			if nVars <= 16 {
				want := liftStatus(bruteForceSAT(nVars, clauses))
				if verdicts["glucose"] != want {
					t.Fatalf("verdict %v disagrees with brute force %v",
						verdicts["glucose"], want)
				}
			}
			if verdicts["glucose"] == Unsat {
				// Re-solve with proof logging under both configs and
				// check each refutation end to end.
				for _, tc := range configs {
					s := loadCorpusSolver(t, path, tc.cfg, true)
					if st := s.Solve(); st != Unsat {
						t.Fatalf("%s+proof: verdict %v, want Unsat", tc.name, st)
					}
					checkRefutation(t, s.Proof())
				}
			}
		})
	}
}

func liftStatus(sat bool) Status {
	if sat {
		return Sat
	}
	return Unsat
}
