package sat

import (
	"testing"
	"time"
)

func TestInterruptPreSet(t *testing.T) {
	s := New()
	pigeonhole(s, 7, 6)
	s.Interrupt()
	if got := s.Solve(); got != Unknown {
		t.Fatalf("pre-interrupted solve: got %v, want Unknown", got)
	}
	if !s.Interrupted() {
		t.Fatal("Interrupted() must stay true until cleared")
	}
}

func TestClearInterruptResumes(t *testing.T) {
	s := New()
	a := PosLit(s.NewVar())
	s.AddClause(a)
	s.Interrupt()
	if got := s.Solve(); got != Unknown {
		t.Fatalf("interrupted solve: got %v, want Unknown", got)
	}
	s.ClearInterrupt()
	if got := s.Solve(); got != Sat {
		t.Fatalf("solve after ClearInterrupt: got %v, want Sat", got)
	}
}

// TestInterruptConcurrent fires Interrupt from another goroutine while
// the solver grinds on a hard pigeonhole instance, and checks that
// Solve returns Unknown promptly instead of running to completion.
func TestInterruptConcurrent(t *testing.T) {
	s := New()
	pigeonhole(s, 12, 11) // minutes of work if uninterrupted
	go func() {
		time.Sleep(50 * time.Millisecond)
		s.Interrupt()
	}()
	done := make(chan Status, 1)
	go func() { done <- s.Solve() }()
	select {
	case got := <-done:
		if got != Unknown {
			t.Fatalf("interrupted solve: got %v, want Unknown", got)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("solver did not react to Interrupt within 30s")
	}
	// The solver must be reusable after clearing the flag.
	s.ClearInterrupt()
	s2 := New()
	pigeonhole(s2, 5, 5)
	if got := s2.Solve(); got != Sat {
		t.Fatalf("fresh solve after interrupt test: got %v, want Sat", got)
	}
}
