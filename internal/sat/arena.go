package sat

import (
	"math"
	"unsafe"
)

// CRef is a clause reference: the word offset of a clause header in
// the solver's arena. Clause storage is one flat []uint32 (MiniSat /
// CaDiCaL style), so BCP walks contiguous memory instead of chasing
// *clause pointers, and a clause handle is a 4-byte offset rather
// than an 8-byte pointer.
type CRef uint32

// CRefUndef marks "no clause" (decision variables, unit reasons).
const CRefUndef CRef = ^CRef(0)

// Clause layout in the arena, starting at offset c:
//
//	c+0              header: size<<2 | learnt(bit 0) | reloc(bit 1)
//	c+1              proof id (0 when proof logging is off), or the
//	                 forwarding CRef while the reloc bit is set
//	c+2              activity bits (float32; meaningful for learnts)
//	c+3              LBD (literal block distance; 0 for problem clauses)
//	c+4 .. c+4+size  literals
//
// The fixed 4-word prefix keeps literal offsets constant, which is
// what the propagation inner loop wants; the two words wasted on
// problem clauses are far cheaper than the pointer+slice-header+alloc
// overhead of the previous representation.
const (
	claID   = 1
	claAct  = 2
	claLBD  = 3
	claLits = 4

	flagLearnt = 1
	flagReloc  = 2
)

// arena is the flat clause store. wasted counts words occupied by
// freed clauses; when it grows past a threshold the solver compacts
// the arena (garbageCollect) using forwarding references.
type arena struct {
	data   []uint32
	wasted uint32
}

// alloc appends a clause and returns its reference.
func (a *arena) alloc(lits []Lit, learnt bool, id int32) CRef {
	c := CRef(len(a.data))
	hdr := uint32(len(lits)) << 2
	if learnt {
		hdr |= flagLearnt
	}
	a.data = append(a.data, hdr, uint32(id), 0, 0)
	for _, l := range lits {
		a.data = append(a.data, uint32(l))
	}
	return c
}

// free retires a detached clause. The words stay in place (nothing
// references them) and are reclaimed by the next compaction.
func (a *arena) free(c CRef) {
	a.wasted += claLits + uint32(a.size(c))
}

func (a *arena) size(c CRef) int     { return int(a.data[c] >> 2) }
func (a *arena) isLearnt(c CRef) bool { return a.data[c]&flagLearnt != 0 }

func (a *arena) id(c CRef) int32 { return int32(a.data[c+claID]) }

func (a *arena) act(c CRef) float32      { return math.Float32frombits(a.data[c+claAct]) }
func (a *arena) setAct(c CRef, f float32) { a.data[c+claAct] = math.Float32bits(f) }

func (a *arena) lbd(c CRef) uint32       { return a.data[c+claLBD] }
func (a *arena) setLBD(c CRef, d uint32) { a.data[c+claLBD] = d }

func (a *arena) lit(c CRef, i int) Lit { return Lit(a.data[c+claLits+CRef(i)]) }

// lits returns the clause's literals as a slice aliasing the arena.
// Lit is int32 and arena words are uint32, so the view is a direct
// reinterpretation. The slice is invalidated by any arena alloc or
// compaction — use it transiently.
func (a *arena) lits(c CRef) []Lit {
	return unsafe.Slice((*Lit)(unsafe.Pointer(&a.data[c+claLits])), a.size(c))
}
