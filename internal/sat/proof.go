package sat

// Proof records a resolution proof while the solver runs, with just
// enough structure to compute McMillan interpolants afterwards
// (internal/itp): every clause gets an id; root clauses record their
// literals and partition (A or B); learnt clauses record a resolution
// chain — an initial antecedent followed by (antecedent, pivot) pairs.
//
// Proof logging restricts the solver slightly: conflict-clause
// minimization is disabled and Solve must be called without
// assumptions (encode assumptions as unit clauses instead).
type Proof struct {
	lastID int32

	rootLits map[int32][]Lit
	rootPart map[int32]byte // 1 = A, 2 = B
	curPart  byte

	chains map[int32]chainRec

	// Empty-clause derivation, filled in when the solver refutes the
	// formula at decision level 0.
	FinalChain  []int32
	FinalPivots []Var
	hasFinal    bool
}

type chainRec struct {
	chain  []int32
	pivots []Var
}

// PartA and PartB label the two partitions of an interpolation problem.
const (
	PartA byte = 1
	PartB byte = 2
)

// StartProof enables proof logging on s. It must be called before any
// clause is added. Clauses added afterwards belong to partition A
// until BeginB is called.
//
// Proof logging is incompatible with CNF preprocessing: the pass
// rewrites the formula, so a resolution proof over the simplified
// clauses would not refute the original ones. StartProof panics when
// the solver's Config enables preprocessing; callers must pick one.
func (s *Solver) StartProof() *Proof {
	if s.cfg.Preprocess.Enable {
		panic("sat: proof logging is incompatible with preprocessing (Config.Preprocess)")
	}
	if len(s.clauses) > 0 || len(s.trail) > 0 || len(s.assigns) > 0 {
		panic("sat: StartProof must be called on a fresh solver")
	}
	s.proof = &Proof{
		rootLits: make(map[int32][]Lit),
		rootPart: make(map[int32]byte),
		chains:   make(map[int32]chainRec),
		curPart:  PartA,
	}
	s.zeroNeed = make(map[Var]bool)
	return s.proof
}

// Proof returns the active proof log, or nil.
func (s *Solver) Proof() *Proof { return s.proof }

// BeginB marks the start of partition B: clauses added from now on
// are B-clauses for interpolation.
func (p *Proof) BeginB() { p.curPart = PartB }

// HasFinal reports whether an empty-clause derivation was recorded.
func (p *Proof) HasFinal() bool { return p.hasFinal }

// RootLits returns the literals of root clause id (nil for learnt ids).
func (p *Proof) RootLits(id int32) []Lit { return p.rootLits[id] }

// RootPart returns PartA or PartB for a root clause id, 0 otherwise.
func (p *Proof) RootPart(id int32) byte { return p.rootPart[id] }

// Chain returns the resolution chain of a learnt clause id.
// ok is false for root ids.
func (p *Proof) Chain(id int32) (chain []int32, pivots []Var, ok bool) {
	rec, ok := p.chains[id]
	return rec.chain, rec.pivots, ok
}

// MaxID returns the largest clause id allocated so far.
func (p *Proof) MaxID() int32 { return p.lastID }

// GlobalVars returns the set of variables occurring in B root clauses,
// which is the variable scope of a McMillan interpolant.
func (p *Proof) GlobalVars() map[Var]bool {
	g := make(map[Var]bool)
	for id, part := range p.rootPart {
		if part == PartB {
			for _, l := range p.rootLits[id] {
				g[l.Var()] = true
			}
		}
	}
	return g
}

func (p *Proof) addRoot(lits []Lit) {
	p.lastID++
	p.rootLits[p.lastID] = append([]Lit(nil), lits...)
	p.rootPart[p.lastID] = p.curPart
}

func (p *Proof) addLearnt(lits []Lit, chain []int32, pivots []Var) {
	p.lastID++
	p.chains[p.lastID] = chainRec{
		chain:  append([]int32(nil), chain...),
		pivots: append([]Var(nil), pivots...),
	}
	_ = lits
}

// addFinal records the derivation of the empty clause from a clause
// conflicting at decision level 0. Every literal of confl (and,
// transitively, of the antecedents pulled in) is resolved away using
// the level-0 implication graph.
func (s *Solver) addFinal(confl CRef) {
	p := s.proof
	chain := []int32{s.ca.id(confl)}
	var pivots []Var
	need := make(map[Var]bool)
	for _, l := range s.ca.lits(confl) {
		need[l.Var()] = true
	}
	for i := len(s.trail) - 1; i >= 0; i-- {
		v := s.trail[i].Var()
		if !need[v] {
			continue
		}
		if r := s.reason[v]; r != CRefUndef {
			chain = append(chain, s.ca.id(r))
			pivots = append(pivots, v)
			for _, q := range s.ca.lits(r)[1:] {
				need[q.Var()] = true
			}
		} else {
			chain = append(chain, s.unitID[v])
			pivots = append(pivots, v)
		}
	}
	p.FinalChain = chain
	p.FinalPivots = pivots
	p.hasFinal = true
}

// resolveZeroCone appends, to an analyze chain, the resolutions with
// level-0 antecedents needed to eliminate literals that analyze
// silently dropped because they were falsified at level 0.
func (s *Solver) resolveZeroCone(chain []int32, pivots []Var) ([]int32, []Var) {
	if len(s.zeroNeed) == 0 {
		return chain, pivots
	}
	limit := len(s.trail)
	if len(s.trailLim) > 0 {
		limit = int(s.trailLim[0])
	}
	for i := limit - 1; i >= 0; i-- {
		v := s.trail[i].Var()
		if !s.zeroNeed[v] {
			continue
		}
		delete(s.zeroNeed, v)
		if r := s.reason[v]; r != CRefUndef {
			chain = append(chain, s.ca.id(r))
			pivots = append(pivots, v)
			for _, q := range s.ca.lits(r)[1:] {
				s.zeroNeed[q.Var()] = true
			}
		} else {
			chain = append(chain, s.unitID[v])
			pivots = append(pivots, v)
		}
	}
	clear(s.zeroNeed)
	return chain, pivots
}
