package sat

// CNF preprocessing in the SatELite tradition (Eén & Biere, SAT'05):
// bounded variable elimination by clause distribution, forward and
// backward subsumption with self-subsuming resolution, and clause
// vivification with failed-literal probing on the largest clauses.
// The pass runs over a captured clause list — not a live solver — so
// one simplification can be shared by every member of a portfolio and
// the simplified formula can key a solve cache.
//
// Eliminating a variable removes it from the formula, so a satisfying
// assignment of the simplified CNF says nothing about it. The
// Reconstruction stack records, per eliminated variable, enough of its
// original clauses to re-derive an exact value (the MiniSat/SatELite
// extend-model discipline): Extend turns any model of the simplified
// formula into a model of the original one.
//
// Preprocessing is intentionally proof-free: it rewrites the formula,
// so a resolution proof logged against the simplified clauses would
// not refute the original ones. StartProof refuses to run on a solver
// whose Config enables preprocessing.

import (
	"sort"
	"time"
)

// PrepConfig tunes the preprocessing pass. The zero value means
// "disabled"; set Enable and leave the other knobs zero for defaults.
type PrepConfig struct {
	// Enable turns the pass on.
	Enable bool
	// MaxOccs bounds variable elimination: a variable occurring more
	// than MaxOccs times in each polarity is never a candidate (its
	// resolvent set is quadratic). Default 20.
	MaxOccs int
	// Growth is the clause-count growth tolerated per elimination: a
	// variable is eliminated only when the non-tautological resolvents
	// number at most (occurrences removed + Growth). Default 0 — the
	// classic "never grow the formula" bound.
	Growth int
	// MaxResolventLen skips eliminations that would create a resolvent
	// longer than this. Default 32.
	MaxResolventLen int
	// VivifyMax bounds vivification to the VivifyMax largest clauses
	// per round (the "top tier": long clauses are where literal drops
	// pay most). Default 64.
	VivifyMax int
	// ProbeMax bounds failed-literal probing to the ProbeMax
	// most-occurring unassigned variables per round. Default 64.
	ProbeMax int
	// Rounds bounds the subsume→vivify→eliminate fixpoint iteration.
	// Default 3.
	Rounds int
}

// DefaultPrepConfig returns the enabled pass with default bounds.
func DefaultPrepConfig() PrepConfig {
	c := PrepConfig{Enable: true}
	c.applyDefaults()
	return c
}

// applyDefaults fills zero knobs so hand-built configs stay valid.
func (c *PrepConfig) applyDefaults() {
	if c.MaxOccs <= 0 {
		c.MaxOccs = 20
	}
	if c.MaxResolventLen <= 0 {
		c.MaxResolventLen = 32
	}
	if c.VivifyMax <= 0 {
		c.VivifyMax = 64
	}
	if c.ProbeMax <= 0 {
		c.ProbeMax = 64
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
}

// PrepStats counts the work of one preprocessing pass. All fields are
// additive so callers can aggregate across passes.
type PrepStats struct {
	VarsEliminated   int64 // variables removed by bounded elimination
	ClausesSubsumed  int64 // clauses deleted by (backward) subsumption
	LitsStrengthened int64 // literals removed by self-subsumption + vivification
	FailedLits       int64 // units derived by failed-literal probing
	Rounds           int64 // simplification rounds actually run
	PrepTime         time.Duration
}

// Add accumulates o into s.
func (s *PrepStats) Add(o PrepStats) {
	s.VarsEliminated += o.VarsEliminated
	s.ClausesSubsumed += o.ClausesSubsumed
	s.LitsStrengthened += o.LitsStrengthened
	s.FailedLits += o.FailedLits
	s.Rounds += o.Rounds
	s.PrepTime += o.PrepTime
}

// Reconstruction is the model-extension stack of one preprocessing
// pass. Records are pushed in elimination order and replayed in
// reverse by Extend; each record is a clause of the eliminated
// variable with that variable's literal stored last (per variable:
// the clauses of its less-occurring polarity, then a unit of the
// opposite literal, so the unit seeds the default value and the
// clauses override it where needed).
type Reconstruction struct {
	lits []Lit
	lens []int32
	vars int64 // eliminated variables, for sanity reporting
}

// Eliminated returns the number of variables the stack re-derives.
func (r *Reconstruction) Eliminated() int {
	if r == nil {
		return 0
	}
	return int(r.vars)
}

// push records one clause with the eliminated literal last.
func (r *Reconstruction) push(cl []Lit, elim Lit) {
	n := int32(0)
	for _, l := range cl {
		if l != elim {
			r.lits = append(r.lits, l)
			n++
		}
	}
	r.lits = append(r.lits, elim)
	r.lens = append(r.lens, n+1)
}

// Extend rewrites model — indexed by variable, sized to the original
// variable count — so that every eliminated variable is assigned a
// value consistent with the original formula. Values of surviving
// variables are never touched; given a model of the simplified
// formula, the result satisfies the original one. A nil receiver is a
// no-op, so callers can thread the stack unconditionally.
func (r *Reconstruction) Extend(model []bool) {
	if r == nil {
		return
	}
	end := len(r.lits)
	for i := len(r.lens) - 1; i >= 0; i-- {
		n := int(r.lens[i])
		cl := r.lits[end-n : end]
		end -= n
		satisfied := false
		for _, l := range cl[:n-1] {
			if model[l.Var()] == !l.Sign() {
				satisfied = true
				break
			}
		}
		if !satisfied {
			last := cl[n-1]
			model[last.Var()] = !last.Sign()
		}
	}
}

// PrepResult is the outcome of a Preprocess pass: the simplified
// clause list in the flat capture layout (variable numbering is
// unchanged — eliminated variables simply no longer occur), the
// reconstruction stack, and the work counters. When Unsat is set the
// pass refuted the formula outright and the clause list is a single
// empty clause, so replaying it into a solver yields Unsat without
// special-casing.
type PrepResult struct {
	NumVars int
	Lits    []Lit
	Ends    []int32
	Rec     *Reconstruction
	Stats   PrepStats
	Unsat   bool
}

// pclause is one live clause of the preprocessor: literals kept
// sorted (subset tests are merges), with a variable-membership
// signature for the subsumption prefilter — the same FNV-free
// fold-to-64-bits trick cec.Sweep uses for signature buckets.
type pclause struct {
	lits []Lit
	sig  uint64
	dead bool
}

func varSig(lits []Lit) uint64 {
	var s uint64
	for _, l := range lits {
		s |= 1 << (uint(l.Var()) % 64)
	}
	return s
}

// prep is the working state of one pass.
type prep struct {
	cfg     PrepConfig
	nVars   int
	frozen  []bool
	clauses []pclause
	occ     [][]int32 // per literal index: clause indices (lazily stale)
	assigns []LBool   // top-level units
	unitQ   []Lit
	elim    []bool
	rec     *Reconstruction
	stats   PrepStats
	unsat   bool

	// probe scratch: epoch-stamped temporary assignment.
	tmpVal   []LBool
	tmpTrail []Lit
}

// Preprocess simplifies the flat clause list (nVars variables;
// clause i is lits[ends[i-1]:ends[i]]) and returns the simplified
// formula plus the reconstruction stack. frozen, when non-nil, marks
// variables that must survive: assumption and readback variables of
// incremental callers are never eliminated, so their literals stay
// exact on the simplified formula. The input slices are not mutated,
// and the pass is fully deterministic — same input, same output.
func Preprocess(nVars int, lits []Lit, ends []int32, frozen []bool, cfg PrepConfig) *PrepResult {
	start := time.Now()
	cfg.applyDefaults()
	p := &prep{
		cfg:     cfg,
		nVars:   nVars,
		frozen:  frozen,
		occ:     make([][]int32, 2*nVars),
		assigns: make([]LBool, nVars),
		elim:    make([]bool, nVars),
		rec:     &Reconstruction{},
		tmpVal:  make([]LBool, nVars),
	}
	var begin int32
	for _, end := range ends {
		p.addClause(lits[begin:end])
		begin = end
	}
	p.propagate()
	for round := 0; round < cfg.Rounds && !p.unsat; round++ {
		p.stats.Rounds++
		changed := p.subsumeAll()
		if p.unsat {
			break
		}
		if p.vivifyAndProbe() {
			changed = true
		}
		if p.unsat {
			break
		}
		if p.eliminateVars() {
			changed = true
		}
		if !changed {
			break
		}
	}
	res := &PrepResult{NumVars: nVars, Rec: p.rec, Stats: p.stats}
	res.Stats.PrepTime = time.Since(start)
	if p.unsat {
		res.Unsat = true
		res.Ends = []int32{0}
		return res
	}
	// Deterministic output order: the derived units in variable order,
	// then every surviving clause in arena order.
	for v := 0; v < nVars; v++ {
		switch p.assigns[v] {
		case LTrue:
			res.Lits = append(res.Lits, PosLit(Var(v)))
			res.Ends = append(res.Ends, int32(len(res.Lits)))
		case LFalse:
			res.Lits = append(res.Lits, NegLit(Var(v)))
			res.Ends = append(res.Ends, int32(len(res.Lits)))
		}
	}
	for i := range p.clauses {
		c := &p.clauses[i]
		if c.dead {
			continue
		}
		res.Lits = append(res.Lits, c.lits...)
		res.Ends = append(res.Ends, int32(len(res.Lits)))
	}
	return res
}

func (p *prep) value(l Lit) LBool {
	v := p.assigns[l.Var()]
	if l.Sign() {
		return v.Not()
	}
	return v
}

// enqueue asserts a top-level unit.
func (p *prep) enqueue(l Lit) {
	switch p.value(l) {
	case LTrue:
		return
	case LFalse:
		p.unsat = true
		return
	}
	if l.Sign() {
		p.assigns[l.Var()] = LFalse
	} else {
		p.assigns[l.Var()] = LTrue
	}
	p.unitQ = append(p.unitQ, l)
}

// addClause normalizes (sort, dedupe, drop false literals, skip
// satisfied and tautological clauses) and registers a clause.
func (p *prep) addClause(in []Lit) {
	if p.unsat {
		return
	}
	cl := make([]Lit, 0, len(in))
	for _, l := range in {
		switch p.value(l) {
		case LTrue:
			return // satisfied at top level
		case LFalse:
			continue
		}
		cl = append(cl, l)
	}
	sort.Slice(cl, func(i, j int) bool { return cl[i] < cl[j] })
	out := cl[:0]
	var prev Lit = LitUndef
	for _, l := range cl {
		if l == prev {
			continue
		}
		if prev != LitUndef && l == prev.Not() {
			return // tautology
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		p.unsat = true
		return
	case 1:
		p.enqueue(out[0])
		return
	}
	idx := int32(len(p.clauses))
	p.clauses = append(p.clauses, pclause{lits: out, sig: varSig(out)})
	for _, l := range out {
		p.occ[l] = append(p.occ[l], idx)
	}
}

// propagate drains the top-level unit queue: clauses satisfied by a
// unit die, clauses containing its negation are strengthened.
func (p *prep) propagate() {
	for len(p.unitQ) > 0 && !p.unsat {
		l := p.unitQ[0]
		p.unitQ = p.unitQ[1:]
		// Occurrence lists are lazily stale: entries may reference
		// clauses that were strengthened past the literal, so verify
		// membership before acting.
		for _, ci := range p.occ[l] {
			c := &p.clauses[ci]
			if !c.dead && containsLit(c.lits, l) {
				c.dead = true
			}
		}
		p.occ[l] = nil
		neg := l.Not()
		for _, ci := range p.occ[neg] {
			c := &p.clauses[ci]
			if c.dead || !containsLit(c.lits, neg) {
				continue
			}
			p.removeLit(ci, neg)
			if p.unsat {
				return
			}
		}
		p.occ[neg] = nil
	}
}

// removeLit strengthens clause ci by deleting literal l, retiring the
// clause if it collapses to a unit.
func (p *prep) removeLit(ci int32, l Lit) {
	c := &p.clauses[ci]
	out := c.lits[:0]
	for _, x := range c.lits {
		if x != l {
			out = append(out, x)
		}
	}
	c.lits = out
	c.sig = varSig(out)
	switch len(out) {
	case 0:
		p.unsat = true
	case 1:
		c.dead = true
		p.enqueue(out[0])
	}
}

// compactOcc drops stale entries (dead clauses, or clauses that no
// longer contain l after strengthening) from one occurrence list and
// returns it.
func (p *prep) compactOcc(l Lit) []int32 {
	list := p.occ[l]
	out := list[:0]
	for _, ci := range list {
		c := &p.clauses[ci]
		if c.dead {
			continue
		}
		if !containsLit(c.lits, l) {
			continue
		}
		out = append(out, ci)
	}
	p.occ[l] = out
	return out
}

func containsLit(sorted []Lit, l Lit) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= l })
	return i < len(sorted) && sorted[i] == l
}

// subset reports a ⊆ b for sorted literal slices.
func subset(a, b []Lit) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, l := range a {
		for j < len(b) && b[j] < l {
			j++
		}
		if j == len(b) || b[j] != l {
			return false
		}
		j++
	}
	return true
}

// subsetExcept reports (a \ {skip}) ∪ {skip.Not()} ⊆ b — the
// self-subsumption shape: a with one literal flipped is contained in
// b, so b can drop the flipped literal.
func subsetExcept(a, b []Lit, skip Lit) bool {
	if len(a) > len(b) {
		return false
	}
	flip := skip.Not()
	sawFlip := false
	j := 0
	for _, l := range a {
		if l == skip {
			l = flip
			// The flipped literal breaks the sort order of a; search b
			// directly for it instead of merging.
			if !containsLit(b, flip) {
				return false
			}
			sawFlip = true
			continue
		}
		for j < len(b) && b[j] < l {
			j++
		}
		if j == len(b) || b[j] != l {
			return false
		}
		j++
	}
	return sawFlip
}

// subsumeAll runs one backward-subsumption + self-subsuming-resolution
// pass over every live clause. Returns whether anything changed.
func (p *prep) subsumeAll() bool {
	changed := false
	for ci := range p.clauses {
		c := &p.clauses[ci]
		if c.dead || p.unsat {
			continue
		}
		// Probe the occurrence list of c's rarest literal: every clause
		// subsumed by c must contain all of c's literals.
		min := c.lits[0]
		for _, l := range c.lits[1:] {
			if len(p.occ[l]) < len(p.occ[min]) {
				min = l
			}
		}
		for _, di := range p.compactOcc(min) {
			if di == int32(ci) {
				continue
			}
			d := &p.clauses[di]
			if d.dead || len(d.lits) < len(c.lits) {
				continue
			}
			if c.sig&^d.sig != 0 {
				continue
			}
			if subset(c.lits, d.lits) {
				d.dead = true
				p.stats.ClausesSubsumed++
				changed = true
			}
		}
		// Self-subsuming resolution: for each literal l of c, a clause
		// d ⊇ (c \ {l}) ∪ {¬l} loses ¬l. The variable signature is
		// polarity-blind, so c.sig still prefilters.
		for li := 0; li < len(c.lits); li++ {
			l := c.lits[li]
			for _, di := range p.compactOcc(l.Not()) {
				d := &p.clauses[di]
				if d.dead || len(d.lits) < len(c.lits) {
					continue
				}
				if c.sig&^d.sig != 0 {
					continue
				}
				if subsetExcept(c.lits, d.lits, l) {
					p.removeLit(di, l.Not())
					p.stats.LitsStrengthened++
					changed = true
					if p.unsat {
						return changed
					}
				}
			}
			if c.dead {
				break // c itself collapsed via unit propagation below
			}
		}
		if len(p.unitQ) > 0 {
			p.propagate()
			changed = true
		}
	}
	return changed
}

// tmpAssign sets a probe-local value; returns false on conflict with
// an existing probe-local or top-level value.
func (p *prep) tmpAssign(l Lit) bool {
	switch p.value(l) {
	case LTrue:
		return true
	case LFalse:
		return false
	}
	v := l.Var()
	cur := p.tmpVal[v]
	want := LTrue
	if l.Sign() {
		want = LFalse
	}
	if cur != LUndef {
		return cur == want
	}
	p.tmpVal[v] = want
	p.tmpTrail = append(p.tmpTrail, l)
	return true
}

func (p *prep) tmpValue(l Lit) LBool {
	if v := p.value(l); v != LUndef {
		return v
	}
	t := p.tmpVal[l.Var()]
	if l.Sign() {
		return t.Not()
	}
	return t
}

func (p *prep) tmpReset() {
	for _, l := range p.tmpTrail {
		p.tmpVal[l.Var()] = LUndef
	}
	p.tmpTrail = p.tmpTrail[:0]
}

// tmpPropagate runs unit propagation over the probe-local assignment
// starting from trail position from, ignoring clause skip (the clause
// being vivified). Returns false on conflict.
func (p *prep) tmpPropagate(from int, skip int32) bool {
	for q := from; q < len(p.tmpTrail); q++ {
		neg := p.tmpTrail[q].Not()
		for _, ci := range p.occ[neg] {
			if ci == skip {
				continue
			}
			c := &p.clauses[ci]
			if c.dead || !containsLit(c.lits, neg) {
				continue
			}
			unassigned := LitUndef
			satisfied := false
			for _, x := range c.lits {
				switch p.tmpValue(x) {
				case LTrue:
					satisfied = true
				case LUndef:
					if unassigned == LitUndef {
						unassigned = x
					} else {
						unassigned = -2 // more than one
					}
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			switch unassigned {
			case LitUndef:
				return false // all false: conflict
			case -2:
			default:
				if !p.tmpAssign(unassigned) {
					return false
				}
			}
		}
	}
	return true
}

// vivifyAndProbe vivifies the VivifyMax longest clauses (assume the
// negation of each literal in turn; a conflict or an implied literal
// proves a shorter clause) and probes the ProbeMax most-occurring
// variables for failed literals. Both are equivalence-preserving.
// Returns whether anything changed.
func (p *prep) vivifyAndProbe() bool {
	changed := false
	// Top tier: live clauses of length >= 3, longest first (ties in
	// arena order, so the pass is deterministic).
	var tier []int32
	for ci := range p.clauses {
		if !p.clauses[ci].dead && len(p.clauses[ci].lits) >= 3 {
			tier = append(tier, int32(ci))
		}
	}
	sort.SliceStable(tier, func(i, j int) bool {
		return len(p.clauses[tier[i]].lits) > len(p.clauses[tier[j]].lits)
	})
	if len(tier) > p.cfg.VivifyMax {
		tier = tier[:p.cfg.VivifyMax]
	}
	for _, ci := range tier {
		if p.unsat {
			break
		}
		c := &p.clauses[ci]
		if c.dead {
			continue
		}
		lits := append([]Lit(nil), c.lits...)
		var kept []Lit
		shortened := false
		p.tmpReset()
		for _, l := range lits {
			switch p.tmpValue(l) {
			case LTrue:
				// The kept prefix already implies l: the clause shrinks
				// to kept + {l}.
				kept = append(kept, l)
				shortened = true
			case LFalse:
				// The kept prefix implies ¬l: drop l.
				shortened = true
				continue
			default:
				mark := len(p.tmpTrail)
				p.tmpAssign(l.Not())
				if !p.tmpPropagate(mark, ci) {
					kept = append(kept, l)
					shortened = true
				} else {
					kept = append(kept, l)
					continue
				}
			}
			break
		}
		p.tmpReset()
		if !shortened || len(kept) >= len(lits) {
			continue
		}
		p.stats.LitsStrengthened += int64(len(lits) - len(kept))
		changed = true
		c.dead = true // re-added below in normalized form
		p.addClause(kept)
		p.propagate()
	}
	// Failed-literal probing over the most-occurring unassigned vars.
	type cand struct {
		v    Var
		occs int
	}
	var cands []cand
	for v := 0; v < p.nVars; v++ {
		if p.assigns[v] != LUndef || p.elim[v] {
			continue
		}
		n := len(p.occ[PosLit(Var(v))]) + len(p.occ[NegLit(Var(v))])
		if n > 0 {
			cands = append(cands, cand{Var(v), n})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].occs > cands[j].occs })
	if len(cands) > p.cfg.ProbeMax {
		cands = cands[:p.cfg.ProbeMax]
	}
	for _, cd := range cands {
		if p.unsat {
			break
		}
		if p.assigns[cd.v] != LUndef {
			continue
		}
		for _, l := range [2]Lit{PosLit(cd.v), NegLit(cd.v)} {
			if p.value(l) != LUndef {
				continue
			}
			p.tmpReset()
			p.tmpAssign(l)
			ok := p.tmpPropagate(0, -1)
			p.tmpReset()
			if !ok {
				p.stats.FailedLits++
				changed = true
				p.enqueue(l.Not())
				p.propagate()
				if p.unsat {
					return changed
				}
			}
		}
	}
	return changed
}

// eliminateVars runs one bounded-variable-elimination sweep in
// ascending-occurrence order. Returns whether anything changed.
func (p *prep) eliminateVars() bool {
	type cand struct {
		v    Var
		occs int
	}
	var cands []cand
	for v := 0; v < p.nVars; v++ {
		if p.elim[v] || p.assigns[v] != LUndef {
			continue
		}
		if p.frozen != nil && p.frozen[v] {
			continue
		}
		pos := len(p.compactOcc(PosLit(Var(v))))
		neg := len(p.compactOcc(NegLit(Var(v))))
		if pos == 0 && neg == 0 {
			continue
		}
		if pos > p.cfg.MaxOccs && neg > p.cfg.MaxOccs {
			continue
		}
		cands = append(cands, cand{Var(v), pos + neg})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].occs < cands[j].occs })
	changed := false
	for _, cd := range cands {
		if p.unsat {
			break
		}
		if p.tryEliminate(cd.v) {
			changed = true
		}
	}
	return changed
}

// tryEliminate eliminates v by clause distribution when the resolvent
// set stays within the growth bound.
func (p *prep) tryEliminate(v Var) bool {
	if p.elim[v] || p.assigns[v] != LUndef {
		return false
	}
	lp, ln := PosLit(v), NegLit(v)
	pos := append([]int32(nil), p.compactOcc(lp)...)
	neg := append([]int32(nil), p.compactOcc(ln)...)
	if len(pos) == 0 && len(neg) == 0 {
		return false
	}
	limit := len(pos) + len(neg) + p.cfg.Growth
	// Count and collect non-tautological resolvents, bailing out the
	// moment the bound is exceeded.
	var resolvents [][]Lit
	for _, pi := range pos {
		for _, ni := range neg {
			r, taut := resolve(p.clauses[pi].lits, p.clauses[ni].lits, v)
			if taut {
				continue
			}
			if len(r) > p.cfg.MaxResolventLen {
				return false
			}
			resolvents = append(resolvents, r)
			if len(resolvents) > limit {
				return false
			}
		}
	}
	// Commit: push the reconstruction record (smaller polarity side
	// plus a unit of the opposite literal), retire the occurrences,
	// add the resolvents.
	if len(pos) <= len(neg) {
		for _, pi := range pos {
			p.rec.push(p.clauses[pi].lits, lp)
		}
		p.rec.push(nil, ln)
	} else {
		for _, ni := range neg {
			p.rec.push(p.clauses[ni].lits, ln)
		}
		p.rec.push(nil, lp)
	}
	p.rec.vars++
	for _, ci := range pos {
		p.clauses[ci].dead = true
	}
	for _, ci := range neg {
		p.clauses[ci].dead = true
	}
	p.occ[lp] = nil
	p.occ[ln] = nil
	p.elim[v] = true
	p.stats.VarsEliminated++
	for _, r := range resolvents {
		p.addClause(r)
		if p.unsat {
			return true
		}
	}
	p.propagate()
	return true
}

// resolve returns the resolvent of sorted clauses a (containing v
// positively) and b (containing v negatively) on v, reporting
// tautologies.
func resolve(a, b []Lit, v Var) ([]Lit, bool) {
	out := make([]Lit, 0, len(a)+len(b)-2)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		la, lb := a[i], b[j]
		switch {
		case la.Var() == v:
			i++
		case lb.Var() == v:
			j++
		case la == lb:
			out = append(out, la)
			i++
			j++
		case la == lb.Not():
			return nil, true
		case la < lb:
			out = append(out, la)
			i++
		default:
			out = append(out, lb)
			j++
		}
	}
	for ; i < len(a); i++ {
		if a[i].Var() != v {
			out = append(out, a[i])
		}
	}
	for ; j < len(b); j++ {
		if b[j].Var() != v {
			out = append(out, b[j])
		}
	}
	return out, false
}
