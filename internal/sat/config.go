package sat

// RestartPolicy selects the solver's restart strategy.
type RestartPolicy uint8

const (
	// RestartGlucose drives restarts with the Glucose fast/slow
	// comparison: restart when the average LBD of the last LBDWindow
	// conflicts exceeds RestartMargin times the all-time average,
	// with trail-size blocking to protect runs that are close to a
	// model. This is the default.
	RestartGlucose RestartPolicy = iota
	// RestartLuby restarts on the Luby sequence scaled by LubyBase
	// (the pre-Glucose MiniSat behavior), kept as a fallback knob.
	RestartLuby
)

func (p RestartPolicy) String() string {
	if p == RestartLuby {
		return "luby"
	}
	return "glucose"
}

// PhaseInit selects the initial saved phase of fresh variables — a
// cheap diversification axis for portfolio members.
type PhaseInit uint8

const (
	// PhaseNeg branches on the negative literal first (the MiniSat
	// default, and the zero value).
	PhaseNeg PhaseInit = iota
	// PhasePos branches on the positive literal first.
	PhasePos
	// PhaseRand picks the initial phase from a deterministic hash of
	// (Seed, variable index); no shared RNG state is involved, so two
	// solvers with the same Seed behave identically.
	PhaseRand
)

func (p PhaseInit) String() string {
	switch p {
	case PhasePos:
		return "pos"
	case PhaseRand:
		return "rand"
	default:
		return "neg"
	}
}

// Config tunes the solver's search heuristics. The zero value is not
// meaningful; start from DefaultConfig. All knobs have safe defaults
// applied by NewWithConfig, so partially filled configs work.
type Config struct {
	// Restart selects the restart strategy.
	Restart RestartPolicy
	// LubyBase is the conflict-count unit of the Luby sequence
	// (RestartLuby only). Default 100.
	LubyBase int

	// CoreLBD is the LBD cut of the core learnt tier: clauses learnt
	// with LBD <= CoreLBD are kept forever; the rest live in the
	// local tier and are subject to eviction. Default 3.
	CoreLBD uint32
	// FirstReduce is the local-tier size that triggers the first
	// learnt-DB reduction; ReduceInc is added after each reduction.
	// Defaults 2000 and 300.
	FirstReduce int
	ReduceInc   int

	// RestartMargin is the Glucose K: restart when
	// recentAvgLBD * RestartMargin > globalAvgLBD. Default 0.8.
	RestartMargin float64
	// BlockMargin is the Glucose R: delay a pending restart when the
	// trail is BlockMargin times longer than its recent average
	// (the search is probably digging toward a model). Default 1.4.
	BlockMargin float64
	// LBDWindow and TrailWindow size the two moving averages.
	// Defaults 50 and 5000.
	LBDWindow   int
	TrailWindow int
	// BlockMinConflicts disables restart blocking until this many
	// conflicts have accumulated. Default 10000.
	BlockMinConflicts int64

	// VarDecay and ClauseDecay are the VSIDS decay factors.
	// Defaults 0.95 and 0.999.
	VarDecay    float64
	ClauseDecay float64

	// Phase seeds the initial saved phase of fresh variables. The zero
	// value (PhaseNeg) is the historical behavior.
	Phase PhaseInit
	// Seed feeds the PhaseRand hash. Ignored by the other modes.
	Seed uint64

	// Preprocess tunes the CNF preprocessing pass (see Preprocess).
	// The pass itself runs over captured formulas before they reach a
	// solver, not inside the solver; the knobs live here so callers
	// configure search and simplification in one place. Preprocessing
	// rewrites the formula, so it is incompatible with resolution-proof
	// logging: StartProof refuses when Preprocess.Enable is set.
	Preprocess PrepConfig
}

// DefaultConfig returns the Glucose-style defaults.
func DefaultConfig() Config {
	return Config{
		Restart:           RestartGlucose,
		LubyBase:          100,
		CoreLBD:           3,
		FirstReduce:       2000,
		ReduceInc:         300,
		RestartMargin:     0.8,
		BlockMargin:       1.4,
		LBDWindow:         50,
		TrailWindow:       5000,
		BlockMinConflicts: 10000,
		VarDecay:          0.95,
		ClauseDecay:       0.999,
	}
}

// applyDefaults fills zero fields so hand-built configs stay valid.
func (c *Config) applyDefaults() {
	d := DefaultConfig()
	if c.LubyBase <= 0 {
		c.LubyBase = d.LubyBase
	}
	if c.CoreLBD == 0 {
		c.CoreLBD = d.CoreLBD
	}
	if c.FirstReduce <= 0 {
		c.FirstReduce = d.FirstReduce
	}
	if c.ReduceInc <= 0 {
		c.ReduceInc = d.ReduceInc
	}
	if c.RestartMargin <= 0 {
		c.RestartMargin = d.RestartMargin
	}
	if c.BlockMargin <= 0 {
		c.BlockMargin = d.BlockMargin
	}
	if c.LBDWindow <= 0 {
		c.LBDWindow = d.LBDWindow
	}
	if c.TrailWindow <= 0 {
		c.TrailWindow = d.TrailWindow
	}
	if c.BlockMinConflicts <= 0 {
		c.BlockMinConflicts = d.BlockMinConflicts
	}
	if c.VarDecay <= 0 {
		c.VarDecay = d.VarDecay
	}
	if c.ClauseDecay <= 0 {
		c.ClauseDecay = d.ClauseDecay
	}
}

// boundedQueue is a fixed-capacity ring with a running sum, the
// building block of the Glucose fast/slow restart averages.
type boundedQueue struct {
	elems []uint32
	idx   int
	n     int
	sum   uint64
}

func newBoundedQueue(cap int) boundedQueue {
	return boundedQueue{elems: make([]uint32, cap)}
}

func (q *boundedQueue) push(x uint32) {
	if q.n == len(q.elems) {
		q.sum -= uint64(q.elems[q.idx])
	} else {
		q.n++
	}
	q.sum += uint64(x)
	q.elems[q.idx] = x
	q.idx++
	if q.idx == len(q.elems) {
		q.idx = 0
	}
}

func (q *boundedQueue) full() bool { return q.n == len(q.elems) }

func (q *boundedQueue) avg() float64 {
	if q.n == 0 {
		return 0
	}
	return float64(q.sum) / float64(q.n)
}

func (q *boundedQueue) clear() {
	q.idx, q.n, q.sum = 0, 0, 0
}
