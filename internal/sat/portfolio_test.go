package sat

import (
	"path/filepath"
	"testing"
)

// loadClauses installs a plain clause list (1-based DIMACS literals)
// into a solver — the shape NewPortfolio's load callback wants.
func loadClauses(nVars int, clauses [][]int) func(*Solver) {
	return func(s *Solver) {
		s.EnsureVars(nVars)
		for _, cl := range clauses {
			lits := make([]Lit, len(cl))
			for i, dl := range cl {
				v := dl
				if v < 0 {
					v = -v
				}
				lits[i] = MkLit(Var(v-1), dl < 0)
			}
			s.AddClause(lits...)
		}
	}
}

// checkModelValues is checkModel over any model reader, so portfolio
// winners can be validated with the same clause lists.
func checkModelValues(t *testing.T, mv func(Lit) LBool, clauses [][]int) {
	t.Helper()
	for _, cl := range clauses {
		ok := false
		for _, dl := range cl {
			v := dl
			if v < 0 {
				v = -v
			}
			l := MkLit(Var(v-1), dl < 0)
			if mv(l) != LFalse {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("model does not satisfy clause %v", cl)
		}
	}
}

func TestDiversifiedConfigsBaseline(t *testing.T) {
	cfgs, labels := DiversifiedConfigs(6)
	if len(cfgs) != 6 || len(labels) != 6 {
		t.Fatalf("got %d configs, %d labels", len(cfgs), len(labels))
	}
	if cfgs[0] != DefaultConfig() {
		t.Fatalf("member 0 must run the serial default config, got %+v", cfgs[0])
	}
	seen := map[string]bool{}
	for _, l := range labels {
		if seen[l] {
			t.Fatalf("duplicate member label %q", l)
		}
		seen[l] = true
	}
}

func TestPortfolioSatUnsat(t *testing.T) {
	// (x1 | x2) & (!x1 | x2): satisfiable, x2 must be true.
	sat := [][]int{{1, 2}, {-1, 2}}
	p := NewPortfolio(PortfolioOptions{Size: 3}, loadClauses(2, sat))
	if st := p.Solve(); st != Sat {
		t.Fatalf("Solve = %v, want Sat", st)
	}
	if p.Winner() == nil || p.WinnerLabel() == "" {
		t.Fatal("no winner recorded after a decided race")
	}
	checkModelValues(t, p.ModelValue, sat)
	if got := p.Stats().Races; got != 1 {
		t.Fatalf("Races = %d, want 1", got)
	}

	// x1 & !x1: unsatisfiable.
	unsat := [][]int{{1}, {-1}}
	p = NewPortfolio(PortfolioOptions{Size: 3}, loadClauses(1, unsat))
	if st := p.Solve(); st != Unsat {
		t.Fatalf("Solve = %v, want Unsat", st)
	}
}

func TestPortfolioAssumptionCore(t *testing.T) {
	// Formula satisfiable, but assumptions x1 and x2 clash through
	// (!x1 | !x2); the core must contain both.
	clauses := [][]int{{-1, -2}, {2, 3}}
	p := NewPortfolio(PortfolioOptions{Size: 3}, loadClauses(3, clauses))
	a1, a2 := MkLit(0, false), MkLit(1, false)
	if st := p.Solve(a1, a2); st != Unsat {
		t.Fatalf("Solve under clashing assumptions = %v, want Unsat", st)
	}
	if !p.Failed(a1) || !p.Failed(a2) {
		t.Fatalf("core %v should contain both assumptions", p.Core())
	}
	// The same portfolio must be reusable after a race (stop flag is
	// cleared): drop an assumption and the formula is satisfiable.
	if st := p.Solve(a1); st != Sat {
		t.Fatalf("re-Solve after race = %v, want Sat", st)
	}
}

func TestPortfolioInterrupt(t *testing.T) {
	// A hard instance would be needed to observe a mid-flight
	// interrupt; setting the flag before Solve is equivalent and
	// deterministic (Interrupt is sticky).
	p := NewPortfolio(PortfolioOptions{Size: 2}, loadClauses(2, [][]int{{1, 2}}))
	p.Interrupt()
	if st := p.Solve(); st != Unknown {
		t.Fatalf("Solve after Interrupt = %v, want Unknown", st)
	}
	if p.Winner() != nil {
		t.Fatal("undecided race must not record a winner")
	}
	p.ClearInterrupt()
	if st := p.Solve(); st != Sat {
		t.Fatalf("Solve after ClearInterrupt = %v, want Sat", st)
	}
}

func TestExchangePublishDrain(t *testing.T) {
	e := newExchange(2)
	e.publish(0, []Lit{MkLit(0, false)})
	e.publish(1, []Lit{MkLit(1, true)})

	s := New()
	s.EnsureVars(2)
	e.drainInto(0, s) // member 0 skips its own entry
	if got := s.Stats.SharedIn; got != 1 {
		t.Fatalf("SharedIn = %d, want 1 (own clause skipped)", got)
	}
	// Unit from member 1 must now be fixed at level 0.
	if v := s.LitValue(MkLit(1, true)); v != LTrue {
		t.Fatalf("imported unit not propagated: %v", v)
	}
	// Draining again imports nothing (cursor advanced).
	e.drainInto(0, s)
	if got := s.Stats.SharedIn; got != 1 {
		t.Fatalf("cursor did not advance: SharedIn = %d", got)
	}
}

func TestImportLearntRejects(t *testing.T) {
	s := New()
	s.EnsureVars(1)
	if s.ImportLearnt([]Lit{MkLit(5, false)}) {
		t.Fatal("import over unknown variable must be rejected")
	}
	if s.Stats.SharedIn != 0 {
		t.Fatal("rejected import must not count")
	}
	ps := New()
	ps.StartProof()
	ps.EnsureVars(1)
	if ps.ImportLearnt([]Lit{MkLit(0, false)}) {
		t.Fatal("proof-logging solver must refuse foreign clauses")
	}
}

// TestPortfolioDifferentialCorpus races the portfolio against a single
// default-config solver over the DIMACS regression corpus: statuses
// must agree on every formula, the winner's model must satisfy the
// original clauses, and failed-assumption cores must remain valid
// cores (re-solving a fresh solver under just the core is Unsat).
func TestPortfolioDifferentialCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.cnf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			nVars, clauses := readDIMACSClauses(t, path)
			load := loadClauses(nVars, clauses)

			single := New()
			load(single)
			want := single.Solve()
			if want == Unknown {
				t.Fatal("single solver gave up without budget")
			}

			p := NewPortfolio(PortfolioOptions{Size: 4}, load)
			got := p.Solve()
			if got != want {
				t.Fatalf("portfolio=%v single=%v", got, want)
			}
			if got == Sat {
				checkModelValues(t, p.ModelValue, clauses)
			}

			// Core check: assume the first few variables positive. When
			// that makes the instance Unsat, the winner's core alone
			// must already be inconsistent with the formula.
			n := nVars
			if n > 4 {
				n = 4
			}
			assumps := make([]Lit, n)
			for i := range assumps {
				assumps[i] = MkLit(Var(i), false)
			}
			sSingle := New()
			load(sSingle)
			wantA := sSingle.Solve(assumps...)
			pa := NewPortfolio(PortfolioOptions{Size: 4}, load)
			gotA := pa.Solve(assumps...)
			if gotA != wantA {
				t.Fatalf("under assumptions: portfolio=%v single=%v", gotA, wantA)
			}
			if gotA == Unsat {
				core := pa.Core()
				for _, c := range core {
					found := false
					for _, a := range assumps {
						if c == a {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("core literal %v is not an assumption", c)
					}
				}
				fresh := New()
				load(fresh)
				if st := fresh.Solve(core...); st != Unsat {
					t.Fatalf("winner's core %v does not refute the formula: %v", core, st)
				}
			} else if gotA == Sat {
				checkModelValues(t, pa.ModelValue, clauses)
			}
		})
	}
}
