package sat

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// PortfolioOptions configures a racing portfolio.
type PortfolioOptions struct {
	// Size is the number of member solvers. Default 4, minimum 1.
	Size int
	// ShareLBD is the largest LBD a learnt clause may have to be
	// shared with the other members; unit clauses are always shared.
	// Default 2.
	ShareLBD uint32
	// Configs overrides the member configurations (len must equal
	// Size). Default: DiversifiedConfigs(Size).
	Configs []Config
	// Labels names the members for win statistics; paired with
	// Configs. Default: the DiversifiedConfigs labels.
	Labels []string
	// ConfBudget, when positive, limits every member to that many
	// conflicts per Solve call (the race then returns Unknown when all
	// members exhaust it).
	ConfBudget int64
}

// PortfolioStats counts races and which member configuration won each.
type PortfolioStats struct {
	Races int64
	Wins  map[string]int64
}

// DiversifiedConfigs returns n solver configurations spread across the
// cheap diversification axes: restart policy and cadence, initial
// phase, and VSIDS decay. Index 0 is always DefaultConfig, so a
// portfolio's first member explores exactly the serial search space.
func DiversifiedConfigs(n int) ([]Config, []string) {
	cfgs := make([]Config, 0, n)
	labels := make([]string, 0, n)
	for i := 0; i < n; i++ {
		c := DefaultConfig()
		var label string
		switch i {
		case 0:
			label = "glucose"
		case 1:
			c.Restart = RestartLuby
			c.Phase = PhasePos
			label = "luby-pos"
		case 2:
			// Higher margin makes the fast/slow comparison trip more
			// often: a restart-happy explorer.
			c.RestartMargin = 0.95
			c.Phase = PhaseRand
			c.Seed = 0x9e3779b9
			label = "glucose-agg"
		case 3:
			c.Restart = RestartLuby
			c.LubyBase = 50
			c.VarDecay = 0.99
			c.Phase = PhaseRand
			c.Seed = 0xdeadbeef
			label = "luby-rand"
		default:
			c.Phase = PhaseRand
			c.Seed = uint64(i) * 0x9e3779b97f4a7c15
			if i%2 == 0 {
				c.Restart = RestartLuby
			}
			c.VarDecay = 0.90 + 0.02*float64(i%5)
			label = fmt.Sprintf("rand-%d", i)
		}
		cfgs = append(cfgs, c)
		labels = append(labels, label)
	}
	return cfgs, labels
}

// sharedClause is one entry in the exchange buffer.
type sharedClause struct {
	from int
	lits []Lit
}

// maxExchange bounds the shared pool; once full, further exports are
// dropped (the pool holds only units and very-low-LBD clauses, so the
// cap is rarely reached in practice).
const maxExchange = 1 << 15

// exchange is the synchronized clause pool portfolio members share
// learnts through. Publishing appends; each member drains from its own
// cursor at restart boundaries, skipping its own entries.
type exchange struct {
	mu      sync.Mutex
	pool    []sharedClause
	cursors []int
}

func newExchange(n int) *exchange { return &exchange{cursors: make([]int, n)} }

func (e *exchange) publish(from int, lits []Lit) {
	cp := append([]Lit(nil), lits...)
	e.mu.Lock()
	if len(e.pool) < maxExchange {
		e.pool = append(e.pool, sharedClause{from: from, lits: cp})
	}
	e.mu.Unlock()
}

// drainInto imports every clause member i has not yet seen into s.
func (e *exchange) drainInto(i int, s *Solver) {
	e.mu.Lock()
	pending := e.pool[e.cursors[i]:]
	e.cursors[i] = len(e.pool)
	e.mu.Unlock()
	for _, c := range pending {
		if c.from == i {
			continue
		}
		s.ImportLearnt(c.lits)
		if !s.Okay() {
			return
		}
	}
}

// Portfolio races K diversified solvers over one formula and returns
// the first definitive answer. Members share learnt unit and low-LBD
// clauses through an exchange buffer. After a race, the winning member
// holds the model or assumption core and stays usable for incremental
// follow-up queries (all members see identical variable numbering, so
// literals transfer).
//
// A Portfolio is not safe for concurrent Solve calls, but Interrupt
// may be called from another goroutine (it interrupts every member),
// matching the Solver contract.
type Portfolio struct {
	members []*Solver
	labels  []string
	exch    *exchange
	stop    atomic.Bool
	winner  int
	stats   PortfolioStats
}

// NewPortfolio builds a portfolio and populates every member by
// calling load on it (typically cnf.Formula.LoadInto, so the formula
// is encoded once and replayed K times).
func NewPortfolio(opt PortfolioOptions, load func(*Solver)) *Portfolio {
	if opt.Size <= 0 {
		opt.Size = 4
	}
	if opt.ShareLBD == 0 {
		opt.ShareLBD = 2
	}
	cfgs, labels := opt.Configs, opt.Labels
	if len(cfgs) == 0 {
		cfgs, labels = DiversifiedConfigs(opt.Size)
	}
	if len(cfgs) != opt.Size {
		panic("sat: PortfolioOptions.Configs length mismatch")
	}
	if len(labels) != len(cfgs) {
		labels = make([]string, len(cfgs))
		for i := range labels {
			labels[i] = fmt.Sprintf("cfg-%d", i)
		}
	}
	p := &Portfolio{
		labels: labels,
		exch:   newExchange(opt.Size),
		winner: -1,
		stats:  PortfolioStats{Wins: make(map[string]int64)},
	}
	shareLBD := opt.ShareLBD
	for i, cfg := range cfgs {
		s := NewWithConfig(cfg)
		s.SetStopSignal(&p.stop)
		if opt.ConfBudget > 0 {
			s.SetConfBudget(opt.ConfBudget)
		}
		i := i
		s.SetLearntHook(func(lits []Lit, lbd uint32) {
			if len(lits) == 1 || lbd <= shareLBD {
				s.Stats.SharedOut++
				p.exch.publish(i, lits)
			}
		})
		s.SetRestartHook(func() { p.exch.drainInto(i, s) })
		if load != nil {
			load(s)
		}
		p.members = append(p.members, s)
	}
	return p
}

// Members exposes the member solvers, e.g. to register each with an
// interrupt group.
func (p *Portfolio) Members() []*Solver { return p.members }

// Solve races all members under the given assumptions and returns the
// first definitive status. Unknown means every member was interrupted
// or ran out of budget. After Sat/Unsat, Winner holds the deciding
// member.
func (p *Portfolio) Solve(assumptions ...Lit) Status {
	p.stop.Store(false)
	p.winner = -1
	var winIdx atomic.Int32
	winIdx.Store(-1)
	results := make([]Status, len(p.members))
	var wg sync.WaitGroup
	for i, m := range p.members {
		wg.Add(1)
		go func(i int, m *Solver) {
			defer wg.Done()
			st := m.Solve(assumptions...)
			results[i] = st
			if st != Unknown && winIdx.CompareAndSwap(-1, int32(i)) {
				// Race decided: stop the losers. The stop flag is ours,
				// not the sticky interrupt, so members stay reusable.
				p.stop.Store(true)
			}
		}(i, m)
	}
	wg.Wait()
	p.stop.Store(false)
	w := winIdx.Load()
	if w < 0 {
		return Unknown
	}
	p.winner = int(w)
	p.stats.Races++
	p.stats.Wins[p.labels[w]]++
	return results[w]
}

// Winner returns the member that decided the last race, or nil if no
// race has produced a definitive answer yet. The winner is a plain
// incremental Solver: Solve may be called on it directly for follow-up
// queries that extend the raced formula.
func (p *Portfolio) Winner() *Solver {
	if p.winner < 0 {
		return nil
	}
	return p.members[p.winner]
}

// WinnerLabel returns the configuration label of the last winner
// ("" before the first decided race).
func (p *Portfolio) WinnerLabel() string {
	if p.winner < 0 {
		return ""
	}
	return p.labels[p.winner]
}

// ModelValue reads the winner's model (valid after a Sat race).
func (p *Portfolio) ModelValue(l Lit) LBool { return p.Winner().ModelValue(l) }

// ModelBool reads the winner's model as a concrete bool.
func (p *Portfolio) ModelBool(l Lit) bool { return p.Winner().ModelBool(l) }

// Failed queries the winner's assumption core (valid after an Unsat
// race under assumptions).
func (p *Portfolio) Failed(a Lit) bool { return p.Winner().Failed(a) }

// Core returns the winner's assumption core.
func (p *Portfolio) Core() []Lit { return p.Winner().Core() }

// Interrupt interrupts every member (sticky, per the Solver contract).
func (p *Portfolio) Interrupt() {
	for _, m := range p.members {
		m.Interrupt()
	}
}

// ClearInterrupt re-arms every member.
func (p *Portfolio) ClearInterrupt() {
	for _, m := range p.members {
		m.ClearInterrupt()
	}
}

// Stats returns the race/win counters.
func (p *Portfolio) Stats() PortfolioStats { return p.stats }

// SolverStats sums the kernel counters of all members.
func (p *Portfolio) SolverStats() Stats {
	var out Stats
	for _, m := range p.members {
		out.Add(m.Stats)
	}
	return out
}
