package sat

import (
	"math/rand"
	"testing"
)

func newVars(s *Solver, n int) []Lit {
	lits := make([]Lit, n)
	for i := range lits {
		lits[i] = PosLit(s.NewVar())
	}
	return lits
}

func TestLitBasics(t *testing.T) {
	v := Var(5)
	p := PosLit(v)
	n := NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Fatalf("Var roundtrip failed: %v %v", p.Var(), n.Var())
	}
	if p.Sign() || !n.Sign() {
		t.Fatalf("Sign wrong: %v %v", p.Sign(), n.Sign())
	}
	if p.Not() != n || n.Not() != p {
		t.Fatalf("Not wrong")
	}
	if MkLit(v, false) != p || MkLit(v, true) != n {
		t.Fatalf("MkLit wrong")
	}
	if p.XorSign(true) != n || p.XorSign(false) != p {
		t.Fatalf("XorSign wrong")
	}
	if p.String() != "6" || n.String() != "-6" {
		t.Fatalf("String wrong: %q %q", p.String(), n.String())
	}
}

func TestLBool(t *testing.T) {
	if LTrue.Not() != LFalse || LFalse.Not() != LTrue || LUndef.Not() != LUndef {
		t.Fatal("LBool.Not wrong")
	}
	if LTrue.String() != "true" || LFalse.String() != "false" || LUndef.String() != "undef" {
		t.Fatal("LBool.String wrong")
	}
}

func TestEmptyFormulaIsSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != Sat {
		t.Fatalf("empty formula: got %v, want Sat", got)
	}
}

func TestSingleUnit(t *testing.T) {
	s := New()
	a := PosLit(s.NewVar())
	s.AddClause(a)
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v", got)
	}
	if s.ModelValue(a) != LTrue {
		t.Fatalf("model value of unit literal: %v", s.ModelValue(a))
	}
}

func TestContradictingUnits(t *testing.T) {
	s := New()
	a := PosLit(s.NewVar())
	s.AddClause(a)
	if ok := s.AddClause(a.Not()); ok {
		t.Fatal("expected AddClause to report inconsistency")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v", got)
	}
}

func TestSimpleChainPropagation(t *testing.T) {
	s := New()
	ls := newVars(s, 5)
	for i := 0; i+1 < len(ls); i++ {
		s.AddClause(ls[i].Not(), ls[i+1]) // x_i -> x_{i+1}
	}
	s.AddClause(ls[0])
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v", got)
	}
	for i, l := range ls {
		if s.ModelValue(l) != LTrue {
			t.Fatalf("chain var %d not propagated to true", i)
		}
	}
}

func TestXorChainUnsat(t *testing.T) {
	// x1 xor x2, x2 xor x3, x1 xor x3 with odd parity constraint is UNSAT.
	s := New()
	ls := newVars(s, 3)
	addXORConstraint := func(a, b Lit, val bool) {
		// a xor b = val
		if val {
			s.AddClause(a, b)
			s.AddClause(a.Not(), b.Not())
		} else {
			s.AddClause(a.Not(), b)
			s.AddClause(a, b.Not())
		}
	}
	addXORConstraint(ls[0], ls[1], true)
	addXORConstraint(ls[1], ls[2], true)
	addXORConstraint(ls[0], ls[2], true)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("odd xor cycle: got %v, want Unsat", got)
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons into n holes, UNSAT.
func pigeonhole(s *Solver, pigeons, holes int) {
	lit := make([][]Lit, pigeons)
	for p := 0; p < pigeons; p++ {
		lit[p] = newVars(s, holes)
		s.AddClause(lit[p]...) // each pigeon in some hole
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(lit[p1][h].Not(), lit[p2][h].Not())
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n+1, n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d): got %v, want Unsat", n+1, n, got)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5)
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(5,5): got %v, want Sat", got)
	}
}

// bruteForceSat exhaustively checks satisfiability of a clause set
// over n variables.
func bruteForceSat(n int, clauses [][]Lit) bool {
	for m := 0; m < 1<<n; m++ {
		ok := true
		for _, c := range clauses {
			cSat := false
			for _, l := range c {
				bit := m>>uint(l.Var())&1 == 1
				if bit != l.Sign() {
					cSat = true
					break
				}
			}
			if !cSat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func evalClauses(model func(Lit) LBool, clauses [][]Lit) bool {
	for _, c := range clauses {
		cSat := false
		for _, l := range c {
			if model(l) == LTrue {
				cSat = true
				break
			}
		}
		if !cSat {
			return false
		}
	}
	return true
}

func randomClauses(rng *rand.Rand, nVars, nClauses, width int) [][]Lit {
	clauses := make([][]Lit, nClauses)
	for i := range clauses {
		k := 1 + rng.Intn(width)
		c := make([]Lit, k)
		for j := range c {
			c[j] = MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1)
		}
		clauses[i] = c
	}
	return clauses
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		nVars := 3 + rng.Intn(10)
		nClauses := 1 + rng.Intn(5*nVars)
		clauses := randomClauses(rng, nVars, nClauses, 3)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for _, c := range clauses {
			s.AddClause(c...)
		}
		got := s.Solve()
		want := bruteForceSat(nVars, clauses)
		if (got == Sat) != want {
			t.Fatalf("iter %d: solver=%v bruteforce=%v (%d vars, %d clauses)",
				iter, got, want, nVars, nClauses)
		}
		if got == Sat && !evalClauses(s.ModelValue, clauses) {
			t.Fatalf("iter %d: model does not satisfy formula", iter)
		}
	}
}

func TestIncrementalSolving(t *testing.T) {
	s := New()
	ls := newVars(s, 4)
	s.AddClause(ls[0], ls[1])
	if s.Solve() != Sat {
		t.Fatal("phase 1 should be Sat")
	}
	s.AddClause(ls[0].Not())
	s.AddClause(ls[1].Not(), ls[2])
	if s.Solve() != Sat {
		t.Fatal("phase 2 should be Sat")
	}
	if s.ModelValue(ls[1]) != LTrue || s.ModelValue(ls[2]) != LTrue {
		t.Fatal("phase 2 model wrong")
	}
	s.AddClause(ls[2].Not())
	if s.Solve() != Unsat {
		t.Fatal("phase 3 should be Unsat")
	}
}

func TestAssumptionsBasic(t *testing.T) {
	s := New()
	a, b := PosLit(s.NewVar()), PosLit(s.NewVar())
	s.AddClause(a.Not(), b) // a -> b
	if got := s.Solve(a); got != Sat {
		t.Fatalf("assume a: %v", got)
	}
	if s.ModelValue(b) != LTrue {
		t.Fatal("b must follow from a")
	}
	if got := s.Solve(a, b.Not()); got != Unsat {
		t.Fatalf("assume a, ¬b: %v", got)
	}
	core := s.Core()
	if len(core) == 0 {
		t.Fatal("empty core for assumption conflict")
	}
	for _, l := range core {
		if l != a && l != b.Not() {
			t.Fatalf("core literal %v is not an assumption", l)
		}
	}
	// Solver must remain usable without the assumptions.
	if got := s.Solve(); got != Sat {
		t.Fatalf("after assumption conflict: %v", got)
	}
}

func TestAssumptionCoreIsUnsatAlone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		nVars := 4 + rng.Intn(8)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		clauses := randomClauses(rng, nVars, 3*nVars, 3)
		for _, c := range clauses {
			if !s.AddClause(c...) {
				break
			}
		}
		// Assume a random subset of literals.
		var assumps []Lit
		for v := 0; v < nVars; v++ {
			if rng.Intn(2) == 0 {
				assumps = append(assumps, MkLit(Var(v), rng.Intn(2) == 1))
			}
		}
		if s.Solve(assumps...) != Unsat {
			continue
		}
		core := append([]Lit(nil), s.Core()...)
		// Each core literal must be one of the assumptions.
		for _, l := range core {
			found := false
			for _, a := range assumps {
				if a == l {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("iter %d: core literal %v not among assumptions", iter, l)
			}
		}
		// The core alone must still be Unsat.
		if got := s.Solve(core...); got != Unsat {
			t.Fatalf("iter %d: core is not Unsat on its own: %v", iter, got)
		}
	}
}

func TestFailed(t *testing.T) {
	s := New()
	a, b, c := PosLit(s.NewVar()), PosLit(s.NewVar()), PosLit(s.NewVar())
	s.AddClause(a.Not(), b.Not()) // ¬(a ∧ b)
	if got := s.Solve(a, b, c); got != Unsat {
		t.Fatalf("got %v", got)
	}
	if !s.Failed(a) || !s.Failed(b) {
		t.Fatal("a and b should be in the failed set")
	}
	if s.Failed(c) {
		t.Fatal("c is irrelevant and should not be in the failed set")
	}
}

func TestConflictBudget(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8)
	s.SetConfBudget(5)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("tiny budget on PHP(9,8): got %v, want Unknown", got)
	}
	s.SetConfBudget(-1)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("unlimited budget: got %v, want Unsat", got)
	}
}

func TestSolverReusableAfterBudget(t *testing.T) {
	s := New()
	ls := newVars(s, 3)
	s.AddClause(ls[0], ls[1], ls[2])
	s.SetConfBudget(0)
	_ = s.Solve() // may be Unknown or Sat depending on propagation only
	s.SetConfBudget(-1)
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v", got)
	}
}

func TestValueDuringAndAfterSolve(t *testing.T) {
	s := New()
	a := PosLit(s.NewVar())
	s.AddClause(a)
	s.Solve()
	// Level-0 units stay assigned.
	if s.Value(a.Var()) != LTrue {
		t.Fatalf("level-0 unit not retained: %v", s.Value(a.Var()))
	}
	if s.LitValue(a.Not()) != LFalse {
		t.Fatalf("LitValue of negation: %v", s.LitValue(a.Not()))
	}
}

func TestSimplify(t *testing.T) {
	s := New()
	ls := newVars(s, 4)
	s.AddClause(ls[0], ls[1])
	s.AddClause(ls[0]) // makes the previous clause satisfied at level 0
	s.AddClause(ls[2], ls[3])
	before := s.NumClauses()
	if !s.Simplify() {
		t.Fatal("Simplify reported inconsistency")
	}
	if s.NumClauses() >= before {
		t.Fatalf("Simplify did not remove satisfied clause: %d -> %d", before, s.NumClauses())
	}
	if s.Solve() != Sat {
		t.Fatal("still satisfiable after simplify")
	}
}

func TestLuby(t *testing.T) {
	want := []float64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(1, i); got != w {
			t.Fatalf("luby(1,%d) = %v, want %v", i, got, w)
		}
	}
}

func TestManyVars(t *testing.T) {
	s := New()
	ls := newVars(s, 2000)
	for i := 0; i+1 < len(ls); i += 2 {
		s.AddClause(ls[i], ls[i+1])
		s.AddClause(ls[i].Not(), ls[i+1].Not())
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v", got)
	}
	for i := 0; i+1 < len(ls); i += 2 {
		a := s.ModelValue(ls[i]) == LTrue
		b := s.ModelValue(ls[i+1]) == LTrue
		if a == b {
			t.Fatalf("pair %d not xor-satisfied", i)
		}
	}
}

func TestStatsProgress(t *testing.T) {
	s := New()
	pigeonhole(s, 6, 5)
	s.Solve()
	if s.Stats.Conflicts == 0 || s.Stats.Decisions == 0 || s.Stats.Propagations == 0 {
		t.Fatalf("stats not collected: %+v", s.Stats)
	}
	if s.Stats.SolveCalls != 1 {
		t.Fatalf("SolveCalls = %d", s.Stats.SolveCalls)
	}
}

func TestEnsureVars(t *testing.T) {
	s := New()
	s.EnsureVars(10)
	if s.NumVars() != 10 {
		t.Fatalf("NumVars = %d", s.NumVars())
	}
	s.EnsureVars(5)
	if s.NumVars() != 10 {
		t.Fatalf("EnsureVars shrank: %d", s.NumVars())
	}
}

func TestRepeatedAssumptionSolves(t *testing.T) {
	// Stress assumption handling with learnt-clause reuse.
	rng := rand.New(rand.NewSource(99))
	s := New()
	const n = 30
	ls := newVars(s, n)
	for i := 0; i < 80; i++ {
		a := ls[rng.Intn(n)].XorSign(rng.Intn(2) == 1)
		b := ls[rng.Intn(n)].XorSign(rng.Intn(2) == 1)
		c := ls[rng.Intn(n)].XorSign(rng.Intn(2) == 1)
		s.AddClause(a, b, c)
	}
	for iter := 0; iter < 50; iter++ {
		var assumps []Lit
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				assumps = append(assumps, ls[v].XorSign(rng.Intn(2) == 1))
			}
		}
		got := s.Solve(assumps...)
		if got == Sat {
			for _, a := range assumps {
				if s.ModelValue(a) != LTrue {
					t.Fatalf("iter %d: assumption %v not honored in model", iter, a)
				}
			}
		}
	}
}

func TestProofModeBasics(t *testing.T) {
	// Proof logging must not change answers.
	rng := rand.New(rand.NewSource(123))
	for iter := 0; iter < 80; iter++ {
		nVars := 4 + rng.Intn(8)
		clauses := randomClauses(rng, nVars, 4*nVars, 3)

		plain := New()
		for v := 0; v < nVars; v++ {
			plain.NewVar()
		}
		okPlain := true
		for _, c := range clauses {
			if !plain.AddClause(c...) {
				okPlain = false
				break
			}
		}
		wantStatus := Unsat
		if okPlain {
			wantStatus = plain.Solve()
		}

		logged := New()
		p := logged.StartProof()
		for v := 0; v < nVars; v++ {
			logged.NewVar()
		}
		okLogged := true
		for _, c := range clauses {
			if !logged.AddClause(c...) {
				okLogged = false
				break
			}
		}
		gotStatus := Unsat
		if okLogged {
			gotStatus = logged.Solve()
		}
		if gotStatus != wantStatus {
			t.Fatalf("iter %d: plain=%v logged=%v", iter, wantStatus, gotStatus)
		}
		if gotStatus == Unsat && !p.HasFinal() {
			t.Fatalf("iter %d: UNSAT without a recorded refutation", iter)
		}
		if gotStatus == Sat && p.HasFinal() {
			t.Fatalf("iter %d: SAT instance recorded a refutation", iter)
		}
	}
}

func TestStartProofOnUsedSolverPanics(t *testing.T) {
	s := New()
	s.NewVar()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.StartProof()
}

func TestWatchedLiteralInvariantUnderBacktracking(t *testing.T) {
	// Regression-style stress: interleave solving, adding clauses and
	// assumptions; every Sat model must actually satisfy the clauses.
	rng := rand.New(rand.NewSource(321))
	s := New()
	const n = 40
	lits := newVars(s, n)
	var all [][]Lit
	for round := 0; round < 60; round++ {
		for c := 0; c < 5; c++ {
			cl := []Lit{
				lits[rng.Intn(n)].XorSign(rng.Intn(2) == 1),
				lits[rng.Intn(n)].XorSign(rng.Intn(2) == 1),
				lits[rng.Intn(n)].XorSign(rng.Intn(2) == 1),
			}
			if s.AddClause(cl...) {
				all = append(all, cl)
			} else {
				return // became UNSAT; done
			}
		}
		var assumps []Lit
		for k := 0; k < rng.Intn(4); k++ {
			assumps = append(assumps, lits[rng.Intn(n)].XorSign(rng.Intn(2) == 1))
		}
		if s.Solve(assumps...) == Sat {
			if !evalClauses(s.ModelValue, all) {
				t.Fatalf("round %d: model violates clause set", round)
			}
			for _, a := range assumps {
				if s.ModelValue(a) != LTrue {
					t.Fatalf("round %d: assumption %v violated", round, a)
				}
			}
		}
	}
}
