package sat

import "sync/atomic"

// clause is a disjunction of literals. For watched clauses lits[0] and
// lits[1] are the watched literals.
type clause struct {
	lits   []Lit
	act    float32
	id     int32 // proof id; 0 when proof logging is off
	learnt bool
}

// watcher pairs a watched clause with a blocker literal: if the
// blocker is already true the clause is satisfied and need not be
// inspected.
type watcher struct {
	c       *clause
	blocker Lit
}

// Stats collects solver counters, exposed for the experiment harness
// (e.g. counting SAT calls made by minimize_assumptions).
type Stats struct {
	Starts       int64
	Decisions    int64
	Propagations int64
	Conflicts    int64
	SolveCalls   int64
	Learnts      int64
	Removed      int64
}

// Solver is an incremental CDCL SAT solver. The zero value is not
// usable; create instances with New.
type Solver struct {
	clauses []*clause // problem clauses
	learnts []*clause // learnt clauses

	watches [][]watcher // indexed by Lit
	assigns []LBool     // indexed by Var
	level   []int32     // indexed by Var
	reason  []*clause   // indexed by Var
	seen    []byte      // scratch for analyze

	trail    []Lit
	trailLim []int32
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap
	polarity []bool // saved phases; true = last assigned false

	clauseInc float64

	okay bool // false once a top-level conflict proves UNSAT

	model    []LBool
	conflict []Lit // assumption core after Unsat under assumptions

	// Budgets; negative means unlimited.
	confBudget int64
	propBudget int64

	// interrupted is set asynchronously by Interrupt and polled in the
	// search loop; while set, Solve returns Unknown. It is the only
	// field that may be touched from another goroutine.
	interrupted atomic.Bool

	// Restart state.
	lubyIdx int

	analyzeStack []Lit
	analyzeToClr []Lit
	addTmp       []Lit

	Stats Stats

	proof    *Proof       // non-nil when proof logging is enabled
	unitID   []int32      // proof id of the unit clause fixing a var at level 0
	zeroNeed map[Var]bool // scratch: level-0 literals analyze dropped
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{
		varInc:     1,
		clauseInc:  1,
		okay:       true,
		confBudget: -1,
		propBudget: -1,
	}
	s.order = newVarHeap(&s.activity)
	return s
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses currently held.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Okay reports whether the clause database is still consistent at the
// top level (false once UNSAT has been proved without assumptions).
func (s *Solver) Okay() bool { return s.okay }

// NewVar creates a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, LUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.seen = append(s.seen, 0)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, true)
	s.watches = append(s.watches, nil, nil)
	s.unitID = append(s.unitID, 0)
	s.order.insert(v)
	return v
}

// EnsureVars creates variables until at least n exist.
func (s *Solver) EnsureVars(n int) {
	for len(s.assigns) < n {
		s.NewVar()
	}
}

// Value returns the current assignment of v (valid during search and,
// after a Sat answer, for reading the model).
func (s *Solver) Value(v Var) LBool { return s.assigns[v] }

// LitValue returns the value of literal l under the current assignment.
func (s *Solver) LitValue(l Lit) LBool {
	val := s.assigns[l.Var()]
	if val == LUndef {
		return LUndef
	}
	if l.Sign() {
		return val.Not()
	}
	return val
}

// ModelValue returns the value of l in the most recent model.
// Valid only after Solve returned Sat. Variables created after that
// Solve read as LUndef.
func (s *Solver) ModelValue(l Lit) LBool {
	if int(l.Var()) >= len(s.model) {
		return LUndef
	}
	val := s.model[l.Var()]
	if val == LUndef {
		return LUndef
	}
	if l.Sign() {
		return val.Not()
	}
	return val
}

// ModelBool returns the model value of l as a concrete bool,
// treating an unconstrained variable as false.
func (s *Solver) ModelBool(l Lit) bool { return s.ModelValue(l) == LTrue }

// Failed reports, after Solve returned Unsat under assumptions,
// whether assumption a participated in the final conflict
// (MiniSat's analyze_final core membership test).
func (s *Solver) Failed(a Lit) bool {
	for _, l := range s.conflict {
		if l == a {
			return true
		}
	}
	return false
}

// Core returns the subset of assumption literals involved in the
// final conflict of the last Unsat answer. The slice aliases internal
// state and is valid until the next Solve call.
func (s *Solver) Core() []Lit { return s.conflict }

// SetConfBudget limits the number of conflicts in subsequent Solve
// calls; negative means unlimited. The budget applies per call.
func (s *Solver) SetConfBudget(n int64) { s.confBudget = n }

// SetPropBudget limits the number of propagations in subsequent Solve
// calls; negative means unlimited. The budget applies per call.
func (s *Solver) SetPropBudget(n int64) { s.propBudget = n }

// Interrupt asynchronously aborts the in-flight Solve call (and makes
// any future call return immediately) with status Unknown. It is the
// only Solver method safe to call from another goroutine; the flag
// stays set until ClearInterrupt.
func (s *Solver) Interrupt() { s.interrupted.Store(true) }

// ClearInterrupt re-arms the solver after an Interrupt so subsequent
// Solve calls run normally.
func (s *Solver) ClearInterrupt() { s.interrupted.Store(false) }

// Interrupted reports whether Interrupt has been called and not yet
// cleared.
func (s *Solver) Interrupted() bool { return s.interrupted.Load() }

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

// AddClause adds a clause over the given literals. It returns false
// if the clause database became trivially unsatisfiable. The input
// slice is not retained.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.okay {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause called during search")
	}
	// Sort, dedupe, detect tautologies and satisfied clauses. Literals
	// already false at level 0 are dropped — except under proof
	// logging, where dropping them would be an unrecorded resolution
	// step, so they are kept and handled below.
	s.addTmp = append(s.addTmp[:0], lits...)
	sortLits(s.addTmp)
	out := s.addTmp[:0]
	var prev Lit = LitUndef
	for _, l := range s.addTmp {
		if int(l.Var()) >= len(s.assigns) {
			panic("sat: literal over unknown variable")
		}
		switch {
		case s.LitValue(l) == LTrue || l == prev.Not():
			return true // satisfied or tautology
		case l == prev:
			continue // duplicate
		case s.LitValue(l) == LFalse && s.proof == nil:
			continue // falsified at level 0
		}
		out = append(out, l)
		prev = l
	}
	if s.proof != nil {
		s.proof.addRoot(out)
		// Move non-false literals to the watch positions.
		w := 0
		for i, l := range out {
			if s.LitValue(l) != LFalse {
				out[i], out[w] = out[w], out[i]
				w++
				if w == 2 {
					break
				}
			}
		}
		c := &clause{lits: append([]Lit(nil), out...), id: s.proof.lastID}
		switch w {
		case 0:
			// All literals false at level 0: this clause refutes the
			// formula outright.
			s.addFinal(c)
			s.okay = false
			return false
		case 1:
			if len(out) == 1 {
				s.unitID[out[0].Var()] = c.id
				s.uncheckedEnqueue(out[0], nil)
			} else {
				s.clauses = append(s.clauses, c)
				s.attachClause(c)
				s.uncheckedEnqueue(out[0], c)
			}
			return s.propagateRoot()
		default:
			s.clauses = append(s.clauses, c)
			s.attachClause(c)
			return true
		}
	}
	switch len(out) {
	case 0:
		s.okay = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		return s.propagateRoot()
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.attachClause(c)
	return true
}

// propagateRoot runs propagation at decision level 0 and records the
// refutation in the proof log if a conflict arises.
func (s *Solver) propagateRoot() bool {
	if confl := s.propagate(); confl != nil {
		if s.proof != nil {
			s.addFinal(confl)
		}
		s.okay = false
	}
	return s.okay
}

func sortLits(ls []Lit) {
	// Insertion sort: clauses are short and this avoids interface
	// overhead from sort.Slice on the hot path.
	for i := 1; i < len(ls); i++ {
		x := ls[i]
		j := i - 1
		for j >= 0 && ls[j] > x {
			ls[j+1] = ls[j]
			j--
		}
		ls[j+1] = x
	}
}

func (s *Solver) attachClause(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, c.lits[0]})
}

func (s *Solver) detachClause(c *clause) {
	s.removeWatch(c.lits[0].Not(), c)
	s.removeWatch(c.lits[1].Not(), c)
}

func (s *Solver) removeWatch(l Lit, c *clause) {
	ws := s.watches[l]
	for i := range ws {
		if ws[i].c == c {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	s.assigns[v] = liftBool(!l.Sign())
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation and returns the conflicting
// clause, or nil if no conflict arose.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		n := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.LitValue(w.blocker) == LTrue {
				ws[n] = w
				n++
				continue
			}
			c := w.c
			lits := c.lits
			// Make sure the false literal is lits[1].
			if lits[0] == p.Not() {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.LitValue(first) == LTrue {
				ws[n] = watcher{c, first}
				n++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(lits); k++ {
				if s.LitValue(lits[k]) != LFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.watches[lits[1].Not()] = append(s.watches[lits[1].Not()], watcher{c, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[n] = watcher{c, first}
			n++
			if s.LitValue(first) == LFalse {
				// Conflict: copy remaining watchers back and stop.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				s.watches[p] = ws[:n]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:n]
	}
	return nil
}

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, int32(len(s.trail)))
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		v := s.trail[i].Var()
		s.assigns[v] = LUndef
		s.reason[v] = nil
		s.polarity[v] = s.trail[i].Sign()
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.qhead = len(s.trail)
	s.trailLim = s.trailLim[:lvl]
}

func (s *Solver) varBumpActivity(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
		s.order.rebuild()
	}
	s.order.decrease(v)
}

func (s *Solver) varDecayActivity() { s.varInc /= 0.95 }

func (s *Solver) claBumpActivity(c *clause) {
	c.act += float32(s.clauseInc)
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.clauseInc *= 1e-20
	}
}

func (s *Solver) claDecayActivity() { s.clauseInc /= 0.999 }

// analyze derives a first-UIP learnt clause from the conflict and the
// backtrack level. The returned slice is owned by the caller.
func (s *Solver) analyze(confl *clause) (learnt []Lit, btLevel int32) {
	learnt = append(learnt, LitUndef) // placeholder for the asserting literal
	var p Lit = LitUndef
	idx := len(s.trail) - 1
	pathC := 0
	var chain []int32
	var pivots []Var
	if s.proof != nil {
		chain = append(chain, confl.id)
	}
	for {
		if confl.learnt {
			s.claBumpActivity(confl)
		}
		start := 0
		if p != LitUndef {
			start = 1
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.varBumpActivity(v)
				s.seen[v] = 1
				if s.level[v] >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			} else if s.level[v] == 0 && s.proof != nil {
				// Dropping a level-0 literal is a resolution with the
				// unit cone; remember to record it.
				s.zeroNeed[v] = true
			}
		}
		// Select next literal to look at.
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = 0
		pathC--
		if pathC == 0 {
			break
		}
		if s.proof != nil && confl != nil {
			chain = append(chain, confl.id)
			pivots = append(pivots, p.Var())
		}
	}
	learnt[0] = p.Not()

	// Clause minimization: remove literals implied by the rest.
	s.analyzeToClr = append(s.analyzeToClr[:0], learnt...)
	for _, l := range learnt {
		s.seen[l.Var()] = 1
	}
	if s.proof == nil {
		// Minimization changes the resolution chain in ways the simple
		// chain logger does not track, so skip it under proof logging.
		j := 1
		for i := 1; i < len(learnt); i++ {
			l := learnt[i]
			if s.reason[l.Var()] == nil || !s.litRedundant(l) {
				learnt[j] = l
				j++
			}
		}
		learnt = learnt[:j]
	}
	for _, l := range s.analyzeToClr {
		s.seen[l.Var()] = 0
	}

	// Compute backtrack level: second-highest level in the clause.
	if len(learnt) == 1 {
		btLevel = 0
	} else {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	if s.proof != nil {
		chain, pivots = s.resolveZeroCone(chain, pivots)
		s.proof.addLearnt(learnt, chain, pivots)
	}
	return learnt, btLevel
}

// litRedundant checks whether l is implied by the other literals of
// the learnt clause (marked in seen), walking reasons recursively.
func (s *Solver) litRedundant(l Lit) bool {
	s.analyzeStack = append(s.analyzeStack[:0], l)
	top := len(s.analyzeToClr)
	for len(s.analyzeStack) > 0 {
		v := s.analyzeStack[len(s.analyzeStack)-1].Var()
		s.analyzeStack = s.analyzeStack[:len(s.analyzeStack)-1]
		c := s.reason[v]
		for _, q := range c.lits[1:] {
			qv := q.Var()
			if s.seen[qv] == 0 && s.level[qv] > 0 {
				if s.reason[qv] != nil {
					s.seen[qv] = 1
					s.analyzeStack = append(s.analyzeStack, q)
					s.analyzeToClr = append(s.analyzeToClr, q)
				} else {
					// Hit a decision: l is not redundant; undo marks.
					for _, u := range s.analyzeToClr[top:] {
						s.seen[u.Var()] = 0
					}
					s.analyzeToClr = s.analyzeToClr[:top]
					return false
				}
			}
		}
	}
	return true
}

// analyzeFinal computes the assumption core given a failed assumption
// literal p (whose complement was implied by earlier assumptions).
// The core is expressed as the subset of assumption literals, as the
// caller passed them, including p itself.
func (s *Solver) analyzeFinal(p Lit) {
	s.conflict = s.conflict[:0]
	s.conflict = append(s.conflict, p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == nil {
			if s.level[v] > 0 {
				// A decision within the assumption levels is an
				// assumption literal; report it as given. (If both a
				// and ¬a were assumed, ¬p appears here and the core
				// is {p, ¬p}, which is correct.)
				s.conflict = append(s.conflict, s.trail[i])
			}
		} else {
			for _, q := range s.reason[v].lits[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
}

// analyzeFinalConflict computes the assumption core from a conflicting
// clause found while propagating assumption-level decisions.
func (s *Solver) analyzeFinalConflict(confl *clause) {
	s.conflict = s.conflict[:0]
	if s.decisionLevel() == 0 {
		return
	}
	for _, q := range confl.lits {
		if s.level[q.Var()] > 0 {
			s.seen[q.Var()] = 1
		}
	}
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == nil {
			// Decisions below the conflict are assumption literals.
			s.conflict = append(s.conflict, s.trail[i])
		} else {
			for _, q := range s.reason[v].lits[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
}

func (s *Solver) reduceDB() {
	// Sort learnts by activity ascending (simple insertion-free
	// approach: partial selection via two buckets around the median
	// would do, but a full sort keeps behavior predictable).
	ls := s.learnts
	sortClausesByAct(ls)
	extraLim := s.clauseInc / float64(len(ls)+1)
	j := 0
	for i, c := range ls {
		locked := s.reason[c.lits[0].Var()] == c && s.LitValue(c.lits[0]) == LTrue
		if len(c.lits) > 2 && !locked && (i < len(ls)/2 || float64(c.act) < extraLim) {
			s.detachClause(c)
			s.Stats.Removed++
			continue
		}
		ls[j] = c
		j++
	}
	s.learnts = ls[:j]
}

func sortClausesByAct(cs []*clause) {
	// Shell sort: no allocations, adequate for periodic reduction.
	for gap := len(cs) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(cs); i++ {
			c := cs[i]
			j := i
			for ; j >= gap && cs[j-gap].act > c.act; j -= gap {
				cs[j] = cs[j-gap]
			}
			cs[j] = c
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based),
// scaled by base.
func luby(base float64, i int) float64 {
	// Find the finite subsequence containing i and its position.
	size, seq := 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i = i % size
	}
	p := 1.0
	for k := 0; k < seq; k++ {
		p *= 2
	}
	return base * p
}

// search runs CDCL until a model is found, the formula is refuted,
// the per-restart conflict cap is hit, or the budget is exhausted.
func (s *Solver) search(nofConflicts int64, assumptions []Lit) Status {
	conflicts := int64(0)
	for {
		if s.interrupted.Load() {
			s.cancelUntil(0)
			return Unknown
		}
		confl := s.propagate()
		if confl != nil {
			s.Stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				if s.proof != nil {
					s.addFinal(confl)
				}
				s.okay = false
				return Unsat
			}
			if s.decisionLevel() <= int32(len(assumptions)) {
				// Conflict entirely above assumption decisions:
				// derive the assumption core.
				s.analyzeFinalConflict(confl)
				// Also learn the clause so future calls benefit.
				learnt, btLevel := s.analyze(confl)
				s.cancelUntil(btLevel)
				s.recordLearnt(learnt)
				if len(s.conflict) == 0 {
					s.okay = false
				}
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			s.recordLearnt(learnt)
			s.varDecayActivity()
			s.claDecayActivity()
			continue
		}
		// No conflict.
		if nofConflicts >= 0 && conflicts >= nofConflicts {
			s.cancelUntil(int32(len(assumptions)))
			if s.decisionLevel() > 0 {
				s.cancelUntil(0)
			}
			return Unknown
		}
		if s.budgetExhausted() {
			s.cancelUntil(0)
			return Unknown
		}
		if len(s.learnts) >= len(s.clauses)/2+10000 {
			s.reduceDB()
		}
		// Assumptions act as forced decisions at the lowest levels.
		var next Lit = LitUndef
		for int(s.decisionLevel()) < len(assumptions) {
			p := assumptions[s.decisionLevel()]
			switch s.LitValue(p) {
			case LTrue:
				s.newDecisionLevel() // dummy level keeps indices aligned
			case LFalse:
				s.analyzeFinal(p)
				return Unsat
			default:
				next = p
			}
			if next != LitUndef {
				break
			}
		}
		if next == LitUndef {
			s.Stats.Decisions++
			if s.order.empty() {
				next = LitUndef
			} else {
				for !s.order.empty() {
					v := s.order.removeMin()
					if s.assigns[v] == LUndef {
						next = MkLit(v, s.polarity[v])
						break
					}
				}
			}
			if next == LitUndef {
				// All variables assigned: model found.
				s.model = append(s.model[:0], s.assigns...)
				return Sat
			}
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, nil)
	}
}

func (s *Solver) recordLearnt(learnt []Lit) {
	s.Stats.Learnts++
	if len(learnt) == 1 {
		if s.proof != nil {
			s.unitID[learnt[0].Var()] = s.proof.lastID
		}
		s.uncheckedEnqueue(learnt[0], nil)
		return
	}
	c := &clause{lits: append([]Lit(nil), learnt...), learnt: true}
	if s.proof != nil {
		c.id = s.proof.lastID
	}
	s.learnts = append(s.learnts, c)
	s.attachClause(c)
	s.claBumpActivity(c)
	s.uncheckedEnqueue(learnt[0], c)
}

func (s *Solver) budgetExhausted() bool {
	return (s.confBudget >= 0 && s.Stats.Conflicts >= s.confBudget) ||
		(s.propBudget >= 0 && s.Stats.Propagations >= s.propBudget)
}

// Solve decides satisfiability under the given assumptions.
// After Unsat, Core/Failed expose the assumption core; after Sat,
// ModelValue reads the model.
func (s *Solver) Solve(assumptions ...Lit) Status {
	s.Stats.SolveCalls++
	s.conflict = s.conflict[:0]
	if !s.okay {
		return Unsat
	}
	// Reset per-call budgets relative to current counters.
	confLimit := int64(-1)
	if s.confBudget >= 0 {
		confLimit = s.Stats.Conflicts + s.confBudget
	}
	propLimit := int64(-1)
	if s.propBudget >= 0 {
		propLimit = s.Stats.Propagations + s.propBudget
	}
	savedConf, savedProp := s.confBudget, s.propBudget
	s.confBudget, s.propBudget = confLimit, propLimit
	defer func() {
		s.confBudget, s.propBudget = savedConf, savedProp
		s.cancelUntil(0)
	}()

	status := Unknown
	s.lubyIdx = 0
	for status == Unknown {
		restartLen := int64(luby(100, s.lubyIdx))
		s.lubyIdx++
		s.Stats.Starts++
		status = s.searchGuarded(restartLen, assumptions)
		if (s.budgetExhaustedAbs() || s.interrupted.Load()) && status == Unknown {
			break
		}
	}
	return status
}

func (s *Solver) searchGuarded(nofConflicts int64, assumptions []Lit) Status {
	st := s.search(nofConflicts, assumptions)
	if st == Unknown {
		// Restart: drop decisions but keep learnt clauses.
		s.cancelUntil(0)
	}
	return st
}

func (s *Solver) budgetExhaustedAbs() bool {
	return (s.confBudget >= 0 && s.Stats.Conflicts >= s.confBudget) ||
		(s.propBudget >= 0 && s.Stats.Propagations >= s.propBudget)
}

// Simplify removes clauses satisfied at the top level. It may only be
// called at decision level 0.
func (s *Solver) Simplify() bool {
	if !s.okay {
		return false
	}
	if s.propagate() != nil {
		s.okay = false
		return false
	}
	s.clauses = s.simplifyList(s.clauses)
	s.learnts = s.simplifyList(s.learnts)
	return true
}

func (s *Solver) simplifyList(cs []*clause) []*clause {
	j := 0
	for _, c := range cs {
		satisfied := false
		for _, l := range c.lits {
			if s.LitValue(l) == LTrue {
				satisfied = true
				break
			}
		}
		if satisfied && s.reason[c.lits[0].Var()] != c {
			s.detachClause(c)
			continue
		}
		cs[j] = c
		j++
	}
	return cs[:j]
}
