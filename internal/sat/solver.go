package sat

import "sync/atomic"

// watcher pairs a watched clause with a blocker literal: if the
// blocker is already true the clause is satisfied and need not be
// inspected. The low bit of cb tags binary clauses, whose other
// literal IS the blocker, so binary propagation never touches clause
// memory at all.
type watcher struct {
	cb      uint32 // cref<<1 | binary
	blocker Lit
}

func mkWatcher(c CRef, blocker Lit, binary bool) watcher {
	cb := uint32(c) << 1
	if binary {
		cb |= 1
	}
	return watcher{cb: cb, blocker: blocker}
}

func (w watcher) cref() CRef { return CRef(w.cb >> 1) }

// Stats collects solver counters, exposed for the experiment harness
// (e.g. counting SAT calls made by minimize_assumptions) and for the
// per-solver profiling surfaced by ecobench.
type Stats struct {
	Starts       int64
	Decisions    int64
	Propagations int64
	Conflicts    int64
	SolveCalls   int64
	Learnts      int64
	Removed      int64

	// Glucose-kernel counters.
	Restarts        int64 // restarts fired (both policies)
	BlockedRestarts int64 // Glucose restarts delayed by trail blocking
	Reductions      int64 // learnt-DB reduction passes
	LBDSum          int64 // sum of LBDs at learning time (avg = LBDSum/Learnts)
	CorePromotions  int64 // local-tier clauses promoted to the core tier
	ArenaGCs        int64 // clause-arena compactions

	// Portfolio clause-sharing counters.
	SharedOut int64 // learnt clauses exported to an exchange
	SharedIn  int64 // foreign clauses imported via ImportLearnt
}

// Add accumulates o into s, for aggregating counters across solvers.
func (s *Stats) Add(o Stats) {
	s.Starts += o.Starts
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.Conflicts += o.Conflicts
	s.SolveCalls += o.SolveCalls
	s.Learnts += o.Learnts
	s.Removed += o.Removed
	s.Restarts += o.Restarts
	s.BlockedRestarts += o.BlockedRestarts
	s.Reductions += o.Reductions
	s.LBDSum += o.LBDSum
	s.CorePromotions += o.CorePromotions
	s.ArenaGCs += o.ArenaGCs
	s.SharedOut += o.SharedOut
	s.SharedIn += o.SharedIn
}

// Solver is an incremental CDCL SAT solver. The zero value is not
// usable; create instances with New or NewWithConfig.
type Solver struct {
	ca      arena  // flat clause storage
	clauses []CRef // problem clauses

	// Learnt clauses live in two tiers: core (LBD <= cfg.CoreLBD,
	// kept forever) and local (evicted by LBD-then-activity).
	coreLearnts []CRef
	learnts     []CRef
	reduceLim   int // local-tier size triggering the next reduction

	watches [][]watcher // indexed by Lit
	assigns []LBool     // indexed by Var
	level   []int32     // indexed by Var
	reason  []CRef      // indexed by Var; CRefUndef for decisions
	seen    []byte      // scratch for analyze

	trail    []Lit
	trailLim []int32
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap
	polarity []bool // saved phases; true = last assigned false

	clauseInc float64

	cfg Config

	okay bool // false once a top-level conflict proves UNSAT

	model    []LBool
	conflict []Lit // assumption core after Unsat under assumptions

	// Budgets; negative means unlimited.
	confBudget int64
	propBudget int64

	// interrupted is set asynchronously by Interrupt and polled in the
	// search loop; while set, Solve returns Unknown. It is the only
	// field that may be touched from another goroutine.
	interrupted atomic.Bool

	// stop is an optional shared stop flag installed by SetStopSignal.
	// Unlike interrupted it belongs to the caller (the portfolio sets
	// one flag to halt all losing members once a race is decided) and
	// is not sticky from the solver's point of view: the owner clears
	// it and the solver runs again.
	stop *atomic.Bool

	// onLearnt, if set, observes every learnt clause (portfolio clause
	// export). The slice is scratch memory — the hook must copy.
	onLearnt func(lits []Lit, lbd uint32)
	// onRestart, if set, runs at every restart boundary (decision
	// level 0), the safe point for importing foreign clauses.
	onRestart func()

	// Restart state.
	lubyIdx    int
	lbdQueue   boundedQueue // recent learnt LBDs (Glucose fast average)
	trailQueue boundedQueue // recent trail sizes at conflicts (blocking)
	sumLBD     float64      // all-time LBD sum (Glucose slow average)

	// LBD computation scratch: per-level stamps.
	lbdStamp   []uint32 // indexed by decision level
	lbdCounter uint32

	analyzeStack []Lit
	analyzeToClr []Lit
	addTmp       []Lit

	Stats Stats

	proof    *Proof       // non-nil when proof logging is enabled
	unitID   []int32      // proof id of the unit clause fixing a var at level 0
	zeroNeed map[Var]bool // scratch: level-0 literals analyze dropped
}

// New returns an empty solver with the default (Glucose-style)
// configuration.
func New() *Solver { return NewWithConfig(DefaultConfig()) }

// NewWithConfig returns an empty solver with explicit heuristics
// configuration. Zero fields of cfg take their defaults.
func NewWithConfig(cfg Config) *Solver {
	cfg.applyDefaults()
	s := &Solver{
		varInc:     1,
		clauseInc:  1,
		okay:       true,
		confBudget: -1,
		propBudget: -1,
		cfg:        cfg,
		reduceLim:  cfg.FirstReduce,
		lbdQueue:   newBoundedQueue(cfg.LBDWindow),
		trailQueue: newBoundedQueue(cfg.TrailWindow),
		lbdStamp:   make([]uint32, 1),
	}
	s.order = newVarHeap(&s.activity)
	return s
}

// Config returns the heuristics configuration the solver runs with.
func (s *Solver) Config() Config { return s.cfg }

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses currently held.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// LearntDB reports the current sizes of the two learnt-clause tiers.
func (s *Solver) LearntDB() (core, local int) {
	return len(s.coreLearnts), len(s.learnts)
}

// Okay reports whether the clause database is still consistent at the
// top level (false once UNSAT has been proved without assumptions).
func (s *Solver) Okay() bool { return s.okay }

// NewVar creates a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, LUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, CRefUndef)
	s.seen = append(s.seen, 0)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, s.initialPhase(v))
	s.watches = append(s.watches, nil, nil)
	s.unitID = append(s.unitID, 0)
	s.lbdStamp = append(s.lbdStamp, 0)
	s.order.insert(v)
	return v
}

// initialPhase computes the saved-phase seed of a fresh variable
// (true = branch on the negative literal first, the MiniSat default).
func (s *Solver) initialPhase(v Var) bool {
	switch s.cfg.Phase {
	case PhasePos:
		return false
	case PhaseRand:
		// Deterministic per-variable hash (splitmix64 finalizer) so
		// random phases never depend on shared RNG state.
		x := s.cfg.Seed + uint64(v)*0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x&1 == 0
	default:
		return true
	}
}

// EnsureVars creates variables until at least n exist.
func (s *Solver) EnsureVars(n int) {
	for len(s.assigns) < n {
		s.NewVar()
	}
}

// Value returns the current assignment of v (valid during search and,
// after a Sat answer, for reading the model).
func (s *Solver) Value(v Var) LBool { return s.assigns[v] }

// LitValue returns the value of literal l under the current assignment.
func (s *Solver) LitValue(l Lit) LBool {
	val := s.assigns[l.Var()]
	if val == LUndef {
		return LUndef
	}
	if l.Sign() {
		return val.Not()
	}
	return val
}

// ModelValue returns the value of l in the most recent model.
// Valid only after Solve returned Sat. Variables created after that
// Solve read as LUndef.
func (s *Solver) ModelValue(l Lit) LBool {
	if int(l.Var()) >= len(s.model) {
		return LUndef
	}
	val := s.model[l.Var()]
	if val == LUndef {
		return LUndef
	}
	if l.Sign() {
		return val.Not()
	}
	return val
}

// ModelBool returns the model value of l as a concrete bool,
// treating an unconstrained variable as false.
func (s *Solver) ModelBool(l Lit) bool { return s.ModelValue(l) == LTrue }

// Failed reports, after Solve returned Unsat under assumptions,
// whether assumption a participated in the final conflict
// (MiniSat's analyze_final core membership test).
func (s *Solver) Failed(a Lit) bool {
	for _, l := range s.conflict {
		if l == a {
			return true
		}
	}
	return false
}

// Core returns the subset of assumption literals involved in the
// final conflict of the last Unsat answer. The slice aliases internal
// state and is valid until the next Solve call.
func (s *Solver) Core() []Lit { return s.conflict }

// SetConfBudget limits the number of conflicts in subsequent Solve
// calls; negative means unlimited. The budget applies per call.
func (s *Solver) SetConfBudget(n int64) { s.confBudget = n }

// SetPropBudget limits the number of propagations in subsequent Solve
// calls; negative means unlimited. The budget applies per call.
func (s *Solver) SetPropBudget(n int64) { s.propBudget = n }

// Interrupt asynchronously aborts the in-flight Solve call (and makes
// any future call return immediately) with status Unknown. It is the
// only Solver method safe to call from another goroutine; the flag
// stays set until ClearInterrupt.
func (s *Solver) Interrupt() { s.interrupted.Store(true) }

// ClearInterrupt re-arms the solver after an Interrupt so subsequent
// Solve calls run normally.
func (s *Solver) ClearInterrupt() { s.interrupted.Store(false) }

// Interrupted reports whether Interrupt has been called and not yet
// cleared.
func (s *Solver) Interrupted() bool { return s.interrupted.Load() }

// SetStopSignal installs a shared stop flag checked alongside the
// interrupt flag: while *f is true, Solve returns Unknown. The flag is
// owned by the caller — clearing it re-enables the solver without
// touching the sticky interrupt. Pass nil to remove.
func (s *Solver) SetStopSignal(f *atomic.Bool) { s.stop = f }

// stopped reports whether search must wind down, for either reason.
func (s *Solver) stopped() bool {
	return s.interrupted.Load() || (s.stop != nil && s.stop.Load())
}

// SetLearntHook installs an observer called for every clause the
// solver learns (including units), with its LBD. The literal slice is
// reused scratch memory: the hook must copy it to retain it. Pass nil
// to remove.
func (s *Solver) SetLearntHook(fn func(lits []Lit, lbd uint32)) { s.onLearnt = fn }

// SetRestartHook installs a callback run at every restart boundary,
// with the trail unwound to decision level 0 — the safe point to feed
// foreign clauses in via ImportLearnt. Pass nil to remove.
func (s *Solver) SetRestartHook(fn func()) { s.onRestart = fn }

// ImportLearnt adds a clause learnt by another solver over the same
// formula. It must be called at decision level 0 (between Solve calls
// or from a restart hook). Clauses mentioning unknown variables are
// rejected, and proof-logging solvers refuse imports outright — a
// foreign clause has no derivation in the local proof.
func (s *Solver) ImportLearnt(lits []Lit) bool {
	if s.proof != nil || !s.okay {
		return false
	}
	for _, l := range lits {
		if int(l.Var()) >= len(s.assigns) {
			return false
		}
	}
	s.Stats.SharedIn++
	return s.AddClause(lits...)
}

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

// AddClause adds a clause over the given literals. It returns false
// if the clause database became trivially unsatisfiable. The input
// slice is not retained.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.okay {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause called during search")
	}
	// Sort, dedupe, detect tautologies and satisfied clauses. Literals
	// already false at level 0 are dropped — except under proof
	// logging, where dropping them would be an unrecorded resolution
	// step, so they are kept and handled below.
	s.addTmp = append(s.addTmp[:0], lits...)
	sortLits(s.addTmp)
	out := s.addTmp[:0]
	var prev Lit = LitUndef
	for _, l := range s.addTmp {
		if int(l.Var()) >= len(s.assigns) {
			panic("sat: literal over unknown variable")
		}
		switch {
		case s.LitValue(l) == LTrue || l == prev.Not():
			return true // satisfied or tautology
		case l == prev:
			continue // duplicate
		case s.LitValue(l) == LFalse && s.proof == nil:
			continue // falsified at level 0
		}
		out = append(out, l)
		prev = l
	}
	if s.proof != nil {
		s.proof.addRoot(out)
		// Move non-false literals to the watch positions.
		w := 0
		for i, l := range out {
			if s.LitValue(l) != LFalse {
				out[i], out[w] = out[w], out[i]
				w++
				if w == 2 {
					break
				}
			}
		}
		switch w {
		case 0:
			// All literals false at level 0: this clause refutes the
			// formula outright.
			c := s.ca.alloc(out, false, s.proof.lastID)
			s.addFinal(c)
			s.okay = false
			return false
		case 1:
			if len(out) == 1 {
				s.unitID[out[0].Var()] = s.proof.lastID
				s.uncheckedEnqueue(out[0], CRefUndef)
			} else {
				c := s.ca.alloc(out, false, s.proof.lastID)
				s.clauses = append(s.clauses, c)
				s.attachClause(c)
				s.uncheckedEnqueue(out[0], c)
			}
			return s.propagateRoot()
		default:
			c := s.ca.alloc(out, false, s.proof.lastID)
			s.clauses = append(s.clauses, c)
			s.attachClause(c)
			return true
		}
	}
	switch len(out) {
	case 0:
		s.okay = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], CRefUndef)
		return s.propagateRoot()
	}
	c := s.ca.alloc(out, false, 0)
	s.clauses = append(s.clauses, c)
	s.attachClause(c)
	return true
}

// propagateRoot runs propagation at decision level 0 and records the
// refutation in the proof log if a conflict arises.
func (s *Solver) propagateRoot() bool {
	if confl := s.propagate(); confl != CRefUndef {
		if s.proof != nil {
			s.addFinal(confl)
		}
		s.okay = false
	}
	return s.okay
}

func sortLits(ls []Lit) {
	// Insertion sort: clauses are short and this avoids interface
	// overhead from sort.Slice on the hot path.
	for i := 1; i < len(ls); i++ {
		x := ls[i]
		j := i - 1
		for j >= 0 && ls[j] > x {
			ls[j+1] = ls[j]
			j--
		}
		ls[j+1] = x
	}
}

func (s *Solver) attachClause(c CRef) {
	l0, l1 := s.ca.lit(c, 0), s.ca.lit(c, 1)
	bin := s.ca.size(c) == 2
	s.watches[l0.Not()] = append(s.watches[l0.Not()], mkWatcher(c, l1, bin))
	s.watches[l1.Not()] = append(s.watches[l1.Not()], mkWatcher(c, l0, bin))
}

func (s *Solver) detachClause(c CRef) {
	s.removeWatch(s.ca.lit(c, 0).Not(), c)
	s.removeWatch(s.ca.lit(c, 1).Not(), c)
}

func (s *Solver) removeWatch(l Lit, c CRef) {
	ws := s.watches[l]
	for i := range ws {
		if ws[i].cref() == c {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Solver) uncheckedEnqueue(l Lit, from CRef) {
	v := l.Var()
	s.assigns[v] = liftBool(!l.Sign())
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation over the flat arena and returns
// the conflicting clause reference, or CRefUndef. Binary clauses are
// resolved entirely from the watcher (blocker = other literal).
func (s *Solver) propagate() CRef {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		data := s.ca.data
		n := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			switch s.LitValue(w.blocker) {
			case LTrue:
				ws[n] = w
				n++
				continue
			case LFalse:
				if w.cb&1 != 0 {
					// Binary conflict: both literals false.
					ws[n] = w
					n++
					for i++; i < len(ws); i++ {
						ws[n] = ws[i]
						n++
					}
					s.watches[p] = ws[:n]
					s.qhead = len(s.trail)
					return w.cref()
				}
			default:
				if w.cb&1 != 0 {
					// Binary unit: imply the blocker. Normalize the
					// implied literal to position 0 so reason-side
					// consumers (analyze, proofs) see the MiniSat
					// layout.
					c := w.cref()
					if Lit(data[c+claLits]) != w.blocker {
						data[c+claLits], data[c+claLits+1] = data[c+claLits+1], data[c+claLits]
					}
					ws[n] = w
					n++
					s.uncheckedEnqueue(w.blocker, c)
					continue
				}
			}
			c := w.cref()
			base := c + claLits
			// Make sure the false literal is position 1.
			if Lit(data[base]) == p.Not() {
				data[base], data[base+1] = data[base+1], data[base]
			}
			first := Lit(data[base])
			if first != w.blocker && s.LitValue(first) == LTrue {
				ws[n] = watcher{cb: w.cb, blocker: first}
				n++
				continue
			}
			// Look for a new literal to watch.
			end := base + CRef(data[c]>>2)
			for k := base + 2; k < end; k++ {
				if s.LitValue(Lit(data[k])) != LFalse {
					data[base+1], data[k] = data[k], data[base+1]
					nw := Lit(data[base+1]).Not()
					s.watches[nw] = append(s.watches[nw], watcher{cb: w.cb, blocker: first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[n] = watcher{cb: w.cb, blocker: first}
			n++
			if s.LitValue(first) == LFalse {
				// Conflict: copy remaining watchers back and stop.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				s.watches[p] = ws[:n]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:n]
	}
	return CRefUndef
}

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, int32(len(s.trail)))
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		v := s.trail[i].Var()
		s.assigns[v] = LUndef
		s.reason[v] = CRefUndef
		s.polarity[v] = s.trail[i].Sign()
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.qhead = len(s.trail)
	s.trailLim = s.trailLim[:lvl]
}

func (s *Solver) varBumpActivity(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
		s.order.rebuild()
	}
	s.order.decrease(v)
}

func (s *Solver) varDecayActivity() { s.varInc /= s.cfg.VarDecay }

func (s *Solver) claBumpActivity(c CRef) {
	a := s.ca.act(c) + float32(s.clauseInc)
	s.ca.setAct(c, a)
	if a > 1e20 {
		for _, lc := range s.learnts {
			s.ca.setAct(lc, s.ca.act(lc)*1e-20)
		}
		for _, lc := range s.coreLearnts {
			s.ca.setAct(lc, s.ca.act(lc)*1e-20)
		}
		s.clauseInc *= 1e-20
	}
}

func (s *Solver) claDecayActivity() { s.clauseInc /= s.cfg.ClauseDecay }

// computeLBD returns the literal block distance of lits: the number
// of distinct non-zero decision levels among them, computed with a
// per-level stamp so repeated calls are O(len(lits)).
func (s *Solver) computeLBD(lits []Lit) uint32 {
	s.lbdCounter++
	stamp := s.lbdStamp
	var lbd uint32
	for _, l := range lits {
		lev := s.level[l.Var()]
		if lev > 0 && stamp[lev] != s.lbdCounter {
			stamp[lev] = s.lbdCounter
			lbd++
		}
	}
	return lbd
}

// analyze derives a first-UIP learnt clause from the conflict, the
// backtrack level, and the clause's LBD at learning time. The learnt
// slice is owned by the caller.
func (s *Solver) analyze(confl CRef) (learnt []Lit, btLevel int32, lbd uint32) {
	learnt = append(learnt, LitUndef) // placeholder for the asserting literal
	var p Lit = LitUndef
	idx := len(s.trail) - 1
	pathC := 0
	var chain []int32
	var pivots []Var
	if s.proof != nil {
		chain = append(chain, s.ca.id(confl))
	}
	for {
		cLits := s.ca.lits(confl)
		if s.ca.isLearnt(confl) {
			s.claBumpActivity(confl)
			// Dynamic LBD update (Glucose): a clause that keeps
			// participating in conflicts at lower LBD is worth more.
			if len(cLits) > 2 {
				if nl := s.computeLBD(cLits); nl < s.ca.lbd(confl) {
					s.ca.setLBD(confl, nl)
				}
			}
		}
		start := 0
		if p != LitUndef {
			start = 1
		}
		for _, q := range cLits[start:] {
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.varBumpActivity(v)
				s.seen[v] = 1
				if s.level[v] >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			} else if s.level[v] == 0 && s.proof != nil {
				// Dropping a level-0 literal is a resolution with the
				// unit cone; remember to record it.
				s.zeroNeed[v] = true
			}
		}
		// Select next literal to look at.
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = 0
		pathC--
		if pathC == 0 {
			break
		}
		if s.proof != nil && confl != CRefUndef {
			chain = append(chain, s.ca.id(confl))
			pivots = append(pivots, p.Var())
		}
	}
	learnt[0] = p.Not()

	// Clause minimization: remove literals implied by the rest.
	s.analyzeToClr = append(s.analyzeToClr[:0], learnt...)
	for _, l := range learnt {
		s.seen[l.Var()] = 1
	}
	if s.proof == nil {
		// Minimization changes the resolution chain in ways the simple
		// chain logger does not track, so skip it under proof logging.
		j := 1
		for i := 1; i < len(learnt); i++ {
			l := learnt[i]
			if s.reason[l.Var()] == CRefUndef || !s.litRedundant(l) {
				learnt[j] = l
				j++
			}
		}
		learnt = learnt[:j]
	}
	for _, l := range s.analyzeToClr {
		s.seen[l.Var()] = 0
	}

	// LBD at learning time (levels are still pre-backtrack).
	lbd = s.computeLBD(learnt)

	// Compute backtrack level: second-highest level in the clause.
	if len(learnt) == 1 {
		btLevel = 0
	} else {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	if s.proof != nil {
		chain, pivots = s.resolveZeroCone(chain, pivots)
		s.proof.addLearnt(learnt, chain, pivots)
	}
	return learnt, btLevel, lbd
}

// litRedundant checks whether l is implied by the other literals of
// the learnt clause (marked in seen), walking reasons recursively.
func (s *Solver) litRedundant(l Lit) bool {
	s.analyzeStack = append(s.analyzeStack[:0], l)
	top := len(s.analyzeToClr)
	for len(s.analyzeStack) > 0 {
		v := s.analyzeStack[len(s.analyzeStack)-1].Var()
		s.analyzeStack = s.analyzeStack[:len(s.analyzeStack)-1]
		c := s.reason[v]
		for _, q := range s.ca.lits(c)[1:] {
			qv := q.Var()
			if s.seen[qv] == 0 && s.level[qv] > 0 {
				if s.reason[qv] != CRefUndef {
					s.seen[qv] = 1
					s.analyzeStack = append(s.analyzeStack, q)
					s.analyzeToClr = append(s.analyzeToClr, q)
				} else {
					// Hit a decision: l is not redundant; undo marks.
					for _, u := range s.analyzeToClr[top:] {
						s.seen[u.Var()] = 0
					}
					s.analyzeToClr = s.analyzeToClr[:top]
					return false
				}
			}
		}
	}
	return true
}

// analyzeFinal computes the assumption core given a failed assumption
// literal p (whose complement was implied by earlier assumptions).
// The core is expressed as the subset of assumption literals, as the
// caller passed them, including p itself.
func (s *Solver) analyzeFinal(p Lit) {
	s.conflict = s.conflict[:0]
	s.conflict = append(s.conflict, p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == CRefUndef {
			if s.level[v] > 0 {
				// A decision within the assumption levels is an
				// assumption literal; report it as given. (If both a
				// and ¬a were assumed, ¬p appears here and the core
				// is {p, ¬p}, which is correct.)
				s.conflict = append(s.conflict, s.trail[i])
			}
		} else {
			for _, q := range s.ca.lits(s.reason[v])[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
}

// analyzeFinalConflict computes the assumption core from a conflicting
// clause found while propagating assumption-level decisions.
func (s *Solver) analyzeFinalConflict(confl CRef) {
	s.conflict = s.conflict[:0]
	if s.decisionLevel() == 0 {
		return
	}
	for _, q := range s.ca.lits(confl) {
		if s.level[q.Var()] > 0 {
			s.seen[q.Var()] = 1
		}
	}
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == CRefUndef {
			// Decisions below the conflict are assumption literals.
			s.conflict = append(s.conflict, s.trail[i])
		} else {
			for _, q := range s.ca.lits(s.reason[v])[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
}

// locked reports whether c is the reason of its first literal's
// assignment and therefore must not be removed.
func (s *Solver) locked(c CRef) bool {
	l0 := s.ca.lit(c, 0)
	return s.reason[l0.Var()] == c && s.LitValue(l0) == LTrue
}

// reduceDB trims the local learnt tier. Clauses whose dynamic LBD
// improved to the core cut are promoted first (kept forever); the
// remainder is ranked worst-first by LBD then activity, and the worse
// half is evicted, sparing locked (reason) and binary clauses.
func (s *Solver) reduceDB() {
	s.Stats.Reductions++
	// Promote improved clauses to the core tier.
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if s.ca.lbd(c) <= s.cfg.CoreLBD {
			s.coreLearnts = append(s.coreLearnts, c)
			s.Stats.CorePromotions++
			continue
		}
		kept = append(kept, c)
	}
	s.learnts = kept
	s.sortLearntsWorstFirst()
	half := len(s.learnts) / 2
	j := 0
	for i, c := range s.learnts {
		if i < half && s.ca.size(c) > 2 && !s.locked(c) {
			s.detachClause(c)
			s.ca.free(c)
			s.Stats.Removed++
			continue
		}
		s.learnts[j] = c
		j++
	}
	s.learnts = s.learnts[:j]
	s.reduceLim += s.cfg.ReduceInc
	s.maybeGC()
}

// sortLearntsWorstFirst shell-sorts the local tier so that eviction
// candidates (high LBD, then low activity) come first. No allocations.
func (s *Solver) sortLearntsWorstFirst() {
	cs := s.learnts
	worse := func(a, b CRef) bool {
		la, lb := s.ca.lbd(a), s.ca.lbd(b)
		if la != lb {
			return la > lb
		}
		return s.ca.act(a) < s.ca.act(b)
	}
	for gap := len(cs) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(cs); i++ {
			c := cs[i]
			j := i
			for ; j >= gap && worse(c, cs[j-gap]); j -= gap {
				cs[j] = cs[j-gap]
			}
			cs[j] = c
		}
	}
}

// maybeGC compacts the clause arena once a third of it is garbage.
func (s *Solver) maybeGC() {
	if uint64(s.ca.wasted)*3 < uint64(len(s.ca.data)) {
		return
	}
	s.garbageCollect()
}

// garbageCollect copies every live clause into a fresh arena and
// rewrites all references (watchers, reasons, clause lists) through
// forwarding CRefs left in the old storage — MiniSat's relocAll.
func (s *Solver) garbageCollect() {
	to := arena{data: make([]uint32, 0, len(s.ca.data)-int(s.ca.wasted))}
	for li := range s.watches {
		ws := s.watches[li]
		for i := range ws {
			bin := ws[i].cb & 1
			ws[i].cb = uint32(s.relocate(&to, ws[i].cref()))<<1 | bin
		}
	}
	for _, l := range s.trail {
		v := l.Var()
		if r := s.reason[v]; r != CRefUndef {
			s.reason[v] = s.relocate(&to, r)
		}
	}
	for i, c := range s.clauses {
		s.clauses[i] = s.relocate(&to, c)
	}
	for i, c := range s.coreLearnts {
		s.coreLearnts[i] = s.relocate(&to, c)
	}
	for i, c := range s.learnts {
		s.learnts[i] = s.relocate(&to, c)
	}
	s.ca = to
	s.Stats.ArenaGCs++
}

// relocate moves one clause into the destination arena on first
// touch, leaving a forwarding reference behind.
func (s *Solver) relocate(to *arena, c CRef) CRef {
	h := s.ca.data[c]
	if h&flagReloc != 0 {
		return CRef(s.ca.data[c+claID])
	}
	n := CRef(claLits + int(h>>2))
	nc := CRef(len(to.data))
	to.data = append(to.data, s.ca.data[c:c+n]...)
	s.ca.data[c] = h | flagReloc
	s.ca.data[c+claID] = uint32(nc)
	return nc
}

// luby computes the Luby restart sequence value for index i (1-based),
// scaled by base.
func luby(base float64, i int) float64 {
	// Find the finite subsequence containing i and its position.
	size, seq := 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i = i % size
	}
	p := 1.0
	for k := 0; k < seq; k++ {
		p *= 2
	}
	return base * p
}

// shouldRestart decides, at a conflict-free point, whether to end the
// current search segment. nofConflicts >= 0 selects the Luby budget;
// otherwise the Glucose fast/slow comparison applies.
func (s *Solver) shouldRestart(conflicts, nofConflicts int64) bool {
	if nofConflicts >= 0 {
		if conflicts >= nofConflicts {
			s.Stats.Restarts++
			return true
		}
		return false
	}
	if !s.lbdQueue.full() || s.Stats.Conflicts == 0 {
		return false
	}
	if s.lbdQueue.avg()*s.cfg.RestartMargin > s.sumLBD/float64(s.Stats.Conflicts) {
		s.lbdQueue.clear()
		s.Stats.Restarts++
		return true
	}
	return false
}

// search runs CDCL until a model is found, the formula is refuted,
// a restart fires, or the budget is exhausted.
func (s *Solver) search(nofConflicts int64, assumptions []Lit) Status {
	conflicts := int64(0)
	for {
		if s.stopped() {
			s.cancelUntil(0)
			return Unknown
		}
		confl := s.propagate()
		if confl != CRefUndef {
			s.Stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				if s.proof != nil {
					s.addFinal(confl)
				}
				s.okay = false
				return Unsat
			}
			// Glucose restart blocking: a trail much longer than the
			// recent average suggests the search is closing in on a
			// model; postpone any pending restart.
			s.trailQueue.push(uint32(len(s.trail)))
			if s.cfg.Restart == RestartGlucose &&
				s.Stats.Conflicts > s.cfg.BlockMinConflicts &&
				s.lbdQueue.full() &&
				float64(len(s.trail)) > s.cfg.BlockMargin*s.trailQueue.avg() {
				s.lbdQueue.clear()
				s.Stats.BlockedRestarts++
			}
			if s.decisionLevel() <= int32(len(assumptions)) {
				// Conflict entirely above assumption decisions:
				// derive the assumption core.
				s.analyzeFinalConflict(confl)
				// Also learn the clause so future calls benefit.
				learnt, btLevel, lbd := s.analyze(confl)
				s.noteLBD(lbd)
				s.cancelUntil(btLevel)
				s.recordLearnt(learnt, lbd)
				if len(s.conflict) == 0 {
					s.okay = false
				}
				return Unsat
			}
			learnt, btLevel, lbd := s.analyze(confl)
			s.noteLBD(lbd)
			s.cancelUntil(btLevel)
			s.recordLearnt(learnt, lbd)
			s.varDecayActivity()
			s.claDecayActivity()
			continue
		}
		// No conflict.
		if s.shouldRestart(conflicts, nofConflicts) {
			s.cancelUntil(0)
			return Unknown
		}
		if s.budgetExhausted() {
			s.cancelUntil(0)
			return Unknown
		}
		if len(s.learnts) >= s.reduceLim {
			s.reduceDB()
		}
		// Assumptions act as forced decisions at the lowest levels.
		var next Lit = LitUndef
		for int(s.decisionLevel()) < len(assumptions) {
			p := assumptions[s.decisionLevel()]
			switch s.LitValue(p) {
			case LTrue:
				s.newDecisionLevel() // dummy level keeps indices aligned
			case LFalse:
				s.analyzeFinal(p)
				return Unsat
			default:
				next = p
			}
			if next != LitUndef {
				break
			}
		}
		if next == LitUndef {
			s.Stats.Decisions++
			for !s.order.empty() {
				v := s.order.removeMin()
				if s.assigns[v] == LUndef {
					next = MkLit(v, s.polarity[v])
					break
				}
			}
			if next == LitUndef {
				// All variables assigned: model found.
				s.model = append(s.model[:0], s.assigns...)
				return Sat
			}
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, CRefUndef)
	}
}

// noteLBD feeds a freshly learnt clause's LBD into the restart
// averages and the diagnostics counters.
func (s *Solver) noteLBD(lbd uint32) {
	s.sumLBD += float64(lbd)
	s.Stats.LBDSum += int64(lbd)
	s.lbdQueue.push(lbd)
}

func (s *Solver) recordLearnt(learnt []Lit, lbd uint32) {
	s.Stats.Learnts++
	if s.onLearnt != nil {
		s.onLearnt(learnt, lbd)
	}
	if len(learnt) == 1 {
		if s.proof != nil {
			s.unitID[learnt[0].Var()] = s.proof.lastID
		}
		s.uncheckedEnqueue(learnt[0], CRefUndef)
		return
	}
	id := int32(0)
	if s.proof != nil {
		id = s.proof.lastID
	}
	c := s.ca.alloc(learnt, true, id)
	s.ca.setLBD(c, lbd)
	if lbd <= s.cfg.CoreLBD {
		s.coreLearnts = append(s.coreLearnts, c)
	} else {
		s.learnts = append(s.learnts, c)
	}
	s.attachClause(c)
	s.claBumpActivity(c)
	s.uncheckedEnqueue(learnt[0], c)
}

func (s *Solver) budgetExhausted() bool {
	return (s.confBudget >= 0 && s.Stats.Conflicts >= s.confBudget) ||
		(s.propBudget >= 0 && s.Stats.Propagations >= s.propBudget)
}

// Solve decides satisfiability under the given assumptions.
// After Unsat, Core/Failed expose the assumption core; after Sat,
// ModelValue reads the model.
func (s *Solver) Solve(assumptions ...Lit) Status {
	s.Stats.SolveCalls++
	s.conflict = s.conflict[:0]
	if !s.okay {
		return Unsat
	}
	// Reset per-call budgets relative to current counters.
	confLimit := int64(-1)
	if s.confBudget >= 0 {
		confLimit = s.Stats.Conflicts + s.confBudget
	}
	propLimit := int64(-1)
	if s.propBudget >= 0 {
		propLimit = s.Stats.Propagations + s.propBudget
	}
	savedConf, savedProp := s.confBudget, s.propBudget
	s.confBudget, s.propBudget = confLimit, propLimit
	defer func() {
		s.confBudget, s.propBudget = savedConf, savedProp
		s.cancelUntil(0)
	}()

	status := Unknown
	s.lubyIdx = 0
	for status == Unknown {
		if s.onRestart != nil {
			// Restart boundary, trail at level 0: import window for
			// clauses shared by portfolio siblings.
			s.onRestart()
			if !s.okay {
				return Unsat
			}
		}
		restartLen := int64(-1)
		if s.cfg.Restart == RestartLuby {
			restartLen = int64(luby(float64(s.cfg.LubyBase), s.lubyIdx))
			s.lubyIdx++
		}
		s.Stats.Starts++
		status = s.searchGuarded(restartLen, assumptions)
		if (s.budgetExhausted() || s.stopped()) && status == Unknown {
			break
		}
	}
	return status
}

func (s *Solver) searchGuarded(nofConflicts int64, assumptions []Lit) Status {
	st := s.search(nofConflicts, assumptions)
	if st == Unknown {
		// Restart: drop decisions but keep learnt clauses.
		s.cancelUntil(0)
	}
	return st
}

// Simplify removes clauses satisfied at the top level. It may only be
// called at decision level 0.
func (s *Solver) Simplify() bool {
	if !s.okay {
		return false
	}
	if s.propagate() != CRefUndef {
		s.okay = false
		return false
	}
	s.clauses = s.simplifyList(s.clauses)
	s.coreLearnts = s.simplifyList(s.coreLearnts)
	s.learnts = s.simplifyList(s.learnts)
	s.maybeGC()
	return true
}

func (s *Solver) simplifyList(cs []CRef) []CRef {
	j := 0
	for _, c := range cs {
		satisfied := false
		for _, l := range s.ca.lits(c) {
			if s.LitValue(l) == LTrue {
				satisfied = true
				break
			}
		}
		if satisfied && s.reason[s.ca.lit(c, 0).Var()] != c {
			s.detachClause(c)
			s.ca.free(c)
			continue
		}
		cs[j] = c
		j++
	}
	return cs[:j]
}
