package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS dumps the solver's problem clauses (learnt clauses are
// derived and therefore omitted) in DIMACS CNF format, including
// level-0 unit assignments. Useful for cross-checking instances with
// external solvers.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if !s.okay {
		// The database is already inconsistent; later clauses may have
		// been dropped, so emit a canonical UNSAT instance.
		fmt.Fprintln(bw, "c formula proved UNSAT during construction")
		fmt.Fprintln(bw, "p cnf 1 2")
		fmt.Fprintln(bw, "1 0")
		fmt.Fprintln(bw, "-1 0")
		return bw.Flush()
	}
	nClauses := len(s.clauses)
	units := 0
	for i, val := range s.assigns {
		if val != LUndef && s.level[i] == 0 {
			units++
		}
	}
	fmt.Fprintf(bw, "p cnf %d %d\n", len(s.assigns), nClauses+units)
	for i, val := range s.assigns {
		if val != LUndef && s.level[i] == 0 {
			v := i + 1
			if val == LFalse {
				v = -v
			}
			fmt.Fprintf(bw, "%d 0\n", v)
		}
	}
	for _, c := range s.clauses {
		for _, l := range s.ca.lits(c) {
			fmt.Fprintf(bw, "%d ", dimacsLit(l))
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}

func dimacsLit(l Lit) int {
	v := int(l.Var()) + 1
	if l.Sign() {
		return -v
	}
	return v
}

// ParseDIMACS reads a DIMACS CNF file into a fresh solver. Comment
// lines ('c ...') and the problem line are handled; variables are
// created as needed (the problem-line count is a lower bound).
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	if err := ParseDIMACSInto(r, s); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseDIMACSInto reads a DIMACS CNF file into an existing solver, so
// callers can pick the configuration (NewWithConfig) or enable proof
// logging (StartProof) before loading the formula.
func ParseDIMACSInto(r io.Reader, s *Solver) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var clause []Lit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return fmt.Errorf("dimacs: line %d: malformed problem line %q", lineNo, line)
			}
			nVars, err := strconv.Atoi(fields[2])
			if err != nil || nVars < 0 {
				return fmt.Errorf("dimacs: line %d: bad variable count", lineNo)
			}
			s.EnsureVars(nVars)
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return fmt.Errorf("dimacs: line %d: bad literal %q", lineNo, tok)
			}
			if v == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				continue
			}
			av := v
			if av < 0 {
				av = -av
			}
			s.EnsureVars(av)
			clause = append(clause, MkLit(Var(av-1), v < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("dimacs: %w", err)
	}
	if len(clause) > 0 {
		return fmt.Errorf("dimacs: trailing clause without terminating 0")
	}
	return nil
}
