package sat

import (
	"math/rand"
	"testing"
)

// BenchmarkSolvePigeonholeUnsat measures refutation throughput on the
// classic hard family PHP(n+1, n).
func BenchmarkSolvePigeonholeUnsat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		pigeonhole(s, 8, 7)
		if s.Solve() != Unsat {
			b.Fatal("PHP(8,7) must be UNSAT")
		}
	}
}

// BenchmarkSolveRandom3SAT measures mixed SAT/UNSAT solving near the
// phase transition (clause/variable ratio ≈ 4.2).
func BenchmarkSolveRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const nVars = 120
	for i := 0; i < b.N; i++ {
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for c := 0; c < nVars*42/10; c++ {
			s.AddClause(
				MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1),
				MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1),
				MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1),
			)
		}
		s.Solve()
	}
}

// BenchmarkSolveIncrementalAssumptions measures assumption-based reuse
// of one solver across many queries, the access pattern of
// minimize_assumptions.
func BenchmarkSolveIncrementalAssumptions(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := New()
	const n = 200
	lits := make([]Lit, n)
	for i := range lits {
		lits[i] = PosLit(s.NewVar())
	}
	for c := 0; c < 3*n; c++ {
		s.AddClause(
			lits[rng.Intn(n)].XorSign(rng.Intn(2) == 1),
			lits[rng.Intn(n)].XorSign(rng.Intn(2) == 1),
			lits[rng.Intn(n)].XorSign(rng.Intn(2) == 1),
		)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var assumps []Lit
		for v := 0; v < n; v += 7 {
			assumps = append(assumps, lits[v].XorSign(i%2 == 0))
		}
		s.Solve(assumps...)
	}
}

// BenchmarkSolveBCPChain measures raw unit-propagation throughput:
// long implication chains with no conflicts, so nearly all time is
// spent walking watcher lists and clause memory.
func BenchmarkSolveBCPChain(b *testing.B) {
	const n = 5000
	s := New()
	lits := make([]Lit, n)
	for i := range lits {
		lits[i] = PosLit(s.NewVar())
	}
	// x0 -> x1 -> ... -> x_{n-1}, plus ternary side clauses that are
	// satisfied by the chain but must still be visited by the watchers.
	for i := 0; i+1 < n; i++ {
		s.AddClause(lits[i].Not(), lits[i+1])
	}
	for i := 0; i+2 < n; i += 3 {
		s.AddClause(lits[i].Not(), lits[i+1], lits[i+2])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Solve(lits[0]) != Sat {
			b.Fatal("chain must be SAT")
		}
	}
}
