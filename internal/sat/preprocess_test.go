package sat

import (
	"math/rand"
	"path/filepath"
	"testing"
)

// flattenClauses converts DIMACS-style int clauses into the flat
// capture layout Preprocess consumes.
func flattenClauses(clauses [][]int) (lits []Lit, ends []int32) {
	for _, cl := range clauses {
		for _, dl := range cl {
			v := dl
			if v < 0 {
				v = -v
			}
			lits = append(lits, MkLit(Var(v-1), dl < 0))
		}
		ends = append(ends, int32(len(lits)))
	}
	return
}

// loadPrepResult replays a simplified formula into a fresh solver.
func loadPrepResult(s *Solver, r *PrepResult) bool {
	s.EnsureVars(r.NumVars)
	ok := true
	var begin int32
	for _, end := range r.Ends {
		if !s.AddClause(r.Lits[begin:end]...) {
			ok = false
		}
		begin = end
	}
	return ok
}

// fullModel reads the solver's model as a plain bool slice over the
// original variable range (unassigned variables read as false; the
// reconstruction stack overrides eliminated ones).
func fullModel(s *Solver, nVars int) []bool {
	m := make([]bool, nVars)
	for v := 0; v < nVars; v++ {
		m[v] = s.ModelBool(PosLit(Var(v)))
	}
	return m
}

// checkBoolModel verifies a bool model against DIMACS-style clauses.
func checkBoolModel(t *testing.T, model []bool, clauses [][]int) {
	t.Helper()
	for _, cl := range clauses {
		ok := false
		for _, dl := range cl {
			v := dl
			if v < 0 {
				v = -v
			}
			if model[v-1] == (dl > 0) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("reconstructed model does not satisfy original clause %v", cl)
		}
	}
}

// prepOf runs Preprocess over int clauses with default knobs.
func prepOf(nVars int, clauses [][]int, frozen []bool) *PrepResult {
	lits, ends := flattenClauses(clauses)
	return Preprocess(nVars, lits, ends, frozen, DefaultPrepConfig())
}

// TestPrepSubsumption pins backward subsumption: a clause containing a
// strict superset of another's literals is deleted. All variables are
// frozen so elimination cannot mask the effect.
func TestPrepSubsumption(t *testing.T) {
	clauses := [][]int{{1, 2}, {1, 2, 3}, {-1, 3}, {-2, -3, 4}}
	frozen := []bool{true, true, true, true}
	r := prepOf(4, clauses, frozen)
	if r.Unsat {
		t.Fatal("prep refuted a satisfiable formula")
	}
	if r.Stats.ClausesSubsumed < 1 {
		t.Fatalf("ClausesSubsumed = %d, want >= 1", r.Stats.ClausesSubsumed)
	}
	if r.Stats.VarsEliminated != 0 {
		t.Fatalf("VarsEliminated = %d with all vars frozen", r.Stats.VarsEliminated)
	}
}

// TestPrepSelfSubsumption pins self-subsuming resolution: (1 2) with
// (-1 2 3) strengthens the latter to (2 3).
func TestPrepSelfSubsumption(t *testing.T) {
	clauses := [][]int{{1, 2}, {-1, 2, 3}, {-2, 4}, {-3, -4}}
	frozen := []bool{true, true, true, true}
	r := prepOf(4, clauses, frozen)
	if r.Unsat {
		t.Fatal("prep refuted a satisfiable formula")
	}
	if r.Stats.LitsStrengthened < 1 {
		t.Fatalf("LitsStrengthened = %d, want >= 1", r.Stats.LitsStrengthened)
	}
}

// TestPrepBVEReconstruction pins bounded variable elimination plus
// exact model reconstruction: an AND-gate definition is eliminated,
// and the extended model must still satisfy the definition clauses.
func TestPrepBVEReconstruction(t *testing.T) {
	// Var 3 is a Tseitin AND gate: 3 <-> 1&2; var 4 forces 3 via (3 4),
	// (-4 1): satisfiable, and 3 must be re-derived consistently.
	clauses := [][]int{{-3, 1}, {-3, 2}, {3, -1, -2}, {3, 4}, {-4, 1}}
	r := prepOf(4, clauses, nil)
	if r.Unsat {
		t.Fatal("prep refuted a satisfiable formula")
	}
	if r.Stats.VarsEliminated < 1 {
		t.Fatalf("VarsEliminated = %d, want >= 1", r.Stats.VarsEliminated)
	}
	s := New()
	if !loadPrepResult(s, r) {
		t.Fatal("simplified formula trivially unsat")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("simplified solve = %v, want Sat", st)
	}
	m := fullModel(s, 4)
	r.Rec.Extend(m)
	checkBoolModel(t, m, clauses)
}

// TestPrepUnsat pins outright refutation: the result is a single empty
// clause, so replaying it into a solver yields Unsat with no
// special-casing.
func TestPrepUnsat(t *testing.T) {
	for _, tc := range [][][]int{
		{{1}, {-1}},
		{{1}, {-1, 2}, {-2, -1}},
		{{1, 2}, {1, -2}, {-1, 2}, {-1, -2}},
	} {
		r := prepOf(2, tc, nil)
		if !r.Unsat {
			t.Fatalf("prep missed unsat on %v", tc)
		}
		if len(r.Ends) != 1 || r.Ends[0] != 0 {
			t.Fatalf("unsat result Ends = %v, want [0]", r.Ends)
		}
		s := New()
		if loadPrepResult(s, r) {
			t.Fatal("empty clause loaded as satisfiable")
		}
		if st := s.Solve(); st != Unsat {
			t.Fatalf("solve = %v, want Unsat", st)
		}
	}
}

// TestPrepFrozen pins the freeze contract: frozen variables are never
// eliminated, so assumptions over them remain exact.
func TestPrepFrozen(t *testing.T) {
	clauses := [][]int{{-3, 1}, {-3, 2}, {3, -1, -2}, {3, 4}, {-4, 1}}
	frozen := []bool{true, true, true, true}
	r := prepOf(4, clauses, frozen)
	if r.Stats.VarsEliminated != 0 {
		t.Fatalf("VarsEliminated = %d with all vars frozen", r.Stats.VarsEliminated)
	}
}

// TestPrepAssumptionParity solves random formulas under every
// assumption pattern over the frozen prefix, prep-on vs prep-off, and
// requires identical verdicts plus valid reconstructed models.
func TestPrepAssumptionParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nVars, nFrozen = 12, 3
	for round := 0; round < 30; round++ {
		nClauses := 20 + rng.Intn(25)
		clauses := make([][]int, 0, nClauses)
		for i := 0; i < nClauses; i++ {
			w := 2 + rng.Intn(2)
			cl := make([]int, 0, w)
			for j := 0; j < w; j++ {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl = append(cl, v)
			}
			clauses = append(clauses, cl)
		}
		frozen := make([]bool, nVars)
		for v := 0; v < nFrozen; v++ {
			frozen[v] = true
		}
		r := prepOf(nVars, clauses, frozen)
		lits, ends := flattenClauses(clauses)

		for pat := 0; pat < 1<<nFrozen; pat++ {
			assumps := make([]Lit, nFrozen)
			for v := 0; v < nFrozen; v++ {
				assumps[v] = MkLit(Var(v), pat>>uint(v)&1 == 1)
			}
			base := New()
			base.EnsureVars(nVars)
			var begin int32
			for _, end := range ends {
				base.AddClause(lits[begin:end]...)
				begin = end
			}
			want := base.Solve(assumps...)

			var got Status
			var ps *Solver
			if r.Unsat {
				got = Unsat
			} else {
				ps = New()
				if !loadPrepResult(ps, r) {
					got = Unsat
				} else {
					got = ps.Solve(assumps...)
				}
			}
			if got != want {
				t.Fatalf("round %d pattern %b: prep verdict %v, plain %v",
					round, pat, got, want)
			}
			if got == Sat {
				m := fullModel(ps, nVars)
				r.Rec.Extend(m)
				checkBoolModel(t, m, clauses)
				for v := 0; v < nFrozen; v++ {
					if m[v] != (pat>>uint(v)&1 == 0) {
						t.Fatalf("round %d pattern %b: assumption var %d flipped", round, pat, v)
					}
				}
			}
		}
	}
}

// TestPrepDeterminism pins the bit-for-bit reproducibility contract:
// two passes over the same input produce identical output and
// reconstruction stacks.
func TestPrepDeterminism(t *testing.T) {
	_, clauses := readDIMACSClauses(t, filepath.Join("testdata", "corpus", "rand3sat_50_260.cnf"))
	a := prepOf(50, clauses, nil)
	b := prepOf(50, clauses, nil)
	if len(a.Lits) != len(b.Lits) || len(a.Ends) != len(b.Ends) {
		t.Fatalf("shape mismatch: %d/%d lits, %d/%d ends",
			len(a.Lits), len(b.Lits), len(a.Ends), len(b.Ends))
	}
	for i := range a.Lits {
		if a.Lits[i] != b.Lits[i] {
			t.Fatalf("lit %d differs", i)
		}
	}
	for i := range a.Ends {
		if a.Ends[i] != b.Ends[i] {
			t.Fatalf("end %d differs", i)
		}
	}
	if len(a.Rec.lits) != len(b.Rec.lits) || len(a.Rec.lens) != len(b.Rec.lens) {
		t.Fatal("reconstruction stacks differ in shape")
	}
	for i := range a.Rec.lits {
		if a.Rec.lits[i] != b.Rec.lits[i] {
			t.Fatalf("reconstruction lit %d differs", i)
		}
	}
}

// TestPrepInputUnchanged pins that Preprocess never mutates the
// caller's slices.
func TestPrepInputUnchanged(t *testing.T) {
	clauses := [][]int{{-3, 1}, {-3, 2}, {3, -1, -2}, {3, 4}, {-4, 1}, {1, 2, 3}}
	lits, ends := flattenClauses(clauses)
	litsCopy := append([]Lit(nil), lits...)
	endsCopy := append([]int32(nil), ends...)
	Preprocess(4, lits, ends, nil, DefaultPrepConfig())
	for i := range lits {
		if lits[i] != litsCopy[i] {
			t.Fatalf("input lit %d mutated", i)
		}
	}
	for i := range ends {
		if ends[i] != endsCopy[i] {
			t.Fatalf("input end %d mutated", i)
		}
	}
}

// TestPrepCorpusDifferential solves every corpus formula prep-on vs
// prep-off: verdicts must match, and on SAT the reconstructed model
// must satisfy the original clauses.
func TestPrepCorpusDifferential(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.cnf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			nVars, clauses := readDIMACSClauses(t, path)
			plain := loadCorpusSolver(t, path, DefaultConfig(), false)
			want := plain.Solve()
			if want == Unknown {
				t.Fatal("plain solver gave up without budget")
			}
			r := prepOf(nVars, clauses, nil)
			var got Status
			var ps *Solver
			if r.Unsat {
				got = Unsat
			} else {
				ps = New()
				if !loadPrepResult(ps, r) {
					got = Unsat
				} else {
					got = ps.Solve()
				}
			}
			if got != want {
				t.Fatalf("verdict mismatch: prep %v, plain %v", got, want)
			}
			if got == Sat && ps != nil {
				m := fullModel(ps, nVars)
				r.Rec.Extend(m)
				checkBoolModel(t, m, clauses)
			}
			t.Logf("vars-elim=%d subsumed=%d strengthened=%d failed-lits=%d rounds=%d",
				r.Stats.VarsEliminated, r.Stats.ClausesSubsumed,
				r.Stats.LitsStrengthened, r.Stats.FailedLits, r.Stats.Rounds)
		})
	}
}

// TestStartProofPrepPanics pins the proof/prep exclusion at the sat
// level: StartProof refuses on a solver configured with preprocessing.
func TestStartProofPrepPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Preprocess = DefaultPrepConfig()
	s := NewWithConfig(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("StartProof did not panic with Preprocess enabled")
		}
	}()
	s.StartProof()
}

// FuzzPrepReconstruction fuzzes the full prep pipeline: decode a CNF
// from the input bytes, preprocess, solve both versions, require
// verdict parity, and validate the reconstructed model against the
// original clauses (cross-checked against brute force when small).
func FuzzPrepReconstruction(f *testing.F) {
	f.Add([]byte{3, 1, 2, 0, 3, 4, 0, 5, 6, 0})
	f.Add([]byte{2, 1, 0, 2, 0, 3, 4, 0})
	f.Add([]byte{4, 1, 2, 3, 0, 4, 5, 6, 0, 7, 8, 0, 2, 4, 0})
	f.Add([]byte{1, 1, 0, 2, 0})
	f.Add([]byte{5, 1, 3, 5, 0, 2, 4, 6, 0, 7, 9, 0, 8, 10, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		nVars := 1 + int(data[0])%10
		var clauses [][]int
		var cur []int
		for _, b := range data[1:] {
			code := int(b) % (2*nVars + 1)
			if code == 0 {
				if len(cur) > 0 {
					clauses = append(clauses, cur)
					cur = nil
				}
				continue
			}
			dl := (code + 1) / 2
			if code%2 == 0 {
				dl = -dl
			}
			cur = append(cur, dl)
		}
		if len(cur) > 0 {
			clauses = append(clauses, cur)
		}
		if len(clauses) == 0 || len(clauses) > 64 {
			return
		}
		lits, ends := flattenClauses(clauses)
		base := New()
		base.EnsureVars(nVars)
		var begin int32
		for _, end := range ends {
			base.AddClause(lits[begin:end]...)
			begin = end
		}
		want := base.Solve()

		r := Preprocess(nVars, lits, ends, nil, DefaultPrepConfig())
		var got Status
		var ps *Solver
		if r.Unsat {
			got = Unsat
		} else {
			ps = New()
			if !loadPrepResult(ps, r) {
				got = Unsat
			} else {
				got = ps.Solve()
			}
		}
		if got != want {
			t.Fatalf("verdict mismatch: prep %v, plain %v (%v)", got, want, clauses)
		}
		if nVars <= 10 {
			bf := liftStatus(bruteForceSAT(nVars, clauses))
			if got != bf {
				t.Fatalf("verdict %v disagrees with brute force %v (%v)", got, bf, clauses)
			}
		}
		if got == Sat && ps != nil {
			m := fullModel(ps, nVars)
			r.Rec.Extend(m)
			for _, cl := range clauses {
				ok := false
				for _, dl := range cl {
					v := dl
					if v < 0 {
						v = -v
					}
					if m[v-1] == (dl > 0) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("reconstructed model violates clause %v (%v)", cl, clauses)
				}
			}
		}
	})
}
