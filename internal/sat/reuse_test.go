package sat

import "testing"

// TestClearInterruptReuse pins the pooled-reuse contract: an
// Interrupt is sticky (every Solve answers Unknown until cleared),
// and after ClearInterrupt the same solver — same clauses, same
// learnts, same trail invariants — must answer correctly again. A
// server that pools solvers across jobs depends on this: a cancelled
// job must not poison the solver for the next one.
func TestClearInterruptReuse(t *testing.T) {
	s := New()
	a := PosLit(s.NewVar())
	b := PosLit(s.NewVar())
	c := PosLit(s.NewVar())
	s.AddClause(a, b)
	s.AddClause(a.Not(), c)

	s.Interrupt()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("interrupted Solve = %v, want Unknown", st)
	}
	// Sticky: a second call without clearing must still give up.
	if st := s.Solve(); st != Unknown {
		t.Fatalf("second interrupted Solve = %v, want Unknown (interrupt must be sticky)", st)
	}
	if !s.Interrupted() {
		t.Fatal("Interrupted() = false while the flag is set")
	}

	s.ClearInterrupt()
	if s.Interrupted() {
		t.Fatal("Interrupted() = true after ClearInterrupt")
	}
	if st := s.Solve(a); st != Sat {
		t.Fatalf("post-clear Solve(a) = %v, want Sat", st)
	}
	if got := s.ModelValue(c); got != LTrue {
		t.Fatalf("model value of implied literal = %v, want LTrue", got)
	}
	// Assumption-core machinery must also have survived the interrupt.
	s.AddClause(b.Not())
	if st := s.Solve(a.Not()); st != Unsat {
		t.Fatalf("post-clear Solve(¬a) = %v, want Unsat", st)
	}
	if !s.Failed(a.Not()) {
		t.Fatal("assumption ¬a missing from the final core after reuse")
	}
}

// TestClearInterruptMidSearchReuse interrupts a solver while a real
// search is in flight (via a propagation budget standing in for the
// asynchronous watcher) and checks the unwound state is reusable.
func TestClearInterruptMidSearchReuse(t *testing.T) {
	s := New()
	// A small pigeonhole-ish UNSAT core plus slack variables makes the
	// search do some work before refutation.
	n := 6
	lits := make([]Lit, n)
	for i := range lits {
		lits[i] = PosLit(s.NewVar())
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.AddClause(lits[i].Not(), lits[j].Not())
		}
	}
	s.AddClause(lits[0], lits[1])
	s.AddClause(lits[2], lits[3])

	s.Interrupt()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("interrupted Solve = %v, want Unknown", st)
	}
	s.ClearInterrupt()
	// Pairwise exclusivity allows at most one true literal, but two
	// disjoint pairs each demand one: UNSAT, and the refutation must
	// come out of the reused (post-interrupt) clause state.
	if st := s.Solve(); st != Unsat {
		t.Fatalf("post-clear Solve = %v, want Unsat", st)
	}
	if s.Okay() {
		t.Fatal("solver still Okay() after a root-level refutation")
	}
}
