// Package sat implements a conflict-driven clause-learning (CDCL)
// Boolean satisfiability solver in the style of MiniSat, with the
// incremental-assumption interface the ECO engine relies on:
// Solve(assumptions...) and, after an UNSAT answer, a conflict core
// over the assumptions equivalent to MiniSat's analyze_final.
//
// The solver supports two-watched-literal propagation, VSIDS variable
// activity with an indexed heap, phase saving, Luby restarts, first-UIP
// clause learning with recursive clause minimization, activity-based
// learnt-clause database reduction, and optional resolution-proof
// logging used by the interpolation baseline (internal/itp).
package sat

import "fmt"

// Var is a Boolean variable index. Variables are created densely
// starting from 0 via Solver.NewVar.
type Var int32

// Lit is a literal: variable 2*v for the positive literal of v and
// 2*v+1 for the negative literal.
type Lit int32

// LitUndef is a sentinel for "no literal".
const LitUndef Lit = -1

// MkLit returns the literal of v, negated when neg is true.
func MkLit(v Var, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v) << 1 }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v)<<1 | 1 }

// Var returns the variable underlying l.
func (l Lit) Var() Var { return Var(l >> 1) }

// Sign reports whether l is the negative literal of its variable.
func (l Lit) Sign() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// XorSign returns l complemented when neg is true.
func (l Lit) XorSign(neg bool) Lit {
	if neg {
		return l ^ 1
	}
	return l
}

// String renders the literal in DIMACS-like form (e.g. "3", "-3").
func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	if l.Sign() {
		return fmt.Sprintf("-%d", int(l.Var())+1)
	}
	return fmt.Sprintf("%d", int(l.Var())+1)
}

// LBool is a lifted Boolean: true, false or undefined.
type LBool int8

// Lifted Boolean constants.
const (
	LUndef LBool = iota
	LTrue
	LFalse
)

// Not returns the lifted negation (LUndef stays LUndef).
func (b LBool) Not() LBool {
	switch b {
	case LTrue:
		return LFalse
	case LFalse:
		return LTrue
	}
	return LUndef
}

func (b LBool) String() string {
	switch b {
	case LTrue:
		return "true"
	case LFalse:
		return "false"
	}
	return "undef"
}

// liftBool converts a concrete bool to an LBool.
func liftBool(v bool) LBool {
	if v {
		return LTrue
	}
	return LFalse
}

// Status is the outcome of a Solve call.
type Status int8

// Solve outcomes.
const (
	// Unknown means the solver gave up (budget exhausted or interrupted).
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula is unsatisfiable under the assumptions.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}
