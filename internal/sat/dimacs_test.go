package sat

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseDIMACSBasic(t *testing.T) {
	src := `
c a comment
p cnf 3 3
1 -2 0
2 3 0
-1 0
`
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 3 {
		t.Fatalf("vars = %d", s.NumVars())
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v", got)
	}
	// -1 forces x1 false; clause (1 -2) forces x2 false; (2 3) forces x3.
	if s.ModelValue(PosLit(0)) != LFalse || s.ModelValue(PosLit(1)) != LFalse ||
		s.ModelValue(PosLit(2)) != LTrue {
		t.Fatal("model wrong")
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"p cnf x 3\n1 0\n",
		"p dnf 3 3\n",
		"p cnf 2 1\n1 b 0\n",
		"p cnf 2 1\n1 2\n", // missing terminator
	}
	for i, src := range cases {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 50; iter++ {
		nVars := 3 + rng.Intn(8)
		s1 := New()
		for i := 0; i < nVars; i++ {
			s1.NewVar()
		}
		clauses := randomClauses(rng, nVars, 2+rng.Intn(4*nVars), 3)
		for _, c := range clauses {
			if !s1.AddClause(c...) {
				break
			}
		}
		var sb strings.Builder
		if err := s1.WriteDIMACS(&sb); err != nil {
			t.Fatal(err)
		}
		s2, err := ParseDIMACS(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, sb.String())
		}
		r1, r2 := s1.Solve(), s2.Solve()
		if r1 != r2 {
			t.Fatalf("iter %d: original %v, round-trip %v\n%s", iter, r1, r2, sb.String())
		}
	}
}

func TestDIMACSPreservesUnits(t *testing.T) {
	s1 := New()
	a, b := PosLit(s1.NewVar()), PosLit(s1.NewVar())
	s1.AddClause(a)
	s1.AddClause(a.Not(), b)
	s1.Solve()
	var sb strings.Builder
	if err := s1.WriteDIMACS(&sb); err != nil {
		t.Fatal(err)
	}
	s2, err := ParseDIMACS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Solve() != Sat {
		t.Fatal("round trip lost satisfiability")
	}
	if s2.ModelValue(PosLit(0)) != LTrue || s2.ModelValue(PosLit(1)) != LTrue {
		t.Fatal("units not preserved")
	}
}
