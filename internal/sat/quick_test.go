package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickCoreProperty: for any random formula and assumption set,
// an Unsat answer yields a core that (1) only contains assumptions
// and (2) is itself Unsat.
func TestQuickCoreProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(10)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for _, c := range randomClauses(rng, nVars, 4*nVars, 3) {
			if !s.AddClause(c...) {
				return true // globally UNSAT during construction: fine
			}
		}
		var assumps []Lit
		for v := 0; v < nVars; v++ {
			if rng.Intn(2) == 0 {
				assumps = append(assumps, MkLit(Var(v), rng.Intn(2) == 1))
			}
		}
		if s.Solve(assumps...) != Unsat {
			return true
		}
		core := append([]Lit(nil), s.Core()...)
		inAssumps := func(l Lit) bool {
			for _, a := range assumps {
				if a == l {
					return true
				}
			}
			return false
		}
		for _, l := range core {
			if !inAssumps(l) {
				return false
			}
		}
		return s.Solve(core...) == Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickModelProperty: Sat answers deliver genuine models that
// honor the assumptions.
func TestQuickModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(10)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		clauses := randomClauses(rng, nVars, 3*nVars, 3)
		for _, c := range clauses {
			if !s.AddClause(c...) {
				return true
			}
		}
		var assumps []Lit
		for v := 0; v < nVars; v += 2 {
			if rng.Intn(3) == 0 {
				assumps = append(assumps, MkLit(Var(v), rng.Intn(2) == 1))
			}
		}
		if s.Solve(assumps...) != Sat {
			return true
		}
		if !evalClauses(s.ModelValue, clauses) {
			return false
		}
		for _, a := range assumps {
			if s.ModelValue(a) != LTrue {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
