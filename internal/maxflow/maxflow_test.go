package maxflow

import (
	"math/rand"
	"testing"
)

func TestSimplePath(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	if got := g.MaxFlow(0, 2); got != 3 {
		t.Fatalf("flow = %d, want 3", got)
	}
}

func TestParallelPaths(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 4)
	g.AddEdge(1, 3, 3)
	g.AddEdge(2, 3, 1)
	if got := g.MaxFlow(0, 3); got != 3 {
		t.Fatalf("flow = %d, want 3", got)
	}
}

func TestClassicCLRSNetwork(t *testing.T) {
	// CLRS figure 26.1 network; max flow 23.
	g := New(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); got != 23 {
		t.Fatalf("flow = %d, want 23", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(2, 3, 10)
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Fatalf("flow = %d, want 0", got)
	}
}

func TestMinCutReachable(t *testing.T) {
	// Bottleneck edge 1->2 with capacity 1.
	g := New(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 10)
	if got := g.MaxFlow(0, 3); got != 1 {
		t.Fatalf("flow = %d", got)
	}
	reach := g.MinCutReachable(0)
	if !reach[0] || !reach[1] || reach[2] || reach[3] {
		t.Fatalf("reachable set wrong: %v", reach)
	}
}

func TestMinVertexCut(t *testing.T) {
	// s -> a -> t and s -> b -> t; node a costs 5, b costs 2.
	// Min vertex cut separating s,t = {a, b} with weight 7... but add
	// a cheap joint node c on both paths: s->c->t with cost 1 makes
	// the layered test clearer. Build: s(0) feeds a(1), b(2); both
	// feed t(3). Cut must be {a, b}.
	caps := []int64{Inf, 5, 2, Inf}
	ng := NewNodeGraph(4, func(i int) int64 { return caps[i] })
	ng.Connect(0, 1)
	ng.Connect(0, 2)
	ng.Connect(1, 3)
	ng.Connect(2, 3)
	cut, flow := ng.MinVertexCut(0, 3)
	if flow != 7 {
		t.Fatalf("flow = %d, want 7", flow)
	}
	if len(cut) != 2 || cut[0] != 1 || cut[1] != 2 {
		t.Fatalf("cut = %v, want [1 2]", cut)
	}
}

func TestMinVertexCutPrefersCheapLayer(t *testing.T) {
	// Chain s -> a -> b -> t with weights a=10, b=1.
	caps := []int64{Inf, 10, 1, Inf}
	ng := NewNodeGraph(4, func(i int) int64 { return caps[i] })
	ng.Connect(0, 1)
	ng.Connect(1, 2)
	ng.Connect(2, 3)
	cut, flow := ng.MinVertexCut(0, 3)
	if flow != 1 {
		t.Fatalf("flow = %d, want 1", flow)
	}
	if len(cut) != 1 || cut[0] != 2 {
		t.Fatalf("cut = %v, want [2]", cut)
	}
}

// bruteForceMinCut enumerates all s-t edge cuts on a small graph.
func bruteForceMinCut(n int, edges [][3]int64, s, t int) int64 {
	best := Inf
	for mask := 0; mask < 1<<uint(n); mask++ {
		if mask>>uint(s)&1 != 1 || mask>>uint(t)&1 == 1 {
			continue
		}
		var w int64
		for _, e := range edges {
			u, v, c := int(e[0]), int(e[1]), e[2]
			if mask>>uint(u)&1 == 1 && mask>>uint(v)&1 == 0 {
				w += c
			}
		}
		if w < best {
			best = w
		}
	}
	return best
}

func TestRandomAgainstBruteForceCut(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 200; iter++ {
		n := 4 + rng.Intn(4)
		var edges [][3]int64
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, [3]int64{int64(u), int64(v), int64(1 + rng.Intn(9))})
		}
		g := New(n)
		for _, e := range edges {
			g.AddEdge(int(e[0]), int(e[1]), e[2])
		}
		got := g.MaxFlow(0, n-1)
		want := bruteForceMinCut(n, edges, 0, n-1)
		if got != want {
			t.Fatalf("iter %d: maxflow %d != mincut %d", iter, got, want)
		}
	}
}

func TestMinVertexCutNearSinkPrefersShallowCone(t *testing.T) {
	// Chain s -> a -> b -> t with equal weights: both {a} and {b} are
	// minimum cuts; the sink-side variant must pick b (nearest t).
	caps := []int64{Inf, 3, 3, Inf}
	ng := NewNodeGraph(4, func(i int) int64 { return caps[i] })
	ng.Connect(0, 1)
	ng.Connect(1, 2)
	ng.Connect(2, 3)
	cut, flow := ng.MinVertexCutNearSink(0, 3)
	if flow != 3 {
		t.Fatalf("flow = %d", flow)
	}
	if len(cut) != 1 || cut[0] != 2 {
		t.Fatalf("sink-side cut = %v, want [2]", cut)
	}
	// The source-side variant picks a for the same network.
	ng2 := NewNodeGraph(4, func(i int) int64 { return caps[i] })
	ng2.Connect(0, 1)
	ng2.Connect(1, 2)
	ng2.Connect(2, 3)
	cut2, _ := ng2.MinVertexCut(0, 3)
	if len(cut2) != 1 || cut2[0] != 1 {
		t.Fatalf("source-side cut = %v, want [1]", cut2)
	}
}

func TestCanReachSinkAfterFlow(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 1) // bottleneck
	g.AddEdge(2, 3, 10)
	g.MaxFlow(0, 3)
	reach := g.CanReachSink(3)
	if reach[0] || reach[1] {
		t.Fatalf("source side leaked into sink reachability: %v", reach)
	}
	if !reach[2] || !reach[3] {
		t.Fatalf("sink side wrong: %v", reach)
	}
}
