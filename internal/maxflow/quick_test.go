package maxflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickMaxFlowMinCutDuality: on random graphs the Dinic flow
// equals the brute-force minimum cut, and the residual-reachability
// cut is saturated.
func TestQuickMaxFlowMinCutDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		var edges [][3]int64
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, [3]int64{int64(u), int64(v), int64(1 + rng.Intn(7))})
		}
		g := New(n)
		for _, e := range edges {
			g.AddEdge(int(e[0]), int(e[1]), e[2])
		}
		flow := g.MaxFlow(0, n-1)
		if flow != bruteForceMinCut(n, edges, 0, n-1) {
			return false
		}
		// The source-side reachable set must induce a cut of exactly
		// the flow value.
		reach := g.MinCutReachable(0)
		var w int64
		for _, e := range edges {
			if reach[e[0]] && !reach[e[1]] {
				w += e[2]
			}
		}
		return w == flow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVertexCutSidesAgree: source-side and sink-side vertex cuts
// have the same weight (both are minimum cuts).
func TestQuickVertexCutSidesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		caps := make([]int64, n)
		for i := range caps {
			caps[i] = int64(1 + rng.Intn(5))
		}
		caps[0], caps[n-1] = Inf, Inf
		type conn struct{ u, v int }
		var conns []conn
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				conns = append(conns, conn{u, v})
			}
		}
		build := func() *NodeGraph {
			ng := NewNodeGraph(n, func(i int) int64 { return caps[i] })
			for _, c := range conns {
				ng.Connect(c.u, c.v)
			}
			return ng
		}
		cutA, flowA := build().MinVertexCut(0, n-1)
		cutB, flowB := build().MinVertexCutNearSink(0, n-1)
		if flowA != flowB {
			return false
		}
		if flowA >= Inf {
			return true // no finite cut: nothing more to compare
		}
		wa, wb := int64(0), int64(0)
		for _, i := range cutA {
			wa += caps[i]
		}
		for _, i := range cutB {
			wb += caps[i]
		}
		return wa == flowA && wb == flowA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
