// Package maxflow implements Dinic's maximum-flow algorithm with a
// node-capacity helper. The ECO engine uses it for the CEGAR_min step
// (§3.6.3 of the paper): finding a minimum-weight cut of signals
// through which a structural patch can be re-expressed.
package maxflow

// Inf is a capacity effectively acting as infinity.
const Inf int64 = 1 << 60

type edge struct {
	to  int
	cap int64
	rev int // index of the reverse edge in adj[to]
}

// Graph is a flow network over nodes 0..n-1.
type Graph struct {
	adj   [][]edge
	level []int
	iter  []int
}

// New returns an empty flow network with n nodes.
func New(n int) *Graph {
	return &Graph{adj: make([][]edge, n)}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// AddEdge adds a directed edge u->v with the given capacity.
func (g *Graph) AddEdge(u, v int, cap int64) {
	g.adj[u] = append(g.adj[u], edge{to: v, cap: cap, rev: len(g.adj[v])})
	g.adj[v] = append(g.adj[v], edge{to: u, cap: 0, rev: len(g.adj[u]) - 1})
}

func (g *Graph) bfs(s, t int) bool {
	g.level = make([]int, len(g.adj))
	for i := range g.level {
		g.level[i] = -1
	}
	queue := []int{s}
	g.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if e.cap > 0 && g.level[e.to] < 0 {
				g.level[e.to] = g.level[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return g.level[t] >= 0
}

func (g *Graph) dfs(u, t int, f int64) int64 {
	if u == t {
		return f
	}
	for ; g.iter[u] < len(g.adj[u]); g.iter[u]++ {
		e := &g.adj[u][g.iter[u]]
		if e.cap > 0 && g.level[e.to] == g.level[u]+1 {
			d := g.dfs(e.to, t, min64(f, e.cap))
			if d > 0 {
				e.cap -= d
				g.adj[e.to][e.rev].cap += d
				return d
			}
		}
	}
	return 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxFlow computes the maximum s-t flow. The graph's residual
// capacities are updated in place, enabling MinCutReachable afterwards.
func (g *Graph) MaxFlow(s, t int) int64 {
	var flow int64
	for g.bfs(s, t) {
		g.iter = make([]int, len(g.adj))
		for {
			f := g.dfs(s, t, Inf)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}

// MinCutReachable returns, after MaxFlow, the set of nodes reachable
// from s in the residual graph. Edges from this set to its complement
// form a minimum cut.
func (g *Graph) MinCutReachable(s int) []bool {
	reach := make([]bool, len(g.adj))
	stack := []int{s}
	reach[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if e.cap > 0 && !reach[e.to] {
				reach[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return reach
}

// NodeGraph builds flow networks where the capacity sits on nodes
// rather than edges, via the standard node-splitting construction:
// node i becomes in-node 2i and out-node 2i+1 joined by an edge of
// the node's capacity; original edges connect out-nodes to in-nodes
// with infinite capacity.
type NodeGraph struct {
	G *Graph
	n int
}

// NewNodeGraph returns a node-capacitated network over n nodes.
func NewNodeGraph(n int, nodeCap func(i int) int64) *NodeGraph {
	ng := &NodeGraph{G: New(2 * n), n: n}
	for i := 0; i < n; i++ {
		ng.G.AddEdge(2*i, 2*i+1, nodeCap(i))
	}
	return ng
}

// In returns the flow-node receiving edges into original node i.
func (ng *NodeGraph) In(i int) int { return 2 * i }

// Out returns the flow-node emitting edges out of original node i.
func (ng *NodeGraph) Out(i int) int { return 2*i + 1 }

// Connect adds an infinite-capacity edge from original node u to
// original node v.
func (ng *NodeGraph) Connect(u, v int) {
	ng.G.AddEdge(ng.Out(u), ng.In(v), Inf)
}

// MinVertexCut computes the minimum-weight set of original nodes
// separating s from t (s and t themselves excluded; they should be
// given infinite capacity). It returns the cut nodes and the total
// flow value.
func (ng *NodeGraph) MinVertexCut(s, t int) ([]int, int64) {
	flow := ng.G.MaxFlow(ng.Out(s), ng.In(t))
	reach := ng.G.MinCutReachable(ng.Out(s))
	var cut []int
	for i := 0; i < ng.n; i++ {
		// A node is in the cut when its internal edge crosses the
		// reachable boundary: in-node reachable, out-node not.
		if reach[ng.In(i)] && !reach[ng.Out(i)] {
			cut = append(cut, i)
		}
	}
	return cut, flow
}

// CanReachSink returns, after MaxFlow, the set of nodes that can
// still reach t in the residual graph. Its complement is the
// source side of the sink-nearest minimum cut.
func (g *Graph) CanReachSink(t int) []bool {
	// Reverse adjacency over residual edges.
	inEdges := make([][]int, len(g.adj)) // node -> predecessors via residual edge
	for v := range g.adj {
		for _, e := range g.adj[v] {
			if e.cap > 0 {
				inEdges[e.to] = append(inEdges[e.to], v)
			}
		}
	}
	reach := make([]bool, len(g.adj))
	reach[t] = true
	queue := []int{t}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range inEdges[u] {
			if !reach[v] {
				reach[v] = true
				queue = append(queue, v)
			}
		}
	}
	return reach
}

// MinVertexCutNearSink is MinVertexCut using the sink-nearest minimum
// cut: among all minimum-weight vertex cuts it returns the one whose
// nodes sit closest to t. For the CEGAR_min application this keeps
// the rebuilt patch cone (the logic above the cut) as small as
// possible at equal cost.
func (ng *NodeGraph) MinVertexCutNearSink(s, t int) ([]int, int64) {
	flow := ng.G.MaxFlow(ng.Out(s), ng.In(t))
	reach := ng.G.CanReachSink(ng.In(t))
	var cut []int
	for i := 0; i < ng.n; i++ {
		if !reach[ng.In(i)] && reach[ng.Out(i)] {
			cut = append(cut, i)
		}
	}
	return cut, flow
}
