package sim

// Canonical-polarity simulation signatures, shared by the CEC sweeper
// (candidate equivalence classes) and the eco engine's divisor
// pruning (duplicate detection). A signature is the sequence of
// 64-pattern simulation words of one edge; its canonical form forces
// the first pattern bit to 0 by complementing every word, so an edge
// and its complement key equal — exactly the "equivalent up to
// complementation" relation fraiging merges on, and the right
// duplicate relation for divisor pruning too (the equality selectors
// of expression (2) are complement-invariant).

// CanonKey hashes a signature in canonical polarity with FNV-1a over
// the raw 64-bit words and reports whether canonicalization
// complemented it. Earlier versions materialized the canonical
// signature as a []byte map key — O(words × 8) fresh bytes per lookup;
// the hash is allocation-free, and collisions are screened with
// CanonEqual before anything trusts a bucket match.
func CanonKey(sig []uint64) (uint64, bool) {
	compl := len(sig) > 0 && sig[0]&1 == 1
	h := uint64(1469598103934665603) // FNV offset basis
	for _, w := range sig {
		if compl {
			w = ^w
		}
		h ^= w
		h *= 1099511628211 // FNV prime
	}
	return h, compl
}

// CanonEqual reports whether two signatures agree word-for-word in
// canonical polarity — the collision check behind CanonKey buckets.
func CanonEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	ca := len(a) > 0 && a[0]&1 == 1
	cb := len(b) > 0 && b[0]&1 == 1
	for i := range a {
		wa, wb := a[i], b[i]
		if ca {
			wa = ^wa
		}
		if cb {
			wb = ^wb
		}
		if wa != wb {
			return false
		}
	}
	return true
}
