// Package sim provides the bit-parallel simulation primitives shared
// across the patch pipeline: a model bank that replays full SAT models
// as 64-packed pattern words to answer assumption-only re-solves
// without the solver, and a cross-window pool of input patterns that
// feeds simulation-guided divisor pruning. The CEC sweeper keys its
// candidate equivalence classes on the same canonical signature
// representation (see sig.go).
package sim

import (
	"math/bits"

	"ecopatch/internal/sat"
)

// Model is anything that can report the value a satisfying assignment
// gives to a literal. *sat.Solver and *sat.Portfolio both qualify.
type Model interface {
	ModelBool(sat.Lit) bool
}

// ModelBank stores full SAT models over a fixed set of watched
// variables as bitvectors: row r holds, for each banked model, the
// value of watched variable r in that model — so a query "is there a
// banked model satisfying all of these literals" is a word-wise AND
// over the assumption rows. The bank is only sound while the solver's
// clause set does not grow: adding a clause can invalidate every
// banked model, so callers must discard the bank before the first
// AddClause after banking (the eco engine drops it at the cube
// enumeration boundary).
type ModelBank struct {
	rows map[sat.Var]int
	vars []sat.Var // row order
	bits [][]uint64
	n    int // banked models
	max  int
}

// NewModelBank builds a bank watching the variables of the given
// literals (polarity is resolved per query), holding at most max
// models.
func NewModelBank(watch []sat.Lit, max int) *ModelBank {
	b := &ModelBank{rows: make(map[sat.Var]int, len(watch)), max: max}
	for _, l := range watch {
		v := l.Var()
		if _, ok := b.rows[v]; ok {
			continue
		}
		b.rows[v] = len(b.vars)
		b.vars = append(b.vars, v)
	}
	words := (max + 63) / 64
	b.bits = make([][]uint64, len(b.vars))
	for r := range b.bits {
		b.bits[r] = make([]uint64, words)
	}
	return b
}

// Patterns returns the number of banked models.
func (b *ModelBank) Patterns() int { return b.n }

// Add banks the watched-variable projection of one model. Returns
// false when the bank is full.
func (b *ModelBank) Add(m Model) bool {
	if b.n >= b.max {
		return false
	}
	w, bit := b.n/64, uint(b.n%64)
	for r, v := range b.vars {
		if m.ModelBool(sat.PosLit(v)) {
			b.bits[r][w] |= 1 << bit
		}
	}
	b.n++
	return true
}

// Find returns the index of some banked model satisfying every
// literal in assumps, or -1. Because every banked pattern is a real
// model of the (unchanged) clause set, a hit proves the formula
// satisfiable under the assumptions with zero solver work. A literal
// over an unwatched variable conservatively fails the query.
func (b *ModelBank) Find(assumps []sat.Lit) int {
	nw := (b.n + 63) / 64
	for w := 0; w < nw; w++ {
		acc := ^uint64(0)
		if rem := b.n - w*64; rem < 64 {
			acc = 1<<uint(rem) - 1
		}
		for _, l := range assumps {
			r, ok := b.rows[l.Var()]
			if !ok {
				return -1
			}
			word := b.bits[r][w]
			if l.Sign() {
				word = ^word
			}
			if acc &= word; acc == 0 {
				break
			}
		}
		if acc != 0 {
			return w*64 + bits.TrailingZeros64(acc)
		}
	}
	return -1
}

// Bit reads banked model p's value of literal l. The literal's
// variable must be watched.
func (b *ModelBank) Bit(l sat.Lit, p int) bool {
	r, ok := b.rows[l.Var()]
	if !ok {
		panic("sim: Bit on unwatched variable")
	}
	v := b.bits[r][p/64]>>uint(p%64)&1 == 1
	return v != l.Sign()
}

// PatternBank pools input patterns (PI assignments, indexed by PI
// position) across rectification windows, 64-packed per input for
// direct use as simulation words. The pool is append-only and capped:
// once full, further patterns are dropped, so cache keys derived from
// its contents stay stable for the rest of the run.
type PatternBank struct {
	rows [][]uint64 // one row per input
	n    int
	max  int
}

// NewPatternBank builds an empty pool over the given input count,
// holding at most max patterns.
func NewPatternBank(inputs, max int) *PatternBank {
	b := &PatternBank{rows: make([][]uint64, inputs), max: max}
	words := (max + 63) / 64
	for i := range b.rows {
		b.rows[i] = make([]uint64, words)
	}
	return b
}

// Patterns returns the number of pooled patterns.
func (b *PatternBank) Patterns() int { return b.n }

// Inputs returns the pool's input count.
func (b *PatternBank) Inputs() int { return len(b.rows) }

// Rounds returns the number of populated 64-pattern words per input.
func (b *PatternBank) Rounds() int { return (b.n + 63) / 64 }

// Add pools one input assignment. Returns false when the pool is full
// or the assignment has the wrong arity.
func (b *PatternBank) Add(assign []bool) bool {
	if b.n >= b.max || len(assign) != len(b.rows) {
		return false
	}
	w, bit := b.n/64, uint(b.n%64)
	for i, v := range assign {
		if v {
			b.rows[i][w] |= 1 << bit
		}
	}
	b.n++
	return true
}

// Word returns the 64-pattern word of one input covering patterns
// [64*round, 64*round+64); bits at or beyond Patterns() are zero.
func (b *PatternBank) Word(input, round int) uint64 { return b.rows[input][round] }

// AppendKey appends the pool's full contents to a cache-key buffer:
// the pattern count followed by every populated word of every input
// row. Pools with identical contents produce identical keys, so work
// whose outcome depends on the pooled patterns (divisor pruning) can
// fold the pool state into its memoization key.
func (b *PatternBank) AppendKey(buf []uint64) []uint64 {
	buf = append(buf, uint64(b.n))
	nw := b.Rounds()
	for _, row := range b.rows {
		buf = append(buf, row[:nw]...)
	}
	return buf
}
