package sim

import (
	"math/rand"
	"testing"

	"ecopatch/internal/sat"
)

// fixedModel adapts a plain assignment to the Model interface.
type fixedModel []bool

func (m fixedModel) ModelBool(l sat.Lit) bool {
	return m[l.Var()] != l.Sign()
}

func TestModelBankFindAndBit(t *testing.T) {
	v := func(i int) sat.Var { return sat.Var(i) }
	watch := []sat.Lit{sat.PosLit(v(0)), sat.NegLit(v(1)), sat.PosLit(v(2))}
	b := NewModelBank(watch, 8)
	if got := b.Find([]sat.Lit{sat.PosLit(v(0))}); got != -1 {
		t.Fatalf("empty bank Find = %d, want -1", got)
	}
	// Pattern 0: v0=1 v1=0 v2=1; pattern 1: v0=0 v1=1 v2=1.
	b.Add(fixedModel{true, false, true})
	b.Add(fixedModel{false, true, true})
	if b.Patterns() != 2 {
		t.Fatalf("Patterns = %d, want 2", b.Patterns())
	}
	cases := []struct {
		assumps []sat.Lit
		want    int
	}{
		{[]sat.Lit{sat.PosLit(v(0)), sat.NegLit(v(1))}, 0},
		{[]sat.Lit{sat.NegLit(v(0)), sat.PosLit(v(1)), sat.PosLit(v(2))}, 1},
		{[]sat.Lit{sat.PosLit(v(2))}, 0}, // both match; lowest index wins
		{[]sat.Lit{sat.PosLit(v(0)), sat.PosLit(v(1))}, -1},
		{[]sat.Lit{sat.NegLit(v(2))}, -1},
		{[]sat.Lit{sat.PosLit(v(7))}, -1}, // unwatched: conservative miss
	}
	for _, tc := range cases {
		if got := b.Find(tc.assumps); got != tc.want {
			t.Errorf("Find(%v) = %d, want %d", tc.assumps, got, tc.want)
		}
	}
	if !b.Bit(sat.PosLit(v(0)), 0) || b.Bit(sat.PosLit(v(0)), 1) {
		t.Error("Bit(v0) wrong")
	}
	if b.Bit(sat.NegLit(v(2)), 0) || b.Bit(sat.NegLit(v(2)), 1) {
		t.Error("Bit(¬v2) wrong")
	}
}

func TestModelBankCapacityAndWordBoundary(t *testing.T) {
	watch := []sat.Lit{sat.PosLit(0)}
	const max = 130 // spans three words
	b := NewModelBank(watch, max)
	for i := 0; i < max; i++ {
		// Only the last pattern sets v0.
		if !b.Add(fixedModel{i == max-1}) {
			t.Fatalf("Add %d refused below capacity", i)
		}
	}
	if b.Add(fixedModel{true}) {
		t.Fatal("Add above capacity accepted")
	}
	if got := b.Find([]sat.Lit{sat.PosLit(0)}); got != max-1 {
		t.Fatalf("Find across word boundary = %d, want %d", got, max-1)
	}
	if got := b.Find([]sat.Lit{sat.NegLit(0)}); got != 0 {
		t.Fatalf("Find negative = %d, want 0", got)
	}
}

// TestModelBankSoundness is the pattern-bank soundness differential:
// bank real solver models of a random CNF, then check that every
// bank-elided Sat answer is confirmed by a fresh solver solving the
// same formula under the same assumptions.
func TestModelBankSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nVars, nClauses, nQueries = 12, 30, 200
	for round := 0; round < 10; round++ {
		var clauses [][]sat.Lit
		for c := 0; c < nClauses; c++ {
			var cl []sat.Lit
			for k := 0; k < 3; k++ {
				cl = append(cl, sat.MkLit(sat.Var(rng.Intn(nVars)), rng.Intn(2) == 1))
			}
			clauses = append(clauses, cl)
		}
		newSolver := func() *sat.Solver {
			s := sat.New()
			for v := 0; v < nVars; v++ {
				s.NewVar()
			}
			for _, cl := range clauses {
				s.AddClause(cl...)
			}
			return s
		}
		var watch []sat.Lit
		for v := 0; v < nVars; v++ {
			watch = append(watch, sat.PosLit(sat.Var(v)))
		}
		bank := NewModelBank(watch, 64)
		s := newSolver()
		elided, banked := 0, 0
		for q := 0; q < nQueries; q++ {
			var assumps []sat.Lit
			for v := 0; v < nVars; v++ {
				switch rng.Intn(4) {
				case 0:
					assumps = append(assumps, sat.PosLit(sat.Var(v)))
				case 1:
					assumps = append(assumps, sat.NegLit(sat.Var(v)))
				}
			}
			if p := bank.Find(assumps); p >= 0 {
				elided++
				// The banked answer must agree with a real solver.
				if st := newSolver().Solve(assumps...); st != sat.Sat {
					t.Fatalf("round %d query %d: bank pattern %d says Sat, solver says %v (assumps %v)",
						round, q, p, st, assumps)
				}
				// And the banked pattern itself must satisfy the assumptions.
				for _, l := range assumps {
					if !bank.Bit(l, p) {
						t.Fatalf("round %d: pattern %d does not satisfy %v", round, p, l)
					}
				}
				continue
			}
			if s.Solve(assumps...) == sat.Sat {
				bank.Add(s)
				banked++
			}
		}
		if banked == 0 {
			t.Fatalf("round %d: no models banked (degenerate formula?)", round)
		}
		_ = elided // hit rate is formula-dependent; soundness is what's pinned
	}
}

func TestPatternBank(t *testing.T) {
	b := NewPatternBank(3, 70)
	if b.Inputs() != 3 || b.Rounds() != 0 {
		t.Fatalf("fresh bank: inputs=%d rounds=%d", b.Inputs(), b.Rounds())
	}
	for i := 0; i < 70; i++ {
		if !b.Add([]bool{i%2 == 0, i >= 64, true}) {
			t.Fatalf("Add %d refused below capacity", i)
		}
	}
	if b.Add([]bool{true, true, true}) {
		t.Fatal("Add above capacity accepted")
	}
	if b.Add([]bool{true}) {
		t.Fatal("Add with wrong arity accepted")
	}
	if b.Patterns() != 70 || b.Rounds() != 2 {
		t.Fatalf("patterns=%d rounds=%d", b.Patterns(), b.Rounds())
	}
	if b.Word(0, 0) != 0x5555555555555555 {
		t.Fatalf("Word(0,0) = %#x", b.Word(0, 0))
	}
	if b.Word(1, 0) != 0 || b.Word(1, 1) != 0x3f {
		t.Fatalf("Word(1,*) = %#x %#x", b.Word(1, 0), b.Word(1, 1))
	}
	if b.Word(2, 1) != 0x3f {
		t.Fatalf("Word(2,1) = %#x", b.Word(2, 1))
	}

	key := b.AppendKey(nil)
	if len(key) != 1+3*2 {
		t.Fatalf("AppendKey length %d, want 7", len(key))
	}
	same := NewPatternBank(3, 70)
	for i := 0; i < 70; i++ {
		same.Add([]bool{i%2 == 0, i >= 64, true})
	}
	other := NewPatternBank(3, 70)
	for i := 0; i < 70; i++ {
		other.Add([]bool{i%2 == 1, i >= 64, true})
	}
	eq := func(a, b []uint64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !eq(key, same.AppendKey(nil)) {
		t.Fatal("identical pools keyed differently")
	}
	if eq(key, other.AppendKey(nil)) {
		t.Fatal("different pools keyed equal")
	}
}

func TestCanonKeyEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		sig := make([]uint64, 1+rng.Intn(6))
		for j := range sig {
			sig[j] = rng.Uint64()
		}
		compl := make([]uint64, len(sig))
		for j := range sig {
			compl[j] = ^sig[j]
		}
		k1, _ := CanonKey(sig)
		k2, _ := CanonKey(compl)
		if k1 != k2 {
			t.Fatal("complemented signature keys differently")
		}
		if !CanonEqual(sig, compl) || !CanonEqual(sig, sig) {
			t.Fatal("CanonEqual rejects complement or self")
		}
		perturbed := append([]uint64(nil), sig...)
		perturbed[rng.Intn(len(sig))] ^= 1 << uint(1+rng.Intn(63))
		if CanonEqual(sig, perturbed) {
			t.Fatal("CanonEqual accepts perturbed signature")
		}
	}
	if !CanonEqual(nil, nil) {
		t.Fatal("empty signatures must compare equal")
	}
}
