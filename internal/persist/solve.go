package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"ecopatch/internal/atomicio"
	"ecopatch/internal/cache"
	"ecopatch/internal/cnf"
	"ecopatch/internal/sat"
)

// Solve-record codec: the binary form of one cache.SolveCache entry.
// The FULL post-preprocess formula is stored, not just its hash — the
// cache's collision discipline requires a word-for-word content
// screen before a hit is served, and that screen needs the words.
//
// Layout (little-endian throughout):
//
//	u32 version (1)
//	u32 nVars
//	u32 nClauses, then nClauses x u32 clause-end prefix sums
//	u32 nLits,    then nLits    x u32 literals
//	u32 nAssumps, then nAssumps x u32 assumption literals
//	u8  status (1 = Sat, 2 = Unsat; Unknown is never persisted)
//	Sat only: u32 model length, then ceil(len/8) bitset bytes
const solveCodecVersion = 1

// Wire values of sat.Status (the in-memory iota order is an internal
// detail; pinning explicit wire values keeps old logs readable).
const (
	wireSat   = 1
	wireUnsat = 2
)

// ErrBadRecord reports a CRC-valid record whose payload does not
// decode to a structurally valid solve entry. Callers skip such
// records (and count them) rather than replaying them.
var ErrBadRecord = errors.New("persist: malformed solve record")

// EncodeSolve renders one solve-cache entry. The inputs are read, not
// retained.
func EncodeSolve(f *cnf.Formula, assumps []sat.Lit, v cache.Verdict) []byte {
	nVars, lits, ends := f.Raw()
	size := 4*5 + 4*len(ends) + 4*len(lits) + 4*len(assumps) + 1
	if v.Status == sat.Sat {
		size += 4 + (len(v.Model)+7)/8
	}
	buf := make([]byte, 0, size)
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u32(solveCodecVersion)
	u32(uint32(nVars))
	u32(uint32(len(ends)))
	for _, e := range ends {
		u32(uint32(e))
	}
	u32(uint32(len(lits)))
	for _, l := range lits {
		u32(uint32(l))
	}
	u32(uint32(len(assumps)))
	for _, a := range assumps {
		u32(uint32(a))
	}
	switch v.Status {
	case sat.Sat:
		buf = append(buf, wireSat)
		u32(uint32(len(v.Model)))
		var w byte
		for i, b := range v.Model {
			if b {
				w |= 1 << (i % 8)
			}
			if i%8 == 7 {
				buf = append(buf, w)
				w = 0
			}
		}
		if len(v.Model)%8 != 0 {
			buf = append(buf, w)
		}
	case sat.Unsat:
		buf = append(buf, wireUnsat)
	default:
		// Unknown is never persisted (mirrors SolveCache.Insert); an
		// empty payload decodes as ErrBadRecord and is skipped.
		return nil
	}
	return buf
}

// DecodeSolve parses and validates one solve record. Every structural
// invariant the cache and LoadInto rely on is checked here — clause
// ends monotone and consistent with the literal count, literals and
// assumptions within the variable range, a full model on Sat — so a
// decoded entry can be inserted and later replayed without any
// further trust in the bytes.
func DecodeSolve(b []byte) (*cnf.Formula, []sat.Lit, cache.Verdict, error) {
	bad := func(format string, args ...any) (*cnf.Formula, []sat.Lit, cache.Verdict, error) {
		return nil, nil, cache.Verdict{}, fmt.Errorf("%w: "+format, append([]any{ErrBadRecord}, args...)...)
	}
	pos := 0
	u32 := func() (uint32, bool) {
		if pos+4 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(b[pos:])
		pos += 4
		return v, true
	}
	// Each count is bounded by the bytes that must follow it, so a
	// corrupt length cannot force a huge allocation.
	count := func(elemBytes int) (int, bool) {
		v, ok := u32()
		if !ok || int64(v)*int64(elemBytes) > int64(len(b)-pos) {
			return 0, false
		}
		return int(v), true
	}

	ver, ok := u32()
	if !ok || ver != solveCodecVersion {
		return bad("version %d", ver)
	}
	nVarsU, ok := u32()
	if !ok || nVarsU > 1<<30 {
		return bad("variable count")
	}
	nVars := int(nVarsU)
	nEnds, ok := count(4)
	if !ok {
		return bad("clause count")
	}
	ends := make([]int32, nEnds)
	prev := int32(0)
	for i := range ends {
		e, ok := u32()
		if !ok || int32(e) < prev {
			return bad("clause ends not monotone")
		}
		ends[i] = int32(e)
		prev = ends[i]
	}
	nLits, ok := count(4)
	if !ok {
		return bad("literal count")
	}
	if nEnds > 0 && int(ends[nEnds-1]) != nLits || nEnds == 0 && nLits != 0 {
		return bad("clause ends disagree with literal count")
	}
	lits := make([]sat.Lit, nLits)
	for i := range lits {
		l, ok := u32()
		if !ok || int(sat.Lit(l).Var()) >= nVars {
			return bad("literal out of range")
		}
		lits[i] = sat.Lit(l)
	}
	nAssumps, ok := count(4)
	if !ok {
		return bad("assumption count")
	}
	assumps := make([]sat.Lit, nAssumps)
	for i := range assumps {
		a, ok := u32()
		if !ok || int(sat.Lit(a).Var()) >= nVars {
			return bad("assumption out of range")
		}
		assumps[i] = sat.Lit(a)
	}
	if pos >= len(b) {
		return bad("missing status")
	}
	status := b[pos]
	pos++
	v := cache.Verdict{}
	switch status {
	case wireSat:
		v.Status = sat.Sat
		nModel, ok := count(0)
		if !ok || nModel < nVars {
			// An incomplete model could not reconstruct literals on a
			// hit; SolveCache.Insert enforces the same bound.
			return bad("model shorter than variable count")
		}
		nBytes := (nModel + 7) / 8
		if pos+nBytes > len(b) {
			return bad("truncated model")
		}
		v.Model = make([]bool, nModel)
		for i := range v.Model {
			v.Model[i] = b[pos+i/8]&(1<<(i%8)) != 0
		}
		pos += nBytes
	case wireUnsat:
		v.Status = sat.Unsat
	default:
		return bad("status %d", status)
	}
	if pos != len(b) {
		return bad("%d trailing bytes", len(b)-pos)
	}
	return cnf.FromRaw(nVars, lits, ends), assumps, v, nil
}

// SaveSolveCacheFile writes every live entry of sc to path as a
// single-file record stream (same framing and codec as the segment
// log), atomically via temp+rename — a crash mid-save leaves the
// previous file intact. Returns the entry count written. ecobench
// -cache-file uses this to keep a warm benchmark cache between runs.
func SaveSolveCacheFile(path string, sc *cache.SolveCache) (int, error) {
	n := 0
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		var buf []byte
		var werr error
		sc.Range(func(f *cnf.Formula, assumps []sat.Lit, v cache.Verdict) bool {
			payload := EncodeSolve(f, assumps, v)
			if payload == nil {
				return true
			}
			buf = frame(buf, RecSolve, payload)
			if _, werr = bw.Write(buf); werr != nil {
				return false
			}
			n++
			return true
		})
		if werr != nil {
			return werr
		}
		return bw.Flush()
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// LoadSolveCacheFile inserts every intact entry of a cache file into
// sc. A missing file is an empty cache, not an error; a torn tail or
// individually corrupt records are skipped with the same discipline
// as segment recovery. Returns the number of entries restored and the
// number of records skipped (torn tail or failed decode).
func LoadSolveCacheFile(path string, sc *cache.SolveCache) (restored, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	_, _, torn, err := ScanRecords(bufio.NewReader(f), func(typ RecordType, payload []byte) {
		if typ != RecSolve {
			skipped++
			return
		}
		fr, assumps, v, derr := DecodeSolve(payload)
		if derr != nil {
			skipped++
			return
		}
		sc.Insert(fr, assumps, v)
		restored++
	})
	if err != nil {
		return restored, skipped, fmt.Errorf("persist: %w", err)
	}
	if torn {
		skipped++
	}
	return restored, skipped, nil
}
