// Package persist provides the crash-safe on-disk durability layer
// behind the solve caches and the ecod job history: an append-only,
// CRC-checked segment log with torn-tail-tolerant recovery, batched
// fsync group commit, and background compaction once the garbage
// ratio passes a threshold.
//
// Records are length-prefixed and CRC32C-checked; the recovery scan
// replays every intact record and stops at the first frame that fails
// the checks (a torn tail from a crash mid-append), truncating the
// active segment back to its valid prefix so the log keeps serving.
// A record is therefore either replayed exactly as written or not at
// all — a half-written or bit-flipped record is never replayed.
//
// The log is record-type-agnostic: callers frame their own payloads
// (the solve-cache codec lives in solve.go; the daemon's job records
// are JSON, framed in internal/server). Compaction asks the owner for
// a snapshot of the live state and rewrites it into a single fresh
// segment (written with the internal/atomicio temp+rename+dir-fsync
// discipline), then deletes the superseded segments — a crash at any
// point leaves a replayable set, because the snapshot sorts after the
// segments it replaces and replay is idempotent by construction on
// both record families.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// RecordType tags a record family. Unknown types replay as opaque
// payloads and are up to the apply callback to ignore, so old logs
// stay readable across versions.
type RecordType uint8

// The record families the stack persists.
const (
	// RecSolve is one solve-cache entry: post-preprocess formula +
	// assumptions + verdict/model words (codec in solve.go).
	RecSolve RecordType = 1
	// RecJob is one ecod job transition record (JSON payload, framed
	// by internal/server).
	RecJob RecordType = 2
)

// Frame layout: u32 length (body bytes) | u32 CRC32C(body) | body,
// where body = 1 type byte + payload. All integers little-endian.
const (
	headerBytes = 8
	// maxRecordBytes bounds a single record; a length field beyond it
	// is treated as frame corruption, not an allocation request.
	maxRecordBytes = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("persist: log is closed")

// Options tunes a Log. The zero value (plus Dir) is a sane daemon
// configuration.
type Options struct {
	// Dir is the data directory; created if missing. Segments are
	// named seg-<seq>.log and replayed in sequence order.
	Dir string
	// MaxSegmentBytes rotates the active segment once it grows past
	// this size (default 64 MiB).
	MaxSegmentBytes int64
	// CompactRatio triggers background compaction once
	// garbage/records exceeds it (default 0.5). <= 0 takes the
	// default; >= 1 disables ratio-triggered compaction.
	CompactRatio float64
	// CompactMinRecords suppresses compaction below this many on-disk
	// records, so tiny logs are not rewritten over and over
	// (default 1024).
	CompactMinRecords int64
	// FlushInterval is the cadence of the background fsync that covers
	// AppendAsync records (default 100ms).
	FlushInterval time.Duration
	// NoSync skips all fsyncs (benchmarks and tests on tmpfs).
	NoSync bool
	// Log receives operational lines; nil discards them.
	Log *log.Logger
}

func (o *Options) fill() {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 64 << 20
	}
	if o.CompactRatio <= 0 {
		o.CompactRatio = 0.5
	}
	if o.CompactMinRecords <= 0 {
		o.CompactMinRecords = 1024
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 100 * time.Millisecond
	}
	if o.Log == nil {
		o.Log = log.New(io.Discard, "", 0)
	}
}

// Stats is a point-in-time snapshot of the log's counters. Records,
// Bytes, Replayed, TornTail, Compactions and FsyncBatches are
// monotonic (they back the ecod_persist_*_total metrics); Live,
// Garbage and Segments describe the current on-disk state.
type Stats struct {
	Records      int64 // records appended since open
	Bytes        int64 // bytes appended since open (frame + body)
	Replayed     int64 // records replayed at open
	TornTail     int64 // torn/corrupt tails dropped by recovery scans
	Compactions  int64 // completed compactions
	FsyncBatches int64 // group-commit fsync batches issued
	Live         int64 // records currently on disk minus known garbage
	Garbage      int64 // records known superseded or evicted
	Segments     int   // segment files currently on disk
}

// Log is an append-only segment log. Safe for concurrent use.
type Log struct {
	opts Options

	// mu guards the active segment: appends, rotation, and the
	// on-disk record/garbage accounting.
	mu       sync.Mutex
	f        *os.File
	size     int64
	seq      uint64
	segments int
	closed   bool

	records  int64 // records currently on disk (replayed + appended - compacted)
	garbage  int64 // of those, known dead (superseded transitions, evictions)
	appended int64 // monotonic: records appended since open
	appBytes int64 // monotonic: bytes appended since open
	replayed int64
	tornTail atomic.Int64

	// Group commit: appenders publish the id of their record as
	// pending and wait until synced catches up; one fsync covers every
	// record written before it started.
	sm           sync.Mutex
	syncCond     *sync.Cond // wakes the sync loop
	doneCond     *sync.Cond // wakes waiting appenders
	pending      int64
	synced       int64
	syncErr      error
	smClosed     bool
	fsyncBatches int64

	// Compaction.
	snapshot    func(w *SnapshotWriter) error
	compacting  atomic.Bool
	compactions atomic.Int64
	compactWG   sync.WaitGroup

	flushStop chan struct{}
	flushDone chan struct{}
}

// segName formats the on-disk name of segment seq.
func segName(seq uint64) string { return fmt.Sprintf("seg-%016d.log", seq) }

// parseSegName extracts the sequence number, reporting ok=false for
// foreign files (temp files, stray droppings).
func parseSegName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "seg-%016d.log", &seq); err != nil {
		return 0, false
	}
	if segName(seq) != name {
		return 0, false
	}
	return seq, true
}

// Open opens (creating if needed) the log in opts.Dir and replays
// every intact record in segment order through apply. A torn or
// corrupt tail is counted, logged, and truncated off the active
// segment; it never fails the open. apply must tolerate any payload
// that passed the CRC — semantically invalid records are its to skip.
func Open(opts Options, apply func(typ RecordType, payload []byte)) (*Log, error) {
	opts.fill()
	if opts.Dir == "" {
		return nil, errors.New("persist: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	l := &Log{
		opts:      opts,
		flushStop: make(chan struct{}),
		flushDone: make(chan struct{}),
	}
	l.syncCond = sync.NewCond(&l.sm)
	l.doneCond = sync.NewCond(&l.sm)

	seqs, err := l.listSegments()
	if err != nil {
		return nil, err
	}
	for i, seq := range seqs {
		last := i == len(seqs)-1
		if err := l.replaySegment(seq, last, apply); err != nil {
			return nil, err
		}
	}
	// Open (or create) the active segment: the highest existing
	// sequence, or segment 1 of a fresh log.
	active := uint64(1)
	if len(seqs) > 0 {
		active = seqs[len(seqs)-1]
	}
	path := filepath.Join(opts.Dir, segName(active))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: %w", err)
	}
	l.f, l.size, l.seq = f, size, active
	l.segments = len(seqs)
	if l.segments == 0 {
		l.segments = 1
	}

	go l.syncLoop()
	go l.flushLoop()
	return l, nil
}

// listSegments returns the on-disk segment sequence numbers, sorted.
func (l *Log) listSegments() ([]uint64, error) {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// replaySegment scans one segment through apply. A scan failure —
// short header, oversized length, CRC mismatch — is a torn tail: the
// rest of the segment is unreachable (framing is lost), so the scan
// stops there. The active (last) segment is truncated back to its
// valid prefix so appends resume on a clean boundary; a sealed
// segment is left as is and just logged.
func (l *Log) replaySegment(seq uint64, active bool, apply func(RecordType, []byte)) error {
	path := filepath.Join(l.opts.Dir, segName(seq))
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	n, valid, torn, err := ScanRecords(f, apply)
	f.Close()
	if err != nil {
		return fmt.Errorf("persist: replay %s: %w", segName(seq), err)
	}
	l.records += n
	l.replayed += n
	if torn {
		l.tornTail.Add(1)
		l.opts.Log.Printf("persist: torn_tail in %s: %d intact records, truncating at byte %d",
			segName(seq), n, valid)
		if active {
			if err := os.Truncate(path, valid); err != nil {
				return fmt.Errorf("persist: truncate torn tail: %w", err)
			}
		}
	}
	return nil
}

// ScanRecords reads length-prefixed CRC-checked records from r until
// EOF or the first bad frame, calling apply for each intact record.
// It returns the record count, the byte offset just past the last
// intact record, and whether trailing bytes were dropped as a torn
// tail. Only an I/O error from r (not corruption) is returned as err.
// Exported for the single-file cache helpers and the fuzz harness.
func ScanRecords(r io.Reader, apply func(typ RecordType, payload []byte)) (n, valid int64, torn bool, err error) {
	var hdr [headerBytes]byte
	var body []byte
	for {
		_, herr := io.ReadFull(r, hdr[:])
		if herr == io.EOF {
			return n, valid, false, nil
		}
		if herr == io.ErrUnexpectedEOF {
			return n, valid, true, nil
		}
		if herr != nil {
			return n, valid, false, herr
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecordBytes {
			return n, valid, true, nil
		}
		if cap(body) < int(length) {
			body = make([]byte, length)
		}
		body = body[:length]
		if _, berr := io.ReadFull(r, body); berr != nil {
			if berr == io.EOF || berr == io.ErrUnexpectedEOF {
				return n, valid, true, nil
			}
			return n, valid, false, berr
		}
		if crc32.Checksum(body, crcTable) != want {
			return n, valid, true, nil
		}
		apply(RecordType(body[0]), body[1:])
		n++
		valid += headerBytes + int64(length)
	}
}

// frame renders one record into buf (reused across appends).
func frame(buf []byte, typ RecordType, payload []byte) []byte {
	buf = buf[:0]
	length := uint32(len(payload) + 1)
	buf = binary.LittleEndian.AppendUint32(buf, length)
	buf = append(buf, 0, 0, 0, 0) // CRC placeholder
	buf = append(buf, byte(typ))
	buf = append(buf, payload...)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[headerBytes:], crcTable))
	return buf
}

// Append writes one record and blocks until it is fsync-durable,
// sharing its fsync with every other append in flight (group commit).
func (l *Log) Append(typ RecordType, payload []byte) error {
	return l.append(typ, payload, true)
}

// AppendAsync writes one record without waiting for durability; the
// background flusher fsyncs it within FlushInterval (or sooner, when
// a durable append batches it along). Losing the tail of async
// records in a crash is the caller's accepted risk — the solve cache
// uses this (a lost cache entry just re-solves).
func (l *Log) AppendAsync(typ RecordType, payload []byte) error {
	return l.append(typ, payload, false)
}

func (l *Log) append(typ RecordType, payload []byte, durable bool) error {
	if len(payload)+1 > maxRecordBytes {
		return fmt.Errorf("persist: record of %d bytes exceeds limit", len(payload))
	}
	rec := frame(make([]byte, 0, headerBytes+1+len(payload)), typ, payload)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.size > 0 && l.size+int64(len(rec)) > l.opts.MaxSegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	if _, err := l.f.Write(rec); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("persist: %w", err)
	}
	l.size += int64(len(rec))
	l.records++
	l.appended++
	l.appBytes += int64(len(rec))
	id := l.appended
	l.mu.Unlock()

	l.maybeCompact()

	if !durable || l.opts.NoSync {
		return nil
	}
	l.sm.Lock()
	if id > l.pending {
		l.pending = id
		l.syncCond.Signal()
	}
	for l.synced < id && l.syncErr == nil && !l.smClosed {
		l.doneCond.Wait()
	}
	err := l.syncErr
	l.sm.Unlock()
	return err
}

// rotateLocked seals the active segment (fsync so every record in it
// is durable before the group-commit accounting moves past it) and
// starts the next one. Caller holds l.mu.
func (l *Log) rotateLocked() error {
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("persist: %w", err)
		}
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	l.seq++
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segName(l.seq)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	l.f, l.size = f, 0
	l.segments++
	return nil
}

// syncLoop is the group-commit engine: it sleeps until some append
// requests durability, then issues one fsync that covers every record
// written before the fsync started and wakes all of them.
func (l *Log) syncLoop() {
	for {
		l.sm.Lock()
		for l.pending <= l.synced && !l.smClosed {
			l.syncCond.Wait()
		}
		if l.smClosed {
			l.doneCond.Broadcast()
			l.sm.Unlock()
			return
		}
		l.sm.Unlock()

		l.mu.Lock()
		target := l.appended
		f := l.f
		closed := l.closed
		l.mu.Unlock()
		var err error
		if !closed && !l.opts.NoSync {
			// Records in sealed segments were fsynced at rotation, so
			// syncing the active file makes everything <= target
			// durable.
			if err = f.Sync(); err != nil {
				// A handle closed by a racing Close is not a sync
				// failure: Close fsyncs before closing.
				l.mu.Lock()
				if l.closed {
					err = nil
				}
				l.mu.Unlock()
			}
		}

		l.sm.Lock()
		l.fsyncBatches++
		if err != nil && l.syncErr == nil {
			l.syncErr = fmt.Errorf("persist: fsync: %w", err)
		}
		if target > l.synced {
			l.synced = target
		}
		l.doneCond.Broadcast()
		l.sm.Unlock()
	}
}

// flushLoop periodically promotes async appends into the group-commit
// pipeline so AppendAsync records become durable within FlushInterval.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.mu.Lock()
			target := l.appended
			l.mu.Unlock()
			l.sm.Lock()
			if target > l.pending {
				l.pending = target
				l.syncCond.Signal()
			}
			l.sm.Unlock()
		}
	}
}

// SetSnapshot installs the compaction source: a callback that writes
// every live record (current in-memory state) into w. Compaction is
// disabled until one is set. Must be installed before the log sees
// concurrent appends.
func (l *Log) SetSnapshot(fn func(w *SnapshotWriter) error) { l.snapshot = fn }

// SetLive declares how many of the on-disk records are live after
// replay (the rest is garbage from superseded transitions and evicted
// entries). Called once by the owner when its replay bookkeeping is
// done.
func (l *Log) SetLive(live int64) {
	l.mu.Lock()
	g := l.records - live
	if g < 0 {
		g = 0
	}
	l.garbage = g
	l.mu.Unlock()
}

// MarkGarbage declares n on-disk records dead: a cache eviction, or a
// job transition superseded by a newer record. Feeds the compaction
// trigger.
func (l *Log) MarkGarbage(n int64) {
	if n <= 0 {
		return
	}
	l.mu.Lock()
	l.garbage += n
	if l.garbage > l.records {
		l.garbage = l.records
	}
	l.mu.Unlock()
	l.maybeCompact()
}

// maybeCompact starts a background compaction when the garbage ratio
// passes the threshold. At most one compaction runs at a time.
func (l *Log) maybeCompact() {
	if l.snapshot == nil {
		return
	}
	l.mu.Lock()
	due := !l.closed && l.records >= l.opts.CompactMinRecords &&
		float64(l.garbage) > l.opts.CompactRatio*float64(l.records)
	l.mu.Unlock()
	if !due || !l.compacting.CompareAndSwap(false, true) {
		return
	}
	l.compactWG.Add(1)
	go func() {
		defer l.compactWG.Done()
		defer l.compacting.Store(false)
		if err := l.compact(); err != nil {
			l.opts.Log.Printf("persist: compaction failed: %v", err)
		}
	}()
}

// CompactNow runs one compaction synchronously (tests; an operator
// hook). Returns nil when another compaction is already in flight.
func (l *Log) CompactNow() error {
	if l.snapshot == nil {
		return errors.New("persist: no snapshot source installed")
	}
	if !l.compacting.CompareAndSwap(false, true) {
		return nil
	}
	defer l.compacting.Store(false)
	return l.compact()
}

// compact rewrites the live state into one fresh segment and deletes
// the segments it supersedes:
//
//  1. under the append lock, seal the active segment S and direct new
//     appends at S+2, reserving S+1 for the snapshot;
//  2. write the owner's live snapshot to a temp file, fsync, rename
//     it to segment S+1, fsync the directory;
//  3. delete every segment <= S.
//
// Replay order makes every crash window safe: the snapshot sorts
// after the segments it replaces and before the appends that followed
// it, and records are idempotent (solve entries first-wins on equal
// content, job records last-wins per ID). A crash before the rename
// leaves the old segments plus the tail; after the rename, the
// superseded segments merely replay first until the deletes finish.
func (l *Log) compact() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	oldSeqHigh := l.seq
	preRecords := l.records
	snapSeq := l.seq + 1
	l.seq += 2
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			l.seq = oldSeqHigh
			l.mu.Unlock()
			return fmt.Errorf("persist: %w", err)
		}
	}
	if err := l.f.Close(); err != nil {
		l.seq = oldSeqHigh
		l.mu.Unlock()
		return fmt.Errorf("persist: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segName(l.seq)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		l.mu.Unlock()
		return fmt.Errorf("persist: %w", err)
	}
	l.f, l.size = f, 0
	l.segments++
	l.mu.Unlock()

	// The snapshot callback reads the owner's in-memory state, which
	// is a superset of everything in segments <= oldSeqHigh (owners
	// update memory before appending). Inserts racing this read land
	// in the new tail and replay after the snapshot — idempotent.
	tmp, err := os.CreateTemp(l.opts.Dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	sw := &SnapshotWriter{f: tmp}
	if err := l.snapshot(sw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	if !l.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("persist: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(l.opts.Dir, segName(snapSeq))); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("persist: %w", err)
	}
	l.syncDirBestEffort()

	// Delete the superseded segments.
	seqs, err := l.listSegments()
	if err != nil {
		return err
	}
	removed := 0
	for _, seq := range seqs {
		if seq <= oldSeqHigh {
			if err := os.Remove(filepath.Join(l.opts.Dir, segName(seq))); err != nil {
				l.opts.Log.Printf("persist: compaction: remove %s: %v", segName(seq), err)
				continue
			}
			removed++
		}
	}
	l.syncDirBestEffort()

	l.mu.Lock()
	// Everything before the rotation collapsed into snapRecords live
	// records; garbage accrued since the rotation keeps counting.
	delta := preRecords - sw.n
	l.records -= delta
	l.garbage -= delta
	if l.garbage < 0 {
		l.garbage = 0
	}
	if l.records < 0 {
		l.records = 0
	}
	l.segments -= removed - 1 // removed old segments, added the snapshot
	l.mu.Unlock()
	l.compactions.Add(1)
	l.opts.Log.Printf("persist: compacted %d records into %d (%d segments removed)",
		preRecords, sw.n, removed)
	return nil
}

// syncDirBestEffort fsyncs the data directory so renames and deletes
// survive a crash; filesystems that reject directory fsync are
// tolerated (the operations are still ordered by the journal).
func (l *Log) syncDirBestEffort() {
	if l.opts.NoSync {
		return
	}
	d, err := os.Open(l.opts.Dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// SnapshotWriter frames live records into a compaction snapshot.
type SnapshotWriter struct {
	f   *os.File
	buf []byte
	n   int64
}

// Write appends one record to the snapshot.
func (w *SnapshotWriter) Write(typ RecordType, payload []byte) error {
	w.buf = frame(w.buf, typ, payload)
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	w.n++
	return nil
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	s := Stats{
		Records:  l.appended,
		Bytes:    l.appBytes,
		Replayed: l.replayed,
		Live:     l.records - l.garbage,
		Garbage:  l.garbage,
		Segments: l.segments,
	}
	l.mu.Unlock()
	s.TornTail = l.tornTail.Load()
	s.Compactions = l.compactions.Load()
	l.sm.Lock()
	s.FsyncBatches = l.fsyncBatches
	l.sm.Unlock()
	return s
}

// Close flushes, fsyncs and closes the log. Further appends return
// ErrClosed. Safe to call once; the daemon calls it at the end of
// drain — a kill -9 simply skips it, which is the scenario recovery
// is built for.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()

	close(l.flushStop)
	<-l.flushDone
	l.compactWG.Wait()

	l.mu.Lock()
	var err error
	if !l.opts.NoSync {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.mu.Unlock()

	l.sm.Lock()
	l.smClosed = true
	l.syncCond.Broadcast()
	l.doneCond.Broadcast()
	l.sm.Unlock()
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}
