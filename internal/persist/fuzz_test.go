package persist

import (
	"bytes"
	"testing"

	"ecopatch/internal/cache"
	"ecopatch/internal/cnf"
	"ecopatch/internal/sat"
)

// FuzzPersistDecode feeds arbitrary bytes through the full recovery
// path — ScanRecords framing plus DecodeSolve on every CRC-valid
// solve record — and asserts the invariants a crashed daemon relies
// on: recovery never panics, never errors on a prefix of a valid log,
// and never replays a structurally invalid solve entry.
func FuzzPersistDecode(f *testing.F) {
	// Seed 1: a valid two-record log (one Sat solve, one job record).
	ff := mkFuzzFormula()
	solve := EncodeSolve(ff, []sat.Lit{sat.MkLit(0, true)},
		cache.Verdict{Status: sat.Sat, Model: []bool{true, false, true}})
	var valid []byte
	valid = frame(valid[:0], RecSolve, solve)
	job := frame(nil, RecJob, []byte(`{"id":"j1","state":"done"}`))
	valid = append(append([]byte(nil), valid...), job...)
	f.Add(valid)

	// Seed 2: truncations at interesting boundaries.
	for _, cut := range []int{0, 1, 3, 4, 7, 8, 9, len(valid) / 2, len(valid) - 1} {
		if cut <= len(valid) {
			f.Add(append([]byte(nil), valid[:cut]...))
		}
	}
	// Seed 3: bit flips in header, CRC, and body regions.
	for _, i := range []int{0, 2, 4, 6, 8, 12, len(valid) - 2} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x80
		f.Add(mut)
	}
	// Seed 4: a frame whose declared length is huge.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1})
	// Seed 5: an Unsat solve record and an empty payload.
	unsat := EncodeSolve(ff, nil, cache.Verdict{Status: sat.Unsat})
	f.Add(frame(nil, RecSolve, unsat))
	f.Add(frame(nil, RecSolve, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		n, validOff, torn, err := ScanRecords(bytes.NewReader(data), func(typ RecordType, payload []byte) {
			if typ != RecSolve {
				return
			}
			fr, assumps, v, derr := DecodeSolve(payload)
			if derr != nil {
				return // skipped, never replayed
			}
			// Anything that decodes must satisfy every invariant the
			// cache assumes of an inserted entry.
			nVars, lits, ends := fr.Raw()
			if len(ends) > 0 && int(ends[len(ends)-1]) != len(lits) {
				t.Fatalf("decoded formula with inconsistent ends")
			}
			prev := int32(0)
			for _, e := range ends {
				if e < prev {
					t.Fatalf("decoded formula with non-monotone ends")
				}
				prev = e
			}
			for _, l := range lits {
				if int(l.Var()) >= nVars {
					t.Fatalf("decoded literal out of range")
				}
			}
			for _, a := range assumps {
				if int(a.Var()) >= nVars {
					t.Fatalf("decoded assumption out of range")
				}
			}
			switch v.Status {
			case sat.Sat:
				if len(v.Model) < nVars {
					t.Fatalf("decoded Sat verdict with short model")
				}
			case sat.Unsat:
				if v.Model != nil {
					t.Fatalf("decoded Unsat verdict carrying a model")
				}
			default:
				t.Fatalf("decoded verdict with status %v", v.Status)
			}
			// Round-trip: re-encoding an accepted entry must be stable.
			re := EncodeSolve(fr, assumps, v)
			fr2, a2, v2, err2 := DecodeSolve(re)
			if err2 != nil {
				t.Fatalf("re-encode of accepted entry fails decode: %v", err2)
			}
			if !fr2.Equal(fr) || len(a2) != len(assumps) || v2.Status != v.Status {
				t.Fatalf("re-encode round-trip drifted")
			}
		})
		if err != nil {
			t.Fatalf("ScanRecords returned error on arbitrary bytes: %v", err)
		}
		// validOff is the truncation point recovery would keep: it must
		// lie within the input and cover at least the minimum frame size
		// (8-byte header + 1 type byte) per intact record.
		if validOff > int64(len(data)) {
			t.Fatalf("valid offset %d beyond input length %d", validOff, len(data))
		}
		if validOff < n*(headerBytes+1) {
			t.Fatalf("valid offset %d too small for %d records", validOff, n)
		}
		if torn && len(data) == 0 {
			t.Fatalf("empty input reported a torn tail")
		}
	})
}

func mkFuzzFormula() *cnf.Formula {
	f := &cnf.Formula{}
	for i := 0; i < 3; i++ {
		f.NewVar()
	}
	f.AddClause(sat.MkLit(0, false), sat.MkLit(1, true))
	f.AddClause(sat.MkLit(2, false))
	return f
}
