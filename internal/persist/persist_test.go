package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ecopatch/internal/cache"
	"ecopatch/internal/cnf"
	"ecopatch/internal/sat"
)

// testOpts builds small-segment, no-fsync options for fast tests.
func testOpts(dir string) Options {
	return Options{Dir: dir, NoSync: true, CompactMinRecords: 1}
}

type replayed struct {
	typ     RecordType
	payload []byte
}

func openCollect(t *testing.T, opts Options) (*Log, []replayed) {
	t.Helper()
	var got []replayed
	l, err := Open(opts, func(typ RecordType, payload []byte) {
		got = append(got, replayed{typ, append([]byte(nil), payload...)})
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, got
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, got := openCollect(t, testOpts(dir))
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	var want []replayed
	for i := 0; i < 100; i++ {
		payload := []byte(fmt.Sprintf("record-%03d", i))
		typ := RecordType(1 + i%2)
		want = append(want, replayed{typ, payload})
		var err error
		if i%3 == 0 {
			err = l.AppendAsync(typ, payload)
		} else {
			err = l.Append(typ, payload)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Records != 100 || st.Live != 100 {
		t.Fatalf("stats = %+v, want 100 records live", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, got = openCollect(t, testOpts(dir))
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].typ != want[i].typ || !bytes.Equal(got[i].payload, want[i].payload) {
			t.Fatalf("record %d: got (%d, %q), want (%d, %q)",
				i, got[i].typ, got[i].payload, want[i].typ, want[i].payload)
		}
	}
}

func TestSegmentRotationAndOrder(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.MaxSegmentBytes = 64 // a few records per segment
	l, _ := openCollect(t, opts)
	for i := 0; i < 50; i++ {
		if err := l.Append(RecJob, []byte(fmt.Sprintf("r%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation, stats %+v", st)
	}
	l.Close()

	_, got := openCollect(t, opts)
	if len(got) != 50 {
		t.Fatalf("replayed %d records, want 50", len(got))
	}
	for i, r := range got {
		if want := fmt.Sprintf("r%02d", i); string(r.payload) != want {
			t.Fatalf("record %d = %q, want %q (segment order broken)", i, r.payload, want)
		}
	}
}

func TestTornTailRecovery(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated-header", func(b []byte) []byte { return b[:len(b)-len(b)%7-4] }},
		{"truncated-body", func(b []byte) []byte { return b[:len(b)-3] }},
		{"bit-flip-last", func(b []byte) []byte {
			b[len(b)-1] ^= 0x40
			return b
		}},
		{"garbage-appended", func(b []byte) []byte {
			return append(b, 0xff, 0x13, 0x37, 0x00, 0x00, 0x00, 0x00, 0x01)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openCollect(t, testOpts(dir))
			for i := 0; i < 10; i++ {
				if err := l.Append(RecJob, []byte(fmt.Sprintf("keep-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()

			path := filepath.Join(dir, segName(1))
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(b), 0o644); err != nil {
				t.Fatal(err)
			}

			l2, got := openCollect(t, testOpts(dir))
			if st := l2.Stats(); st.TornTail != 1 {
				t.Fatalf("torn_tail = %d, want 1 (%s)", st.TornTail, tc.name)
			}
			// The valid prefix replays; every replayed record is intact.
			for i, r := range got {
				if want := fmt.Sprintf("keep-%d", i); string(r.payload) != want {
					t.Fatalf("record %d = %q, want %q", i, r.payload, want)
				}
			}
			if len(got) == 10 && tc.name != "garbage-appended" {
				t.Fatalf("mutation %s did not drop any record", tc.name)
			}
			// The log keeps serving: append after recovery, reopen, and
			// the tail is the new record.
			if err := l2.Append(RecJob, []byte("after-recovery")); err != nil {
				t.Fatal(err)
			}
			l2.Close()
			_, got3 := openCollect(t, testOpts(dir))
			if len(got3) != len(got)+1 || string(got3[len(got3)-1].payload) != "after-recovery" {
				t.Fatalf("append after torn-tail recovery lost: %d records", len(got3))
			}
		})
	}
}

// TestCrashPrefixAlwaysReplayable simulates a kill -9 at every byte
// boundary of a log: any prefix must recover without error and replay
// only intact records, in order.
func TestCrashPrefixAlwaysReplayable(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, testOpts(dir))
	for i := 0; i < 8; i++ {
		if err := l.Append(RecSolve, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	full, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(full); cut++ {
		var n int
		_, _, _, err := ScanRecords(bytes.NewReader(full[:cut]), func(typ RecordType, payload []byte) {
			if want := fmt.Sprintf("payload-%d", n); string(payload) != want {
				t.Fatalf("cut %d: record %d = %q, want %q", cut, n, payload, want)
			}
			n++
		})
		if err != nil {
			t.Fatalf("cut %d: scan error %v", cut, err)
		}
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	// Real fsyncs so group commit actually batches.
	l, _ := openCollect(t, Options{Dir: dir, CompactMinRecords: 1 << 30})
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(RecJob, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Records != writers*per {
		t.Fatalf("records = %d, want %d", st.Records, writers*per)
	}
	if st.FsyncBatches == 0 {
		t.Fatal("no fsync batches recorded")
	}
	// Group commit's whole point: far fewer fsyncs than records under
	// concurrency. With 8 writers racing, batching must kick in; allow
	// generous slack for a slow machine.
	if st.FsyncBatches >= st.Records {
		t.Fatalf("fsync batches %d >= records %d: group commit not batching", st.FsyncBatches, st.Records)
	}
	l.Close()
	_, got := openCollect(t, testOpts(dir))
	if len(got) != writers*per {
		t.Fatalf("replayed %d, want %d", len(got), writers*per)
	}
}

func TestCompactionRewritesLiveState(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	// Disable the ratio trigger so the explicit CompactNow below is the
	// only compaction (a racing background one would steal its slot).
	opts.CompactMinRecords = 1 << 30
	l, _ := openCollect(t, opts)

	// Live state: a mutable map the snapshot callback serializes.
	var mu sync.Mutex
	live := map[string]string{}
	l.SetSnapshot(func(w *SnapshotWriter) error {
		mu.Lock()
		defer mu.Unlock()
		for k, v := range live {
			if err := w.Write(RecJob, []byte(k+"="+v)); err != nil {
				return err
			}
		}
		return nil
	})

	// 50 keys, each overwritten 4 times: 200 records, 150 garbage.
	for round := 0; round < 4; round++ {
		for i := 0; i < 50; i++ {
			k := fmt.Sprintf("k%02d", i)
			v := fmt.Sprintf("v%d", round)
			mu.Lock()
			_, existed := live[k]
			live[k] = v
			mu.Unlock()
			if err := l.Append(RecJob, []byte(k+"="+v)); err != nil {
				t.Fatal(err)
			}
			if existed {
				l.MarkGarbage(1)
			}
		}
	}
	if err := l.CompactNow(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", st.Compactions)
	}
	if st.Live != 50 || st.Garbage != 0 {
		t.Fatalf("after compaction stats = %+v, want 50 live / 0 garbage", st)
	}
	// Appends after compaction land in the tail and replay after the
	// snapshot.
	mu.Lock()
	live["k00"] = "tail"
	mu.Unlock()
	if err := l.Append(RecJob, []byte("k00=tail")); err != nil {
		t.Fatal(err)
	}
	l.MarkGarbage(1)
	l.Close()

	_, got := openCollect(t, opts)
	state := map[string]string{}
	for _, r := range got {
		k, v, _ := bytes.Cut(r.payload, []byte("="))
		state[string(k)] = string(v)
	}
	if len(state) != 50 {
		t.Fatalf("replayed state has %d keys, want 50", len(state))
	}
	for k, v := range state {
		want := "v3"
		if k == "k00" {
			want = "tail"
		}
		if v != want {
			t.Fatalf("key %s = %q, want %q", k, v, want)
		}
	}
	if len(got) >= 200 {
		t.Fatalf("compaction did not shrink the log: %d records replayed", len(got))
	}
}

func TestBackgroundCompactionTriggers(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.CompactRatio = 0.5
	opts.CompactMinRecords = 10
	l, _ := openCollect(t, opts)
	l.SetSnapshot(func(w *SnapshotWriter) error {
		return w.Write(RecJob, []byte("live"))
	})
	for i := 0; i < 40; i++ {
		if err := l.Append(RecJob, []byte("x")); err != nil {
			t.Fatal(err)
		}
		l.MarkGarbage(1) // everything is immediately garbage
	}
	// The trigger spawns a goroutine; give it time to run before Close
	// flips the closed flag (which aborts a not-yet-started compaction).
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Compactions == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	l.Close()
	if st := l.Stats(); st.Compactions == 0 {
		t.Fatalf("background compaction never triggered: %+v", st)
	}
}

func mkFormula(t *testing.T, clauses [][]int, nVars int) *cnf.Formula {
	t.Helper()
	f := &cnf.Formula{}
	for i := 0; i < nVars; i++ {
		f.NewVar()
	}
	for _, cl := range clauses {
		lits := make([]sat.Lit, len(cl))
		for i, v := range cl {
			if v > 0 {
				lits[i] = sat.MkLit(sat.Var(v-1), false)
			} else {
				lits[i] = sat.MkLit(sat.Var(-v-1), true)
			}
		}
		f.AddClause(lits...)
	}
	return f
}

func TestSolveCodecRoundtrip(t *testing.T) {
	f := mkFormula(t, [][]int{{1, 2}, {-1, 3}, {-2, -3}}, 3)
	assumps := []sat.Lit{sat.MkLit(0, false)}
	for _, v := range []cache.Verdict{
		{Status: sat.Sat, Model: []bool{true, false, true}},
		{Status: sat.Unsat},
	} {
		b := EncodeSolve(f, assumps, v)
		if b == nil {
			t.Fatal("EncodeSolve returned nil for a cacheable verdict")
		}
		f2, a2, v2, err := DecodeSolve(b)
		if err != nil {
			t.Fatal(err)
		}
		if !f2.Equal(f) {
			t.Fatal("formula did not roundtrip")
		}
		if len(a2) != len(assumps) || a2[0] != assumps[0] {
			t.Fatalf("assumps = %v, want %v", a2, assumps)
		}
		if v2.Status != v.Status {
			t.Fatalf("status = %v, want %v", v2.Status, v.Status)
		}
		for i := range v.Model {
			if v2.Model[i] != v.Model[i] {
				t.Fatalf("model[%d] mismatch", i)
			}
		}
	}
	if EncodeSolve(f, nil, cache.Verdict{Status: sat.Unknown}) != nil {
		t.Fatal("Unknown verdict must never encode")
	}
}

func TestSolveDecodeRejectsCorruption(t *testing.T) {
	f := mkFormula(t, [][]int{{1, -2}, {2}}, 2)
	good := EncodeSolve(f, nil, cache.Verdict{Status: sat.Sat, Model: []bool{true, true}})
	if _, _, _, err := DecodeSolve(good); err != nil {
		t.Fatal(err)
	}
	// Any truncation and any single-byte flip must fail decode or
	// produce a structurally valid entry — never panic. Most flips are
	// caught; flips inside the model bitset legitimately decode.
	for cut := 0; cut < len(good); cut++ {
		DecodeSolve(good[:cut])
	}
	for i := 0; i < len(good); i++ {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0x10
		fr, _, v, err := DecodeSolve(mut)
		if err != nil {
			continue
		}
		// Whatever decodes must uphold the cache invariants.
		if v.Status == sat.Sat && len(v.Model) < fr.NumVars() {
			t.Fatalf("flip at %d decoded an entry with a short model", i)
		}
	}
}

func TestSolveCacheFileRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.bin")
	src := cache.NewSolveCache(16)
	f1 := mkFormula(t, [][]int{{1, 2}}, 2)
	f2 := mkFormula(t, [][]int{{-1}, {1}}, 1)
	src.Insert(f1, nil, cache.Verdict{Status: sat.Sat, Model: []bool{true, false}})
	src.Insert(f2, nil, cache.Verdict{Status: sat.Unsat})

	n, err := SaveSolveCacheFile(path, src)
	if err != nil || n != 2 {
		t.Fatalf("save: n=%d err=%v", n, err)
	}
	dst := cache.NewSolveCache(16)
	restored, skipped, err := LoadSolveCacheFile(path, dst)
	if err != nil || restored != 2 || skipped != 0 {
		t.Fatalf("load: restored=%d skipped=%d err=%v", restored, skipped, err)
	}
	v, ok, _ := dst.Lookup(f1, nil)
	if !ok || v.Status != sat.Sat || !v.Model[0] || v.Model[1] {
		t.Fatalf("f1 lookup after load: ok=%v v=%+v", ok, v)
	}
	if v, ok, _ := dst.Lookup(f2, nil); !ok || v.Status != sat.Unsat {
		t.Fatalf("f2 lookup after load: ok=%v v=%+v", ok, v)
	}

	// Missing file: empty cache, no error.
	if r, s, err := LoadSolveCacheFile(filepath.Join(t.TempDir(), "absent"), dst); r != 0 || s != 0 || err != nil {
		t.Fatalf("missing file: r=%d s=%d err=%v", r, s, err)
	}

	// Torn tail: drop the last byte; the first record still loads.
	b, _ := os.ReadFile(path)
	os.WriteFile(path, b[:len(b)-1], 0o644)
	dst2 := cache.NewSolveCache(16)
	restored, skipped, err = LoadSolveCacheFile(path, dst2)
	if err != nil || restored != 1 || skipped != 1 {
		t.Fatalf("torn load: restored=%d skipped=%d err=%v", restored, skipped, err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	l, _ := openCollect(t, testOpts(t.TempDir()))
	l.Close()
	if err := l.Append(RecJob, []byte("x")); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
