package eco

import (
	"context"
	"sync"

	"ecopatch/internal/sat"
)

// solverGroup tracks every SAT solver created during one engine run so
// that a deadline or context cancellation can interrupt them all. add
// is safe to call concurrently with interruptAll; a solver registered
// after the group was stopped is interrupted immediately, closing the
// race between a firing timer and a freshly created solver.
type solverGroup struct {
	mu      sync.Mutex
	solvers []*sat.Solver
	stopped bool
}

// add registers a solver with the group.
func (g *solverGroup) add(s *sat.Solver) {
	g.mu.Lock()
	if g.stopped {
		s.Interrupt()
	}
	g.solvers = append(g.solvers, s)
	g.mu.Unlock()
}

// stats sums the kernel counters of every solver created during the
// run. Call only after solving is done (solvers mutate their own
// Stats while searching).
func (g *solverGroup) stats() sat.Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	var total sat.Stats
	for _, s := range g.solvers {
		total.Add(s.Stats)
	}
	return total
}

// interruptAll interrupts every registered solver and marks the group
// stopped so later registrations abort immediately.
func (g *solverGroup) interruptAll() {
	g.mu.Lock()
	g.stopped = true
	for _, s := range g.solvers {
		s.Interrupt()
	}
	g.mu.Unlock()
}

// watch arms a goroutine that interrupts the whole group when ctx is
// canceled (deadline expiry included). The returned stop function
// releases the watcher; it must be called before the engine's result
// is read so no interrupt fires after the run is over.
func (g *solverGroup) watch(ctx context.Context) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			g.interruptAll()
		case <-quit:
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}
