package eco

import (
	"fmt"

	"ecopatch/internal/aig"
	"ecopatch/internal/cnf"
	"ecopatch/internal/sat"
)

// MinimizeComparison reports the SAT-call counts of the two support
// minimization strategies on one target (experiment E5: the paper's
// §3.4.1 complexity claim, O(max{log N, M}) bisection calls versus
// the naive O(N) loop).
type MinimizeComparison struct {
	Divisors       int // N: candidate divisors offered
	Kept           int // M: divisors kept by the bisection
	BisectionCalls int // SAT calls made by minimize_assumptions
	LinearCalls    int // SAT calls made by the one-at-a-time loop
	KeptLinear     int
}

// CompareMinimize runs both minimization strategies on the first
// target of the instance and returns their call counts.
func CompareMinimize(inst *Instance) (*MinimizeComparison, error) {
	if err := inst.Check(); err != nil {
		return nil, err
	}
	opt := DefaultOptions()
	e := &engine{inst: inst, opt: opt, res: &Result{}}
	if err := e.setup(); err != nil {
		return nil, err
	}
	feasible, err := e.checkFeasible()
	if err != nil {
		return nil, err
	}
	if !feasible {
		return nil, fmt.Errorf("eco: instance infeasible")
	}
	e.rectifyAllInit()

	m0, m1 := e.cofactorMiters(0)
	s := e.newSolver()
	enc1 := cnf.NewEncoder(s, e.w)
	enc2 := cnf.NewEncoder(s, e.w)
	r1 := enc1.Lit(m0)
	r2 := enc2.Lit(m1)
	divs := e.orderedDivisors()
	auxs := make([]sat.Lit, len(divs))
	for j, d := range divs {
		d1 := enc1.Lit(d.edge)
		d2 := enc2.Lit(d.edge)
		a := sat.PosLit(s.NewVar())
		s.AddClause(a.Not(), d1.Not(), d2)
		s.AddClause(a.Not(), d1, d2.Not())
		auxs[j] = a
	}
	fixed := []sat.Lit{r1, r2}
	if st := s.Solve(append(append([]sat.Lit{}, fixed...), auxs...)...); st != sat.Unsat {
		return nil, fmt.Errorf("eco: expression (2) not UNSAT (%v)", st)
	}

	cmp := &MinimizeComparison{Divisors: len(divs)}
	arr := append([]sat.Lit(nil), auxs...)
	m := &minimizer{s: s, fixed: fixed, calls: &cmp.BisectionCalls}
	kept, err := m.minimize(arr)
	if err != nil {
		return nil, err
	}
	cmp.Kept = kept

	arrLin := append([]sat.Lit(nil), auxs...)
	keptLin, err := minimizeLinear(s, fixed, arrLin, &cmp.LinearCalls)
	if err != nil {
		return nil, err
	}
	cmp.KeptLinear = keptLin
	return cmp, nil
}

// rectifyAllInit resets the per-rectification state without running
// the rectification loop (used by experiment probes).
func (e *engine) rectifyAllInit() {
	k := len(e.targets)
	e.targetPatches = make([]TargetPatch, k)
	e.patchAIGs = make([]*aig.AIG, k)
	e.rawPatchAIGs = make([]*aig.AIG, k)
	e.rawSupports = make([][]string, k)
	e.patches = make([]aig.Lit, k)
	e.done = make([]bool, k)
	e.usedSignals = make(map[string]bool)
}
