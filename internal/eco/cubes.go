package eco

import (
	"ecopatch/internal/sat"
	"ecopatch/internal/synth"
)

// enumerateCubes computes the patch function as an irredundant prime
// SOP over the selected divisors (§3.5):
//
//	loop:
//	  - find an onset point: a satisfying assignment of the n=0 copy
//	    (a mismatch the patch must fix by producing 1);
//	  - expand its divisor minterm into a prime cube by dropping
//	    literals while the n=1 copy (the offset) stays unreachable —
//	    this is minimize_assumptions again, now over cube literals;
//	  - block the cube in the onset copy and continue.
//
// The equality selectors are left unassumed here, so the two copies
// are independent and the cube check works point-wise.
func (e *engine) enumerateCubes(s *sat.Solver, r1, r2 sat.Lit,
	divs []divisor, selected []int, d1s, d2s []sat.Lit) (*synth.SOP, error) {

	sop := synth.NewSOP(len(selected))
	posOfVar := make(map[sat.Var]int, len(selected))
	for pos, j := range selected {
		posOfVar[d2s[j].Var()] = pos
	}
	for {
		if len(sop.Cubes) > e.opt.MaxCubes {
			return nil, errTooManyCubes
		}
		e.stats.SATCalls++
		switch s.Solve(r1) {
		case sat.Unsat:
			return sop, nil
		case sat.Unknown:
			return nil, errBudget
		}
		// Read the divisor minterm of the onset point.
		cubeLits := make([]sat.Lit, len(selected))
		for pos, j := range selected {
			v := s.ModelBool(d1s[j])
			cubeLits[pos] = d2s[j].XorSign(!v)
		}
		// Expand to a prime cube against the offset copy.
		// No bank here: cube blocking has started adding clauses, so
		// banked models are no longer trustworthy (see satPatchWith).
		m := &minimizer{s: s, fixed: []sat.Lit{r2}, calls: &e.stats.MinimizeCalls,
			satCalls: &e.stats.SATCalls}
		kept, err := m.minimize(cubeLits)
		if err != nil {
			return nil, err
		}
		cube := synth.NewCube(len(selected))
		for _, l := range cubeLits[:kept] {
			pos := posOfVar[l.Var()]
			// The divisor's value polarity, not the raw SAT-literal
			// sign: d2s[j] is the literal meaning "divisor is true"
			// and may itself be negated (complemented AIG edge).
			if l == d2s[selected[pos]] {
				cube[pos] = synth.Pos
			} else {
				cube[pos] = synth.Neg
			}
		}
		sop.AddCube(cube)
		e.stats.CubesEnumerated++
		// Block the cube in the onset copy.
		var block []sat.Lit
		for pos, p := range cube {
			j := selected[pos]
			switch p {
			case synth.Pos:
				block = append(block, d1s[j].Not())
			case synth.Neg:
				block = append(block, d1s[j])
			}
		}
		// An empty block means the universal cube: the patch is
		// constant true and the onset copy is exhausted.
		if !s.AddClause(block...) {
			return sop, nil
		}
	}
}
