package eco

import (
	"errors"
	"fmt"
	"time"

	"ecopatch/internal/aig"
	"ecopatch/internal/cec"
	"ecopatch/internal/netlist"
)

// verify substitutes all patches into the implementation outputs and
// checks combinational equivalence with the specification over every
// output (task (4) of the paper's ECO decomposition).
func (e *engine) verify() (bool, error) {
	start := time.Now()
	defer func() { e.stats.VerifyTime += time.Since(start) }()
	piMap := e.selfPIMap()
	for j := range e.targets {
		piMap[e.tPIs[j]] = e.patches[j]
	}
	patched := aig.Transfer(e.w, e.w, piMap, e.implPOs)
	res, err := cec.CheckLitsOpt(e.w, patched, e.specPOs, cec.CheckOptions{
		OnSolver:   e.group.add,
		Shards:     e.par(),
		Cache:      e.solveCache(),
		Preprocess: e.prepCfg(),
		Rewrite:    e.opt.Rewrite,
	})
	e.stats.CacheHits += res.CacheHits
	e.stats.CacheMisses += res.CacheMisses
	e.stats.CacheCollisions += res.CacheCollisions
	e.stats.Prep.Add(res.Prep)
	if err != nil {
		if errors.Is(err, cec.ErrGaveUp) {
			// Interrupted (deadline): no verdict, so the patch cannot
			// be reported as verified.
			e.logf("verification aborted (%v); reporting unverified", err)
			return false, nil
		}
		return false, err
	}
	if !res.Equivalent {
		e.logf("verification failed at output %d", res.FailingOutput)
		if res.Counterexample != nil {
			// The counterexample is a care pattern the retry pass (and
			// later windows) should simulate divisors against.
			e.addPattern(res.Counterexample)
		}
	}
	return res.Equivalent, nil
}

// VerifyPatch is the standalone checker: given an instance and a
// patch module (inputs = implementation signals, outputs = targets),
// it splices the patch into the implementation and checks equivalence
// against the specification. Used by cmd/eco and the test suite to
// validate patches independently of the engine that produced them.
func VerifyPatch(inst *Instance, patch *netlist.Netlist) (bool, error) {
	implRes, err := netlist.ToAIG(inst.Impl)
	if err != nil {
		return false, err
	}
	specRes, err := netlist.ToAIG(inst.Spec)
	if err != nil {
		return false, err
	}
	targets := implRes.Targets
	w := aig.New()
	nIn := len(inst.Impl.Inputs)
	piMap := make([]aig.Lit, implRes.G.NumPIs())
	for i := 0; i < nIn; i++ {
		piMap[i] = w.AddPI(inst.Impl.Inputs[i])
	}

	// Bring all named implementation signals over so patch inputs can
	// be resolved; targets temporarily map to placeholder PIs that are
	// replaced below.
	tPI := make([]int, len(targets))
	for i := range targets {
		tPI[i] = w.NumPIs()
		piMap[nIn+i] = w.AddPI(targets[i])
	}
	var names []string
	for name := range implRes.Signals {
		names = append(names, name)
	}
	roots := make([]aig.Lit, 0, len(names)+implRes.G.NumPOs())
	for _, n := range names {
		roots = append(roots, implRes.Signals[n])
	}
	for i := 0; i < implRes.G.NumPOs(); i++ {
		roots = append(roots, implRes.G.PO(i))
	}
	moved := aig.Transfer(w, implRes.G, piMap, roots)
	sigEdge := make(map[string]aig.Lit, len(names))
	for i, n := range names {
		sigEdge[n] = moved[i]
	}
	implPOs := moved[len(names):]

	// Patch module to AIG; its PIs are implementation signal names.
	patchRes, err := netlist.ToAIG(patch)
	if err != nil {
		return false, err
	}
	if len(patchRes.Targets) != 0 {
		return false, fmt.Errorf("eco: patch module has undriven signals %v", patchRes.Targets)
	}
	pMap := make([]aig.Lit, patchRes.G.NumPIs())
	for i := 0; i < patchRes.G.NumPIs(); i++ {
		name := patchRes.G.PIName(i)
		edge, ok := sigEdge[name]
		if !ok {
			return false, fmt.Errorf("eco: patch input %q is not an implementation signal", name)
		}
		pMap[i] = edge
	}
	// Patch inputs must not depend on the targets (no feedback loops).
	for i := range pMap {
		for _, sup := range w.SupportPIs([]aig.Lit{pMap[i]}) {
			for _, tp := range tPI {
				if sup == tp {
					return false, fmt.Errorf("eco: patch input %q depends on a target", patchRes.G.PIName(i))
				}
			}
		}
	}
	patchOut := make(map[string]aig.Lit, patchRes.G.NumPOs())
	pRoots := make([]aig.Lit, patchRes.G.NumPOs())
	for i := range pRoots {
		pRoots[i] = patchRes.G.PO(i)
	}
	pMoved := aig.Transfer(w, patchRes.G, pMap, pRoots)
	for i := 0; i < patchRes.G.NumPOs(); i++ {
		patchOut[patchRes.G.POName(i)] = pMoved[i]
	}

	// Substitute the patch outputs for the target PIs.
	subst := make([]aig.Lit, w.NumPIs())
	for i := range subst {
		subst[i] = w.PI(i)
	}
	for i, t := range targets {
		edge, ok := patchOut[t]
		if !ok {
			return false, fmt.Errorf("eco: patch module does not drive target %q", t)
		}
		subst[tPI[i]] = edge
	}
	patched := aig.Transfer(w, w, subst, implPOs)

	// Specification over the shared inputs.
	sMap := make([]aig.Lit, specRes.G.NumPIs())
	for i := 0; i < nIn; i++ {
		sMap[i] = w.PI(i)
	}
	sRoots := make([]aig.Lit, specRes.G.NumPOs())
	for i := range sRoots {
		sRoots[i] = specRes.G.PO(i)
	}
	specPOs := aig.Transfer(w, specRes.G, sMap, sRoots)

	res, err := cec.CheckLits(w, patched, specPOs)
	if err != nil {
		return false, err
	}
	return res.Equivalent, nil
}
