package eco

import (
	"ecopatch/internal/sat"
	"ecopatch/internal/sim"
)

// minimizer implements procedure minimize_assumptions (Algorithm 1 of
// the paper): given a formula UNSAT under fixed ∪ A, it permutes A in
// place so that a minimal prefix of A keeps the formula UNSAT, and
// returns that prefix length. The recursion bisects A, giving
// O(max{log N, M}) SAT calls for N assumptions and M kept — versus
// O(N) for the naive one-at-a-time loop (see minimizeLinear).
//
// Because callers pass A in ascending cost order, the minimality is
// cost-aware: a kept assumption cannot be replaced by a cheaper one
// earlier in the order (the LEXUNSAT property the paper cites).
type minimizer struct {
	s     *sat.Solver
	fixed []sat.Lit
	calls *int

	// satCalls, when non-nil, also counts each query toward the
	// engine-wide Stats.SATCalls total (see its invariant).
	satCalls *int64
	// bank, when non-nil, elides solver work: minimize only assumes
	// literals, never adds clauses, so a banked model satisfying the
	// whole assumption set answers Sat exactly. elided counts the hits;
	// onSat (if set) runs after each real solver Sat so the caller can
	// bank the fresh model.
	bank   *sim.ModelBank
	elided *int64
	onSat  func()

	// scratch is the assumption buffer reused across solve calls:
	// minimize issues O(log N + M) SAT queries and allocating a fresh
	// slice per query is measurable garbage on Algorithm 1's hot loop.
	scratch []sat.Lit
}

func (m *minimizer) solve(extra []sat.Lit) (sat.Status, error) {
	if m.calls != nil {
		*m.calls++
	}
	if m.satCalls != nil {
		*m.satCalls++
	}
	assumps := append(m.scratch[:0], m.fixed...)
	assumps = append(assumps, extra...)
	m.scratch = assumps
	if m.bank != nil && m.bank.Find(assumps) >= 0 {
		*m.elided++
		return sat.Sat, nil
	}
	st := m.s.Solve(assumps...)
	if st == sat.Unknown {
		return st, errBudget
	}
	if st == sat.Sat && m.onSat != nil {
		m.onSat()
	}
	return st, nil
}

// minimize reduces A (permuting it) and returns the kept prefix size.
func (m *minimizer) minimize(A []sat.Lit) (int, error) {
	if len(A) == 0 {
		return 0, nil
	}
	if len(A) == 1 {
		// Is the assumption needed at all?
		st, err := m.solve(nil)
		if err != nil {
			return 0, err
		}
		if st == sat.Unsat {
			return 0, nil
		}
		return 1, nil
	}
	mid := (len(A) + 1) / 2
	low, high := A[:mid], A[mid:]

	// Try the lower half alone.
	st, err := m.solve(low)
	if err != nil {
		return 0, err
	}
	if st == sat.Unsat {
		return m.minimize(low)
	}

	// Minimize the higher half while assuming all of the lower half.
	savedLen := len(m.fixed)
	m.fixed = append(m.fixed, low...)
	sHigh, err := m.minimize(high)
	m.fixed = m.fixed[:savedLen]
	if err != nil {
		return 0, err
	}

	// Reorder: selected high entries first, then the lower half.
	newA := make([]sat.Lit, 0, len(A))
	newA = append(newA, high[:sHigh]...)
	newA = append(newA, low...)
	newA = append(newA, high[sHigh:]...)
	copy(A, newA)

	// Minimize the lower half while assuming the selected high part.
	m.fixed = append(m.fixed, A[:sHigh]...)
	sLow, err := m.minimize(A[sHigh : sHigh+len(low)])
	m.fixed = m.fixed[:savedLen]
	if err != nil {
		return 0, err
	}
	return sHigh + sLow, nil
}

// minimizeLinear is the naive O(N) comparison point (experiment E5):
// walk the assumptions once, dropping each that is unnecessary given
// the current partial selection and the untested tail.
func minimizeLinear(s *sat.Solver, fixed []sat.Lit, A []sat.Lit, calls *int) (int, error) {
	kept := 0
	scratch := make([]sat.Lit, 0, len(fixed)+len(A))
	for i := 0; i < len(A); i++ {
		// Assume everything kept so far plus the untouched tail,
		// skipping A[i].
		assumps := append(scratch[:0], fixed...)
		assumps = append(assumps, A[:kept]...)
		assumps = append(assumps, A[i+1:]...)
		if calls != nil {
			*calls++
		}
		switch s.Solve(assumps...) {
		case sat.Unsat:
			// A[i] unnecessary: drop it.
		case sat.Sat:
			A[kept] = A[i]
			kept++
		case sat.Unknown:
			return 0, errBudget
		}
	}
	return kept, nil
}
