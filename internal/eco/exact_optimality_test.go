package eco

import (
	"math/rand"
	"testing"

	"ecopatch/internal/aig"
	"ecopatch/internal/netlist"
)

// TestExactSupportIsOptimalBruteForce cross-validates SAT_prune on
// random single-target instances: the minimum feasible support cost
// is recomputed by exhaustive subset enumeration over the engine's
// own divisor list, using truth tables for the feasibility test
// (a subset is feasible iff no onset point and offset point of the
// target miter agree on all chosen divisors).
func TestExactSupportIsOptimalBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	checked := 0
	for iter := 0; iter < 60 && checked < 25; iter++ {
		inst := randomTinyInstance(t, rng)
		if inst == nil {
			continue
		}
		opt := DefaultOptions()
		opt.Support = SupportExact
		opt.LastGasp = false

		// White-box: reproduce the engine's divisor view.
		probe := &engine{inst: inst, opt: opt, res: &Result{}}
		if err := probe.setup(); err != nil {
			t.Fatal(err)
		}
		feasible, err := probe.checkFeasible()
		if err != nil {
			t.Fatal(err)
		}
		if !feasible || len(probe.targets) != 1 || len(probe.divisors) > 12 {
			continue
		}
		probe.rectifyAllInit()
		m0, m1 := probe.cofactorMiters(0)
		best, ok := bruteForceMinSupportCost(probe, m0, m1)
		if !ok {
			continue // no feasible subset (shouldn't happen when feasible)
		}
		checked++

		res, err := Solve(inst, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatalf("iter %d: not verified", iter)
		}
		if res.TotalCost != best {
			t.Fatalf("iter %d: SAT_prune cost %d != brute-force optimum %d (support %v)",
				iter, res.TotalCost, best, res.Patches[0].Support)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d instances checked; weak test", checked)
	}
}

// bruteForceMinSupportCost enumerates divisor subsets by exhaustive
// truth tables. Returns the minimum total cost of a feasible subset.
func bruteForceMinSupportCost(e *engine, m0, m1 aig.Lit) (int, bool) {
	nPI := e.w.NumPIs()
	nX := len(e.xPIs)
	if nX > 10 {
		return 0, false
	}
	type point struct {
		divBits uint32
		onset   bool
		offset  bool
	}
	var pts []point
	in := make([]bool, nPI)
	for m := 0; m < 1<<uint(nX); m++ {
		for i, p := range e.xPIs {
			in[p] = m>>uint(i)&1 == 1
		}
		on := e.w.EvalLit(m0, in)
		off := e.w.EvalLit(m1, in)
		if !on && !off {
			continue
		}
		var bits uint32
		for j, d := range e.divisors {
			if e.w.EvalLit(d.edge, in) {
				bits |= 1 << uint(j)
			}
		}
		pts = append(pts, point{bits, on, off})
	}
	nDiv := len(e.divisors)
	best := -1
	for mask := 0; mask < 1<<uint(nDiv); mask++ {
		cost := 0
		for j := 0; j < nDiv; j++ {
			if mask>>uint(j)&1 == 1 {
				cost += e.divisors[j].cost
			}
		}
		if best >= 0 && cost >= best {
			continue
		}
		// Feasible iff no onset/offset pair agrees on the mask bits.
		feasible := true
	outer:
		for _, a := range pts {
			if !a.onset {
				continue
			}
			for _, b := range pts {
				if !b.offset {
					continue
				}
				if (a.divBits^b.divBits)&uint32(mask) == 0 {
					feasible = false
					break outer
				}
			}
		}
		if feasible {
			best = cost
		}
	}
	return best, best >= 0
}

// randomTinyInstance builds a small feasible-by-construction instance
// with one target; returns nil when the sampled circuit degenerates.
func randomTinyInstance(t *testing.T, rng *rand.Rand) *Instance {
	t.Helper()
	nIn := 3 + rng.Intn(3)
	names := []string{"a", "b", "c", "d", "e", "g"}[:nIn]
	b := &netlist.Netlist{Name: "tiny", Inputs: append([]string(nil), names...)}
	pool := append([]string(nil), names...)
	kinds := []netlist.GateKind{netlist.GateAnd, netlist.GateOr, netlist.GateXor, netlist.GateNand}
	wires := 0
	gate := func(kind netlist.GateKind, ins ...string) string {
		wires++
		w := "w" + string(rune('0'+wires))
		b.Wires = append(b.Wires, w)
		b.Gates = append(b.Gates, netlist.Gate{Kind: kind, Out: w, Ins: ins})
		return w
	}
	for i := 0; i < 4+rng.Intn(5); i++ {
		x := pool[rng.Intn(len(pool))]
		y := pool[rng.Intn(len(pool))]
		if x == y {
			continue
		}
		pool = append(pool, gate(kinds[rng.Intn(len(kinds))], x, y))
	}
	if wires < 2 {
		return nil
	}
	// Output reads the last wire combined with the target.
	last := pool[len(pool)-1]
	b.Outputs = append(b.Outputs, "f", "g2")
	b.Gates = append(b.Gates,
		netlist.Gate{Kind: netlist.GateAnd, Out: "f", Ins: []string{last, "t_0"}},
		netlist.Gate{Kind: netlist.GateBuf, Out: "g2", Ins: []string{pool[nIn+rng.Intn(wires)]}},
	)

	// Spec: t_0 := random function of two non-TFO signals.
	spec := &netlist.Netlist{
		Name:    "tinyS",
		Inputs:  append([]string(nil), b.Inputs...),
		Outputs: append([]string(nil), b.Outputs...),
		Wires:   append([]string(nil), b.Wires...),
	}
	for _, g := range b.Gates {
		if g.Out == "f" {
			continue
		}
		spec.Gates = append(spec.Gates, g)
	}
	x := pool[rng.Intn(len(pool))]
	y := pool[rng.Intn(len(pool))]
	if x == y || x == "f" || y == "f" {
		return nil
	}
	spec.Wires = append(spec.Wires, "gfun")
	spec.Gates = append(spec.Gates,
		netlist.Gate{Kind: kinds[rng.Intn(len(kinds))], Out: "gfun", Ins: []string{x, y}},
		netlist.Gate{Kind: netlist.GateAnd, Out: "f", Ins: []string{last, "gfun"}},
	)
	w := netlist.NewWeights()
	for _, s := range append(append([]string(nil), b.Inputs...), b.Wires...) {
		w.Set(s, 1+rng.Intn(9))
	}
	w.Set("f", 50)
	w.Set("g2", 50)
	inst := &Instance{Name: "tiny", Impl: b, Spec: spec, Weights: w}
	if inst.Check() != nil {
		return nil
	}
	return inst
}
