package eco

import (
	"fmt"

	"ecopatch/internal/aig"
	"ecopatch/internal/cnf"
	"ecopatch/internal/itp"
	"ecopatch/internal/sat"
)

// interpolatePatch computes the patch function as a Craig interpolant
// of expression (3) — the prior-work [15] method the paper's cube
// enumeration replaces. Partition A is the onset copy (M_i(0,x1) with
// the divisor relation), partition B the offset copy plus the
// equalities binding the shared divisor variables; the McMillan
// interpolant is then a circuit over the divisors.
func (e *engine) interpolatePatch(g *aig.AIG, m0, m1 aig.Lit, divs []divisor, selected []int) (*aig.AIG, error) {
	s := e.newSolver()
	proof := s.StartProof()
	// Partition A: onset copy.
	encA := cnf.NewEncoder(s, g)
	rA := encA.Lit(m0)
	dA := make([]sat.Lit, len(selected))
	for jj, j := range selected {
		dA[jj] = encA.Lit(divs[j].edge)
	}
	if !s.AddClause(rA) {
		// Onset empty: the patch is constant false.
		return constPatch(false), nil
	}
	// Partition B: offset copy plus equalities.
	proof.BeginB()
	encB := cnf.NewEncoder(s, g)
	rB := encB.Lit(m1)
	ok := s.AddClause(rB)
	for jj, j := range selected {
		if !ok {
			break
		}
		dB := encB.Lit(divs[j].edge)
		ok = s.AddClause(dA[jj].Not(), dB) && s.AddClause(dA[jj], dB.Not())
	}
	if ok {
		switch s.Solve() {
		case sat.Sat:
			return nil, fmt.Errorf("eco: interpolation instance unexpectedly SAT")
		case sat.Unknown:
			// Budget exhausted or interrupted mid-proof.
			return nil, errBudget
		case sat.Unsat:
			// Expected: the refutation proof feeds the interpolant.
		}
	}
	patch := aig.New()
	varEdge := make(map[sat.Var]aig.Lit, len(selected))
	for jj, j := range selected {
		pi := patch.AddPI(divs[j].name)
		// dA[jj] is the literal whose value equals the signal value;
		// express the underlying variable in terms of the PI.
		varEdge[dA[jj].Var()] = pi.XorCompl(dA[jj].Sign())
	}
	root, err := itp.Interpolant(proof, patch, varEdge)
	if err != nil {
		return nil, err
	}
	patch.AddPO("patch", root)
	return patch, nil
}

func constPatch(v bool) *aig.AIG {
	g := aig.New()
	if v {
		g.AddPO("patch", aig.ConstTrue)
	} else {
		g.AddPO("patch", aig.ConstFalse)
	}
	return g
}
