package eco

import (
	"sort"
	"strings"

	"ecopatch/internal/aig"
)

// buildWindowAndDivisors implements the structural pruning of §3.3:
//   - window POs: implementation outputs reachable from the targets;
//   - window PIs: inputs in the TFI of those outputs (in either
//     netlist);
//   - divisors: named implementation signals outside the TFO of the
//     targets whose support lies within the window PIs.
//
// With Options.Window disabled (the E9 ablation) the window spans the
// whole netlist. In both cases the feasibility miter (fullMiter)
// covers every output.
func (e *engine) buildWindowAndDivisors() {
	impl, spec := e.inst.Impl, e.inst.Spec
	tfo := impl.TransitiveFanout(e.targets)

	var winPOIdx []int
	for i, o := range impl.Outputs {
		if !e.opt.Window || tfo[o] {
			winPOIdx = append(winPOIdx, i)
		}
	}
	if len(winPOIdx) == 0 {
		// Degenerate: targets reach no output; patching is vacuous but
		// keep the full miter so verification still means something.
		for i := range impl.Outputs {
			winPOIdx = append(winPOIdx, i)
		}
	}
	e.stats.WindowPOs = len(winPOIdx)

	full := aig.ConstFalse
	win := aig.ConstFalse
	inWin := make(map[int]bool, len(winPOIdx))
	for _, i := range winPOIdx {
		inWin[i] = true
	}
	for i := range e.implPOs {
		x := e.w.Xor(e.implPOs[i], e.specPOs[i])
		full = e.w.Or(full, x)
		if inWin[i] {
			win = e.w.Or(win, x)
		}
	}
	e.miter = win
	e.fullMiter = full

	// Window PIs.
	winPI := make(map[string]bool)
	if e.opt.Window {
		var winOutNames []string
		for _, i := range winPOIdx {
			winOutNames = append(winOutNames, impl.Outputs[i])
		}
		implTFI := impl.TransitiveFanin(winOutNames)
		specTFI := spec.TransitiveFanin(winOutNames)
		for _, in := range impl.Inputs {
			if implTFI[in] || specTFI[in] {
				winPI[in] = true
			}
		}
	} else {
		for _, in := range impl.Inputs {
			winPI[in] = true
		}
	}

	// Per-node check: cone contains only window-PI inputs (no target
	// PIs, no out-of-window PIs).
	allowedPI := make([]bool, e.w.NumPIs())
	for i, in := range impl.Inputs {
		if winPI[in] {
			allowedPI[e.xPIs[i]] = true
		}
	}
	okNode := make([]bool, e.w.NumNodes())
	for idx := 0; idx < e.w.NumNodes(); idx++ {
		switch {
		case e.w.IsConst(idx):
			okNode[idx] = true
		case e.w.IsPI(idx):
			okNode[idx] = allowedPI[e.w.PIIndex(idx)]
		default:
			f0, f1 := e.w.Fanins(idx)
			okNode[idx] = okNode[f0.Node()] && okNode[f1.Node()]
		}
	}

	isTarget := make(map[string]bool, len(e.targets))
	for _, t := range e.targets {
		isTarget[t] = true
	}
	seenEdge := make(map[aig.Lit]int) // edge -> index in e.divisors
	e.divisors = e.divisors[:0]
	names := make([]string, 0, len(e.sigEdge))
	for name := range e.sigEdge {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		edge := e.sigEdge[name]
		switch {
		case isTarget[name] || strings.HasPrefix(name, "t_"):
			continue
		case tfo[name]:
			continue // inside the targets' TFO: would create a loop
		case edge.Node() == 0:
			continue // constant signal: useless as support
		case !okNode[edge.Node()]:
			continue // support escapes the window
		}
		cost := e.inst.Weights.Cost(name)
		if j, ok := seenEdge[edge]; ok {
			// Same function available under several names: keep the
			// cheapest.
			if cost < e.divisors[j].cost {
				e.divisors[j] = divisor{name: name, edge: edge, cost: cost}
			}
			continue
		}
		seenEdge[edge] = len(e.divisors)
		e.divisors = append(e.divisors, divisor{name: name, edge: edge, cost: cost})
	}
	sort.Slice(e.divisors, func(a, b int) bool {
		if e.divisors[a].cost != e.divisors[b].cost {
			return e.divisors[a].cost < e.divisors[b].cost
		}
		return e.divisors[a].name < e.divisors[b].name
	})
	e.stats.Divisors = len(e.divisors)
	e.logf("window: %d/%d POs, %d divisors", len(winPOIdx), len(impl.Outputs), len(e.divisors))
}

// orderedDivisors returns the divisors with effective costs applied
// (signals already used by earlier patches are free, reflecting the
// union-cost objective of the contest), sorted ascending.
func (e *engine) orderedDivisors() []divisor {
	divs := make([]divisor, len(e.divisors))
	copy(divs, e.divisors)
	for i := range divs {
		if e.usedSignals[divs[i].name] {
			divs[i].cost = 0
		}
	}
	sort.SliceStable(divs, func(a, b int) bool {
		if divs[a].cost != divs[b].cost {
			return divs[a].cost < divs[b].cost
		}
		return divs[a].name < divs[b].name
	})
	return divs
}
