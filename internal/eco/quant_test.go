package eco

import (
	"testing"
)

// quantEngine builds a minimal engine over a 3-target instance for
// white-box quantification tests.
func quantEngine(t *testing.T, maxExpand int, moves [][]bool) *engine {
	t.Helper()
	impl := `
module m (a, b, c, f, g2, h);
input a, b, c;
output f, g2, h;
and (f, a, t_0);
or  (g2, b, t_1);
xor (h, c, t_2);
endmodule`
	spec := `
module m (a, b, c, f, g2, h);
input a, b, c;
output f, g2, h;
and (f, a, b);
or  (g2, b, c);
xor (h, c, a);
endmodule`
	inst := mustInstance(t, impl, spec, nil)
	opt := DefaultOptions()
	opt.MaxQuantExpand = maxExpand
	e := &engine{inst: inst, opt: opt, res: &Result{}}
	if err := e.setup(); err != nil {
		t.Fatal(err)
	}
	e.moves = moves
	e.rectifyAllInit()
	return e
}

func TestQuantAssignmentsFullExpansion(t *testing.T) {
	e := quantEngine(t, 8, nil)
	assigns, guided := e.quantAssignments([]int{1, 2})
	if guided {
		t.Fatal("full expansion misreported as move-guided")
	}
	if len(assigns) != 4 {
		t.Fatalf("2 remaining targets need 4 cofactors, got %d", len(assigns))
	}
	seen := map[[2]bool]bool{}
	for _, a := range assigns {
		seen[[2]bool{a[0], a[1]}] = true
	}
	if len(seen) != 4 {
		t.Fatalf("cofactor assignments not distinct: %v", assigns)
	}
	// No remaining targets: exactly one (empty) assignment.
	single, guided := e.quantAssignments(nil)
	if guided || len(single) != 1 {
		t.Fatalf("empty remaining set: %v guided=%v", single, guided)
	}
}

func TestQuantAssignmentsMoveGuided(t *testing.T) {
	moves := [][]bool{
		{true, false, true},
		{true, false, true}, // duplicate projection
		{false, true, true},
	}
	e := quantEngine(t, 1, moves)
	assigns, guided := e.quantAssignments([]int{0, 1})
	if !guided {
		t.Fatal("expected move-guided quantification")
	}
	// Projections {10, 01} plus the always-included 00 and 11.
	if len(assigns) != 4 {
		t.Fatalf("expected 4 deduped assignments, got %d: %v", len(assigns), assigns)
	}
	// Forcing full expansion overrides guidance.
	e.fullQuantForced = true
	_, guided = e.quantAssignments([]int{0, 1})
	if guided {
		t.Fatal("forced full expansion still move-guided")
	}
}

func TestSelfPIMapIdentity(t *testing.T) {
	e := quantEngine(t, 8, nil)
	m := e.selfPIMap()
	if len(m) != e.w.NumPIs() {
		t.Fatalf("map size %d, PIs %d", len(m), e.w.NumPIs())
	}
	for i, l := range m {
		if l != e.w.PI(i) {
			t.Fatalf("entry %d not identity", i)
		}
	}
}
