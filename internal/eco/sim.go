package eco

import (
	"math/rand"

	"ecopatch/internal/aig"
	"ecopatch/internal/cec"
	"ecopatch/internal/cnf"
	"ecopatch/internal/sat"
	"ecopatch/internal/sim"
)

// This file is the engine side of the bit-parallel simulation layer
// (Options.SimBank / Options.SimPrune): harvesting models and
// counterexamples into the cross-window pattern pool, banking window
// models for SAT-call elision, and simulation-guided divisor pruning.

const (
	// simModelBankMax caps banked models per window; support selection
	// rarely produces more than a few hundred distinct Sat answers.
	simModelBankMax = 1024
	// simPatternPoolMax caps the cross-window input pattern pool. The
	// pool is append-only and capped so window-cache keys derived from
	// it stay stable for the rest of the run.
	simPatternPoolMax = 256
	// simPruneMinDivs skips pruning on tiny divisor sets where the
	// encoding is already cheap and signatures are too short to trust.
	simPruneMinDivs = 8
	// simPruneRandRounds / simPruneBankRounds bound the 64-pattern
	// simulation rounds fed to pruning from each source.
	simPruneRandRounds = 4
	simPruneBankRounds = 4
	// simPruneSeed seeds the pruning RNG; mixed with the target index
	// (not a call counter — window-cache hits would desync one) so
	// every window prunes deterministically regardless of cache state.
	simPruneSeed = 0x5eedc0de
	// simPruneProofBudget bounds each drop-confirmation SAT check (in
	// conflicts). Window cones are small; an exceeded budget keeps the
	// divisor, which is always safe.
	simPruneProofBudget = 10000
)

func (e *engine) simEnabled() bool { return e.opt.SimBank || e.opt.SimPrune }

// addPattern pools one full working-AIG input assignment (indexed by
// PI position). While a window is being computed its patterns are also
// recorded on winPatterns so the window cache can replay them on a
// hit, keeping pool state identical between cold and warm runs.
func (e *engine) addPattern(assign []bool) {
	if e.patterns == nil {
		return
	}
	if e.patterns.Add(assign) {
		e.stats.SimPatterns++
	}
	if e.inWindow {
		e.winPatterns = append(e.winPatterns, append([]bool(nil), assign...))
	}
}

// auxModel wraps a solver model, strengthening each equality
// selector's value to the actual divisor-copy equality it guards:
// aux_j reads as (d1_j == d2_j) instead of the value the solver
// happened to assign (phase saving leaves unassumed selectors false,
// which would make banked models useless for elision). Sound because
// each aux variable occurs only in its two implication clauses
// a -> (d1 == d2), which the strengthened assignment satisfies — so it
// is still a model of the original formula, and of every clause
// preprocessing derived from it.
type auxModel struct {
	m   sim.Model
	eqs map[sat.Var][2]sat.Lit
}

func (am auxModel) ModelBool(l sat.Lit) bool {
	if dd, ok := am.eqs[l.Var()]; ok {
		v := am.m.ModelBool(dd[0]) == am.m.ModelBool(dd[1])
		return v != l.Sign()
	}
	return am.m.ModelBool(l)
}

// bankModel records one satisfiable query's model: into the window's
// model bank (aux-strengthened) for elision of later assumption-only
// solves, and — via its per-copy PI projections — into the pattern
// pool for divisor pruning of later windows.
func (e *engine) bankModel(m sim.Model) {
	if e.winBank != nil {
		if e.winBank.Add(auxModel{m: m, eqs: e.winEqs}) {
			e.stats.SimPatterns++
		}
	}
	e.harvestPIs(m)
}

// harvestPIs pools the two input patterns a model of the two-copy
// encoding exposes (one per copy). Unencoded PIs — outside the
// window's cones — read as false; nil vectors mean capture was
// disabled (preprocessing may have eliminated PI variables).
func (e *engine) harvestPIs(m sim.Model) {
	for _, pis := range [][]sat.Lit{e.winPIs1, e.winPIs2} {
		if pis == nil {
			continue
		}
		assign := make([]bool, len(pis))
		for i, l := range pis {
			if l != sat.LitUndef {
				assign[i] = m.ModelBool(l)
			}
		}
		e.addPattern(assign)
	}
}

// capturePIs records the solver literal of every PI of g (the graph
// enc encodes from — e.w or its rewritten extraction, which preserves
// the PI interface) under enc, LitUndef for PIs outside the encoded
// cones. Encoded() is checked first so the capture never extends the
// clause stream.
func (e *engine) capturePIs(enc *cnf.Encoder, g *aig.AIG) []sat.Lit {
	out := make([]sat.Lit, g.NumPIs())
	for i := range out {
		l := g.PI(i)
		if enc.Encoded(l.Node()) {
			out[i] = enc.Lit(l)
		} else {
			out[i] = sat.LitUndef
		}
	}
	return out
}

// pruneDivisors simulates the window on pooled + random patterns to
// find divisors whose signatures are constant or duplicate an earlier
// (cheaper — divs arrive cost-sorted) divisor's up to complement, then
// confirms every candidate drop with a budgeted SAT equivalence check
// (SAT sweeping): only proven-redundant divisors are removed, so the
// patch function space over the pruned set equals the full set's up to
// cost-preserving substitution. A refuted candidate stays, and its
// counterexample joins the pattern pool, sharpening later signatures.
// Returns nil when pruning is off, the set is small, or nothing was
// dropped; the caller falls back to the full set when the pruned set
// proves insufficient, so this is purely a filter.
func (e *engine) pruneDivisors(i int, divs []divisor) []divisor {
	if !e.opt.SimPrune || len(divs) < simPruneMinDivs {
		return nil
	}
	// Analyze-final reads the support straight off the feasibility
	// proof's final conflict, so the selection is proof-shaped, not
	// status-driven: shrinking the encoded divisor set steers the
	// solver to a different (equally valid) proof whose conflict can
	// name a costlier support. Minimize/exact selection depends only on
	// per-query statuses (and proven-equivalent sets preserve those),
	// so the set change is restricted to them.
	if e.opt.Support == SupportAnalyzeFinal {
		return nil
	}
	seed := int64(simPruneSeed) ^ int64(i)<<1
	if e.fullQuantForced {
		seed ^= 1 // the retry pass prunes independently of the first
	}
	rng := rand.New(rand.NewSource(seed))
	if e.simr == nil {
		e.simr = aig.NewSimulator(e.w)
	}
	nPI := e.w.NumPIs()

	var rounds [][]uint64
	if e.patterns != nil {
		nb := e.patterns.Rounds()
		if nb > simPruneBankRounds {
			nb = simPruneBankRounds
		}
		for r := 0; r < nb; r++ {
			ws := make([]uint64, nPI)
			for p := 0; p < nPI; p++ {
				ws[p] = e.patterns.Word(p, r)
			}
			// Top up a partly-filled word with random bits so it still
			// discriminates beyond the pooled patterns.
			if valid := e.patterns.Patterns() - r*64; valid < 64 {
				for p := range ws {
					ws[p] |= rng.Uint64() << uint(valid)
				}
			}
			rounds = append(rounds, ws)
		}
	}
	for r := 0; r < simPruneRandRounds; r++ {
		rounds = append(rounds, e.w.RandomSimWords(rng))
	}

	sigs := make([][]uint64, len(divs))
	for j := range sigs {
		sigs[j] = make([]uint64, len(rounds))
	}
	for r, ws := range rounds {
		words := e.simr.Run(ws)
		for j, d := range divs {
			sigs[j][r] = aig.WordOf(words, d.edge)
		}
	}

	type rep struct {
		edge aig.Lit
		sg   []uint64
	}
	kept := make([]divisor, 0, len(divs))
	byKey := make(map[uint64][]rep)
	constant, dups := 0, 0
	for j, d := range divs {
		sg := sigs[j]
		if constWords(sg) {
			c := aig.ConstFalse
			if len(sg) > 0 && sg[0] == ^uint64(0) {
				c = aig.ConstTrue
			}
			if e.proveEqual(d.edge, c) {
				constant++
				continue
			}
		}
		k, _ := sim.CanonKey(sg)
		dup := false
		for _, prev := range byKey[k] {
			if !sim.CanonEqual(prev.sg, sg) {
				continue
			}
			// The canonical signatures agree; the raw words say whether
			// the candidate matches the representative or its complement.
			other := prev.edge
			if !rawEqual(prev.sg, sg) {
				other = other.Not()
			}
			if e.proveEqual(d.edge, other) {
				dup = true
				break
			}
		}
		if dup {
			dups++
			continue
		}
		byKey[k] = append(byKey[k], rep{edge: d.edge, sg: sg})
		kept = append(kept, d)
	}
	if len(kept) == len(divs) {
		return nil
	}
	e.logf("target %s: sim pruning %d/%d divisors (%d constant, %d duplicate, all SAT-proven) over %d patterns",
		e.targets[i], len(divs)-len(kept), len(divs), constant, dups, len(rounds)*64)
	return kept
}

// proveEqual reports whether two window edges are functionally
// equivalent, via a conflict-budgeted equivalence check that shares the
// engine's solve cache, preprocessing config, and interrupt group. A
// refuting counterexample is pooled as a simulation pattern; Unknown
// (budget or deadline) reports false, which keeps the divisor.
func (e *engine) proveEqual(a, b aig.Lit) bool {
	res, err := cec.CheckLitsOpt(e.w, []aig.Lit{a}, []aig.Lit{b}, cec.CheckOptions{
		ConfBudget: simPruneProofBudget,
		OnSolver:   e.group.add,
		Cache:      e.solveCache(),
		Preprocess: e.prepCfg(),
	})
	e.stats.CacheHits += res.CacheHits
	e.stats.CacheMisses += res.CacheMisses
	e.stats.CacheCollisions += res.CacheCollisions
	e.stats.Prep.Add(res.Prep)
	if err != nil || !res.Equivalent {
		if err == nil && res.Counterexample != nil {
			e.addPattern(res.Counterexample)
		}
		return false
	}
	return true
}

// rawEqual reports bitwise equality of two equal-length signatures.
func rawEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// constWords reports an all-equal-bits signature.
func constWords(sg []uint64) bool {
	if len(sg) == 0 {
		return true
	}
	w0 := sg[0]
	if w0 != 0 && w0 != ^uint64(0) {
		return false
	}
	for _, w := range sg[1:] {
		if w != w0 {
			return false
		}
	}
	return true
}
