// Package eco implements the paper's contribution: efficient,
// resource-aware computation of multi-output ECO patch functions.
//
// The flow follows Figure 2 of the paper:
//
//  1. verify that the target set is sufficient (§3.2, expression (1)),
//     via combinational-equivalence SAT or the 2QBF CEGAR solver;
//  2. structural pruning computes a logic window and the candidate
//     divisors with their costs (§3.3);
//  3. targets are rectified one at a time (Theorem 1, §3.1): the
//     remaining targets are universally quantified, previously
//     computed patches are substituted back;
//  4. per target, the patch support is minimized — analyze_final
//     (baseline), minimize_assumptions (Algorithm 1), or SAT-prune
//     exact minimum (§3.4) — over the two-copy extended miter of
//     expression (2);
//  5. the patch function is computed by SAT cube enumeration and
//     factored into a circuit (§3.5), or by Craig interpolation
//     (the prior-work baseline);
//  6. when SAT effort is exhausted, a structural patch in terms of
//     primary inputs is derived by cofactoring and improved with the
//     max-flow/min-cut CEGAR_min step (§3.6);
//  7. the patched implementation is verified against the
//     specification.
package eco

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ecopatch/internal/netlist"
)

// Instance is one ECO problem: an old implementation F with free
// target points t_*, a new specification S with the same PIs/POs, and
// a cost for every signal of F.
type Instance struct {
	Name    string
	Impl    *netlist.Netlist
	Spec    *netlist.Netlist
	Weights *netlist.Weights
}

// LoadDir reads an instance from a directory holding F.v, S.v and
// weight.txt (the contest layout).
func LoadDir(dir string) (*Instance, error) {
	impl, err := parseFile(filepath.Join(dir, "F.v"))
	if err != nil {
		return nil, err
	}
	spec, err := parseFile(filepath.Join(dir, "S.v"))
	if err != nil {
		return nil, err
	}
	wf, err := os.Open(filepath.Join(dir, "weight.txt"))
	if err != nil {
		return nil, fmt.Errorf("eco: %w", err)
	}
	defer wf.Close()
	weights, err := netlist.ParseWeights(wf)
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		Name:    filepath.Base(dir),
		Impl:    impl,
		Spec:    spec,
		Weights: weights,
	}
	return inst, inst.Check()
}

func parseFile(path string) (*netlist.Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("eco: %w", err)
	}
	defer f.Close()
	return netlist.Parse(f)
}

// SaveDir writes the instance in the contest layout.
func (inst *Instance) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("eco: %w", err)
	}
	if err := writeFile(filepath.Join(dir, "F.v"), func(w io.Writer) error {
		return netlist.Write(w, inst.Impl)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, "S.v"), func(w io.Writer) error {
		return netlist.Write(w, inst.Spec)
	}); err != nil {
		return err
	}
	return writeFile(filepath.Join(dir, "weight.txt"), func(w io.Writer) error {
		return netlist.WriteWeights(w, inst.Weights)
	})
}

func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("eco: %w", err)
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Check validates the instance shape: matching PIs/POs and at least
// one target.
func (inst *Instance) Check() error {
	if err := inst.Impl.Validate(); err != nil {
		return err
	}
	if err := inst.Spec.Validate(); err != nil {
		return err
	}
	if len(inst.Impl.Inputs) != len(inst.Spec.Inputs) {
		return fmt.Errorf("eco: input count mismatch: impl %d, spec %d",
			len(inst.Impl.Inputs), len(inst.Spec.Inputs))
	}
	if len(inst.Impl.Outputs) != len(inst.Spec.Outputs) {
		return fmt.Errorf("eco: output count mismatch: impl %d, spec %d",
			len(inst.Impl.Outputs), len(inst.Spec.Outputs))
	}
	for i := range inst.Impl.Inputs {
		if inst.Impl.Inputs[i] != inst.Spec.Inputs[i] {
			return fmt.Errorf("eco: input %d name mismatch: %q vs %q",
				i, inst.Impl.Inputs[i], inst.Spec.Inputs[i])
		}
	}
	for i := range inst.Impl.Outputs {
		if inst.Impl.Outputs[i] != inst.Spec.Outputs[i] {
			return fmt.Errorf("eco: output %d name mismatch: %q vs %q",
				i, inst.Impl.Outputs[i], inst.Spec.Outputs[i])
		}
	}
	if len(inst.Impl.Targets()) == 0 {
		return fmt.Errorf("eco: implementation has no t_* target points")
	}
	if specTargets := inst.Spec.Targets(); len(specTargets) != 0 {
		return fmt.Errorf("eco: specification must not contain target points, found %v", specTargets)
	}
	return nil
}
