package eco

import (
	"context"
	"testing"
	"time"
)

// TestSolveContextPreCancelled feeds an already-cancelled context:
// the engine must stop at the first stage boundary with TimedOut set
// instead of burning the support/patch/verify stages on degraded
// structural work.
func TestSolveContextPreCancelled(t *testing.T) {
	inst := mustInstance(t, implAndTarget, specAndOr, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := SolveContext(ctx, inst, DefaultOptions())
	if err != nil {
		t.Fatalf("cancelled solve must return a partial result, got error: %v", err)
	}
	if !res.TimedOut {
		t.Fatal("TimedOut not set on a cancelled context")
	}
	if len(res.Patches) != 0 {
		t.Fatalf("cancelled solve produced %d patches; stage boundaries ignored", len(res.Patches))
	}
	if res.Verified {
		t.Fatal("cancelled solve cannot be verified")
	}
	// Guard against a regression where cancellation still runs every
	// stage: this instance solves in well under a second, so even a
	// generous bound catches "did all the work anyway" only if the
	// engine grows much bigger stages; the patch-count check above is
	// the real assertion.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled solve took %v", elapsed)
	}
}

// TestSolveContextCancelSkipsStructuralFallback cancels while the SAT
// path is being forced to fail (1-conflict budget): rectifyOne must
// not fall back to a structural patch on a cancelled run.
func TestSolveContextCancelSkipsStructuralFallback(t *testing.T) {
	inst := mustInstance(t, implAndTarget, specAndOr, nil)
	opt := DefaultOptions()
	opt.ConfBudget = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveContext(ctx, inst, opt)
	if err != nil {
		t.Fatalf("cancelled solve must return a partial result, got error: %v", err)
	}
	for _, p := range res.Patches {
		if p.Structural {
			t.Fatalf("target %s got a structural fallback patch on a cancelled run", p.Target)
		}
	}
}

// TestSolveContextUncancelledUnaffected pins the baseline: a live
// context with no deadline must not trip any of the new stage checks.
func TestSolveContextUncancelledUnaffected(t *testing.T) {
	inst := mustInstance(t, implAndTarget, specAndOr, nil)
	res, err := SolveContext(context.Background(), inst, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.TimedOut {
		t.Fatalf("verified=%v timedOut=%v; want verified, not timed out", res.Verified, res.TimedOut)
	}
}
