package eco

import (
	"errors"
	"testing"

	"ecopatch/internal/sat"
)

// TestMinimizerInterruptedSolverReuse pins the scratch-solver reuse
// contract of minimize_assumptions: on an interrupted solver every
// query answers Unknown, which the minimizer must surface as errBudget
// (not a wrong support), and after ClearInterrupt the same solver —
// same clauses, same scratch buffers — must minimize correctly. The
// engine reuses one solver across the expression-(2) check, both
// minimization passes and last-gasp, so a stale interrupt here would
// silently poison a whole job.
func TestMinimizerInterruptedSolverReuse(t *testing.T) {
	s := sat.New()
	a1 := sat.PosLit(s.NewVar())
	a2 := sat.PosLit(s.NewVar())
	// ¬a2: any assumption set containing a2 is UNSAT, so the minimal
	// support is {a2} alone.
	s.AddClause(a2.Not())

	s.Interrupt()
	m := &minimizer{s: s}
	if _, err := m.minimize([]sat.Lit{a1, a2}); !errors.Is(err, errBudget) {
		t.Fatalf("interrupted minimize err = %v, want errBudget", err)
	}

	s.ClearInterrupt()
	m = &minimizer{s: s}
	A := []sat.Lit{a1, a2}
	kept, err := m.minimize(A)
	if err != nil {
		t.Fatalf("post-clear minimize error: %v", err)
	}
	if kept != 1 || A[0] != a2 {
		t.Fatalf("post-clear minimize kept %d, A[0]=%v; want the single assumption a2", kept, A[0])
	}

	// minimizeLinear shares the same reuse contract.
	s.Interrupt()
	if _, err := minimizeLinear(s, nil, []sat.Lit{a1, a2}, nil); !errors.Is(err, errBudget) {
		t.Fatalf("interrupted minimizeLinear err = %v, want errBudget", err)
	}
	s.ClearInterrupt()
	kept, err = minimizeLinear(s, nil, []sat.Lit{a1, a2}, nil)
	if err != nil {
		t.Fatalf("post-clear minimizeLinear error: %v", err)
	}
	if kept != 1 {
		t.Fatalf("post-clear minimizeLinear kept %d, want 1", kept)
	}
}
