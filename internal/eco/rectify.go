package eco

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ecopatch/internal/aig"
	"ecopatch/internal/cnf"
	"ecopatch/internal/sat"
	"ecopatch/internal/sim"
	"ecopatch/internal/synth"
)

// errBudget reports that a SAT budget was exhausted; the caller falls
// back to the structural method, mirroring the paper's timeout path.
var errBudget = errors.New("eco: SAT budget exhausted")

// errTooManyCubes reports cube-enumeration blowup.
var errTooManyCubes = errors.New("eco: cube enumeration exceeded MaxCubes")

// errCancelled reports that the run's context was cancelled between
// pipeline stages; the engine seals a partial result instead of
// treating it as a failure.
var errCancelled = errors.New("eco: solve cancelled")

func (e *engine) usedMoveGuidance() bool { return e.moveGuided }

// rectifyAll runs the Theorem-1 sequence: one-target ECO per target,
// substituting each patch before the next target is processed.
func (e *engine) rectifyAll(forceFullQuant bool) error {
	e.fullQuantForced = forceFullQuant
	e.moveGuided = false
	e.rectifyAllInit()
	for i := range e.targets {
		// Stage boundary: a cancelled run must not start the next
		// target — each one is a full support+patch pipeline.
		if e.cancelled() {
			return errCancelled
		}
		if err := e.rectifyOne(i); err != nil {
			return err
		}
		e.done[i] = true
	}
	return nil
}

// rectifyOne computes the patch for target i, consulting the
// window-level patch cache first: a screened hit replays the stored
// install and skips the SAT/synthesis pipeline entirely. Entries are
// only stored for windows computed to completion on a live run — a
// solve whose SAT phase was interrupted mid-window must not freeze
// its degraded fallback into the cache.
func (e *engine) rectifyOne(i int) error {
	m0, m1 := e.cofactorMiters(i)
	key := e.windowKey(i, m0, m1)
	if key != nil {
		if v, ok, coll := e.opt.Cache.Window.Lookup(key); ok {
			e.stats.CacheHits++
			e.stats.CacheCollisions += int64(coll)
			e.installCachedPatch(i, v.(*patchEntry))
			return nil
		} else {
			e.stats.CacheMisses++
			e.stats.CacheCollisions += int64(coll)
		}
	}
	// Record the patterns this window's compute harvests so a future
	// cache hit can replay them: the pool state after window i must be
	// identical whether the window was computed or replayed, or later
	// windows' pruning (and their keys) would diverge between runs.
	if key != nil {
		e.inWindow, e.winPatterns = true, nil
	}
	err := e.rectifyOneCompute(i, m0, m1)
	e.inWindow = false
	if err == nil && key != nil && !e.cancelled() {
		e.opt.Cache.Window.Insert(key, e.snapshotPatch(i))
	}
	e.winPatterns = nil
	return err
}

// rectifyOneCompute is the uncached window pipeline for target i.
func (e *engine) rectifyOneCompute(i int, m0, m1 aig.Lit) error {
	if e.opt.ForceStructural {
		return e.structuralPatch(i, m0)
	}
	err := e.satPatch(i, m0, m1)
	if err == nil {
		return nil
	}
	if errors.Is(err, errBudget) || errors.Is(err, errTooManyCubes) || errors.Is(err, errInsufficient) {
		// Stage boundary: when the SAT path died because the run was
		// cancelled (not a mere budget expiry), the structural
		// fallback is pure-CPU work nobody will read — skip it.
		if e.cancelled() {
			return errCancelled
		}
		e.logf("target %s: SAT path failed (%v); using structural patch", e.targets[i], err)
		return e.structuralPatch(i, m0)
	}
	return err
}

// errInsufficient reports that the divisor set cannot express the
// patch (expression (2) satisfiable).
var errInsufficient = errors.New("eco: divisor set insufficient")

// exprTwoEnc holds the literal map of one expression-(2) encoding:
// both cofactor-miter roots and, per divisor, the two copy literals
// plus the equality selector.
type exprTwoEnc struct {
	r1, r2 sat.Lit
	auxs   []sat.Lit
	d1s    []sat.Lit
	d2s    []sat.Lit
}

// encodeExprTwo encodes the two-copy extended miter of expression (2)
// into sink. The variable-allocation sequence is deterministic, so
// capturing into a cnf.Formula and replaying it into K portfolio
// members yields the same literal numbering as encoding into a solver
// directly — the returned literals are valid on every member.
func (e *engine) encodeExprTwo(sink cnf.Sink, g *aig.AIG, m0, m1 aig.Lit, divs []divisor) exprTwoEnc {
	enc1 := cnf.NewEncoder(sink, g)
	enc2 := cnf.NewEncoder(sink, g)
	ec := exprTwoEnc{
		r1:   enc1.Lit(m0),
		r2:   enc2.Lit(m1),
		auxs: make([]sat.Lit, len(divs)),
		d1s:  make([]sat.Lit, len(divs)),
		d2s:  make([]sat.Lit, len(divs)),
	}
	for j, d := range divs {
		ec.d1s[j] = enc1.Lit(d.edge)
		ec.d2s[j] = enc2.Lit(d.edge)
		a := sat.PosLit(sink.NewVar())
		// a -> (d1 == d2)
		sink.AddClause(a.Not(), ec.d1s[j].Not(), ec.d2s[j])
		sink.AddClause(a.Not(), ec.d1s[j], ec.d2s[j].Not())
		ec.auxs[j] = a
	}
	// Capture each copy's PI literals for pattern harvesting. Every
	// cone is fully encoded by now and Encoded() screens the rest, so
	// the capture never alters the clause/variable stream. Skipped
	// under preprocessing: eliminated PI variables have no model value.
	if e.simEnabled() && !e.opt.Preprocess {
		e.winPIs1 = e.capturePIs(enc1, g)
		e.winPIs2 = e.capturePIs(enc2, g)
	}
	return ec
}

// satPatch runs the SAT-based flow for one target: the two-copy
// extended miter of expression (2), support selection, and patch
// function computation. With SimPrune on, a simulation-pruned divisor
// subset is attempted first — UNSAT on a subset is a valid (cheaper to
// encode and minimize) patch basis; only an insufficient subset falls
// back to the full set, so budget expiry keeps its usual meaning.
func (e *engine) satPatch(i int, m0, m1 aig.Lit) error {
	divs := e.orderedDivisors()
	if e.opt.Support == SupportAnalyzeFinal {
		// The baseline of Table 1 is cost-oblivious: divisors are
		// offered in structural (name) order, so the analyze_final
		// core has no reason to prefer cheap signals.
		divs = append([]divisor(nil), e.divisors...)
		sort.Slice(divs, func(a, b int) bool { return divs[a].name < divs[b].name })
	}
	if pruned := e.pruneDivisors(i, divs); pruned != nil {
		err := e.satPatchWith(i, m0, m1, pruned)
		if err == nil {
			e.stats.SimPruned += int64(len(divs) - len(pruned))
			return nil
		}
		if !errors.Is(err, errInsufficient) {
			return err
		}
		e.logf("target %s: pruned divisor set insufficient; retrying full set", e.targets[i])
	}
	return e.satPatchWith(i, m0, m1, divs)
}

// satPatchWith is satPatch over one specific divisor set.
func (e *engine) satPatchWith(i int, m0, m1 aig.Lit, divs []divisor) error {
	// The model bank and PI captures are scoped to this encoding; they
	// must not leak into the next attempt or window.
	defer func() {
		e.winBank, e.winEqs, e.winPIs1, e.winPIs2 = nil, nil, nil, nil
	}()

	// With rewriting on, every encoding below reads from the optimized
	// extraction of this window's cones instead of the working AIG.
	// The PI interface is preserved, so pattern capture and replay are
	// unaffected; divisor order, names and costs are identical.
	wg, m0, m1, divs := e.rewriteWindow(m0, m1, divs)

	// Expression (2): UNSAT under all equalities iff the divisors can
	// express a patch. At Parallelism > 1 the query races across the
	// portfolio and the winner carries on as the incremental solver
	// for support minimization and cube enumeration below. With
	// preprocessing on, the captured encoding is simplified once
	// (shared by every member); the miter roots, equality selectors
	// and both divisor-copy literal sets are frozen — everything the
	// incremental follow-ups assume, read back, or block on.
	var s *sat.Solver
	var ec exprTwoEnc
	if e.par() > 1 || e.opt.Preprocess {
		var f cnf.Formula
		ec = e.encodeExprTwo(&f, wg, m0, m1, divs)
		load := &f
		if e.opt.Preprocess {
			frozen := make([]sat.Lit, 0, 2+3*len(divs))
			frozen = append(frozen, ec.r1, ec.r2)
			frozen = append(frozen, ec.auxs...)
			frozen = append(frozen, ec.d1s...)
			frozen = append(frozen, ec.d2s...)
			load = e.preprocess(&f, frozen).F
		}
		if e.par() > 1 {
			p := e.newPortfolio(load)
			e.stats.SATCalls++
			st := p.Solve(append([]sat.Lit{ec.r1, ec.r2}, ec.auxs...)...)
			e.recordRace(p)
			switch st {
			case sat.Sat:
				e.bankModel(p) // the insufficiency witness is a useful pattern
				return errInsufficient
			case sat.Unknown:
				return errBudget
			}
			s = p.Winner()
		} else {
			s = e.newSolver()
			load.LoadInto(s)
			e.stats.SATCalls++
			switch s.Solve(append([]sat.Lit{ec.r1, ec.r2}, ec.auxs...)...) {
			case sat.Sat:
				e.bankModel(s)
				return errInsufficient
			case sat.Unknown:
				return errBudget
			}
		}
	} else {
		s = e.newSolver()
		ec = e.encodeExprTwo(s, wg, m0, m1, divs)
		e.stats.SATCalls++
		switch s.Solve(append([]sat.Lit{ec.r1, ec.r2}, ec.auxs...)...) {
		case sat.Sat:
			e.bankModel(s)
			return errInsufficient
		case sat.Unknown:
			return errBudget
		}
	}
	r1, r2 := ec.r1, ec.r2
	auxs, d1s, d2s := ec.auxs, ec.d1s, ec.d2s
	fixed := []sat.Lit{r1, r2}
	if e.opt.SimBank {
		// Feasibility holds; from here to cube enumeration the clause
		// set is frozen, so models of later Sat queries can be banked
		// and replayed against any assumption-only re-solve. Watch
		// everything those queries assume or read back.
		watch := make([]sat.Lit, 0, 2+3*len(divs))
		watch = append(watch, r1, r2)
		watch = append(watch, auxs...)
		watch = append(watch, d1s...)
		watch = append(watch, d2s...)
		e.winBank = sim.NewModelBank(watch, simModelBankMax)
		e.winEqs = make(map[sat.Var][2]sat.Lit, len(auxs))
		for j, a := range auxs {
			e.winEqs[a.Var()] = [2]sat.Lit{d1s[j], d2s[j]}
		}
	}
	// Capture the analyze_final core now; later Solve calls clobber it.
	coreIdx := e.coreSupport(s, auxs)

	tSupport := time.Now()
	selected, err := e.selectSupport(s, fixed, divs, auxs, d1s, d2s, coreIdx)
	if err == nil && e.opt.LastGasp {
		selected, err = e.lastGasp(s, fixed, divs, auxs, selected)
	}
	e.stats.SupportTime += time.Since(tSupport)
	if err != nil {
		return err
	}

	// Cube enumeration adds blocking clauses, which invalidates every
	// banked model — the bank's soundness ends here.
	e.winBank, e.winEqs = nil, nil

	tPatch := time.Now()
	defer func() { e.stats.PatchTime += time.Since(tPatch) }()
	var sop *synth.SOP
	var patch *aig.AIG
	support := make([]string, len(selected))
	for jj, j := range selected {
		support[jj] = divs[j].name
	}
	if e.opt.Patch == PatchInterpolation {
		patch, err = e.interpolatePatch(wg, m0, m1, divs, selected)
		if err != nil {
			return err
		}
	} else {
		sop, err = e.enumerateCubes(s, r1, r2, divs, selected, d1s, d2s)
		if err != nil {
			return err
		}
		// Remove cubes the rest of the cover already subsumes (later,
		// larger primes can swallow earlier ones).
		sop.MakeIrredundant()
		patch = aig.New()
		inputs := make([]aig.Lit, len(selected))
		for jj, j := range selected {
			inputs[jj] = patch.AddPI(divs[j].name)
		}
		patch.AddPO(e.targets[i], synth.BuildAIG(patch, inputs, sop))
	}

	e.installPatch(i, patch, support, false)
	if sop != nil {
		e.targetPatches[i].Cubes = len(sop.Cubes)
	}
	return nil
}

// installPatch records the standalone patch AIG for target i, builds
// its edge inside the working AIG, and accounts for costs.
func (e *engine) installPatch(i int, patch *aig.AIG, support []string, structural bool) {
	// Post-synthesis optimization (balance + refactor + cleanup),
	// standing in for the ABC synthesis step of §3.5.
	patch = synth.Optimize(patch)
	// Drop support PIs the synthesized patch does not actually use.
	usedPI := make(map[int]bool)
	for _, p := range patch.SupportPIs([]aig.Lit{patch.PO(0)}) {
		usedPI[p] = true
	}
	if len(usedPI) < patch.NumPIs() {
		slim := aig.New()
		var slimSupport []string
		piMap := make([]aig.Lit, patch.NumPIs())
		for p := 0; p < patch.NumPIs(); p++ {
			if usedPI[p] {
				piMap[p] = slim.AddPI(patch.PIName(p))
				slimSupport = append(slimSupport, support[p])
			} else {
				piMap[p] = aig.ConstFalse // unused: value irrelevant
			}
		}
		root := aig.Transfer(slim, patch, piMap, []aig.Lit{patch.PO(0)})[0]
		slim.AddPO(patch.POName(0), root)
		patch, support = slim, slimSupport
	}
	e.installFinal(i, patch, support, structural)
}

// installFinal is the synthesis-independent tail of installPatch,
// shared with the window cache's hit replay so a cached install stays
// bit-identical to a cold one: costs are accounted in the caller's
// support order, the working-AIG edge is built from the pre-reorder
// patch (its structure feeds the cones of later targets), and only
// then are Support and the stored AIG's PI order sorted. The
// pre-reorder artifacts are recorded for snapshotPatch.
func (e *engine) installFinal(i int, patch *aig.AIG, support []string, structural bool) {
	e.rawPatchAIGs[i] = patch
	e.rawSupports[i] = append([]string(nil), support...)
	cost := 0
	for _, sname := range support {
		if !e.usedSignals[sname] {
			cost += e.inst.Weights.Cost(sname)
		}
		e.usedSignals[sname] = true
	}
	// Edge in the working AIG over the support signal edges.
	inW := make([]aig.Lit, len(support))
	for j, sname := range support {
		inW[j] = e.sigEdge[sname]
	}
	e.patches[i] = aig.Transfer(e.w, patch, inW, []aig.Lit{patch.PO(0)})[0]
	e.targetPatches[i] = TargetPatch{
		Target:     e.targets[i],
		Support:    support,
		Cost:       cost,
		Gates:      patch.ConeSize([]aig.Lit{patch.PO(0)}),
		Structural: structural,
	}
	sort.Strings(e.targetPatches[i].Support)
	// Keep the patch AIG's PI order aligned with Support after sort.
	e.patchAIGs[i] = reorderPIs(patch, e.targetPatches[i].Support)
	e.logf("target %s: |support|=%d cost=%d gates=%d structural=%v",
		e.targets[i], len(support), cost, e.targetPatches[i].Gates, structural)
}

// reorderPIs rebuilds the patch AIG with PIs in the given name order.
func reorderPIs(patch *aig.AIG, order []string) *aig.AIG {
	pos := make(map[string]int, patch.NumPIs())
	for p := 0; p < patch.NumPIs(); p++ {
		pos[patch.PIName(p)] = p
	}
	out := aig.New()
	piMap := make([]aig.Lit, patch.NumPIs())
	for _, name := range order {
		piMap[pos[name]] = out.AddPI(name)
	}
	root := aig.Transfer(out, patch, piMap, []aig.Lit{patch.PO(0)})[0]
	out.AddPO(patch.POName(0), root)
	return out
}

// selectSupport dispatches on the configured support algorithm and
// returns indices into divs.
func (e *engine) selectSupport(s *sat.Solver, fixed []sat.Lit, divs []divisor,
	auxs []sat.Lit, d1s, d2s []sat.Lit, coreIdx []int) ([]int, error) {
	switch e.opt.Support {
	case SupportAnalyzeFinal:
		return coreIdx, nil
	case SupportMinimize:
		return e.minimizeSupport(s, fixed, auxs, divs, coreIdx)
	case SupportExact:
		sel, err := e.exactSupport(s, fixed, divs, auxs, d1s, d2s)
		if errors.Is(err, errBudget) {
			// Exact search over budget: degrade to minimal.
			e.logf("SAT_prune over budget; degrading to minimize_assumptions")
			return e.minimizeSupport(s, fixed, auxs, divs, coreIdx)
		}
		return sel, err
	}
	return nil, fmt.Errorf("eco: unknown support algorithm %v", e.opt.Support)
}

// coreSupport implements the baseline: the assumption core from the
// solver's final conflict (analyze_final).
func (e *engine) coreSupport(s *sat.Solver, auxs []sat.Lit) []int {
	var out []int
	for j, a := range auxs {
		if s.Failed(a) {
			out = append(out, j)
		}
	}
	return out
}

// minimizeSupport runs minimize_assumptions (Algorithm 1) over the
// equality selectors, ordered by ascending cost. Two minimizations
// are performed — one over the full divisor order and one shrinking
// the solver's analyze_final core — and the cheaper result wins, so
// the cost-aware method never loses to the baseline on a target.
func (e *engine) minimizeSupport(s *sat.Solver, fixed []sat.Lit, auxs []sat.Lit,
	divs []divisor, coreIdx []int) ([]int, error) {
	idx := make(map[sat.Lit]int, len(auxs))
	for j, a := range auxs {
		idx[a] = j
	}
	run := func(arr []sat.Lit) ([]int, error) {
		m := &minimizer{s: s, fixed: fixed, calls: &e.stats.MinimizeCalls,
			satCalls: &e.stats.SATCalls, bank: e.winBank,
			elided: &e.stats.SimElided, onSat: func() { e.bankModel(s) }}
		kept, err := m.minimize(arr)
		if err != nil {
			return nil, err
		}
		out := make([]int, 0, kept)
		for _, a := range arr[:kept] {
			out = append(out, idx[a])
		}
		sort.Ints(out)
		return out, nil
	}
	cost := func(sel []int) int {
		c := 0
		for _, j := range sel {
			c += divs[j].cost
		}
		return c
	}

	full, err := run(append([]sat.Lit(nil), auxs...))
	if err != nil {
		return nil, err
	}
	coreArr := make([]sat.Lit, 0, len(coreIdx))
	for _, j := range coreIdx {
		coreArr = append(coreArr, auxs[j]) // ascending cost preserved
	}
	shrunk, err := run(coreArr)
	if err != nil {
		return nil, err
	}
	if cost(shrunk) < cost(full) || (cost(shrunk) == cost(full) && len(shrunk) < len(full)) {
		return shrunk, nil
	}
	return full, nil
}

// lastGasp greedily tries to replace each selected divisor with a
// cheaper unselected one (§3.4.1, last paragraph).
func (e *engine) lastGasp(s *sat.Solver, fixed []sat.Lit, divs []divisor, auxs []sat.Lit, selected []int) ([]int, error) {
	inSel := make(map[int]bool, len(selected))
	for _, j := range selected {
		inSel[j] = true
	}
	// Try most expensive selected first.
	order := append([]int(nil), selected...)
	sort.Slice(order, func(a, b int) bool { return divs[order[a]].cost > divs[order[b]].cost })
	// Scratch assumption buffer, reused across the O(|sel|·|divs|)
	// probes like minimizer.scratch — a fresh slice per probe is
	// measurable garbage on this double loop.
	scratch := make([]sat.Lit, 0, len(fixed)+len(selected))
	for _, j := range order {
		for j2 := range divs {
			if inSel[j2] || divs[j2].cost >= divs[j].cost {
				continue
			}
			assumps := append(scratch[:0], fixed...)
			for _, k := range selected {
				if k == j {
					assumps = append(assumps, auxs[j2])
				} else {
					assumps = append(assumps, auxs[k])
				}
			}
			scratch = assumps
			e.stats.SATCalls++
			var st sat.Status
			if e.winBank != nil && e.winBank.Find(assumps) >= 0 {
				// A banked model satisfies the swapped selector set:
				// the replacement is infeasible (Sat) — no solver work.
				e.stats.SimElided++
				st = sat.Sat
			} else {
				st = s.Solve(assumps...)
				if st == sat.Sat {
					e.bankModel(s)
				}
			}
			if st == sat.Unknown {
				return selected, nil // keep what we have
			}
			if st == sat.Unsat {
				inSel[j] = false
				inSel[j2] = true
				for k := range selected {
					if selected[k] == j {
						selected[k] = j2
					}
				}
				break
			}
		}
	}
	sort.Ints(selected)
	return selected, nil
}
