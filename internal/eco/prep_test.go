package eco

import (
	"errors"
	"testing"

	"ecopatch/internal/cache"
)

// TestPrepSerialReproducible extends the Parallelism=1 determinism
// contract to preprocessing: two prep-on serial runs must be
// bit-for-bit identical (patches, costs, netlists) and record
// identical prep counters.
func TestPrepSerialReproducible(t *testing.T) {
	for name, tc := range parallelCases(t) {
		t.Run(name, func(t *testing.T) {
			opt := tc.opt
			opt.Parallelism = 1
			opt.Preprocess = true
			var snaps []string
			var rounds []int64
			for run := 0; run < 2; run++ {
				res, err := Solve(tc.inst, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Verified {
					t.Fatal("not verified")
				}
				snaps = append(snaps, snapshotResult(res))
				rounds = append(rounds, res.Stats.Prep.Rounds)
			}
			if snaps[0] != snaps[1] {
				t.Fatalf("Preprocess+Parallelism=1 not reproducible:\nrun0:\n%s\nrun1:\n%s",
					snaps[0], snaps[1])
			}
			if rounds[0] != rounds[1] {
				t.Fatalf("prep rounds differ between identical runs: %d vs %d", rounds[0], rounds[1])
			}
			if rounds[0] == 0 {
				t.Fatal("Preprocess=true ran no simplification rounds")
			}
		})
	}
}

// TestPrepVerdictParity runs every case with preprocessing off and on
// (serial and portfolio): verdicts must agree, and the prep-on patch
// must pass the independent netlist-splice verification.
func TestPrepVerdictParity(t *testing.T) {
	for name, tc := range parallelCases(t) {
		t.Run(name, func(t *testing.T) {
			plain := tc.opt
			plain.Parallelism = 1
			ref, err := Solve(tc.inst, plain)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{1, 4} {
				opt := tc.opt
				opt.Parallelism = par
				opt.Preprocess = true
				res, err := Solve(tc.inst, opt)
				if err != nil {
					t.Fatalf("p=%d: %v", par, err)
				}
				if res.Feasible != ref.Feasible || res.Verified != ref.Verified {
					t.Fatalf("p=%d verdict mismatch: prep feasible=%v verified=%v, plain feasible=%v verified=%v",
						par, res.Feasible, res.Verified, ref.Feasible, ref.Verified)
				}
				if len(res.Patches) != len(ref.Patches) {
					t.Fatalf("p=%d patch count: prep %d, plain %d", par, len(res.Patches), len(ref.Patches))
				}
				ok, err := VerifyPatch(tc.inst, res.Patch)
				if err != nil || !ok {
					t.Fatalf("p=%d prep patch failed VerifyPatch: ok=%v err=%v\n%s", par, ok, err, res.Patch)
				}
			}
		})
	}
}

// TestPrepCachedRunsStayIdentical pins the cache interplay: prep-on
// runs against a shared cache stay identical to the uncached prep-on
// reference (entries key the post-preprocess formula, and window
// entries never mix with prep-off runs via the options fingerprint).
func TestPrepCachedRunsStayIdentical(t *testing.T) {
	tc := parallelCases(t)["multi"]
	opt := tc.opt
	opt.Parallelism = 1
	opt.Preprocess = true
	ref, err := Solve(tc.inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotResult(ref)

	// Warm the cache with a prep-OFF run first: the prep-on runs below
	// must not consume any of its entries.
	c := cache.New(1024)
	off := tc.opt
	off.Parallelism = 1
	off.Cache = c
	if _, err := Solve(tc.inst, off); err != nil {
		t.Fatal(err)
	}

	opt.Cache = c
	for run := 0; run < 2; run++ {
		res, err := Solve(tc.inst, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got := snapshotResult(res); got != want {
			t.Fatalf("prep-on cached run %d diverged:\nwant:\n%s\ngot:\n%s", run, want, got)
		}
	}
}

// TestPrepInterpolationRejected pins the proof-logging exclusion at
// the API boundary: enabling both returns a config error instead of a
// bogus proof.
func TestPrepInterpolationRejected(t *testing.T) {
	tc := parallelCases(t)["single"]
	opt := tc.opt
	opt.Patch = PatchInterpolation
	opt.Preprocess = true
	if _, err := Solve(tc.inst, opt); !errors.Is(err, ErrPrepWithProofs) {
		t.Fatalf("Preprocess+PatchInterpolation returned %v, want ErrPrepWithProofs", err)
	}
}

// TestInterpolationWithPrepOff is the matching regression: with
// preprocessing off, the interpolation path (resolution-proof replay)
// still solves and verifies.
func TestInterpolationWithPrepOff(t *testing.T) {
	tc := parallelCases(t)["multi"]
	opt := tc.opt
	opt.Patch = PatchInterpolation
	opt.Preprocess = false
	res, err := Solve(tc.inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("interpolation patch not verified with preprocessing off")
	}
	ok, err := VerifyPatch(tc.inst, res.Patch)
	if err != nil || !ok {
		t.Fatalf("interpolation patch failed VerifyPatch: ok=%v err=%v", ok, err)
	}
}
