package eco

import (
	"testing"
)

// TestFunctionalMatchFindsNonStructuralEquiv builds an instance where
// the cheap equivalent of the patch logic is computed through a
// redundant double-XOR, so it does NOT share AIG nodes with the patch
// cone; only the functional (simulation + SAT) matcher can find it.
func TestFunctionalMatchFindsNonStructuralEquiv(t *testing.T) {
	impl := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
wire w1, w2, wAlias;
and (w1, b, c);
xor (w2, w1, c);
xor (wAlias, w2, c);
and (f, a, t_0);
buf (g2, wAlias);
endmodule`
	spec := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
wire w1, w2, wAlias, wp;
and (w1, b, c);
xor (w2, w1, c);
xor (wAlias, w2, c);
and (wp, b, c);
and (f, a, wp);
buf (g2, wAlias);
endmodule`
	// wAlias == b&c functionally but via (w1^c)^c, a distinct AIG
	// structure whose support stays inside the window. Only wAlias is
	// cheap; everything else is expensive.
	costs := map[string]int{
		"a": 50, "b": 50, "c": 50,
		"w1": 40, "w2": 45, "wAlias": 1, "f": 99, "g2": 99,
	}

	solve := func(functional bool) *Result {
		inst := mustInstance(t, impl, spec, costs)
		opt := DefaultOptions()
		opt.ForceStructural = true
		opt.CEGARMin = true
		opt.FunctionalMatch = functional
		res, err := Solve(inst, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatalf("functional=%v: not verified", functional)
		}
		return res
	}

	plain := solve(false)
	fn := solve(true)
	if fn.TotalCost >= plain.TotalCost {
		t.Fatalf("functional matching did not help: %d vs %d (support %v vs %v)",
			fn.TotalCost, plain.TotalCost, fn.Patches[0].Support, plain.Patches[0].Support)
	}
	// The functional run should discover the cost-1 alias for the
	// b&c part of the cone: cost a(50) + wAlias(1).
	if fn.TotalCost > 51 {
		t.Fatalf("functional cost %d, expected 51 via wAlias (support %v)",
			fn.TotalCost, fn.Patches[0].Support)
	}
}

// TestStructuralPatchConstantMiter covers the degenerate case where
// the miter cofactor is constant (no onset): the patch is a constant
// and needs no support.
func TestStructuralPatchConstantMiter(t *testing.T) {
	impl := `
module m (a, f);
input a;
output f;
wire u;
and (u, a, t_0);
or  (f, a, u);
endmodule`
	// Spec equals impl with t_0 := 0 (or anything): f = a regardless.
	spec := `
module m (a, f);
input a;
output f;
buf (f, a);
endmodule`
	inst := mustInstance(t, impl, spec, nil)
	opt := DefaultOptions()
	opt.ForceStructural = true
	res, err := Solve(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("not verified")
	}
	if len(res.Patches[0].Support) != 0 || res.TotalCost != 0 {
		t.Fatalf("constant patch expected: support=%v cost=%d",
			res.Patches[0].Support, res.TotalCost)
	}
}

// TestBudgetTriggersStructuralFallback drives the engine's timeout
// path end to end: a one-conflict budget forces every target through
// §3.6, and the result must still verify.
func TestBudgetTriggersStructuralFallback(t *testing.T) {
	impl := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
and (f, a, t_0);
or  (g2, c, t_1);
endmodule`
	spec := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
wire w1, w2;
xor (w1, b, c);
and (f, a, w1);
and (w2, a, b);
or  (g2, c, w2);
endmodule`
	inst := mustInstance(t, impl, spec, nil)
	opt := DefaultOptions()
	opt.ConfBudget = 1
	res, err := Solve(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("budget fallback result not verified")
	}
	if res.Stats.StructuralFixes == 0 {
		t.Fatal("expected structural fallbacks under a 1-conflict budget")
	}
}

// TestMoveGuidedFallbackVerifies exercises move-guided quantification
// (MaxQuantExpand below the target count) on a 4-target instance; the
// engine must deliver a verified result either via the guided patches
// or via the automatic full-expansion retry.
func TestMoveGuidedFallbackVerifies(t *testing.T) {
	impl := `
module m (a, b, c, d, f, g2, h, k);
input a, b, c, d;
output f, g2, h, k;
and (f, a, t_0);
or  (g2, b, t_1);
xor (h, c, t_2);
and (k, d, t_3);
endmodule`
	spec := `
module m (a, b, c, d, f, g2, h, k);
input a, b, c, d;
output f, g2, h, k;
wire w1, w2, w3, w4;
or  (w1, b, c);
and (f, a, w1);
and (w2, a, c);
or  (g2, b, w2);
xor (w3, a, d);
xor (h, c, w3);
or  (w4, a, b);
and (k, d, w4);
endmodule`
	inst := mustInstance(t, impl, spec, nil)
	opt := DefaultOptions()
	opt.MaxQuantExpand = 1 // force move-guided quantification
	res, err := Solve(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || !res.Verified {
		t.Fatalf("feasible=%v verified=%v", res.Feasible, res.Verified)
	}
}
