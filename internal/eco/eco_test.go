package eco

import (
	"strings"
	"testing"

	"ecopatch/internal/netlist"
)

// mustInstance builds an instance from verilog source strings with
// unit weights unless overridden.
func mustInstance(t *testing.T, implSrc, specSrc string, costs map[string]int) *Instance {
	t.Helper()
	impl, err := netlist.ParseString(implSrc)
	if err != nil {
		t.Fatalf("impl parse: %v", err)
	}
	spec, err := netlist.ParseString(specSrc)
	if err != nil {
		t.Fatalf("spec parse: %v", err)
	}
	w := netlist.NewWeights()
	for k, v := range costs {
		w.Set(k, v)
	}
	return &Instance{Name: "test", Impl: impl, Spec: spec, Weights: w}
}

const implAndTarget = `
module m (a, b, f);
input a, b;
output f;
and (f, a, t_0);
endmodule`

const specAndOr = `
module m (a, b, f);
input a, b;
output f;
wire w;
or (w, a, b);
and (f, a, w);
endmodule`

func allAlgoOptions() map[string]Options {
	base := DefaultOptions()
	minimize := base
	baseline := base
	baseline.Support = SupportAnalyzeFinal
	exact := base
	exact.Support = SupportExact
	interp := base
	interp.Patch = PatchInterpolation
	structural := base
	structural.ForceStructural = true
	noWindow := base
	noWindow.Window = false
	noQBF := base
	noQBF.UseQBF = false
	return map[string]Options{
		"baseline":   baseline,
		"minimize":   minimize,
		"exact":      exact,
		"interp":     interp,
		"structural": structural,
		"noWindow":   noWindow,
		"noQBF":      noQBF,
	}
}

func TestSingleTargetAllAlgorithms(t *testing.T) {
	for name, opt := range allAlgoOptions() {
		t.Run(name, func(t *testing.T) {
			inst := mustInstance(t, implAndTarget, specAndOr, nil)
			res, err := Solve(inst, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Feasible {
				t.Fatal("instance should be feasible")
			}
			if !res.Verified {
				t.Fatalf("patch did not verify; patch:\n%s", res.Patch)
			}
			// Independent verification through the netlist splice.
			ok, err := VerifyPatch(inst, res.Patch)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("VerifyPatch rejected the patch:\n%s", res.Patch)
			}
		})
	}
}

func TestInfeasibleInstance(t *testing.T) {
	// f = a & t_0 can never equal !a (at a=0 the output is 0, spec 1).
	impl := `
module m (a, f);
input a;
output f;
and (f, a, t_0);
endmodule`
	spec := `
module m (a, f);
input a;
output f;
not (f, a);
endmodule`
	inst := mustInstance(t, impl, spec, nil)
	res, err := Solve(inst, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("instance should be infeasible")
	}
	// The expansion-based check must agree.
	opt := DefaultOptions()
	opt.UseQBF = false
	res, err = Solve(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("expansion check should also report infeasible")
	}
}

func TestCostAwareSupportSelection(t *testing.T) {
	// Two functionally adequate divisors: wCheap (cost 1) and wExp
	// (cost 50). Spec wants t_0 == b|c. Both wires compute b|c but
	// with different structure so they stay distinct divisors.
	impl := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
wire wCheap, wExp, wx;
or  (wCheap, b, c);
or  (wx, c, b);
or  (wExp, wx, b);
and (f, a, t_0);
and (g2, wCheap, wExp);
endmodule`
	spec := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
wire wCheap, wExp, wx, wn;
or  (wCheap, b, c);
or  (wx, c, b);
or  (wExp, wx, b);
or  (wn, b, c);
and (f, a, wn);
and (g2, wCheap, wExp);
endmodule`
	costs := map[string]int{
		"a": 5, "b": 20, "c": 20, "wCheap": 1, "wExp": 50, "wx": 45,
		"f": 90, "g2": 90, // outputs alias b|c too; price them out
	}
	for _, algo := range []SupportAlgo{SupportMinimize, SupportExact} {
		opt := DefaultOptions()
		opt.Support = algo
		inst := mustInstance(t, impl, spec, costs)
		res, err := Solve(inst, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatalf("%v: not verified", algo)
		}
		if len(res.Patches) != 1 {
			t.Fatalf("%v: %d patches", algo, len(res.Patches))
		}
		sup := res.Patches[0].Support
		if len(sup) != 1 || sup[0] != "wCheap" {
			t.Fatalf("%v: support = %v, want [wCheap]", algo, sup)
		}
		if res.TotalCost != 1 {
			t.Fatalf("%v: cost = %d, want 1", algo, res.TotalCost)
		}
	}
}

func TestExactBeatsGreedyOnTrap(t *testing.T) {
	// Construct a case where cheap divisors individually look good but
	// a single mid-priced divisor is the true optimum:
	// spec patch = b XOR c. Divisors: b (cost 2), c (cost 2),
	// wXor = b^c (cost 3). minimize_assumptions, scanning ascending
	// cost, commits to {b, c} (total 4); SAT_prune must find {wXor}.
	impl := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
wire wXor;
xor (wXor, b, c);
and (f, a, t_0);
buf (g2, wXor);
endmodule`
	spec := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
wire wXor;
xor (wXor, b, c);
and (f, a, wXor);
buf (g2, wXor);
endmodule`
	costs := map[string]int{"a": 100, "b": 2, "c": 2, "wXor": 3, "f": 100, "g2": 100}

	optMin := DefaultOptions()
	optMin.Support = SupportMinimize
	optMin.LastGasp = false
	instMin := mustInstance(t, impl, spec, costs)
	resMin, err := Solve(instMin, optMin)
	if err != nil {
		t.Fatal(err)
	}
	if !resMin.Verified {
		t.Fatal("minimize: not verified")
	}

	optEx := DefaultOptions()
	optEx.Support = SupportExact
	instEx := mustInstance(t, impl, spec, costs)
	resEx, err := Solve(instEx, optEx)
	if err != nil {
		t.Fatal(err)
	}
	if !resEx.Verified {
		t.Fatal("exact: not verified")
	}
	if resEx.TotalCost != 3 {
		t.Fatalf("exact cost = %d, want 3 (support %v)", resEx.TotalCost, resEx.Patches[0].Support)
	}
	if resEx.TotalCost > resMin.TotalCost {
		t.Fatalf("exact (%d) worse than minimal (%d)", resEx.TotalCost, resMin.TotalCost)
	}
}

func TestMultiTarget(t *testing.T) {
	// Two targets feeding different outputs.
	impl := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
and (f, a, t_0);
or  (g2, c, t_1);
endmodule`
	spec := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
wire w1, w2;
or  (w1, b, c);
and (f, a, w1);
and (w2, a, b);
or  (g2, c, w2);
endmodule`
	for name, opt := range allAlgoOptions() {
		t.Run(name, func(t *testing.T) {
			inst := mustInstance(t, impl, spec, nil)
			res, err := Solve(inst, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Feasible || !res.Verified {
				t.Fatalf("feasible=%v verified=%v", res.Feasible, res.Verified)
			}
			if len(res.Patches) != 2 {
				t.Fatalf("patches = %d", len(res.Patches))
			}
			ok, err := VerifyPatch(inst, res.Patch)
			if err != nil || !ok {
				t.Fatalf("VerifyPatch: ok=%v err=%v", ok, err)
			}
		})
	}
}

func TestConstantPatch(t *testing.T) {
	// Spec forces t_0 to behave as constant 1 on the care set.
	impl := `
module m (a, f);
input a;
output f;
and (f, a, t_0);
endmodule`
	spec := `
module m (a, f);
input a;
output f;
buf (f, a);
endmodule`
	inst := mustInstance(t, impl, spec, nil)
	res, err := Solve(inst, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("not verified")
	}
	if len(res.Patches[0].Support) != 0 {
		t.Fatalf("constant patch needs no support, got %v", res.Patches[0].Support)
	}
	if res.TotalCost != 0 {
		t.Fatalf("cost = %d", res.TotalCost)
	}
}

func TestStructuralPatchPIsOnly(t *testing.T) {
	opt := DefaultOptions()
	opt.ForceStructural = true
	opt.CEGARMin = false
	inst := mustInstance(t, implAndTarget, specAndOr, nil)
	res, err := Solve(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("structural patch did not verify")
	}
	if !res.Patches[0].Structural {
		t.Fatal("patch not marked structural")
	}
	for _, s := range res.Patches[0].Support {
		if s != "a" && s != "b" {
			t.Fatalf("PI-only structural patch uses %q", s)
		}
	}
}

func TestCEGARMinUsesCheapInternalSignal(t *testing.T) {
	// Structural patch over PIs would cost a lot (inputs cost 50);
	// the internal wire wOr (cost 1) computes exactly what the patch
	// cone needs, so CEGAR_min should cut there.
	impl := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
wire wOr;
or  (wOr, b, c);
and (f, a, t_0);
buf (g2, wOr);
endmodule`
	spec := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
wire wOr;
or  (wOr, b, c);
and (f, a, wOr);
buf (g2, wOr);
endmodule`
	costs := map[string]int{"a": 50, "b": 50, "c": 50, "wOr": 1}

	optNo := DefaultOptions()
	optNo.ForceStructural = true
	optNo.CEGARMin = false
	instNo := mustInstance(t, impl, spec, costs)
	resNo, err := Solve(instNo, optNo)
	if err != nil {
		t.Fatal(err)
	}

	optYes := DefaultOptions()
	optYes.ForceStructural = true
	optYes.CEGARMin = true
	instYes := mustInstance(t, impl, spec, costs)
	resYes, err := Solve(instYes, optYes)
	if err != nil {
		t.Fatal(err)
	}
	if !resNo.Verified || !resYes.Verified {
		t.Fatalf("verified: no=%v yes=%v", resNo.Verified, resYes.Verified)
	}
	if resYes.TotalCost >= resNo.TotalCost {
		t.Fatalf("CEGAR_min did not reduce cost: %d vs %d", resYes.TotalCost, resNo.TotalCost)
	}
}

func TestLastGaspImproves(t *testing.T) {
	// minimize_assumptions may keep an expensive divisor; last-gasp
	// should swap it for a cheaper equivalent when one exists.
	impl := `
module m (a, b, c, f, g2, h);
input a, b, c;
output f, g2, h;
wire wCheap, wExpA, wExpB;
and (wExpA, b, c);
and (wExpB, c, b, b);
and (wCheap, b, c);
and (f, a, t_0);
buf (g2, wExpA);
buf (h, wCheap);
endmodule`
	spec := `
module m (a, b, c, f, g2, h);
input a, b, c;
output f, g2, h;
wire wCheap, wExpA, wExpB, wp;
and (wExpA, b, c);
and (wExpB, c, b, b);
and (wCheap, b, c);
and (wp, b, c);
and (f, a, wp);
buf (g2, wExpA);
buf (h, wCheap);
endmodule`
	_ = spec
	// Note: wCheap and wExpA hash to the same AIG node, so divisor
	// dedup keeps the cheapest automatically; this test instead checks
	// that enabling LastGasp never makes the result worse.
	costs := map[string]int{"a": 9, "b": 10, "c": 10, "wCheap": 1, "wExpA": 30, "wExpB": 40}
	var withCost, withoutCost int
	for _, lastGasp := range []bool{false, true} {
		opt := DefaultOptions()
		opt.LastGasp = lastGasp
		inst := mustInstance(t, impl, spec, costs)
		res, err := Solve(inst, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatal("not verified")
		}
		if lastGasp {
			withCost = res.TotalCost
		} else {
			withoutCost = res.TotalCost
		}
	}
	if withCost > withoutCost {
		t.Fatalf("last gasp made cost worse: %d > %d", withCost, withoutCost)
	}
}

func TestPatchNetlistWellFormed(t *testing.T) {
	inst := mustInstance(t, implAndTarget, specAndOr, nil)
	res, err := Solve(inst, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := res.Patch
	if p.Name != "patch" {
		t.Fatalf("patch module name %q", p.Name)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("patch invalid: %v\n%s", err, p)
	}
	if len(p.Outputs) != 1 || p.Outputs[0] != "t_0" {
		t.Fatalf("patch outputs = %v", p.Outputs)
	}
	// Round-trip through text.
	p2, err := netlist.ParseString(p.String())
	if err != nil {
		t.Fatalf("patch reparse: %v\n%s", err, p)
	}
	ok, err := VerifyPatch(inst, p2)
	if err != nil || !ok {
		t.Fatalf("reparsed patch: ok=%v err=%v", ok, err)
	}
}

func TestVerifyPatchRejectsBadPatch(t *testing.T) {
	inst := mustInstance(t, implAndTarget, specAndOr, nil)
	bad, err := netlist.ParseString(`
module patch (a, t_0);
input a;
output t_0;
not (t_0, a);
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := VerifyPatch(inst, bad)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("wrong patch accepted")
	}
}

func TestVerifyPatchRejectsTargetDependence(t *testing.T) {
	// A patch reading a signal in the targets' TFO must be rejected.
	impl := `
module m (a, b, f);
input a, b;
output f;
wire w;
and (w, a, t_0);
or  (f, w, b);
endmodule`
	spec := `
module m (a, b, f);
input a, b;
output f;
wire w;
and (w, a, b);
or  (f, w, b);
endmodule`
	inst := mustInstance(t, impl, spec, nil)
	cyclic, err := netlist.ParseString(`
module patch (w, t_0);
input w;
output t_0;
buf (t_0, w);
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyPatch(inst, cyclic); err == nil ||
		!strings.Contains(err.Error(), "depends on a target") {
		t.Fatalf("cyclic patch not rejected: %v", err)
	}
}

func TestInstanceCheckErrors(t *testing.T) {
	good := mustInstance(t, implAndTarget, specAndOr, nil)
	if err := good.Check(); err != nil {
		t.Fatal(err)
	}
	// No targets.
	noTargets := mustInstance(t, specAndOr, specAndOr, nil)
	if err := noTargets.Check(); err == nil {
		t.Fatal("missing targets not reported")
	}
	// PI mismatch.
	specBad, _ := netlist.ParseString(`
module m (a, f);
input a;
output f;
buf (f, a);
endmodule`)
	mismatch := &Instance{
		Name: "x", Impl: good.Impl, Spec: specBad,
		Weights: netlist.NewWeights(),
	}
	if err := mismatch.Check(); err == nil {
		t.Fatal("PI mismatch not reported")
	}
}

func TestStatsPopulated(t *testing.T) {
	inst := mustInstance(t, implAndTarget, specAndOr, nil)
	res, err := Solve(inst, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Divisors == 0 {
		t.Fatal("no divisors counted")
	}
	if res.Stats.SATCalls == 0 && res.Stats.MinimizeCalls == 0 {
		t.Fatal("no SAT activity recorded")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
}

func TestNonWindowOutputDifferenceIsInfeasible(t *testing.T) {
	// The second output is outside the target's TFO and differs from
	// the spec, so no patch can fix it: the full-miter feasibility
	// check must catch this even though windowing drops that output
	// from the patching miter.
	impl := `
module m (a, b, f, g2);
input a, b;
output f, g2;
and (f, a, t_0);
buf (g2, b);
endmodule`
	spec := `
module m (a, b, f, g2);
input a, b;
output f, g2;
wire w;
or  (w, a, b);
and (f, a, w);
not (g2, b);
endmodule`
	for _, useQBF := range []bool{true, false} {
		inst := mustInstance(t, impl, spec, nil)
		opt := DefaultOptions()
		opt.UseQBF = useQBF
		res, err := Solve(inst, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Feasible {
			t.Fatalf("useQBF=%v: non-window mismatch not detected", useQBF)
		}
	}
}

func TestWindowStatsReflectPruning(t *testing.T) {
	// Two independent outputs; only one is in the target's TFO.
	impl := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
wire w1;
and (w1, b, c);
and (f, a, t_0);
buf (g2, w1);
endmodule`
	spec := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
wire w1, w2;
and (w1, b, c);
or  (w2, b, c);
and (f, a, w2);
buf (g2, w1);
endmodule`
	inst := mustInstance(t, impl, spec, nil)
	opt := DefaultOptions()
	res, err := Solve(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WindowPOs != 1 {
		t.Fatalf("window POs = %d, want 1", res.Stats.WindowPOs)
	}
	if !res.Verified {
		t.Fatal("not verified")
	}

	optNoWin := DefaultOptions()
	optNoWin.Window = false
	inst2 := mustInstance(t, impl, spec, nil)
	res2, err := Solve(inst2, optNoWin)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.WindowPOs != 2 {
		t.Fatalf("no-window POs = %d, want 2", res2.Stats.WindowPOs)
	}
	if res2.Stats.Divisors < res.Stats.Divisors {
		t.Fatalf("window should not offer more divisors than the full netlist: %d vs %d",
			res.Stats.Divisors, res2.Stats.Divisors)
	}
}

func TestInterpolationMultiTarget(t *testing.T) {
	impl := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
and (f, a, t_0);
or  (g2, c, t_1);
endmodule`
	spec := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
wire w1, w2;
xor (w1, b, c);
and (f, a, w1);
and (w2, a, b);
or  (g2, c, w2);
endmodule`
	inst := mustInstance(t, impl, spec, nil)
	opt := DefaultOptions()
	opt.Patch = PatchInterpolation
	res, err := Solve(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("interpolation multi-target patch not verified")
	}
	ok, err := VerifyPatch(inst, res.Patch)
	if err != nil || !ok {
		t.Fatalf("VerifyPatch: ok=%v err=%v", ok, err)
	}
}

func TestUnionCostAccounting(t *testing.T) {
	// Both targets need signal b; the union cost counts it once.
	impl := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
and (f, a, t_0);
or  (g2, c, t_1);
endmodule`
	spec := `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
and (f, a, b);
or  (g2, c, b);
endmodule`
	costs := map[string]int{"a": 50, "b": 7, "c": 50, "f": 99, "g2": 99}
	inst := mustInstance(t, impl, spec, costs)
	res, err := Solve(inst, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("not verified")
	}
	if res.TotalCost != 7 {
		t.Fatalf("union cost = %d, want 7 (b paid once); patches %+v",
			res.TotalCost, res.Patches)
	}
	// Per-target accounting: the first target pays, the second reuses.
	paid := 0
	for _, p := range res.Patches {
		paid += p.Cost
	}
	if paid != 7 {
		t.Fatalf("sum of per-target costs = %d, want 7", paid)
	}
	if len(res.Patch.Inputs) != 1 || res.Patch.Inputs[0] != "b" {
		t.Fatalf("patch module inputs = %v, want [b]", res.Patch.Inputs)
	}
}

func TestOrderedDivisorsDiscount(t *testing.T) {
	inst := mustInstance(t, implAndTarget, specAndOr, map[string]int{"a": 3, "b": 9})
	opt := DefaultOptions()
	e := &engine{inst: inst, opt: opt, res: &Result{}}
	if err := e.setup(); err != nil {
		t.Fatal(err)
	}
	e.rectifyAllInit()
	e.usedSignals["b"] = true
	divs := e.orderedDivisors()
	// b is already paid for: its effective cost drops to 0 and it
	// sorts first.
	if divs[0].name != "b" || divs[0].cost != 0 {
		t.Fatalf("discounted divisor ordering wrong: %+v", divs)
	}
}

func TestResultElapsedAndPatchNames(t *testing.T) {
	impl := `
module m (a, b, c, f, g2, h);
input a, b, c;
output f, g2, h;
and (f, a, t_0);
or  (g2, b, t_1);
xor (h, c, t_2);
endmodule`
	spec := `
module m (a, b, c, f, g2, h);
input a, b, c;
output f, g2, h;
wire w;
and (w, b, c);
and (f, a, w);
or  (g2, b, c);
xor (h, c, a);
endmodule`
	inst := mustInstance(t, impl, spec, nil)
	res, err := Solve(inst, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("not verified")
	}
	if len(res.Patch.Outputs) != 3 {
		t.Fatalf("patch outputs = %v", res.Patch.Outputs)
	}
	for i, want := range []string{"t_0", "t_1", "t_2"} {
		if res.Patch.Outputs[i] != want {
			t.Fatalf("patch output %d = %q, want %q", i, res.Patch.Outputs[i], want)
		}
	}
}
