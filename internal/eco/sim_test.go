package eco

import (
	"testing"

	"ecopatch/internal/cache"
)

// simOptions turns both simulation mechanisms on over base.
func simOptions(base Options) Options {
	base.SimBank = true
	base.SimPrune = true
	return base
}

// TestSimSerialReproducible pins that a sim-on run at Parallelism=1 is
// deterministic against itself: elision and pruning are driven by
// banked models and a per-window seeded RNG, never by wall clock or
// map order.
func TestSimSerialReproducible(t *testing.T) {
	for name, tc := range parallelCases(t) {
		t.Run(name, func(t *testing.T) {
			opt := simOptions(tc.opt)
			opt.Parallelism = 1
			var snaps []string
			for run := 0; run < 2; run++ {
				res, err := Solve(tc.inst, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Verified {
					t.Fatal("not verified")
				}
				snaps = append(snaps, snapshotResult(res))
			}
			if snaps[0] != snaps[1] {
				t.Fatalf("sim-on run not reproducible:\nrun0:\n%s\nrun1:\n%s", snaps[0], snaps[1])
			}
		})
	}
}

// TestSimVerdictCostParity pins the soundness contract of the
// simulation layer: sim-on and sim-off runs agree on the verdicts
// (feasible, verified) and the patch cost — elision preserves every
// query's status and pruning only ever succeeds on UNSAT subsets, so
// the selected support cost cannot change. Patch structure may differ;
// both patches must verify.
func TestSimVerdictCostParity(t *testing.T) {
	for name, tc := range parallelCases(t) {
		t.Run(name, func(t *testing.T) {
			base := tc.opt
			base.Parallelism = 1
			off, err := Solve(tc.inst, base)
			if err != nil {
				t.Fatal(err)
			}
			on, err := Solve(tc.inst, simOptions(base))
			if err != nil {
				t.Fatal(err)
			}
			if on.Feasible != off.Feasible || on.Verified != off.Verified {
				t.Fatalf("verdict diverged: sim-on %v/%v sim-off %v/%v",
					on.Feasible, on.Verified, off.Feasible, off.Verified)
			}
			if on.TotalCost != off.TotalCost {
				t.Fatalf("patch cost diverged: sim-on %d sim-off %d", on.TotalCost, off.TotalCost)
			}
			if on.Verified {
				ok, err := VerifyPatch(tc.inst, on.Patch)
				if err != nil || !ok {
					t.Fatalf("sim-on patch fails standalone verification: ok=%v err=%v", ok, err)
				}
			}
			if got := on.Stats.SimElided + on.Stats.SimPatterns; got == 0 {
				t.Logf("note: no sim activity on %s (tiny window)", name)
			}
		})
	}
}

// TestSimOptionsKeySeparation pins that window-cache keys separate the
// simulation modes: a sim-pruned window may cache a different (equally
// valid) patch than a sim-off one, so their entries must never collide.
func TestSimOptionsKeySeparation(t *testing.T) {
	mk := func(opt Options) []uint64 {
		e := &engine{opt: opt}
		return e.appendOptionsKey(nil)
	}
	base := DefaultOptions()
	base.Parallelism = 1
	keys := map[string][]uint64{}
	for name, opt := range map[string]Options{
		"off":   base,
		"bank":  func() Options { o := base; o.SimBank = true; return o }(),
		"prune": func() Options { o := base; o.SimPrune = true; return o }(),
		"both":  simOptions(base),
	} {
		keys[name] = mk(opt)
	}
	eq := func(a, b []uint64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for a, ka := range keys {
		for b, kb := range keys {
			if a != b && eq(ka, kb) {
				t.Fatalf("options key does not separate %q from %q", a, b)
			}
		}
	}
}

// TestSimCacheDeterminism extends the cache determinism contract to
// sim-on runs: uncached, cold-cache, and warm-cache runs must be
// bit-for-bit identical at Parallelism=1. This exercises the two
// purity mechanisms — the pattern pool folded into window keys and the
// per-entry pattern replay on hits — without which a warm run's pool
// (and so its pruning) would diverge from a cold one's.
func TestSimCacheDeterminism(t *testing.T) {
	for name, tc := range parallelCases(t) {
		t.Run(name, func(t *testing.T) {
			base := simOptions(tc.opt)
			base.Parallelism = 1

			ref, err := Solve(tc.inst, base)
			if err != nil {
				t.Fatal(err)
			}
			want := snapshotResult(ref)

			c := cache.New(1024)
			opt := base
			opt.Cache = c
			var warmHits int64
			for run := 0; run < 4; run++ {
				res, err := Solve(tc.inst, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got := snapshotResult(res); got != want {
					t.Fatalf("run %d diverged from uncached reference:\nwant:\n%s\ngot:\n%s",
						run, want, got)
				}
				if run > 0 {
					warmHits += res.Stats.CacheHits
				}
			}
			if warmHits == 0 {
				t.Fatal("warm sim-on runs never hit the cache")
			}
		})
	}
}
