package eco

import (
	"fmt"
	"math/rand"
	"time"

	"ecopatch/internal/aig"
	"ecopatch/internal/cec"
	"ecopatch/internal/maxflow"
)

// structuralPatch derives the patch for target i without SAT effort
// (§3.6): the negative cofactor M_i(0,x) is an interpolant of the
// (unsatisfiable) onset/offset pair, so its circuit — a function of
// primary inputs only — is a valid patch. When CEGARMin is enabled,
// the support is re-expressed through a minimum-weight cut of
// internal signals (§3.6.3).
func (e *engine) structuralPatch(i int, m0 aig.Lit) error {
	start := time.Now()
	defer func() { e.stats.PatchTime += time.Since(start) }()
	e.stats.StructuralFixes++
	if e.opt.CEGARMin {
		if err := e.cegarMinPatch(i, m0); err == nil {
			return nil
		} else {
			e.logf("target %s: CEGAR_min failed (%v); using PI support", e.targets[i], err)
		}
	}
	// Plain PI-support structural patch.
	support, boundary := e.piBoundary(m0)
	patch := e.extractAbove(m0, boundary, support)
	e.installPatch(i, patch, support, true)
	return nil
}

// piBoundary prepares the boundary map for a PI-supported patch: each
// x PI node in the cone of root maps to a fresh patch input.
func (e *engine) piBoundary(root aig.Lit) ([]string, map[int]int) {
	var support []string
	boundary := make(map[int]int) // w node -> support position
	for _, idx := range e.w.ConeNodes([]aig.Lit{root}) {
		if !e.w.IsPI(idx) {
			continue
		}
		pos := e.w.PIIndex(idx)
		name := e.w.PIName(pos)
		boundary[idx] = len(support)
		support = append(support, name)
	}
	return support, boundary
}

// extractAbove copies the cone of root into a fresh patch AIG,
// stopping at the boundary nodes, which become the patch PIs (in
// support order). boundaryCompl optionally marks boundary nodes whose
// signal is the complement of the node value.
func (e *engine) extractAbove(root aig.Lit, boundary map[int]int, support []string) *aig.AIG {
	patch := aig.New()
	pis := make([]aig.Lit, len(support))
	for j, name := range support {
		pis[j] = patch.AddPI(name)
	}
	return e.extractAboveInto(patch, pis, root, boundary, nil)
}

// extractAboveInto is extractAbove with caller-provided destination
// and PI edges; boundaryCompl[n]=true means w-node n equals the
// complement of its mapped patch input.
func (e *engine) extractAboveInto(patch *aig.AIG, pis []aig.Lit, root aig.Lit,
	boundary map[int]int, boundaryCompl map[int]bool) *aig.AIG {
	mapped := make(map[int]aig.Lit)
	var build func(n int) aig.Lit
	// Iterative DFS to avoid recursion depth issues.
	build = func(start int) aig.Lit {
		type frame struct {
			n        int
			expanded bool
		}
		stack := []frame{{start, false}}
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			n := f.n
			if _, ok := mapped[n]; ok {
				stack = stack[:len(stack)-1]
				continue
			}
			if pos, ok := boundary[n]; ok {
				edge := pis[pos]
				if boundaryCompl[n] {
					edge = edge.Not()
				}
				mapped[n] = edge
				stack = stack[:len(stack)-1]
				continue
			}
			if e.w.IsConst(n) {
				mapped[n] = aig.ConstFalse
				stack = stack[:len(stack)-1]
				continue
			}
			if e.w.IsPI(n) {
				// A PI outside the boundary must not be reachable.
				panic(fmt.Sprintf("eco: cone escapes boundary at PI %s", e.w.PIName(e.w.PIIndex(n))))
			}
			f0, f1 := e.w.Fanins(n)
			if !f.expanded {
				stack[len(stack)-1].expanded = true
				if _, ok := mapped[f0.Node()]; !ok {
					stack = append(stack, frame{f0.Node(), false})
				}
				if _, ok := mapped[f1.Node()]; !ok {
					stack = append(stack, frame{f1.Node(), false})
				}
				continue
			}
			a := mapped[f0.Node()].XorCompl(f0.Compl())
			b := mapped[f1.Node()].XorCompl(f1.Compl())
			mapped[n] = patch.And(a, b)
			stack = stack[:len(stack)-1]
		}
		return mapped[start]
	}
	r := build(root.Node()).XorCompl(root.Compl())
	patch.AddPO("patch", r)
	return patch
}

// equiv records the cheapest implementation signal equivalent to an
// AIG node (possibly up to complementation).
type equiv struct {
	name  string
	cost  int
	compl bool // signal = complement of node value
}

// cegarMinPatch improves a structural patch by re-expressing it over
// a minimum-weight cut of implementation signals (§3.6.3): signals of
// F equivalent to nodes of the patch cone form candidate cut points;
// max-flow/min-cut over the cone, with node capacities set to the
// cheapest equivalent signal's weight, yields the new support.
//
// Equivalence detection is structural-by-construction: the patch cone
// and the implementation live in the same hashed AIG, so functionally
// identical structures share nodes.
func (e *engine) cegarMinPatch(i int, m0 aig.Lit) error {
	cone := e.w.ConeNodes([]aig.Lit{m0})
	if len(cone) == 0 || m0.Node() == 0 {
		// Constant patch: no support needed.
		patch := aig.New()
		patch.AddPO("patch", aig.ConstFalse.XorCompl(m0 == aig.ConstTrue))
		e.installPatch(i, patch, nil, true)
		return nil
	}
	// Cheapest equivalent signal per node (complement-insensitive:
	// an inverter is free inside the patch).
	nodeEquiv := make(map[int]equiv)
	for _, d := range e.divisors {
		n := d.edge.Node()
		if cur, ok := nodeEquiv[n]; !ok || d.cost < cur.cost {
			nodeEquiv[n] = equiv{name: d.name, cost: d.cost, compl: d.edge.Compl()}
		}
	}
	if e.opt.FunctionalMatch {
		e.addFunctionalEquivs(cone, nodeEquiv)
	}

	inCone := make(map[int]int, len(cone)) // w node -> flow index
	for idx, n := range cone {
		inCone[n] = idx
	}
	// Flow network: source (index len(cone)) feeds every leaf (PI or
	// const) of the cone; root drains to sink (len(cone)+1).
	nFlow := len(cone) + 2
	src, snk := len(cone), len(cone)+1
	capOf := func(fi int) int64 {
		if fi >= len(cone) {
			return maxflow.Inf
		}
		n := cone[fi]
		if eq, ok := nodeEquiv[n]; ok {
			return int64(eq.cost)
		}
		return maxflow.Inf
	}
	ng := maxflow.NewNodeGraph(nFlow, capOf)
	for fi, n := range cone {
		if e.w.IsAnd(n) {
			f0, f1 := e.w.Fanins(n)
			ng.Connect(inCone[f0.Node()], fi)
			ng.Connect(inCone[f1.Node()], fi)
		} else {
			// Leaf: PI or constant.
			ng.Connect(src, fi)
		}
	}
	ng.Connect(inCone[m0.Node()], snk)
	cut, flow := ng.MinVertexCutNearSink(src, snk)
	if flow >= maxflow.Inf {
		return fmt.Errorf("no finite cut: some cone leaf has no equivalent signal")
	}
	// Build the patch above the cut.
	boundary := make(map[int]int)
	boundaryCompl := make(map[int]bool)
	var support []string
	for _, fi := range cut {
		n := cone[fi]
		eq := nodeEquiv[n]
		boundary[n] = len(support)
		boundaryCompl[n] = eq.compl
		support = append(support, eq.name)
	}
	patch := aig.New()
	pis := make([]aig.Lit, len(support))
	for j, name := range support {
		pis[j] = patch.AddPI(name)
	}
	e.extractAboveInto(patch, pis, m0, boundary, boundaryCompl)
	e.installPatch(i, patch, support, true)
	return nil
}

// addFunctionalEquivs widens nodeEquiv with functional matches: cone
// nodes and divisors that agree on 256 random simulation patterns
// (up to complementation) are candidate pairs, confirmed by SAT.
// This is the "functional resubstitution" variant of §3.6.3; the SAT
// queries involve only the implementation logic, so they are far
// cheaper than patch-support queries.
func (e *engine) addFunctionalEquivs(cone []int, nodeEquiv map[int]equiv) {
	const rounds = 4 // 4 × 64 = 256 patterns
	const maxSATChecks = 64
	rng := rand.New(rand.NewSource(12345))
	sigs := make([][rounds]uint64, e.w.NumNodes())
	for r := 0; r < rounds; r++ {
		words := e.w.SimWords(e.w.RandomSimWords(rng))
		for n := range sigs {
			sigs[n][r] = words[n]
		}
	}
	canon := func(n int) ([rounds]uint64, bool) {
		s := sigs[n]
		if s[0]&1 == 1 {
			for i := range s {
				s[i] = ^s[i]
			}
			return s, true
		}
		return s, false
	}
	// Index divisors by canonical signature, cheapest first.
	bySig := make(map[[rounds]uint64][]int)
	for j, d := range e.divisors {
		key, compl := canon(d.edge.Node())
		_ = compl
		bySig[key] = append(bySig[key], j)
	}
	if workers := e.par(); workers > 1 {
		// Parallel form: collect the candidate pairs up front (same
		// filters, judged against the pre-SAT nodeEquiv) and confirm
		// them as one batch over the worker pool. Confirmations fold
		// in pair order, cheapest kept per node, so the result is a
		// pure function of the graph — though it may differ from the
		// serial scan, which prunes later candidates against matches
		// confirmed earlier.
		type fcand struct {
			n   int
			j   int
			rel bool
		}
		var fcands []fcand
	collect:
		for _, n := range cone {
			if !e.w.IsAnd(n) {
				continue
			}
			key, nCompl := canon(n)
			cur, hasCur := nodeEquiv[n]
			for _, j := range bySig[key] {
				d := e.divisors[j]
				if hasCur && d.cost >= cur.cost {
					continue
				}
				if d.edge.Node() == n {
					continue
				}
				if len(fcands) == maxSATChecks {
					break collect
				}
				_, dCompl := canon(d.edge.Node())
				fcands = append(fcands, fcand{n: n, j: j, rel: nCompl != dCompl})
			}
		}
		pairs := make([][2]aig.Lit, len(fcands))
		for i, c := range fcands {
			pairs[i] = [2]aig.Lit{
				aig.MkLit(c.n, false),
				aig.MkLit(e.divisors[c.j].edge.Node(), c.rel),
			}
		}
		results := cec.CheckPairsParallel(e.w, pairs, workers, cec.CheckOptions{OnSolver: e.group.add})
		for i, r := range results {
			if r.Err != nil || !r.Equal {
				continue
			}
			c := fcands[i]
			d := e.divisors[c.j]
			if cur, ok := nodeEquiv[c.n]; !ok || d.cost < cur.cost {
				nodeEquiv[c.n] = equiv{name: d.name, cost: d.cost, compl: c.rel != d.edge.Compl()}
			}
		}
		return
	}
	// One incremental solver serves all candidate-pair queries: each
	// check is a selector-guarded assumption on a shared clause
	// database, so cone encodings and learnt clauses amortize across
	// the (up to maxSATChecks) confirmations instead of rebuilding a
	// solver per pair.
	checker := cec.NewPairChecker(e.w, cec.CheckOptions{OnSolver: e.group.add})
	checks := 0
	for _, n := range cone {
		if !e.w.IsAnd(n) {
			continue
		}
		key, nCompl := canon(n)
		cands := bySig[key]
		if len(cands) == 0 {
			continue
		}
		cur, hasCur := nodeEquiv[n]
		for _, j := range cands {
			d := e.divisors[j]
			if hasCur && d.cost >= cur.cost {
				continue
			}
			if d.edge.Node() == n {
				continue // structural match already handled
			}
			if checks >= maxSATChecks {
				return
			}
			checks++
			// The signatures predict the node-level polarity: when the
			// canonical complements differ, value(n) == ¬value(dNode).
			// Confirm with SAT.
			_, dCompl := canon(d.edge.Node())
			rel := nCompl != dCompl // value(n) == value(dNode) XOR rel
			want := aig.MkLit(d.edge.Node(), rel)
			equal, _, err := checker.CheckPair(aig.MkLit(n, false), want)
			if err != nil && checker.Solver().Interrupted() {
				return // deadline hit; stop probing
			}
			if !equal {
				continue
			}
			// signal = value(dNode) XOR edgeCompl = value(n) XOR rel
			// XOR edgeCompl.
			cur = equiv{name: d.name, cost: d.cost, compl: rel != d.edge.Compl()}
			hasCur = true
			nodeEquiv[n] = cur
		}
	}
}
