package eco

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

const implMultiTarget = `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
and (f, a, t_0);
or  (g2, c, t_1);
endmodule`

const specMultiTarget = `
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
wire w1, w2;
or  (w1, b, c);
and (f, a, w1);
and (w2, a, b);
or  (g2, c, w2);
endmodule`

// parallelCases returns the instances the parallelism tests sweep:
// single target, multi target, and the cofactor-expansion feasibility
// path (UseQBF off routes checkFeasible through the portfolio).
func parallelCases(t *testing.T) map[string]struct {
	inst *Instance
	opt  Options
} {
	t.Helper()
	base := DefaultOptions()
	noQBF := base
	noQBF.UseQBF = false
	return map[string]struct {
		inst *Instance
		opt  Options
	}{
		"single":      {mustInstance(t, implAndTarget, specAndOr, nil), base},
		"multi":       {mustInstance(t, implMultiTarget, specMultiTarget, nil), base},
		"multi-noqbf": {mustInstance(t, implMultiTarget, specMultiTarget, nil), noQBF},
	}
}

// TestParallelismOneBitReproducible pins the determinism contract:
// Parallelism = 1 must follow exactly the serial code path, so two
// runs produce identical patches, costs, and synthesized netlists,
// and no portfolio race is ever recorded.
func TestParallelismOneBitReproducible(t *testing.T) {
	for name, tc := range parallelCases(t) {
		t.Run(name, func(t *testing.T) {
			opt := tc.opt
			opt.Parallelism = 1
			var snaps []string
			for run := 0; run < 2; run++ {
				res, err := Solve(tc.inst, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Verified {
					t.Fatal("not verified")
				}
				if res.Stats.PortfolioRaces != 0 || len(res.Stats.PortfolioWins) != 0 {
					t.Fatalf("Parallelism=1 recorded portfolio races: %d %v",
						res.Stats.PortfolioRaces, res.Stats.PortfolioWins)
				}
				snaps = append(snaps, fmt.Sprintf("cost=%d gates=%d patches=%+v netlist:\n%s",
					res.TotalCost, res.TotalGates, res.Patches, res.Patch))
			}
			if snaps[0] != snaps[1] {
				t.Fatalf("Parallelism=1 not reproducible:\nrun0:\n%s\nrun1:\n%s", snaps[0], snaps[1])
			}
		})
	}
}

// TestParallelVerdictParity runs every case at Parallelism 1 and 4:
// the verdicts (feasible, verified) must agree, the parallel run's
// patch must pass the independent netlist-splice verification, and
// the portfolio counters must be consistent (every win belongs to a
// counted race).
func TestParallelVerdictParity(t *testing.T) {
	for name, tc := range parallelCases(t) {
		t.Run(name, func(t *testing.T) {
			serialOpt := tc.opt
			serialOpt.Parallelism = 1
			serial, err := Solve(tc.inst, serialOpt)
			if err != nil {
				t.Fatal(err)
			}
			parOpt := tc.opt
			parOpt.Parallelism = 4
			par, err := Solve(tc.inst, parOpt)
			if err != nil {
				t.Fatal(err)
			}
			if serial.Feasible != par.Feasible || serial.Verified != par.Verified {
				t.Fatalf("verdict mismatch: serial feasible=%v verified=%v, parallel feasible=%v verified=%v",
					serial.Feasible, serial.Verified, par.Feasible, par.Verified)
			}
			if len(serial.Patches) != len(par.Patches) {
				t.Fatalf("patch count: serial %d, parallel %d", len(serial.Patches), len(par.Patches))
			}
			ok, err := VerifyPatch(tc.inst, par.Patch)
			if err != nil || !ok {
				t.Fatalf("parallel patch failed VerifyPatch: ok=%v err=%v\n%s", ok, err, par.Patch)
			}
			if par.Stats.PortfolioRaces == 0 {
				t.Fatal("Parallelism=4 recorded no portfolio races")
			}
			var wins int64
			for _, w := range par.Stats.PortfolioWins {
				wins += w
			}
			if wins > par.Stats.PortfolioRaces {
				t.Fatalf("wins %d exceed races %d", wins, par.Stats.PortfolioRaces)
			}
		})
	}
}

// TestParallelSolveContextCancelled feeds a parallel solve an
// already-cancelled context: portfolio members register with the
// stopped solverGroup, get interrupted immediately, and the run seals
// a partial TimedOut result instead of hanging on the race.
func TestParallelSolveContextCancelled(t *testing.T) {
	inst := mustInstance(t, implMultiTarget, specMultiTarget, nil)
	opt := DefaultOptions()
	opt.Parallelism = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveContext(ctx, inst, opt)
	if err != nil {
		t.Fatalf("cancelled parallel solve must return a partial result, got error: %v", err)
	}
	if !res.TimedOut {
		t.Fatal("TimedOut not set on a cancelled context")
	}
	if res.Verified {
		t.Fatal("cancelled parallel solve cannot be verified")
	}
}

// TestParallelBudgetFallback forces the SAT path to fail under a
// 1-conflict budget at Parallelism = 4: every portfolio member
// exhausts its budget, the race returns Unknown, and the engine must
// degrade to structural patches exactly like the serial path.
func TestParallelBudgetFallback(t *testing.T) {
	inst := mustInstance(t, implAndTarget, specAndOr, nil)
	opt := DefaultOptions()
	opt.Parallelism = 4
	opt.ConfBudget = 1
	res, err := Solve(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patches) == 0 {
		t.Fatal("budget fallback produced no patches")
	}
	ok, err := VerifyPatch(inst, res.Patch)
	if err != nil || !ok {
		t.Fatalf("fallback patch failed VerifyPatch: ok=%v err=%v", ok, err)
	}
}

// TestStatsAddMergesPortfolioWins pins the nil-safe map merge used by
// the daemon's metrics aggregation.
func TestStatsAddMergesPortfolioWins(t *testing.T) {
	var total Stats
	total.Add(Stats{PortfolioRaces: 2, PortfolioWins: map[string]int64{"glucose": 1, "luby-pos": 1}})
	total.Add(Stats{PortfolioRaces: 1, PortfolioWins: map[string]int64{"glucose": 1}})
	total.Add(Stats{}) // nil map must not clobber
	want := map[string]int64{"glucose": 2, "luby-pos": 1}
	if total.PortfolioRaces != 3 || !reflect.DeepEqual(total.PortfolioWins, want) {
		t.Fatalf("merged stats: races=%d wins=%v", total.PortfolioRaces, total.PortfolioWins)
	}
}
