package eco

import (
	"fmt"
	"time"

	"ecopatch/internal/aig"
)

// This file hosts the engine side of Options.Rewrite: extracting a
// miter cone (plus any companion roots that must stay aligned with
// it) into a fresh graph that preserves the working AIG's full PI
// interface, shrinking it with aig.Optimize, and handing back the
// optimized roots. Preserving the PI interface — same count, order
// and names — is what lets every consumer keyed by PI position (QBF
// partitions via xPIs/tPIs, pattern capture, cofactor maps) run on
// the rewritten graph unchanged.

// rewriteMinAnds gates the pass by cone size: below it the extraction
// and cut enumeration cost more than any solver time they could save
// (a solver settles a sub-hundred-node cone instantly), so the pass
// runs as the identity. Gated cones still count into the stats —
// before equals after, truthfully reporting zero elimination.
const rewriteMinAnds = 100

// rewriteCone copies the cones of roots out of e.w into a fresh graph
// with e.w's exact PI interface, optimizes it, and returns the graph
// with the edges corresponding to roots (each root becomes PO i of
// the result, surviving the rebuilds by construction). Counters and
// wall clock land in the run stats.
func (e *engine) rewriteCone(roots []aig.Lit) (*aig.AIG, []aig.Lit) {
	t := time.Now()
	ands := 0
	for _, idx := range e.w.ConeNodes(roots) {
		if e.w.IsAnd(idx) {
			ands++
		}
	}
	if ands < rewriteMinAnds {
		e.stats.RewriteNodesBefore += int64(ands)
		e.stats.RewriteNodesAfter += int64(ands)
		e.stats.RewriteTime += time.Since(t)
		return e.w, roots
	}
	rg := aig.New()
	piMap := make([]aig.Lit, e.w.NumPIs())
	for i := range piMap {
		piMap[i] = rg.AddPI(e.w.PIName(i))
	}
	moved := aig.Transfer(rg, e.w, piMap, roots)
	for i, r := range moved {
		rg.AddPO(fmt.Sprintf("r%d", i), r)
	}
	e.stats.RewriteNodesBefore += int64(rg.NumAnds())
	og := aig.Optimize(rg)
	e.stats.RewriteNodesAfter += int64(og.NumAnds())
	e.stats.RewriteTime += time.Since(t)
	out := make([]aig.Lit, len(roots))
	for i := range out {
		out[i] = og.PO(i)
	}
	return og, out
}

// rewriteWindow prepares the graph a window's expression-(2) encoding
// reads from: e.w untouched when rewriting is off, otherwise the
// optimized extraction of both cofactor miters and every divisor
// edge. Divisor names, costs and order are preserved so selection
// indices and cost accounting are unaffected.
func (e *engine) rewriteWindow(m0, m1 aig.Lit, divs []divisor) (*aig.AIG, aig.Lit, aig.Lit, []divisor) {
	// Analyze-final reads the support straight off the feasibility
	// proof's final conflict, so the selection is proof-shaped, not
	// status-driven: a rewritten (smaller, different) encoding steers
	// the solver to a different proof whose conflict can name a
	// costlier support. Same guard as simulation pruning; the
	// feasibility and verification rewrites stay on (verdict-only
	// surfaces).
	if !e.opt.Rewrite || e.opt.Support == SupportAnalyzeFinal {
		return e.w, m0, m1, divs
	}
	roots := make([]aig.Lit, 0, 2+len(divs))
	roots = append(roots, m0, m1)
	for _, d := range divs {
		roots = append(roots, d.edge)
	}
	og, moved := e.rewriteCone(roots)
	rdivs := make([]divisor, len(divs))
	for i, d := range divs {
		rdivs[i] = divisor{name: d.name, edge: moved[2+i], cost: d.cost}
	}
	return og, moved[0], moved[1], rdivs
}

// rewriteFeas prepares the graph the feasibility check reads from:
// (e.w, fullMiter) untouched when rewriting is off, otherwise the
// optimized extraction of the full miter cone. The verdict is
// rewrite-independent, but the QBF countermoves are read off the
// graph the solver saw and feed move-guided quantification — which
// reshapes the very windows analyze-final's proof-shaped selection
// reads — so the analyze-final guard applies here too.
func (e *engine) rewriteFeas() (*aig.AIG, aig.Lit) {
	if !e.opt.Rewrite || e.opt.Support == SupportAnalyzeFinal {
		return e.w, e.fullMiter
	}
	og, moved := e.rewriteCone([]aig.Lit{e.fullMiter})
	return og, moved[0]
}

// identityPIMap returns the identity PI map of g (selfPIMap for an
// arbitrary graph).
func identityPIMap(g *aig.AIG) []aig.Lit {
	m := make([]aig.Lit, g.NumPIs())
	for i := range m {
		m[i] = g.PI(i)
	}
	return m
}
