package eco

import (
	"testing"

	"ecopatch/internal/cache"
)

// rewriteOptions turns the DAG-aware rewriting pass on over base.
func rewriteOptions(base Options) Options {
	base.Rewrite = true
	return base
}

// TestRewriteSerialReproducible pins that a rewrite-on run at
// Parallelism=1 is deterministic against itself: the rewriting pass is
// a pure function of the input graph (index-ordered node walk, seeded
// by nothing), so two runs must be bit-for-bit identical.
func TestRewriteSerialReproducible(t *testing.T) {
	for name, tc := range parallelCases(t) {
		t.Run(name, func(t *testing.T) {
			opt := rewriteOptions(tc.opt)
			opt.Parallelism = 1
			var snaps []string
			for run := 0; run < 2; run++ {
				res, err := Solve(tc.inst, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Verified {
					t.Fatal("not verified")
				}
				snaps = append(snaps, snapshotResult(res))
			}
			if snaps[0] != snaps[1] {
				t.Fatalf("rewrite-on run not reproducible:\nrun0:\n%s\nrun1:\n%s", snaps[0], snaps[1])
			}
		})
	}
}

// TestRewriteVerdictCostParity pins the soundness contract of the
// rewriting layer: rewrite-on and rewrite-off runs agree on the
// verdicts (feasible, verified) and the patch cost — the rewritten
// miters are functionally equivalent to the originals, so every
// query's status is preserved. Patch structure may differ; both
// patches must verify.
func TestRewriteVerdictCostParity(t *testing.T) {
	for name, tc := range parallelCases(t) {
		t.Run(name, func(t *testing.T) {
			base := tc.opt
			base.Parallelism = 1
			off, err := Solve(tc.inst, base)
			if err != nil {
				t.Fatal(err)
			}
			on, err := Solve(tc.inst, rewriteOptions(base))
			if err != nil {
				t.Fatal(err)
			}
			if on.Feasible != off.Feasible || on.Verified != off.Verified {
				t.Fatalf("verdict diverged: rewrite-on %v/%v rewrite-off %v/%v",
					on.Feasible, on.Verified, off.Feasible, off.Verified)
			}
			if on.TotalCost != off.TotalCost {
				t.Fatalf("patch cost diverged: rewrite-on %d rewrite-off %d", on.TotalCost, off.TotalCost)
			}
			if on.Verified {
				ok, err := VerifyPatch(tc.inst, on.Patch)
				if err != nil || !ok {
					t.Fatalf("rewrite-on patch fails standalone verification: ok=%v err=%v", ok, err)
				}
			}
			if on.Stats.RewriteNodesBefore == 0 {
				t.Fatal("rewrite-on run never rewrote a miter")
			}
			if off.Stats.RewriteNodesBefore != 0 || off.Stats.RewriteNodesAfter != 0 {
				t.Fatalf("rewrite-off run recorded rewriting stats: %d/%d",
					off.Stats.RewriteNodesBefore, off.Stats.RewriteNodesAfter)
			}
			if on.Stats.RewriteNodesAfter > on.Stats.RewriteNodesBefore {
				t.Fatalf("rewriting grew the miters: %d -> %d",
					on.Stats.RewriteNodesBefore, on.Stats.RewriteNodesAfter)
			}
		})
	}
}

// TestRewriteOptionsKeySeparation pins that window-cache keys separate
// rewrite-on from rewrite-off (and from the simulation modes): a
// rewritten window may cache a different (equally valid) patch, so the
// entries must never collide.
func TestRewriteOptionsKeySeparation(t *testing.T) {
	mk := func(opt Options) []uint64 {
		e := &engine{opt: opt}
		return e.appendOptionsKey(nil)
	}
	base := DefaultOptions()
	base.Parallelism = 1
	keys := map[string][]uint64{
		"off":         mk(base),
		"rewrite":     mk(rewriteOptions(base)),
		"sim":         mk(simOptions(base)),
		"rewrite+sim": mk(rewriteOptions(simOptions(base))),
	}
	eq := func(a, b []uint64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for a, ka := range keys {
		for b, kb := range keys {
			if a != b && eq(ka, kb) {
				t.Fatalf("options key does not separate %q from %q", a, b)
			}
		}
	}
}

// TestRewriteCacheDeterminism extends the cache determinism contract
// to rewrite-on runs: uncached, cold-cache, and warm-cache runs must
// be bit-for-bit identical at Parallelism=1. This exercises the
// rewrite marker in the feasibility key and options bit 8 in window
// keys — without them a rewrite-on run could replay a rewrite-off
// entry whose cached countermoves or patch came off a different graph.
func TestRewriteCacheDeterminism(t *testing.T) {
	for name, tc := range parallelCases(t) {
		t.Run(name, func(t *testing.T) {
			base := rewriteOptions(tc.opt)
			base.Parallelism = 1

			ref, err := Solve(tc.inst, base)
			if err != nil {
				t.Fatal(err)
			}
			want := snapshotResult(ref)

			c := cache.New(1024)
			opt := base
			opt.Cache = c
			var warmHits int64
			for run := 0; run < 3; run++ {
				res, err := Solve(tc.inst, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got := snapshotResult(res); got != want {
					t.Fatalf("run %d diverged from uncached reference:\nwant:\n%s\ngot:\n%s",
						run, want, got)
				}
				if run > 0 {
					warmHits += res.Stats.CacheHits
				}
			}
			if warmHits == 0 {
				t.Fatal("warm rewrite-on runs never hit the cache")
			}
		})
	}
}
