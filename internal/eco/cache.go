package eco

import (
	"ecopatch/internal/aig"
	"ecopatch/internal/cache"
)

// This file builds the engine's cache keys and replays cached
// entries. Two kinds of work are memoized at the window level:
//
//   - the QBF feasibility outcome of expression (1), keyed by the
//     canonical cone of the full miter plus the target partition and
//     the conflict budget (the countermoves are part of the value —
//     they drive move-guided quantification, so a hit must replay
//     them for identical downstream behavior);
//   - the per-target patch of one rectification window, keyed by the
//     canonical cones of both cofactor miters and every divisor edge
//     plus the divisor order/costs and the option fingerprint.
//
// Keys are canonical cone encodings: nodes renumbered densely in
// topological order, PIs identified by name. Two structurally
// identical windows over identically-named signals therefore key
// equal even when they were built in different working AIGs or at
// different node offsets (overlapping windows of a rectification
// retry, or repeat daemon jobs over the same netlist pair).

// Key-layout version tags. Distinct prefixes keep the two entry kinds
// from ever comparing equal; bump on layout changes.
const (
	feasKeyVersion   uint64 = 0xecc0_fea5<<32 | 1
	windowKeyVersion uint64 = 0xecc0_aa1c<<32 | 1
)

// feasEntry is the cached outcome of the QBF feasibility check.
// moves is shared read-only between the cache and every hitting run.
type feasEntry struct {
	feasible bool
	copies   int
	moves    [][]bool
}

// patchEntry is the cached outcome of one rectified window: the
// optimized, support-slimmed patch AIG and its support exactly as
// installPatch hands them to installFinal (pre-sort, pre-reorder), so
// a hit replays the very same install sequence a cold recomputation
// would run — including the working-AIG edge it builds, which feeds
// the cones of later targets. Cost is NOT cached: it depends on which
// signals earlier targets in the current run already paid for and is
// recomputed on every install. The AIG is immutable once inserted and
// may be read (Transfer sources are read-only) by many runs
// concurrently.
type patchEntry struct {
	raw        *aig.AIG
	support    []string // raw (pre-sort) order
	cubes      int
	structural bool
	// patterns are the input patterns harvested while this window was
	// computed; a hit replays them into the pattern pool so pool state
	// (which keys and feeds later windows' pruning) stays identical
	// between a cold compute and a cached replay.
	patterns [][]bool
}

// appendKeyString packs a length-prefixed string into the key.
func appendKeyString(buf []uint64, s string) []uint64 {
	buf = append(buf, uint64(len(s)))
	var w uint64
	for i := 0; i < len(s); i++ {
		w = w<<8 | uint64(s[i])
		if i%8 == 7 {
			buf = append(buf, w)
			w = 0
		}
	}
	if len(s)%8 != 0 {
		buf = append(buf, w)
	}
	return buf
}

// Per-node tags of the cone encoding.
const (
	keyTagConst uint64 = 0xc0 << 56
	keyTagPI    uint64 = 0xc1 << 56
	keyTagAnd   uint64 = 0xc2 << 56
	keyTagRoots uint64 = 0xc3 << 56
)

// appendConeKey appends a canonical, position-independent encoding of
// the cones of roots in g: cone nodes are renumbered densely in
// topological order (ConeNodes returns ascending indices, and AND
// fanins always precede their node), PIs are encoded by name, and
// each root edge is appended with its complement bit.
func appendConeKey(buf []uint64, g *aig.AIG, roots []aig.Lit) []uint64 {
	nodes := g.ConeNodes(roots)
	dense := make(map[int]uint64, len(nodes))
	piPos := make(map[int]int, g.NumPIs())
	for i := 0; i < g.NumPIs(); i++ {
		piPos[g.PI(i).Node()] = i
	}
	edgeWord := func(l aig.Lit) uint64 {
		w := dense[l.Node()] << 1
		if l.Compl() {
			w |= 1
		}
		return w
	}
	for rank, idx := range nodes {
		dense[idx] = uint64(rank)
		switch {
		case g.IsConst(idx):
			buf = append(buf, keyTagConst)
		case g.IsPI(idx):
			buf = append(buf, keyTagPI)
			buf = appendKeyString(buf, g.PIName(piPos[idx]))
		default:
			f0, f1 := g.Fanins(idx)
			buf = append(buf, keyTagAnd, edgeWord(f0), edgeWord(f1))
		}
	}
	buf = append(buf, keyTagRoots, uint64(len(roots)))
	for _, r := range roots {
		buf = append(buf, edgeWord(r))
	}
	return buf
}

// appendOptionsKey fingerprints every option that can change what a
// window computes. The serial bit separates Parallelism==1 entries
// from parallel ones: serial runs must stay bit-for-bit reproducible
// and may not hit entries a parallel run produced (parallel patches
// verify but may differ from the serial ones).
func (e *engine) appendOptionsKey(buf []uint64) []uint64 {
	o := e.opt
	flags := uint64(0)
	set := func(bit uint, v bool) {
		if v {
			flags |= 1 << bit
		}
	}
	set(0, o.LastGasp)
	set(1, o.CEGARMin)
	set(2, o.FunctionalMatch)
	set(3, o.ForceStructural)
	set(4, e.par() == 1)
	// Preprocessed runs solve simplified queries and may synthesize
	// different (equally valid) patches; keep their window entries
	// apart so each mode stays reproducible against itself.
	set(5, o.Preprocess)
	// Simulation modes change which queries the solver actually sees
	// (pruned divisor sets, bank-elided re-solves), so the computed
	// patch may differ — same verdict and cost, different structure.
	// Separate bits keep every mode reproducible against itself.
	set(6, o.SimPrune)
	set(7, o.SimBank)
	// Rewritten windows feed the solver smaller (different) queries, so
	// the computed patch structure may differ — same verdict and cost.
	// Bit 8 keeps rewrite-on and rewrite-off entries apart.
	set(8, o.Rewrite)
	return append(buf,
		uint64(o.Support), uint64(o.Patch), flags,
		uint64(o.ConfBudget), uint64(o.MaxCubes), uint64(o.MaxQuantExpand),
		uint64(o.ExactTimeout))
}

// windowCache returns the window-level store, or nil when caching is
// off.
func (e *engine) windowCache() *cache.Store {
	if e.opt.Cache == nil {
		return nil
	}
	return e.opt.Cache.Window
}

// solveCache returns the captured-formula verdict cache, or nil.
func (e *engine) solveCache() *cache.SolveCache {
	if e.opt.Cache == nil {
		return nil
	}
	return e.opt.Cache.Solve
}

// feasKey builds the QBF feasibility key, or nil when caching is off.
func (e *engine) feasKey() []uint64 {
	if e.windowCache() == nil {
		return nil
	}
	buf := make([]uint64, 0, 1024)
	buf = append(buf, feasKeyVersion, uint64(e.opt.ConfBudget))
	// The verdict is rewrite-independent but the cached countermoves
	// are read off the graph the QBF solver saw; keep modes apart (the
	// marker is appended only when on, so rewrite-off keys — and any
	// persisted entries for them — are unchanged).
	if e.opt.Rewrite {
		buf = append(buf, ^uint64(0x8e817e))
	}
	// The cone encodes every reached PI by name; the explicit target
	// list pins the ∃x/∀t partition on top of that.
	buf = append(buf, uint64(len(e.targets)))
	for _, t := range e.targets {
		buf = appendKeyString(buf, t)
	}
	return appendConeKey(buf, e.w, []aig.Lit{e.fullMiter})
}

// windowKey builds the patch-cache key for target i over its cofactor
// miters, or nil when caching is off.
func (e *engine) windowKey(i int, m0, m1 aig.Lit) []uint64 {
	if e.windowCache() == nil {
		return nil
	}
	buf := make([]uint64, 0, 4096)
	buf = append(buf, windowKeyVersion)
	buf = e.appendOptionsKey(buf)
	// With pruning on, what a window computes depends on the pooled
	// patterns simulated against it; fold the pool state into the key
	// so a hit is only taken when the pruning inputs match too.
	if e.opt.SimPrune && e.patterns != nil {
		buf = e.patterns.AppendKey(buf)
	}
	buf = appendKeyString(buf, e.targets[i])
	// Divisor identity: order, names and costs; the edges themselves
	// are cone roots so divisor *functions* are part of the key too.
	buf = append(buf, uint64(len(e.divisors)))
	for _, d := range e.divisors {
		buf = appendKeyString(buf, d.name)
		buf = append(buf, uint64(int64(d.cost)))
	}
	roots := make([]aig.Lit, 0, 2+len(e.divisors))
	roots = append(roots, m0, m1)
	for _, d := range e.divisors {
		roots = append(roots, d.edge)
	}
	return appendConeKey(buf, e.w, roots)
}

// snapshotPatch captures target i's installed patch for insertion,
// using the raw (pre-sort, pre-reorder) artifacts installFinal
// recorded so a future hit replays the install exactly.
func (e *engine) snapshotPatch(i int) *patchEntry {
	return &patchEntry{
		raw:        e.rawPatchAIGs[i],
		support:    append([]string(nil), e.rawSupports[i]...),
		cubes:      e.targetPatches[i].Cubes,
		structural: e.targetPatches[i].Structural,
		patterns:   append([][]bool(nil), e.winPatterns...),
	}
}

// installCachedPatch replays a cached window entry for target i by
// running the shared install tail on the stored raw patch — the same
// code path a cold recomputation takes after synthesis, so the
// working-AIG edge, cost accounting and reported figures come out
// bit-identical. Only the SAT/synthesis work is skipped.
func (e *engine) installCachedPatch(i int, p *patchEntry) {
	if p.structural {
		e.stats.StructuralFixes++
	}
	for _, a := range p.patterns {
		e.addPattern(a)
	}
	e.installFinal(i, p.raw, append([]string(nil), p.support...), p.structural)
	e.targetPatches[i].Cubes = p.cubes
	e.logf("target %s: window cache hit |support|=%d cost=%d gates=%d structural=%v",
		e.targets[i], len(p.support), e.targetPatches[i].Cost, e.targetPatches[i].Gates, p.structural)
}
