package eco

import (
	"math/rand"
	"testing"
	"time"

	"ecopatch/internal/sat"
)

// randomUnsatWithAssumptions builds a solver whose formula is UNSAT
// under the returned assumption set but SAT without it.
func randomUnsatWithAssumptions(rng *rand.Rand) (*sat.Solver, []sat.Lit) {
	s := sat.New()
	n := 6 + rng.Intn(10)
	vars := make([]sat.Lit, n)
	for i := range vars {
		vars[i] = sat.PosLit(s.NewVar())
	}
	// Random satisfiable-ish clauses.
	for i := 0; i < 2*n; i++ {
		a := vars[rng.Intn(n)].XorSign(rng.Intn(2) == 1)
		b := vars[rng.Intn(n)].XorSign(rng.Intn(2) == 1)
		c := vars[rng.Intn(n)].XorSign(rng.Intn(2) == 1)
		s.AddClause(a, b, c)
	}
	// Force a contradiction only under assumptions: pick a subset S
	// and add a clause requiring at least one of S to be false; then
	// assume all of S true.
	k := 2 + rng.Intn(4)
	var assumps, clause []sat.Lit
	for i := 0; i < k; i++ {
		v := vars[rng.Intn(n)]
		assumps = append(assumps, v)
		clause = append(clause, v.Not())
	}
	s.AddClause(clause...)
	// Pad with irrelevant assumptions.
	for i := 0; i < n/2; i++ {
		assumps = append(assumps, vars[rng.Intn(n)].XorSign(rng.Intn(2) == 1))
	}
	// Dedupe contradictory padding (an assumption list with both l
	// and ¬l is legal but makes minimality reasoning noisy).
	seen := make(map[sat.Var]bool)
	out := assumps[:0]
	for _, a := range assumps {
		if !seen[a.Var()] {
			seen[a.Var()] = true
			out = append(out, a)
		}
	}
	return s, out
}

func TestMinimizeAssumptionsIsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	checked := 0
	for iter := 0; iter < 120; iter++ {
		s, assumps := randomUnsatWithAssumptions(rng)
		if s.Solve(assumps...) != sat.Unsat {
			continue // padding accidentally made it SAT-irrelevant
		}
		checked++
		arr := append([]sat.Lit(nil), assumps...)
		calls := 0
		m := &minimizer{s: s, calls: &calls}
		kept, err := m.minimize(arr)
		if err != nil {
			t.Fatal(err)
		}
		sel := arr[:kept]
		// (1) The kept prefix must still be UNSAT.
		if got := s.Solve(sel...); got != sat.Unsat {
			t.Fatalf("iter %d: kept set not UNSAT: %v", iter, got)
		}
		// (2) Minimality: dropping any single kept assumption makes
		// the formula satisfiable.
		for drop := 0; drop < kept; drop++ {
			sub := make([]sat.Lit, 0, kept-1)
			for j := 0; j < kept; j++ {
				if j != drop {
					sub = append(sub, sel[j])
				}
			}
			if got := s.Solve(sub...); got != sat.Sat {
				t.Fatalf("iter %d: dropping %v keeps UNSAT — not minimal", iter, sel[drop])
			}
		}
		if calls == 0 {
			t.Fatal("no SAT calls counted")
		}
	}
	if checked < 40 {
		t.Fatalf("too few valid cases: %d", checked)
	}
}

func TestMinimizeLinearAgreesOnUnsatness(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for iter := 0; iter < 60; iter++ {
		s, assumps := randomUnsatWithAssumptions(rng)
		if s.Solve(assumps...) != sat.Unsat {
			continue
		}
		arr := append([]sat.Lit(nil), assumps...)
		calls := 0
		kept, err := minimizeLinear(s, nil, arr, &calls)
		if err != nil {
			t.Fatal(err)
		}
		if calls != len(assumps) {
			t.Fatalf("linear must make exactly N calls: %d vs %d", calls, len(assumps))
		}
		if got := s.Solve(arr[:kept]...); got != sat.Unsat {
			t.Fatalf("iter %d: linear result not UNSAT", iter)
		}
	}
}

func TestMinimizeEmptyAndSingleton(t *testing.T) {
	s := sat.New()
	a := sat.PosLit(s.NewVar())
	s.AddClause(a.Not()) // ¬a holds
	m := &minimizer{s: s}
	if kept, err := m.minimize(nil); err != nil || kept != 0 {
		t.Fatalf("empty: kept=%d err=%v", kept, err)
	}
	arr := []sat.Lit{a}
	kept, err := m.minimize(arr)
	if err != nil || kept != 1 {
		t.Fatalf("needed singleton: kept=%d err=%v", kept, err)
	}
	// A formula UNSAT on its own needs no assumptions.
	s2 := sat.New()
	b := sat.PosLit(s2.NewVar())
	c := sat.PosLit(s2.NewVar())
	s2.AddClause(b)
	s2.AddClause(b.Not())
	m2 := &minimizer{s: s2}
	arr2 := []sat.Lit{c}
	kept2, err := m2.minimize(arr2)
	if err != nil || kept2 != 0 {
		t.Fatalf("globally-UNSAT singleton: kept=%d err=%v", kept2, err)
	}
}

func TestMinimizeBudgetPropagates(t *testing.T) {
	s := sat.New()
	// A hard instance under a tiny budget must surface errBudget.
	lit := make([][]sat.Lit, 9)
	for p := range lit {
		lit[p] = make([]sat.Lit, 8)
		for h := range lit[p] {
			lit[p][h] = sat.PosLit(s.NewVar())
		}
		s.AddClause(lit[p]...)
	}
	for h := 0; h < 8; h++ {
		for p1 := 0; p1 < 9; p1++ {
			for p2 := p1 + 1; p2 < 9; p2++ {
				s.AddClause(lit[p1][h].Not(), lit[p2][h].Not())
			}
		}
	}
	s.SetConfBudget(3)
	var someAssumps []sat.Lit
	for p := 0; p < 4; p++ {
		someAssumps = append(someAssumps, lit[p][0].Not())
	}
	m := &minimizer{s: s}
	if _, err := m.minimize(someAssumps); err == nil {
		t.Fatal("expected budget error")
	}
}

func TestGreedyAndExactHittingSets(t *testing.T) {
	costs := []int64{5, 1, 1, 10, 2}
	cores := [][]int{{0, 1}, {0, 2}, {3, 4}}
	sel := greedyHittingSet(cores, costs)
	if len(sel) == 0 {
		t.Fatal("greedy returned nothing")
	}
	covered := func(sel []int) bool {
		for _, c := range cores {
			hit := false
			for _, j := range c {
				for _, s := range sel {
					if s == j {
						hit = true
					}
				}
			}
			if !hit {
				return false
			}
		}
		return true
	}
	if !covered(sel) {
		t.Fatalf("greedy set %v does not cover", sel)
	}
	exact := minHittingSet(cores, costs, farFuture())
	if !covered(exact) {
		t.Fatalf("exact set %v does not cover", exact)
	}
	var cost int64
	for _, j := range exact {
		cost += costs[j]
	}
	// Optimum: {1,2,4} = 4 or {1,2}+{4}: cores {0,1},{0,2},{3,4}:
	// {0,4} costs 7; {1,2,4} costs 4 — minimum is 4.
	if cost != 4 {
		t.Fatalf("exact hitting set cost %d, want 4 (%v)", cost, exact)
	}
}

func TestMinHittingSetRandomOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for iter := 0; iter < 100; iter++ {
		nVar := 3 + rng.Intn(6)
		costs := make([]int64, nVar)
		for i := range costs {
			costs[i] = int64(1 + rng.Intn(9))
		}
		nCores := 1 + rng.Intn(5)
		cores := make([][]int, nCores)
		for i := range cores {
			k := 1 + rng.Intn(3)
			seen := map[int]bool{}
			for len(cores[i]) < k {
				j := rng.Intn(nVar)
				if !seen[j] {
					seen[j] = true
					cores[i] = append(cores[i], j)
				}
			}
		}
		got := minHittingSet(cores, costs, farFuture())
		var gotCost int64
		for _, j := range got {
			gotCost = gotCost + costs[j]
		}
		// Brute force.
		best := int64(1) << 60
		for mask := 0; mask < 1<<uint(nVar); mask++ {
			ok := true
			for _, c := range cores {
				hit := false
				for _, j := range c {
					if mask>>uint(j)&1 == 1 {
						hit = true
						break
					}
				}
				if !hit {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			var w int64
			for j := 0; j < nVar; j++ {
				if mask>>uint(j)&1 == 1 {
					w += costs[j]
				}
			}
			if w < best {
				best = w
			}
		}
		if gotCost != best {
			t.Fatalf("iter %d: B&B cost %d != brute force %d (cores %v costs %v)",
				iter, gotCost, best, cores, costs)
		}
	}
}

// farFuture returns a deadline that never expires during tests.
func farFuture() time.Time { return time.Now().Add(time.Hour) }
