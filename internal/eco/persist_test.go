package eco

import (
	"path/filepath"
	"testing"

	"ecopatch/internal/cache"
	"ecopatch/internal/persist"
)

// TestPersistedCacheDeterminism extends the cache determinism
// contract across a disk round trip: at Parallelism=1 a run served
// from a persisted cache (save -> load into a fresh cache) must be
// bit-for-bit identical to both the in-memory warm run and the
// uncached cold reference. A disk detour may change wall clock only —
// never verdicts, costs, or netlists.
func TestPersistedCacheDeterminism(t *testing.T) {
	for name, tc := range parallelCases(t) {
		t.Run(name, func(t *testing.T) {
			base := tc.opt
			base.Parallelism = 1

			// Cold reference: no cache at all.
			ref, err := Solve(tc.inst, base)
			if err != nil {
				t.Fatal(err)
			}
			want := snapshotResult(ref)

			// Populate an in-memory cache and confirm the warm run
			// matches before anything touches disk.
			warm := cache.New(1024)
			opt := base
			opt.Cache = warm
			if _, err := Solve(tc.inst, opt); err != nil {
				t.Fatal(err)
			}
			res, err := Solve(tc.inst, opt)
			if err != nil {
				t.Fatal(err)
			}
			if got := snapshotResult(res); got != want {
				t.Fatalf("in-memory warm run diverged:\nwant:\n%s\ngot:\n%s", want, got)
			}
			if res.Stats.CacheHits == 0 {
				t.Fatal("in-memory warm run recorded no cache hits")
			}

			// Round-trip the solve cache through a file into a fresh
			// cache, as ecobench -cache-file does between processes.
			// Some cases exercise only the window cache (which is
			// deliberately not persisted) — for those the file round
			// trip is empty but determinism must still hold.
			path := filepath.Join(t.TempDir(), "solve.cache")
			saved, err := persist.SaveSolveCacheFile(path, warm.Solve)
			if err != nil {
				t.Fatal(err)
			}
			if saved != warm.Solve.Stats().Entries {
				t.Fatalf("saved %d entries, cache holds %d", saved, warm.Solve.Stats().Entries)
			}
			fresh := cache.New(1024)
			restored, skipped, err := persist.LoadSolveCacheFile(path, fresh.Solve)
			if err != nil {
				t.Fatal(err)
			}
			if restored != saved || skipped != 0 {
				t.Fatalf("restored %d/%d entries (%d skipped)", restored, saved, skipped)
			}

			opt.Cache = fresh
			res, err = Solve(tc.inst, opt)
			if err != nil {
				t.Fatal(err)
			}
			if got := snapshotResult(res); got != want {
				t.Fatalf("persisted-cache run diverged from cold reference:\nwant:\n%s\ngot:\n%s", want, got)
			}
			if restored > 0 && res.Stats.CacheHits == 0 {
				t.Fatal("persisted-cache run recorded no solve cache hits")
			}
		})
	}
}
