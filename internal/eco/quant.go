package eco

import (
	"ecopatch/internal/aig"
	"ecopatch/internal/cache"
	"ecopatch/internal/cnf"
	"ecopatch/internal/qbf"
	"ecopatch/internal/sat"
)

// modelOf reads the full model of a satisfied solver, indexed by
// capture variable, for insertion into the solve cache.
func modelOf(s *sat.Solver, nVars int) []bool {
	m := make([]bool, nVars)
	for v := range m {
		m[v] = s.ModelBool(sat.PosLit(sat.Var(v)))
	}
	return m
}

// selfPIMap returns the identity PI map of the working AIG.
func (e *engine) selfPIMap() []aig.Lit {
	m := make([]aig.Lit, e.w.NumPIs())
	for i := range m {
		m[i] = e.w.PI(i)
	}
	return m
}

// checkFeasible decides expression (1): the target set is sufficient
// iff ∃x ∀t M(t,x) is false. Per §3.2, a budget-exhausted check is
// treated as "assume feasible" — the structural path plus final
// verification covers the optimistic guess.
func (e *engine) checkFeasible() (bool, error) {
	k := len(e.tPIs)
	if e.opt.UseQBF || k > e.opt.MaxQuantExpand {
		// Window cache: the outcome — including the countermoves that
		// drive move-guided quantification downstream — is keyed by the
		// canonical cone of the full miter plus the target partition.
		key := e.feasKey()
		if key != nil {
			if v, ok, coll := e.opt.Cache.Window.Lookup(key); ok {
				fe := v.(*feasEntry)
				e.stats.CacheHits++
				e.stats.CacheCollisions += int64(coll)
				e.stats.QBFCopies = fe.copies
				e.moves = fe.moves
				if !fe.feasible {
					e.logf("infeasible: input witness found for ∃x∀t M(t,x) (cached)")
				}
				return fe.feasible, nil
			} else {
				e.stats.CacheMisses++
				e.stats.CacheCollisions += int64(coll)
			}
		}
		// With rewriting on, the 2QBF solver reads the optimized miter
		// extraction; xPIs/tPIs are PI positions and the extraction
		// preserves the PI interface, so the partition carries over.
		fg, fm := e.rewriteFeas()
		r, err := qbf.Solve(fg, fm, e.xPIs, e.tPIs, qbf.Options{
			ConfBudget: e.opt.ConfBudget,
			OnSolver:   e.group.add,
		})
		if err != nil {
			// A give-up is not a fact about the instance; never cached.
			e.logf("feasibility qbf gave up (%v); assuming feasible", err)
			return true, nil
		}
		e.stats.QBFCopies = r.Copies
		e.moves = r.Moves
		if key != nil && !e.cancelled() {
			e.opt.Cache.Window.Insert(key, &feasEntry{feasible: !r.Holds, copies: r.Copies, moves: r.Moves})
		}
		if r.Holds {
			e.logf("infeasible: input witness found for ∃x∀t M(t,x)")
		}
		return !r.Holds, nil
	}
	// Cofactor-expansion check: ∀-quantify all targets, then one SAT
	// call (combinational-equivalence style). With rewriting on, the
	// expansion runs over the optimized miter extraction — the cofactor
	// copies and the encoded formula shrink with it.
	fg, fm := e.rewriteFeas()
	quant := aig.UnivQuant(fg, fg, identityPIMap(fg), e.tPIs, []aig.Lit{fm})[0]
	e.stats.MiterCopies += 1 << uint(k)
	if quant == aig.ConstFalse {
		return true, nil
	}
	// The solve cache keys on the captured encoding; capture is also
	// what the portfolio and preprocessing paths need, and at
	// Parallelism=1 replaying the capture into a fresh solver is
	// bit-identical to encoding into it directly (the Formula replay
	// contract). With preprocessing on, the query is simplified once —
	// shared by every portfolio member — and the cache keys on the
	// post-preprocess formula. No variable is frozen: the check solves
	// without assumptions and the model is reconstruction-extended
	// before it is cached.
	useCache := e.solveCache() != nil
	var f *cnf.Formula
	var rec *sat.Reconstruction
	prepUnsat := false
	if e.par() > 1 || useCache || e.opt.Preprocess {
		f = &cnf.Formula{}
		enc := cnf.NewEncoder(f, fg)
		f.AddClause(enc.Lit(quant))
		if e.opt.Preprocess {
			pp := e.preprocess(f, nil)
			f, rec, prepUnsat = pp.F, pp.Rec, pp.Unsat
		}
	}
	var st sat.Status
	cached := false
	if prepUnsat {
		// Preprocessing refuted the query outright; skip the cache (the
		// verdict is free to recompute) and the solve.
		st = sat.Unsat
		cached = true
	}
	if !cached && useCache {
		if v, ok, coll := e.opt.Cache.Solve.Lookup(f, nil); ok {
			e.stats.CacheHits++
			e.stats.CacheCollisions += int64(coll)
			st = v.Status
			cached = true
		} else {
			e.stats.CacheMisses++
			e.stats.CacheCollisions += int64(coll)
		}
	}
	if !cached {
		var model []bool
		if e.par() > 1 {
			// Race the quantified check across the portfolio: capture
			// the encoding once, replay it into every member.
			p := e.newPortfolio(f)
			e.stats.SATCalls++
			st = p.Solve()
			e.recordRace(p)
			if st == sat.Sat {
				model = modelOf(p.Winner(), f.NumVars())
			}
		} else if f != nil {
			s := e.newSolver()
			f.LoadInto(s)
			e.stats.SATCalls++
			st = s.Solve()
			if st == sat.Sat {
				model = modelOf(s, f.NumVars())
			}
		} else {
			s := e.newSolver()
			enc := cnf.NewEncoder(s, fg)
			s.AddClause(enc.Lit(quant))
			e.stats.SATCalls++
			st = s.Solve()
		}
		if useCache {
			if model != nil {
				// With preprocessing on, extend the model first so the
				// cached witness is valid for the original encoding too.
				rec.Extend(model)
			}
			e.opt.Cache.Solve.Insert(f, nil, cache.Verdict{Status: st, Model: model})
		}
	}
	switch st {
	case sat.Sat:
		return false, nil
	case sat.Unsat:
		return true, nil
	case sat.Unknown:
		// Budget exhausted or interrupted: per §3.2, guess feasible
		// and let final verification vet the optimistic answer.
		e.logf("feasibility SAT gave up; assuming feasible")
		return true, nil
	default:
		return true, nil
	}
}

// quantAssignments chooses the cofactor assignments used to
// universally quantify the remaining targets for target i. Full 2^r
// expansion up to MaxQuantExpand; beyond it (unless a retry forces
// full expansion) the distinct projections of the QBF countermoves
// stand in for the full set — the move-guided construction of §3.6.2.
func (e *engine) quantAssignments(remaining []int) ([][]bool, bool) {
	r := len(remaining)
	if r == 0 {
		return [][]bool{nil}, false
	}
	full := func() [][]bool {
		out := make([][]bool, 0, 1<<uint(r))
		for m := 0; m < 1<<uint(r); m++ {
			a := make([]bool, r)
			for j := 0; j < r; j++ {
				a[j] = m>>uint(j)&1 == 1
			}
			out = append(out, a)
		}
		return out
	}
	if r <= e.opt.MaxQuantExpand || e.fullQuantForced || len(e.moves) == 0 {
		return full(), false
	}
	// Project countermoves onto the remaining targets and dedupe.
	seen := make(map[string]bool)
	var out [][]bool
	add := func(a []bool) {
		key := make([]byte, r)
		for j, v := range a {
			if v {
				key[j] = '1'
			} else {
				key[j] = '0'
			}
		}
		if !seen[string(key)] {
			seen[string(key)] = true
			out = append(out, a)
		}
	}
	for _, mv := range e.moves {
		a := make([]bool, r)
		for j, ti := range remaining {
			a[j] = mv[ti]
		}
		add(a)
	}
	// Always include the all-zero and all-one cofactors for a bit of
	// robustness.
	add(make([]bool, r))
	ones := make([]bool, r)
	for j := range ones {
		ones[j] = true
	}
	add(ones)
	return out, true
}

// cofactorMiters builds M_i(0,x) and M_i(1,x) for target i: patches
// already computed are substituted, remaining targets are universally
// quantified (Theorem 1, §3.1).
func (e *engine) cofactorMiters(i int) (m0, m1 aig.Lit) {
	var remaining []int
	for j := range e.targets {
		if j != i && !e.done[j] {
			remaining = append(remaining, j)
		}
	}
	assigns, guided := e.quantAssignments(remaining)
	if guided {
		e.moveGuided = true
	}
	base := e.selfPIMap()
	for j := range e.targets {
		if e.done[j] {
			base[e.tPIs[j]] = e.patches[j]
		}
	}
	mi := aig.ConstTrue
	for _, a := range assigns {
		piMap := append([]aig.Lit(nil), base...)
		for j, ti := range remaining {
			if a[j] {
				piMap[e.tPIs[ti]] = aig.ConstTrue
			} else {
				piMap[e.tPIs[ti]] = aig.ConstFalse
			}
		}
		co := aig.Transfer(e.w, e.w, piMap, []aig.Lit{e.miter})[0]
		mi = e.w.And(mi, co)
		e.stats.MiterCopies++
	}
	// Cofactor on the target itself.
	pm := e.selfPIMap()
	pm[e.tPIs[i]] = aig.ConstFalse
	m0 = aig.Transfer(e.w, e.w, pm, []aig.Lit{mi})[0]
	pm[e.tPIs[i]] = aig.ConstTrue
	m1 = aig.Transfer(e.w, e.w, pm, []aig.Lit{mi})[0]
	return m0, m1
}
