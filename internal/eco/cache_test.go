package eco

import (
	"fmt"
	"testing"

	"ecopatch/internal/cache"
)

// snapshotResult flattens everything a cache hit could plausibly
// corrupt: verdicts, costs, patch structure, and the synthesized
// netlist text.
func snapshotResult(res *Result) string {
	return fmt.Sprintf("feasible=%v verified=%v cost=%d gates=%d patches=%+v netlist:\n%s",
		res.Feasible, res.Verified, res.TotalCost, res.TotalGates, res.Patches, res.Patch)
}

// TestCacheDeterminism pins the tentpole contract: at Parallelism=1 a
// run with an empty cache, a run reusing a warm cache, and a run with
// no cache at all are bit-for-bit identical — cache hits change wall
// clock only, never verdicts, costs, or netlists.
func TestCacheDeterminism(t *testing.T) {
	for name, tc := range parallelCases(t) {
		t.Run(name, func(t *testing.T) {
			base := tc.opt
			base.Parallelism = 1

			// Reference: no cache.
			ref, err := Solve(tc.inst, base)
			if err != nil {
				t.Fatal(err)
			}
			want := snapshotResult(ref)
			if ref.Stats.CacheHits != 0 || ref.Stats.CacheMisses != 0 {
				t.Fatalf("cache counters without a cache: %+v", ref.Stats)
			}

			// Cold pass populates, warm pass reuses, third pass checks
			// the warm state is itself stable.
			c := cache.New(1024)
			opt := base
			opt.Cache = c
			var warmHits int64
			for run := 0; run < 3; run++ {
				res, err := Solve(tc.inst, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got := snapshotResult(res); got != want {
					t.Fatalf("run %d diverged from uncached reference:\nwant:\n%s\ngot:\n%s", run, want, got)
				}
				if run == 0 && res.Stats.CacheMisses == 0 {
					t.Fatal("cold run recorded no cache misses")
				}
				if run > 0 {
					warmHits = res.Stats.CacheHits
					if warmHits == 0 {
						t.Fatalf("warm run %d recorded no cache hits", run)
					}
					if res.Stats.CacheCollisions != 0 {
						t.Fatalf("warm run %d screened %d collisions on a tiny corpus",
							run, res.Stats.CacheCollisions)
					}
				}
			}
			if st := c.Stats(); st.Hits == 0 {
				t.Fatalf("shared cache recorded no hits: %+v", st)
			}
		})
	}
}

// TestCacheSerialParallelSeparation pins the options-key rule that a
// serial run never consumes entries produced by a parallel run: the
// serial pass after a parallel pass must still be identical to the
// uncached serial reference.
func TestCacheSerialParallelSeparation(t *testing.T) {
	tc := parallelCases(t)["multi"]
	base := tc.opt
	base.Parallelism = 1
	ref, err := Solve(tc.inst, base)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotResult(ref)

	c := cache.New(1024)
	par := base
	par.Parallelism = 2
	par.Cache = c
	if _, err := Solve(tc.inst, par); err != nil {
		t.Fatal(err)
	}

	serial := base
	serial.Cache = c
	res, err := Solve(tc.inst, serial)
	if err != nil {
		t.Fatal(err)
	}
	if got := snapshotResult(res); got != want {
		t.Fatalf("serial run after parallel warm-up diverged:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestCacheSharedAcrossInstances runs two different instances through
// one cache: entries of one must never leak into the other.
func TestCacheSharedAcrossInstances(t *testing.T) {
	cases := parallelCases(t)
	c := cache.New(1024)
	want := make(map[string]string)
	for name, tc := range cases {
		opt := tc.opt
		opt.Parallelism = 1
		res, err := Solve(tc.inst, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want[name] = snapshotResult(res)
	}
	// Two interleaved passes over all instances against the shared
	// cache; the second pass hits entries from the first.
	for pass := 0; pass < 2; pass++ {
		for name, tc := range cases {
			opt := tc.opt
			opt.Parallelism = 1
			opt.Cache = c
			res, err := Solve(tc.inst, opt)
			if err != nil {
				t.Fatalf("%s pass %d: %v", name, pass, err)
			}
			if got := snapshotResult(res); got != want[name] {
				t.Fatalf("%s pass %d diverged under shared cache:\nwant:\n%s\ngot:\n%s",
					name, pass, want[name], got)
			}
		}
	}
	if st := c.Stats(); st.Hits == 0 {
		t.Fatalf("shared cache never hit: %+v", st)
	}
}
