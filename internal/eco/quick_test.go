package eco

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickSolveAlwaysVerifiesOrRefutes is the end-to-end engine
// property: on any random tiny instance, Solve either proves
// infeasibility or produces a patch that passes both the internal and
// the independent (netlist-splice) verification, under every support
// algorithm.
func TestQuickSolveAlwaysVerifiesOrRefutes(t *testing.T) {
	algos := []SupportAlgo{SupportAnalyzeFinal, SupportMinimize, SupportExact}
	f := func(seed int64, algoPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomTinyInstance(t, rng)
		if inst == nil {
			return true
		}
		opt := DefaultOptions()
		opt.Support = algos[int(algoPick)%len(algos)]
		res, err := Solve(inst, opt)
		if err != nil {
			return false
		}
		if !res.Feasible {
			return true // refutation is a legitimate outcome
		}
		if !res.Verified {
			return false
		}
		ok, err := VerifyPatch(inst, res.Patch)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCostMonotonicity: the exact algorithm never produces a
// costlier result than minimize_assumptions on single-target
// instances (it is a strict refinement there).
func TestQuickCostMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomTinyInstance(t, rng)
		if inst == nil {
			return true
		}
		optM := DefaultOptions()
		optM.Support = SupportMinimize
		resM, err := Solve(inst, optM)
		if err != nil || !resM.Feasible {
			return err == nil
		}
		optE := DefaultOptions()
		optE.Support = SupportExact
		resE, err := Solve(inst, optE)
		if err != nil {
			return false
		}
		return resE.TotalCost <= resM.TotalCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
