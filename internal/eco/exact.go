package eco

import (
	"fmt"
	"sort"
	"time"

	"ecopatch/internal/sat"
)

// exactSupport implements SAT-prune (§3.4.2): an exact minimum-cost
// support for the current target. The paper describes one solver that
// alternately blocks cost-dominated and infeasible divisor subsets
// until UNSAT; this is realized here as the equivalent implicit
// hitting-set loop:
//
//   - an exact branch-and-bound hitting-set enumerator proposes the
//     cheapest divisor subset hitting all known "cores";
//   - a SAT call on expression (2) checks whether the subset can
//     express the patch;
//   - an infeasible subset yields a new core from the SAT model: the
//     divisors outside the subset that distinguish the discovered
//     onset/offset pair (any sufficient support must contain one).
//
// When the proposal is feasible it is provably cost-minimum: every
// feasible support hits all cores, and the proposal is the cheapest
// hitting set.
func (e *engine) exactSupport(s *sat.Solver, fixed []sat.Lit, divs []divisor,
	auxs []sat.Lit, d1s, d2s []sat.Lit) ([]int, error) {
	costs := make([]int64, len(divs))
	for j := range divs {
		costs[j] = int64(divs[j].cost)
	}
	timeout := e.opt.ExactTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	var cores [][]int
	const maxIters = 4000
	for iter := 0; iter < maxIters; iter++ {
		if time.Now().After(deadline) {
			return nil, errBudget
		}
		sel := minHittingSet(cores, costs, deadline)
		assumps := append([]sat.Lit(nil), fixed...)
		for _, j := range sel {
			assumps = append(assumps, auxs[j])
		}
		e.stats.SATCalls++
		fromBank := -1
		if e.winBank != nil {
			fromBank = e.winBank.Find(assumps)
		}
		if fromBank >= 0 {
			// A banked model already witnesses this subset's
			// infeasibility; its divisor values yield the core below.
			// Termination holds: the derived core forces every later
			// hitting set to include a divisor whose copies differ on
			// this pattern, so its (strengthened) aux bit is false and
			// the same pattern can never re-answer.
			e.stats.SimElided++
		} else {
			switch s.Solve(assumps...) {
			case sat.Unsat:
				sort.Ints(sel)
				return sel, nil
			case sat.Unknown:
				return nil, errBudget
			}
			e.bankModel(s)
		}
		// Infeasible: derive a core from the model. The model exposes
		// an onset/offset pair agreeing on sel; a valid support must
		// include some divisor distinguishing the pair.
		inSel := make(map[int]bool, len(sel))
		for _, j := range sel {
			inSel[j] = true
		}
		var core []int
		for j := range divs {
			if inSel[j] {
				continue
			}
			var differ bool
			if fromBank >= 0 {
				differ = e.winBank.Bit(d1s[j], fromBank) != e.winBank.Bit(d2s[j], fromBank)
			} else {
				differ = s.ModelBool(d1s[j]) != s.ModelBool(d2s[j])
			}
			if differ {
				core = append(core, j)
			}
		}
		if len(core) == 0 {
			return nil, fmt.Errorf("eco: SAT_prune found no distinguishing divisor (full set insufficient)")
		}
		cores = append(cores, core)
	}
	return nil, errBudget
}

// minHittingSet computes a minimum-cost hitting set of the cores by
// branch and bound with a disjoint-core lower bound. With no cores
// the empty set is returned. When the deadline expires mid-search the
// best set found so far (completed greedily if necessary) is returned;
// the outer loop's own deadline check then converts the lost
// optimality guarantee into the documented degrade path.
func minHittingSet(cores [][]int, costs []int64, deadline time.Time) []int {
	if len(cores) == 0 {
		return nil
	}
	var best []int
	bestCost := int64(1) << 62
	chosen := make(map[int]bool)
	nodes := 0
	expired := false

	snapshot := func(costSoFar int64) {
		best = best[:0]
		for j, on := range chosen {
			if on {
				best = append(best, j)
			}
		}
		best = append([]int(nil), best...)
		bestCost = costSoFar
	}

	// uncovered returns the smallest uncovered core and a lower bound
	// from greedily collected disjoint uncovered cores.
	uncovered := func() (pick []int, lb int64) {
		usedVar := make(map[int]bool)
		for _, c := range cores {
			hit := false
			for _, j := range c {
				if chosen[j] {
					hit = true
					break
				}
			}
			if hit {
				continue
			}
			if pick == nil || len(c) < len(pick) {
				pick = c
			}
			disjoint := true
			minC := int64(1) << 62
			for _, j := range c {
				if usedVar[j] {
					disjoint = false
					break
				}
				if costs[j] < minC {
					minC = costs[j]
				}
			}
			if disjoint {
				lb += minC
				for _, j := range c {
					usedVar[j] = true
				}
			}
		}
		return pick, lb
	}

	var rec func(costSoFar int64)
	rec = func(costSoFar int64) {
		nodes++
		if expired || costSoFar >= bestCost {
			return
		}
		if nodes&1023 == 0 && time.Now().After(deadline) {
			expired = true
			return
		}
		pick, lb := uncovered()
		if pick == nil {
			snapshot(costSoFar)
			return
		}
		if costSoFar+lb >= bestCost {
			return
		}
		order := append([]int(nil), pick...)
		sort.Slice(order, func(a, b int) bool { return costs[order[a]] < costs[order[b]] })
		for _, j := range order {
			if chosen[j] {
				continue
			}
			chosen[j] = true
			rec(costSoFar + costs[j])
			chosen[j] = false
		}
	}
	// Seed the bound with a greedy solution so pruning bites early.
	greedy := greedyHittingSet(cores, costs)
	for _, j := range greedy {
		chosen[j] = true
	}
	var gc int64
	for _, j := range greedy {
		gc += costs[j]
	}
	snapshot(gc)
	for _, j := range greedy {
		chosen[j] = false
	}
	rec(0)
	sort.Ints(best)
	return best
}

// greedyHittingSet repeatedly picks the element covering the most
// uncovered cores per unit cost.
func greedyHittingSet(cores [][]int, costs []int64) []int {
	covered := make([]bool, len(cores))
	var out []int
	for {
		gain := make(map[int]float64)
		remaining := 0
		for ci, c := range cores {
			if covered[ci] {
				continue
			}
			remaining++
			for _, j := range c {
				w := costs[j]
				if w <= 0 {
					w = 1
				}
				gain[j] += 1 / float64(w)
			}
		}
		if remaining == 0 {
			return out
		}
		bestJ, bestG := -1, -1.0
		for j, g := range gain {
			if g > bestG || (g == bestG && j < bestJ) {
				bestJ, bestG = j, g
			}
		}
		out = append(out, bestJ)
		for ci, c := range cores {
			if covered[ci] {
				continue
			}
			for _, j := range c {
				if j == bestJ {
					covered[ci] = true
					break
				}
			}
		}
	}
}
