package eco

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"ecopatch/internal/aig"
	"ecopatch/internal/cache"
	"ecopatch/internal/cnf"
	"ecopatch/internal/netlist"
	"ecopatch/internal/sat"
	"ecopatch/internal/sim"
)

// SupportAlgo selects the patch-support minimization algorithm (§3.4).
type SupportAlgo int

// Support algorithms, in increasing effort order.
const (
	// SupportAnalyzeFinal uses the raw assumption core returned by
	// the SAT solver (MiniSat analyze_final) — the paper's baseline,
	// Table 1 columns 7–9.
	SupportAnalyzeFinal SupportAlgo = iota
	// SupportMinimize runs the minimize_assumptions procedure of
	// Algorithm 1 — Table 1 columns 10–12 (contest winner).
	SupportMinimize
	// SupportExact runs SAT-prune, the exact minimum-cost support
	// computation of §3.4.2 — Table 1 columns 13–15.
	SupportExact
)

func (a SupportAlgo) String() string {
	switch a {
	case SupportAnalyzeFinal:
		return "analyze_final"
	case SupportMinimize:
		return "minimize_assumptions"
	case SupportExact:
		return "SAT_prune"
	}
	return "unknown"
}

// PatchMethod selects how the patch function is derived once the
// support is known.
type PatchMethod int

// Patch computation methods.
const (
	// PatchCubeEnum enumerates prime cubes with the SAT solver (§3.5).
	PatchCubeEnum PatchMethod = iota
	// PatchInterpolation computes a Craig interpolant from the proof
	// of expression (3) — the prior-work [15] baseline.
	PatchInterpolation
)

func (m PatchMethod) String() string {
	if m == PatchInterpolation {
		return "interpolation"
	}
	return "cube_enumeration"
}

// Options configures the engine. The zero value is NOT the default;
// use DefaultOptions.
type Options struct {
	Support SupportAlgo
	Patch   PatchMethod

	// Window enables structural pruning (§3.3). Disabling it is the
	// E9 ablation: divisors and miter outputs span the whole netlist.
	Window bool
	// LastGasp enables the greedy divisor-replacement pass after
	// support minimization (§3.4.1, last paragraph).
	LastGasp bool
	// CEGARMin enables max-flow/min-cut improvement of structural
	// patches (§3.6.3).
	CEGARMin bool
	// FunctionalMatch extends CEGAR_min's equivalence detection from
	// structural (shared AIG nodes) to functional: candidate pairs
	// are found by 256-bit simulation signatures and confirmed by
	// SAT, the "functional resubstitution" variant of §3.6.3.
	FunctionalMatch bool
	// UseQBF validates target sufficiency with the 2QBF CEGAR solver
	// and reuses its countermoves for move-guided structural patches
	// (§3.2 alternative and §3.6.2). When false, sufficiency is
	// checked by cofactor expansion.
	UseQBF bool
	// ForceStructural skips SAT-based patch computation entirely,
	// exercising the timeout path of §3.6 deterministically.
	ForceStructural bool

	// ConfBudget caps SAT conflicts per call; exceeding it triggers
	// the structural fallback, like the paper's timeouts. <=0 means
	// unlimited.
	ConfBudget int64
	// MaxQuantExpand caps the number of remaining targets quantified
	// by full 2^r cofactor expansion; beyond it the engine uses the
	// QBF countermoves (move-guided quantification). Default 8.
	MaxQuantExpand int
	// MaxCubes caps cube enumeration per target before falling back
	// to the structural method. Default 20000.
	MaxCubes int
	// ExactTimeout caps the wall-clock time of the SAT_prune
	// hitting-set search per target; on expiry the engine degrades to
	// minimize_assumptions (mirroring the paper's observation that
	// SAT_prune trades scalability for quality). Default 30s.
	ExactTimeout time.Duration
	// Parallelism bounds intra-solve parallelism. When >1, the hard
	// SAT queries — feasibility by cofactor expansion and each
	// target's expression-(2) check — race a portfolio of up to
	// Parallelism diversified solvers with clause sharing, final
	// verification shards its output pairs across Parallelism
	// workers, and functional matching batches its SAT confirmations
	// across the same worker count. 0 picks runtime.GOMAXPROCS(0);
	// 1 reproduces the serial engine bit for bit. Verdicts (feasible,
	// verified) are independent of the setting; at >1 the computed
	// patches may differ from the serial ones but always verify.
	Parallelism int

	// Preprocess enables SatELite-style CNF simplification (bounded
	// variable elimination, subsumption with self-subsuming resolution,
	// clause vivification and failed-literal probing) on every captured
	// SAT query: the cofactor feasibility check, each target's
	// expression-(2) encoding, and the final verification shards. The
	// formula is simplified once per query and shared by every
	// portfolio member; assumption and model-readback variables are
	// frozen so incremental follow-ups stay exact, and eliminated
	// variables are re-derived by the reconstruction stack before any
	// model is consumed. Verdicts are unchanged; at Parallelism=1 a
	// preprocessed run is bit-for-bit reproducible (against itself —
	// the simplified queries differ from unpreprocessed ones, so the
	// caches key on the post-preprocess formula and never mix modes).
	// Incompatible with PatchInterpolation: interpolation needs a
	// resolution proof over the original clauses, so Solve returns
	// ErrPrepWithProofs for that combination.
	Preprocess bool

	// SimBank enables pattern-bank SAT-call elision: every full model
	// produced by a window's satisfiable queries is banked as a
	// 64-packed pattern over the encoding's assumption and read-back
	// literals, and assumption-only re-solves (support minimization,
	// last-gasp probes, SAT_prune subset checks) first look for a
	// banked model satisfying all assumptions — a hit answers Sat with
	// zero solver work. Sound because those queries add no clauses, so
	// banked models remain models; the bank is discarded before cube
	// enumeration (which adds blocking clauses) and at every window
	// boundary. Verdicts and patch costs are unchanged — elision
	// preserves each query's status — but patch structure may differ
	// from a sim-off run (the solver sees fewer queries), so window
	// cache entries are keyed per mode.
	SimBank bool
	// SimPrune enables simulation-guided divisor pruning: before the
	// expression-(2) feasibility encoding, the window is simulated with
	// pooled counterexample patterns plus random patterns, and divisors
	// whose signatures are constant or duplicate a cheaper divisor's
	// (up to complement) are dropped. UNSAT on the pruned set is a
	// valid, cheaper-to-encode patch basis; Sat falls back to the full
	// set, so feasibility verdicts are unchanged by construction.
	SimPrune bool

	// Rewrite enables DAG-aware cut-based AIG rewriting (aig.Optimize)
	// on every miter before it reaches a solver: the feasibility miter
	// (QBF or cofactor-expansion path) and each window's two-copy
	// cofactor miters plus divisor cones are transferred into a fresh
	// PI-interface-preserving graph, shrunk, and encoded from there.
	// Verdicts and patch costs are unchanged — rewriting is
	// equivalence-preserving and the pass is deterministic, so p=1 runs
	// stay bit-for-bit reproducible against themselves — but solvers
	// see smaller formulas. Window cache entries are keyed per mode
	// (options-key bit 8): the solver sees different queries, so the
	// computed patch structure may differ from a rewrite-off run's.
	Rewrite bool

	// Cache, when non-nil, memoizes solve work across (and within)
	// runs: CEC pair-check and cofactor-feasibility verdicts by
	// captured-formula hash, QBF feasibility outcomes and per-target
	// patch functions by a canonical cone encoding. Every hit is
	// collision-screened by full content comparison before it is
	// trusted. A hit never changes a verdict, and at Parallelism=1 a
	// cached run produces bit-for-bit the same patches as an uncached
	// one — hits only skip work, so Stats work counters (SAT calls,
	// cubes, conflicts) reflect the work actually performed. The same
	// Cache may be shared by concurrent solves. Nil disables caching.
	Cache *cache.Cache

	// Timeout caps the wall-clock time of the whole solve. On expiry
	// every active SAT solver is interrupted and the engine stops at
	// the next stage boundary (target, support/patch phase, or the
	// final verification): in-flight SAT work returns Unknown, no new
	// stage is started, and the result comes back with TimedOut set,
	// stats intact. Zero means no limit. SolveContext offers the same
	// mechanism for caller-supplied contexts.
	Timeout time.Duration

	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// DefaultOptions returns the configuration matching the paper's
// best flow (minimize_assumptions + cube enumeration + windowing).
func DefaultOptions() Options {
	return Options{
		Support:         SupportMinimize,
		Patch:           PatchCubeEnum,
		Window:          true,
		LastGasp:        true,
		CEGARMin:        true,
		FunctionalMatch: true,
		UseQBF:          true,
		MaxQuantExpand:  8,
		MaxCubes:        20000,
		ExactTimeout:    30 * time.Second,
	}
}

// TargetPatch describes the patch computed for one target.
type TargetPatch struct {
	Target     string
	Support    []string // impl signal names feeding the patch
	Cost       int      // sum of support weights (each signal counted once globally)
	Gates      int      // AND nodes of the factored patch cone
	Cubes      int      // SOP cubes (0 for structural patches)
	Structural bool     // true when derived by the §3.6 fallback
}

// Stats aggregates engine counters for the experiment harness.
type Stats struct {
	// SATCalls counts every top-level engine query: each one is either
	// answered by a solver or elided by the simulation pattern bank, so
	// the invariant SATCalls = solver-answered + SimElided holds and
	// sim-on/sim-off runs report comparable query totals. (The raw
	// kernel counter Solver.SolveCalls counts only actual solver
	// invocations, including the minimizer's — those are additionally
	// broken out in MinimizeCalls.)
	SATCalls        int64
	Conflicts       int64
	MinimizeCalls   int // SAT calls spent inside support minimization
	MiterCopies     int // cofactor copies built for universal quantification
	QBFCopies       int // copies used by the 2QBF CEGAR check
	Divisors        int // candidate divisors offered to support selection
	WindowPOs       int // outputs kept by structural pruning
	StructuralFixes int // targets patched by the structural fallback
	CubesEnumerated int

	// Simulation-layer counters (zero unless Options.SimBank/SimPrune):
	// queries answered from the pattern bank without a solver, divisors
	// dropped by simulation-guided pruning on successfully pruned
	// windows, and patterns captured (banked models plus pooled input
	// patterns).
	SimElided   int64
	SimPruned   int64
	SimPatterns int64

	// Rewriting-layer counters (zero unless Options.Rewrite): AND-node
	// totals of every rewritten miter cone before and after the pass,
	// and the wall clock the pass consumed.
	RewriteNodesBefore int64
	RewriteNodesAfter  int64
	RewriteTime        time.Duration

	// Cache traffic (zero unless Options.Cache was set): queries
	// served from the solve/window caches, queries computed fresh, and
	// hash collisions screened out by full content comparison. An
	// unscreened hit cannot happen, so CacheCollisions counts averted
	// wrong answers, not served ones.
	CacheHits       int64
	CacheMisses     int64
	CacheCollisions int64

	// PortfolioRaces counts SAT queries raced across the diversified
	// portfolio (Parallelism > 1 only); PortfolioWins counts, per
	// member configuration label, how many races that config decided.
	PortfolioRaces int64
	PortfolioWins  map[string]int64

	// Per-stage wall clock, summed over all targets, for the
	// machine-readable perf trajectory (ecobench -json).
	SupportTime time.Duration // support selection incl. last-gasp
	PatchTime   time.Duration // patch-function computation (SAT or structural)
	VerifyTime  time.Duration // final equivalence checks

	// Solver aggregates the raw kernel counters (decisions,
	// propagations, conflicts, restarts, learnt-DB churn) of every SAT
	// solver created during the run, for per-solver profiling in
	// ecobench reports.
	Solver sat.Stats

	// Prep aggregates the CNF preprocessing work of every captured
	// query (zero unless Options.Preprocess was set): variables
	// eliminated, clauses subsumed, literals strengthened, and the
	// wall clock spent simplifying.
	Prep sat.PrepStats
}

// Add accumulates o into s, for aggregating counters across solves
// (the ecod daemon sums every finished job's Stats into its /metrics
// surface). Time fields add; counters add; Solver adds fieldwise.
func (s *Stats) Add(o Stats) {
	s.SATCalls += o.SATCalls
	s.Conflicts += o.Conflicts
	s.MinimizeCalls += o.MinimizeCalls
	s.MiterCopies += o.MiterCopies
	s.QBFCopies += o.QBFCopies
	s.Divisors += o.Divisors
	s.WindowPOs += o.WindowPOs
	s.StructuralFixes += o.StructuralFixes
	s.CubesEnumerated += o.CubesEnumerated
	s.SimElided += o.SimElided
	s.SimPruned += o.SimPruned
	s.SimPatterns += o.SimPatterns
	s.RewriteNodesBefore += o.RewriteNodesBefore
	s.RewriteNodesAfter += o.RewriteNodesAfter
	s.RewriteTime += o.RewriteTime
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheCollisions += o.CacheCollisions
	s.PortfolioRaces += o.PortfolioRaces
	if len(o.PortfolioWins) > 0 {
		if s.PortfolioWins == nil {
			s.PortfolioWins = make(map[string]int64, len(o.PortfolioWins))
		}
		for k, v := range o.PortfolioWins {
			s.PortfolioWins[k] += v
		}
	}
	s.SupportTime += o.SupportTime
	s.PatchTime += o.PatchTime
	s.VerifyTime += o.VerifyTime
	s.Solver.Add(o.Solver)
	s.Prep.Add(o.Prep)
}

// Result is the outcome of Solve.
type Result struct {
	Feasible bool // target set sufficient (expression (1) UNSAT)
	Verified bool // patched implementation equivalent to spec
	// TimedOut reports that Options.Timeout (or the caller's context)
	// expired during the solve; the result is a best-effort partial
	// answer — typically structural patches, possibly unverified.
	TimedOut bool

	Patches []TargetPatch
	// Patch is the synthesized patch module: inputs are the union of
	// supports, outputs are the target signals.
	Patch *netlist.Netlist

	TotalCost  int // cost of the union of all patch supports
	TotalGates int // AND nodes of the combined patch logic

	Stats   Stats
	Elapsed time.Duration
}

// divisor is one candidate support signal.
type divisor struct {
	name string
	edge aig.Lit // value in the working AIG (function of x only)
	cost int
}

// engine carries the per-solve state.
type engine struct {
	inst *Instance
	opt  Options

	// ctx is the run's context. SAT calls observe cancellation via the
	// solverGroup watcher; pure-CPU stages (windowing, structural
	// patches, synthesis) poll cancelled() at stage boundaries so a
	// cancelled job stops instead of burning a full stage on work
	// nobody will read.
	ctx context.Context

	w       *aig.AIG
	xPIs    []int // PI positions in w for the shared inputs
	tPIs    []int // PI positions in w for the targets
	targets []string

	implPOs   []aig.Lit
	specPOs   []aig.Lit
	miter     aig.Lit // M(t, x) over the window outputs
	fullMiter aig.Lit // M(t, x) over every output (feasibility check)

	fullQuantForced bool // retry pass: ignore move guidance
	moveGuided      bool // set when a patch used move-guided quantification

	sigEdge  map[string]aig.Lit
	divisors []divisor // sorted by ascending cost

	patches []aig.Lit // per-target patch edge in w (function of x)
	done    []bool

	// Per-target results: a standalone AIG (PIs = Support order, one
	// PO) so the patch can be rebuilt in any destination graph.
	targetPatches []TargetPatch
	patchAIGs     []*aig.AIG

	// Pre-sort, pre-reorder install artifacts, kept so the window
	// cache can snapshot an entry that replays installFinal exactly.
	rawPatchAIGs []*aig.AIG
	rawSupports  [][]string

	usedSignals map[string]bool // support already paid for

	moves [][]bool // QBF countermoves over the targets

	// Simulation-layer state (see sim.go): the cross-window input
	// pattern pool, a reusable window simulator for divisor pruning,
	// and the per-window model bank with its aux-equality map and
	// captured per-copy PI literal vectors. winPatterns records the
	// patterns harvested while computing one window so a window-cache
	// hit can replay them, keeping the pool state identical to a cold
	// run's.
	patterns    *sim.PatternBank
	simr        *aig.Simulator
	winBank     *sim.ModelBank
	winEqs      map[sat.Var][2]sat.Lit
	winPIs1     []sat.Lit
	winPIs2     []sat.Lit
	inWindow    bool
	winPatterns [][]bool

	group solverGroup // every SAT solver of this run, for interrupts

	stats Stats
	res   *Result
}

func (e *engine) logf(format string, args ...any) {
	if e.opt.Log != nil {
		fmt.Fprintf(e.opt.Log, format+"\n", args...)
	}
}

// newSolver creates a SAT solver with the configured conflict budget
// and registers it for deadline interrupts.
func (e *engine) newSolver() *sat.Solver {
	s := sat.New()
	if e.opt.ConfBudget > 0 {
		s.SetConfBudget(e.opt.ConfBudget)
	}
	e.group.add(s)
	return s
}

// par returns the effective intra-solve parallelism:
// Options.Parallelism, defaulting to the scheduler's processor count.
func (e *engine) par() int {
	p := e.opt.Parallelism
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// newPortfolio builds a racing portfolio loaded from the captured
// formula and registers every member for deadline interrupts.
// Portfolio size is capped at 4: beyond that the diversification axes
// repeat and extra members mostly duplicate work.
func (e *engine) newPortfolio(f *cnf.Formula) *sat.Portfolio {
	size := e.par()
	if size > 4 {
		size = 4
	}
	p := sat.NewPortfolio(
		sat.PortfolioOptions{Size: size, ConfBudget: e.opt.ConfBudget},
		func(s *sat.Solver) { f.LoadInto(s) },
	)
	for _, m := range p.Members() {
		e.group.add(m)
	}
	return p
}

// ErrPrepWithProofs reports the one forbidden option combination:
// CNF preprocessing rewrites the formula, so the resolution proof the
// interpolation patch method needs would not refute the original
// clauses. Callers must disable one of the two; the engine refuses
// up front rather than computing an interpolant from a bogus proof.
var ErrPrepWithProofs = errors.New(
	"eco: Options.Preprocess is incompatible with PatchInterpolation (proof logging needs the original clauses)")

// prepCfg returns the preprocessing knobs for captured queries, or a
// disabled config when Options.Preprocess is off.
func (e *engine) prepCfg() sat.PrepConfig {
	if !e.opt.Preprocess {
		return sat.PrepConfig{}
	}
	return sat.DefaultPrepConfig()
}

// preprocess simplifies a captured query, folding the pass counters
// into the run stats. frozen lists the literals later Solve calls
// assume or read back; their variables survive elimination.
func (e *engine) preprocess(f *cnf.Formula, frozen []sat.Lit) *cnf.Preprocessed {
	pp := f.Preprocess(frozen, e.prepCfg())
	e.stats.Prep.Add(pp.Stats)
	return pp
}

// recordRace folds one finished portfolio race into the run stats.
func (e *engine) recordRace(p *sat.Portfolio) {
	e.stats.PortfolioRaces++
	if lbl := p.WinnerLabel(); lbl != "" {
		if e.stats.PortfolioWins == nil {
			e.stats.PortfolioWins = make(map[string]int64)
		}
		e.stats.PortfolioWins[lbl]++
	}
}

// Solve runs the full ECO flow on the instance.
func Solve(inst *Instance, opt Options) (*Result, error) {
	return SolveContext(context.Background(), inst, opt)
}

// SolveContext is Solve under a context: when ctx is canceled or its
// deadline (or Options.Timeout, whichever is tighter) expires, every
// active SAT solver is interrupted and the engine degrades to the
// structural fallback, returning a partial result with TimedOut set
// rather than hanging. Stats and Elapsed are always populated.
func SolveContext(ctx context.Context, inst *Instance, opt Options) (*Result, error) {
	start := time.Now()
	if err := inst.Check(); err != nil {
		return nil, err
	}
	if opt.Preprocess && opt.Patch == PatchInterpolation {
		return nil, ErrPrepWithProofs
	}
	if opt.MaxQuantExpand <= 0 {
		opt.MaxQuantExpand = 8
	}
	if opt.MaxCubes <= 0 {
		opt.MaxCubes = 20000
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	e := &engine{inst: inst, opt: opt, ctx: ctx, res: &Result{}}
	stop := e.group.watch(ctx)
	defer stop()
	if err := e.setup(); err != nil {
		return nil, err
	}
	if e.cancelled() {
		return e.seal(ctx, start), nil
	}
	feasible, err := e.checkFeasible()
	if err != nil {
		return nil, err
	}
	e.res.Feasible = feasible
	if !feasible || e.cancelled() {
		return e.seal(ctx, start), nil
	}
	if err := e.rectifyAll(false); err != nil {
		if errors.Is(err, errCancelled) {
			return e.seal(ctx, start), nil
		}
		return nil, e.wrapErr(ctx, err)
	}
	if e.cancelled() {
		// Patches exist but the deadline is gone: report them without
		// spending a verification stage on a result already stamped
		// TimedOut (verification could not be trusted to finish).
		e.finish()
		return e.seal(ctx, start), nil
	}
	ok, err := e.verify()
	if err != nil {
		return nil, e.wrapErr(ctx, err)
	}
	if !ok && e.usedMoveGuidance() && !e.cancelled() {
		// Move-guided quantification is an approximation of the full
		// certificate construction; redo with full expansion.
		e.logf("move-guided patch failed verification; retrying with full expansion")
		if err := e.rectifyAll(true); err != nil {
			if errors.Is(err, errCancelled) {
				return e.seal(ctx, start), nil
			}
			return nil, e.wrapErr(ctx, err)
		}
		ok, err = e.verify()
		if err != nil {
			return nil, e.wrapErr(ctx, err)
		}
	}
	e.res.Verified = ok
	e.finish()
	return e.seal(ctx, start), nil
}

// cancelled reports whether the run's context is done. Checked at
// stage boundaries: SAT calls are interrupted asynchronously by the
// solverGroup watcher, but structural fallbacks and synthesis are
// pure CPU and would otherwise run to completion on a dead job.
func (e *engine) cancelled() bool {
	return e.ctx != nil && e.ctx.Err() != nil
}

// seal stamps the bookkeeping fields shared by every return path.
func (e *engine) seal(ctx context.Context, start time.Time) *Result {
	e.res.TimedOut = ctx.Err() != nil
	e.stats.Solver = e.group.stats()
	e.stats.Conflicts = e.stats.Solver.Conflicts
	e.res.Stats = e.stats
	e.res.Elapsed = time.Since(start)
	return e.res
}

// wrapErr annotates an engine error with the deadline expiry that most
// likely caused it, so callers see "context deadline exceeded" rather
// than a downstream symptom.
func (e *engine) wrapErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return fmt.Errorf("eco: aborted by %w: %v", ctx.Err(), err)
	}
	return err
}

// setup builds the working AIG: implementation (targets exposed as
// PIs), specification sharing the inputs, the windowed miter, and the
// candidate divisors.
func (e *engine) setup() error {
	implRes, err := netlist.ToAIG(e.inst.Impl)
	if err != nil {
		return err
	}
	specRes, err := netlist.ToAIG(e.inst.Spec)
	if err != nil {
		return err
	}
	e.targets = implRes.Targets
	k := len(e.targets)

	w := aig.New()
	e.w = w
	nIn := len(e.inst.Impl.Inputs)
	piMap := make([]aig.Lit, implRes.G.NumPIs())
	for i := 0; i < nIn; i++ {
		e.xPIs = append(e.xPIs, w.NumPIs())
		piMap[i] = w.AddPI(e.inst.Impl.Inputs[i])
	}
	for i := 0; i < k; i++ {
		e.tPIs = append(e.tPIs, w.NumPIs())
		piMap[nIn+i] = w.AddPI(e.targets[i])
	}

	// Transfer all named implementation signals (divisor candidates)
	// and the implementation outputs.
	names := make([]string, 0, len(implRes.Signals))
	for name := range implRes.Signals {
		names = append(names, name)
	}
	sort.Strings(names)
	roots := make([]aig.Lit, 0, len(names)+implRes.G.NumPOs())
	for _, n := range names {
		roots = append(roots, implRes.Signals[n])
	}
	for i := 0; i < implRes.G.NumPOs(); i++ {
		roots = append(roots, implRes.G.PO(i))
	}
	moved := aig.Transfer(w, implRes.G, piMap, roots)
	e.sigEdge = make(map[string]aig.Lit, len(names))
	for i, n := range names {
		e.sigEdge[n] = moved[i]
	}
	e.implPOs = moved[len(names):]

	// Specification shares the x PIs.
	specMap := make([]aig.Lit, specRes.G.NumPIs())
	for i := 0; i < nIn; i++ {
		specMap[i] = w.PI(e.xPIs[i])
	}
	specRoots := make([]aig.Lit, specRes.G.NumPOs())
	for i := range specRoots {
		specRoots[i] = specRes.G.PO(i)
	}
	e.specPOs = aig.Transfer(w, specRes.G, specMap, specRoots)

	e.patches = make([]aig.Lit, k)
	e.done = make([]bool, k)
	e.usedSignals = make(map[string]bool)

	e.buildWindowAndDivisors()
	if e.simEnabled() {
		e.patterns = sim.NewPatternBank(w.NumPIs(), simPatternPoolMax)
	}
	return nil
}

// finish assembles the patch netlist and totals.
func (e *engine) finish() {
	e.res.Patches = e.res.Patches[:0]
	union := make(map[string]bool)
	// Patch module AIG: PIs are the union of supports.
	pg := aig.New()
	pin := make(map[string]aig.Lit)
	totalCost := 0

	for i, t := range e.targets {
		tp := e.targetPatches[i]
		for _, s := range tp.Support {
			if !union[s] {
				union[s] = true
				totalCost += e.inst.Weights.Cost(s)
				pin[s] = pg.AddPI(s)
			}
		}
		// Rebuild this patch inside pg over its support PIs.
		inputs := make([]aig.Lit, len(tp.Support))
		for j, s := range tp.Support {
			inputs[j] = pin[s]
		}
		root := aig.Transfer(pg, e.patchAIGs[i], inputs, []aig.Lit{e.patchAIGs[i].PO(0)})[0]
		pg.AddPO(t, root)
	}
	e.res.TotalCost = totalCost
	allPOs := make([]aig.Lit, pg.NumPOs())
	for i := range allPOs {
		allPOs[i] = pg.PO(i)
	}
	e.res.TotalGates = pg.ConeSize(allPOs)
	e.res.Patch = netlist.FromAIG(pg, "patch")
	e.res.Patches = append(e.res.Patches, e.targetPatches...)
}
