package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"sync"
	"time"

	"ecopatch/internal/eco"
)

// requestDigest hashes the solve-relevant content of one submission:
// the raw netlist and weight sources plus every resolved engine
// option that can change the answer. The job name is excluded (labels
// do not change results). Two submissions with equal digests would
// run the identical solve, so the daemon serves the second from the
// first's result instead.
func requestDigest(req *JobRequest, opt eco.Options) string {
	h := sha256.New()
	ws := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		io.WriteString(h, s)
	}
	wi := func(v int64) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(v))
		h.Write(n[:])
	}
	wb := func(v bool) {
		if v {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	ws("ecod-digest@v1")
	ws(req.Impl)
	ws(req.Spec)
	ws(req.Weights)
	wi(int64(opt.Support))
	wi(int64(opt.Patch))
	wb(opt.Window)
	wb(opt.LastGasp)
	wb(opt.CEGARMin)
	wb(opt.FunctionalMatch)
	wb(opt.UseQBF)
	wb(opt.ForceStructural)
	wi(opt.ConfBudget)
	wi(int64(opt.MaxCubes))
	wi(int64(opt.MaxQuantExpand))
	wi(int64(opt.Timeout / time.Nanosecond))
	wi(int64(opt.Parallelism))
	wb(opt.Preprocess)
	wb(opt.SimBank)
	wb(opt.SimPrune)
	wb(opt.Rewrite)
	return hex.EncodeToString(h.Sum(nil))
}

// doneEntry is one cached completed result plus the job that
// produced it (so deduped statuses can point at their origin).
type doneEntry struct {
	res   *JobResult
	jobID string
}

// inflightEntry tracks one digest currently being solved: the parent
// job doing the work and the duplicate submissions waiting on it.
type inflightEntry struct {
	parent  *Job
	waiters []*Job
}

// resultCache is the daemon-level content-addressed result cache:
// completed StateDone results are retained up to max entries (FIFO
// eviction), and duplicate submissions arriving while the original is
// still queued or running attach to it instead of re-solving.
//
// Locking: rc.mu is leaf-level — nothing is called under it that can
// take the store lock. Waiter resolution (store.Finish) happens in
// the caller after complete returns.
type resultCache struct {
	mu       sync.Mutex
	max      int
	done     map[string]*doneEntry
	order    []string // done-map insertion order, for FIFO eviction
	inflight map[string]*inflightEntry
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		max = 256
	}
	return &resultCache{
		max:      max,
		done:     make(map[string]*doneEntry),
		inflight: make(map[string]*inflightEntry),
	}
}

// admit decides the cache path for one not-yet-registered submission
// under a single lock hold. A completed result returns (res, false):
// the caller registers j born-terminal with that result. An in-flight
// parent returns (nil, true): j has been appended to the parent's
// waiter list and will be finished when the parent is. (nil, false)
// is a miss — the caller becomes the parent via markInflight after
// admission. In the first two cases j.dedupOf is set here, before any
// other goroutine can observe j.
func (rc *resultCache) admit(digest string, j *Job) (*JobResult, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if e, ok := rc.done[digest]; ok {
		j.dedupOf = e.jobID
		return e.res, false
	}
	if fl, ok := rc.inflight[digest]; ok {
		j.dedupOf = fl.parent.ID
		fl.waiters = append(fl.waiters, j)
		return nil, true
	}
	return nil, false
}

// markInflight installs j as the digest's in-flight parent. Called
// after j is enqueued, so j may already have been picked up — and
// even finished — by a worker; a finished job must not be installed
// (its complete() has already run and nobody would ever drain the
// entry's waiters). An existing entry is left alone: two racing
// parents for one digest just means one redundant solve.
func (rc *resultCache) markInflight(digest string, j *Job) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if _, ok := rc.inflight[digest]; ok {
		return
	}
	select {
	case <-j.done:
		return
	default:
	}
	rc.inflight[digest] = &inflightEntry{parent: j}
}

// complete records a parent's terminal outcome: the result enters the
// done cache when the job actually completed (other terminal states —
// failed, cancelled, timeout — are facts about that run, not about
// the instance, and are never cached), and the digest's waiters are
// returned for the caller to finish with the same outcome.
func (rc *resultCache) complete(digest, jobID string, cacheable bool, res *JobResult) []*Job {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if cacheable && res != nil {
		if _, ok := rc.done[digest]; !ok {
			rc.done[digest] = &doneEntry{res: res, jobID: jobID}
			rc.order = append(rc.order, digest)
			for len(rc.order) > rc.max {
				delete(rc.done, rc.order[0])
				rc.order = rc.order[1:]
			}
		}
	}
	fl, ok := rc.inflight[digest]
	if !ok {
		return nil
	}
	delete(rc.inflight, digest)
	return fl.waiters
}

// restore warms the done cache with a completed result replayed from
// the persistence log (skipping digests already present — replay is
// first-wins, matching the live path's "first insertion wins"). FIFO
// bound applies as on the live path.
func (rc *resultCache) restore(digest, jobID string, res *JobResult) {
	if digest == "" || res == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if _, ok := rc.done[digest]; ok {
		return
	}
	rc.done[digest] = &doneEntry{res: res, jobID: jobID}
	rc.order = append(rc.order, digest)
	for len(rc.order) > rc.max {
		delete(rc.done, rc.order[0])
		rc.order = rc.order[1:]
	}
}

// entries reports the completed-result count, for the metrics gauge.
func (rc *resultCache) entries() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.done)
}
