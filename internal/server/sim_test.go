package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"ecopatch/internal/eco"
)

// TestJobOptionsSim pins the wire-level mapping: the single "sim"
// tri-state drives both engine mechanisms, and absent means off at
// this layer (the server default applies later, at admission).
func TestJobOptionsSim(t *testing.T) {
	on := true
	opt, err := JobOptions{Sim: &on}.Eco()
	if err != nil {
		t.Fatal(err)
	}
	if !opt.SimBank || !opt.SimPrune {
		t.Fatalf("explicit sim=true not applied: bank=%v prune=%v", opt.SimBank, opt.SimPrune)
	}
	opt, err = JobOptions{}.Eco()
	if err != nil {
		t.Fatal(err)
	}
	if opt.SimBank || opt.SimPrune {
		t.Fatal("absent sim defaulted on at the options layer")
	}
}

// TestServerDefaultSim pins the -sim server default: jobs that leave
// sim unset inherit it, an explicit false wins over the default, and
// the simulation counters of finished jobs surface in /metrics.
func TestServerDefaultSim(t *testing.T) {
	opts := make(chan eco.Options, 1)
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 8, DefaultSim: true})
	s.solve = func(ctx context.Context, inst *eco.Instance, opt eco.Options) (*eco.Result, error) {
		opts <- opt
		res := &eco.Result{Feasible: true, Verified: true}
		if opt.SimBank {
			res.Stats.SimElided = 7
			res.Stats.SimPruned = 3
			res.Stats.SimPatterns = 11
		}
		return res, nil
	}
	ctx := context.Background()

	submit := func(jo JobOptions) eco.Options {
		t.Helper()
		req := testRequest()
		req.Options = jo
		st, err := c.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(ctx, st.ID, 2*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		select {
		case opt := <-opts:
			return opt
		case <-time.After(5 * time.Second):
			t.Fatal("solve never ran")
			return eco.Options{}
		}
	}

	if opt := submit(JobOptions{}); !opt.SimBank || !opt.SimPrune {
		t.Fatal("unset sim did not inherit the server default")
	}
	off := false
	if opt := submit(JobOptions{Sim: &off}); opt.SimBank || opt.SimPrune {
		t.Fatal("explicit sim=false overridden by the server default")
	}

	// Only the first submit ran with sim on; its counters must show in
	// /metrics.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ecod_sim_elided_total 7",
		"ecod_sim_pruned_divisors_total 3",
		"ecod_sim_patterns_total 11",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
