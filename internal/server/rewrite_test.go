package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"ecopatch/internal/eco"
)

// TestJobOptionsRewrite pins the wire-level mapping of the "rewrite"
// tri-state: explicit values apply, absent means off at this layer
// (the server default applies later, at admission).
func TestJobOptionsRewrite(t *testing.T) {
	on := true
	opt, err := JobOptions{Rewrite: &on}.Eco()
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Rewrite {
		t.Fatal("explicit rewrite=true not applied")
	}
	opt, err = JobOptions{}.Eco()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Rewrite {
		t.Fatal("absent rewrite defaulted on at the options layer")
	}
}

// TestServerDefaultRewrite pins the -rewrite server default: jobs that
// leave rewrite unset inherit it, an explicit false wins over the
// default, and the rewriting counters of finished jobs surface in
// /metrics.
func TestServerDefaultRewrite(t *testing.T) {
	opts := make(chan eco.Options, 1)
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 8, DefaultRewrite: true})
	s.solve = func(ctx context.Context, inst *eco.Instance, opt eco.Options) (*eco.Result, error) {
		opts <- opt
		res := &eco.Result{Feasible: true, Verified: true}
		if opt.Rewrite {
			res.Stats.RewriteNodesBefore = 40
			res.Stats.RewriteNodesAfter = 25
			res.Stats.RewriteTime = 125 * time.Millisecond
		}
		return res, nil
	}
	ctx := context.Background()

	submit := func(jo JobOptions) eco.Options {
		t.Helper()
		req := testRequest()
		req.Options = jo
		st, err := c.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(ctx, st.ID, 2*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		select {
		case opt := <-opts:
			return opt
		case <-time.After(5 * time.Second):
			t.Fatal("solve never ran")
			return eco.Options{}
		}
	}

	if opt := submit(JobOptions{}); !opt.Rewrite {
		t.Fatal("unset rewrite did not inherit the server default")
	}
	off := false
	if opt := submit(JobOptions{Rewrite: &off}); opt.Rewrite {
		t.Fatal("explicit rewrite=false overridden by the server default")
	}

	// Only the first submit ran with rewriting on; eliminated =
	// before - after = 15 must show in /metrics.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ecod_rewrite_nodes_eliminated_total 15",
		"ecod_rewrite_seconds_total 0.125",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRewriteDigestSeparation pins that the content-addressed result
// cache never dedupes a rewrite-on submission against a rewrite-off
// one: the option is part of the request digest.
func TestRewriteDigestSeparation(t *testing.T) {
	req := testRequest()
	mk := func(rewrite bool) string {
		jo := JobOptions{Rewrite: &rewrite}
		opt, err := jo.Eco()
		if err != nil {
			t.Fatal(err)
		}
		return requestDigest(&req, opt)
	}
	if mk(false) == mk(true) {
		t.Fatal("request digest does not separate rewrite-on from rewrite-off")
	}
}
