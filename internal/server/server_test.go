package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ecopatch/internal/eco"
)

// Tiny feasible instance: one free target point whose rectification
// is an OR of the primary inputs.
const implSrc = `
module m (a, b, f);
input a, b;
output f;
and (f, a, t_0);
endmodule`

const specSrc = `
module m (a, b, f);
input a, b;
output f;
wire w;
or (w, a, b);
and (f, a, w);
endmodule`

func testRequest() JobRequest {
	return JobRequest{Name: "tiny", Impl: implSrc, Spec: specSrc}
}

// newTestServer builds a server plus an HTTP front end and hands back
// a client. Cleanup drains with no grace so tests never leak workers.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Drain(0)
		hs.Close()
	})
	return s, &Client{Base: hs.URL, HTTP: hs.Client()}
}

// blockingSolve returns a solve stub that signals pickup on started
// and blocks until release closes or the job is cancelled.
func blockingSolve(started chan<- string, release <-chan struct{}) func(context.Context, *eco.Instance, eco.Options) (*eco.Result, error) {
	return func(ctx context.Context, inst *eco.Instance, opt eco.Options) (*eco.Result, error) {
		if started != nil {
			started <- inst.Name
		}
		select {
		case <-ctx.Done():
			return &eco.Result{TimedOut: true}, nil
		case <-release:
			return &eco.Result{Feasible: true, Verified: true}, nil
		}
	}
}

func TestEndToEndRealSolve(t *testing.T) {
	dir := t.TempDir()
	s, c := newTestServer(t, Config{Workers: 2, QueueCap: 8, ResultsDir: dir})
	ctx := context.Background()

	st, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State.Terminal() {
		t.Fatalf("unexpected initial status %+v", st)
	}
	st, err = c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", st.State, st.Error)
	}
	if st.Result == nil || !st.Result.Verified {
		t.Fatalf("result not verified: %+v", st.Result)
	}
	if st.Result.Schema != ResultSchema {
		t.Fatalf("schema = %q", st.Result.Schema)
	}
	if st.Result.SATCalls == 0 {
		t.Fatal("expected nonzero SAT calls from a real solve")
	}
	if !strings.Contains(st.Result.Patch, "module") {
		t.Fatalf("patch netlist missing: %q", st.Result.Patch)
	}

	// The result file is written atomically on finish (the onFinish
	// hook runs just after the terminal state becomes visible).
	path := filepath.Join(dir, st.ID+".json")
	waitFor(t, func() bool { _, err := os.Stat(path); return err == nil })
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk JobStatus
	if err := json.Unmarshal(b, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateDone || onDisk.Result == nil || !onDisk.Result.Verified {
		t.Fatalf("result file disagrees: %+v", onDisk)
	}

	// The metrics surface aggregates the solver counters.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`ecod_jobs_finished_total{state="done"} 1`,
		"ecod_jobs_submitted_total 1",
		"ecod_queue_capacity 8",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(text, "ecod_sat_solve_calls_total 0\n") {
		t.Error("solver counters not aggregated into metrics")
	}
	if err := c.Healthz(ctx); err != nil {
		t.Errorf("healthz: %v", err)
	}
	_ = s
}

func TestQueueFullSheds429(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	s.solve = blockingSolve(started, release)
	ctx := context.Background()

	// First job occupies the sole worker...
	first, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// ...second fills the queue...
	second, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	// ...third must be shed with 429 + Retry-After.
	_, err = c.Submit(ctx, testRequest())
	if !IsShed(err) {
		t.Fatalf("want shed error, got %v", err)
	}
	var ae *APIError
	if !asAPIError(err, &ae) || ae.RetryAfter <= 0 {
		t.Fatalf("want Retry-After on shed, got %+v", ae)
	}
	// The shed job must not linger in the store.
	if jobs, err := c.List(ctx, "", 0); err != nil || len(jobs) != 2 {
		t.Fatalf("list = %v jobs, err %v; want 2", len(jobs), err)
	}

	close(release)
	for _, id := range []string{first.ID, second.ID} {
		st, err := c.Wait(ctx, id, 5*time.Millisecond)
		if err != nil || st.State != StateDone {
			t.Fatalf("job %s: state %s err %v", id, st.State, err)
		}
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "ecod_jobs_shed_total 1") {
		t.Error("shed not counted")
	}
}

func asAPIError(err error, out **APIError) bool {
	ae, ok := err.(*APIError)
	if ok {
		*out = ae
	}
	return ok
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan string, 1)
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	s.solve = blockingSolve(started, nil) // only cancellation releases it
	ctx := context.Background()

	st, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	got, err := c.Cancel(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State.Terminal() && got.State != StateCancelled {
		t.Fatalf("cancel returned %s", got.State)
	}
	got, err = c.Wait(ctx, st.ID, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got.State)
	}
	if got.Error != "job cancelled" {
		t.Fatalf("error = %q", got.Error)
	}
	// Partial (TimedOut) results from a cancelled solve are retained.
	if got.Result == nil || !got.Result.TimedOut {
		t.Fatalf("expected partial result, got %+v", got.Result)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	s.solve = blockingSolve(started, release)
	ctx := context.Background()

	if _, err := c.Submit(ctx, testRequest()); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("queued cancel = %s, want cancelled immediately", got.State)
	}
	close(release)
	// The worker must skip the cancelled job, not run it.
	select {
	case name := <-started:
		t.Fatalf("cancelled job %q was started", name)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestGracefulDrainFinishesInFlight(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	s.solve = blockingSolve(started, release)
	ctx := context.Background()

	running, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan struct{})
	go func() {
		s.Drain(time.Minute) // generous grace: in-flight job must finish naturally
		close(drained)
	}()
	// Drain is underway once healthz flips to draining.
	waitFor(t, func() bool { return c.Healthz(ctx) != nil })

	// New submissions are refused while draining.
	if _, err := c.Submit(ctx, testRequest()); err == nil || IsShed(err) {
		t.Fatalf("want 503 during drain, got %v", err)
	}

	close(release)
	<-drained

	st, err := c.Status(ctx, running.ID)
	if err != nil || st.State != StateDone {
		t.Fatalf("in-flight job: state %s err %v, want done", st.State, err)
	}
	st, err = c.Status(ctx, queued.ID)
	if err != nil || st.State != StateCancelled {
		t.Fatalf("queued job: state %s err %v, want cancelled", st.State, err)
	}
	if !strings.Contains(mustMetrics(t, c), "ecod_draining 1") {
		t.Error("draining gauge not set")
	}
}

func TestDrainGraceExpiryInterruptsSolves(t *testing.T) {
	started := make(chan string, 1)
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	s.solve = blockingSolve(started, nil) // never finishes on its own
	ctx := context.Background()

	st, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	s.Drain(5 * time.Millisecond) // grace expires, solve is interrupted

	got, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled after grace expiry", got.State)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	ctx := context.Background()

	cases := []struct {
		name string
		req  JobRequest
	}{
		{"empty impl", JobRequest{Spec: specSrc}},
		{"bad netlist", JobRequest{Impl: "module garbage", Spec: specSrc}},
		{"bad support", func() JobRequest {
			r := testRequest()
			r.Options.Support = "quantum"
			return r
		}()},
		{"negative budget", func() JobRequest {
			r := testRequest()
			r.Options.ConfBudget = -1
			return r
		}()},
	}
	for _, tc := range cases {
		_, err := c.Submit(ctx, tc.req)
		var ae *APIError
		if !asAPIError(err, &ae) || ae.StatusCode != 400 {
			t.Errorf("%s: want 400, got %v", tc.name, err)
		}
	}

	if _, err := c.Status(ctx, "nope"); err == nil {
		t.Error("unknown job: want 404")
	}
	if _, err := c.Cancel(ctx, "nope"); err == nil {
		t.Error("cancel unknown job: want 404")
	}
}

// TestTimeoutClamp pins the deadline admission policy: jobs without a
// deadline get the server default, and no job exceeds MaxTimeout.
func TestTimeoutClamp(t *testing.T) {
	got := make(chan time.Duration, 2)
	s, c := newTestServer(t, Config{
		Workers: 1, QueueCap: 4,
		DefaultTimeout: 3 * time.Second,
		MaxTimeout:     5 * time.Second,
	})
	s.solve = func(ctx context.Context, inst *eco.Instance, opt eco.Options) (*eco.Result, error) {
		got <- opt.Timeout
		return &eco.Result{}, nil
	}
	ctx := context.Background()

	st, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if d := <-got; d != 3*time.Second {
		t.Errorf("default timeout = %v, want 3s", d)
	}

	req := testRequest()
	req.Options.TimeoutSec = 3600
	st, err = c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if d := <-got; d != 5*time.Second {
		t.Errorf("clamped timeout = %v, want 5s", d)
	}
}

func mustMetrics(t *testing.T, c *Client) string {
	t.Helper()
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return text
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
