package server

import "sync"

// slotSem is a weighted CPU-slot semaphore: a job holds as many slots
// as its intra-solve parallelism, so (job workers × intra-job
// threads) stays bounded by the configured slot count no matter how
// the two knobs are combined.
//
// Multi-slot acquisition is serialized by acqMu so two heavy jobs
// cannot deadlock each holding half the slots; a worker waiting
// behind the mutex is simply queued — the same order it would have
// been queued in for the slots themselves.
type slotSem struct {
	total  int
	tokens chan struct{}
	acqMu  sync.Mutex
}

func newSlotSem(total int) *slotSem {
	if total < 1 {
		total = 1
	}
	s := &slotSem{total: total, tokens: make(chan struct{}, total)}
	for i := 0; i < total; i++ {
		s.tokens <- struct{}{}
	}
	return s
}

// acquire takes n slots (clamped to [1, total]), aborting with false
// when quit closes first. On abort any partially-acquired slots are
// returned. The clamped count actually held is returned for release.
func (s *slotSem) acquire(n int, quit <-chan struct{}) (int, bool) {
	if n > s.total {
		n = s.total
	}
	if n < 1 {
		n = 1
	}
	s.acqMu.Lock()
	defer s.acqMu.Unlock()
	for got := 0; got < n; got++ {
		select {
		case <-s.tokens:
		case <-quit:
			for ; got > 0; got-- {
				s.tokens <- struct{}{}
			}
			return 0, false
		}
	}
	return n, true
}

// release returns n slots.
func (s *slotSem) release(n int) {
	for i := 0; i < n; i++ {
		s.tokens <- struct{}{}
	}
}

// available reports the free slot count (approximate under load).
func (s *slotSem) available() int { return len(s.tokens) }
