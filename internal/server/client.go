package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to an ecod daemon. The zero HTTP client is replaced by
// http.DefaultClient.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

// APIError is a non-2xx response decoded from the error envelope.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the backoff the server suggested on a 429 shed.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("ecod: %s (HTTP %d)", e.Message, e.StatusCode)
}

// IsShed reports whether err is a queue-full 429 rejection.
func IsShed(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// do issues a request and decodes a JSON response into out (skipped
// when out is nil). Non-2xx responses come back as *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		ae := &APIError{StatusCode: resp.StatusCode}
		var env apiError
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&env) == nil && env.Error != "" {
			ae.Message = env.Error
			ae.RetryAfter = time.Duration(env.RetryAfterSec * float64(time.Second))
		} else {
			ae.Message = resp.Status
		}
		return ae
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job and returns its initial status.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Status fetches one job.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List fetches every retained job (summaries, no results).
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out.Jobs, err
}

// Cancel requests cancellation and returns the resulting status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls until the job reaches a terminal state, the poll
// interval defaulting to 100ms when <= 0.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Healthz reports whether the server answers 200 on /healthz.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the raw Prometheus exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/metrics"), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: resp.Status}
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
