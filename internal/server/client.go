package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to an ecod daemon. The zero HTTP client is replaced by
// http.DefaultClient.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// MaxRetries bounds how many times a 429-shed request is retried
	// (after honoring the server's Retry-After). 0 disables retries.
	MaxRetries int
	// RetryBackoff is the sleep before a retry when the server sent
	// no usable Retry-After; <= 0 falls back to one second.
	RetryBackoff time.Duration
}

// APIError is a non-2xx response decoded from the error envelope.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the backoff the server suggested on a 429 shed.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("ecod: %s (HTTP %d)", e.Message, e.StatusCode)
}

// IsShed reports whether err is a queue-full 429 rejection.
func IsShed(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// do issues a request and decodes a JSON response into out (skipped
// when out is nil). Non-2xx responses come back as *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		ae := &APIError{StatusCode: resp.StatusCode}
		var env apiError
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&env) == nil && env.Error != "" {
			ae.Message = env.Error
			ae.RetryAfter = time.Duration(env.RetryAfterSec * float64(time.Second))
		} else {
			ae.Message = resp.Status
		}
		// The Retry-After header is authoritative over the JSON hint
		// (proxies and load balancers set only the header).
		if d, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
			ae.RetryAfter = d
		}
		return ae
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// maxRetryAfter clamps server-suggested backoffs: a misconfigured (or
// hostile) Retry-After must not park the client for an hour.
const maxRetryAfter = 30 * time.Second

// parseRetryAfter reads an HTTP Retry-After value in either RFC 9110
// form: delay-seconds or an HTTP-date. Malformed, missing, or
// negative values report ok=false so the caller falls back to its
// default backoff; parsed values are clamped to [0, maxRetryAfter].
func parseRetryAfter(v string) (time.Duration, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	var d time.Duration
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		if secs < 0 {
			return 0, false
		}
		d = time.Duration(secs * float64(time.Second))
	} else if t, err := http.ParseTime(v); err == nil {
		d = time.Until(t)
		if d < 0 {
			d = 0
		}
	} else {
		return 0, false
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d, true
}

// doRetry wraps do with bounded retries on 429 sheds: each rejection
// is retried after the server's suggested backoff (RetryBackoff, then
// one second, when the server gave none), up to MaxRetries times.
// Only queue-full sheds retry — other errors, including 503 draining,
// are permanent from this client's point of view.
func (c *Client) doRetry(ctx context.Context, method, path string, body, out any) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = c.do(ctx, method, path, body, out)
		if err == nil || !IsShed(err) || attempt >= c.MaxRetries {
			return err
		}
		backoff := c.RetryBackoff
		if backoff <= 0 {
			backoff = time.Second
		}
		var ae *APIError
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			backoff = ae.RetryAfter
		}
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
	}
}

// Submit posts a job and returns its initial status, retrying
// bounded-many times when the server sheds it with 429.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobStatus, error) {
	var st JobStatus
	err := c.doRetry(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Status fetches one job (retrying 429s like Submit — Wait inherits
// the same resilience through this path).
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.doRetry(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List fetches retained jobs (summaries, no results). A non-empty
// state keeps only jobs in that state; limit > 0 keeps only the most
// recently submitted limit jobs. Zero values fetch everything.
func (c *Client) List(ctx context.Context, state string, limit int) ([]JobStatus, error) {
	q := url.Values{}
	if state != "" {
		q.Set("state", state)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out.Jobs, err
}

// Cancel requests cancellation and returns the resulting status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls until the job reaches a terminal state, the poll
// interval defaulting to 100ms when <= 0.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Healthz reports whether the server answers 200 on /healthz.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the raw Prometheus exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/metrics"), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: resp.Status}
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
