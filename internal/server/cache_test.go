package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ecopatch/internal/eco"
)

// metricValue extracts one un-labeled counter/gauge value from a
// Prometheus exposition.
func metricValue(t *testing.T, text, name string) int64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found", name)
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestDedupServedFromDoneCache: an identical second submission is
// served instantly from the completed result, without a second solve
// and without double-counting the first solve's stats in /metrics.
func TestDedupServedFromDoneCache(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, QueueCap: 8, CacheEntries: 16})
	ctx := context.Background()

	first, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	first, err = c.Wait(ctx, first.ID, 2*time.Millisecond)
	if err != nil || first.State != StateDone {
		t.Fatalf("first job: %v %+v", err, first)
	}
	afterFirst, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	satCalls := metricValue(t, afterFirst, "ecod_sat_solve_calls_total")
	if satCalls == 0 {
		t.Fatal("first solve aggregated no SAT calls")
	}

	second, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone {
		t.Fatalf("dedup submission not served instantly: %+v", second)
	}
	if second.DedupOf != first.ID {
		t.Fatalf("dedup_of = %q, want %q", second.DedupOf, first.ID)
	}
	if second.Result == nil || !second.Result.Verified || second.Result.Patch != first.Result.Patch {
		t.Fatalf("dedup result differs from original: %+v", second.Result)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, text, "ecod_cache_hits_total"); got != 1 {
		t.Fatalf("ecod_cache_hits_total = %d, want 1", got)
	}
	// The served copy must not re-aggregate the original's counters.
	if got := metricValue(t, text, "ecod_sat_solve_calls_total"); got != satCalls {
		t.Fatalf("stats double-counted: sat calls %d -> %d", satCalls, got)
	}
	if !strings.Contains(text, `ecod_jobs_finished_total{state="done"} 2`) {
		t.Error("both jobs should count as done")
	}
}

// TestDedupAttachesToInflight: a duplicate arriving while the original
// is still solving rides along instead of solving again.
func TestDedupAttachesToInflight(t *testing.T) {
	started := make(chan string, 2)
	release := make(chan struct{})
	var solves atomic.Int64
	s, c := newTestServer(t, Config{Workers: 2, QueueCap: 8, CacheEntries: 16})
	s.solve = func(ctx context.Context, inst *eco.Instance, opt eco.Options) (*eco.Result, error) {
		solves.Add(1)
		started <- inst.Name
		select {
		case <-ctx.Done():
			return &eco.Result{TimedOut: true}, nil
		case <-release:
			return &eco.Result{Feasible: true, Verified: true}, nil
		}
	}
	ctx := context.Background()

	first, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-started // original picked up and in flight

	second, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateQueued {
		t.Fatalf("attached duplicate state = %s, want queued", second.State)
	}
	if second.DedupOf != first.ID {
		t.Fatalf("dedup_of = %q, want %q", second.DedupOf, first.ID)
	}

	close(release)
	st, err := c.Wait(ctx, second.ID, 2*time.Millisecond)
	if err != nil || st.State != StateDone {
		t.Fatalf("attached duplicate: %v %+v", err, st)
	}
	if st.Result == nil || !st.Result.Verified {
		t.Fatalf("attached duplicate got no result: %+v", st.Result)
	}
	if n := solves.Load(); n != 1 {
		t.Fatalf("solve ran %d times, want 1", n)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, text, "ecod_cache_attached_total"); got != 1 {
		t.Fatalf("ecod_cache_attached_total = %d, want 1", got)
	}
}

// TestCancelledAttachedWaiterKeepsCancellation: a duplicate cancelled
// while waiting must stay cancelled when its parent finishes.
func TestCancelledAttachedWaiterKeepsCancellation(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 8, CacheEntries: 16})
	s.solve = blockingSolve(started, release)
	ctx := context.Background()

	first, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	second, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, second.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	if st, err := c.Wait(ctx, first.ID, 2*time.Millisecond); err != nil || st.State != StateDone {
		t.Fatalf("parent: %v %+v", err, st)
	}
	st, err := c.Status(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("cancelled waiter resurrected to %s", st.State)
	}
}

// TestShedJobNotVisibleOrDoubleCounted pins the admission-race fix: a
// shed submission is never registered, so it cannot be cancelled into
// a phantom terminal transition, and the finished-by-state counters
// stay consistent with the jobs that were actually admitted.
func TestShedJobNotVisibleOrDoubleCounted(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	s.solve = blockingSolve(started, release)
	ctx := context.Background()

	// Fill the single worker and the single queue slot.
	if _, err := c.Submit(ctx, testRequest()); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}

	// Third submission sheds with 429; its ID must not exist.
	_, err = c.Submit(ctx, testRequest())
	if !IsShed(err) {
		t.Fatalf("expected shed, got %v", err)
	}
	if jobs, err := c.List(ctx, "", 0); err != nil || len(jobs) != 2 {
		t.Fatalf("list after shed: %v, %d jobs (want 2)", err, len(jobs))
	}

	close(release)
	for _, id := range []string{queued.ID} {
		if st, err := c.Wait(ctx, id, 2*time.Millisecond); err != nil || st.State != StateDone {
			t.Fatalf("job %s: %v %+v", id, err, st)
		}
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, text, "ecod_jobs_shed_total"); got != 1 {
		t.Fatalf("shed total = %d", got)
	}
	if got := metricValue(t, text, "ecod_jobs_submitted_total"); got != 2 {
		t.Fatalf("submitted total = %d, want 2 (shed not counted)", got)
	}
	// Terminal transitions must equal admitted jobs: 2 done, nothing
	// else (no phantom cancellation of the shed submission).
	if !strings.Contains(text, `ecod_jobs_finished_total{state="done"} 2`) ||
		!strings.Contains(text, `ecod_jobs_finished_total{state="cancelled"} 0`) {
		t.Errorf("finished-by-state inconsistent:\n%s", text)
	}
}

// TestQueuedCancelSingleTerminalTransition: cancelling a job the
// worker is about to dequeue yields exactly one terminal transition
// and no stats aggregation for the never-run job.
func TestQueuedCancelSingleTerminalTransition(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	s.solve = blockingSolve(started, release)
	ctx := context.Background()

	if _, err := c.Submit(ctx, testRequest()); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := c.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	// Cancel while queued; the worker dequeues it after release and
	// must skip it without a second transition.
	if st, err := c.Cancel(ctx, queued.ID); err != nil || st.State != StateCancelled {
		t.Fatalf("cancel: %v %+v", err, st)
	}
	close(release)
	waitFor(t, func() bool {
		text, err := c.Metrics(ctx)
		return err == nil && strings.Contains(text, `ecod_jobs_finished_total{state="done"} 1`)
	})
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `ecod_jobs_finished_total{state="cancelled"} 1`) {
		t.Errorf("cancelled count != 1:\n%s", text)
	}
}

// TestClientRetriesShedWithRetryAfter: the client retries 429s,
// honoring the Retry-After header over the JSON hint, and gives up
// after MaxRetries.
func TestClientRetriesShedWithRetryAfter(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n < 3 {
			w.Header().Set("Retry-After", "0")
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: "queue full", RetryAfterSec: 99})
			return
		}
		writeJSON(w, http.StatusCreated, JobStatus{ID: "ok", State: StateQueued})
	}))
	defer hs.Close()

	c := &Client{Base: hs.URL, HTTP: hs.Client(), MaxRetries: 3, RetryBackoff: time.Millisecond}
	st, err := c.Submit(context.Background(), JobRequest{})
	if err != nil || st.ID != "ok" {
		t.Fatalf("submit = %+v, %v", st, err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}

	// Exhausted retries surface the shed error.
	calls.Store(-100) // always 429 for the next 100 calls
	c.MaxRetries = 2
	_, err = c.Submit(context.Background(), JobRequest{})
	if !IsShed(err) {
		t.Fatalf("expected shed after retries exhausted, got %v", err)
	}
	if n := calls.Load(); n != -97 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", 100+n)
	}
}

// TestParseRetryAfter covers the RFC 9110 forms and the clamp.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"garbage", 0, false},
		{"-5", 0, false},
		{"0", 0, true},
		{"2", 2 * time.Second, true},
		{"1.5", 1500 * time.Millisecond, true},
		{"3600", maxRetryAfter, true}, // clamped
		{time.Now().Add(2 * time.Hour).UTC().Format(http.TimeFormat), maxRetryAfter, true},
		{time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), 0, true}, // past date -> 0
	}
	for _, tc := range cases {
		got, ok := parseRetryAfter(tc.in)
		if ok != tc.ok {
			t.Errorf("parseRetryAfter(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		// HTTP-date results carry sub-second skew from time.Until.
		if diff := got - tc.want; diff < -2*time.Second || diff > 2*time.Second {
			t.Errorf("parseRetryAfter(%q) = %v, want ~%v", tc.in, got, tc.want)
		}
	}
}
