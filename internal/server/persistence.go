package server

import (
	"encoding/json"
	"fmt"
	"time"

	"ecopatch/internal/cache"
	"ecopatch/internal/cnf"
	"ecopatch/internal/persist"
	"ecopatch/internal/sat"
)

// jobRecord is the JSON payload of one RecJob record: the job's wire
// status plus the result-cache digest, so a replayed done job can warm
// the content-addressed dedup cache.
type jobRecord struct {
	Digest string    `json:"digest,omitempty"`
	Status JobStatus `json:"status"`
}

// stateRank orders lifecycle states for replay merging. Appends from
// the submit goroutine (queued) and the worker (running, terminal) are
// not strictly ordered on disk, so replay keeps the most advanced
// state per job rather than trusting raw log order — a terminal record
// is never demoted by a late-arriving queued record.
func stateRank(s State) int {
	switch s {
	case StateQueued:
		return 0
	case StateRunning:
		return 1
	default:
		return 2
	}
}

// persistence wires a persist.Log through the daemon: replay on open
// (warm solve cache, restore job history, warm result cache), append
// hooks on the live paths, and a compaction snapshot over the current
// in-memory state.
type persistence struct {
	s  *Server
	lg *persist.Log
}

// openPersistence opens (or creates) the data dir's segment log and
// replays it into the server's stores. Called from New after the
// caches exist and before any worker or handler runs, so replay needs
// no locking discipline beyond what the stores already provide.
//
// Jobs that were queued or running at the crash cannot be resumed (the
// solve context died with the process); they are restored as failed
// with Recovered set and a distinct "recovered" error, so operators
// can tell a crash casualty from a genuine engine failure.
func openPersistence(s *Server, dir string) (*persistence, error) {
	p := &persistence{s: s}
	var (
		jobs                        = map[string]*jobRecord{}
		order                       []string
		solveRestored, solveSkipped int
		jobSkipped                  int
	)
	lg, err := persist.Open(persist.Options{Dir: dir, Log: s.cfg.Log}, func(typ persist.RecordType, payload []byte) {
		switch typ {
		case persist.RecSolve:
			if s.ecoCache == nil {
				solveSkipped++ // cache disabled this boot; entries stay on disk as garbage
				return
			}
			f, assumps, v, derr := persist.DecodeSolve(payload)
			if derr != nil {
				solveSkipped++
				return
			}
			s.ecoCache.Solve.Insert(f, assumps, v)
			solveRestored++
		case persist.RecJob:
			var rec jobRecord
			if json.Unmarshal(payload, &rec) != nil || rec.Status.ID == "" {
				jobSkipped++
				return
			}
			prev, ok := jobs[rec.Status.ID]
			if !ok {
				order = append(order, rec.Status.ID)
				cp := rec
				jobs[rec.Status.ID] = &cp
				return
			}
			if stateRank(rec.Status.State) >= stateRank(prev.Status.State) {
				*prev = rec
			}
		}
	})
	if err != nil {
		return nil, err
	}
	p.lg = lg

	now := time.Now()
	for _, id := range order {
		rec := jobs[id]
		st := rec.Status
		if !st.State.Terminal() {
			st.Error = fmt.Sprintf("recovered: daemon restarted while job was %s", st.State)
			st.State = StateFailed
			st.Recovered = true
			t := now
			st.FinishedAt = &t
			st.Result = nil
		}
		if s.store.Restore(st) && st.State == StateDone && rec.Digest != "" && s.rcache != nil {
			s.rcache.restore(rec.Digest, st.ID, st.Result)
		}
	}

	// Live = what actually survived into memory (replay inserts may
	// have been evicted by the caches' own bounds); the rest of the
	// replayed records is garbage feeding the compaction trigger.
	liveJobs := 0
	for _, n := range s.store.Counts() {
		liveJobs += n
	}
	liveSolve := 0
	if s.ecoCache != nil {
		liveSolve = s.ecoCache.Solve.Stats().Entries
	}
	lg.SetLive(int64(liveJobs + liveSolve))

	// Hooks go in only after replay, so replayed entries are not
	// re-appended to the log they just came from. Solve entries are
	// async (a lost cache entry just re-solves); evictions feed the
	// garbage counter that triggers compaction.
	if s.ecoCache != nil {
		s.ecoCache.Solve.OnInsert = func(f *cnf.Formula, assumps []sat.Lit, v cache.Verdict) {
			b := persist.EncodeSolve(f, assumps, v)
			if b == nil {
				return
			}
			if err := lg.AppendAsync(persist.RecSolve, b); err != nil && err != persist.ErrClosed {
				s.cfg.Log.Printf("persist: solve entry: %v", err)
			}
		}
		s.ecoCache.Solve.OnEvict = func(n int) { lg.MarkGarbage(int64(n)) }
	}
	s.store.onEvict = func(n int) { lg.MarkGarbage(int64(n)) }
	lg.SetSnapshot(p.snapshot)
	s.cfg.Log.Printf("persist: %s: replayed %d jobs (%d skipped), %d solve entries (%d skipped)",
		dir, liveJobs, jobSkipped, solveRestored, solveSkipped)
	return p, nil
}

// snapshot writes the current live state for compaction: every live
// solve-cache entry plus one record per retained job. Replay order is
// safe because the snapshot segment sorts before the post-compaction
// tail and both record families merge idempotently.
func (p *persistence) snapshot(w *persist.SnapshotWriter) error {
	var werr error
	if p.s.ecoCache != nil {
		p.s.ecoCache.Solve.Range(func(f *cnf.Formula, assumps []sat.Lit, v cache.Verdict) bool {
			b := persist.EncodeSolve(f, assumps, v)
			if b == nil {
				return true
			}
			werr = w.Write(persist.RecSolve, b)
			return werr == nil
		})
		if werr != nil {
			return werr
		}
	}
	for _, rec := range p.s.store.persistSnapshot() {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if err := w.Write(persist.RecJob, b); err != nil {
			return err
		}
	}
	return werr
}

// saveJob appends one job transition record. Terminal records are
// durable (group-commit fsync: the smoke contract is that a finished
// job survives kill -9); queued/running records are async — losing the
// tail just means the job recovers as failed, which is what a crashed
// queued/running job becomes anyway.
func (p *persistence) saveJob(j *Job, status JobStatus, durable bool) {
	b, err := json.Marshal(jobRecord{Digest: j.digest, Status: status})
	if err != nil {
		p.s.cfg.Log.Printf("persist: job %s: encode: %v", j.ID, err)
		return
	}
	// Every record after the job's first supersedes the previous one.
	if j.persistCount.Add(1) > 1 {
		p.lg.MarkGarbage(1)
	}
	if durable {
		err = p.lg.Append(persist.RecJob, b)
	} else {
		err = p.lg.AppendAsync(persist.RecJob, b)
	}
	if err != nil && err != persist.ErrClosed {
		p.s.cfg.Log.Printf("persist: job %s: append: %v", j.ID, err)
	}
}
