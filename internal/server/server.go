package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ecopatch/internal/atomicio"
	"ecopatch/internal/cache"
	"ecopatch/internal/eco"
)

// Config tunes the daemon.
type Config struct {
	// Workers is the solve-pool size (default: GOMAXPROCS). ECO
	// solves are CPU-bound, so more workers than cores just thrashes.
	Workers int
	// CPUSlots bounds total intra-solve parallelism: every running job
	// holds as many slots as its effective Parallelism (at least 1),
	// so job workers × intra-job threads never oversubscribes the
	// machine. Default: max(GOMAXPROCS, Workers), which preserves the
	// one-slot-per-worker behavior when no job asks for parallelism.
	CPUSlots int
	// QueueCap bounds the admission queue (default 64). A full queue
	// sheds new submissions with 429 + Retry-After instead of letting
	// latency grow without bound.
	QueueCap int
	// MaxJobs bounds the job store (default 1024); oldest finished
	// jobs are evicted first.
	MaxJobs int
	// DefaultTimeout applies to jobs that set no deadline of their
	// own; zero leaves them unbounded.
	DefaultTimeout time.Duration
	// MaxTimeout clamps per-job deadlines; zero means no clamp.
	MaxTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 32 MiB — contest
	// netlists are text and compress poorly, but a full design still
	// fits comfortably).
	MaxBodyBytes int64
	// ResultsDir, when set, persists every finished job's result as
	// <dir>/<id>.json, written atomically.
	ResultsDir string
	// DefaultPreprocess enables CNF preprocessing for jobs that leave
	// "preprocess" unset (ecod serve -prep). The default is skipped,
	// not errored, for interpolation-patch jobs: preprocessing is
	// incompatible with proof logging, and a server-wide default must
	// not reject jobs that never asked for it.
	DefaultPreprocess bool
	// DefaultSim enables the bit-parallel simulation layer (pattern
	// bank + divisor pruning) for jobs that leave "sim" unset
	// (ecod serve -sim).
	DefaultSim bool
	// DefaultRewrite enables DAG-aware miter rewriting for jobs that
	// leave "rewrite" unset (ecod serve -rewrite).
	DefaultRewrite bool
	// DataDir, when set, enables crash-safe persistence: solve-cache
	// entries and job transitions are appended to a segment log in this
	// directory and replayed on the next boot — finished jobs stay
	// listable with their results, identical re-submissions hit the
	// warmed result cache, and jobs that were queued or running at the
	// crash come back as failed with Recovered set.
	DataDir string
	// CacheEntries, when > 0, enables the daemon's two caches: the
	// content-addressed result cache (completed results served
	// instantly to identical submissions, in-flight duplicates
	// attached to the job already solving them) and the shared
	// eco/SAT solve cache handed to every job. Both are bounded to
	// roughly this many entries. Zero disables caching entirely.
	CacheEntries int
	// Log receives operational lines; nil discards them.
	Log *log.Logger
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CPUSlots <= 0 {
		c.CPUSlots = runtime.GOMAXPROCS(0)
		if c.CPUSlots < c.Workers {
			c.CPUSlots = c.Workers
		}
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Log == nil {
		c.Log = log.New(io.Discard, "", 0)
	}
}

// Server is the ecod daemon core: store + queue + worker pool +
// metrics, exposed over an http.Handler. Create with New, serve
// Handler(), stop with Drain.
type Server struct {
	cfg     Config
	store   *Store
	metrics *Metrics
	slots   *slotSem

	// rcache dedupes whole jobs by input digest; ecoCache is the
	// shared solve/window cache threaded into every job's options.
	// Both are nil when Config.CacheEntries is zero.
	rcache   *resultCache
	ecoCache *cache.Cache

	// persist is the on-disk durability layer (nil without DataDir);
	// start stamps boot time for the uptime gauge.
	persist *persistence
	start   time.Time

	queue    chan *Job
	quit     chan struct{}
	drained  chan struct{}
	draining atomic.Bool
	running  atomic.Int64
	wg       sync.WaitGroup

	// solve runs one job; tests stub it to control timing. Defaults
	// to eco.SolveContext.
	solve func(ctx context.Context, inst *eco.Instance, opt eco.Options) (*eco.Result, error)
}

// New builds a server and starts its worker pool. With Config.DataDir
// set it also opens the persistence log and replays it — the only way
// New can fail.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	s := &Server{
		cfg:     cfg,
		store:   NewStore(cfg.MaxJobs),
		metrics: NewMetrics(),
		slots:   newSlotSem(cfg.CPUSlots),
		queue:   make(chan *Job, cfg.QueueCap),
		quit:    make(chan struct{}),
		drained: make(chan struct{}),
		solve:   eco.SolveContext,
		start:   time.Now(),
	}
	if cfg.CacheEntries > 0 {
		s.rcache = newResultCache(cfg.CacheEntries)
		s.ecoCache = cache.New(cfg.CacheEntries)
	}
	s.store.onFinish = s.jobFinished
	if cfg.DataDir != "" {
		// Replay happens here, before any worker or handler exists, so
		// the stores are warmed without racing live traffic.
		p, err := openPersistence(s, cfg.DataDir)
		if err != nil {
			return nil, err
		}
		s.persist = p
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Metrics exposes the metrics set (for embedding hosts).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Store exposes the job store (for embedding hosts and tests).
func (s *Server) Store() *Store { return s.store }

// worker pulls jobs until drain. The non-blocking quit check first
// makes drain deterministic: once quit closes, no worker starts
// another queued job even if the queue is non-empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one job end to end and records its terminal state.
func (s *Server) runJob(j *Job) {
	// CPU-slot admission: a job weighs its intra-solve parallelism.
	// 0 means the daemon default of 1 (serial) — the engine's
	// GOMAXPROCS-aware default would let one job monopolize the pool.
	par := j.opt.Parallelism
	if par <= 0 {
		par = 1
	}
	if par > s.cfg.CPUSlots {
		par = s.cfg.CPUSlots
	}
	j.opt.Parallelism = par
	if s.ecoCache != nil {
		j.opt.Cache = s.ecoCache
	}
	held, ok := s.slots.acquire(par, s.quit)
	if !ok {
		s.store.Finish(j, StateCancelled, "server draining", nil)
		return
	}
	defer s.slots.release(held)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if !s.store.Start(j, cancel) {
		return // cancelled while queued
	}
	s.persistJob(j, false)
	s.metrics.QueueWait(time.Since(j.queuedAt))
	s.running.Add(1)
	defer s.running.Add(-1)

	start := time.Now()
	res, err := s.solve(ctx, j.inst, j.opt)
	elapsed := time.Since(start)
	switch {
	case err != nil:
		s.cfg.Log.Printf("job %s failed after %v: %v", j.ID, elapsed.Round(time.Millisecond), err)
		s.store.Finish(j, StateFailed, err.Error(), nil)
	case res.TimedOut && s.store.UserCancelled(j):
		s.store.Finish(j, StateCancelled, "job cancelled", resultFromEco(res))
	case res.TimedOut:
		s.store.Finish(j, StateTimeout, "deadline exceeded; partial result attached", resultFromEco(res))
	default:
		s.store.Finish(j, StateDone, "", resultFromEco(res))
	}
}

// persistJob appends the job's current status to the persistence log
// (no-op without DataDir). Non-terminal snapshots ride the async path.
func (s *Server) persistJob(j *Job, durable bool) {
	if s.persist == nil {
		return
	}
	status, ok := s.store.Get(j.ID)
	if !ok {
		// Not registered yet (worker outran the submit goroutine):
		// snapshot through the job's own fields under the store lock.
		status = func() JobStatus {
			s.store.mu.Lock()
			defer s.store.mu.Unlock()
			return j.statusLocked()
		}()
	}
	status.Result = nil // terminal records carry results via jobFinished
	s.persist.saveJob(j, status, durable)
}

// jobFinished is the store's terminal-transition hook: metrics and
// the optional on-disk result file.
func (s *Server) jobFinished(j *Job, status JobStatus) {
	var solve time.Duration
	if status.StartedAt != nil && status.FinishedAt != nil {
		solve = status.FinishedAt.Sub(*status.StartedAt)
	}
	var stats *eco.Stats
	// Aggregate engine counters only for jobs that actually ran a
	// solve. Jobs finished without starting — cancelled while queued,
	// dedup waiters, and instant cache hits — carry a copy of some
	// other run's result (or none), and folding that copy in would
	// count the same solve's work once per duplicate.
	if status.Result != nil && status.StartedAt != nil {
		// Reconstruct the counters the metrics surface aggregates
		// from the wire cell (the full eco.Stats is not retained).
		stats = &eco.Stats{
			SATCalls:        status.Result.SATCalls,
			StructuralFixes: status.Result.Structural,
			SupportTime:     time.Duration(status.Result.SupportSec * float64(time.Second)),
			PatchTime:       time.Duration(status.Result.PatchSec * float64(time.Second)),
			VerifyTime:      time.Duration(status.Result.VerifySec * float64(time.Second)),
		}
		stats.PortfolioRaces = status.Result.PortfolioRaces
		stats.PortfolioWins = status.Result.PortfolioWins
		stats.Solver.SolveCalls = status.Result.SATCalls
		stats.Solver.Conflicts = status.Result.Conflicts
		stats.Solver.Decisions = status.Result.Decisions
		stats.Solver.Propagations = status.Result.Propagations
		stats.Solver.Restarts = status.Result.Restarts
		stats.Solver.Learnts = status.Result.Learnts
		stats.Solver.Removed = status.Result.LearntEvict
		stats.Solver.SharedOut = status.Result.SharedOut
		stats.Solver.SharedIn = status.Result.SharedIn
		stats.CacheHits = status.Result.CacheHits
		stats.CacheMisses = status.Result.CacheMisses
		stats.CacheCollisions = status.Result.CacheCollisions
		stats.Prep.VarsEliminated = status.Result.PrepVarsEliminated
		stats.Prep.ClausesSubsumed = status.Result.PrepClausesSubsumed
		stats.Prep.LitsStrengthened = status.Result.PrepLitsStrengthened
		stats.Prep.PrepTime = time.Duration(status.Result.PrepSeconds * float64(time.Second))
		stats.SimElided = status.Result.SimElided
		stats.SimPruned = status.Result.SimPruned
		stats.SimPatterns = status.Result.SimPatterns
		stats.RewriteNodesBefore = status.Result.RewriteNodesBefore
		stats.RewriteNodesAfter = status.Result.RewriteNodesAfter
		stats.RewriteTime = time.Duration(status.Result.RewriteSec * float64(time.Second))
	}
	s.metrics.Finished(status.State, solve, stats)
	s.cfg.Log.Printf("job %s (%s) -> %s", j.ID, j.Name, status.State)

	// Terminal records are durable (group-commit fsync): a finished
	// job — result included — must survive kill -9.
	if s.persist != nil {
		s.persist.saveJob(j, status, true)
	}

	// Resolve result-cache bookkeeping: cache the completed result and
	// finish every duplicate submission that attached while this job
	// was in flight. Waiters carry no digest, so this cannot recurse,
	// and Finish is idempotent, so a waiter cancelled in the meantime
	// keeps its cancellation.
	if s.rcache != nil && j.digest != "" {
		waiters := s.rcache.complete(j.digest, j.ID, status.State == StateDone, status.Result)
		for _, wj := range waiters {
			s.store.Finish(wj, status.State, status.Error, status.Result)
		}
	}

	if s.cfg.ResultsDir != "" && status.Result != nil {
		path := filepath.Join(s.cfg.ResultsDir, j.ID+".json")
		err := atomicio.WriteFile(path, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(status)
		})
		if err != nil {
			s.cfg.Log.Printf("job %s: result file: %v", j.ID, err)
		}
	}
}

// Drain stops the daemon gracefully: admission closes (503), workers
// stop picking up queued jobs (which are cancelled and flushed), and
// in-flight solves get the grace period to finish naturally before
// their contexts are cancelled — the engine then stops at the next
// stage boundary and the partial results are recorded. Drain blocks
// until every worker has exited. Safe to call more than once.
func (s *Server) Drain(grace time.Duration) {
	if !s.draining.CompareAndSwap(false, true) {
		<-s.drained
		return
	}
	s.cfg.Log.Printf("draining: admission closed, grace %v", grace)
	close(s.quit)
	// Cancel everything still queued; workers no longer take from the
	// queue once quit is closed.
sweep:
	for {
		select {
		case j := <-s.queue:
			s.store.Finish(j, StateCancelled, "server draining", nil)
		default:
			break sweep
		}
	}
	var timer *time.Timer
	if grace > 0 {
		timer = time.AfterFunc(grace, func() {
			s.cfg.Log.Printf("drain grace expired; interrupting in-flight solves")
			s.store.CancelRunning("server draining")
		})
	} else {
		s.store.CancelRunning("server draining")
	}
	s.wg.Wait()
	if timer != nil {
		timer.Stop()
	}
	// A submission that raced the sweep may still sit in the queue;
	// no worker will ever run it, so flush it here.
	for {
		select {
		case j := <-s.queue:
			s.store.Finish(j, StateCancelled, "server draining", nil)
		default:
			// Every Finish has run by now, so the log holds the final
			// state of every job; seal it before declaring the drain
			// done. A kill -9 skips this — that is what recovery is for.
			if s.persist != nil {
				if err := s.persist.lg.Close(); err != nil {
					s.cfg.Log.Printf("persist: close: %v", err)
				}
			}
			close(s.drained)
			s.cfg.Log.Printf("drain complete")
			return
		}
	}
}

// apiError is the JSON error envelope.
type apiError struct {
	Error         string  `json:"error"`
	RetryAfterSec float64 `json:"retry_after_sec,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, apiError{Error: msg})
}

// retryAfter estimates how long a shed client should back off: the
// queue is full, so at best a slot frees when the next job finishes.
// One second is deliberately coarse — admission pressure, not an SLA.
const retryAfter = 1 * time.Second

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.metrics.RejectedDraining()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req JobRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	inst, err := req.Instance()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	opt, err := req.Options.Eco()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if opt.Timeout == 0 {
		opt.Timeout = s.cfg.DefaultTimeout
	}
	if req.Options.Preprocess == nil && s.cfg.DefaultPreprocess && opt.Patch != eco.PatchInterpolation {
		opt.Preprocess = true
	}
	if req.Options.Sim == nil && s.cfg.DefaultSim {
		opt.SimBank, opt.SimPrune = true, true
	}
	if req.Options.Rewrite == nil && s.cfg.DefaultRewrite {
		opt.Rewrite = true
	}
	if s.cfg.MaxTimeout > 0 && (opt.Timeout == 0 || opt.Timeout > s.cfg.MaxTimeout) {
		opt.Timeout = s.cfg.MaxTimeout
	}

	j := s.store.NewJob(inst.Name, inst, opt)
	if s.rcache != nil {
		digest := requestDigest(&req, opt)
		if res, attached := s.rcache.admit(digest, j); res != nil {
			// Completed result on file: the job is born terminal and
			// never touches the queue or the solve pool.
			s.metrics.CacheHit()
			s.metrics.Submitted()
			s.store.Register(j)
			s.store.Finish(j, StateDone, "", res)
			s.respondSubmitted(w, j)
			return
		} else if attached {
			// Identical job already queued or running: this one rides
			// along and is finished together with its parent.
			s.metrics.CacheAttached()
			s.metrics.Submitted()
			s.store.Register(j)
			s.persistJob(j, false)
			s.respondSubmitted(w, j)
			return
		}
		s.metrics.CacheMiss()
		j.digest = digest
	}

	// Enqueue before registering: a shed job is then never visible by
	// ID, so a racing DELETE cannot drive it to a second terminal
	// transition (shed + cancelled) and double-count in /metrics.
	select {
	case s.queue <- j:
	default:
		// Admission control: bounded queue is full — shed the load
		// now rather than queueing into unbounded latency.
		s.metrics.Shed()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retryAfter.Seconds())))
		writeJSON(w, http.StatusTooManyRequests, apiError{
			Error:         "queue full",
			RetryAfterSec: retryAfter.Seconds(),
		})
		return
	}
	s.metrics.Submitted()
	s.store.Register(j)
	if s.rcache != nil && j.digest != "" {
		s.rcache.markInflight(j.digest, j)
	}
	s.persistJob(j, false)
	s.respondSubmitted(w, j)
}

// respondSubmitted writes the 201 for one admitted job.
func (s *Server) respondSubmitted(w http.ResponseWriter, j *Job) {
	status, _ := s.store.Get(j.ID)
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusCreated, status)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	status, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var state State
	if v := q.Get("state"); v != "" {
		state = State(v)
		valid := false
		for _, known := range States {
			if state == known {
				valid = true
				break
			}
		}
		if !valid {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown state %q", v))
			return
		}
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid limit %q", v))
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: s.store.List(state, limit)})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	status, ok := s.store.Cancel(r.PathValue("id"), "cancelled by request")
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	// A running job cancels asynchronously: 202 tells the client the
	// interrupt is in flight and the terminal state is still coming.
	code := http.StatusOK
	if !status.State.Terminal() {
		code = http.StatusAccepted
	}
	writeJSON(w, code, status)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g := gaugeSnapshot{
		queueDepth:    len(s.queue),
		queueCapacity: cap(s.queue),
		running:       int(s.running.Load()),
		workers:       s.cfg.Workers,
		cpuSlots:      s.cfg.CPUSlots,
		cpuSlotsBusy:  s.cfg.CPUSlots - s.slots.available(),
		draining:      s.draining.Load(),
		counts:        s.store.Counts(),
	}
	if s.rcache != nil {
		g.cacheEnabled = true
		g.cacheEntries = s.rcache.entries()
		g.solveCacheStats = s.ecoCache.Solve.Stats()
		g.windowCacheStats = s.ecoCache.Window.Stats()
	}
	g.uptimeSec = time.Since(s.start).Seconds()
	if s.persist != nil {
		g.persistEnabled = true
		g.persist = s.persist.lg.Stats()
	}
	s.metrics.WritePrometheus(w, g)
}
