// Package server implements ecod, the ECO-patch service daemon: an
// HTTP/JSON API over the eco engine with a bounded job queue, a
// worker pool running eco.SolveContext under per-job deadlines,
// admission control that sheds load when the queue is full, graceful
// drain, and a live metrics surface aggregating the SAT-kernel
// counters of every finished job.
//
// ECO is an inherently service-shaped workload: change requests
// arrive repeatedly against a mostly-stable design, and solve times
// are heavy-tailed, so the daemon queues work instead of forking per
// request and bounds both the queue and each solve.
package server

import (
	"fmt"
	"strings"
	"time"

	"ecopatch/internal/bench"
	"ecopatch/internal/eco"
	"ecopatch/internal/netlist"
)

// State is a job lifecycle state. Transitions:
//
//	queued → running → done | failed | cancelled | timeout
//	queued → cancelled            (cancelled or shed before a worker picked it up)
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"      // solve completed (result may still be unverified)
	StateFailed    State = "failed"    // engine returned an error
	StateCancelled State = "cancelled" // DELETE /v1/jobs/{id} or server drain
	StateTimeout   State = "timeout"   // per-job deadline expired; partial result attached
)

// Terminal reports whether no further transition can happen.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateTimeout:
		return true
	}
	return false
}

// States lists every lifecycle state, for metrics enumeration.
var States = []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled, StateTimeout}

// JobRequest is the body of POST /v1/jobs: one ECO instance in the
// contest text formats plus engine options.
type JobRequest struct {
	// Name labels the job in listings and result files. Optional.
	Name string `json:"name,omitempty"`
	// Impl is the old implementation netlist (F.v source) with free
	// t_* target points.
	Impl string `json:"impl"`
	// Spec is the new specification netlist (S.v source).
	Spec string `json:"spec"`
	// Weights is the signal cost file (weight.txt source). Empty
	// means unit weights.
	Weights string `json:"weights,omitempty"`
	// Options tunes the engine; zero values take the server defaults.
	Options JobOptions `json:"options"`
}

// JobOptions is the JSON projection of eco.Options. Pointer fields
// distinguish "absent" (engine default) from an explicit false.
type JobOptions struct {
	Support         string  `json:"support,omitempty"` // final | minimize | exact
	Patch           string  `json:"patch,omitempty"`   // cubes | interp
	Window          *bool   `json:"window,omitempty"`
	LastGasp        *bool   `json:"last_gasp,omitempty"`
	CEGARMin        *bool   `json:"cegar_min,omitempty"`
	FunctionalMatch *bool   `json:"functional_match,omitempty"`
	UseQBF          *bool   `json:"use_qbf,omitempty"`
	ForceStructural bool    `json:"force_structural,omitempty"`
	ConfBudget      int64   `json:"conf_budget,omitempty"`
	TimeoutSec      float64 `json:"timeout_sec,omitempty"`
	// Parallelism is the job's intra-solve thread count (SAT portfolio
	// + sharded verification), weighed against the daemon's CPU-slot
	// pool. 0 means 1 — the daemon keeps jobs serial by default so one
	// job cannot monopolize the workers.
	Parallelism int `json:"parallelism,omitempty"`
	// Preprocess enables CNF preprocessing (BVE, subsumption,
	// vivification) on the job's captured solves. Absent takes the
	// server default (-prep); incompatible with patch "interp".
	Preprocess *bool `json:"preprocess,omitempty"`
	// Sim enables the bit-parallel simulation layer (pattern-bank SAT
	// call elision + divisor pruning) for the job. Absent takes the
	// server default (-sim).
	Sim *bool `json:"sim,omitempty"`
	// Rewrite enables DAG-aware rewriting of every miter before it
	// reaches the SAT/QBF solvers. Absent takes the server default
	// (-rewrite).
	Rewrite *bool `json:"rewrite,omitempty"`
}

// Eco materializes the engine options, starting from DefaultOptions.
func (o JobOptions) Eco() (eco.Options, error) {
	opt := eco.DefaultOptions()
	switch strings.ToLower(o.Support) {
	case "", "minimize":
		opt.Support = eco.SupportMinimize
	case "final":
		opt.Support = eco.SupportAnalyzeFinal
	case "exact":
		opt.Support = eco.SupportExact
	default:
		return opt, fmt.Errorf("unknown support algorithm %q (want final, minimize or exact)", o.Support)
	}
	switch strings.ToLower(o.Patch) {
	case "", "cubes":
		opt.Patch = eco.PatchCubeEnum
	case "interp":
		opt.Patch = eco.PatchInterpolation
	default:
		return opt, fmt.Errorf("unknown patch method %q (want cubes or interp)", o.Patch)
	}
	if o.Window != nil {
		opt.Window = *o.Window
	}
	if o.LastGasp != nil {
		opt.LastGasp = *o.LastGasp
	}
	if o.CEGARMin != nil {
		opt.CEGARMin = *o.CEGARMin
	}
	if o.FunctionalMatch != nil {
		opt.FunctionalMatch = *o.FunctionalMatch
	}
	if o.UseQBF != nil {
		opt.UseQBF = *o.UseQBF
	}
	opt.ForceStructural = o.ForceStructural
	if o.ConfBudget < 0 {
		return opt, fmt.Errorf("conf_budget must be >= 0")
	}
	opt.ConfBudget = o.ConfBudget
	if o.TimeoutSec < 0 {
		return opt, fmt.Errorf("timeout_sec must be >= 0")
	}
	opt.Timeout = time.Duration(o.TimeoutSec * float64(time.Second))
	if o.Parallelism < 0 {
		return opt, fmt.Errorf("parallelism must be >= 0")
	}
	// The zero value is normalized to 1 by the worker (serial daemon
	// default), then clamped to the CPU-slot pool.
	opt.Parallelism = o.Parallelism
	if o.Preprocess != nil {
		opt.Preprocess = *o.Preprocess
	}
	if o.Sim != nil {
		opt.SimBank, opt.SimPrune = *o.Sim, *o.Sim
	}
	if o.Rewrite != nil {
		opt.Rewrite = *o.Rewrite
	}
	if opt.Preprocess && opt.Patch == eco.PatchInterpolation {
		return opt, fmt.Errorf("preprocess is incompatible with patch \"interp\" (proof logging needs the original clauses)")
	}
	return opt, nil
}

// Instance parses and validates the netlists and weights.
func (r *JobRequest) Instance() (*eco.Instance, error) {
	if strings.TrimSpace(r.Impl) == "" {
		return nil, fmt.Errorf("impl netlist is empty")
	}
	if strings.TrimSpace(r.Spec) == "" {
		return nil, fmt.Errorf("spec netlist is empty")
	}
	impl, err := netlist.ParseString(r.Impl)
	if err != nil {
		return nil, fmt.Errorf("impl: %w", err)
	}
	spec, err := netlist.ParseString(r.Spec)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	weights := netlist.NewWeights()
	if strings.TrimSpace(r.Weights) != "" {
		weights, err = netlist.ParseWeights(strings.NewReader(r.Weights))
		if err != nil {
			return nil, fmt.Errorf("weights: %w", err)
		}
	}
	name := r.Name
	if name == "" {
		name = "job"
	}
	inst := &eco.Instance{Name: name, Impl: impl, Spec: spec, Weights: weights}
	if err := inst.Check(); err != nil {
		return nil, err
	}
	return inst, nil
}

// JobStatus is the wire form of one job, returned by every /v1/jobs
// endpoint.
type JobStatus struct {
	ID         string     `json:"id"`
	Name       string     `json:"name,omitempty"`
	State      State      `json:"state"`
	QueuedAt   time.Time  `json:"queued_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	Error      string     `json:"error,omitempty"`
	Result     *JobResult `json:"result,omitempty"`
	// DedupOf names the job whose solve produced (or will produce)
	// this job's result, when the submission was deduplicated by the
	// daemon's content-addressed result cache.
	DedupOf string `json:"dedup_of,omitempty"`
	// Recovered marks a job restored from the persistence log after a
	// daemon crash while it was queued or running: its solve died with
	// the process, so it reports failed with a "recovered" error.
	Recovered bool `json:"recovered,omitempty"`
}

// JobResult is the outcome of a finished solve. It embeds the
// ecobench table1@v1 cell (same field names, same units) so trend
// tooling reads job results and benchmark cells interchangeably, and
// adds the synthesized patch itself.
type JobResult struct {
	Schema string `json:"schema"` // "ecod/result@v1"
	bench.JSONCell
	Targets []TargetResult `json:"targets,omitempty"`
	// Patch is the synthesized patch module in the contest netlist
	// format (inputs = support signals, outputs = targets).
	Patch string `json:"patch,omitempty"`
}

// ResultSchema identifies the JobResult layout.
const ResultSchema = "ecod/result@v1"

// TargetResult mirrors eco.TargetPatch on the wire.
type TargetResult struct {
	Target     string   `json:"target"`
	Support    []string `json:"support"`
	Cost       int      `json:"cost"`
	Gates      int      `json:"gates"`
	Cubes      int      `json:"cubes,omitempty"`
	Structural bool     `json:"structural,omitempty"`
}

// resultFromEco flattens an engine result into the wire form.
func resultFromEco(res *eco.Result) *JobResult {
	jr := &JobResult{
		Schema:   ResultSchema,
		JSONCell: bench.CellFromResult(res),
	}
	for _, p := range res.Patches {
		jr.Targets = append(jr.Targets, TargetResult{
			Target:     p.Target,
			Support:    p.Support,
			Cost:       p.Cost,
			Gates:      p.Gates,
			Cubes:      p.Cubes,
			Structural: p.Structural,
		})
	}
	if res.Patch != nil {
		var sb strings.Builder
		if err := netlist.Write(&sb, res.Patch); err == nil {
			jr.Patch = sb.String()
		}
	}
	return jr
}
