package server

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	cachepkg "ecopatch/internal/cache"
	"ecopatch/internal/eco"
	"ecopatch/internal/persist"
)

// latencyBuckets are the upper bounds (seconds) of the solve-latency
// histogram. ECO solve times are heavy-tailed, so the buckets span
// sub-millisecond structural fixes up to minute-class SAT grinds.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: bucket counts are cumulative, +Inf implied by count).
type histogram struct {
	counts []int64
	sum    float64
	total  int64
}

func newHistogram() *histogram { return &histogram{counts: make([]int64, len(latencyBuckets))} }

func (h *histogram) observe(v float64) {
	h.sum += v
	h.total++
	for i, ub := range latencyBuckets {
		if v <= ub {
			h.counts[i]++
		}
	}
}

// Metrics aggregates the daemon's observability counters. All
// methods are safe for concurrent use.
type Metrics struct {
	mu        sync.Mutex
	submitted int64
	shed      int64 // admission rejections: queue full (429)
	rejected  int64 // admission rejections: draining (503)
	finished  map[State]int64

	// Result-cache admission outcomes (only counted when the cache
	// is enabled; hits + attached + misses == cache-eligible submits).
	cacheHits     int64 // served instantly from a completed result
	cacheAttached int64 // deduped onto an in-flight identical job
	cacheMisses   int64 // went to the solve pool

	queueWait *histogram // seconds from enqueue to worker pickup
	solveTime *histogram // seconds inside eco.SolveContext

	// stats sums the engine counters of every finished job, the
	// service-level continuation of ecobench's per-run cells.
	stats eco.Stats
}

// NewMetrics builds an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		finished:  make(map[State]int64),
		queueWait: newHistogram(),
		solveTime: newHistogram(),
	}
}

// Submitted counts one accepted job.
func (m *Metrics) Submitted() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

// Shed counts one queue-full rejection.
func (m *Metrics) Shed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// RejectedDraining counts one submission refused during drain.
func (m *Metrics) RejectedDraining() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// CacheHit counts one submission served from a completed result.
func (m *Metrics) CacheHit() {
	m.mu.Lock()
	m.cacheHits++
	m.mu.Unlock()
}

// CacheAttached counts one submission deduped onto an in-flight job.
func (m *Metrics) CacheAttached() {
	m.mu.Lock()
	m.cacheAttached++
	m.mu.Unlock()
}

// CacheMiss counts one cache-eligible submission that had to solve.
func (m *Metrics) CacheMiss() {
	m.mu.Lock()
	m.cacheMisses++
	m.mu.Unlock()
}

// QueueWait records the queued→running latency of one job.
func (m *Metrics) QueueWait(d time.Duration) {
	m.mu.Lock()
	m.queueWait.observe(d.Seconds())
	m.mu.Unlock()
}

// Finished records a terminal transition with the job's solve wall
// clock and, when a solve actually ran, its engine stats.
func (m *Metrics) Finished(state State, solve time.Duration, stats *eco.Stats) {
	m.mu.Lock()
	m.finished[state]++
	if solve > 0 {
		m.solveTime.observe(solve.Seconds())
	}
	if stats != nil {
		m.stats.Add(*stats)
	}
	m.mu.Unlock()
}

// SolverStats snapshots the aggregated engine counters.
func (m *Metrics) SolverStats() eco.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// gauges the exposition needs but Metrics does not own.
type gaugeSnapshot struct {
	queueDepth    int
	queueCapacity int
	running       int
	workers       int
	cpuSlots      int
	cpuSlotsBusy  int
	draining      bool
	counts        map[State]int

	// Result-cache and shared solve-cache occupancy (zero when the
	// cache is disabled).
	cacheEnabled     bool
	cacheEntries     int // completed results retained for dedup
	solveCacheStats  cachepkg.Stats
	windowCacheStats cachepkg.Stats

	// Persistence-log counters (persistEnabled false without -data-dir)
	// and process uptime.
	persistEnabled bool
	persist        persist.Stats
	uptimeSec      float64
}

// buildInfo caches the ecod_build_info line: go version plus the main
// module's version and VCS revision when the binary carries them.
var buildInfo struct {
	once sync.Once
	line string
}

func buildInfoLine() string {
	buildInfo.once.Do(func() {
		version, revision := "unknown", "unknown"
		if bi, ok := debug.ReadBuildInfo(); ok {
			if bi.Main.Version != "" {
				version = bi.Main.Version
			}
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					revision = s.Value
				}
			}
		}
		buildInfo.line = fmt.Sprintf("ecod_build_info{go_version=%q,version=%q,revision=%q} 1\n",
			runtime.Version(), version, revision)
	})
	return buildInfo.line
}

// WritePrometheus renders the Prometheus text exposition format
// (version 0.0.4; hand-rolled — the repo takes no dependencies).
func (m *Metrics) WritePrometheus(w io.Writer, g gaugeSnapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("ecod_jobs_submitted_total", "Jobs accepted into the queue.", m.submitted)
	counter("ecod_jobs_shed_total", "Submissions rejected with 429 because the queue was full.", m.shed)
	counter("ecod_jobs_rejected_draining_total", "Submissions rejected with 503 during drain.", m.rejected)

	counter("ecod_cache_hits_total", "Submissions served instantly from a cached completed result.", m.cacheHits)
	counter("ecod_cache_attached_total", "Submissions deduped onto an identical in-flight job.", m.cacheAttached)
	counter("ecod_cache_misses_total", "Cache-eligible submissions that went to the solve pool.", m.cacheMisses)

	fmt.Fprintf(w, "# HELP ecod_jobs_finished_total Terminal job transitions by state.\n# TYPE ecod_jobs_finished_total counter\n")
	for _, s := range States {
		if s.Terminal() {
			fmt.Fprintf(w, "ecod_jobs_finished_total{state=%q} %d\n", s, m.finished[s])
		}
	}

	fmt.Fprintf(w, "# HELP ecod_jobs Current jobs by state.\n# TYPE ecod_jobs gauge\n")
	states := make([]string, 0, len(States))
	for _, s := range States {
		states = append(states, string(s))
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(w, "ecod_jobs{state=%q} %d\n", s, g.counts[State(s)])
	}

	gauge("ecod_queue_depth", "Jobs waiting in the admission queue.", int64(g.queueDepth))
	gauge("ecod_queue_capacity", "Admission queue capacity.", int64(g.queueCapacity))
	gauge("ecod_jobs_running", "Jobs currently being solved.", int64(g.running))
	gauge("ecod_workers", "Worker goroutines in the solve pool.", int64(g.workers))
	gauge("ecod_cpu_slots", "Total CPU slots shared by all jobs (workers x intra-job threads bound).", int64(g.cpuSlots))
	gauge("ecod_cpu_slots_busy", "CPU slots currently held by running jobs.", int64(g.cpuSlotsBusy))
	draining := int64(0)
	if g.draining {
		draining = 1
	}
	gauge("ecod_draining", "1 while the daemon is draining (no new admissions).", draining)

	fmt.Fprintf(w, "# HELP ecod_uptime_seconds Seconds since the daemon started.\n# TYPE ecod_uptime_seconds gauge\necod_uptime_seconds %g\n", g.uptimeSec)
	fmt.Fprintf(w, "# HELP ecod_build_info Build metadata as labels, value fixed at 1.\n# TYPE ecod_build_info gauge\n%s", buildInfoLine())

	if g.persistEnabled {
		p := g.persist
		counter("ecod_persist_records_total", "Records appended to the persistence log since boot.", p.Records)
		counter("ecod_persist_bytes_total", "Bytes appended to the persistence log since boot.", p.Bytes)
		counter("ecod_persist_replayed_total", "Records replayed from the persistence log at boot.", p.Replayed)
		counter("ecod_persist_torn_tail_total", "Torn or corrupt log tails dropped by recovery scans.", p.TornTail)
		counter("ecod_persist_compactions_total", "Completed persistence-log compactions.", p.Compactions)
		counter("ecod_persist_fsync_batches_total", "Group-commit fsync batches issued by the persistence log.", p.FsyncBatches)
		gauge("ecod_persist_live_records", "On-disk records still live (not superseded or evicted).", p.Live)
		gauge("ecod_persist_garbage_records", "On-disk records known dead, feeding the compaction trigger.", p.Garbage)
		gauge("ecod_persist_segments", "Segment files in the data directory.", int64(p.Segments))
	}

	if g.cacheEnabled {
		gauge("ecod_cache_entries", "Completed results retained by the dedup cache.", int64(g.cacheEntries))
		sc := g.solveCacheStats
		gauge("ecod_solve_cache_entries", "Entries in the shared SAT solve cache.", int64(sc.Entries))
		counter("ecod_solve_cache_evictions_total", "Entries evicted from the shared SAT solve cache.", sc.Evictions)
		wc := g.windowCacheStats
		gauge("ecod_window_cache_entries", "Entries in the shared window/patch cache.", int64(wc.Entries))
		counter("ecod_window_cache_evictions_total", "Entries evicted from the shared window/patch cache.", wc.Evictions)
	}

	writeHistogram(w, "ecod_queue_wait_seconds", "Time jobs spent queued before a worker picked them up.", m.queueWait)
	writeHistogram(w, "ecod_solve_seconds", "Wall-clock time inside eco.SolveContext.", m.solveTime)

	// Engine + SAT-kernel counters, summed over every finished job:
	// the same numbers ecobench reports per run, as a live service
	// surface.
	st := m.stats
	counter("ecod_eco_sat_calls_total", "Top-level SAT queries issued by the engine.", st.SATCalls)
	counter("ecod_eco_minimize_calls_total", "SAT calls spent inside support minimization.", int64(st.MinimizeCalls))
	counter("ecod_eco_structural_fixes_total", "Targets patched by the structural fallback.", int64(st.StructuralFixes))
	counter("ecod_eco_cubes_enumerated_total", "SOP cubes enumerated for patch functions.", int64(st.CubesEnumerated))
	counter("ecod_sim_elided_total", "SAT calls answered from the banked-model pattern store.", st.SimElided)
	counter("ecod_sim_pruned_divisors_total", "Divisors dropped by simulation-guided pruning.", st.SimPruned)
	counter("ecod_sim_patterns_total", "Simulation patterns banked (models + counterexamples).", st.SimPatterns)
	counter("ecod_rewrite_nodes_eliminated_total", "Miter AND nodes removed by DAG-aware rewriting.", st.RewriteNodesBefore-st.RewriteNodesAfter)
	fcounter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	counter("ecod_eco_cache_hits_total", "Solve/window cache hits across finished jobs.", st.CacheHits)
	counter("ecod_eco_cache_misses_total", "Solve/window cache misses across finished jobs.", st.CacheMisses)
	counter("ecod_eco_cache_collisions_total", "Hash matches rejected by the full-content screen across finished jobs.", st.CacheCollisions)
	fcounter("ecod_eco_support_seconds_total", "Support-selection wall clock.", st.SupportTime.Seconds())
	fcounter("ecod_eco_patch_seconds_total", "Patch-computation wall clock.", st.PatchTime.Seconds())
	fcounter("ecod_eco_verify_seconds_total", "Verification wall clock.", st.VerifyTime.Seconds())
	counter("ecod_sat_conflicts_total", "SAT kernel conflicts.", st.Solver.Conflicts)
	counter("ecod_sat_decisions_total", "SAT kernel decisions.", st.Solver.Decisions)
	counter("ecod_sat_propagations_total", "SAT kernel propagations.", st.Solver.Propagations)
	counter("ecod_sat_restarts_total", "SAT kernel restarts.", st.Solver.Restarts)
	counter("ecod_sat_learnts_total", "Clauses learnt by the SAT kernel.", st.Solver.Learnts)
	counter("ecod_sat_learnts_removed_total", "Learnt clauses evicted by DB reduction.", st.Solver.Removed)
	counter("ecod_sat_solve_calls_total", "Solve() invocations on SAT kernels.", st.Solver.SolveCalls)
	counter("ecod_sat_shared_out_total", "Learnt clauses exported to portfolio exchanges.", st.Solver.SharedOut)
	counter("ecod_sat_shared_in_total", "Learnt clauses imported from portfolio exchanges.", st.Solver.SharedIn)

	// CNF preprocessing counters (zero until a job runs with
	// preprocess enabled).
	counter("ecod_sat_prep_vars_eliminated_total", "Variables eliminated by CNF preprocessing (bounded variable elimination).", st.Prep.VarsEliminated)
	counter("ecod_sat_prep_clauses_subsumed_total", "Clauses removed by preprocessing subsumption.", st.Prep.ClausesSubsumed)
	counter("ecod_sat_prep_lits_strengthened_total", "Literals removed by self-subsuming resolution and vivification.", st.Prep.LitsStrengthened)
	fcounter("ecod_sat_prep_seconds_total", "Wall clock spent inside CNF preprocessing.", st.Prep.PrepTime.Seconds())
	fcounter("ecod_rewrite_seconds_total", "Wall clock spent inside DAG-aware miter rewriting.", st.RewriteTime.Seconds())

	// Portfolio race outcomes (intra-solve parallelism), labeled by
	// member configuration so win skew is visible per solver recipe.
	counter("ecod_portfolio_races_total", "SAT queries raced across the diversified portfolio.", st.PortfolioRaces)
	fmt.Fprintf(w, "# HELP ecod_portfolio_wins_total Portfolio races decided, by winning member configuration.\n# TYPE ecod_portfolio_wins_total counter\n")
	wins := make([]string, 0, len(st.PortfolioWins))
	for label := range st.PortfolioWins {
		wins = append(wins, label)
	}
	sort.Strings(wins)
	for _, label := range wins {
		fmt.Fprintf(w, "ecod_portfolio_wins_total{config=%q} %d\n", label, st.PortfolioWins[label])
	}
}

func writeHistogram(w io.Writer, name, help string, h *histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, ub := range latencyBuckets {
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, ub, h.counts[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.total)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.total)
}
