package server

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ecopatch/internal/persist"
)

// TestPersistRestartWarm is the core crash-safety contract: finish a
// job, restart the daemon on the same data dir, and both the job
// history and the result cache must have survived — a duplicate
// submission is served instantly from the persisted result.
func TestPersistRestartWarm(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, CacheEntries: 16, DataDir: dir}

	s1, c1 := newTestServer(t, cfg)
	ctx := context.Background()
	st, err := c1.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	st, err = c1.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil || st.State != StateDone {
		t.Fatalf("first run: %+v, err %v", st, err)
	}
	if st.Result == nil || st.Result.Patch == "" {
		t.Fatal("first run produced no patch")
	}
	firstPatch := st.Result.Patch
	solveEntries := s1.ecoCache.Solve.Stats().Entries
	if solveEntries == 0 {
		t.Fatal("solve produced no cache entries to persist")
	}
	s1.Drain(0)

	s2, c2 := newTestServer(t, cfg)
	// Job history survived, result included.
	got, err := c2.Status(ctx, st.ID)
	if err != nil {
		t.Fatalf("restored job not found: %v", err)
	}
	if got.State != StateDone || got.Recovered {
		t.Fatalf("restored job = %+v, want done and not recovered", got)
	}
	if got.Result == nil || got.Result.Patch != firstPatch {
		t.Fatal("restored job lost its result")
	}
	// Solve cache warmed from disk.
	if n := s2.ecoCache.Solve.Stats().Entries; n != solveEntries {
		t.Fatalf("solve cache restored %d entries, want %d", n, solveEntries)
	}
	// Duplicate submission: instant hit from the persisted result,
	// pointing at the original job, identical patch.
	st2, err := c2.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	st2, err = c2.Wait(ctx, st2.ID, 5*time.Millisecond)
	if err != nil || st2.State != StateDone {
		t.Fatalf("dup after restart: %+v, err %v", st2, err)
	}
	if st2.DedupOf != st.ID {
		t.Fatalf("dup dedup_of = %q, want %q", st2.DedupOf, st.ID)
	}
	if st2.Result == nil || st2.Result.Patch != firstPatch {
		t.Fatal("dup served a different patch than the persisted result")
	}
	if hits := metricValue(t, fetchMetrics(t, c2), "ecod_cache_hits_total"); hits != 1 {
		t.Fatalf("cache hits after restart = %v, want 1", hits)
	}
}

// TestPersistRecoverInterrupted crafts the log a kill -9 would leave —
// jobs persisted as queued and running with no terminal record — and
// asserts they recover as failed with the distinct recovered marker.
func TestPersistRecoverInterrupted(t *testing.T) {
	dir := t.TempDir()
	lg, err := persist.Open(persist.Options{Dir: dir}, func(persist.RecordType, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for _, rec := range []jobRecord{
		{Status: JobStatus{ID: "job-queued", Name: "q", State: StateQueued, QueuedAt: now}},
		{Status: JobStatus{ID: "job-running", Name: "r", State: StateRunning, QueuedAt: now, StartedAt: &now}},
		// Out-of-order append: the queued record lands after running,
		// but replay must keep the more advanced state.
		{Status: JobStatus{ID: "job-running", Name: "r", State: StateQueued, QueuedAt: now}},
	} {
		b, _ := json.Marshal(rec)
		if err := lg.Append(persist.RecJob, b); err != nil {
			t.Fatal(err)
		}
	}
	lg.Close()

	_, c := newTestServer(t, Config{Workers: 1, CacheEntries: 16, DataDir: dir})
	ctx := context.Background()
	for id, wasState := range map[string]State{"job-queued": StateQueued, "job-running": StateRunning} {
		st, err := c.Status(ctx, id)
		if err != nil {
			t.Fatalf("%s not restored: %v", id, err)
		}
		if st.State != StateFailed || !st.Recovered {
			t.Fatalf("%s = %+v, want failed+recovered", id, st)
		}
		if !strings.Contains(st.Error, "recovered") || !strings.Contains(st.Error, string(wasState)) {
			t.Fatalf("%s error = %q, want recovered-while-%s", id, st.Error, wasState)
		}
	}
}

// TestPersistTornTail appends garbage to the active segment (a torn
// crash tail) and asserts the daemon recovers the intact prefix,
// counts the torn tail, and keeps serving.
func TestPersistTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, CacheEntries: 16, DataDir: dir}

	s1, c1 := newTestServer(t, cfg)
	ctx := context.Background()
	st, err := c1.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c1.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || st.State != StateDone {
		t.Fatalf("run: %+v, err %v", st, err)
	}
	s1.Drain(0)

	// Tear the tail of the newest segment.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
	f.Close()

	s2, c2 := newTestServer(t, cfg)
	if tt := s2.persist.lg.Stats().TornTail; tt != 1 {
		t.Fatalf("torn_tail = %d, want 1", tt)
	}
	if torn := metricValue(t, fetchMetrics(t, c2), "ecod_persist_torn_tail_total"); torn != 1 {
		t.Fatalf("torn_tail metric = %v, want 1", torn)
	}
	// History intact and the daemon still serves new work.
	if got, err := c2.Status(ctx, st.ID); err != nil || got.State != StateDone {
		t.Fatalf("after torn tail: %+v, err %v", got, err)
	}
	st2, err := c2.Submit(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if st2, err = c2.Wait(ctx, st2.ID, 5*time.Millisecond); err != nil || st2.State != StateDone {
		t.Fatalf("submit after torn tail: %+v, err %v", st2, err)
	}
}

// TestListFilters exercises the -state/-limit listing path end to end:
// server query params, client plumbing, and validation.
func TestListFilters(t *testing.T) {
	dir := t.TempDir()
	_, c := newTestServer(t, Config{Workers: 1, CacheEntries: 0, DataDir: dir})
	ctx := context.Background()

	var ids []string
	for i := 0; i < 3; i++ {
		req := testRequest()
		req.Options.ConfBudget = int64(i + 1) // distinct digests: no dedup
		st, err := c.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if st, err = c.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || st.State != StateDone {
			t.Fatalf("job %d: %+v, err %v", i, st, err)
		}
		ids = append(ids, st.ID)
	}

	done, err := c.List(ctx, "done", 0)
	if err != nil || len(done) != 3 {
		t.Fatalf("state=done: %d jobs, err %v; want 3", len(done), err)
	}
	if queued, err := c.List(ctx, "queued", 0); err != nil || len(queued) != 0 {
		t.Fatalf("state=queued: %d jobs, err %v; want 0", len(queued), err)
	}
	last, err := c.List(ctx, "", 2)
	if err != nil || len(last) != 2 {
		t.Fatalf("limit=2: %d jobs, err %v; want 2", len(last), err)
	}
	// Limit keeps the most recent submissions, in submission order.
	if last[0].ID != ids[1] || last[1].ID != ids[2] {
		t.Fatalf("limit=2 returned %s,%s; want %s,%s", last[0].ID, last[1].ID, ids[1], ids[2])
	}
	if _, err := c.List(ctx, "bogus", 0); err == nil {
		t.Fatal("state=bogus accepted, want 400")
	}
	// Filters survive a restart (listing the restored history).
	srv, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.store.List(StateDone, 1); len(got) != 1 || got[0].ID != ids[2] {
		t.Fatalf("restored List(done,1) = %+v, want [%s]", got, ids[2])
	}
	srv.Drain(0)
}

// TestPersistMetricsSurface asserts the new metric families render.
func TestPersistMetricsSurface(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, CacheEntries: 4, DataDir: t.TempDir()})
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ecod_persist_records_total",
		"ecod_persist_bytes_total",
		"ecod_persist_replayed_total",
		"ecod_persist_torn_tail_total",
		"ecod_persist_compactions_total",
		"ecod_persist_fsync_batches_total",
		"ecod_uptime_seconds",
		"ecod_build_info{go_version=",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %s", want)
		}
	}
}

// fetchMetrics dumps the exposition for metricValue (cache_test.go).
func fetchMetrics(t *testing.T, c *Client) string {
	t.Helper()
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return text
}
