package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ecopatch/internal/eco"
)

// Job is one unit of work owned by the store. All mutable fields are
// guarded by the store's mutex; workers and handlers go through store
// methods rather than touching jobs directly.
type Job struct {
	ID   string
	Name string

	inst *eco.Instance
	opt  eco.Options

	state      State
	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time
	errMsg     string
	result     *JobResult

	// cancel interrupts the in-flight solve (set while running).
	cancel context.CancelFunc
	// userCancelled marks a DELETE (or drain) so the worker can
	// distinguish "cancelled" from "timeout" when SolveContext comes
	// back with TimedOut set.
	userCancelled bool
	// done closes when the job reaches a terminal state, for waiters.
	done chan struct{}

	// digest is the result-cache key of the job's input (empty when
	// the cache is off or the job is a dedup waiter).
	digest string
	// dedupOf is the ID of the in-flight or completed job whose
	// result this job shares (content-addressed dedup).
	dedupOf string

	// recovered marks a job restored from the persistence log that was
	// queued or running when the daemon died: its solve context died
	// with the process, so it is restored as failed.
	recovered bool
	// persistCount counts this job's on-disk records (atomic: the
	// submit goroutine and the worker both append); every record past
	// the first supersedes the previous one as log garbage.
	persistCount atomic.Int32
}

// Store is the in-memory job index. It retains at most maxJobs
// entries: once full, the oldest *terminal* jobs are evicted so a
// long-running daemon does not grow without bound (queued and running
// jobs are never evicted).
type Store struct {
	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // insertion order, for eviction and listing
	maxJobs int

	// onFinish observes every terminal transition (metrics, result
	// files). Called without the store lock held.
	onFinish func(*Job, JobStatus)
	// onEvict observes capacity evictions (n jobs dropped), called
	// without the store lock held. The persist layer hooks it for
	// garbage accounting.
	onEvict func(n int)
}

// NewStore builds a store retaining up to maxJobs entries
// (default 1024 when <= 0).
func NewStore(maxJobs int) *Store {
	if maxJobs <= 0 {
		maxJobs = 1024
	}
	return &Store{jobs: make(map[string]*Job), maxJobs: maxJobs}
}

// newID returns a 16-hex-digit random job ID.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the OS entropy pool is broken;
		// fall back to a time-derived ID rather than crashing the
		// daemon's submit path.
		return fmt.Sprintf("t%015x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// NewJob builds a queued job without registering it in the index.
// The submit path enqueues first and registers only on successful
// admission: a job that was never admitted can then never be found —
// and cancelled — by ID, so a shed submission cannot race a DELETE
// into a phantom terminal transition that double-counts in /metrics.
func (st *Store) NewJob(name string, inst *eco.Instance, opt eco.Options) *Job {
	return &Job{
		ID:       newID(),
		Name:     name,
		inst:     inst,
		opt:      opt,
		state:    StateQueued,
		queuedAt: time.Now(),
		done:     make(chan struct{}),
	}
}

// Register makes a job visible in the index. Start/Finish operate on
// the *Job directly, so a worker may legally pick the job up (or even
// finish it) before registration completes.
func (st *Store) Register(j *Job) {
	st.mu.Lock()
	st.jobs[j.ID] = j
	st.order = append(st.order, j.ID)
	evicted := st.evictLocked()
	onEvict := st.onEvict
	st.mu.Unlock()
	if evicted > 0 && onEvict != nil {
		onEvict(evicted)
	}
}

// Restore inserts a terminal job recovered from the persistence log.
// The job is born finished (its done channel pre-closed) and carries
// whatever result the log preserved. Reports false when the ID is
// already present (an idempotent replay re-delivering a record).
func (st *Store) Restore(s JobStatus) bool {
	if !s.State.Terminal() {
		return false // recovery converts these to failed before calling
	}
	st.mu.Lock()
	if _, ok := st.jobs[s.ID]; ok {
		st.mu.Unlock()
		return false
	}
	j := &Job{
		ID:        s.ID,
		Name:      s.Name,
		state:     s.State,
		queuedAt:  s.QueuedAt,
		errMsg:    s.Error,
		result:    s.Result,
		dedupOf:   s.DedupOf,
		recovered: s.Recovered,
		done:      make(chan struct{}),
	}
	if s.StartedAt != nil {
		j.startedAt = *s.StartedAt
	}
	if s.FinishedAt != nil {
		j.finishedAt = *s.FinishedAt
	}
	close(j.done)
	j.persistCount.Store(1) // its live log record
	st.jobs[j.ID] = j
	st.order = append(st.order, j.ID)
	evicted := st.evictLocked()
	onEvict := st.onEvict
	st.mu.Unlock()
	if evicted > 0 && onEvict != nil {
		onEvict(evicted)
	}
	return true
}

// Add registers a new queued job and returns it.
func (st *Store) Add(name string, inst *eco.Instance, opt eco.Options) *Job {
	j := st.NewJob(name, inst, opt)
	st.Register(j)
	return j
}

// evictLocked drops the oldest terminal jobs while over capacity,
// returning how many were dropped.
func (st *Store) evictLocked() int {
	if len(st.jobs) <= st.maxJobs {
		return 0
	}
	evicted := 0
	kept := st.order[:0]
	for _, id := range st.order {
		j, ok := st.jobs[id]
		if !ok {
			continue
		}
		if len(st.jobs) > st.maxJobs && j.state.Terminal() {
			delete(st.jobs, id)
			evicted++
			continue
		}
		kept = append(kept, id)
	}
	st.order = kept
	return evicted
}

// Get returns the status snapshot of one job.
func (st *Store) Get(id string) (JobStatus, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.statusLocked(), true
}

// Done exposes the job's completion channel, or nil if unknown.
func (st *Store) Done(id string) <-chan struct{} {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j, ok := st.jobs[id]; ok {
		return j.done
	}
	return nil
}

// List returns status snapshots in submission order, without results
// (listings stay small even when jobs carry big patch netlists).
// A non-empty state keeps only jobs in that state; limit > 0 keeps
// only the most recently submitted limit jobs after filtering.
func (st *Store) List(state State, limit int) []JobStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]JobStatus, 0, len(st.order))
	for _, id := range st.order {
		if j, ok := st.jobs[id]; ok {
			if state != "" && j.state != state {
				continue
			}
			s := j.statusLocked()
			s.Result = nil
			out = append(out, s)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// persistSnapshot renders every retained job as a log record, for the
// persistence layer's compaction snapshot.
func (st *Store) persistSnapshot() []jobRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]jobRecord, 0, len(st.order))
	for _, id := range st.order {
		if j, ok := st.jobs[id]; ok {
			out = append(out, jobRecord{Digest: j.digest, Status: j.statusLocked()})
		}
	}
	return out
}

// Counts tallies jobs per state.
func (st *Store) Counts() map[State]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[State]int, len(States))
	for _, j := range st.jobs {
		out[j.state]++
	}
	return out
}

// statusLocked snapshots the wire form. Caller holds st.mu.
func (j *Job) statusLocked() JobStatus {
	s := JobStatus{
		ID:        j.ID,
		Name:      j.Name,
		State:     j.state,
		QueuedAt:  j.queuedAt,
		Error:     j.errMsg,
		Result:    j.result,
		DedupOf:   j.dedupOf,
		Recovered: j.recovered,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		s.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		s.FinishedAt = &t
	}
	return s
}

// Start transitions queued → running and installs the cancel hook.
// It returns false when the job is no longer runnable (cancelled
// while sitting in the queue) — the worker must then skip it.
func (st *Store) Start(j *Job, cancel context.CancelFunc) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.startedAt = time.Now()
	j.cancel = cancel
	return true
}

// Finish transitions a job to a terminal state with an optional
// result. Idempotent: only the first terminal transition wins.
func (st *Store) Finish(j *Job, state State, errMsg string, result *JobResult) {
	st.mu.Lock()
	if j.state.Terminal() {
		st.mu.Unlock()
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.result = result
	j.finishedAt = time.Now()
	j.cancel = nil
	status := j.statusLocked()
	onFinish := st.onFinish
	close(j.done)
	st.mu.Unlock()
	if onFinish != nil {
		onFinish(j, status)
	}
}

// Cancel requests cancellation of a job by ID. A queued job is
// finished immediately; a running job has its context cancelled and
// reaches StateCancelled when the worker observes the interrupt. The
// returned status reflects the state after the call.
func (st *Store) Cancel(id, reason string) (JobStatus, bool) {
	st.mu.Lock()
	j, ok := st.jobs[id]
	if !ok {
		st.mu.Unlock()
		return JobStatus{}, false
	}
	switch {
	case j.state == StateQueued:
		j.state = StateCancelled
		j.errMsg = reason
		j.finishedAt = time.Now()
		status := j.statusLocked()
		onFinish := st.onFinish
		close(j.done)
		st.mu.Unlock()
		if onFinish != nil {
			onFinish(j, status)
		}
		return status, true
	case j.state == StateRunning:
		j.userCancelled = true
		cancel := j.cancel
		status := j.statusLocked()
		st.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return status, true
	default: // already terminal
		status := j.statusLocked()
		st.mu.Unlock()
		return status, true
	}
}

// CancelRunning cancels the context of every running job (drain
// grace expiry). The workers record the partial results.
func (st *Store) CancelRunning(reason string) {
	st.mu.Lock()
	var cancels []context.CancelFunc
	for _, j := range st.jobs {
		if j.state == StateRunning {
			j.userCancelled = true
			j.errMsg = reason
			if j.cancel != nil {
				cancels = append(cancels, j.cancel)
			}
		}
	}
	st.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// UserCancelled reports whether the job was cancelled by request (as
// opposed to its own deadline), for terminal-state classification.
func (st *Store) UserCancelled(j *Job) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return j.userCancelled
}
