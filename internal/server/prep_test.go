package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"ecopatch/internal/eco"
	"ecopatch/internal/sat"
)

// TestJobOptionsPreprocess pins the wire-level validation: explicit
// preprocess composes with cube patches, is rejected with
// interpolation patches (prep is incompatible with proof logging),
// and absent means off at this layer (the server default applies
// later, at admission).
func TestJobOptionsPreprocess(t *testing.T) {
	on := true
	opt, err := JobOptions{Preprocess: &on}.Eco()
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Preprocess {
		t.Fatal("explicit preprocess=true not applied")
	}
	if _, err := (JobOptions{Preprocess: &on, Patch: "interp"}).Eco(); err == nil {
		t.Fatal("preprocess + interp accepted; want config error")
	}
	opt, err = JobOptions{}.Eco()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Preprocess {
		t.Fatal("absent preprocess defaulted on at the options layer")
	}
}

// TestServerDefaultPreprocess pins the -prep server default: jobs
// that leave preprocess unset inherit it, interpolation jobs are
// skipped (not rejected), and an explicit false wins over the
// default.
func TestServerDefaultPreprocess(t *testing.T) {
	opts := make(chan eco.Options, 1)
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 8, DefaultPreprocess: true})
	s.solve = func(ctx context.Context, inst *eco.Instance, opt eco.Options) (*eco.Result, error) {
		opts <- opt
		res := &eco.Result{Feasible: true, Verified: true}
		if opt.Preprocess {
			res.Stats.Prep = sat.PrepStats{
				VarsEliminated:   4,
				ClausesSubsumed:  2,
				LitsStrengthened: 1,
				PrepTime:         time.Millisecond,
			}
		}
		return res, nil
	}
	ctx := context.Background()

	submit := func(jo JobOptions) eco.Options {
		t.Helper()
		req := testRequest()
		req.Options = jo
		st, err := c.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(ctx, st.ID, 2*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		select {
		case opt := <-opts:
			return opt
		case <-time.After(5 * time.Second):
			t.Fatal("solve never ran")
			return eco.Options{}
		}
	}

	if opt := submit(JobOptions{}); !opt.Preprocess {
		t.Fatal("unset preprocess did not inherit the server default")
	}
	if opt := submit(JobOptions{Patch: "interp"}); opt.Preprocess {
		t.Fatal("server default applied to an interpolation job")
	}
	off := false
	if opt := submit(JobOptions{Preprocess: &off}); opt.Preprocess {
		t.Fatal("explicit preprocess=false overridden by the server default")
	}

	// The prep counters of finished jobs must surface in /metrics
	// (only the first submit above ran with prep on).
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ecod_sat_prep_vars_eliminated_total 4",
		"ecod_sat_prep_clauses_subsumed_total 2",
		"ecod_sat_prep_lits_strengthened_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
