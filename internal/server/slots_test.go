package server

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"ecopatch/internal/eco"
)

func TestSlotSemAcquireRelease(t *testing.T) {
	s := newSlotSem(3)
	if s.available() != 3 {
		t.Fatalf("available = %d, want 3", s.available())
	}
	held, ok := s.acquire(2, nil)
	if !ok || held != 2 {
		t.Fatalf("acquire(2) = (%d, %v), want (2, true)", held, ok)
	}
	if s.available() != 1 {
		t.Fatalf("available = %d after acquire(2), want 1", s.available())
	}
	s.release(held)

	// Requests above total clamp down instead of deadlocking forever.
	held, ok = s.acquire(99, nil)
	if !ok || held != 3 {
		t.Fatalf("acquire(99) = (%d, %v), want (3, true)", held, ok)
	}
	if s.available() != 0 {
		t.Fatalf("available = %d after clamped acquire, want 0", s.available())
	}
	s.release(held)

	// Zero and negative clamp up to one slot.
	held, ok = s.acquire(0, nil)
	if !ok || held != 1 {
		t.Fatalf("acquire(0) = (%d, %v), want (1, true)", held, ok)
	}
	s.release(held)
}

func TestSlotSemQuitAbortsAndRollsBack(t *testing.T) {
	s := newSlotSem(2)
	// Hold one slot so a two-slot acquire blocks after partial progress.
	if _, ok := s.acquire(1, nil); !ok {
		t.Fatal("setup acquire failed")
	}
	quit := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, ok := s.acquire(2, quit)
		done <- ok
	}()
	select {
	case ok := <-done:
		t.Fatalf("acquire(2) returned %v before quit with only 1 slot free", ok)
	case <-time.After(20 * time.Millisecond):
	}
	close(quit)
	if ok := <-done; ok {
		t.Fatal("acquire succeeded after quit closed")
	}
	// The aborted acquire must have rolled its partial slot back.
	if s.available() != 1 {
		t.Fatalf("available = %d after abort, want 1", s.available())
	}
	s.release(1)
	if s.available() != 2 {
		t.Fatalf("available = %d after release, want 2", s.available())
	}
}

// countingSolve tracks concurrent in-flight solves so tests can assert
// the CPU-slot bound, blocking each solve until release closes.
func countingSolve(inflight, maxSeen *atomic.Int64, started chan<- struct{}, release <-chan struct{}) func(context.Context, *eco.Instance, eco.Options) (*eco.Result, error) {
	return func(ctx context.Context, inst *eco.Instance, opt eco.Options) (*eco.Result, error) {
		cur := inflight.Add(1)
		for {
			prev := maxSeen.Load()
			if cur <= prev || maxSeen.CompareAndSwap(prev, cur) {
				break
			}
		}
		if started != nil {
			started <- struct{}{}
		}
		defer inflight.Add(-1)
		select {
		case <-ctx.Done():
			return &eco.Result{TimedOut: true}, nil
		case <-release:
			return &eco.Result{Feasible: true, Verified: true}, nil
		}
	}
}

// With 2 CPU slots and 4 workers, jobs asking for parallelism 2 weigh
// two slots each, so only one may solve at a time.
func TestCPUSlotsSerializeHeavyJobs(t *testing.T) {
	var inflight, maxSeen atomic.Int64
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s, c := newTestServer(t, Config{Workers: 4, CPUSlots: 2, QueueCap: 8})
	s.solve = countingSolve(&inflight, &maxSeen, started, release)

	ctx := context.Background()
	var ids []string
	for i := 0; i < 3; i++ {
		req := testRequest()
		req.Options.Parallelism = 2
		st, err := c.Submit(ctx, req)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, st.ID)
	}
	// One job starts; the rest must stay blocked on slots.
	<-started
	select {
	case <-started:
		t.Fatal("second heavy job started while the first held both slots")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	for _, id := range ids {
		st, err := c.Wait(ctx, id, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
	}
	if got := maxSeen.Load(); got != 1 {
		t.Fatalf("max concurrent heavy solves = %d, want 1", got)
	}
	// Drain the remaining start signals released at the end.
	for i := 0; i < 2; i++ {
		<-started
	}
}

// Serial jobs weigh one slot each, so two run concurrently under the
// same 2-slot pool.
func TestCPUSlotsAllowConcurrentSerialJobs(t *testing.T) {
	var inflight, maxSeen atomic.Int64
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s, c := newTestServer(t, Config{Workers: 4, CPUSlots: 2, QueueCap: 8})
	s.solve = countingSolve(&inflight, &maxSeen, started, release)

	ctx := context.Background()
	var ids []string
	for i := 0; i < 2; i++ {
		req := testRequest()
		req.Options.Parallelism = 1
		st, err := c.Submit(ctx, req)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, st.ID)
	}
	<-started
	<-started
	close(release)
	for _, id := range ids {
		st, err := c.Wait(ctx, id, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
	}
	if got := maxSeen.Load(); got != 2 {
		t.Fatalf("max concurrent serial solves = %d, want 2", got)
	}
}

// A job requesting more parallelism than the pool has is clamped, not
// starved: it runs with every slot rather than waiting forever.
func TestCPUSlotsClampOversizedJob(t *testing.T) {
	var inflight, maxSeen atomic.Int64
	release := make(chan struct{})
	close(release) // solves return immediately
	s, c := newTestServer(t, Config{Workers: 2, CPUSlots: 2, QueueCap: 4})
	var seenPar atomic.Int64
	inner := countingSolve(&inflight, &maxSeen, nil, release)
	s.solve = func(ctx context.Context, inst *eco.Instance, opt eco.Options) (*eco.Result, error) {
		seenPar.Store(int64(opt.Parallelism))
		return inner(ctx, inst, opt)
	}

	ctx := context.Background()
	req := testRequest()
	req.Options.Parallelism = 64
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err = c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if got := seenPar.Load(); got != 2 {
		t.Fatalf("engine saw Parallelism = %d, want clamp to 2 CPU slots", got)
	}
}

// Negative parallelism is rejected at admission.
func TestSubmitRejectsNegativeParallelism(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	req := testRequest()
	req.Options.Parallelism = -1
	if _, err := c.Submit(context.Background(), req); err == nil {
		t.Fatal("submit accepted parallelism = -1")
	}
}
