package cec

import (
	"errors"
	"math/rand"
	"testing"

	"ecopatch/internal/aig"
	"ecopatch/internal/sat"
)

// randomMultiOutGraph builds a graph with nOut outputs over shared
// random logic — enough distinct pairs to shard meaningfully.
func randomMultiOutGraph(seed int64, nOut int) *aig.AIG {
	rng := rand.New(rand.NewSource(seed))
	g := aig.New()
	var pool []aig.Lit
	for i := 0; i < 8; i++ {
		pool = append(pool, g.AddPI("x"))
	}
	for i := 0; i < 120; i++ {
		a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		pool = append(pool, g.And(a, b))
	}
	for o := 0; o < nOut; o++ {
		g.AddPO("y", pool[len(pool)-1-o])
	}
	return g
}

// TestShardedCheckLitsAgree compares sharded and serial verdicts over
// rebuilt-vs-original output pairs, equivalent and mutated.
func TestShardedCheckLitsAgree(t *testing.T) {
	for iter := 0; iter < 8; iter++ {
		g1 := randomMultiOutGraph(int64(100+iter), 12)
		g2 := aig.Clone(g1)
		if iter%2 == 1 {
			// Flip one output: inequivalent.
			g2.SetPO(iter%12, g2.PO(iter%12).Not())
		}
		serial, errS := CheckAIGs(g1, g2)
		if errS != nil {
			t.Fatal(errS)
		}
		// Sharded run over the same miter construction.
		m := aig.New()
		piMap := make([]aig.Lit, g1.NumPIs())
		for i := range piMap {
			piMap[i] = m.AddPI(g1.PIName(i))
		}
		outs1 := make([]aig.Lit, g1.NumPOs())
		outs2 := make([]aig.Lit, g2.NumPOs())
		for i := 0; i < g1.NumPOs(); i++ {
			outs1[i] = g1.PO(i)
			outs2[i] = g2.PO(i)
		}
		t1 := aig.Transfer(m, g1, piMap, outs1)
		t2 := aig.Transfer(m, g2, piMap, outs2)
		sharded, errP := checkPairs(m, piMap, t1, t2, CheckOptions{Shards: 4})
		if errP != nil {
			t.Fatal(errP)
		}
		if serial.Equivalent != sharded.Equivalent {
			t.Fatalf("iter %d: serial=%v sharded=%v", iter, serial.Equivalent, sharded.Equivalent)
		}
		if !sharded.Equivalent {
			// The counterexample must actually expose a difference.
			if sharded.FailingOutput < 0 {
				t.Fatalf("iter %d: inequivalent but no failing output", iter)
			}
			i := sharded.FailingOutput
			if m.EvalLit(t1[i], sharded.Counterexample) == m.EvalLit(t2[i], sharded.Counterexample) {
				t.Fatalf("iter %d: counterexample does not differentiate output %d", iter, i)
			}
		}
	}
}

// TestShardedDeterministicCex pins the merge rule: with several
// inequivalent outputs, repeated sharded runs return the same
// counterexample and failing output (lowest satisfiable shard wins,
// regardless of scheduling).
func TestShardedDeterministicCex(t *testing.T) {
	g1 := randomMultiOutGraph(7, 12)
	g2 := aig.Clone(g1)
	for _, o := range []int{2, 5, 9} {
		g2.SetPO(o, g2.PO(o).Not())
	}
	var firstCex []bool
	firstOut := -2
	for run := 0; run < 6; run++ {
		m := aig.New()
		piMap := make([]aig.Lit, g1.NumPIs())
		for i := range piMap {
			piMap[i] = m.AddPI(g1.PIName(i))
		}
		outs1 := make([]aig.Lit, g1.NumPOs())
		outs2 := make([]aig.Lit, g2.NumPOs())
		for i := 0; i < g1.NumPOs(); i++ {
			outs1[i] = g1.PO(i)
			outs2[i] = g2.PO(i)
		}
		t1 := aig.Transfer(m, g1, piMap, outs1)
		t2 := aig.Transfer(m, g2, piMap, outs2)
		res, err := checkPairs(m, piMap, t1, t2, CheckOptions{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Equivalent {
			t.Fatal("mutated outputs must be inequivalent")
		}
		if run == 0 {
			firstCex = res.Counterexample
			firstOut = res.FailingOutput
			continue
		}
		if res.FailingOutput != firstOut {
			t.Fatalf("run %d: failing output %d, first run %d", run, res.FailingOutput, firstOut)
		}
		for i := range firstCex {
			if res.Counterexample[i] != firstCex[i] {
				t.Fatalf("run %d: counterexample differs at PI %d", run, i)
			}
		}
	}
}

// TestShardedInterrupt: interrupting all shard solvers with no shard
// having found a difference yields ErrGaveUp, same as serial.
func TestShardedInterrupt(t *testing.T) {
	g1 := randomMultiOutGraph(11, 8)
	g2 := aig.Clone(g1)
	m := aig.New()
	piMap := make([]aig.Lit, g1.NumPIs())
	for i := range piMap {
		piMap[i] = m.AddPI(g1.PIName(i))
	}
	outs1 := make([]aig.Lit, g1.NumPOs())
	outs2 := make([]aig.Lit, g2.NumPOs())
	for i := range outs1 {
		outs1[i] = g1.PO(i)
		outs2[i] = g2.PO(i)
	}
	t1 := aig.Transfer(m, g1, piMap, outs1)
	t2 := aig.Transfer(m, g2, piMap, outs2)
	// Force structural difference so the SAT path runs: re-transfer
	// under fresh nodes is already merged by strashing, so mutate one.
	t2[0] = t2[0].Not()
	_, err := checkPairs(m, piMap, t1, t2, CheckOptions{
		Shards:   3,
		OnSolver: func(s *sat.Solver) { s.Interrupt() },
	})
	if !errors.Is(err, ErrGaveUp) {
		t.Fatalf("interrupted shards: err=%v, want ErrGaveUp", err)
	}
}

// TestCheckPairsParallelMatchesSerial runs the same batch through one
// PairChecker and through the worker pool; results must be identical
// position by position.
func TestCheckPairsParallelMatchesSerial(t *testing.T) {
	g := randomMultiOutGraph(23, 4)
	// Build a batch mixing equal pairs (same node), complements, and
	// random node pairs.
	var pairs [][2]aig.Lit
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		a := aig.MkLit(rng.Intn(n), rng.Intn(2) == 1)
		b := aig.MkLit(rng.Intn(n), rng.Intn(2) == 1)
		pairs = append(pairs, [2]aig.Lit{a, b})
	}
	serial := CheckPairsParallel(g, pairs, 1, CheckOptions{})
	parallel := CheckPairsParallel(g, pairs, 4, CheckOptions{})
	if len(serial) != len(parallel) {
		t.Fatal("length mismatch")
	}
	for i := range serial {
		if serial[i].Equal != parallel[i].Equal {
			t.Fatalf("pair %d: serial equal=%v parallel equal=%v", i, serial[i].Equal, parallel[i].Equal)
		}
		if (serial[i].Err == nil) != (parallel[i].Err == nil) {
			t.Fatalf("pair %d: err mismatch %v vs %v", i, serial[i].Err, parallel[i].Err)
		}
		// Counterexamples may differ between solvers; both must expose
		// a real difference when the pair is unequal.
		for _, r := range []PairResult{serial[i], parallel[i]} {
			if !r.Equal && r.Err == nil && r.Cex != nil {
				a, b := pairs[i][0], pairs[i][1]
				if g.EvalLit(a, r.Cex) == g.EvalLit(b, r.Cex) {
					t.Fatalf("pair %d: counterexample does not differentiate", i)
				}
			}
		}
	}
}
