package cec

import (
	"math/rand"
	"testing"

	"ecopatch/internal/aig"
	"ecopatch/internal/sim"
)

func TestSweepMergesRedundantLogic(t *testing.T) {
	// Two structurally different computations of the same function:
	// (a|b) and !(!a & !b) collapse by hashing, so use a genuinely
	// different structure: or via mux.
	g := aig.New()
	a, b := g.AddPI("a"), g.AddPI("b")
	or1 := g.Or(a, b)
	or2 := g.Mux(a, aig.ConstTrue, b) // a ? 1 : b == a|b
	g.AddPO("f", g.And(or1, g.AddPI("c")))
	g.AddPO("h", g.And(or2, g.PI(2)))
	before := g.NumAnds()
	swept := Sweep(g, DefaultSweepOptions())
	if swept.NumAnds() >= before {
		t.Fatalf("sweep did not reduce: %d -> %d ANDs", before, swept.NumAnds())
	}
	res, err := CheckAIGs(g, swept)
	if err != nil || !res.Equivalent {
		t.Fatalf("sweep changed function: eq=%v err=%v", res.Equivalent, err)
	}
	// The two outputs must now share the same node.
	if swept.PO(0) != swept.PO(1) {
		t.Fatalf("equivalent outputs not merged: %v vs %v", swept.PO(0), swept.PO(1))
	}
}

func TestSweepPreservesRandomFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for iter := 0; iter < 15; iter++ {
		g := aig.New()
		var pool []aig.Lit
		nPI := 4 + rng.Intn(4)
		for i := 0; i < nPI; i++ {
			pool = append(pool, g.AddPI("x"))
		}
		for i := 0; i < 60; i++ {
			a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			pool = append(pool, g.And(a, b))
		}
		g.AddPO("f", pool[len(pool)-1])
		g.AddPO("h", pool[len(pool)-2].Not())
		swept := Sweep(g, DefaultSweepOptions())
		res, err := CheckAIGs(g, swept)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Fatalf("iter %d: sweep changed function", iter)
		}
		if swept.NumAnds() > g.NumAnds() {
			t.Fatalf("iter %d: sweep grew the graph", iter)
		}
	}
}

func TestSweepMergesComplementPairs(t *testing.T) {
	// f and !f should land in one class and merge up to complement.
	g := aig.New()
	a, b := g.AddPI("a"), g.AddPI("b")
	f := g.And(a, b)
	notf := g.Nand(b, a) // same node complemented by hashing... force different structure
	g2 := g.Or(a.Not(), b.Not())
	_ = notf
	g.AddPO("x", f)
	g.AddPO("y", g2) // y == !x
	swept := Sweep(g, DefaultSweepOptions())
	if swept.PO(0) != swept.PO(1).Not() {
		t.Fatalf("complement pair not merged: %v vs %v", swept.PO(0), swept.PO(1))
	}
}

func TestCheckAIGsSweepingAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for iter := 0; iter < 10; iter++ {
		g1 := aig.New()
		var pool []aig.Lit
		for i := 0; i < 5; i++ {
			pool = append(pool, g1.AddPI("x"))
		}
		for i := 0; i < 40; i++ {
			a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			pool = append(pool, g1.And(a, b))
		}
		g1.AddPO("f", pool[len(pool)-1])
		g2 := aig.Clone(g1)
		if iter%2 == 1 {
			g2.SetPO(0, g2.PO(0).Not()) // inequivalent variant
		}
		want, err := CheckAIGs(g1, g2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CheckAIGsSweeping(g1, g2, DefaultSweepOptions())
		if err != nil {
			t.Fatal(err)
		}
		if want.Equivalent != got.Equivalent {
			t.Fatalf("iter %d: plain=%v sweeping=%v", iter, want.Equivalent, got.Equivalent)
		}
	}
}

// TestCanonKey pins the canonical-signature keying: complementing a
// signature must not change its key (polarity canonicalization), equal
// canonical signatures compare equal, and differing ones do not.
func TestCanonKey(t *testing.T) {
	sig := []uint64{0xdeadbeef01, 0x12345678, 0xffffffffffffffff}
	inv := make([]uint64, len(sig))
	for i, w := range sig {
		inv[i] = ^w
	}
	h1, c1 := sim.CanonKey(sig)
	h2, c2 := sim.CanonKey(inv)
	if h1 != h2 {
		t.Fatalf("complemented signature hashed differently: %x vs %x", h1, h2)
	}
	if c1 == c2 {
		t.Fatalf("complement flags must differ, both %v", c1)
	}
	if !sim.CanonEqual(sig, inv) {
		t.Fatal("signature and its complement are the same canonical class")
	}
	other := []uint64{0xdeadbeef01, 0x12345678, 0xfffffffffffffffe}
	if sim.CanonEqual(sig, other) {
		t.Fatal("distinct canonical signatures compared equal")
	}
	if sim.CanonEqual(sig, sig[:2]) {
		t.Fatal("length mismatch compared equal")
	}
}
