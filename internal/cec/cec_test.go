package cec

import (
	"math/rand"
	"testing"

	"ecopatch/internal/aig"
)

// adder builds an n-bit ripple-carry adder AIG.
func adder(n int, variant bool) *aig.AIG {
	g := aig.New()
	as := make([]aig.Lit, n)
	bs := make([]aig.Lit, n)
	for i := 0; i < n; i++ {
		as[i] = g.AddPI("a")
	}
	for i := 0; i < n; i++ {
		bs[i] = g.AddPI("b")
	}
	carry := aig.ConstFalse
	for i := 0; i < n; i++ {
		var sum aig.Lit
		if variant {
			// Same function, different structure: s = a xnor b xnor c... keep
			// identical semantics via rearranged xors.
			sum = g.Xor(as[i], g.Xor(bs[i], carry))
		} else {
			sum = g.Xor(g.Xor(as[i], bs[i]), carry)
		}
		carry = g.Or(g.And(as[i], bs[i]), g.And(carry, g.Or(as[i], bs[i])))
		g.AddPO("s", sum)
	}
	g.AddPO("cout", carry)
	return g
}

func TestEquivalentAdders(t *testing.T) {
	g1 := adder(6, false)
	g2 := adder(6, true)
	res, err := CheckAIGs(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("adders should be equivalent; cex %v output %d", res.Counterexample, res.FailingOutput)
	}
}

func TestInequivalentCircuits(t *testing.T) {
	g1 := aig.New()
	a, b := g1.AddPI("a"), g1.AddPI("b")
	g1.AddPO("f", g1.And(a, b))

	g2 := aig.New()
	a2, b2 := g2.AddPI("a"), g2.AddPI("b")
	g2.AddPO("f", g2.Or(a2, b2))

	res, err := CheckAIGs(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("AND vs OR reported equivalent")
	}
	// Verify the counterexample actually distinguishes them.
	o1 := g1.Eval(res.Counterexample)
	o2 := g2.Eval(res.Counterexample)
	if o1[0] == o2[0] {
		t.Fatalf("counterexample %v does not distinguish", res.Counterexample)
	}
	if res.FailingOutput != 0 {
		t.Fatalf("FailingOutput = %d", res.FailingOutput)
	}
}

func TestShapeMismatch(t *testing.T) {
	g1 := aig.New()
	g1.AddPI("a")
	g1.AddPO("f", aig.ConstTrue)
	g2 := aig.New()
	g2.AddPI("a")
	g2.AddPI("b")
	g2.AddPO("f", aig.ConstTrue)
	if _, err := CheckAIGs(g1, g2); err == nil {
		t.Fatal("PI mismatch not reported")
	}
	g3 := aig.New()
	g3.AddPI("a")
	if _, err := CheckAIGs(g1, g3); err == nil {
		t.Fatal("PO mismatch not reported")
	}
}

func TestCheckLits(t *testing.T) {
	g := aig.New()
	a, b := g.AddPI("a"), g.AddPI("b")
	// Two structurally different but equivalent forms of a|b.
	x := g.Or(a, b)
	y := g.Nand(a.Not(), b.Not())
	res, err := CheckLits(g, []aig.Lit{x}, []aig.Lit{y})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("equivalent literals reported different")
	}
	res, err = CheckLits(g, []aig.Lit{x}, []aig.Lit{g.And(a, b)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("or vs and reported equivalent")
	}
}

func TestRandomMutationDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 20; iter++ {
		// Random circuit.
		g1 := aig.New()
		var pool []aig.Lit
		for i := 0; i < 6; i++ {
			pool = append(pool, g1.AddPI("x"))
		}
		for i := 0; i < 30; i++ {
			a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			pool = append(pool, g1.And(a, b))
		}
		root := pool[len(pool)-1]
		g1.AddPO("f", root)

		// Mutation: complement the output.
		g2 := aig.Clone(g1)
		g2.SetPO(0, g2.PO(0).Not())

		res, err := CheckAIGs(g1, g2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Equivalent {
			t.Fatalf("iter %d: complemented output reported equivalent", iter)
		}
	}
}

func TestSelfEquivalenceOfClone(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 10; iter++ {
		g1 := aig.New()
		var pool []aig.Lit
		for i := 0; i < 5; i++ {
			pool = append(pool, g1.AddPI("x"))
		}
		for i := 0; i < 25; i++ {
			a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			pool = append(pool, g1.And(a, b))
		}
		g1.AddPO("f", pool[len(pool)-1])
		g1.AddPO("g", pool[len(pool)-2].Not())
		res, err := CheckAIGs(g1, aig.Clone(g1))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Fatalf("iter %d: clone not equivalent", iter)
		}
	}
}
