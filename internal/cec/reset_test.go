package cec

import (
	"errors"
	"testing"

	"ecopatch/internal/aig"
)

// TestPairCheckerInterruptReset pins the pooled-checker contract: an
// interrupted PairChecker answers ErrGaveUp (sticky — a cancelled
// job's deadline watcher must keep winning), and Reset re-arms it for
// the next job without losing the incremental clause state.
func TestPairCheckerInterruptReset(t *testing.T) {
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	and1 := g.And(a, b)
	and2 := g.And(b, a) // structurally hashed or at least equivalent
	orAB := g.Or(a, b)

	pc := NewPairChecker(g, CheckOptions{})
	pc.Solver().Interrupt()

	// Pick a pair the fast paths cannot answer (equal edges and
	// complements short-circuit before the solver runs).
	if _, _, err := pc.CheckPair(and1, orAB); !errors.Is(err, ErrGaveUp) {
		t.Fatalf("interrupted CheckPair err = %v, want ErrGaveUp", err)
	}
	// Sticky until cleared.
	if _, _, err := pc.CheckPair(and1, orAB); !errors.Is(err, ErrGaveUp) {
		t.Fatalf("second interrupted CheckPair err = %v, want ErrGaveUp (sticky)", err)
	}

	pc.Reset()
	equal, _, err := pc.CheckPair(and1, and2)
	if err != nil {
		t.Fatalf("post-Reset CheckPair(and, and) error: %v", err)
	}
	if !equal {
		t.Fatal("post-Reset CheckPair(and, and) = unequal")
	}
	equal, cex, err := pc.CheckPair(and1, orAB)
	if err != nil {
		t.Fatalf("post-Reset CheckPair(and, or) error: %v", err)
	}
	if equal {
		t.Fatal("post-Reset CheckPair(and, or) = equal")
	}
	// The counterexample must actually distinguish AND from OR:
	// exactly one input true.
	if len(cex) != 2 || cex[0] == cex[1] {
		t.Fatalf("counterexample %v does not distinguish and/or", cex)
	}
}
