package cec

import (
	"sync"

	"ecopatch/internal/aig"
)

// PairResult is the outcome of one pair query in a parallel batch,
// mirroring PairChecker.CheckPair's returns.
type PairResult struct {
	Equal bool
	Cex   []bool
	Err   error
}

// CheckPairsParallel decides a batch of pointwise-equivalence queries
// over one read-only AIG across a worker pool: each worker owns a
// PairChecker (one incremental solver + encoder), pairs are dealt
// round-robin, and results land at their pair's index — the output is
// a pure function of the input batch, independent of scheduling.
//
// The graph must not grow while the batch runs (the serial PairChecker
// allows interleaved graph growth; the parallel form trades that for
// concurrent encoders over a frozen graph).
func CheckPairsParallel(g *aig.AIG, pairs [][2]aig.Lit, workers int, opt CheckOptions) []PairResult {
	results := make([]PairResult, len(pairs))
	if len(pairs) == 0 {
		return results
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		pc := NewPairChecker(g, opt)
		for i, p := range pairs {
			eq, cex, err := pc.CheckPair(p[0], p[1])
			results[i] = PairResult{Equal: eq, Cex: cex, Err: err}
		}
		return results
	}
	// Checkers (and their solvers) are created before any goroutine
	// starts so opt.OnSolver registration happens single-threaded and
	// an external interruptAll never misses one.
	checkers := make([]*PairChecker, workers)
	for w := range checkers {
		checkers[w] = NewPairChecker(g, opt)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pc := checkers[w]
			for i := w; i < len(pairs); i += workers {
				eq, cex, err := pc.CheckPair(pairs[i][0], pairs[i][1])
				results[i] = PairResult{Equal: eq, Cex: cex, Err: err}
			}
		}(w)
	}
	wg.Wait()
	return results
}
