package cec

import (
	"testing"

	"ecopatch/internal/aig"
	"ecopatch/internal/sat"
)

// prepCheckOpts enables preprocessing on the equivalence checker.
func prepCheckOpts() CheckOptions {
	return CheckOptions{Preprocess: sat.DefaultPrepConfig()}
}

// TestCheckPrepParityEquivalent runs the adder pair through CheckLits
// with preprocessing off and on: same verdict, and the prep run
// reports simplification work.
func TestCheckPrepParityEquivalent(t *testing.T) {
	// Both adder variants rebuilt inside one AIG so CheckLitsOpt can
	// compare their sum/carry edges directly.
	g := aig.New()
	const n = 5
	as := make([]aig.Lit, n)
	bs := make([]aig.Lit, n)
	for i := 0; i < n; i++ {
		as[i] = g.AddPI("a")
	}
	for i := 0; i < n; i++ {
		bs[i] = g.AddPI("b")
	}
	build := func(variant bool) []aig.Lit {
		carry := aig.ConstFalse
		outs := make([]aig.Lit, 0, n+1)
		for i := 0; i < n; i++ {
			var sum aig.Lit
			if variant {
				sum = g.Xor(as[i], g.Xor(bs[i], carry))
			} else {
				sum = g.Xor(g.Xor(as[i], bs[i]), carry)
			}
			carry = g.Or(g.And(as[i], bs[i]), g.And(carry, g.Or(as[i], bs[i])))
			outs = append(outs, sum)
		}
		return append(outs, carry)
	}
	xs, ys := build(false), build(true)

	plain, err := CheckLits(g, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := CheckLitsOpt(g, xs, ys, prepCheckOpts())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Equivalent != prep.Equivalent {
		t.Fatalf("verdict mismatch: plain=%v prep=%v", plain.Equivalent, prep.Equivalent)
	}
	if !prep.Equivalent {
		t.Fatal("adder variants reported inequivalent")
	}
	if prep.Prep.Rounds == 0 {
		t.Fatal("prep run recorded no simplification rounds")
	}
}

// TestCheckPrepCounterexample pins model reconstruction through the
// checker: an inequivalent pair solved on the simplified formula must
// still return a counterexample that distinguishes the two functions
// on the original graph (PI vars are frozen; eliminated inner vars
// are re-derived for the readback).
func TestCheckPrepCounterexample(t *testing.T) {
	g := aig.New()
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	// Deep enough that BVE has internal nodes to chew on.
	x := g.Or(g.And(a, b), g.And(b.Not(), c))
	y := g.Or(g.And(a, b), g.And(b.Not(), c.Not()))
	g.AddPO("x", x)
	g.AddPO("y", y)

	res, err := CheckLitsOpt(g, []aig.Lit{x}, []aig.Lit{y}, prepCheckOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("distinct functions reported equivalent")
	}
	if len(res.Counterexample) != g.NumPIs() {
		t.Fatalf("counterexample has %d values, want %d", len(res.Counterexample), g.NumPIs())
	}
	outs := g.Eval(res.Counterexample)
	if outs[0] == outs[1] {
		t.Fatalf("counterexample %v does not distinguish the outputs", res.Counterexample)
	}
}

// TestCheckPrepShardParity runs a multi-output check through the
// sharded path with preprocessing on: verdict parity with the plain
// sharded check, per shard-count.
func TestCheckPrepShardParity(t *testing.T) {
	g1 := adder(6, false)
	g2 := adder(6, true)
	// Same miter construction as CheckAIGs, but through CheckLitsOpt
	// so the shard count and prep config are controllable.
	m := aig.New()
	piMap := make([]aig.Lit, g1.NumPIs())
	for i := range piMap {
		piMap[i] = m.AddPI(g1.PIName(i))
	}
	outs := func(g *aig.AIG) []aig.Lit {
		os := make([]aig.Lit, g.NumPOs())
		for i := range os {
			os[i] = g.PO(i)
		}
		return os
	}
	t1 := aig.Transfer(m, g1, piMap, outs(g1))
	t2 := aig.Transfer(m, g2, piMap, outs(g2))

	for _, shards := range []int{1, 4} {
		plain, err := CheckLitsOpt(m, t1, t2, CheckOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		opt := prepCheckOpts()
		opt.Shards = shards
		prep, err := CheckLitsOpt(m, t1, t2, opt)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Equivalent != prep.Equivalent || !prep.Equivalent {
			t.Fatalf("shards=%d: plain=%v prep=%v, want both equivalent",
				shards, plain.Equivalent, prep.Equivalent)
		}
	}
}
