package cec

import (
	"math/rand"
	"testing"

	"ecopatch/internal/aig"
	"ecopatch/internal/sim"
)

func twoEquivalentGraphs(n int) (*aig.AIG, *aig.AIG) {
	rng := rand.New(rand.NewSource(13))
	g := aig.New()
	pool := make([]aig.Lit, 0, n+12)
	for i := 0; i < 12; i++ {
		pool = append(pool, g.AddPI("x"))
	}
	for i := 0; i < n; i++ {
		a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		c := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		pool = append(pool, g.And(a, c))
	}
	for o := 0; o < 4; o++ {
		g.AddPO("y", pool[len(pool)-1-o])
	}
	return g, aig.Clone(g)
}

// BenchmarkCheckAIGs measures the plain miter-based check.
func BenchmarkCheckAIGs(b *testing.B) {
	g1, g2 := twoEquivalentGraphs(3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := CheckAIGs(g1, g2)
		if err != nil || !res.Equivalent {
			b.Fatal("clone must be equivalent")
		}
	}
}

// BenchmarkSweep measures the fraiging pass.
func BenchmarkSweep(b *testing.B) {
	g, _ := twoEquivalentGraphs(3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sweep(g, DefaultSweepOptions())
	}
}

// denseXorGraph accumulates XORs so every node stays in the PO cone:
// with few PIs many nodes coincide or nearly coincide functionally,
// which drives candidate probing, counterexample refinement, and class
// rebuilds — the canonical-signature hot path.
func denseXorGraph(n int) *aig.AIG {
	rng := rand.New(rand.NewSource(17))
	g := aig.New()
	pool := make([]aig.Lit, 0, n+8)
	for i := 0; i < 8; i++ {
		pool = append(pool, g.AddPI("x"))
	}
	acc := pool[0]
	for i := 0; i < n; i++ {
		a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		c := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		x := g.Xor(a, c)
		pool = append(pool, x)
		acc = g.Xor(acc, x)
	}
	g.AddPO("y", acc)
	return g
}

// BenchmarkSignatureKeys isolates the class-index rebuild that
// flushCex performs after every 64 counterexamples: key every node's
// canonical signature and bucket it. "bytes" replicates the previous
// implementation (materialize the canonical signature as a string
// key); "fnv" is the current canonKey path.
func BenchmarkSignatureKeys(b *testing.B) {
	const nodes, rounds = 3000, 12
	rng := rand.New(rand.NewSource(5))
	sigs := make([][]uint64, nodes)
	for i := range sigs {
		sigs[i] = make([]uint64, rounds)
		for j := range sigs[i] {
			sigs[i][j] = rng.Uint64()
		}
	}
	b.Run("bytes", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			classes := make(map[string][]int, nodes)
			for n, s := range sigs {
				compl := len(s) > 0 && s[0]&1 == 1
				buf := make([]byte, 0, len(s)*8)
				for _, w := range s {
					if compl {
						w = ^w
					}
					for k := 0; k < 8; k++ {
						buf = append(buf, byte(w>>uint(8*k)))
					}
				}
				classes[string(buf)] = append(classes[string(buf)], n)
			}
		}
	})
	b.Run("fnv", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			classes := make(map[uint64][]int, nodes)
			for n, s := range sigs {
				h, _ := sim.CanonKey(s)
				classes[h] = append(classes[h], n)
			}
		}
	})
	// The sweep looks a node's key up several times per epoch (bucket
	// registration, candidate probing, post-flush re-lookup); "memo"
	// replicates Sweep's per-epoch memoization against "fnv-relookup",
	// which recomputes the fold on every lookup as Sweep once did.
	const lookups = 4
	b.Run("fnv-relookup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sink uint64
			for l := 0; l < lookups; l++ {
				for _, s := range sigs {
					h, _ := sim.CanonKey(s)
					sink ^= h
				}
			}
			benchSink = sink
		}
	})
	b.Run("memo", func(b *testing.B) {
		b.ReportAllocs()
		keys := make([]uint64, nodes)
		keyed := make([]bool, nodes)
		for i := 0; i < b.N; i++ {
			for n := range keyed {
				keyed[n] = false // new epoch
			}
			var sink uint64
			for l := 0; l < lookups; l++ {
				for n, s := range sigs {
					if !keyed[n] {
						keys[n], _ = sim.CanonKey(s)
						keyed[n] = true
					}
					sink ^= keys[n]
				}
			}
			benchSink = sink
		}
	})
}

// benchSink defeats dead-code elimination in the key benchmarks.
var benchSink uint64

// BenchmarkSweepRefine stresses signature canonicalization: a single
// simulation round leaves many spurious candidate classes, so the
// sweep keeps disproving candidates, flushing counterexamples, and
// rebuilding the class index over ever-longer signatures. Before the
// FNV-hash keys, every rebuild re-materialized O(nodes × rounds × 8)
// bytes of canonical signatures.
func BenchmarkSweepRefine(b *testing.B) {
	g := denseXorGraph(150)
	opt := SweepOptions{SimRounds: 1, ConfBudget: 20, MaxCandidates: 2, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sweep(g, opt)
	}
}
