package cec

import (
	"math/rand"
	"testing"

	"ecopatch/internal/aig"
)

func twoEquivalentGraphs(n int) (*aig.AIG, *aig.AIG) {
	rng := rand.New(rand.NewSource(13))
	g := aig.New()
	pool := make([]aig.Lit, 0, n+12)
	for i := 0; i < 12; i++ {
		pool = append(pool, g.AddPI("x"))
	}
	for i := 0; i < n; i++ {
		a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		c := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		pool = append(pool, g.And(a, c))
	}
	for o := 0; o < 4; o++ {
		g.AddPO("y", pool[len(pool)-1-o])
	}
	return g, aig.Clone(g)
}

// BenchmarkCheckAIGs measures the plain miter-based check.
func BenchmarkCheckAIGs(b *testing.B) {
	g1, g2 := twoEquivalentGraphs(3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := CheckAIGs(g1, g2)
		if err != nil || !res.Equivalent {
			b.Fatal("clone must be equivalent")
		}
	}
}

// BenchmarkSweep measures the fraiging pass.
func BenchmarkSweep(b *testing.B) {
	g, _ := twoEquivalentGraphs(3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sweep(g, DefaultSweepOptions())
	}
}
