package cec

import (
	"testing"

	"ecopatch/internal/aig"
)

// TestRewriteCheckAgree compares rewrite-on and rewrite-off verdicts
// over rebuilt-vs-original output pairs, equivalent and mutated, and
// validates that rewrite-on counterexamples still read back by PI
// position (the pre-reduction preserves the PI interface).
func TestRewriteCheckAgree(t *testing.T) {
	for iter := 0; iter < 8; iter++ {
		g1 := randomMultiOutGraph(int64(300+iter), 10)
		g2 := aig.Clone(g1)
		if iter%2 == 1 {
			g2.SetPO(iter%10, g2.PO(iter%10).Not())
		}
		plain := make([]aig.Lit, g1.NumPOs())
		clone := make([]aig.Lit, g2.NumPOs())
		for i := range plain {
			plain[i] = g1.PO(i)
			clone[i] = g2.PO(i)
		}
		m := aig.New()
		piMap := make([]aig.Lit, g1.NumPIs())
		for i := range piMap {
			piMap[i] = m.AddPI(g1.PIName(i))
		}
		t1 := aig.Transfer(m, g1, piMap, plain)
		t2 := aig.Transfer(m, g2, piMap, clone)

		off, err := checkPairs(m, piMap, t1, t2, CheckOptions{})
		if err != nil {
			t.Fatal(err)
		}
		on, err := checkPairs(m, piMap, t1, t2, CheckOptions{Rewrite: true})
		if err != nil {
			t.Fatal(err)
		}
		if off.Equivalent != on.Equivalent {
			t.Fatalf("iter %d: rewrite-off=%v rewrite-on=%v", iter, off.Equivalent, on.Equivalent)
		}
		if !on.Equivalent {
			if on.FailingOutput < 0 {
				t.Fatalf("iter %d: inequivalent but no failing output", iter)
			}
			// The counterexample is indexed by PI position, so it must
			// expose the difference on the ORIGINAL miter too.
			i := on.FailingOutput
			if m.EvalLit(t1[i], on.Counterexample) == m.EvalLit(t2[i], on.Counterexample) {
				t.Fatalf("iter %d: rewrite-on counterexample does not differentiate output %d on the original miter", iter, i)
			}
		}
	}
}

// TestRewriteCheckSharded pins that the pre-reduction composes with
// sharding: the rewritten miter is checked by the same worker pool and
// the deterministic merge rule is unaffected.
func TestRewriteCheckSharded(t *testing.T) {
	g1 := randomMultiOutGraph(42, 12)
	g2 := aig.Clone(g1)
	for _, o := range []int{1, 6, 10} {
		g2.SetPO(o, g2.PO(o).Not())
	}
	outs1 := make([]aig.Lit, g1.NumPOs())
	outs2 := make([]aig.Lit, g2.NumPOs())
	for i := range outs1 {
		outs1[i] = g1.PO(i)
		outs2[i] = g2.PO(i)
	}
	run := func(shards int) Result {
		m := aig.New()
		piMap := make([]aig.Lit, g1.NumPIs())
		for i := range piMap {
			piMap[i] = m.AddPI(g1.PIName(i))
		}
		t1 := aig.Transfer(m, g1, piMap, outs1)
		t2 := aig.Transfer(m, g2, piMap, outs2)
		res, err := checkPairs(m, piMap, t1, t2, CheckOptions{Rewrite: true, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	if serial.Equivalent {
		t.Fatal("mutated outputs must be inequivalent")
	}
	for _, shards := range []int{2, 4} {
		res := run(shards)
		if res.Equivalent || res.FailingOutput != serial.FailingOutput {
			t.Fatalf("shards=%d: equivalent=%v failing=%d, serial failing=%d",
				shards, res.Equivalent, res.FailingOutput, serial.FailingOutput)
		}
	}
}

// TestRewriteMiterShrinks pins the pre-reduction differentially over
// structurally distinct but equivalent sides: one side is the original
// cone set, the other its Balance restructuring (different node
// structure, same function). The rewritten miter must not grow, and
// every moved edge must compute exactly what its original did —
// checked by exhaustive co-simulation of old and new graphs.
func TestRewriteMiterShrinks(t *testing.T) {
	g := randomMultiOutGraph(9, 8)
	gb := aig.Balance(g)
	outs := make([]aig.Lit, g.NumPOs())
	outsB := make([]aig.Lit, gb.NumPOs())
	for i := range outs {
		outs[i] = g.PO(i)
		outsB[i] = gb.PO(i)
	}
	m := aig.New()
	piMap := make([]aig.Lit, g.NumPIs())
	for i := range piMap {
		piMap[i] = m.AddPI(g.PIName(i))
	}
	t1 := aig.Transfer(m, g, piMap, outs)
	t2 := aig.Transfer(m, gb, piMap, outsB)
	distinct := false
	for i := range t1 {
		if t1[i] != t2[i] {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("balanced clone strashed into the original; test exercises nothing")
	}
	nm, _, nt1, nt2 := rewriteMiter(m, t1, t2)
	if nm.NumAnds() > m.NumAnds() {
		t.Fatalf("rewriting grew the miter: %d -> %d", m.NumAnds(), nm.NumAnds())
	}
	n := m.NumPIs()
	if n > 12 {
		t.Fatalf("graph too wide for exhaustive check: %d PIs", n)
	}
	inputs := make([]bool, n)
	for v := 0; v < 1<<n; v++ {
		for i := range inputs {
			inputs[i] = v>>i&1 == 1
		}
		for i := range t1 {
			if m.EvalLit(t1[i], inputs) != nm.EvalLit(nt1[i], inputs) {
				t.Fatalf("pair %d side 1 changed function at input %d", i, v)
			}
			if m.EvalLit(t2[i], inputs) != nm.EvalLit(nt2[i], inputs) {
				t.Fatalf("pair %d side 2 changed function at input %d", i, v)
			}
		}
	}
}
