// Package cec implements SAT-based combinational equivalence checking
// (the "CEC" step of the paper, used both to validate that a target
// set is sufficient — §3.2 — and to verify the final patched
// implementation against the specification).
package cec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ecopatch/internal/aig"
	"ecopatch/internal/cache"
	"ecopatch/internal/cnf"
	"ecopatch/internal/sat"
)

// ErrGaveUp reports that the check was aborted — by a conflict budget
// or an Interrupt — before reaching a verdict. Callers that can live
// with an unknown answer should test for it with errors.Is.
var ErrGaveUp = errors.New("cec: solver gave up")

// CheckOptions tunes a single equivalence check.
type CheckOptions struct {
	// ConfBudget bounds SAT conflicts (<=0 means unlimited); an
	// exceeded budget surfaces as ErrGaveUp. Under sharding the budget
	// applies per shard.
	ConfBudget int64
	// OnSolver, when non-nil, observes every SAT solver the check
	// creates, so callers can Interrupt a long-running check from
	// another goroutine.
	OnSolver func(*sat.Solver)
	// Shards splits the differing output pairs into that many
	// contiguous chunks checked concurrently, one solver+encoder per
	// worker over the shared read-only miter. <=1 keeps the serial
	// path. The verdict is deterministic: on inequivalence the
	// counterexample always comes from the lowest-index satisfiable
	// shard (a deciding shard only interrupts higher-index shards).
	Shards int
	// Cache, when non-nil, memoizes per-shard verdicts keyed by the
	// captured CNF of the shard's diff query. A hit skips the solve
	// entirely (the counterexample is reconstructed from the cached
	// model); every hit is collision-screened by full formula
	// comparison before it is trusted. Unknown verdicts are never
	// cached.
	Cache *cache.SolveCache
	// Rewrite, when enabled, pre-reduces the miter with the DAG-aware
	// rewriting pass (aig.Optimize) before the structural fast path and
	// any solving. The reduction is deterministic and preserves the PI
	// interface (count, order, names), so counterexamples stay indexed
	// by PI position; pairs the rewriting proves equal structurally
	// never reach a solver at all.
	Rewrite bool
	// Preprocess, when enabled, simplifies each shard's captured diff
	// query (bounded variable elimination, subsumption, vivification)
	// before it is cached or solved. PI variables are frozen so
	// counterexample readback stays exact; cached models are extended
	// through the reconstruction stack, so they remain valid for the
	// original encoding. With a cache configured the key is the
	// post-preprocess formula, so semantically-converging encodings hit
	// the same line.
	Preprocess sat.PrepConfig
}

// Result reports the outcome of an equivalence check.
type Result struct {
	Equivalent bool
	// Counterexample holds PI values exposing a difference when
	// Equivalent is false.
	Counterexample []bool
	// FailingOutput is the index of a differing output.
	FailingOutput int
	// Conflicts is the number of SAT conflicts spent.
	Conflicts int64
	// Solve-cache traffic of this check (zero unless
	// CheckOptions.Cache was set): shard verdicts served from the
	// cache, shards solved fresh, and hash collisions screened out by
	// formula comparison.
	CacheHits       int64
	CacheMisses     int64
	CacheCollisions int64
	// Prep aggregates the preprocessing work of every shard (zero
	// unless CheckOptions.Preprocess was enabled).
	Prep sat.PrepStats
}

// CheckAIGs decides whether two AIGs with identical PI/PO counts are
// combinationally equivalent. PIs are matched by position.
func CheckAIGs(g1, g2 *aig.AIG) (Result, error) {
	if g1.NumPIs() != g2.NumPIs() {
		return Result{}, fmt.Errorf("cec: PI count mismatch: %d vs %d", g1.NumPIs(), g2.NumPIs())
	}
	if g1.NumPOs() != g2.NumPOs() {
		return Result{}, fmt.Errorf("cec: PO count mismatch: %d vs %d", g1.NumPOs(), g2.NumPOs())
	}
	// Build the miter in a fresh AIG: shared PIs, XOR per output pair.
	m := aig.New()
	piMap := make([]aig.Lit, g1.NumPIs())
	for i := range piMap {
		piMap[i] = m.AddPI(g1.PIName(i))
	}
	outs1 := make([]aig.Lit, g1.NumPOs())
	outs2 := make([]aig.Lit, g2.NumPOs())
	for i := 0; i < g1.NumPOs(); i++ {
		outs1[i] = g1.PO(i)
		outs2[i] = g2.PO(i)
	}
	t1 := aig.Transfer(m, g1, piMap, outs1)
	t2 := aig.Transfer(m, g2, piMap, outs2)
	return checkPairs(m, piMap, t1, t2, CheckOptions{})
}

// CheckLits decides whether pairs of edges within one AIG are
// pointwise equivalent (as functions of the AIG's PIs).
func CheckLits(g *aig.AIG, as, bs []aig.Lit) (Result, error) {
	return CheckLitsOpt(g, as, bs, CheckOptions{})
}

// CheckLitsOpt is CheckLits with explicit budget/interrupt options.
func CheckLitsOpt(g *aig.AIG, as, bs []aig.Lit, opt CheckOptions) (Result, error) {
	if len(as) != len(bs) {
		return Result{}, fmt.Errorf("cec: pair count mismatch")
	}
	pis := make([]aig.Lit, g.NumPIs())
	for i := range pis {
		pis[i] = g.PI(i)
	}
	return checkPairs(g, pis, as, bs, opt)
}

// checkPairs runs the SAT check "some pair differs" on a miter AIG,
// serially or sharded across a worker pool per opt.Shards.
func checkPairs(m *aig.AIG, pis []aig.Lit, t1, t2 []aig.Lit, opt CheckOptions) (Result, error) {
	if opt.Rewrite {
		// Every entry point passes the full ordered PI list, and the
		// extraction preserves that interface, so readback and the
		// failing-output evaluation below run unchanged on the
		// rewritten miter.
		m, pis, t1, t2 = rewriteMiter(m, t1, t2)
	}
	// Fast path: structural hashing may already have merged each pair.
	var diff []int
	for i := range t1 {
		if t1[i] != t2[i] {
			diff = append(diff, i)
		}
	}
	if len(diff) == 0 {
		return Result{Equivalent: true}, nil
	}
	shards := opt.Shards
	if shards > len(diff) {
		shards = len(diff)
	}
	if shards <= 1 {
		st, cex, conflicts, tally := solvePairShard(m, pis, t1, t2, diff, opt, nil)
		return mergePairVerdicts(m, t1, t2, []sat.Status{st}, [][]bool{cex}, conflicts, tally)
	}

	// Contiguous chunks keep the merge deterministic: the verdict and
	// counterexample come from the lowest-index satisfiable shard, so a
	// deciding shard may only interrupt shards AFTER it.
	bounds := make([]int, shards+1)
	for k := 0; k <= shards; k++ {
		bounds[k] = k * len(diff) / shards
	}
	// Solvers are created and registered (OnSolver) before any worker
	// starts, so an external interruptAll never misses a member.
	solvers := make([]*sat.Solver, shards)
	for k := range solvers {
		solvers[k] = sat.New()
		if opt.ConfBudget > 0 {
			solvers[k].SetConfBudget(opt.ConfBudget)
		}
		if opt.OnSolver != nil {
			opt.OnSolver(solvers[k])
		}
	}
	statuses := make([]sat.Status, shards)
	cexs := make([][]bool, shards)
	tallies := make([]cacheTally, shards)
	var conflicts atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			st, cex, confl, tl := solvePairShard(m, pis, t1, t2, diff[bounds[k]:bounds[k+1]], opt, solvers[k])
			statuses[k] = st
			cexs[k] = cex
			conflicts.Add(confl)
			tallies[k] = tl
			if st == sat.Sat {
				for j := k + 1; j < shards; j++ {
					solvers[j].Interrupt()
				}
			}
		}(k)
	}
	wg.Wait()
	var tally cacheTally
	for _, tl := range tallies {
		tally.add(tl)
	}
	return mergePairVerdicts(m, t1, t2, statuses, cexs, conflicts.Load(), tally)
}

// rewriteMiter rebuilds the miter as a PI-interface-preserving
// extraction of the pair edges, optimized by the DAG-aware rewriting
// pass. POs survive Optimize in order, so the pair edges read back by
// position; the returned PI list is the optimized graph's own.
func rewriteMiter(m *aig.AIG, t1, t2 []aig.Lit) (*aig.AIG, []aig.Lit, []aig.Lit, []aig.Lit) {
	rg := aig.New()
	piMap := make([]aig.Lit, m.NumPIs())
	for i := range piMap {
		piMap[i] = rg.AddPI(m.PIName(i))
	}
	roots := make([]aig.Lit, 0, len(t1)+len(t2))
	roots = append(roots, t1...)
	roots = append(roots, t2...)
	moved := aig.Transfer(rg, m, piMap, roots)
	for _, r := range moved {
		rg.AddPO("t", r)
	}
	og := aig.Optimize(rg)
	nt1 := make([]aig.Lit, len(t1))
	nt2 := make([]aig.Lit, len(t2))
	for i := range nt1 {
		nt1[i] = og.PO(i)
	}
	for i := range nt2 {
		nt2[i] = og.PO(len(t1) + i)
	}
	pis := make([]aig.Lit, og.NumPIs())
	for i := range pis {
		pis[i] = og.PI(i)
	}
	return og, pis, nt1, nt2
}

// cacheTally is per-shard solve-cache and preprocessing traffic.
type cacheTally struct {
	hits, misses, collisions int64
	prep                     sat.PrepStats
}

func (t *cacheTally) add(o cacheTally) {
	t.hits += o.hits
	t.misses += o.misses
	t.collisions += o.collisions
	t.prep.Add(o.prep)
}

// encodePairDiff Tseitin-encodes "some pair in idx differs" into
// sink — PIs first, so counterexample readback never allocates
// variables after solving — and returns the PI literals. The
// variable-allocation sequence is deterministic, so capturing into a
// cnf.Formula and replaying it into a solver yields the same literal
// numbering as encoding into the solver directly.
func encodePairDiff(sink cnf.Sink, m *aig.AIG, pis []aig.Lit, t1, t2 []aig.Lit, idx []int) []sat.Lit {
	e := cnf.NewEncoder(sink, m)
	piLits := make([]sat.Lit, len(pis))
	for i, p := range pis {
		piLits[i] = e.Lit(p)
	}
	// diff = OR over XORs; assert diff.
	diffSel := make([]sat.Lit, 0, len(idx))
	for _, i := range idx {
		a := e.Lit(t1[i])
		b := e.Lit(t2[i])
		d := sat.PosLit(sink.NewVar())
		// d -> (a xor b)
		sink.AddClause(d.Not(), a, b)
		sink.AddClause(d.Not(), a.Not(), b.Not())
		// (a xor b) -> d
		sink.AddClause(d, a, b.Not())
		sink.AddClause(d, a.Not(), b)
		diffSel = append(diffSel, d)
	}
	sink.AddClause(diffSel...)
	return piLits
}

// solvePairShard decides "some pair in idx differs" with one solver
// and encoder. s may be nil (a fresh solver is then built), and the
// returned counterexample is indexed by PI position. With a cache
// configured the encoding is captured first and a screened hit is
// served without solving; with preprocessing enabled the capture is
// simplified (PI variables frozen) before caching or solving, and
// every cached model is reconstruction-extended so it stays valid for
// the original encoding.
func solvePairShard(m *aig.AIG, pis []aig.Lit, t1, t2 []aig.Lit, idx []int, opt CheckOptions, s *sat.Solver) (sat.Status, []bool, int64, cacheTally) {
	var f *cnf.Formula
	var rec *sat.Reconstruction
	var piLits []sat.Lit
	var tally cacheTally
	if opt.Cache != nil || opt.Preprocess.Enable {
		f = &cnf.Formula{}
		piLits = encodePairDiff(f, m, pis, t1, t2, idx)
		if opt.Preprocess.Enable {
			pp := f.Preprocess(piLits, opt.Preprocess)
			tally.prep = pp.Stats
			rec = pp.Rec
			f = pp.F
		}
	}
	if opt.Cache != nil {
		if v, ok, coll := opt.Cache.Lookup(f, nil); ok {
			tally.hits = 1
			tally.collisions = int64(coll)
			var cex []bool
			if v.Status == sat.Sat {
				cex = make([]bool, len(pis))
				for i := range piLits {
					cex[i] = v.LitTrue(piLits[i])
				}
			}
			return v.Status, cex, 0, tally
		} else {
			tally.misses = 1
			tally.collisions = int64(coll)
		}
	}
	if s == nil {
		s = sat.New()
		if opt.ConfBudget > 0 {
			s.SetConfBudget(opt.ConfBudget)
		}
		if opt.OnSolver != nil {
			opt.OnSolver(s)
		}
	}
	if f != nil {
		f.LoadInto(s)
	} else {
		piLits = encodePairDiff(s, m, pis, t1, t2, idx)
	}
	before := s.Stats.Conflicts
	st := s.Solve()
	var cex []bool
	if st == sat.Sat {
		cex = make([]bool, len(pis))
		for i := range pis {
			cex[i] = s.ModelBool(piLits[i])
		}
	}
	if opt.Cache != nil && st != sat.Unknown {
		var model []bool
		if st == sat.Sat {
			model = make([]bool, f.NumVars())
			for v := range model {
				model[v] = s.ModelBool(sat.PosLit(sat.Var(v)))
			}
			// Re-derive eliminated variables so the cached model is a
			// model of the original encoding, not just the simplified
			// one (it satisfies both: every simplified clause is a
			// consequence of the original formula).
			rec.Extend(model)
		}
		opt.Cache.Insert(f, nil, cache.Verdict{Status: st, Model: model})
	}
	return st, cex, s.Stats.Conflicts - before, tally
}

// mergePairVerdicts folds shard outcomes into one Result. Sat beats
// everything (a counterexample is a counterexample regardless of what
// other shards did); all-Unsat means equivalent; otherwise some shard
// gave up with no shard finding a difference — no verdict.
func mergePairVerdicts(m *aig.AIG, t1, t2 []aig.Lit, statuses []sat.Status, cexs [][]bool, conflicts int64, tally cacheTally) (Result, error) {
	satShard := -1
	allUnsat := true
	for k, st := range statuses {
		switch st {
		case sat.Sat:
			if satShard < 0 {
				satShard = k
			}
			allUnsat = false
		case sat.Unsat:
		default:
			allUnsat = false
		}
	}
	switch {
	case satShard >= 0:
		res := Result{Equivalent: false, Conflicts: conflicts,
			CacheHits: tally.hits, CacheMisses: tally.misses, CacheCollisions: tally.collisions,
			Prep: tally.prep}
		res.Counterexample = cexs[satShard]
		// Identify a failing output index by evaluation, scanning the
		// full pair list so the lowest failing index is reported. One
		// Eval pass covers every pair; per-pair EvalLit would redo the
		// O(nodes) walk (and its allocation) for each output.
		res.FailingOutput = -1
		ev := aig.NewEvaluator(m)
		ev.Eval(res.Counterexample)
		for i := range t1 {
			if ev.Lit(t1[i]) != ev.Lit(t2[i]) {
				res.FailingOutput = i
				break
			}
		}
		return res, nil
	case allUnsat:
		return Result{Equivalent: true, Conflicts: conflicts,
			CacheHits: tally.hits, CacheMisses: tally.misses, CacheCollisions: tally.collisions,
			Prep: tally.prep}, nil
	default:
		// Budget exhausted or interrupted: no verdict either way.
		return Result{}, ErrGaveUp
	}
}

func errShape(g1, g2 *aig.AIG) error {
	return fmt.Errorf("cec: interface mismatch: %d/%d PIs, %d/%d POs",
		g1.NumPIs(), g2.NumPIs(), g1.NumPOs(), g2.NumPOs())
}
