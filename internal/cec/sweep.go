package cec

import (
	"math/rand"

	"ecopatch/internal/aig"
	"ecopatch/internal/cnf"
	"ecopatch/internal/sat"
	"ecopatch/internal/sim"
)

// SweepOptions tunes the SAT sweeping (fraiging) pass.
type SweepOptions struct {
	// SimRounds is the number of 64-pattern random simulation rounds
	// used to build the initial candidate equivalence classes.
	SimRounds int
	// ConfBudget bounds SAT conflicts per equivalence query; proofs
	// that exceed it leave the pair unmerged (sound, just weaker).
	ConfBudget int64
	// MaxCandidates bounds how many same-class representatives each
	// node is compared against.
	MaxCandidates int
	// Seed makes the simulation deterministic.
	Seed int64
}

// DefaultSweepOptions returns sensible defaults.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{SimRounds: 8, ConfBudget: 2000, MaxCandidates: 4, Seed: 1}
}

// PairChecker proves pointwise equivalences between edges of one AIG
// using a single incremental SAT solver. Each query encodes only the
// new cone logic, adds two selector-guarded difference clauses, and
// solves under the selector assumption; afterwards the selector is
// retired with a unit clause, so learnt clauses and variable
// activities carry over to the next pair instead of being rebuilt
// from scratch per query (the classic incremental-fraiging setup).
type PairChecker struct {
	g   *aig.AIG
	s   *sat.Solver
	enc *cnf.Encoder
}

// NewPairChecker builds a checker over g. The graph may keep growing
// (new nodes are encoded on demand) as long as PIs are added before
// any pair over them is checked. opt.ConfBudget bounds conflicts per
// query; opt.OnSolver observes the one solver for interruption.
func NewPairChecker(g *aig.AIG, opt CheckOptions) *PairChecker {
	s := sat.New()
	if opt.ConfBudget > 0 {
		s.SetConfBudget(opt.ConfBudget)
	}
	if opt.OnSolver != nil {
		opt.OnSolver(s)
	}
	return &PairChecker{g: g, s: s, enc: cnf.NewEncoder(s, g)}
}

// Solver exposes the underlying solver (e.g. for stats readout).
func (pc *PairChecker) Solver() *sat.Solver { return pc.s }

// Reset re-arms a checker whose solver was interrupted so it can be
// reused for a fresh batch of queries. An Interrupt is sticky by
// design — within one run callers treat it as a termination signal
// (see the engine's deadline watcher) — so a pooled checker handed
// from a cancelled job to a new one would otherwise answer ErrGaveUp
// forever. Clause state survives: learnt clauses and encoded cones
// stay valid because CheckPair retires its selector even on an
// interrupted query.
func (pc *PairChecker) Reset() { pc.s.ClearInterrupt() }

// CheckPair decides whether edges a and b compute the same function of
// the graph's PIs. On disequality cex holds PI values (indexed by PI
// position) exposing the difference. err is ErrGaveUp when the
// conflict budget ran out or the solver was interrupted — the pair is
// then simply unresolved.
func (pc *PairChecker) CheckPair(a, b aig.Lit) (equal bool, cex []bool, err error) {
	if a == b {
		return true, nil, nil
	}
	if a == b.Not() {
		return false, nil, nil
	}
	la, lb := pc.enc.Lit(a), pc.enc.Lit(b)
	d := sat.PosLit(pc.s.NewVar())
	// d -> (a != b)
	pc.s.AddClause(d.Not(), la, lb)
	pc.s.AddClause(d.Not(), la.Not(), lb.Not())
	st := pc.s.Solve(d)
	if st == sat.Sat {
		cex = make([]bool, pc.g.NumPIs())
		for i := range cex {
			cex[i] = pc.s.ModelBool(pc.enc.Lit(pc.g.PI(i)))
		}
	}
	// Retire the selector so the guard clauses become satisfied and
	// reclaimable; future queries use fresh selectors.
	pc.s.AddClause(d.Not())
	switch st {
	case sat.Unsat:
		return true, nil, nil
	case sat.Sat:
		return false, cex, nil
	default:
		return false, nil, ErrGaveUp
	}
}

// Sweep functionally reduces the AIG (fraiging, the core of the
// paper's CEC reference [12]): candidate equivalences are proposed by
// random simulation and proved by incremental SAT; proven-equivalent
// nodes merge (up to complementation). Counterexamples from failed
// proofs refine the candidate classes. The result is functionally
// equivalent to the input, with the same PI/PO interface.
func Sweep(g *aig.AIG, opt SweepOptions) *aig.AIG {
	if opt.SimRounds <= 0 {
		opt.SimRounds = 8
	}
	if opt.MaxCandidates <= 0 {
		opt.MaxCandidates = 4
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Signatures over the ORIGINAL graph.
	sigs := make([][]uint64, g.NumNodes())
	for i := range sigs {
		sigs[i] = make([]uint64, 0, opt.SimRounds+4)
	}
	var keyed []bool            // declared with the memo below; cleared per round
	simr := aig.NewSimulator(g) // reused word buffer across rounds
	addRound := func(piWords []uint64) {
		words := simr.Run(piWords)
		for n := range sigs {
			sigs[n] = append(sigs[n], words[n])
		}
		for n := range keyed {
			keyed[n] = false
		}
	}
	for r := 0; r < opt.SimRounds; r++ {
		addRound(g.RandomSimWords(rng))
	}

	// Canonical keys are memoized per simulation epoch: the main loop,
	// PI registration, and every flushCex rebuild look keys up far more
	// often than signatures change, and each canonKey call is an
	// O(rounds) fold. A new simulation round invalidates every memo.
	keys := make([]uint64, g.NumNodes())
	compls := make([]bool, g.NumNodes())
	keyed = make([]bool, g.NumNodes())
	canon := func(n int) (uint64, bool) {
		if !keyed[n] {
			keys[n], compls[n] = sim.CanonKey(sigs[n])
			keyed[n] = true
		}
		return keys[n], compls[n]
	}
	sameCanonSig := func(a, b int) bool { return sim.CanonEqual(sigs[a], sigs[b]) }

	ng := aig.New()
	checker := NewPairChecker(ng, CheckOptions{ConfBudget: opt.ConfBudget})

	mapped := make([]aig.Lit, g.NumNodes())
	mapped[0] = aig.ConstFalse
	for i := 0; i < g.NumPIs(); i++ {
		mapped[g.PI(i).Node()] = ng.AddPI(g.PIName(i))
	}

	// classes maps canonical-signature hash -> candidates. Buckets may
	// mix true classmates with hash collisions; node keeps the old
	// graph's id so probes verify the full signature first.
	type rep struct {
		edge  aig.Lit // ng edge of the representative's value
		node  int     // old-graph node, for collision checking
		compl bool    // representative stored with canonical polarity
	}
	classes := make(map[uint64][]rep)
	registerPI := func(n int) {
		k, compl := canon(n)
		classes[k] = append(classes[k], rep{edge: mapped[n].XorCompl(compl), node: n, compl: compl})
	}
	for i := 0; i < g.NumPIs(); i++ {
		registerPI(g.PI(i).Node())
	}

	// cexBuf accumulates counterexample patterns to refine classes;
	// builtAnds remembers processed nodes so classes can be rebuilt on
	// the extended signatures after a refinement round.
	cexBuf := make([][]bool, 0, 64)
	var builtAnds []int
	flushCex := func() {
		if len(cexBuf) == 0 {
			return
		}
		piWords := make([]uint64, g.NumPIs())
		for b, cx := range cexBuf {
			for i := range piWords {
				if cx[i] {
					piWords[i] |= 1 << uint(b)
				}
			}
		}
		addRound(piWords)
		cexBuf = cexBuf[:0]
		classes = make(map[uint64][]rep)
		for i := 0; i < g.NumPIs(); i++ {
			registerPI(g.PI(i).Node())
		}
		for _, n := range builtAnds {
			k, compl := canon(n)
			classes[k] = append(classes[k], rep{edge: mapped[n].XorCompl(compl), node: n, compl: compl})
		}
	}

	proveEqual := func(a, b aig.Lit) (equal bool, cex []bool) {
		// A gave-up query (budget exhausted or interrupted) leaves the
		// pair unmerged, which is sound, just weaker.
		equal, cex, _ = checker.CheckPair(a, b)
		return equal, cex
	}

	roots := make([]aig.Lit, g.NumPOs())
	for i := range roots {
		roots[i] = g.PO(i)
	}
	for _, n := range g.ConeNodes(roots) {
		if !g.IsAnd(n) {
			continue
		}
		f0, f1 := g.Fanins(n)
		a := mapped[f0.Node()].XorCompl(f0.Compl())
		b := mapped[f1.Node()].XorCompl(f1.Compl())
		me := ng.And(a, b)
		k, compl := canon(n)
		myCanon := me.XorCompl(compl)
		merged := false
		probes := 0
		for _, cand := range classes[k] {
			if probes == opt.MaxCandidates {
				break
			}
			// Hash buckets may hold colliding signatures; only true
			// signature matches cost a SAT probe (or budget).
			if !sameCanonSig(n, cand.node) {
				continue
			}
			probes++
			equal, cex := proveEqual(myCanon, cand.edge)
			if equal {
				mapped[n] = cand.edge.XorCompl(compl)
				merged = true
				break
			}
			if cex != nil {
				cexBuf = append(cexBuf, cex)
				if len(cexBuf) == 64 {
					flushCex()
					// Keys changed; stop probing this class.
					k, compl = canon(n)
					myCanon = me.XorCompl(compl)
					break
				}
			}
		}
		if !merged {
			mapped[n] = me
			classes[k] = append(classes[k], rep{edge: myCanon, node: n, compl: compl})
			builtAnds = append(builtAnds, n)
		}
	}

	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		ng.AddPO(g.POName(i), mapped[po.Node()].XorCompl(po.Compl()))
	}
	return aig.Cleanup(ng)
}

// CheckAIGsSweeping is CheckAIGs with a fraiging front end: the two
// circuits are placed in one graph, swept (merging all internal
// equivalences SAT can prove cheaply), and only then compared. On
// structurally dissimilar but equivalent circuits this is much
// stronger than the plain miter.
func CheckAIGsSweeping(g1, g2 *aig.AIG, opt SweepOptions) (Result, error) {
	if g1.NumPIs() != g2.NumPIs() || g1.NumPOs() != g2.NumPOs() {
		return Result{}, errShape(g1, g2)
	}
	joint := aig.New()
	piMap := make([]aig.Lit, g1.NumPIs())
	for i := range piMap {
		piMap[i] = joint.AddPI(g1.PIName(i))
	}
	r1 := make([]aig.Lit, g1.NumPOs())
	r2 := make([]aig.Lit, g2.NumPOs())
	for i := range r1 {
		r1[i] = g1.PO(i)
		r2[i] = g2.PO(i)
	}
	t1 := aig.Transfer(joint, g1, piMap, r1)
	t2 := aig.Transfer(joint, g2, piMap, r2)
	for i := range t1 {
		joint.AddPO("a", t1[i])
	}
	for i := range t2 {
		joint.AddPO("b", t2[i])
	}
	swept := Sweep(joint, opt)
	outs1 := make([]aig.Lit, len(t1))
	outs2 := make([]aig.Lit, len(t2))
	for i := range t1 {
		outs1[i] = swept.PO(i)
		outs2[i] = swept.PO(len(t1) + i)
	}
	pis := make([]aig.Lit, swept.NumPIs())
	for i := range pis {
		pis[i] = swept.PI(i)
	}
	return checkPairs(swept, pis, outs1, outs2, CheckOptions{})
}
