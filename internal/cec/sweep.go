package cec

import (
	"math/rand"

	"ecopatch/internal/aig"
	"ecopatch/internal/cnf"
	"ecopatch/internal/sat"
)

// SweepOptions tunes the SAT sweeping (fraiging) pass.
type SweepOptions struct {
	// SimRounds is the number of 64-pattern random simulation rounds
	// used to build the initial candidate equivalence classes.
	SimRounds int
	// ConfBudget bounds SAT conflicts per equivalence query; proofs
	// that exceed it leave the pair unmerged (sound, just weaker).
	ConfBudget int64
	// MaxCandidates bounds how many same-class representatives each
	// node is compared against.
	MaxCandidates int
	// Seed makes the simulation deterministic.
	Seed int64
}

// DefaultSweepOptions returns sensible defaults.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{SimRounds: 8, ConfBudget: 2000, MaxCandidates: 4, Seed: 1}
}

// Sweep functionally reduces the AIG (fraiging, the core of the
// paper's CEC reference [12]): candidate equivalences are proposed by
// random simulation and proved by incremental SAT; proven-equivalent
// nodes merge (up to complementation). Counterexamples from failed
// proofs refine the candidate classes. The result is functionally
// equivalent to the input, with the same PI/PO interface.
func Sweep(g *aig.AIG, opt SweepOptions) *aig.AIG {
	if opt.SimRounds <= 0 {
		opt.SimRounds = 8
	}
	if opt.MaxCandidates <= 0 {
		opt.MaxCandidates = 4
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Signatures over the ORIGINAL graph.
	sigs := make([][]uint64, g.NumNodes())
	for i := range sigs {
		sigs[i] = make([]uint64, 0, opt.SimRounds+4)
	}
	addRound := func(piWords []uint64) {
		words := g.SimWords(piWords)
		for n := range sigs {
			sigs[n] = append(sigs[n], words[n])
		}
	}
	for r := 0; r < opt.SimRounds; r++ {
		addRound(g.RandomSimWords(rng))
	}

	type key string
	canon := func(n int) (key, bool) {
		s := sigs[n]
		compl := len(s) > 0 && s[0]&1 == 1
		buf := make([]byte, 0, len(s)*8)
		for _, w := range s {
			if compl {
				w = ^w
			}
			for k := 0; k < 8; k++ {
				buf = append(buf, byte(w>>uint(8*k)))
			}
		}
		return key(buf), compl
	}

	ng := aig.New()
	solver := sat.New()
	if opt.ConfBudget > 0 {
		solver.SetConfBudget(opt.ConfBudget)
	}
	enc := cnf.NewEncoder(solver, ng)

	mapped := make([]aig.Lit, g.NumNodes())
	mapped[0] = aig.ConstFalse
	for i := 0; i < g.NumPIs(); i++ {
		mapped[g.PI(i).Node()] = ng.AddPI(g.PIName(i))
	}

	// classes maps canonical signature -> candidate (ng edge, old node).
	type rep struct {
		edge  aig.Lit // ng edge of the representative's value
		compl bool    // representative stored with canonical polarity
	}
	classes := make(map[key][]rep)
	registerPI := func(n int) {
		k, compl := canon(n)
		classes[k] = append(classes[k], rep{edge: mapped[n].XorCompl(compl), compl: compl})
	}
	for i := 0; i < g.NumPIs(); i++ {
		registerPI(g.PI(i).Node())
	}

	// cexBuf accumulates counterexample patterns to refine classes;
	// builtAnds remembers processed nodes so classes can be rebuilt on
	// the extended signatures after a refinement round.
	cexBuf := make([][]bool, 0, 64)
	var builtAnds []int
	flushCex := func() {
		if len(cexBuf) == 0 {
			return
		}
		piWords := make([]uint64, g.NumPIs())
		for b, cx := range cexBuf {
			for i := range piWords {
				if cx[i] {
					piWords[i] |= 1 << uint(b)
				}
			}
		}
		addRound(piWords)
		cexBuf = cexBuf[:0]
		classes = make(map[key][]rep)
		for i := 0; i < g.NumPIs(); i++ {
			registerPI(g.PI(i).Node())
		}
		for _, n := range builtAnds {
			k, compl := canon(n)
			classes[k] = append(classes[k], rep{edge: mapped[n].XorCompl(compl), compl: compl})
		}
	}

	proveEqual := func(a, b aig.Lit) (equal bool, cex []bool) {
		if a == b {
			return true, nil
		}
		if a == b.Not() {
			return false, nil
		}
		la, lb := enc.Lit(a), enc.Lit(b)
		// a != b satisfiable?
		d := sat.PosLit(solver.NewVar())
		solver.AddClause(d.Not(), la, lb)
		solver.AddClause(d.Not(), la.Not(), lb.Not())
		switch solver.Solve(d) {
		case sat.Unsat:
			return true, nil
		case sat.Sat:
			in := make([]bool, g.NumPIs())
			for i := 0; i < ng.NumPIs(); i++ {
				in[i] = solver.ModelBool(enc.Lit(ng.PI(i)))
			}
			return false, in
		case sat.Unknown:
			// Budget exhausted or interrupted: leaving the pair
			// unmerged is sound, just weaker.
			return false, nil
		default:
			return false, nil
		}
	}

	roots := make([]aig.Lit, g.NumPOs())
	for i := range roots {
		roots[i] = g.PO(i)
	}
	for _, n := range g.ConeNodes(roots) {
		if !g.IsAnd(n) {
			continue
		}
		f0, f1 := g.Fanins(n)
		a := mapped[f0.Node()].XorCompl(f0.Compl())
		b := mapped[f1.Node()].XorCompl(f1.Compl())
		me := ng.And(a, b)
		k, compl := canon(n)
		myCanon := me.XorCompl(compl)
		merged := false
		cands := classes[k]
		limit := opt.MaxCandidates
		if len(cands) < limit {
			limit = len(cands)
		}
		for ci := 0; ci < limit; ci++ {
			equal, cex := proveEqual(myCanon, cands[ci].edge)
			if equal {
				mapped[n] = cands[ci].edge.XorCompl(compl)
				merged = true
				break
			}
			if cex != nil {
				cexBuf = append(cexBuf, cex)
				if len(cexBuf) == 64 {
					flushCex()
					// Keys changed; stop probing this class.
					k, compl = canon(n)
					myCanon = me.XorCompl(compl)
					break
				}
			}
		}
		if !merged {
			mapped[n] = me
			classes[k] = append(classes[k], rep{edge: myCanon, compl: compl})
			builtAnds = append(builtAnds, n)
		}
	}

	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		ng.AddPO(g.POName(i), mapped[po.Node()].XorCompl(po.Compl()))
	}
	return aig.Cleanup(ng)
}

// CheckAIGsSweeping is CheckAIGs with a fraiging front end: the two
// circuits are placed in one graph, swept (merging all internal
// equivalences SAT can prove cheaply), and only then compared. On
// structurally dissimilar but equivalent circuits this is much
// stronger than the plain miter.
func CheckAIGsSweeping(g1, g2 *aig.AIG, opt SweepOptions) (Result, error) {
	if g1.NumPIs() != g2.NumPIs() || g1.NumPOs() != g2.NumPOs() {
		return Result{}, errShape(g1, g2)
	}
	joint := aig.New()
	piMap := make([]aig.Lit, g1.NumPIs())
	for i := range piMap {
		piMap[i] = joint.AddPI(g1.PIName(i))
	}
	r1 := make([]aig.Lit, g1.NumPOs())
	r2 := make([]aig.Lit, g2.NumPOs())
	for i := range r1 {
		r1[i] = g1.PO(i)
		r2[i] = g2.PO(i)
	}
	t1 := aig.Transfer(joint, g1, piMap, r1)
	t2 := aig.Transfer(joint, g2, piMap, r2)
	for i := range t1 {
		joint.AddPO("a", t1[i])
	}
	for i := range t2 {
		joint.AddPO("b", t2[i])
	}
	swept := Sweep(joint, opt)
	outs1 := make([]aig.Lit, len(t1))
	outs2 := make([]aig.Lit, len(t2))
	for i := range t1 {
		outs1[i] = swept.PO(i)
		outs2[i] = swept.PO(len(t1) + i)
	}
	pis := make([]aig.Lit, swept.NumPIs())
	for i := range pis {
		pis[i] = swept.PI(i)
	}
	return checkPairs(swept, pis, outs1, outs2, CheckOptions{})
}
