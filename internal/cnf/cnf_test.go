package cnf

import (
	"math/rand"
	"testing"

	"ecopatch/internal/aig"
	"ecopatch/internal/sat"
)

// assertFunctionMatch checks, by exhaustive enumeration over PIs, that
// the CNF encoding of root agrees with AIG evaluation.
func assertFunctionMatch(t *testing.T, g *aig.AIG, root aig.Lit) {
	t.Helper()
	s := sat.New()
	e := NewEncoder(s, g)
	rl := e.Lit(root)
	n := g.NumPIs()
	for m := 0; m < 1<<uint(n); m++ {
		in := make([]bool, n)
		assumps := make([]sat.Lit, n)
		for i := range in {
			in[i] = m>>uint(i)&1 == 1
			assumps[i] = e.Lit(g.PI(i)).XorSign(!in[i])
		}
		want := g.EvalLit(root, in)
		// The root must be forced to its evaluated value.
		if got := s.Solve(append(assumps, rl.XorSign(!want))...); got != sat.Sat {
			t.Fatalf("minterm %b: root should be %v but SAT said %v", m, want, got)
		}
		if got := s.Solve(append(assumps, rl.XorSign(want))...); got != sat.Unsat {
			t.Fatalf("minterm %b: root forced wrong value accepted", m)
		}
	}
}

func TestEncodeSimpleGates(t *testing.T) {
	g := aig.New()
	a, b := g.AddPI("a"), g.AddPI("b")
	for _, root := range []aig.Lit{
		g.And(a, b), g.Or(a, b), g.Xor(a, b), g.Xnor(a, b),
		g.And(a, b).Not(), a, a.Not(), aig.ConstTrue, aig.ConstFalse,
	} {
		assertFunctionMatch(t, g, root)
	}
}

func TestEncodeDeepChain(t *testing.T) {
	// A very deep AND/XOR chain must not overflow the stack.
	g := aig.New()
	x := g.AddPI("x")
	acc := x
	for i := 0; i < 100000; i++ {
		acc = g.Xor(acc, x)
	}
	s := sat.New()
	e := NewEncoder(s, g)
	_ = e.Lit(acc) // must not panic
	if s.NumVars() == 0 {
		t.Fatal("nothing encoded")
	}
}

func TestEncodeSharedCones(t *testing.T) {
	g := aig.New()
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	x := g.And(a, b)
	y := g.And(x, c)
	z := g.Or(x, c)
	s := sat.New()
	e := NewEncoder(s, g)
	e.Encode(y)
	varsAfterY := s.NumVars()
	e.Encode(z)
	// z shares the cone of x; only z's top node (plus none other)
	// should be added.
	added := s.NumVars() - varsAfterY
	if added > 2 {
		t.Fatalf("shared cone re-encoded: %d new vars", added)
	}
	if !e.Encoded(x.Node()) {
		t.Fatal("x not marked encoded")
	}
}

func TestEncodeRandomMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 30; iter++ {
		g := aig.New()
		var pool []aig.Lit
		nPI := 3 + rng.Intn(4)
		for i := 0; i < nPI; i++ {
			pool = append(pool, g.AddPI("x"))
		}
		for i := 0; i < 25; i++ {
			a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			pool = append(pool, g.And(a, b))
		}
		root := pool[len(pool)-1].XorCompl(rng.Intn(2) == 1)
		assertFunctionMatch(t, g, root)
	}
}

func TestTwoEncodersShareSolver(t *testing.T) {
	// Two encoders over two AIGs in one solver: constrain outputs
	// equal and check satisfiability matches functional overlap.
	g1 := aig.New()
	a1, b1 := g1.AddPI("a"), g1.AddPI("b")
	f1 := g1.And(a1, b1)

	g2 := aig.New()
	a2, b2 := g2.AddPI("a"), g2.AddPI("b")
	f2 := g2.Or(a2, b2)

	s := sat.New()
	e1 := NewEncoder(s, g1)
	e2 := NewEncoder(s, g2)
	l1 := e1.Lit(f1)
	l2 := e2.Lit(f2)
	// Tie the PIs together.
	for i := 0; i < 2; i++ {
		p1 := e1.Lit(g1.PI(i))
		p2 := e2.Lit(g2.PI(i))
		s.AddClause(p1.Not(), p2)
		s.AddClause(p1, p2.Not())
	}
	// AND != OR is satisfiable (e.g. a=1,b=0).
	s.AddClause(l1, l2)             // at least one true
	s.AddClause(l1.Not(), l2.Not()) // not both -> XOR
	if got := s.Solve(); got != sat.Sat {
		t.Fatalf("AND xor OR should be satisfiable: %v", got)
	}
}
