package cnf

import (
	"testing"

	"ecopatch/internal/aig"
	"ecopatch/internal/sat"
)

// TestFormulaReplay captures one encoding and replays it into several
// solvers: literal numbering must be identical across loads, and a
// literal obtained during capture must be directly usable on every
// replayed solver.
func TestFormulaReplay(t *testing.T) {
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	x := g.Xor(g.And(a, b), g.Or(a, b))

	var f Formula
	enc := NewEncoder(&f, g)
	xl := enc.Lit(x)

	if f.NumVars() == 0 || f.NumClauses() == 0 {
		t.Fatalf("capture recorded %d vars, %d clauses", f.NumVars(), f.NumClauses())
	}

	// Reference: encode straight into a solver; variable numbering of
	// capture and direct encode must agree (same traversal order).
	ref := sat.New()
	refEnc := NewEncoder(ref, g)
	if got := refEnc.Lit(x); got != xl {
		t.Fatalf("capture literal %v != direct literal %v", xl, got)
	}

	for i := 0; i < 3; i++ {
		s := sat.New()
		if !f.LoadInto(s) {
			t.Fatal("LoadInto reported trivially unsat")
		}
		if s.NumVars() != f.NumVars() {
			t.Fatalf("replayed %d vars, captured %d", s.NumVars(), f.NumVars())
		}
		// x is satisfiable (a XOR of overlapping functions): constrain
		// it true and solve.
		if !s.AddClause(xl) {
			t.Fatal("asserting root literal failed")
		}
		if st := s.Solve(); st != sat.Sat {
			t.Fatalf("replayed solver: %v, want Sat", st)
		}
	}

	// Loading into a non-empty solver is a contract violation.
	defer func() {
		if recover() == nil {
			t.Fatal("LoadInto on non-empty solver must panic")
		}
	}()
	dirty := sat.New()
	dirty.NewVar()
	f.LoadInto(dirty)
}
