package cnf

import "ecopatch/internal/sat"

// Preprocessed is a captured formula after a sat.Preprocess pass: the
// simplified Formula (same variable numbering — eliminated variables
// simply no longer occur), the model-reconstruction stack, and the
// pass counters. When Unsat is set the pass refuted the formula
// outright; F then holds a single empty clause, so LoadInto still
// yields the right verdict without special-casing.
type Preprocessed struct {
	F     *Formula
	Rec   *sat.Reconstruction
	Stats sat.PrepStats
	Unsat bool
}

// Preprocess runs the SatELite-style simplification pass over the
// capture and returns the result without mutating f. frozen lists
// literals whose variables must survive elimination — assumption and
// model-readback variables of incremental callers — so follow-up
// Solve calls and model reads over them stay exact on the simplified
// formula. Models of the simplified formula must be passed through
// Rec.Extend before being read against f's full variable set.
func (f *Formula) Preprocess(frozen []sat.Lit, cfg sat.PrepConfig) *Preprocessed {
	var fz []bool
	if len(frozen) > 0 {
		fz = make([]bool, f.nVars)
		for _, l := range frozen {
			fz[l.Var()] = true
		}
	}
	res := sat.Preprocess(f.nVars, f.lits, f.ends, fz, cfg)
	return &Preprocessed{
		F:     &Formula{nVars: res.NumVars, lits: res.Lits, ends: res.Ends},
		Rec:   res.Rec,
		Stats: res.Stats,
		Unsat: res.Unsat,
	}
}
