// Package cnf converts AIG cones into conjunctive normal form inside
// a SAT solver using the Tseitin transformation. One Encoder binds one
// AIG to one solver; several encoders may share a solver, which is how
// the ECO engine builds multi-copy miters (expression (2) and (3) of
// the paper) without duplicating circuits structurally.
package cnf

import (
	"ecopatch/internal/aig"
	"ecopatch/internal/sat"
)

// Sink receives the variables and clauses an Encoder emits. It is the
// subset of *sat.Solver the encoder needs, so a Formula can capture an
// encoding once and replay it into K portfolio members instead of
// re-encoding the cone K times.
type Sink interface {
	NewVar() sat.Var
	AddClause(lits ...sat.Lit) bool
}

// Encoder incrementally Tseitin-encodes cones of one AIG into a
// solver (or any clause Sink). Nodes are encoded at most once;
// repeated Encode calls with overlapping cones share variables and
// clauses.
type Encoder struct {
	S Sink
	G *aig.AIG

	vars     []sat.Lit // per AIG node; LitUndef when not yet encoded
	constSet bool
}

// NewEncoder returns an encoder of g into s.
func NewEncoder(s Sink, g *aig.AIG) *Encoder {
	return &Encoder{S: s, G: g}
}

func (e *Encoder) grow() {
	for len(e.vars) < e.G.NumNodes() {
		e.vars = append(e.vars, sat.LitUndef)
	}
}

// Encode makes sure the cones of all roots are present in the solver
// and returns the solver literal for each root edge.
func (e *Encoder) Encode(roots ...aig.Lit) []sat.Lit {
	e.grow()
	out := make([]sat.Lit, len(roots))
	for i, r := range roots {
		out[i] = e.Lit(r)
	}
	return out
}

// Lit returns the solver literal for an AIG edge, encoding its cone
// on first use. Encoding is iterative in topological order, so deep
// cones cannot overflow the stack.
func (e *Encoder) Lit(l aig.Lit) sat.Lit {
	e.grow()
	if e.vars[l.Node()] == sat.LitUndef {
		for _, n := range e.G.ConeNodes([]aig.Lit{l}) {
			if e.vars[n] == sat.LitUndef {
				e.encodeNode(n)
			}
		}
	}
	return e.vars[l.Node()].XorSign(l.Compl())
}

// encodeNode creates the solver variable and clauses for node n.
// AND fanins must already be encoded (guaranteed by topological
// order of ConeNodes).
func (e *Encoder) encodeNode(n int) {
	g, s := e.G, e.S
	v := sat.PosLit(s.NewVar())
	e.vars[n] = v
	switch {
	case g.IsConst(n):
		s.AddClause(v.Not()) // constant node is false
	case g.IsPI(n):
		// Free variable.
	default:
		f0, f1 := g.Fanins(n)
		a := e.vars[f0.Node()].XorSign(f0.Compl())
		b := e.vars[f1.Node()].XorSign(f1.Compl())
		// v <-> a & b
		s.AddClause(v.Not(), a)
		s.AddClause(v.Not(), b)
		s.AddClause(v, a.Not(), b.Not())
	}
}

// Encoded reports whether node n already has a solver variable.
func (e *Encoder) Encoded(n int) bool {
	return n < len(e.vars) && e.vars[n] != sat.LitUndef
}
