package cnf

import "ecopatch/internal/sat"

// Formula records the variable/clause traffic of an encoding so one
// Tseitin pass can be replayed into several solvers (the portfolio
// path: encode once, load K times). It implements Sink, so it drops in
// wherever an Encoder would write straight into a solver.
//
// Variable numbering is positional: the i-th NewVar call returns
// Var(i), and LoadInto replays the calls in order, so every solver
// loaded from the same Formula sees identical literal numbering — the
// property that lets a portfolio winner's model or core be read with
// the literals handed out during capture.
type Formula struct {
	nVars int
	lits  []sat.Lit // all clause literals, flattened
	ends  []int32   // prefix ends: clause i is lits[ends[i-1]:ends[i]]
}

// NewVar allocates the next capture variable.
func (f *Formula) NewVar() sat.Var {
	v := sat.Var(f.nVars)
	f.nVars++
	return v
}

// AddClause records a clause. It always reports true: satisfiability
// is not evaluated during capture.
func (f *Formula) AddClause(lits ...sat.Lit) bool {
	f.lits = append(f.lits, lits...)
	f.ends = append(f.ends, int32(len(f.lits)))
	return true
}

// NumVars returns the number of variables captured so far.
func (f *Formula) NumVars() int { return f.nVars }

// NumClauses returns the number of clauses captured so far.
func (f *Formula) NumClauses() int { return len(f.ends) }

// LoadInto replays the captured formula into s: NumVars fresh
// variables (s must be empty, or at least aligned so that the next
// variable is Var(0) of the capture) followed by every clause in
// capture order. It returns false if the clauses are trivially
// unsatisfiable in s.
func (f *Formula) LoadInto(s *sat.Solver) bool {
	base := s.NumVars()
	if base != 0 {
		panic("cnf: Formula.LoadInto on a non-empty solver")
	}
	s.EnsureVars(f.nVars)
	ok := true
	start := int32(0)
	for _, end := range f.ends {
		if !s.AddClause(f.lits[start:end]...) {
			ok = false
		}
		start = end
	}
	return ok
}
