package cnf

import "ecopatch/internal/sat"

// Formula records the variable/clause traffic of an encoding so one
// Tseitin pass can be replayed into several solvers (the portfolio
// path: encode once, load K times). It implements Sink, so it drops in
// wherever an Encoder would write straight into a solver.
//
// Variable numbering is positional: the i-th NewVar call returns
// Var(i), and LoadInto replays the calls in order, so every solver
// loaded from the same Formula sees identical literal numbering — the
// property that lets a portfolio winner's model or core be read with
// the literals handed out during capture.
type Formula struct {
	nVars int
	lits  []sat.Lit // all clause literals, flattened
	ends  []int32   // prefix ends: clause i is lits[ends[i-1]:ends[i]]
}

// NewVar allocates the next capture variable.
func (f *Formula) NewVar() sat.Var {
	v := sat.Var(f.nVars)
	f.nVars++
	return v
}

// AddClause records a clause. It always reports true: satisfiability
// is not evaluated during capture.
func (f *Formula) AddClause(lits ...sat.Lit) bool {
	f.lits = append(f.lits, lits...)
	f.ends = append(f.ends, int32(len(f.lits)))
	return true
}

// NumVars returns the number of variables captured so far.
func (f *Formula) NumVars() int { return f.nVars }

// NumClauses returns the number of clauses captured so far.
func (f *Formula) NumClauses() int { return len(f.ends) }

// FNV-1a constants for Hash.
const (
	fnvOffset uint64 = 1469598103934665603
	fnvPrime  uint64 = 1099511628211
)

// Hash returns an FNV-1a fingerprint over the formula's full content
// — variable count, clause boundaries and literals — plus the given
// assumptions, in capture order. Two captures hash equal whenever
// LoadInto would replay them identically under the same assumptions;
// callers keying a cache on it must still screen collisions with
// Equal before trusting a match.
func (f *Formula) Hash(assumps []sat.Lit) uint64 {
	h := fnvOffset
	mix := func(v uint64) {
		for i := 0; i < 64; i += 8 {
			h ^= (v >> uint(i)) & 0xff
			h *= fnvPrime
		}
	}
	mix(uint64(f.nVars))
	mix(uint64(len(f.ends)))
	for _, e := range f.ends {
		mix(uint64(uint32(e)))
	}
	for _, l := range f.lits {
		mix(uint64(uint32(l)))
	}
	mix(uint64(len(assumps)))
	for _, a := range assumps {
		mix(uint64(uint32(a)))
	}
	return h
}

// Equal reports whether two captures are identical — same variable
// count, same clauses in the same order with the same literals. This
// is the collision screen behind Hash-keyed caches.
func (f *Formula) Equal(o *Formula) bool {
	if f.nVars != o.nVars || len(f.ends) != len(o.ends) || len(f.lits) != len(o.lits) {
		return false
	}
	for i := range f.ends {
		if f.ends[i] != o.ends[i] {
			return false
		}
	}
	for i := range f.lits {
		if f.lits[i] != o.lits[i] {
			return false
		}
	}
	return true
}

// Words reports the retained slice words of the capture, for cache
// budget accounting.
func (f *Formula) Words() int {
	return (len(f.lits)+1)/2 + (len(f.ends)+1)/2 + 1
}

// Raw exposes the capture's backing arrays — variable count, the
// flattened clause literals, and the clause-end prefix sums — for
// serialization (the persist layer writes them verbatim). The slices
// are the formula's own storage: callers must treat them as
// read-only.
func (f *Formula) Raw() (nVars int, lits []sat.Lit, ends []int32) {
	return f.nVars, f.lits, f.ends
}

// FromRaw rebuilds a capture from serialized parts. The formula takes
// ownership of both slices. Callers are responsible for structural
// validity (ends non-decreasing, final end == len(lits), every
// literal's variable < nVars) — the persist decoder checks this
// before constructing.
func FromRaw(nVars int, lits []sat.Lit, ends []int32) *Formula {
	return &Formula{nVars: nVars, lits: lits, ends: ends}
}

// LoadInto replays the captured formula into s: NumVars fresh
// variables (s must be empty, or at least aligned so that the next
// variable is Var(0) of the capture) followed by every clause in
// capture order. It returns false if the clauses are trivially
// unsatisfiable in s.
func (f *Formula) LoadInto(s *sat.Solver) bool {
	base := s.NumVars()
	if base != 0 {
		panic("cnf: Formula.LoadInto on a non-empty solver")
	}
	s.EnsureVars(f.nVars)
	ok := true
	start := int32(0)
	for _, end := range f.ends {
		if !s.AddClause(f.lits[start:end]...) {
			ok = false
		}
		start = end
	}
	return ok
}
