// Package blif reads and writes combinational circuits in the
// Berkeley Logic Interchange Format (the .model/.inputs/.outputs/
// .names subset, no latches or subcircuits). Together with the AIGER
// support in internal/aig and the structural-Verilog frontend in
// internal/netlist, it lets circuits flow between this repository and
// the standard logic-synthesis toolchains (ABC, SIS) the paper's
// authors use.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ecopatch/internal/aig"
)

// Write emits the AIG as a BLIF model: one .names table per AND node
// plus buffer/inverter tables for the outputs.
func Write(w io.Writer, g *aig.AIG, modelName string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", modelName)
	fmt.Fprintf(bw, ".inputs")
	for i := 0; i < g.NumPIs(); i++ {
		fmt.Fprintf(bw, " %s", g.PIName(i))
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, ".outputs")
	for i := 0; i < g.NumPOs(); i++ {
		fmt.Fprintf(bw, " %s", g.POName(i))
	}
	fmt.Fprintln(bw)

	name := make(map[int]string)
	for i := 0; i < g.NumPIs(); i++ {
		name[g.PI(i).Node()] = g.PIName(i)
	}
	// Constant-false node, if referenced.
	constName := "__const0"
	roots := make([]aig.Lit, g.NumPOs())
	for i := range roots {
		roots[i] = g.PO(i)
	}
	cone := g.ConeNodes(roots)
	needConst := false
	for _, n := range cone {
		if g.IsConst(n) {
			needConst = true
		}
	}
	if needConst {
		fmt.Fprintf(bw, ".names %s\n", constName) // empty cover = const 0
		name[0] = constName
	}
	edgeRef := func(l aig.Lit) (string, bool) {
		return name[l.Node()], l.Compl()
	}
	for _, n := range cone {
		if !g.IsAnd(n) {
			continue
		}
		nm := fmt.Sprintf("n%d", n)
		name[n] = nm
		f0, f1 := g.Fanins(n)
		a, ac := edgeRef(f0)
		b, bc := edgeRef(f1)
		fmt.Fprintf(bw, ".names %s %s %s\n", a, b, nm)
		row := []byte{'1', '1'}
		if ac {
			row[0] = '0'
		}
		if bc {
			row[1] = '0'
		}
		fmt.Fprintf(bw, "%s 1\n", row)
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		src, compl := edgeRef(po)
		if po.Node() == 0 {
			// Constant output: direct table.
			fmt.Fprintf(bw, ".names %s\n", g.POName(i))
			if compl { // constant true
				fmt.Fprintln(bw, " 1")
			}
			continue
		}
		fmt.Fprintf(bw, ".names %s %s\n", src, g.POName(i))
		if compl {
			fmt.Fprintln(bw, "0 1")
		} else {
			fmt.Fprintln(bw, "1 1")
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// Read parses a single combinational BLIF model into an AIG. .names
// tables may appear in any order; covers with output value 0 are
// complemented sums.
func Read(r io.Reader) (*aig.AIG, error) {
	lines, err := logicalLines(r)
	if err != nil {
		return nil, err
	}
	var inputs, outputs []string
	type table struct {
		ins   []string
		out   string
		rows  []string // input parts
		value byte     // '1' or '0' output polarity
	}
	var tables []*table
	var cur *table
	modelSeen := false
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case ".model":
			modelSeen = true
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
		case ".names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif: .names without output")
			}
			cur = &table{
				ins:   fields[1 : len(fields)-1],
				out:   fields[len(fields)-1],
				value: '1',
			}
			tables = append(tables, cur)
		case ".end":
			cur = nil
		case ".latch", ".subckt", ".gate":
			return nil, fmt.Errorf("blif: construct %s not supported", fields[0])
		default:
			if strings.HasPrefix(fields[0], ".") {
				continue // ignore other directives
			}
			if cur == nil {
				return nil, fmt.Errorf("blif: cover row %q outside .names", line)
			}
			var inPart string
			var outPart byte
			switch len(fields) {
			case 1:
				if len(cur.ins) != 0 {
					return nil, fmt.Errorf("blif: row %q lacks input part", line)
				}
				inPart, outPart = "", fields[0][0]
			case 2:
				inPart, outPart = fields[0], fields[1][0]
			default:
				return nil, fmt.Errorf("blif: malformed cover row %q", line)
			}
			if outPart != '0' && outPart != '1' {
				return nil, fmt.Errorf("blif: bad output value in row %q", line)
			}
			if len(inPart) != len(cur.ins) {
				return nil, fmt.Errorf("blif: row %q width %d != %d inputs", line, len(inPart), len(cur.ins))
			}
			if len(cur.rows) > 0 && cur.value != outPart {
				return nil, fmt.Errorf("blif: mixed output polarities in table for %s", cur.out)
			}
			cur.value = outPart
			cur.rows = append(cur.rows, inPart)
		}
	}
	if !modelSeen {
		return nil, fmt.Errorf("blif: missing .model")
	}

	g := aig.New()
	sig := make(map[string]aig.Lit)
	for _, in := range inputs {
		sig[in] = g.AddPI(in)
	}
	// Dependency-ordered elaboration (Kahn over table outputs).
	byOut := make(map[string]*table, len(tables))
	for _, t := range tables {
		if _, dup := byOut[t.out]; dup {
			return nil, fmt.Errorf("blif: signal %q defined twice", t.out)
		}
		byOut[t.out] = t
	}
	var build func(name string) (aig.Lit, error)
	visiting := make(map[string]bool)
	build = func(name string) (aig.Lit, error) {
		if l, ok := sig[name]; ok {
			return l, nil
		}
		t, ok := byOut[name]
		if !ok {
			return 0, fmt.Errorf("blif: signal %q never defined", name)
		}
		if visiting[name] {
			return 0, fmt.Errorf("blif: combinational cycle through %q", name)
		}
		visiting[name] = true
		ins := make([]aig.Lit, len(t.ins))
		for i, in := range t.ins {
			l, err := build(in)
			if err != nil {
				return 0, err
			}
			ins[i] = l
		}
		sum := aig.ConstFalse
		for _, row := range t.rows {
			cube := aig.ConstTrue
			for i := 0; i < len(row); i++ {
				switch row[i] {
				case '1':
					cube = g.And(cube, ins[i])
				case '0':
					cube = g.And(cube, ins[i].Not())
				case '-':
					// don't care
				default:
					return 0, fmt.Errorf("blif: bad cover character %q", row[i])
				}
			}
			sum = g.Or(sum, cube)
		}
		out := sum
		if t.value == '0' {
			out = sum.Not()
		}
		delete(visiting, name)
		sig[name] = out
		return out, nil
	}
	for _, o := range outputs {
		l, err := build(o)
		if err != nil {
			return nil, err
		}
		g.AddPO(o, l)
	}
	return g, nil
}

// logicalLines reads the file, strips comments (#) and joins
// backslash-continued lines.
func logicalLines(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var lines []string
	cont := ""
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if strings.HasSuffix(line, "\\") {
			cont += strings.TrimSuffix(line, "\\") + " "
			continue
		}
		lines = append(lines, cont+line)
		cont = ""
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blif: %w", err)
	}
	if cont != "" {
		lines = append(lines, cont)
	}
	return lines, nil
}
