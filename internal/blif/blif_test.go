package blif

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"ecopatch/internal/aig"
	"ecopatch/internal/cec"
)

func randomAIG(rng *rand.Rand, nPI, nAnd, nPO int) *aig.AIG {
	g := aig.New()
	pool := []aig.Lit{aig.ConstTrue}
	for i := 0; i < nPI; i++ {
		pool = append(pool, g.AddPI(strings.Repeat("x", 1)+itoa(i)))
	}
	for i := 0; i < nAnd; i++ {
		a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		pool = append(pool, g.And(a, b))
	}
	for o := 0; o < nPO; o++ {
		g.AddPO("y"+itoa(o), pool[len(pool)-1-o].XorCompl(rng.Intn(2) == 1))
	}
	return g
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 20; iter++ {
		g := randomAIG(rng, 3+rng.Intn(5), 4+rng.Intn(30), 1+rng.Intn(3))
		var buf bytes.Buffer
		if err := Write(&buf, g, "rt"); err != nil {
			t.Fatal(err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, buf.String())
		}
		res, err := cec.CheckAIGs(g, back)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Fatalf("iter %d: round trip not equivalent\n%s", iter, buf.String())
		}
	}
}

func TestReadHandWritten(t *testing.T) {
	src := `
# full adder carry
.model carry
.inputs a b cin
.outputs cout
.names a b w1
11 1
.names a cin w2
11 1
.names b cin w3
11 1
.names w1 w2 w3 cout
1-- 1
-1- 1
--1 1
.end
`
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 8; m++ {
		in := []bool{m&1 == 1, m&2 == 2, m&4 == 4}
		ones := 0
		for _, v := range in {
			if v {
				ones++
			}
		}
		if g.Eval(in)[0] != (ones >= 2) {
			t.Fatalf("carry(%v) wrong", in)
		}
	}
}

func TestReadComplementedCover(t *testing.T) {
	// Output polarity 0: f = NOT(a & b) = nand.
	src := `
.model nand2
.inputs a b
.outputs f
.names a b f
11 0
.end
`
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		in := []bool{m&1 == 1, m&2 == 2}
		if g.Eval(in)[0] != !(in[0] && in[1]) {
			t.Fatalf("nand(%v) wrong", in)
		}
	}
}

func TestReadConstants(t *testing.T) {
	src := `
.model consts
.inputs a
.outputs one zero
.names one
 1
.names zero
.end
`
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out := g.Eval([]bool{true})
	if out[0] != true || out[1] != false {
		t.Fatalf("constants wrong: %v", out)
	}
}

func TestReadContinuationAndComments(t *testing.T) {
	src := ".model m # comment\n.inputs \\\na b\n.outputs f\n.names a b f\n11 1\n.end\n"
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPIs() != 2 || g.NumPOs() != 1 {
		t.Fatalf("shape: %d PIs %d POs", g.NumPIs(), g.NumPOs())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                             // no model
		".model m\n.latch a b\n.end\n", // latch
		".model m\n.inputs a\n.outputs f\n.names a f\n11 1\n.end\n",     // row width
		".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n0 0\n.end\n", // mixed polarity
		".model m\n.inputs a\n.outputs f\n.end\n",                       // f undefined
		".model m\n.inputs a\n.outputs f\n.names f f\n1 1\n.end\n",      // cycle
		".model m\n.inputs a\n.outputs f\n.names a f\n2 1\n.end\n",      // bad char
	}
	for i, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
