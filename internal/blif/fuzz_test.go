package blif

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that the BLIF reader never panics and that accepted
// models survive a write/re-read cycle.
func FuzzRead(f *testing.F) {
	f.Add(".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n")
	f.Add(".model m\n.inputs a\n.outputs f\n.names a f\n0 0\n.end\n")
	f.Add(".model m\n.outputs f\n.names f\n 1\n.end\n")
	f.Add("# nothing")
	f.Add(".model m\n.inputs \\\na b\n.outputs f\n.names a b f\n-1 1\n.end\n")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g, "fz"); err != nil {
			t.Fatalf("accepted model cannot be written: %v", err)
		}
		if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("rewritten model does not re-parse: %v\n%s", err, buf.String())
		}
	})
}
