package bench

import (
	"strings"
	"testing"
	"time"

	"ecopatch/internal/eco"
)

// zeroTimings strips the wall-clock fields so two otherwise-identical
// sweeps can be compared byte for byte.
func zeroTimings(rows []Table1Row) {
	for _, r := range rows {
		for m, a := range r.Results {
			a.Seconds, a.SupportSec, a.PatchSec, a.VerifySec = 0, 0, 0, 0
			r.Results[m] = a
		}
	}
}

// TestRunTable1ParallelDeterminism checks the worker-pool fan-out:
// modulo timing columns, a -j 4 sweep must render byte-identically to
// the sequential one (every cell regenerates its instance and all
// engine randomness is instance-local).
func TestRunTable1ParallelDeterminism(t *testing.T) {
	units := []string{"unit1", "unit4", "unit5", "unit10"}
	render := func(jobs int) string {
		rows, err := RunTable1With(RunOptions{Scale: 1, Jobs: jobs, Units: units}, nil)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		zeroTimings(rows)
		var sb strings.Builder
		PrintTable1(&sb, rows, Modes)
		return sb.String()
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Fatalf("parallel sweep differs from sequential:\n--- j=1 ---\n%s--- j=4 ---\n%s", seq, par)
	}
}

func TestRunTable1WithUnknownUnit(t *testing.T) {
	if _, err := RunTable1With(RunOptions{Scale: 1, Units: []string{"nope"}}, nil); err == nil {
		t.Fatal("unknown unit name accepted")
	}
}

// TestConfBudgetDegradesNotBogus arms a 1-conflict budget on every
// (support, patch) configuration and checks the regression fixed in
// this series: budget exhaustion must surface as the §3.6 structural
// fallback — a verified patch — never as a silently-wrong SAT patch
// or a hard error.
func TestConfBudgetDegradesNotBogus(t *testing.T) {
	cfg, err := ConfigByName(1, "unit7")
	if err != nil {
		t.Fatal(err)
	}
	supports := []eco.SupportAlgo{eco.SupportAnalyzeFinal, eco.SupportMinimize, eco.SupportExact}
	patches := []eco.PatchMethod{eco.PatchCubeEnum, eco.PatchInterpolation}
	for _, sup := range supports {
		for _, pm := range patches {
			inst, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			opt := eco.DefaultOptions()
			opt.Support = sup
			opt.Patch = pm
			opt.ConfBudget = 1
			res, err := eco.Solve(inst, opt)
			if err != nil {
				t.Fatalf("%v/%v: budget must degrade, not error: %v", sup, pm, err)
			}
			for _, p := range res.Patches {
				if !p.Structural {
					t.Fatalf("%v/%v: target %s patched by SAT under a 1-conflict budget", sup, pm, p.Target)
				}
			}
			if !res.Verified {
				t.Fatalf("%v/%v: structural fallback result not verified", sup, pm)
			}
		}
	}
}

// TestTimeoutPartialResult arms an already-expired deadline: the solve
// must still return a (degraded, unverified) result with TimedOut set
// rather than an error or a hang.
func TestTimeoutPartialResult(t *testing.T) {
	cfg, err := ConfigByName(1, "unit7")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := eco.DefaultOptions()
	opt.Timeout = time.Nanosecond
	res, err := eco.Solve(inst, opt)
	if err != nil {
		t.Fatalf("expired deadline must yield a partial result, got error: %v", err)
	}
	if !res.TimedOut {
		t.Fatal("TimedOut not set on an expired deadline")
	}
	for _, p := range res.Patches {
		if !p.Structural {
			t.Fatalf("target %s patched by SAT under an expired deadline", p.Target)
		}
	}
}
