package bench

import (
	"testing"

	"ecopatch/internal/netlist"
)

func TestMultiplierLarger(t *testing.T) {
	for _, bits := range []int{4, 5} {
		n := Multiplier(bits)
		res, err := netlist.ToAIG(n)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < 1<<bits; a++ {
			for b := 0; b < 1<<bits; b++ {
				in := make([]bool, 2*bits)
				for i := 0; i < bits; i++ {
					in[i] = a>>uint(i)&1 == 1
					in[bits+i] = b>>uint(i)&1 == 1
				}
				out := res.G.Eval(in)
				want := a * b
				for j := 0; j < 2*bits; j++ {
					if out[j] != (want>>uint(j)&1 == 1) {
						t.Fatalf("bits=%d %d*%d bit %d wrong", bits, a, b, j)
					}
				}
			}
		}
	}
}
