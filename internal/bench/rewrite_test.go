package bench

import "testing"

// TestRewriteParityOnUnits pins the -rewrite contract on real
// benchmark units: for each unit, rewrite-on and rewrite-off cells
// agree on verdicts and patch cost, and the pass demonstrably does
// work — the miters it sees shrink (strictly, summed over the corpus)
// and never grow.
func TestRewriteParityOnUnits(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full solves")
	}
	units := []string{"unit2", "unit4", "unit7"}
	var totalBefore, totalAfter int64
	for _, name := range units {
		cfg, err := ConfigByName(1, name)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []string{ModeMinAssume, ModeExact} {
			off, err := RunUnitWith(cfg, mode, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			on, err := RunUnitWith(cfg, mode, RunOptions{Rewrite: true})
			if err != nil {
				t.Fatal(err)
			}
			ao, an := off.Results[mode], on.Results[mode]
			if an.Feasible != ao.Feasible || an.Verified != ao.Verified {
				t.Fatalf("%s/%s: verdict diverged: rewrite %v/%v plain %v/%v",
					name, mode, an.Feasible, an.Verified, ao.Feasible, ao.Verified)
			}
			if an.Cost != ao.Cost {
				t.Fatalf("%s/%s: cost diverged: rewrite %d plain %d", name, mode, an.Cost, ao.Cost)
			}
			if ao.RewriteNodesBefore != 0 || ao.RewriteNodesAfter != 0 {
				t.Fatalf("%s/%s: rewrite counters nonzero without -rewrite", name, mode)
			}
			if an.RewriteNodesBefore == 0 {
				t.Fatalf("%s/%s: rewrite-on cell never rewrote a miter", name, mode)
			}
			if an.RewriteNodesAfter > an.RewriteNodesBefore {
				t.Fatalf("%s/%s: rewriting grew the miters: %d -> %d",
					name, mode, an.RewriteNodesBefore, an.RewriteNodesAfter)
			}
			totalBefore += an.RewriteNodesBefore
			totalAfter += an.RewriteNodesAfter
		}
	}
	if totalAfter >= totalBefore {
		t.Fatalf("no node eliminated across the corpus: %d -> %d", totalBefore, totalAfter)
	}
}
