package bench

import "testing"

// TestSimParityOnUnits pins the -sim contract on real benchmark
// units: for each unit, sim-on and sim-off cells agree on verdicts and
// patch cost, and the simulation layer demonstrably does work — at
// least one cell over the corpus elides a SAT call via the pattern
// bank.
func TestSimParityOnUnits(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full solves")
	}
	units := []string{"unit2", "unit4", "unit7"}
	var totalElided, totalPatterns int64
	for _, name := range units {
		cfg, err := ConfigByName(1, name)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []string{ModeMinAssume, ModeExact} {
			off, err := RunUnitWith(cfg, mode, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			on, err := RunUnitWith(cfg, mode, RunOptions{Sim: true})
			if err != nil {
				t.Fatal(err)
			}
			ao, an := off.Results[mode], on.Results[mode]
			if an.Feasible != ao.Feasible || an.Verified != ao.Verified {
				t.Fatalf("%s/%s: verdict diverged: sim %v/%v plain %v/%v",
					name, mode, an.Feasible, an.Verified, ao.Feasible, ao.Verified)
			}
			if an.Cost != ao.Cost {
				t.Fatalf("%s/%s: cost diverged: sim %d plain %d", name, mode, an.Cost, ao.Cost)
			}
			if ao.SimElided != 0 || ao.SimPatterns != 0 {
				t.Fatalf("%s/%s: sim counters nonzero without -sim", name, mode)
			}
			totalElided += an.SimElided
			totalPatterns += an.SimPatterns
		}
	}
	if totalElided == 0 {
		t.Fatalf("no SAT call elided across the corpus (patterns banked: %d)", totalPatterns)
	}
}
