package bench

import (
	"strings"
	"testing"
)

func TestTable1OptionsMapping(t *testing.T) {
	for _, mode := range Modes {
		opt, err := Table1Options(mode, false)
		if err != nil {
			t.Fatal(err)
		}
		if opt.ForceStructural {
			t.Fatalf("%s: non-structural unit forced structural", mode)
		}
	}
	optS, err := Table1Options(ModeBaseline, true)
	if err != nil {
		t.Fatal(err)
	}
	if !optS.ForceStructural || optS.CEGARMin {
		t.Fatal("structural baseline must force §3.6 without CEGAR_min")
	}
	optSE, err := Table1Options(ModeExact, true)
	if err != nil {
		t.Fatal(err)
	}
	if !optSE.ForceStructural || !optSE.CEGARMin {
		t.Fatal("structural exact must force §3.6 with CEGAR_min")
	}
	if _, err := Table1Options("bogus", false); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunUnitAllModesOnSmallUnit(t *testing.T) {
	cfg, err := ConfigByName(1, "unit4")
	if err != nil {
		t.Fatal(err)
	}
	row := Table1Row{}
	for _, mode := range Modes {
		r, err := RunUnit(cfg, mode)
		if err != nil {
			t.Fatal(err)
		}
		if row.Unit == "" {
			row = r
		} else {
			row.Results[mode] = r.Results[mode]
		}
		a := r.Results[mode]
		if !a.Feasible || !a.Verified {
			t.Fatalf("%s/%s: feasible=%v verified=%v", cfg.Name, mode, a.Feasible, a.Verified)
		}
	}
	// minassume and exact must not cost more than the baseline allows
	// by construction of the benchmark (weak sanity: all ran).
	if row.Results[ModeExact].Cost > row.Results[ModeBaseline].Cost {
		t.Fatalf("exact (%d) worse than baseline (%d) on unit4",
			row.Results[ModeExact].Cost, row.Results[ModeBaseline].Cost)
	}
	var sb strings.Builder
	PrintTable1(&sb, []Table1Row{row}, Modes)
	outStr := sb.String()
	if !strings.Contains(outStr, "unit4") || !strings.Contains(outStr, "geomean") {
		t.Fatalf("table output malformed:\n%s", outStr)
	}
}

func TestGeomeanRatio(t *testing.T) {
	rows := []Table1Row{
		{Unit: "a", Results: map[string]AlgoResult{
			"x": {Cost: 100}, "y": {Cost: 25},
		}},
		{Unit: "b", Results: map[string]AlgoResult{
			"x": {Cost: 100}, "y": {Cost: 100},
		}},
	}
	got := geomeanRatio(rows, "x", "y", func(a AlgoResult) float64 { return float64(a.Cost) })
	// sqrt(0.25 * 1.0) = 0.5
	if got < 0.49 || got > 0.51 {
		t.Fatalf("geomean = %v, want 0.5", got)
	}
	// Zero entries are skipped, not fatal.
	rows = append(rows, Table1Row{Unit: "c", Results: map[string]AlgoResult{
		"x": {Cost: 0}, "y": {Cost: 5},
	}})
	got2 := geomeanRatio(rows, "x", "y", func(a AlgoResult) float64 { return float64(a.Cost) })
	if got2 != got {
		t.Fatalf("zero row not skipped: %v vs %v", got2, got)
	}
}

func TestSortRows(t *testing.T) {
	rows := []Table1Row{{Unit: "unit10"}, {Unit: "unit2"}, {Unit: "unit1"}}
	SortRows(rows)
	if rows[0].Unit != "unit1" || rows[1].Unit != "unit2" || rows[2].Unit != "unit10" {
		t.Fatalf("sorted wrong: %v %v %v", rows[0].Unit, rows[1].Unit, rows[2].Unit)
	}
}
