package bench

import (
	"reflect"
	"testing"
)

// TestRunTable1Warm runs one small unit cold and warm against a
// shared cache: the passes must agree on everything but wall clock,
// the warm pass must actually hit, and the JSON report must carry the
// additive cache fields.
func TestRunTable1Warm(t *testing.T) {
	opts := RunOptions{
		Scale:        1,
		Modes:        []string{ModeMinAssume},
		Units:        []string{"unit1"},
		CacheEntries: 512,
	}
	run, err := RunTable1Warm(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Cold) != 1 || len(run.Warm) != 1 {
		t.Fatalf("rows: cold %d warm %d", len(run.Cold), len(run.Warm))
	}
	ca := run.Cold[0].Results[ModeMinAssume]
	wa := run.Warm[0].Results[ModeMinAssume]
	if wa.CacheHits == 0 {
		t.Fatal("warm pass recorded no cache hits")
	}
	if ca.CacheMisses == 0 {
		t.Fatal("cold pass recorded no cache misses")
	}
	// Strip the pass-dependent fields; everything else must match.
	norm := func(a AlgoResult) AlgoResult {
		a.Seconds, a.SupportSec, a.PatchSec, a.VerifySec = 0, 0, 0, 0
		a.CacheHits, a.CacheMisses, a.CacheCollisions = 0, 0, 0
		a.SATCalls, a.Conflicts, a.Decisions, a.Propagations = 0, 0, 0, 0
		a.Restarts, a.Learnts, a.LearntEvict = 0, 0, 0
		return a
	}
	if !reflect.DeepEqual(norm(ca), norm(wa)) {
		t.Fatalf("warm pass diverged:\ncold %+v\nwarm %+v", norm(ca), norm(wa))
	}
	if run.Speedup <= 0 {
		t.Fatalf("speedup = %v", run.Speedup)
	}

	rep := NewWarmJSONReport(opts, opts.Modes, run)
	if rep.CacheEntries != 512 || rep.WarmSpeedup != run.Speedup {
		t.Fatalf("report cache fields: %+v", rep)
	}
	cell := rep.Rows[0].Results[ModeMinAssume]
	if cell.ColdSeconds != ca.Seconds {
		t.Fatalf("cold_seconds = %v, want %v", cell.ColdSeconds, ca.Seconds)
	}
}
