package bench

import (
	"fmt"
	"io"

	"ecopatch/internal/eco"
)

// RunCopies reproduces experiment E6 (§3.6.2 of the paper): the
// number of ECO-miter cofactor copies needed to build structural
// patches for multi-target units, comparing the full 2^k expansion
// against the move-guided construction that reuses the 2QBF
// countermove certificates. The paper's data point: 8 targets need
// 255 copies naively and 40 with certificates.
func RunCopies(scale int, w io.Writer) error {
	fmt.Fprintf(w, "%-8s %8s %12s %12s %10s %10s\n",
		"unit", "#targets", "full-copies", "move-copies", "full-ok", "move-ok")
	for _, cfg := range Suite(scale) {
		if cfg.Targets < 3 {
			continue
		}
		inst, err := Generate(cfg)
		if err != nil {
			return err
		}
		full := eco.DefaultOptions()
		full.ForceStructural = true
		full.MaxQuantExpand = 32 // always expand fully

		guided := eco.DefaultOptions()
		guided.ForceStructural = true
		guided.MaxQuantExpand = 1 // use countermoves beyond one target

		rFull, err := eco.Solve(inst, full)
		if err != nil {
			return fmt.Errorf("%s full: %w", cfg.Name, err)
		}
		inst2, err := Generate(cfg)
		if err != nil {
			return err
		}
		rGuided, err := eco.Solve(inst2, guided)
		if err != nil {
			return fmt.Errorf("%s guided: %w", cfg.Name, err)
		}
		fmt.Fprintf(w, "%-8s %8d %12d %12d %10v %10v\n",
			cfg.Name, cfg.Targets,
			rFull.Stats.MiterCopies, rGuided.Stats.MiterCopies,
			rFull.Verified, rGuided.Verified)
	}
	return nil
}

// RunMinCalls reproduces experiment E5 (§3.4.1): SAT calls spent by
// the bisection minimize_assumptions versus the naive linear loop as
// the number of candidate divisors N grows.
func RunMinCalls(w io.Writer) error {
	fmt.Fprintf(w, "%-10s %8s %6s %15s %13s\n",
		"instance", "N", "M", "bisection-calls", "linear-calls")
	for _, size := range []int{60, 120, 240, 480, 960} {
		cfg := Config{
			Name:    fmt.Sprintf("sweep%d", size),
			Seed:    int64(9000 + size),
			Family:  FamRandom,
			Size:    size,
			Targets: 1,
			Profile: T8,
		}
		inst, err := Generate(cfg)
		if err != nil {
			return err
		}
		cmp, err := eco.CompareMinimize(inst)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.Name, err)
		}
		fmt.Fprintf(w, "%-10s %8d %6d %15d %13d\n",
			cfg.Name, cmp.Divisors, cmp.Kept, cmp.BisectionCalls, cmp.LinearCalls)
	}
	return nil
}

// RunPatchCompare reproduces experiment E7: cube enumeration (§3.5)
// versus Craig interpolation (the prior-work [15] method) as the
// patch-function computation, over the SAT-solved suite units.
func RunPatchCompare(scale int, w io.Writer) error {
	fmt.Fprintf(w, "%-8s | %10s %8s | %10s %8s\n",
		"unit", "cube:gate", "time(s)", "itp:gate", "time(s)")
	for _, cfg := range Suite(scale) {
		if StructuralUnits[cfg.Name] {
			continue
		}
		run := func(method eco.PatchMethod) (*eco.Result, error) {
			inst, err := Generate(cfg)
			if err != nil {
				return nil, err
			}
			opt := eco.DefaultOptions()
			opt.Patch = method
			return eco.Solve(inst, opt)
		}
		rc, err := run(eco.PatchCubeEnum)
		if err != nil {
			return fmt.Errorf("%s cubes: %w", cfg.Name, err)
		}
		ri, err := run(eco.PatchInterpolation)
		if err != nil {
			return fmt.Errorf("%s interp: %w", cfg.Name, err)
		}
		mark := func(r *eco.Result) string {
			if !r.Verified {
				return "!"
			}
			return ""
		}
		fmt.Fprintf(w, "%-8s | %10d %7.2f%s | %10d %7.2f%s\n",
			cfg.Name,
			rc.TotalGates, rc.Elapsed.Seconds(), mark(rc),
			ri.TotalGates, ri.Elapsed.Seconds(), mark(ri))
	}
	return nil
}
