package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"ecopatch/internal/eco"
)

// Mode names of the three Table-1 algorithm columns.
const (
	ModeBaseline  = "baseline"  // w/o minimize_assumptions (analyze_final)
	ModeMinAssume = "minassume" // w/ minimize_assumptions (contest 1st place)
	ModeExact     = "exact"     // SAT_prune + CEGAR_min
)

// Modes lists the three Table-1 configurations in column order.
var Modes = []string{ModeBaseline, ModeMinAssume, ModeExact}

// AlgoResult is one (unit, mode) cell group of Table 1.
type AlgoResult struct {
	Cost       int
	PatchGates int
	Seconds    float64
	Verified   bool
	Feasible   bool
	Structural int // targets patched structurally
}

// Table1Row aggregates one benchmark unit across the three modes.
type Table1Row struct {
	Unit    string
	PIs     int
	POs     int
	GatesF  int
	GatesS  int
	Targets int
	Results map[string]AlgoResult
}

// Table1Options maps a mode name to engine options. structural marks
// units that emulate the paper's SAT-timeout rows (unit6, unit10,
// unit11, unit19): they take the §3.6 structural path, with CEGAR_min
// enabled only in the exact mode — reproducing the pattern that the
// first two columns coincide on those rows while SAT_prune+CEGAR_min
// improves them.
func Table1Options(mode string, structural bool) (eco.Options, error) {
	opt := eco.DefaultOptions()
	if structural {
		opt.ForceStructural = true
		opt.CEGARMin = mode == ModeExact
		return opt, nil
	}
	switch mode {
	case ModeBaseline:
		opt.Support = eco.SupportAnalyzeFinal
		opt.LastGasp = false
		opt.CEGARMin = false
	case ModeMinAssume:
		opt.Support = eco.SupportMinimize
	case ModeExact:
		opt.Support = eco.SupportExact
		// Keep the per-target exact search bounded so the whole
		// 20-unit sweep stays laptop-scale; the degrade path mirrors
		// the paper's scalability-for-quality trade (§4.2).
		opt.ExactTimeout = 10 * time.Second
	default:
		return opt, fmt.Errorf("bench: unknown mode %q", mode)
	}
	return opt, nil
}

// RunUnit generates a unit and solves it in one mode.
func RunUnit(cfg Config, mode string) (Table1Row, error) {
	inst, err := Generate(cfg)
	if err != nil {
		return Table1Row{}, err
	}
	row := Table1Row{
		Unit:    cfg.Name,
		PIs:     len(inst.Impl.Inputs),
		POs:     len(inst.Impl.Outputs),
		GatesF:  inst.Impl.NumGates(),
		GatesS:  inst.Spec.NumGates(),
		Targets: cfg.Targets,
		Results: make(map[string]AlgoResult),
	}
	opt, err := Table1Options(mode, StructuralUnits[cfg.Name])
	if err != nil {
		return row, err
	}
	res, err := eco.Solve(inst, opt)
	if err != nil {
		return row, fmt.Errorf("%s/%s: %w", cfg.Name, mode, err)
	}
	row.Results[mode] = AlgoResult{
		Cost:       res.TotalCost,
		PatchGates: res.TotalGates,
		Seconds:    res.Elapsed.Seconds(),
		Verified:   res.Verified,
		Feasible:   res.Feasible,
		Structural: res.Stats.StructuralFixes,
	}
	return row, nil
}

// RunTable1 reproduces Table 1: every unit in every requested mode.
// Rows are returned in unit order; when w is non-nil the paper-style
// table plus the geomean-ratio summary row is printed to it.
func RunTable1(scale int, modes []string, w io.Writer) ([]Table1Row, error) {
	units := Suite(scale)
	rows := make([]Table1Row, 0, len(units))
	for _, cfg := range units {
		row := Table1Row{Results: make(map[string]AlgoResult)}
		for _, mode := range modes {
			r, err := RunUnit(cfg, mode)
			if err != nil {
				return rows, err
			}
			if row.Unit == "" {
				row = r
			} else {
				row.Results[mode] = r.Results[mode]
			}
		}
		rows = append(rows, row)
	}
	if w != nil {
		PrintTable1(w, rows, modes)
	}
	return rows, nil
}

// PrintTable1 renders rows in the layout of the paper's Table 1.
func PrintTable1(w io.Writer, rows []Table1Row, modes []string) {
	fmt.Fprintf(w, "%-8s %5s %5s %7s %7s %7s", "name", "#PI", "#PO", "#gateF", "#gateS", "#target")
	for _, m := range modes {
		fmt.Fprintf(w, " | %9s %7s %8s", m+":cost", "#gate", "time(s)")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %5d %5d %7d %7d %7d", r.Unit, r.PIs, r.POs, r.GatesF, r.GatesS, r.Targets)
		for _, m := range modes {
			a := r.Results[m]
			mark := ""
			if !a.Verified {
				mark = "!"
			}
			fmt.Fprintf(w, " | %9d %7d %7.2f%s", a.Cost, a.PatchGates, a.Seconds, mark)
		}
		fmt.Fprintln(w)
	}
	// Geomean ratios versus the first mode (the paper normalizes to
	// the w/o-minimize_assumptions column).
	if len(modes) < 2 {
		return
	}
	base := modes[0]
	fmt.Fprintf(w, "%-42s", "geomean ratio vs "+base)
	for _, m := range modes {
		cr := geomeanRatio(rows, base, m, func(a AlgoResult) float64 { return float64(a.Cost) })
		gr := geomeanRatio(rows, base, m, func(a AlgoResult) float64 { return float64(a.PatchGates) })
		tr := geomeanRatio(rows, base, m, func(a AlgoResult) float64 { return a.Seconds })
		fmt.Fprintf(w, " | %9.2f %7.2f %7.2fx", cr, gr, tr)
	}
	fmt.Fprintln(w)
}

// geomeanRatio computes the geometric mean over rows of
// metric(mode)/metric(base), skipping rows where either side is zero
// (zeros would collapse the product; the paper's table has none).
func geomeanRatio(rows []Table1Row, base, mode string, metric func(AlgoResult) float64) float64 {
	sum := 0.0
	n := 0
	for _, r := range rows {
		b := metric(r.Results[base])
		v := metric(r.Results[mode])
		if b <= 0 || v <= 0 {
			continue
		}
		sum += math.Log(v / b)
		n++
	}
	if n == 0 {
		return 1
	}
	return math.Exp(sum / float64(n))
}

// SortRows orders rows by numeric unit suffix (unit1, unit2, ...).
func SortRows(rows []Table1Row) {
	sort.Slice(rows, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(rows[i].Unit, "unit%d", &a)
		fmt.Sscanf(rows[j].Unit, "unit%d", &b)
		return a < b
	})
}
