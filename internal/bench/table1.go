package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"ecopatch/internal/cache"
	"ecopatch/internal/eco"
)

// Mode names of the three Table-1 algorithm columns.
const (
	ModeBaseline  = "baseline"  // w/o minimize_assumptions (analyze_final)
	ModeMinAssume = "minassume" // w/ minimize_assumptions (contest 1st place)
	ModeExact     = "exact"     // SAT_prune + CEGAR_min
)

// Modes lists the three Table-1 configurations in column order.
var Modes = []string{ModeBaseline, ModeMinAssume, ModeExact}

// AlgoResult is one (unit, mode) cell group of Table 1.
type AlgoResult struct {
	Cost       int
	PatchGates int
	Seconds    float64
	SupportSec float64 // support-selection wall clock (incl. last-gasp)
	PatchSec   float64 // patch-function computation wall clock
	VerifySec  float64 // final equivalence-check wall clock
	Verified   bool
	Feasible   bool
	Structural int  // targets patched structurally
	TimedOut   bool // deadline fired; result is the degraded partial

	// Aggregated SAT-kernel counters over every solver of the cell.
	SATCalls     int64
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learnts      int64
	LearntEvict  int64

	// Portfolio counters (zero / nil unless the cell ran with
	// Parallelism > 1).
	PortfolioRaces int64
	PortfolioWins  map[string]int64
	SharedOut      int64 // learnt clauses exported to portfolio exchanges
	SharedIn       int64 // learnt clauses imported from portfolio exchanges

	// Solve/window cache counters (zero unless the cell ran with a
	// cache attached).
	CacheHits       int64
	CacheMisses     int64
	CacheCollisions int64

	// Preprocessing counters (zero unless the cell ran with -prep).
	PrepVarsEliminated   int64
	PrepClausesSubsumed  int64
	PrepLitsStrengthened int64
	PrepSeconds          float64

	// Simulation-layer counters (zero unless the cell ran with -sim).
	SimElided   int64
	SimPruned   int64
	SimPatterns int64

	// Rewriting counters (zero unless the cell ran with -rewrite):
	// miter AND-node totals before/after the DAG-aware rewriting pass
	// and the wall clock it spent.
	RewriteNodesBefore int64
	RewriteNodesAfter  int64
	RewriteSec         float64
}

// Table1Row aggregates one benchmark unit across the three modes.
type Table1Row struct {
	Unit    string
	PIs     int
	POs     int
	GatesF  int
	GatesS  int
	Targets int
	Results map[string]AlgoResult
}

// Table1Options maps a mode name to engine options. structural marks
// units that emulate the paper's SAT-timeout rows (unit6, unit10,
// unit11, unit19): they take the §3.6 structural path, with CEGAR_min
// enabled only in the exact mode — reproducing the pattern that the
// first two columns coincide on those rows while SAT_prune+CEGAR_min
// improves them.
func Table1Options(mode string, structural bool) (eco.Options, error) {
	opt := eco.DefaultOptions()
	if structural {
		opt.ForceStructural = true
		opt.CEGARMin = mode == ModeExact
		return opt, nil
	}
	switch mode {
	case ModeBaseline:
		opt.Support = eco.SupportAnalyzeFinal
		opt.LastGasp = false
		opt.CEGARMin = false
	case ModeMinAssume:
		opt.Support = eco.SupportMinimize
	case ModeExact:
		opt.Support = eco.SupportExact
		// Keep the per-target exact search bounded so the whole
		// 20-unit sweep stays laptop-scale; the degrade path mirrors
		// the paper's scalability-for-quality trade (§4.2).
		opt.ExactTimeout = 10 * time.Second
	default:
		return opt, fmt.Errorf("bench: unknown mode %q", mode)
	}
	return opt, nil
}

// RunUnit generates a unit and solves it in one mode.
func RunUnit(cfg Config, mode string) (Table1Row, error) {
	return RunUnitTimeout(cfg, mode, 0)
}

// RunUnitTimeout is RunUnit with a per-cell wall-clock deadline; zero
// means no deadline. A fired deadline is not an error: the engine's
// degraded partial result is recorded with TimedOut set.
func RunUnitTimeout(cfg Config, mode string, timeout time.Duration) (Table1Row, error) {
	return RunUnitWith(cfg, mode, RunOptions{Timeout: timeout})
}

// RunUnitWith runs one (unit, mode) cell under the sweep options,
// honoring Timeout and Parallelism.
func RunUnitWith(cfg Config, mode string, opts RunOptions) (Table1Row, error) {
	inst, err := Generate(cfg)
	if err != nil {
		return Table1Row{}, err
	}
	row := Table1Row{
		Unit:    cfg.Name,
		PIs:     len(inst.Impl.Inputs),
		POs:     len(inst.Impl.Outputs),
		GatesF:  inst.Impl.NumGates(),
		GatesS:  inst.Spec.NumGates(),
		Targets: cfg.Targets,
		Results: make(map[string]AlgoResult),
	}
	opt, err := Table1Options(mode, StructuralUnits[cfg.Name])
	if err != nil {
		return row, err
	}
	opt.Timeout = opts.Timeout
	opt.Parallelism = opts.Parallelism
	opt.Cache = opts.Cache
	opt.Preprocess = opts.Preprocess
	opt.SimBank = opts.Sim
	opt.SimPrune = opts.Sim
	opt.Rewrite = opts.Rewrite
	if opt.Parallelism <= 0 {
		// Bench cells default to the serial engine, not the
		// GOMAXPROCS-aware engine default: rows must be bit-identical
		// across job counts and machines unless -p asks otherwise.
		opt.Parallelism = 1
	}
	res, err := eco.Solve(inst, opt)
	if err != nil {
		return row, fmt.Errorf("%s/%s: %w", cfg.Name, mode, err)
	}
	row.Results[mode] = AlgoFromResult(res)
	return row, nil
}

// AlgoFromResult flattens an engine result into the Table-1 cell
// form. Exported alongside CellFromResult so every result writer
// (harness, ecobench JSON, the ecod daemon) extracts the same fields
// from eco.Result the same way.
func AlgoFromResult(res *eco.Result) AlgoResult {
	return AlgoResult{
		Cost:       res.TotalCost,
		PatchGates: res.TotalGates,
		Seconds:    res.Elapsed.Seconds(),
		SupportSec: res.Stats.SupportTime.Seconds(),
		PatchSec:   res.Stats.PatchTime.Seconds(),
		VerifySec:  res.Stats.VerifyTime.Seconds(),
		Verified:   res.Verified,
		Feasible:   res.Feasible,
		Structural: res.Stats.StructuralFixes,
		TimedOut:   res.TimedOut,

		SATCalls:     res.Stats.Solver.SolveCalls,
		Conflicts:    res.Stats.Solver.Conflicts,
		Decisions:    res.Stats.Solver.Decisions,
		Propagations: res.Stats.Solver.Propagations,
		Restarts:     res.Stats.Solver.Restarts,
		Learnts:      res.Stats.Solver.Learnts,
		LearntEvict:  res.Stats.Solver.Removed,

		PortfolioRaces: res.Stats.PortfolioRaces,
		PortfolioWins:  res.Stats.PortfolioWins,
		SharedOut:      res.Stats.Solver.SharedOut,
		SharedIn:       res.Stats.Solver.SharedIn,

		CacheHits:       res.Stats.CacheHits,
		CacheMisses:     res.Stats.CacheMisses,
		CacheCollisions: res.Stats.CacheCollisions,

		PrepVarsEliminated:   res.Stats.Prep.VarsEliminated,
		PrepClausesSubsumed:  res.Stats.Prep.ClausesSubsumed,
		PrepLitsStrengthened: res.Stats.Prep.LitsStrengthened,
		PrepSeconds:          res.Stats.Prep.PrepTime.Seconds(),

		SimElided:   res.Stats.SimElided,
		SimPruned:   res.Stats.SimPruned,
		SimPatterns: res.Stats.SimPatterns,

		RewriteNodesBefore: res.Stats.RewriteNodesBefore,
		RewriteNodesAfter:  res.Stats.RewriteNodesAfter,
		RewriteSec:         res.Stats.RewriteTime.Seconds(),
	}
}

// RunOptions parameterizes a Table-1 sweep.
type RunOptions struct {
	Scale   int
	Modes   []string      // column order; defaults to Modes
	Jobs    int           // worker goroutines; <=1 means sequential
	Timeout time.Duration // per-(unit,mode) cell deadline; 0 = none
	Units   []string      // restrict to these unit names; nil = all
	// Parallelism is the per-cell eco.Options.Parallelism (intra-solve
	// SAT portfolio + sharded verification). <=0 means 1 — the fully
	// deterministic serial engine — NOT the engine's GOMAXPROCS
	// default, so sweep rows stay reproducible unless asked otherwise.
	Parallelism int
	// CacheEntries, when > 0, attaches a shared solve/window cache of
	// that size to every cell of the sweep (ecobench -cache). Ignored
	// when Cache is set directly.
	CacheEntries int
	// Cache, when non-nil, is the shared cache handed to every cell —
	// the warm-run harness threads one cache through both passes.
	Cache *cache.Cache
	// Preprocess enables CNF preprocessing (bounded variable
	// elimination, subsumption, vivification) on every captured solve
	// of the sweep (ecobench -prep).
	Preprocess bool
	// Sim enables the bit-parallel simulation layer — pattern-bank
	// SAT-call elision and divisor pruning — on every cell of the
	// sweep (ecobench -sim).
	Sim bool
	// Rewrite enables DAG-aware rewriting of every miter before it
	// reaches the solvers, on every cell of the sweep (ecobench
	// -rewrite).
	Rewrite bool
}

// RunTable1 reproduces Table 1: every unit in every requested mode.
// Rows are returned in unit order; when w is non-nil the paper-style
// table plus the geomean-ratio summary row is printed to it.
func RunTable1(scale int, modes []string, w io.Writer) ([]Table1Row, error) {
	return RunTable1With(RunOptions{Scale: scale, Modes: modes}, w)
}

// RunTable1With runs the sweep described by opts, fanning the
// (unit, mode) cells out over opts.Jobs worker goroutines. Each cell
// is independent (instances are regenerated per cell and all engine
// randomness is instance-local), so the row content is identical for
// any job count; rows are always assembled and returned in suite
// order.
func RunTable1With(opts RunOptions, w io.Writer) ([]Table1Row, error) {
	modes := opts.Modes
	if len(modes) == 0 {
		modes = Modes
	}
	if opts.Cache == nil && opts.CacheEntries > 0 {
		opts.Cache = cache.New(opts.CacheEntries)
	}
	units := Suite(opts.Scale)
	if len(opts.Units) > 0 {
		keep := make(map[string]bool, len(opts.Units))
		for _, name := range opts.Units {
			if _, err := ConfigByName(opts.Scale, name); err != nil {
				return nil, err
			}
			keep[name] = true
		}
		filtered := units[:0]
		for _, cfg := range units {
			if keep[cfg.Name] {
				filtered = append(filtered, cfg)
			}
		}
		units = filtered
	}

	// One task per (unit, mode) cell; results land in a slice indexed
	// by cell id so assembly order is independent of completion order.
	type cellOut struct {
		row Table1Row
		err error
	}
	nCells := len(units) * len(modes)
	cells := make([]cellOut, nCells)
	jobs := opts.Jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > nCells && nCells > 0 {
		jobs = nCells
	}
	ids := make(chan int, nCells)
	for id := 0; id < nCells; id++ {
		ids <- id
	}
	close(ids)
	var wg sync.WaitGroup
	for wk := 0; wk < jobs; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ids {
				cfg, mode := units[id/len(modes)], modes[id%len(modes)]
				row, err := RunUnitWith(cfg, mode, opts)
				cells[id] = cellOut{row: row, err: err}
			}
		}()
	}
	wg.Wait()

	rows := make([]Table1Row, 0, len(units))
	for ui := range units {
		row := Table1Row{Results: make(map[string]AlgoResult)}
		for mi, mode := range modes {
			c := cells[ui*len(modes)+mi]
			if c.err != nil {
				return rows, c.err
			}
			if row.Unit == "" {
				row = c.row
			} else {
				row.Results[mode] = c.row.Results[mode]
			}
		}
		rows = append(rows, row)
	}
	if w != nil {
		PrintTable1(w, rows, modes)
	}
	return rows, nil
}

// PrintTable1 renders rows in the layout of the paper's Table 1.
func PrintTable1(w io.Writer, rows []Table1Row, modes []string) {
	fmt.Fprintf(w, "%-8s %5s %5s %7s %7s %7s", "name", "#PI", "#PO", "#gateF", "#gateS", "#target")
	for _, m := range modes {
		fmt.Fprintf(w, " | %9s %7s %8s", m+":cost", "#gate", "time(s)")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %5d %5d %7d %7d %7d", r.Unit, r.PIs, r.POs, r.GatesF, r.GatesS, r.Targets)
		for _, m := range modes {
			a := r.Results[m]
			mark := ""
			if !a.Verified {
				mark = "!"
			}
			fmt.Fprintf(w, " | %9d %7d %7.2f%s", a.Cost, a.PatchGates, a.Seconds, mark)
		}
		fmt.Fprintln(w)
	}
	// Geomean ratios versus the first mode (the paper normalizes to
	// the w/o-minimize_assumptions column).
	if len(modes) < 2 {
		return
	}
	base := modes[0]
	fmt.Fprintf(w, "%-42s", "geomean ratio vs "+base)
	for _, m := range modes {
		cr := geomeanRatio(rows, base, m, func(a AlgoResult) float64 { return float64(a.Cost) })
		gr := geomeanRatio(rows, base, m, func(a AlgoResult) float64 { return float64(a.PatchGates) })
		tr := geomeanRatio(rows, base, m, func(a AlgoResult) float64 { return a.Seconds })
		fmt.Fprintf(w, " | %9.2f %7.2f %7.2fx", cr, gr, tr)
	}
	fmt.Fprintln(w)
}

// geomeanRatio computes the geometric mean over rows of
// metric(mode)/metric(base). Rows where the base metric is zero are
// skipped (the ratio is undefined there); a zero mode metric is
// clamped to a small epsilon so a single perfect row (e.g. a 0-gate
// patch) cannot collapse the whole product to zero. The epsilon is
// 1e-3, not machine-tiny, so count metrics in {0,1,2,...} keep a
// sane scale.
func geomeanRatio(rows []Table1Row, base, mode string, metric func(AlgoResult) float64) float64 {
	const eps = 1e-3
	sum := 0.0
	n := 0
	for _, r := range rows {
		b := metric(r.Results[base])
		v := metric(r.Results[mode])
		if b <= 0 {
			continue
		}
		if v < eps {
			v = eps
		}
		sum += math.Log(v / b)
		n++
	}
	if n == 0 {
		return 1
	}
	return math.Exp(sum / float64(n))
}

// SortRows orders rows by numeric unit suffix (unit1, unit2, ...).
func SortRows(rows []Table1Row) {
	sort.Slice(rows, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(rows[i].Unit, "unit%d", &a)
		fmt.Sscanf(rows[j].Unit, "unit%d", &b)
		return a < b
	})
}
