package bench

import (
	"fmt"

	"ecopatch/internal/netlist"
)

// Multiplier builds an n×n-bit array multiplier (2n inputs, 2n
// outputs) from AND partial products and ripple adders.
func Multiplier(bits int) *netlist.Netlist {
	b := newBuilder(fmt.Sprintf("mul%d", bits))
	as := make([]string, bits)
	bs := make([]string, bits)
	for i := range as {
		as[i] = b.input(fmt.Sprintf("a%d", i))
	}
	for i := range bs {
		bs[i] = b.input(fmt.Sprintf("b%d", i))
	}
	// Partial products pp[i][j] = a[j] & b[i].
	pp := make([][]string, bits)
	for i := range pp {
		pp[i] = make([]string, bits)
		for j := range pp[i] {
			pp[i][j] = b.gate(netlist.GateAnd, as[j], bs[i])
		}
	}
	// Accumulate rows with ripple additions. acc holds the current
	// partial sum, 2*bits wide (missing entries are logical zero).
	acc := make([]string, 2*bits)
	for j := 0; j < bits; j++ {
		acc[j] = pp[0][j]
	}
	for i := 1; i < bits; i++ {
		carry := ""
		for j := 0; j < bits; j++ {
			pos := i + j
			x := acc[pos] // may be empty (zero)
			y := pp[i][j]
			switch {
			case x == "" && carry == "":
				acc[pos] = y
			case x == "":
				s := b.gate(netlist.GateXor, y, carry)
				carry = b.gate(netlist.GateAnd, y, carry)
				acc[pos] = s
			case carry == "":
				s := b.gate(netlist.GateXor, x, y)
				carry = b.gate(netlist.GateAnd, x, y)
				acc[pos] = s
			default:
				xy := b.gate(netlist.GateXor, x, y)
				s := b.gate(netlist.GateXor, xy, carry)
				c1 := b.gate(netlist.GateAnd, x, y)
				c2 := b.gate(netlist.GateAnd, xy, carry)
				carry = b.gate(netlist.GateOr, c1, c2)
				acc[pos] = s
			}
		}
		if carry != "" {
			pos := i + bits
			if acc[pos] == "" {
				acc[pos] = carry
			} else {
				s := b.gate(netlist.GateXor, acc[pos], carry)
				// No further carry possible into this position chain
				// because the next slot is still empty at this row.
				next := b.gate(netlist.GateAnd, acc[pos], carry)
				acc[pos] = s
				if pos+1 < 2*bits {
					if acc[pos+1] == "" {
						acc[pos+1] = next
					} else {
						acc[pos+1] = b.gate(netlist.GateXor, acc[pos+1], next)
					}
				}
			}
		}
	}
	for j := 0; j < 2*bits; j++ {
		src := acc[j]
		if src == "" {
			src = netlist.Const0
		}
		b.output(fmt.Sprintf("p%d", j), src)
	}
	return b.n
}

// BarrelShifter builds a logical left barrel shifter: n data inputs,
// log2(n) shift-amount inputs, n outputs (n must be a power of two).
func BarrelShifter(n int) *netlist.Netlist {
	logN := 0
	for 1<<uint(logN) < n {
		logN++
	}
	b := newBuilder(fmt.Sprintf("bshift%d", n))
	data := make([]string, n)
	for i := range data {
		data[i] = b.input(fmt.Sprintf("d%d", i))
	}
	sel := make([]string, logN)
	for i := range sel {
		sel[i] = b.input(fmt.Sprintf("s%d", i))
	}
	cur := data
	for stage := 0; stage < logN; stage++ {
		shift := 1 << uint(stage)
		nsel := b.gate(netlist.GateNot, sel[stage])
		next := make([]string, n)
		for i := 0; i < n; i++ {
			keep := b.gate(netlist.GateAnd, cur[i], nsel)
			if i >= shift {
				moved := b.gate(netlist.GateAnd, cur[i-shift], sel[stage])
				next[i] = b.gate(netlist.GateOr, keep, moved)
			} else {
				next[i] = keep
			}
		}
		cur = next
	}
	for i := 0; i < n; i++ {
		b.output(fmt.Sprintf("q%d", i), cur[i])
	}
	return b.n
}

// Decoder builds an n-to-2^n one-hot decoder with an enable input.
func Decoder(n int) *netlist.Netlist {
	b := newBuilder(fmt.Sprintf("dec%d", n))
	sel := make([]string, n)
	for i := range sel {
		sel[i] = b.input(fmt.Sprintf("s%d", i))
	}
	en := b.input("en")
	nsel := make([]string, n)
	for i := range sel {
		nsel[i] = b.gate(netlist.GateNot, sel[i])
	}
	for m := 0; m < 1<<uint(n); m++ {
		term := en
		for i := 0; i < n; i++ {
			bit := sel[i]
			if m>>uint(i)&1 == 0 {
				bit = nsel[i]
			}
			term = b.gate(netlist.GateAnd, term, bit)
		}
		b.output(fmt.Sprintf("y%d", m), term)
	}
	return b.n
}
