package bench

import (
	"math/rand"
	"testing"

	"ecopatch/internal/eco"
	"ecopatch/internal/netlist"
)

func evalNet(t *testing.T, n *netlist.Netlist, in []bool) []bool {
	t.Helper()
	res, err := netlist.ToAIG(n)
	if err != nil {
		t.Fatal(err)
	}
	full := make([]bool, res.G.NumPIs())
	copy(full, in)
	return res.G.Eval(full)
}

func TestRippleAdderCorrect(t *testing.T) {
	n := RippleAdder(4)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			in := make([]bool, 8)
			for i := 0; i < 4; i++ {
				in[i] = a>>uint(i)&1 == 1
				in[4+i] = b>>uint(i)&1 == 1
			}
			out := evalNet(t, n, in)
			sum := a + b
			for i := 0; i < 4; i++ {
				if out[i] != (sum>>uint(i)&1 == 1) {
					t.Fatalf("adder: %d+%d bit %d wrong", a, b, i)
				}
			}
			if out[4] != (sum >= 16) {
				t.Fatalf("adder: %d+%d carry wrong", a, b)
			}
		}
	}
}

func TestComparatorCorrect(t *testing.T) {
	n := Comparator(3)
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			in := make([]bool, 6)
			for i := 0; i < 3; i++ {
				in[i] = a>>uint(i)&1 == 1
				in[3+i] = b>>uint(i)&1 == 1
			}
			out := evalNet(t, n, in)
			if out[0] != (a < b) || out[1] != (a == b) || out[2] != (a > b) {
				t.Fatalf("cmp(%d,%d) = %v", a, b, out)
			}
		}
	}
}

func TestALUCorrect(t *testing.T) {
	n := ALU(3)
	for op := 0; op < 4; op++ {
		for a := 0; a < 8; a++ {
			for b := 0; b < 8; b++ {
				in := make([]bool, 8)
				for i := 0; i < 3; i++ {
					in[i] = a>>uint(i)&1 == 1
					in[3+i] = b>>uint(i)&1 == 1
				}
				in[6] = op&1 == 1
				in[7] = op&2 == 2
				out := evalNet(t, n, in)
				var want int
				switch op {
				case 0:
					want = a & b
				case 1:
					want = a | b
				case 2:
					want = a ^ b
				case 3:
					want = a + b
				}
				for i := 0; i < 3; i++ {
					if out[i] != (want>>uint(i)&1 == 1) {
						t.Fatalf("alu op%d (%d,%d) bit %d: out=%v want=%d", op, a, b, i, out, want)
					}
				}
			}
		}
	}
}

func TestParityTreeCorrect(t *testing.T) {
	n := ParityTree(7)
	for m := 0; m < 128; m++ {
		in := make([]bool, 7)
		ones := 0
		for i := range in {
			in[i] = m>>uint(i)&1 == 1
			if in[i] {
				ones++
			}
		}
		out := evalNet(t, n, in)
		if out[0] != (ones%2 == 1) {
			t.Fatalf("parity(%07b) = %v", m, out[0])
		}
	}
}

func TestC17Shape(t *testing.T) {
	n := C17()
	if len(n.Inputs) != 5 || len(n.Outputs) != 2 {
		t.Fatalf("c17 shape: %d/%d", len(n.Inputs), len(n.Outputs))
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDAGValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		n := RandomDAG(rng, 6, 80, 4)
		if err := n.Validate(); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if _, err := netlist.ToAIG(n); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "d", Seed: 7, Family: FamRandom, Size: 120, Targets: 2, Profile: T3}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Impl.String() != b.Impl.String() || a.Spec.String() != b.Spec.String() {
		t.Fatal("generation not deterministic")
	}
}

func TestGeneratedInstancesAreFeasibleAndSolvable(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	families := []Family{FamAdder, FamALU, FamComparator, FamParity, FamRandom, FamMultiplier, FamShifter, FamDecoder}
	for iter := 0; iter < 16; iter++ {
		cfg := Config{
			Name:    "gen",
			Seed:    rng.Int63(),
			Family:  families[iter%len(families)],
			Size:    6 + rng.Intn(60),
			Targets: 1 + rng.Intn(3),
			Profile: WeightProfile(1 + iter%8),
		}
		switch cfg.Family {
		case FamAdder, FamALU, FamComparator, FamMultiplier, FamDecoder:
			cfg.Size = 3 + rng.Intn(3)
		case FamShifter:
			cfg.Size = 8
		}
		inst, err := Generate(cfg)
		if err != nil {
			t.Fatalf("iter %d (%v): %v", iter, cfg.Family, err)
		}
		res, err := eco.Solve(inst, eco.DefaultOptions())
		if err != nil {
			t.Fatalf("iter %d (%v): %v", iter, cfg.Family, err)
		}
		if !res.Feasible {
			t.Fatalf("iter %d (%v): generated instance infeasible", iter, cfg.Family)
		}
		if !res.Verified {
			t.Fatalf("iter %d (%v): patch not verified", iter, cfg.Family)
		}
	}
}

func TestSuiteShape(t *testing.T) {
	units := Suite(1)
	if len(units) != 20 {
		t.Fatalf("suite has %d units", len(units))
	}
	wantTargets := []int{1, 1, 1, 1, 2, 2, 1, 1, 4, 2, 8, 1, 1, 12, 1, 2, 8, 1, 4, 4}
	for i, u := range units {
		if u.Targets != wantTargets[i] {
			t.Fatalf("%s: targets %d, want %d (Table 1)", u.Name, u.Targets, wantTargets[i])
		}
	}
	if _, err := ConfigByName(1, "unit7"); err != nil {
		t.Fatal(err)
	}
	if _, err := ConfigByName(1, "nope"); err == nil {
		t.Fatal("unknown unit accepted")
	}
}

func TestSuiteUnitsGenerate(t *testing.T) {
	for _, cfg := range Suite(1) {
		inst, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if got := len(inst.Impl.Targets()); got != cfg.Targets {
			t.Fatalf("%s: %d targets, want %d", cfg.Name, got, cfg.Targets)
		}
		// Every implementation signal must have a weight.
		if len(inst.Weights.Costs) == 0 {
			t.Fatalf("%s: empty weight table", cfg.Name)
		}
	}
}

func TestWeightProfilesDiffer(t *testing.T) {
	cfg := Config{Name: "w", Seed: 9, Family: FamRandom, Size: 150, Targets: 1}
	seen := make(map[string]bool)
	for p := T1; p <= T8; p++ {
		cfg.Profile = p
		inst, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sig string
		for name, c := range inst.Weights.Costs {
			_ = name
			sig += string(rune('0' + c%10))
		}
		seen[sig] = true
	}
	if len(seen) < 4 {
		t.Fatalf("weight profiles too similar: %d distinct signatures", len(seen))
	}
}

func TestWeightProfileT1T2Gradient(t *testing.T) {
	cfg := Config{Name: "g", Seed: 5, Family: FamRandom, Size: 200, Targets: 1, Profile: T1}
	instA, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Profile = T2
	instB, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// In T1 the gradient makes shallow signals expensive; in T2 cheap.
	// Compare the mean input cost across the two profiles.
	mean := func(inst *eco.Instance) float64 {
		sum := 0
		for _, in := range inst.Impl.Inputs {
			sum += inst.Weights.Cost(in)
		}
		return float64(sum) / float64(len(inst.Impl.Inputs))
	}
	if mean(instA) <= mean(instB) {
		t.Fatalf("T1 mean input cost %.1f should exceed T2's %.1f", mean(instA), mean(instB))
	}
}

// TestTheoremOneSequenceNeverFallsBack checks the practical
// consequence of Theorem 1: on feasible instances with unlimited SAT
// budget, every one-target step of the sequence is solvable by the
// SAT path (no structural fallback is ever needed).
func TestTheoremOneSequenceNeverFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for iter := 0; iter < 8; iter++ {
		cfg := Config{
			Name:    "thm1",
			Seed:    rng.Int63(),
			Family:  FamRandom,
			Size:    80 + rng.Intn(120),
			Targets: 2 + rng.Intn(4),
			Profile: WeightProfile(1 + iter%8),
		}
		inst, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eco.Solve(inst, eco.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible || !res.Verified {
			t.Fatalf("iter %d: feasible=%v verified=%v", iter, res.Feasible, res.Verified)
		}
		if res.Stats.StructuralFixes != 0 {
			t.Fatalf("iter %d: %d structural fallbacks on a feasible instance with unlimited budget",
				iter, res.Stats.StructuralFixes)
		}
	}
}

// TestSuiteScale2 exercises the size knob (guarded: several seconds).
func TestSuiteScale2(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-2 sweep skipped in -short mode")
	}
	for _, name := range []string{"unit4", "unit13", "unit16"} {
		cfg, err := ConfigByName(2, name)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := eco.Solve(inst, eco.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Verified {
			t.Fatalf("%s@scale2: not verified", name)
		}
	}
}
