// Package bench synthesizes a replica of the ICCAD-2017 CAD Contest
// Problem A benchmark suite used in the paper's evaluation. The real
// contest files are not redistributable, so each unit is generated
// deterministically from a seed: a base circuit (structured family or
// random DAG), a set of target points whose functions are cut out of
// the implementation, a specification in which those functions have
// been replaced by new logic (guaranteeing ECO feasibility by
// construction), and one of the contest's eight weight profiles
// (T1–T8, §4.1).
package bench

import (
	"fmt"
	"math/rand"

	"ecopatch/internal/netlist"
)

// builder incrementally constructs a netlist with fresh wire names.
type builder struct {
	n    *netlist.Netlist
	next int
}

func newBuilder(name string) *builder {
	return &builder{n: &netlist.Netlist{Name: name}}
}

func (b *builder) input(name string) string {
	b.n.Inputs = append(b.n.Inputs, name)
	return name
}

func (b *builder) output(name, src string) {
	b.n.Outputs = append(b.n.Outputs, name)
	b.n.Gates = append(b.n.Gates, netlist.Gate{Kind: netlist.GateBuf, Out: name, Ins: []string{src}})
}

func (b *builder) wire() string {
	b.next++
	w := fmt.Sprintf("w%d", b.next)
	b.n.Wires = append(b.n.Wires, w)
	return w
}

func (b *builder) gate(kind netlist.GateKind, ins ...string) string {
	w := b.wire()
	b.n.Gates = append(b.n.Gates, netlist.Gate{Kind: kind, Out: w, Ins: ins})
	return w
}

// RippleAdder builds an n-bit ripple-carry adder (2n inputs,
// n+1 outputs).
func RippleAdder(bits int) *netlist.Netlist {
	b := newBuilder(fmt.Sprintf("adder%d", bits))
	as := make([]string, bits)
	bs := make([]string, bits)
	for i := range as {
		as[i] = b.input(fmt.Sprintf("a%d", i))
	}
	for i := range bs {
		bs[i] = b.input(fmt.Sprintf("b%d", i))
	}
	carry := ""
	for i := 0; i < bits; i++ {
		axb := b.gate(netlist.GateXor, as[i], bs[i])
		var sum string
		if carry == "" {
			sum = axb
			carry = b.gate(netlist.GateAnd, as[i], bs[i])
		} else {
			sum = b.gate(netlist.GateXor, axb, carry)
			c1 := b.gate(netlist.GateAnd, as[i], bs[i])
			c2 := b.gate(netlist.GateAnd, axb, carry)
			carry = b.gate(netlist.GateOr, c1, c2)
		}
		b.output(fmt.Sprintf("s%d", i), sum)
	}
	b.output("cout", carry)
	return b.n
}

// Comparator builds an n-bit magnitude comparator (lt, eq, gt).
func Comparator(bits int) *netlist.Netlist {
	b := newBuilder(fmt.Sprintf("cmp%d", bits))
	as := make([]string, bits)
	bs := make([]string, bits)
	for i := range as {
		as[i] = b.input(fmt.Sprintf("a%d", i))
	}
	for i := range bs {
		bs[i] = b.input(fmt.Sprintf("b%d", i))
	}
	eq := ""
	lt := ""
	for i := bits - 1; i >= 0; i-- {
		bitEq := b.gate(netlist.GateXnor, as[i], bs[i])
		na := b.gate(netlist.GateNot, as[i])
		bitLt := b.gate(netlist.GateAnd, na, bs[i])
		if eq == "" {
			eq = bitEq
			lt = bitLt
		} else {
			lt = b.gate(netlist.GateOr, lt, b.gate(netlist.GateAnd, eq, bitLt))
			eq = b.gate(netlist.GateAnd, eq, bitEq)
		}
	}
	gt := b.gate(netlist.GateNor, lt, eq)
	b.output("lt", lt)
	b.output("eq", eq)
	b.output("gt", gt)
	return b.n
}

// ParityTree builds an n-input parity circuit plus a few majority
// outputs for structural variety.
func ParityTree(n int) *netlist.Netlist {
	b := newBuilder(fmt.Sprintf("parity%d", n))
	ins := make([]string, n)
	for i := range ins {
		ins[i] = b.input(fmt.Sprintf("x%d", i))
	}
	level := ins
	for len(level) > 1 {
		var next []string
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.gate(netlist.GateXor, level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	b.output("parity", level[0])
	// Majority-of-three chains over consecutive inputs.
	for i := 0; i+2 < n; i += 3 {
		ab := b.gate(netlist.GateAnd, ins[i], ins[i+1])
		bc := b.gate(netlist.GateAnd, ins[i+1], ins[i+2])
		ac := b.gate(netlist.GateAnd, ins[i], ins[i+2])
		maj := b.gate(netlist.GateOr, b.gate(netlist.GateOr, ab, bc), ac)
		b.output(fmt.Sprintf("maj%d", i/3), maj)
	}
	return b.n
}

// ALU builds a small n-bit ALU: two operation-select inputs choose
// among AND, OR, XOR and ADD of the operands.
func ALU(bits int) *netlist.Netlist {
	b := newBuilder(fmt.Sprintf("alu%d", bits))
	as := make([]string, bits)
	bs := make([]string, bits)
	for i := range as {
		as[i] = b.input(fmt.Sprintf("a%d", i))
	}
	for i := range bs {
		bs[i] = b.input(fmt.Sprintf("b%d", i))
	}
	s0 := b.input("op0")
	s1 := b.input("op1")
	ns0 := b.gate(netlist.GateNot, s0)
	ns1 := b.gate(netlist.GateNot, s1)
	selAnd := b.gate(netlist.GateAnd, ns1, ns0)
	selOr := b.gate(netlist.GateAnd, ns1, s0)
	selXor := b.gate(netlist.GateAnd, s1, ns0)
	selAdd := b.gate(netlist.GateAnd, s1, s0)
	carry := ""
	for i := 0; i < bits; i++ {
		gAnd := b.gate(netlist.GateAnd, as[i], bs[i])
		gOr := b.gate(netlist.GateOr, as[i], bs[i])
		gXor := b.gate(netlist.GateXor, as[i], bs[i])
		var sum string
		if carry == "" {
			sum = gXor
			carry = gAnd
		} else {
			sum = b.gate(netlist.GateXor, gXor, carry)
			carry = b.gate(netlist.GateOr, gAnd, b.gate(netlist.GateAnd, gXor, carry))
		}
		t0 := b.gate(netlist.GateAnd, selAnd, gAnd)
		t1 := b.gate(netlist.GateAnd, selOr, gOr)
		t2 := b.gate(netlist.GateAnd, selXor, gXor)
		t3 := b.gate(netlist.GateAnd, selAdd, sum)
		out := b.gate(netlist.GateOr, b.gate(netlist.GateOr, t0, t1), b.gate(netlist.GateOr, t2, t3))
		b.output(fmt.Sprintf("y%d", i), out)
	}
	b.output("cout", carry)
	return b.n
}

// C17 is the classic ISCAS-85 c17 benchmark.
func C17() *netlist.Netlist {
	b := newBuilder("c17")
	g1 := b.input("G1")
	g2 := b.input("G2")
	g3 := b.input("G3")
	g6 := b.input("G6")
	g7 := b.input("G7")
	g10 := b.gate(netlist.GateNand, g1, g3)
	g11 := b.gate(netlist.GateNand, g3, g6)
	g16 := b.gate(netlist.GateNand, g2, g11)
	g19 := b.gate(netlist.GateNand, g11, g7)
	g22 := b.gate(netlist.GateNand, g10, g16)
	g23 := b.gate(netlist.GateNand, g16, g19)
	b.output("G22", g22)
	b.output("G23", g23)
	return b.n
}

var randKinds = []netlist.GateKind{
	netlist.GateAnd, netlist.GateOr, netlist.GateNand, netlist.GateNor,
	netlist.GateXor, netlist.GateXnor, netlist.GateAnd, netlist.GateOr,
}

// RandomDAG builds a random combinational netlist with locality bias:
// gates prefer recent signals as inputs, giving deep, narrow cones
// like real logic rather than a flat soup.
func RandomDAG(rng *rand.Rand, nIn, nGates, nOut int) *netlist.Netlist {
	b := newBuilder(fmt.Sprintf("rand%d", nGates))
	pool := make([]string, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		pool = append(pool, b.input(fmt.Sprintf("x%d", i)))
	}
	pick := func() string {
		// Bias toward recent signals: quadratic skew.
		r := rng.Float64()
		idx := int(r * r * float64(len(pool)))
		return pool[len(pool)-1-idx%len(pool)]
	}
	for i := 0; i < nGates; i++ {
		kind := randKinds[rng.Intn(len(randKinds))]
		if kind == netlist.GateNot {
			pool = append(pool, b.gate(kind, pick()))
			continue
		}
		a, c := pick(), pick()
		for a == c {
			c = pick()
		}
		if rng.Intn(8) == 0 {
			d := pick()
			pool = append(pool, b.gate(kind, a, c, d))
		} else {
			pool = append(pool, b.gate(kind, a, c))
		}
	}
	// Outputs: the most recent signals (deep cones).
	for o := 0; o < nOut; o++ {
		b.output(fmt.Sprintf("y%d", o), pool[len(pool)-1-o])
	}
	return b.n
}
