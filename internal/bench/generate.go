package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"ecopatch/internal/aig"
	"ecopatch/internal/eco"
	"ecopatch/internal/netlist"
)

// Family selects the base circuit of a generated unit.
type Family int

// Base circuit families.
const (
	FamAdder Family = iota
	FamALU
	FamComparator
	FamParity
	FamRandom
	FamC17
	FamMultiplier
	FamShifter
	FamDecoder
)

func (f Family) String() string {
	switch f {
	case FamAdder:
		return "adder"
	case FamALU:
		return "alu"
	case FamComparator:
		return "cmp"
	case FamParity:
		return "parity"
	case FamRandom:
		return "random"
	case FamC17:
		return "c17"
	case FamMultiplier:
		return "mul"
	case FamShifter:
		return "shift"
	case FamDecoder:
		return "dec"
	}
	return "unknown"
}

// Config describes one generated ECO unit.
type Config struct {
	Name    string
	Seed    int64
	Family  Family
	Size    int // family-specific size knob (bits / gates)
	Targets int
	Profile WeightProfile
}

// Generate builds a feasible-by-construction ECO instance:
//   - the base circuit B provides the old implementation's logic;
//   - Targets internal wires are selected; in the implementation F
//     their readers are rewired to free t_k points (the old driver
//     cone is left in place, as in the contest units);
//   - in the specification S each selected wire is replaced by new
//     logic over signals outside the TFO of all selected wires, so
//     the patch t_k := g_k(·) always exists;
//   - weights follow the unit's profile.
func Generate(cfg Config) (*eco.Instance, error) {
	// Retry with derived seeds when the sampled change degenerates
	// (e.g. a constant patch already rectifies it); the final attempt
	// is returned regardless so Generate stays total.
	var inst *eco.Instance
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		c := cfg
		c.Seed = cfg.Seed + int64(attempt)*7919
		inst, err = generateOnce(c)
		if err != nil {
			return nil, err
		}
		if !trivialBySim(inst) {
			return inst, nil
		}
	}
	return inst, nil
}

func generateOnce(cfg Config) (*eco.Instance, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := buildBase(cfg, rng)
	// Synthesized netlists carry functionally redundant re-expressions
	// of internal signals; add some so that cost-aware support
	// selection has genuinely different-priced alternatives (and so
	// that CEGAR_min cuts have equivalence candidates).
	addAliases(base, rng, 2+base.NumGates()/12)
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("bench: base circuit invalid: %w", err)
	}

	wires := pickTargets(base, rng, cfg.Targets)
	if len(wires) < cfg.Targets {
		return nil, fmt.Errorf("bench: only %d/%d target candidates in %s", len(wires), cfg.Targets, base.Name)
	}

	forbidden := base.TransitiveFanout(wires)
	donors := donorSignals(base, forbidden, rng)
	if len(donors) < 2 {
		return nil, fmt.Errorf("bench: not enough donor signals for new spec logic")
	}

	impl := cloneNetlist(base)
	impl.Name = cfg.Name + "_F"
	spec := cloneNetlist(base)
	spec.Name = cfg.Name + "_S"

	for k, w := range wires {
		target := fmt.Sprintf("t_%d", k)
		rewireReaders(impl, w, target)
		// Real ECO changes are local: most of the time the new logic
		// reads signals from the neighbourhood of the old function
		// (its TFI), occasionally from anywhere in the circuit.
		dk := donors
		if rng.Intn(3) != 0 {
			if local := localDonors(base, w, forbidden); len(local) >= 2 {
				dk = local
			}
		}
		newSig := buildSpecLogic(spec, dk, rng, k)
		rewireReaders(spec, w, newSig)
	}

	weights := assignWeights(impl, rng, cfg.Profile)
	inst := &eco.Instance{
		Name:    cfg.Name,
		Impl:    impl,
		Spec:    spec,
		Weights: weights,
	}
	return inst, inst.Check()
}

func buildBase(cfg Config, rng *rand.Rand) *netlist.Netlist {
	switch cfg.Family {
	case FamAdder:
		return RippleAdder(cfg.Size)
	case FamALU:
		return ALU(cfg.Size)
	case FamComparator:
		return Comparator(cfg.Size)
	case FamParity:
		return ParityTree(cfg.Size)
	case FamC17:
		return C17()
	case FamMultiplier:
		return Multiplier(cfg.Size)
	case FamShifter:
		return BarrelShifter(cfg.Size)
	case FamDecoder:
		return Decoder(cfg.Size)
	default:
		nIn := 4 + cfg.Size/12
		nOut := 2 + cfg.Size/25
		return RandomDAG(rng, nIn, cfg.Size, nOut)
	}
}

// pickTargets selects internal wires with at least one reader,
// spread across the circuit.
func pickTargets(n *netlist.Netlist, rng *rand.Rand, k int) []string {
	readers := make(map[string]int)
	for _, g := range n.Gates {
		for _, in := range g.Ins {
			readers[in]++
		}
	}
	isOutput := make(map[string]bool)
	for _, o := range n.Outputs {
		isOutput[o] = true
	}
	isInput := make(map[string]bool)
	for _, i := range n.Inputs {
		isInput[i] = true
	}
	var cands []string
	for _, g := range n.Gates {
		w := g.Out
		if readers[w] > 0 && !isOutput[w] && !isInput[w] {
			cands = append(cands, w)
		}
	}
	sort.Strings(cands)
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if k > len(cands) {
		k = len(cands)
	}
	picked := cands[:k]
	sort.Strings(picked)
	return picked
}

// trivialBySim reports whether some constant target assignment
// already rectifies the implementation on a few hundred random
// simulation patterns — a cheap filter for degenerate units whose
// optimal patch is a constant (the real suite has none).
func trivialBySim(inst *eco.Instance) bool {
	implRes, err := netlist.ToAIG(inst.Impl)
	if err != nil {
		return false
	}
	specRes, err := netlist.ToAIG(inst.Spec)
	if err != nil {
		return false
	}
	nIn := len(inst.Impl.Inputs)
	k := implRes.G.NumPIs() - nIn
	var consts [][]bool
	if k <= 4 {
		for m := 0; m < 1<<uint(k); m++ {
			c := make([]bool, k)
			for i := range c {
				c[i] = m>>uint(i)&1 == 1
			}
			consts = append(consts, c)
		}
	} else {
		rng := rand.New(rand.NewSource(1))
		consts = append(consts, make([]bool, k))
		ones := make([]bool, k)
		for i := range ones {
			ones[i] = true
		}
		consts = append(consts, ones)
		for r := 0; r < 8; r++ {
			c := make([]bool, k)
			for i := range c {
				c[i] = rng.Intn(2) == 1
			}
			consts = append(consts, c)
		}
	}
	rng := rand.New(rand.NewSource(2))
	const rounds = 4 // 4 * 64 = 256 patterns
	type words struct{ x [][]uint64 }
	var xs words
	for r := 0; r < rounds; r++ {
		w := make([]uint64, nIn)
		for i := range w {
			w[i] = rng.Uint64()
		}
		xs.x = append(xs.x, w)
	}
	specWords := make([][]uint64, rounds)
	for r := 0; r < rounds; r++ {
		specWords[r] = specRes.G.SimWords(xs.x[r])
	}
	for _, c := range consts {
		match := true
	rounds:
		for r := 0; r < rounds; r++ {
			in := make([]uint64, implRes.G.NumPIs())
			copy(in, xs.x[r])
			for i := 0; i < k; i++ {
				if c[i] {
					in[nIn+i] = ^uint64(0)
				}
			}
			implW := implRes.G.SimWords(in)
			for o := 0; o < implRes.G.NumPOs(); o++ {
				a := aigWord(implW, implRes.G, o)
				b := aigWord(specWords[r], specRes.G, o)
				if a != b {
					match = false
					break rounds
				}
			}
		}
		if match {
			return true
		}
	}
	return false
}

func aigWord(words []uint64, g *aig.AIG, po int) uint64 {
	return aig.WordOf(words, g.PO(po))
}

// isAlias reports whether a signal was introduced by addAliases.
// Alias wires are divisor candidates but are kept out of the donor
// pools: a spec change built over an alias of signal w degenerates
// (e.g. alias XOR w is constant false), producing trivial units.
func isAlias(s string) bool {
	return len(s) > 5 && s[:5] == "alias"
}

// addAliases appends gates recomputing existing signals through
// redundant identities (absorption, double-XOR). The aliases are
// functionally equal to their source but structurally distinct, so
// they survive AIG hashing as separate divisor candidates.
func addAliases(n *netlist.Netlist, rng *rand.Rand, count int) {
	var driven []string
	for _, g := range n.Gates {
		driven = append(driven, g.Out)
	}
	if len(driven) == 0 {
		return
	}
	pool := append(append([]string(nil), n.Inputs...), driven...)
	next := 0
	fresh := func() string {
		next++
		w := fmt.Sprintf("alias%d", next)
		n.Wires = append(n.Wires, w)
		return w
	}
	for i := 0; i < count; i++ {
		w := driven[rng.Intn(len(driven))]
		r := pool[rng.Intn(len(pool))]
		if r == w {
			continue
		}
		t1 := fresh()
		out := fresh()
		switch rng.Intn(3) {
		case 0: // absorption: w | (w & r) == w
			n.Gates = append(n.Gates,
				netlist.Gate{Kind: netlist.GateAnd, Out: t1, Ins: []string{w, r}},
				netlist.Gate{Kind: netlist.GateOr, Out: out, Ins: []string{w, t1}})
		case 1: // absorption: w & (w | r) == w
			n.Gates = append(n.Gates,
				netlist.Gate{Kind: netlist.GateOr, Out: t1, Ins: []string{w, r}},
				netlist.Gate{Kind: netlist.GateAnd, Out: out, Ins: []string{w, t1}})
		default: // double xor: (w ^ r) ^ r == w
			n.Gates = append(n.Gates,
				netlist.Gate{Kind: netlist.GateXor, Out: t1, Ins: []string{w, r}},
				netlist.Gate{Kind: netlist.GateXor, Out: out, Ins: []string{t1, r}})
		}
	}
}

// localDonors returns the usable signals in the transitive fanin of
// the target wire's old driver — the neighbourhood a localized spec
// change would read.
func localDonors(n *netlist.Netlist, w string, forbidden map[string]bool) []string {
	tfi := n.TransitiveFanin([]string{w})
	var out []string
	for s := range tfi {
		if s != w && !forbidden[s] && !isAlias(s) {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// donorSignals returns signals usable as inputs of the new spec
// logic: anything outside the forbidden TFO (inputs included).
func donorSignals(n *netlist.Netlist, forbidden map[string]bool, rng *rand.Rand) []string {
	var donors []string
	for _, in := range n.Inputs {
		if !forbidden[in] {
			donors = append(donors, in)
		}
	}
	for _, g := range n.Gates {
		if !forbidden[g.Out] && !isAlias(g.Out) {
			donors = append(donors, g.Out)
		}
	}
	sort.Strings(donors)
	rng.Shuffle(len(donors), func(i, j int) { donors[i], donors[j] = donors[j], donors[i] })
	return donors
}

// rewireReaders makes every gate that reads old read newSig instead.
func rewireReaders(n *netlist.Netlist, old, newSig string) {
	for gi := range n.Gates {
		for ii, in := range n.Gates[gi].Ins {
			if in == old {
				n.Gates[gi].Ins[ii] = newSig
			}
		}
	}
}

// buildSpecLogic appends a small random cone over donor signals to
// the spec and returns its root signal. Depth 1–3, fanin 2.
func buildSpecLogic(spec *netlist.Netlist, donors []string, rng *rand.Rand, k int) string {
	kinds := []netlist.GateKind{
		netlist.GateAnd, netlist.GateOr, netlist.GateXor,
		netlist.GateNand, netlist.GateNor, netlist.GateXnor,
	}
	fresh := func(i int) string {
		w := fmt.Sprintf("eco%d_%d", k, i)
		spec.Wires = append(spec.Wires, w)
		return w
	}
	pick := func() string { return donors[rng.Intn(len(donors))] }
	depth := 1 + rng.Intn(3)
	cur := pick()
	for d := 0; d < depth; d++ {
		other := pick()
		for other == cur {
			other = pick()
		}
		w := fresh(d)
		spec.Gates = append(spec.Gates, netlist.Gate{
			Kind: kinds[rng.Intn(len(kinds))],
			Out:  w,
			Ins:  []string{cur, other},
		})
		cur = w
	}
	if rng.Intn(3) == 0 {
		w := fresh(depth)
		spec.Gates = append(spec.Gates, netlist.Gate{Kind: netlist.GateNot, Out: w, Ins: []string{cur}})
		cur = w
	}
	return cur
}

func cloneNetlist(n *netlist.Netlist) *netlist.Netlist {
	out := &netlist.Netlist{
		Name:    n.Name,
		Inputs:  append([]string(nil), n.Inputs...),
		Outputs: append([]string(nil), n.Outputs...),
		Wires:   append([]string(nil), n.Wires...),
		Gates:   make([]netlist.Gate, len(n.Gates)),
	}
	for i, g := range n.Gates {
		out.Gates[i] = netlist.Gate{
			Kind: g.Kind,
			Name: g.Name,
			Out:  g.Out,
			Ins:  append([]string(nil), g.Ins...),
		}
	}
	return out
}
