package bench

import (
	"math"
	"math/rand"

	"ecopatch/internal/netlist"
)

// WeightProfile is one of the contest's eight weight distributions
// (§4.1 of the paper).
type WeightProfile int

// Weight profiles T1–T8.
const (
	// T1: distance-aware A — weights grow toward the primary inputs.
	T1 WeightProfile = iota + 1
	// T2: distance-aware B — weights grow away from the inputs.
	T2
	// T3: path-aware — signals on a few input-to-output paths cost more.
	T3
	// T4: locality-aware — signals in a region of the circuit cost more.
	T4
	// T5: T1 composed with T3.
	T5
	// T6: T2 composed with T3.
	T6
	// T7: T1 composed with T4.
	T7
	// T8: highly mixed, undulating distribution.
	T8
)

func (p WeightProfile) String() string {
	names := [...]string{"", "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8"}
	if int(p) < len(names) {
		return names[p]
	}
	return "T?"
}

// signalLevels computes the structural depth of every signal of a
// topologically ordered netlist (inputs and targets at level 0).
func signalLevels(n *netlist.Netlist) map[string]int {
	lv := make(map[string]int)
	for _, in := range n.Inputs {
		lv[in] = 0
	}
	for _, g := range n.Gates {
		max := 0
		for _, in := range g.Ins {
			if l := lv[in]; l > max {
				max = l
			}
		}
		lv[g.Out] = max + 1
	}
	return lv
}

// assignWeights builds the weight table of the implementation under
// the given profile.
func assignWeights(impl *netlist.Netlist, rng *rand.Rand, p WeightProfile) *netlist.Weights {
	lv := signalLevels(impl)
	maxLv := 1
	for _, l := range lv {
		if l > maxLv {
			maxLv = l
		}
	}
	w := netlist.NewWeights()

	// Base components. Minimum costs stay well above zero so that a
	// low-cost support is also a small support, as in the contest
	// weight files. The contest's distance gradients apply only "in
	// some parts of the circuits" (§4.1), so the gradients below are
	// confined to a marked region; elsewhere costs are moderate noise.
	distA := func(l int) int { return 4 + 6*(maxLv-l) } // larger near PIs
	distB := func(l int) int { return 4 + 6*l }         // larger near POs
	flat := func(int) int { return 5 + rng.Intn(12) }   // mild noise
	undulate := func(l int) int { return 6 + int(10*(1+math.Sin(float64(l)))) + rng.Intn(13) }

	// gradientMark: the circuit parts where distance-aware profiles
	// apply (roughly half the gates, in a few contiguous windows).
	markRegion := func(frac int) map[string]bool {
		m := make(map[string]bool)
		if len(impl.Gates) == 0 {
			return m
		}
		span := 1 + len(impl.Gates)/frac
		for r := 0; r < 2; r++ {
			start := rng.Intn(len(impl.Gates))
			for i := start; i < start+span && i < len(impl.Gates); i++ {
				m[impl.Gates[i].Out] = true
			}
		}
		// Inputs participate in the marked parts too (they are the
		// signals closest to the PIs).
		for _, in := range impl.Inputs {
			if rng.Intn(2) == 0 {
				m[in] = true
			}
		}
		return m
	}
	gradientMark := make(map[string]bool)
	if p == T1 || p == T2 || p == T5 || p == T6 || p == T7 {
		gradientMark = markRegion(3)
	}
	// Path set for T3/T5/T6: mark the TFI cone of a couple of outputs.
	pathMark := make(map[string]bool)
	if p == T3 || p == T5 || p == T6 {
		outs := append([]string(nil), impl.Outputs...)
		rng.Shuffle(len(outs), func(i, j int) { outs[i], outs[j] = outs[j], outs[i] })
		k := 1 + len(outs)/8
		pathMark = impl.TransitiveFanin(outs[:k])
	}
	// Locality region for T4/T7: a random window of consecutive gates.
	regionMark := make(map[string]bool)
	if p == T4 || p == T7 {
		regionMark = markRegion(4)
	}

	cost := func(name string) int {
		l := lv[name]
		grad := func(f func(int) int) int {
			if gradientMark[name] {
				return f(l)
			}
			return flat(l)
		}
		switch p {
		case T1:
			return grad(distA)
		case T2:
			return grad(distB)
		case T3:
			c := flat(l)
			if pathMark[name] {
				c *= 10
			}
			return c
		case T4:
			c := flat(l)
			if regionMark[name] {
				c *= 10
			}
			return c
		case T5:
			c := grad(distA)
			if pathMark[name] {
				c *= 5
			}
			return c
		case T6:
			c := grad(distB)
			if pathMark[name] {
				c *= 5
			}
			return c
		case T7:
			c := grad(distA)
			if regionMark[name] {
				c *= 5
			}
			return c
		default: // T8
			return undulate(l)
		}
	}

	for _, in := range impl.Inputs {
		w.Set(in, cost(in))
	}
	for _, g := range impl.Gates {
		w.Set(g.Out, cost(g.Out))
	}
	return w
}
