package bench

import "fmt"

// Suite returns the 20-unit replica of the contest benchmark set.
// Target counts follow Table 1 of the paper (1,1,1,1,2,2,1,1,4,2,8,
// 1,1,12,1,2,8,1,4,4); sizes are scaled by the given factor
// (scale 1 keeps the suite laptop-fast; larger scales approach the
// contest's gate counts).
//
// StructuralUnits lists the units run with a tiny SAT budget in the
// Table-1 harness, standing in for the four contest units
// (6, 10, 11, 19) that the paper reports as solved by the structural
// method after SAT timeouts.
func Suite(scale int) []Config {
	if scale < 1 {
		scale = 1
	}
	s := func(base int) int { return base * scale }
	return []Config{
		{Name: "unit1", Seed: 101, Family: FamC17, Size: 0, Targets: 1, Profile: T1},
		{Name: "unit2", Seed: 102, Family: FamRandom, Size: s(220), Targets: 1, Profile: T2},
		{Name: "unit3", Seed: 103, Family: FamRandom, Size: s(400), Targets: 1, Profile: T3},
		{Name: "unit4", Seed: 104, Family: FamAdder, Size: 4 * scale, Targets: 1, Profile: T4},
		{Name: "unit5", Seed: 105, Family: FamALU, Size: 8 * scale, Targets: 2, Profile: T5},
		{Name: "unit6", Seed: 106, Family: FamRandom, Size: s(500), Targets: 2, Profile: T6},
		{Name: "unit7", Seed: 107, Family: FamRandom, Size: s(300), Targets: 1, Profile: T7},
		{Name: "unit8", Seed: 108, Family: FamComparator, Size: 12 * scale, Targets: 1, Profile: T8},
		{Name: "unit9", Seed: 109, Family: FamRandom, Size: s(450), Targets: 4, Profile: T1},
		{Name: "unit10", Seed: 110, Family: FamParity, Size: 16 * scale, Targets: 2, Profile: T2},
		{Name: "unit11", Seed: 111, Family: FamRandom, Size: s(260), Targets: 8, Profile: T3},
		{Name: "unit12", Seed: 112, Family: FamRandom, Size: s(600), Targets: 1, Profile: T4},
		{Name: "unit13", Seed: 113, Family: FamRandom, Size: s(120), Targets: 1, Profile: T5},
		{Name: "unit14", Seed: 114, Family: FamRandom, Size: s(240), Targets: 12, Profile: T6},
		{Name: "unit15", Seed: 115, Family: FamRandom, Size: s(280), Targets: 1, Profile: T7},
		{Name: "unit16", Seed: 116, Family: FamALU, Size: 10 * scale, Targets: 2, Profile: T8},
		{Name: "unit17", Seed: 117, Family: FamRandom, Size: s(320), Targets: 8, Profile: T1},
		{Name: "unit18", Seed: 118, Family: FamRandom, Size: s(520), Targets: 1, Profile: T2},
		{Name: "unit19", Seed: 119, Family: FamRandom, Size: s(480), Targets: 4, Profile: T3},
		{Name: "unit20", Seed: 120, Family: FamAdder, Size: 16 * scale, Targets: 4, Profile: T4},
	}
}

// StructuralUnits mirrors the paper's units solved by the structural
// method (Table 1 rows unit6, unit10, unit11, unit19): the harness
// runs them with a tiny SAT budget to trigger the §3.6 fallback.
var StructuralUnits = map[string]bool{
	"unit6":  true,
	"unit10": true,
	"unit11": true,
	"unit19": true,
}

// ConfigByName finds a unit config in the suite.
func ConfigByName(scale int, name string) (Config, error) {
	for _, c := range Suite(scale) {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("bench: unknown unit %q", name)
}
