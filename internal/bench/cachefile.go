package bench

import (
	"ecopatch/internal/cache"
	"ecopatch/internal/persist"
)

// LoadCacheFile warms c's solve cache from a snapshot file written by
// SaveCacheFile (ecobench -cache-file). A missing file is not an
// error — the run simply starts cold. It returns how many entries
// were restored and how many records were skipped (corrupt frames or
// entries evicted by the cache bound); every restored entry is
// re-screened word for word on lookup, so a stale or foreign file can
// slow a run down but never change its verdicts.
func LoadCacheFile(path string, c *cache.Cache) (restored, skipped int, err error) {
	return persist.LoadSolveCacheFile(path, c.Solve)
}

// SaveCacheFile atomically snapshots c's solve cache to path so the
// next ecobench run can start warm. The window cache is not saved:
// its values are in-memory AIG cones with no stable encoding, and
// they rebuild cheaply from the warmed solve results.
func SaveCacheFile(path string, c *cache.Cache) (int, error) {
	return persist.SaveSolveCacheFile(path, c.Solve)
}
