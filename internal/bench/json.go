package bench

import (
	"encoding/json"
	"io"
	"time"

	"ecopatch/internal/eco"
)

// JSONReport is the machine-readable form of a Table-1 sweep, written
// by `ecobench -json`. Schema identifies the layout so downstream
// tooling can reject files it does not understand.
type JSONReport struct {
	Schema     string   `json:"schema"` // "ecobench/table1@v1"
	Experiment string   `json:"experiment"`
	Scale      int      `json:"scale"`
	Modes      []string `json:"modes"`
	Jobs       int      `json:"jobs"`
	// Parallelism is the per-cell intra-solve thread count (additive
	// field; absent in pre-parallelism reports means 1).
	Parallelism int     `json:"parallelism,omitempty"`
	TimeoutSec  float64 `json:"timeout_sec,omitempty"`
	// CacheEntries and WarmSpeedup are additive cache-run fields:
	// the shared-cache size of the sweep (0 = no cache) and, for
	// warm-vs-cold runs, the geomean cold/warm wall-clock ratio.
	CacheEntries int     `json:"cache_entries,omitempty"`
	WarmSpeedup  float64 `json:"warm_speedup,omitempty"`
	// Preprocess records whether the sweep ran with CNF preprocessing
	// (additive field; absent in pre-prep reports means off).
	Preprocess bool `json:"preprocess,omitempty"`
	// Sim records whether the sweep ran with the bit-parallel
	// simulation layer (additive field; absent means off).
	Sim bool `json:"sim,omitempty"`
	// Rewrite records whether the sweep ran with DAG-aware miter
	// rewriting (additive field; absent means off).
	Rewrite bool      `json:"rewrite,omitempty"`
	Rows    []JSONRow `json:"rows"`
}

// JSONRow is one benchmark unit; Results is keyed by mode name.
type JSONRow struct {
	Unit      string              `json:"unit"`
	PIs       int                 `json:"pis"`
	POs       int                 `json:"pos"`
	GatesImpl int                 `json:"gates_impl"`
	GatesSpec int                 `json:"gates_spec"`
	Targets   int                 `json:"targets"`
	Results   map[string]JSONCell `json:"results"`
}

// JSONCell is one (unit, mode) result with per-stage timings and
// aggregated SAT-kernel counters. The counter fields are additive
// extensions; the schema stays ecobench/table1@v1.
type JSONCell struct {
	Cost       int     `json:"cost"`
	PatchGates int     `json:"patch_gates"`
	Seconds    float64 `json:"seconds"`
	SupportSec float64 `json:"support_sec"`
	PatchSec   float64 `json:"patch_sec"`
	VerifySec  float64 `json:"verify_sec"`
	Verified   bool    `json:"verified"`
	Feasible   bool    `json:"feasible"`
	Structural int     `json:"structural"`
	TimedOut   bool    `json:"timed_out,omitempty"`

	SATCalls     int64 `json:"sat_calls"`
	Conflicts    int64 `json:"conflicts"`
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Restarts     int64 `json:"restarts"`
	Learnts      int64 `json:"learnts"`
	LearntEvict  int64 `json:"learnt_evicted"`

	// Additive portfolio counters (present only when the cell ran
	// with intra-solve parallelism; the schema stays table1@v1).
	PortfolioRaces int64            `json:"portfolio_races,omitempty"`
	PortfolioWins  map[string]int64 `json:"portfolio_wins,omitempty"`
	SharedOut      int64            `json:"sat_shared_out,omitempty"`
	SharedIn       int64            `json:"sat_shared_in,omitempty"`

	// Additive cache counters (present only when the cell ran with a
	// solve/window cache; the schema stays table1@v1). ColdSeconds is
	// set on warm-pass cells to the matching cold cell's wall clock.
	CacheHits       int64   `json:"cache_hits,omitempty"`
	CacheMisses     int64   `json:"cache_misses,omitempty"`
	CacheCollisions int64   `json:"cache_collisions,omitempty"`
	ColdSeconds     float64 `json:"cold_seconds,omitempty"`

	// Additive preprocessing counters (present only when the cell ran
	// with -prep; the schema stays table1@v1).
	PrepVarsEliminated   int64   `json:"prep_vars_eliminated,omitempty"`
	PrepClausesSubsumed  int64   `json:"prep_clauses_subsumed,omitempty"`
	PrepLitsStrengthened int64   `json:"prep_lits_strengthened,omitempty"`
	PrepSeconds          float64 `json:"prep_seconds,omitempty"`

	// Additive simulation-layer counters (present only when the cell
	// ran with -sim; the schema stays table1@v1).
	SimElided   int64 `json:"sim_elided,omitempty"`
	SimPruned   int64 `json:"sim_pruned,omitempty"`
	SimPatterns int64 `json:"sim_patterns,omitempty"`

	// Additive rewriting counters (present only when the cell ran with
	// -rewrite; the schema stays table1@v1).
	RewriteNodesBefore int64   `json:"rewrite_nodes_before,omitempty"`
	RewriteNodesAfter  int64   `json:"rewrite_nodes_after,omitempty"`
	RewriteSec         float64 `json:"rewrite_sec,omitempty"`
}

// cellFromAlgo maps one sweep cell into its JSON form.
func cellFromAlgo(a AlgoResult) JSONCell {
	return JSONCell{
		Cost:       a.Cost,
		PatchGates: a.PatchGates,
		Seconds:    a.Seconds,
		SupportSec: a.SupportSec,
		PatchSec:   a.PatchSec,
		VerifySec:  a.VerifySec,
		Verified:   a.Verified,
		Feasible:   a.Feasible,
		Structural: a.Structural,
		TimedOut:   a.TimedOut,

		SATCalls:     a.SATCalls,
		Conflicts:    a.Conflicts,
		Decisions:    a.Decisions,
		Propagations: a.Propagations,
		Restarts:     a.Restarts,
		Learnts:      a.Learnts,
		LearntEvict:  a.LearntEvict,

		PortfolioRaces: a.PortfolioRaces,
		PortfolioWins:  a.PortfolioWins,
		SharedOut:      a.SharedOut,
		SharedIn:       a.SharedIn,

		CacheHits:       a.CacheHits,
		CacheMisses:     a.CacheMisses,
		CacheCollisions: a.CacheCollisions,

		PrepVarsEliminated:   a.PrepVarsEliminated,
		PrepClausesSubsumed:  a.PrepClausesSubsumed,
		PrepLitsStrengthened: a.PrepLitsStrengthened,
		PrepSeconds:          a.PrepSeconds,

		SimElided:   a.SimElided,
		SimPruned:   a.SimPruned,
		SimPatterns: a.SimPatterns,

		RewriteNodesBefore: a.RewriteNodesBefore,
		RewriteNodesAfter:  a.RewriteNodesAfter,
		RewriteSec:         a.RewriteSec,
	}
}

// CellFromResult converts one engine result straight into the
// table1@v1 cell form. The Table-1 sweep and the ecod job-result
// writer both go through this mapping, so a job result retrieved over
// HTTP and a benchmark cell written by ecobench -json stay
// field-compatible for downstream trend tooling.
func CellFromResult(res *eco.Result) JSONCell {
	return cellFromAlgo(AlgoFromResult(res))
}

// NewJSONReport converts a finished sweep into the report form.
func NewJSONReport(opts RunOptions, modes []string, rows []Table1Row) JSONReport {
	rep := JSONReport{
		Schema:     "ecobench/table1@v1",
		Experiment: "table1",
		Scale:      opts.Scale,
		Modes:      modes,
		Jobs:       opts.Jobs,
		Rows:       make([]JSONRow, 0, len(rows)),
	}
	if rep.Jobs < 1 {
		rep.Jobs = 1
	}
	rep.Parallelism = opts.Parallelism
	if rep.Parallelism < 1 {
		rep.Parallelism = 1
	}
	rep.CacheEntries = opts.CacheEntries
	rep.Preprocess = opts.Preprocess
	rep.Sim = opts.Sim
	rep.Rewrite = opts.Rewrite
	if opts.Timeout > 0 {
		rep.TimeoutSec = float64(opts.Timeout) / float64(time.Second)
	}
	for _, r := range rows {
		jr := JSONRow{
			Unit:      r.Unit,
			PIs:       r.PIs,
			POs:       r.POs,
			GatesImpl: r.GatesF,
			GatesSpec: r.GatesS,
			Targets:   r.Targets,
			Results:   make(map[string]JSONCell, len(r.Results)),
		}
		for _, m := range modes {
			a, ok := r.Results[m]
			if !ok {
				continue
			}
			jr.Results[m] = cellFromAlgo(a)
		}
		rep.Rows = append(rep.Rows, jr)
	}
	return rep
}

// WriteJSON emits the report as indented JSON.
func WriteJSON(w io.Writer, rep JSONReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
