package bench

import (
	"fmt"
	"io"
	"math"

	"ecopatch/internal/cache"
)

// WarmRun is the outcome of a warm-vs-cold cache benchmark: the same
// sweep executed twice against one shared solve/window cache. The
// cold pass populates it; the warm pass reuses it. Speedup is the
// geomean of per-cell cold/warm wall-clock ratios.
type WarmRun struct {
	Cold    []Table1Row
	Warm    []Table1Row
	Speedup float64
}

// RunTable1Warm runs the sweep twice with one shared cache
// (experiment E12). Both passes use identical options, so at
// Parallelism=1 any verdict or cost difference between them is a
// cache-correctness bug, not noise — callers should compare the
// passes cell by cell.
func RunTable1Warm(opts RunOptions, w io.Writer) (*WarmRun, error) {
	if opts.Cache == nil {
		entries := opts.CacheEntries
		if entries <= 0 {
			entries = 4096
		}
		opts.Cache = cache.New(entries)
	}
	if w != nil {
		fmt.Fprintln(w, "== cold pass (empty cache) ==")
	}
	cold, err := RunTable1With(opts, w)
	if err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintln(w, "== warm pass (reusing cache) ==")
	}
	warm, err := RunTable1With(opts, w)
	if err != nil {
		return nil, err
	}
	run := &WarmRun{Cold: cold, Warm: warm, Speedup: warmSpeedup(cold, warm)}
	if w != nil {
		fmt.Fprintf(w, "warm-cache geomean speedup: %.2fx\n", run.Speedup)
	}
	return run, nil
}

// warmSpeedup is the geometric mean over all (unit, mode) cells of
// cold/warm seconds. Cells missing from either pass are skipped;
// wall clocks are clamped to a small epsilon so instant cells cannot
// blow the ratio up to infinity.
func warmSpeedup(cold, warm []Table1Row) float64 {
	const eps = 1e-4
	byUnit := make(map[string]Table1Row, len(warm))
	for _, r := range warm {
		byUnit[r.Unit] = r
	}
	sum, n := 0.0, 0
	for _, cr := range cold {
		wr, ok := byUnit[cr.Unit]
		if !ok {
			continue
		}
		for mode, ca := range cr.Results {
			wa, ok := wr.Results[mode]
			if !ok {
				continue
			}
			cs, ws := ca.Seconds, wa.Seconds
			if cs < eps {
				cs = eps
			}
			if ws < eps {
				ws = eps
			}
			sum += math.Log(cs / ws)
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return math.Exp(sum / float64(n))
}

// NewWarmJSONReport emits the warm pass as a table1@v1 report,
// annotating every warm cell with its cold counterpart's wall clock
// (cold_seconds) and the run-level geomean speedup — all additive
// fields, so cache-unaware tooling reads the file as a plain sweep.
func NewWarmJSONReport(opts RunOptions, modes []string, run *WarmRun) JSONReport {
	rep := NewJSONReport(opts, modes, run.Warm)
	rep.Experiment = "table1-warm-cache"
	rep.WarmSpeedup = run.Speedup
	coldByUnit := make(map[string]Table1Row, len(run.Cold))
	for _, r := range run.Cold {
		coldByUnit[r.Unit] = r
	}
	for i := range rep.Rows {
		cr, ok := coldByUnit[rep.Rows[i].Unit]
		if !ok {
			continue
		}
		for mode, cell := range rep.Rows[i].Results {
			if ca, ok := cr.Results[mode]; ok {
				cell.ColdSeconds = ca.Seconds
				rep.Rows[i].Results[mode] = cell
			}
		}
	}
	return rep
}
