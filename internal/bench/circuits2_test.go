package bench

import (
	"testing"

	"ecopatch/internal/netlist"
)

func TestMultiplierCorrect(t *testing.T) {
	const bits = 3
	n := Multiplier(bits)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := netlist.ToAIG(n)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 1<<bits; a++ {
		for b := 0; b < 1<<bits; b++ {
			in := make([]bool, 2*bits)
			for i := 0; i < bits; i++ {
				in[i] = a>>uint(i)&1 == 1
				in[bits+i] = b>>uint(i)&1 == 1
			}
			out := res.G.Eval(in)
			want := a * b
			for j := 0; j < 2*bits; j++ {
				if out[j] != (want>>uint(j)&1 == 1) {
					t.Fatalf("%d*%d: bit %d wrong (out=%v want=%d)", a, b, j, out, want)
				}
			}
		}
	}
}

func TestBarrelShifterCorrect(t *testing.T) {
	const n = 8
	net := BarrelShifter(n)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := netlist.ToAIG(net)
	if err != nil {
		t.Fatal(err)
	}
	for data := 0; data < 256; data += 37 {
		for sh := 0; sh < n; sh++ {
			in := make([]bool, n+3)
			for i := 0; i < n; i++ {
				in[i] = data>>uint(i)&1 == 1
			}
			for i := 0; i < 3; i++ {
				in[n+i] = sh>>uint(i)&1 == 1
			}
			out := res.G.Eval(in)
			want := (data << uint(sh)) & 0xff
			for i := 0; i < n; i++ {
				if out[i] != (want>>uint(i)&1 == 1) {
					t.Fatalf("data=%08b sh=%d: bit %d wrong", data, sh, i)
				}
			}
		}
	}
}

func TestDecoderCorrect(t *testing.T) {
	const n = 3
	net := Decoder(n)
	res, err := netlist.ToAIG(net)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 1<<n; m++ {
		for _, en := range []bool{false, true} {
			in := make([]bool, n+1)
			for i := 0; i < n; i++ {
				in[i] = m>>uint(i)&1 == 1
			}
			in[n] = en
			out := res.G.Eval(in)
			for y := 0; y < 1<<n; y++ {
				want := en && y == m
				if out[y] != want {
					t.Fatalf("sel=%d en=%v: output %d = %v", m, en, y, out[y])
				}
			}
		}
	}
}

func TestNewFamiliesMakeSolvableInstances(t *testing.T) {
	for i, base := range []*netlist.Netlist{Multiplier(3), BarrelShifter(8), Decoder(3)} {
		// Route the prebuilt netlist through the ECO derivation by
		// hand: reuse Generate's machinery via a random-family config
		// is not possible, so exercise pickTargets/rewire directly.
		if err := base.Validate(); err != nil {
			t.Fatalf("family %d: %v", i, err)
		}
		if _, err := netlist.ToAIG(base); err != nil {
			t.Fatalf("family %d: %v", i, err)
		}
	}
}
