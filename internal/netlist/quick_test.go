package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecopatch/internal/aig"
)

// randomNetlist builds a valid random netlist for property tests.
func randomNetlist(rng *rand.Rand) *Netlist {
	nIn := 2 + rng.Intn(4)
	n := &Netlist{Name: "q"}
	pool := []string{}
	for i := 0; i < nIn; i++ {
		nm := "i" + string(rune('a'+i))
		n.Inputs = append(n.Inputs, nm)
		pool = append(pool, nm)
	}
	kinds := []GateKind{GateAnd, GateOr, GateXor, GateNand, GateNor, GateXnor}
	for i := 0; i < 2+rng.Intn(12); i++ {
		w := "w" + string(rune('a'+i))
		n.Wires = append(n.Wires, w)
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		if rng.Intn(6) == 0 {
			n.Gates = append(n.Gates, Gate{Kind: GateNot, Out: w, Ins: []string{a}})
		} else {
			n.Gates = append(n.Gates, Gate{Kind: kinds[rng.Intn(len(kinds))], Out: w, Ins: []string{a, b}})
		}
		pool = append(pool, w)
	}
	n.Outputs = append(n.Outputs, "y")
	n.Gates = append(n.Gates, Gate{Kind: GateBuf, Out: "y", Ins: []string{pool[len(pool)-1]}})
	return n
}

// TestQuickWriteParseSemantics: writing and re-parsing any valid
// netlist preserves its Boolean function.
func TestQuickWriteParseSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1 := randomNetlist(rng)
		if n1.Validate() != nil {
			return true
		}
		n2, err := ParseString(n1.String())
		if err != nil {
			return false
		}
		r1, err := ToAIG(n1)
		if err != nil {
			return false
		}
		r2, err := ToAIG(n2)
		if err != nil {
			return false
		}
		for trial := 0; trial < 40; trial++ {
			in := make([]bool, r1.G.NumPIs())
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			o1, o2 := r1.G.Eval(in), r2.G.Eval(in)
			for i := range o1 {
				if o1[i] != o2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFromAIGSemantics: converting any AIG to a netlist and back
// preserves its function.
func TestQuickFromAIGSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := aig.New()
		var pool []aig.Lit
		nPI := 2 + rng.Intn(4)
		for i := 0; i < nPI; i++ {
			pool = append(pool, g.AddPI("x"+string(rune('a'+i))))
		}
		for i := 0; i < 2+rng.Intn(20); i++ {
			a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			pool = append(pool, g.And(a, b))
		}
		g.AddPO("y", pool[len(pool)-1].XorCompl(rng.Intn(2) == 1))
		nl := FromAIG(g, "rt")
		back, err := ToAIG(nl)
		if err != nil {
			return false
		}
		for trial := 0; trial < 40; trial++ {
			in := make([]bool, nPI)
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			if g.Eval(in)[0] != back.G.Eval(in)[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
