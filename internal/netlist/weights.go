package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Weights maps signal names of the old implementation to their
// resource cost. Signals absent from the map default to DefaultWeight.
type Weights struct {
	Costs   map[string]int
	Default int
}

// DefaultWeight is the cost assumed for signals not listed in the
// weight file (the contest files list every signal, so this is a
// safety net).
const DefaultWeight = 1

// NewWeights returns an empty weight table.
func NewWeights() *Weights {
	return &Weights{Costs: make(map[string]int), Default: DefaultWeight}
}

// Cost returns the cost of a signal.
func (w *Weights) Cost(signal string) int {
	if c, ok := w.Costs[signal]; ok {
		return c
	}
	return w.Default
}

// Set assigns a cost to a signal.
func (w *Weights) Set(signal string, cost int) { w.Costs[signal] = cost }

// ParseWeights reads "<signal> <cost>" lines. Blank lines and lines
// starting with '#' or '//' are ignored.
func ParseWeights(r io.Reader) (*Weights, error) {
	w := NewWeights()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("weights: line %d: expected '<signal> <cost>', got %q", lineNo, line)
		}
		cost, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("weights: line %d: bad cost %q: %w", lineNo, fields[1], err)
		}
		if cost < 0 {
			return nil, fmt.Errorf("weights: line %d: negative cost %d", lineNo, cost)
		}
		w.Costs[fields[0]] = cost
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("weights: %w", err)
	}
	return w, nil
}

// WriteWeights emits the weight table sorted by signal name.
func WriteWeights(out io.Writer, w *Weights) error {
	names := make([]string, 0, len(w.Costs))
	for n := range w.Costs {
		names = append(names, n)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(out)
	for _, n := range names {
		fmt.Fprintf(bw, "%s %d\n", n, w.Costs[n])
	}
	return bw.Flush()
}
