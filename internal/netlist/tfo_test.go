package netlist

import "testing"

func TestTransitiveFanout(t *testing.T) {
	n, err := ParseString(`
module m (a, b, f, g2);
input a, b;
output f, g2;
wire w1, w2;
and (w1, a, b);
or  (w2, w1, b);
buf (f, w2);
not (g2, b);
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	tfo := n.TransitiveFanout([]string{"w1"})
	for _, want := range []string{"w1", "w2", "f"} {
		if !tfo[want] {
			t.Errorf("TFO missing %q", want)
		}
	}
	for _, not := range []string{"a", "b", "g2"} {
		if tfo[not] {
			t.Errorf("TFO wrongly contains %q", not)
		}
	}
	// From an input: everything reading it transitively.
	tfoB := n.TransitiveFanout([]string{"b"})
	for _, want := range []string{"b", "w1", "w2", "f", "g2"} {
		if !tfoB[want] {
			t.Errorf("TFO(b) missing %q", want)
		}
	}
}

func TestTransitiveFanin(t *testing.T) {
	n, err := ParseString(`
module m (a, b, c, f, g2);
input a, b, c;
output f, g2;
wire w1;
and (w1, a, b);
buf (f, w1);
not (g2, c);
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	tfi := n.TransitiveFanin([]string{"f"})
	for _, want := range []string{"f", "w1", "a", "b"} {
		if !tfi[want] {
			t.Errorf("TFI missing %q", want)
		}
	}
	if tfi["c"] || tfi["g2"] {
		t.Error("TFI leaked into unrelated cone")
	}
}
