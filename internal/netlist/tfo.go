package netlist

// TransitiveFanout returns the set of signals in the transitive
// fanout of the given start signals (the starts themselves included).
// Used by the ECO engine's structural pruning (§3.3): divisor
// candidates must lie outside the TFO of the targets.
func (n *Netlist) TransitiveFanout(starts []string) map[string]bool {
	// readers[s] = gates that read signal s.
	readers := make(map[string][]int)
	for i, g := range n.Gates {
		for _, in := range g.Ins {
			readers[in] = append(readers[in], i)
		}
	}
	tfo := make(map[string]bool)
	var stack []string
	for _, s := range starts {
		if !tfo[s] {
			tfo[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, gi := range readers[s] {
			out := n.Gates[gi].Out
			if !tfo[out] {
				tfo[out] = true
				stack = append(stack, out)
			}
		}
	}
	return tfo
}

// TransitiveFanin returns the set of signals in the transitive fanin
// of the given start signals (the starts themselves included).
func (n *Netlist) TransitiveFanin(starts []string) map[string]bool {
	driver := make(map[string]int)
	for i, g := range n.Gates {
		driver[g.Out] = i
	}
	tfi := make(map[string]bool)
	var stack []string
	for _, s := range starts {
		if !tfi[s] {
			tfi[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		gi, ok := driver[s]
		if !ok {
			continue // PI, target or constant
		}
		for _, in := range n.Gates[gi].Ins {
			if !IsConstToken(in) && !tfi[in] {
				tfi[in] = true
				stack = append(stack, in)
			}
		}
	}
	return tfi
}
