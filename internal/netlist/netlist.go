// Package netlist reads and writes the gate-level structural-Verilog
// subset used by the ICCAD-2017 CAD Contest Problem A benchmarks (the
// evaluation format of the paper), plus the per-signal weight files.
//
// Conventions reproduced from the contest:
//   - one module per file, with primitive gates and / or / nand / nor /
//     xor / xnor / not / buf instantiated positionally, output first;
//   - constants written 1'b0 and 1'b1;
//   - target (rectification) points of the old implementation appear
//     as wires that are read but never driven, named t_0, t_1, ...;
//   - the weight file lists "<signal> <cost>" pairs, one per line.
package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// GateKind enumerates the primitive gate types of the format.
type GateKind int

// Primitive gates.
const (
	GateAnd GateKind = iota
	GateOr
	GateNand
	GateNor
	GateXor
	GateXnor
	GateNot
	GateBuf
	// GateDff is a D flip-flop: dff (q, d). Sequential netlists are
	// handled by internal/seq; the combinational converter ToAIG
	// rejects them.
	GateDff
)

var kindNames = map[GateKind]string{
	GateAnd: "and", GateOr: "or", GateNand: "nand", GateNor: "nor",
	GateXor: "xor", GateXnor: "xnor", GateNot: "not", GateBuf: "buf",
	GateDff: "dff",
}

var kindByName = map[string]GateKind{
	"and": GateAnd, "or": GateOr, "nand": GateNand, "nor": GateNor,
	"xor": GateXor, "xnor": GateXnor, "not": GateNot, "buf": GateBuf,
	"dff": GateDff,
}

func (k GateKind) String() string { return kindNames[k] }

// Gate is one primitive gate instance. Output first, then inputs,
// following the positional convention of the format. Inputs may be
// the constant tokens "1'b0" and "1'b1".
type Gate struct {
	Kind GateKind
	Name string // instance name; may be empty
	Out  string
	Ins  []string
}

// Netlist is a parsed module.
type Netlist struct {
	Name    string
	Inputs  []string
	Outputs []string
	Wires   []string
	Gates   []Gate
}

// Const0 and Const1 are the constant input tokens of the format.
const (
	Const0 = "1'b0"
	Const1 = "1'b1"
)

// IsConstToken reports whether s is one of the constant tokens.
func IsConstToken(s string) bool { return s == Const0 || s == Const1 }

// DrivenSignals returns the set of signals driven by a gate output or
// declared as module inputs.
func (n *Netlist) DrivenSignals() map[string]bool {
	d := make(map[string]bool)
	for _, in := range n.Inputs {
		d[in] = true
	}
	for _, g := range n.Gates {
		d[g.Out] = true
	}
	return d
}

// UndrivenSignals returns, sorted, the signals that are read by some
// gate or exported as outputs but never driven — in ECO instances
// these are the target points.
func (n *Netlist) UndrivenSignals() []string {
	driven := n.DrivenSignals()
	seen := make(map[string]bool)
	var out []string
	note := func(s string) {
		if !IsConstToken(s) && !driven[s] && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, g := range n.Gates {
		for _, in := range g.Ins {
			note(in)
		}
	}
	for _, o := range n.Outputs {
		note(o)
	}
	sort.Strings(out)
	return out
}

// Targets returns the undriven signals whose names follow the contest
// target convention ("t_<k>"), sorted by index.
func (n *Netlist) Targets() []string {
	var ts []string
	for _, s := range n.UndrivenSignals() {
		if strings.HasPrefix(s, "t_") {
			ts = append(ts, s)
		}
	}
	sort.Slice(ts, func(i, j int) bool {
		return targetIndex(ts[i]) < targetIndex(ts[j])
	})
	return ts
}

func targetIndex(s string) int {
	var k int
	fmt.Sscanf(strings.TrimPrefix(s, "t_"), "%d", &k)
	return k
}

// NumGates returns the number of gate instances.
func (n *Netlist) NumGates() int { return len(n.Gates) }

// Validate performs structural sanity checks: arity of gates, no
// doubly driven signals, no driven module inputs.
func (n *Netlist) Validate() error {
	driven := make(map[string]bool)
	for _, in := range n.Inputs {
		driven[in] = true
	}
	for _, g := range n.Gates {
		switch g.Kind {
		case GateNot, GateBuf, GateDff:
			if len(g.Ins) != 1 {
				return fmt.Errorf("netlist: gate %s %q must have 1 input, has %d", g.Kind, g.Name, len(g.Ins))
			}
		default:
			if len(g.Ins) < 2 {
				return fmt.Errorf("netlist: gate %s %q must have >=2 inputs, has %d", g.Kind, g.Name, len(g.Ins))
			}
		}
		if IsConstToken(g.Out) {
			return fmt.Errorf("netlist: gate %s %q drives a constant", g.Kind, g.Name)
		}
		if driven[g.Out] {
			return fmt.Errorf("netlist: signal %q driven more than once", g.Out)
		}
		driven[g.Out] = true
	}
	return nil
}
