package netlist

import (
	"strings"
	"testing"

	"ecopatch/internal/aig"
	"ecopatch/internal/cec"
)

const sampleModule = `
// full adder plus an ECO target point
module fa (a, b, cin, sum, cout);
input a, b, cin;
output sum, cout;
wire w1, w2, w3;
xor g1 (w1, a, b);
xor g2 (sum, w1, cin);
and g3 (w2, a, b);
and g4 (w3, w1, t_0);
or  g5 (cout, w2, w3);
endmodule
`

func TestParseSample(t *testing.T) {
	n, err := ParseString(sampleModule)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "fa" {
		t.Fatalf("name = %q", n.Name)
	}
	if len(n.Inputs) != 3 || len(n.Outputs) != 2 || len(n.Wires) != 3 {
		t.Fatalf("decl counts wrong: %d %d %d", len(n.Inputs), len(n.Outputs), len(n.Wires))
	}
	if n.NumGates() != 5 {
		t.Fatalf("gates = %d", n.NumGates())
	}
	if got := n.Targets(); len(got) != 1 || got[0] != "t_0" {
		t.Fatalf("targets = %v", got)
	}
	g := n.Gates[0]
	if g.Kind != GateXor || g.Name != "g1" || g.Out != "w1" || len(g.Ins) != 2 {
		t.Fatalf("gate 0 parsed wrong: %+v", g)
	}
}

func TestParseComments(t *testing.T) {
	src := `
module m (a, f); /* block
comment */ input a; // line comment
output f;
buf (f, a);
endmodule`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumGates() != 1 || n.Gates[0].Kind != GateBuf {
		t.Fatalf("parsed: %+v", n)
	}
}

func TestParseAssignAndConstants(t *testing.T) {
	src := `
module m (a, f, g2);
input a;
output f, g2;
assign f = a;
and (g2, a, 1'b1);
endmodule`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Gates[0].Kind != GateBuf || n.Gates[0].Ins[0] != "a" {
		t.Fatalf("assign not parsed as buf: %+v", n.Gates[0])
	}
	res, err := ToAIG(n)
	if err != nil {
		t.Fatal(err)
	}
	out := res.G.Eval([]bool{true})
	if !out[0] || !out[1] {
		t.Fatalf("constant handling wrong: %v", out)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                       // empty
		"module m (a); input a;", // missing endmodule
		"module m (a); input a; foo (x, a); endmodule",                               // unknown gate
		"module m (a); input a; and (x); endmodule",                                  // arity
		"module m (a,f); input a; output f; not (f, a, a); endmodule",                // not arity
		"module m (a,f); input a; output f; and (f, a, b); and (f, a, a); endmodule", // double drive
	}
	for i, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	src := `
module m (a, f);
input a;
output f;
wire x, y;
and (x, y, a);
and (y, x, a);
and (f, x, y);
endmodule`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ToAIG(n); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestUndrivenNonTargetRejected(t *testing.T) {
	src := `
module m (a, f);
input a;
output f;
and (f, a, mystery);
endmodule`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ToAIG(n); err == nil {
		t.Fatal("undriven non-target signal accepted")
	}
}

func TestToAIGFullAdderSemantics(t *testing.T) {
	src := `
module fa (a, b, cin, sum, cout);
input a, b, cin;
output sum, cout;
wire w1, w2, w3;
xor g1 (w1, a, b);
xor g2 (sum, w1, cin);
and g3 (w2, a, b);
and g4 (w3, w1, cin);
or  g5 (cout, w2, w3);
endmodule`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ToAIG(n)
	if err != nil {
		t.Fatal(err)
	}
	g := res.G
	if g.NumPIs() != 3 || g.NumPOs() != 2 {
		t.Fatalf("shape: %d PIs %d POs", g.NumPIs(), g.NumPOs())
	}
	for m := 0; m < 8; m++ {
		in := []bool{m&1 == 1, m&2 == 2, m&4 == 4}
		out := g.Eval(in)
		ones := 0
		for _, v := range in {
			if v {
				ones++
			}
		}
		if out[0] != (ones%2 == 1) || out[1] != (ones >= 2) {
			t.Fatalf("adder semantics wrong at %v: %v", in, out)
		}
	}
}

func TestGatesOutOfOrder(t *testing.T) {
	// g2 reads w1 before g1 defines it: must still convert.
	src := `
module m (a, b, f);
input a, b;
output f;
wire w1;
and g2 (f, w1, b);
or  g1 (w1, a, b);
endmodule`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ToAIG(n)
	if err != nil {
		t.Fatal(err)
	}
	// f = (a|b) & b = b
	for m := 0; m < 4; m++ {
		in := []bool{m&1 == 1, m&2 == 2}
		if res.G.Eval(in)[0] != in[1] {
			t.Fatalf("out-of-order conversion wrong at %v", in)
		}
	}
}

func TestMultiInputGates(t *testing.T) {
	src := `
module m (a, b, c, d, f, g2, h);
input a, b, c, d;
output f, g2, h;
and (f, a, b, c, d);
nor (g2, a, b, c);
xor (h, a, b, c);
endmodule`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ToAIG(n)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 16; m++ {
		in := []bool{m&1 == 1, m&2 == 2, m&4 == 4, m&8 == 8}
		out := res.G.Eval(in)
		if out[0] != (in[0] && in[1] && in[2] && in[3]) {
			t.Fatalf("and4 wrong at %v", in)
		}
		if out[1] != !(in[0] || in[1] || in[2]) {
			t.Fatalf("nor3 wrong at %v", in)
		}
		if out[2] != (in[0] != in[1]) != in[2] {
			// xor over three inputs: parity
		}
		parity := in[0] != in[1]
		parity = parity != in[2]
		if out[2] != parity {
			t.Fatalf("xor3 wrong at %v", in)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	n1, err := ParseString(sampleModule)
	if err != nil {
		t.Fatal(err)
	}
	text := n1.String()
	n2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if n2.Name != n1.Name || n2.NumGates() != n1.NumGates() {
		t.Fatalf("round trip changed shape")
	}
	// Semantics: substitute the target with a constant in both and
	// compare by evaluation.
	r1, err := ToAIG(n1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ToAIG(n2)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 16; m++ {
		in := []bool{m&1 == 1, m&2 == 2, m&4 == 4, m&8 == 8}
		o1 := r1.G.Eval(in)
		o2 := r2.G.Eval(in)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("round trip changed semantics at %v", in)
			}
		}
	}
}

func TestFromAIGRoundTrip(t *testing.T) {
	// Build an AIG, convert to netlist, parse back, reconvert, CEC.
	g := aig.New()
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	f := g.Or(g.And(a, b.Not()), g.Xor(b, c))
	h := g.And(f, c).Not()
	g.AddPO("f", f)
	g.AddPO("h", h)

	n := FromAIG(g, "roundtrip")
	if err := n.Validate(); err != nil {
		t.Fatalf("generated netlist invalid: %v\n%s", err, n)
	}
	n2, err := ParseString(n.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, n)
	}
	res, err := ToAIG(n2)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := cec.CheckAIGs(g, res.G)
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Equivalent {
		t.Fatalf("FromAIG round trip not equivalent; cex %v", eq.Counterexample)
	}
}

func TestFromAIGConstantOutput(t *testing.T) {
	g := aig.New()
	g.AddPI("a")
	g.AddPO("zero", aig.ConstFalse)
	g.AddPO("one", aig.ConstTrue)
	n := FromAIG(g, "consts")
	n2, err := ParseString(n.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, n)
	}
	res, err := ToAIG(n2)
	if err != nil {
		t.Fatal(err)
	}
	out := res.G.Eval([]bool{true})
	if out[0] != false || out[1] != true {
		t.Fatalf("constant outputs wrong: %v", out)
	}
}

func TestWeightsParse(t *testing.T) {
	src := `
# comment
w1 10
w2 0

// another comment
t_0 99999
`
	w, err := ParseWeights(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if w.Cost("w1") != 10 || w.Cost("w2") != 0 || w.Cost("t_0") != 99999 {
		t.Fatalf("costs wrong: %+v", w.Costs)
	}
	if w.Cost("unknown") != DefaultWeight {
		t.Fatal("default weight wrong")
	}
}

func TestWeightsErrors(t *testing.T) {
	for i, src := range []string{"w1", "w1 x", "w1 -3", "a b c"} {
		if _, err := ParseWeights(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	w := NewWeights()
	w.Set("a", 5)
	w.Set("b", 7)
	var sb strings.Builder
	if err := WriteWeights(&sb, w); err != nil {
		t.Fatal(err)
	}
	w2, err := ParseWeights(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if w2.Cost("a") != 5 || w2.Cost("b") != 7 {
		t.Fatalf("round trip wrong: %+v", w2.Costs)
	}
}

func TestTargetsSortedNumerically(t *testing.T) {
	src := `
module m (a, f);
input a;
output f;
wire w1, w2;
and (w1, t_10, t_2);
and (w2, t_1, w1);
and (f, w2, a);
endmodule`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	got := n.Targets()
	want := []string{"t_1", "t_2", "t_10"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("targets = %v, want %v", got, want)
	}
}

func TestDffParsingAndValidation(t *testing.T) {
	n, err := ParseString(`
module seq (d, q);
input d;
output q;
wire s;
dff (s, d);
buf (q, s);
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Gates[0].Kind != GateDff {
		t.Fatalf("kind = %v", n.Gates[0].Kind)
	}
	if _, err := ToAIG(n); err == nil {
		t.Fatal("ToAIG must reject sequential netlists")
	}
	// Round trip keeps the dff.
	n2, err := ParseString(n.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, n)
	}
	if n2.Gates[0].Kind != GateDff {
		t.Fatal("dff lost in round trip")
	}
	// Arity enforced.
	if _, err := ParseString(`
module m (d, q);
input d;
output q;
dff (q, d, d);
endmodule`); err == nil {
		t.Fatal("dff with two inputs accepted")
	}
}

func TestDrivenSignals(t *testing.T) {
	n, err := ParseString(sampleModule)
	if err != nil {
		t.Fatal(err)
	}
	d := n.DrivenSignals()
	for _, want := range []string{"a", "b", "cin", "w1", "sum", "cout"} {
		if !d[want] {
			t.Errorf("driven set missing %q", want)
		}
	}
	if d["t_0"] {
		t.Error("target wrongly reported driven")
	}
}
