package netlist

import (
	"fmt"
	"sort"

	"ecopatch/internal/aig"
)

// AIGResult is the outcome of converting a netlist to an AIG.
type AIGResult struct {
	G *aig.AIG
	// Signals maps every named signal (inputs, wires, gate outputs,
	// and undriven target points) to its AIG edge. Target points are
	// represented as extra AIG primary inputs placed after the module
	// inputs.
	Signals map[string]aig.Lit
	// Targets lists the undriven signals, in Targets() order; their
	// PI positions in G are len(Inputs) + index.
	Targets []string
}

// ToAIG converts a netlist to an AIG. Module inputs become the first
// PIs in declaration order; undriven signals (target points) become
// additional PIs. Gates are processed in dependency order;
// combinational cycles are reported as errors.
func ToAIG(n *Netlist) (*AIGResult, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	g := aig.New()
	sig := make(map[string]aig.Lit)
	for _, in := range n.Inputs {
		sig[in] = g.AddPI(in)
	}
	targets := n.Targets()
	targetSet := make(map[string]bool)
	for _, t := range targets {
		sig[t] = g.AddPI(t)
		targetSet[t] = true
	}
	// Any other undriven signal is an error unless it is a target.
	for _, u := range n.UndrivenSignals() {
		if !targetSet[u] {
			return nil, fmt.Errorf("netlist: signal %q is read but never driven (and is not a t_* target)", u)
		}
	}

	// Topological processing of gates via Kahn's algorithm on the
	// signal dependency graph.
	gateOf := make(map[string]int) // output signal -> gate index
	for i, gt := range n.Gates {
		if gt.Kind == GateDff {
			return nil, fmt.Errorf("netlist: sequential gate %q: convert with internal/seq first", gt.Name)
		}
		gateOf[gt.Out] = i
	}
	indeg := make([]int, len(n.Gates))
	dependents := make(map[int][]int) // gate -> gates reading its output
	var ready []int
	for i, gt := range n.Gates {
		for _, in := range gt.Ins {
			if j, ok := gateOf[in]; ok {
				indeg[i]++
				dependents[j] = append(dependents[j], i)
			}
		}
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	processed := 0
	for len(ready) > 0 {
		i := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		gt := n.Gates[i]
		out, err := buildGate(g, sig, gt)
		if err != nil {
			return nil, err
		}
		sig[gt.Out] = out
		processed++
		for _, j := range dependents[i] {
			indeg[j]--
			if indeg[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	if processed != len(n.Gates) {
		return nil, fmt.Errorf("netlist: combinational cycle among gates")
	}
	for _, o := range n.Outputs {
		l, ok := sig[o]
		if !ok {
			return nil, fmt.Errorf("netlist: output %q undriven", o)
		}
		g.AddPO(o, l)
	}
	return &AIGResult{G: g, Signals: sig, Targets: targets}, nil
}

func inputEdge(sig map[string]aig.Lit, name string) (aig.Lit, error) {
	switch name {
	case Const0:
		return aig.ConstFalse, nil
	case Const1:
		return aig.ConstTrue, nil
	}
	l, ok := sig[name]
	if !ok {
		return 0, fmt.Errorf("netlist: unknown signal %q", name)
	}
	return l, nil
}

func buildGate(g *aig.AIG, sig map[string]aig.Lit, gt Gate) (aig.Lit, error) {
	ins := make([]aig.Lit, len(gt.Ins))
	for i, name := range gt.Ins {
		l, err := inputEdge(sig, name)
		if err != nil {
			return 0, err
		}
		ins[i] = l
	}
	switch gt.Kind {
	case GateNot:
		return ins[0].Not(), nil
	case GateBuf:
		return ins[0], nil
	case GateAnd:
		return g.AndN(ins...), nil
	case GateNand:
		return g.AndN(ins...).Not(), nil
	case GateOr:
		return g.OrN(ins...), nil
	case GateNor:
		return g.OrN(ins...).Not(), nil
	case GateXor, GateXnor:
		acc := ins[0]
		for _, l := range ins[1:] {
			acc = g.Xor(acc, l)
		}
		if gt.Kind == GateXnor {
			acc = acc.Not()
		}
		return acc, nil
	}
	return 0, fmt.Errorf("netlist: unsupported gate kind %v", gt.Kind)
}

// FromAIG converts an AIG back to a netlist of and/not/buf gates.
// AND nodes become and-gates named n<idx>; inverted edges materialize
// not-gates. PIs and POs keep their AIG names.
func FromAIG(g *aig.AIG, moduleName string) *Netlist {
	n := &Netlist{Name: moduleName}
	nameOf := make(map[int]string) // node -> signal name
	for i := 0; i < g.NumPIs(); i++ {
		nm := g.PIName(i)
		n.Inputs = append(n.Inputs, nm)
		nameOf[g.PI(i).Node()] = nm
	}
	inverted := make(map[string]string) // signal -> its inverter output
	usedNames := make(map[string]bool)
	for _, nm := range n.Inputs {
		usedNames[nm] = true
	}
	fresh := func(base string) string {
		nm := base
		for k := 0; usedNames[nm]; k++ {
			nm = fmt.Sprintf("%s_%d", base, k)
		}
		usedNames[nm] = true
		return nm
	}
	edgeName := func(l aig.Lit) string {
		if l == aig.ConstFalse {
			return Const0
		}
		if l == aig.ConstTrue {
			return Const1
		}
		base := nameOf[l.Node()]
		if !l.Compl() {
			return base
		}
		if inv, ok := inverted[base]; ok {
			return inv
		}
		inv := fresh(base + "_n")
		n.Wires = append(n.Wires, inv)
		n.Gates = append(n.Gates, Gate{Kind: GateNot, Out: inv, Ins: []string{base}})
		inverted[base] = inv
		return inv
	}

	// Emit AND gates in topological (index) order over the PO cones.
	roots := make([]aig.Lit, g.NumPOs())
	for i := range roots {
		roots[i] = g.PO(i)
	}
	for _, idx := range g.ConeNodes(roots) {
		if !g.IsAnd(idx) {
			continue
		}
		f0, f1 := g.Fanins(idx)
		nm := fresh(fmt.Sprintf("n%d", idx))
		nameOf[idx] = nm
		n.Wires = append(n.Wires, nm)
		n.Gates = append(n.Gates, Gate{Kind: GateAnd, Out: nm, Ins: []string{edgeName(f0), edgeName(f1)}})
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		nm := g.POName(i)
		if usedNames[nm] {
			nm = fresh(nm)
		}
		usedNames[nm] = true
		n.Outputs = append(n.Outputs, nm)
		kind := GateBuf
		src := po
		if po.Compl() {
			kind = GateNot
			src = po.Regular()
		}
		var srcName string
		switch {
		case src == aig.ConstFalse:
			srcName = Const0
		default:
			srcName = nameOf[src.Node()]
		}
		n.Gates = append(n.Gates, Gate{Kind: kind, Out: nm, Ins: []string{srcName}})
	}
	sort.Strings(n.Wires)
	return n
}
