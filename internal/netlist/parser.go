package netlist

import (
	"fmt"
	"io"
	"unicode"
)

// Parse reads one module in the contest's structural-Verilog subset.
func Parse(r io.Reader) (*Netlist, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	return ParseString(string(data))
}

// ParseString parses a module held in a string.
func ParseString(src string) (*Netlist, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseModule()
}

type token struct {
	text string
	line int
}

func tokenize(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= len(src) {
				return nil, fmt.Errorf("netlist: line %d: unterminated block comment", line)
			}
			i += 2
		case c == '(' || c == ')' || c == ',' || c == ';' || c == '=':
			toks = append(toks, token{string(c), line})
			i++
		default:
			if !isIdentChar(rune(c)) {
				return nil, fmt.Errorf("netlist: line %d: unexpected character %q", line, c)
			}
			j := i
			for j < len(src) && isIdentChar(rune(src[j])) {
				j++
			}
			toks = append(toks, token{src[i:j], line})
			i = j
		}
	}
	return toks, nil
}

func isIdentChar(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) ||
		c == '_' || c == '\'' || c == '[' || c == ']' || c == '\\' || c == '.' || c == '$'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) errf(format string, args ...any) error {
	line := 0
	if p.pos < len(p.toks) {
		line = p.toks[p.pos].line
	} else if len(p.toks) > 0 {
		line = p.toks[len(p.toks)-1].line
	}
	return fmt.Errorf("netlist: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) peek() (string, bool) {
	if p.pos >= len(p.toks) {
		return "", false
	}
	return p.toks[p.pos].text, true
}

func (p *parser) next() (string, error) {
	t, ok := p.peek()
	if !ok {
		return "", p.errf("unexpected end of input")
	}
	p.pos++
	return t, nil
}

func (p *parser) expect(want string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t != want {
		p.pos--
		return p.errf("expected %q, found %q", want, t)
	}
	return nil
}

// parseIdentList reads "a, b, c ;" style lists.
func (p *parser) parseIdentList() ([]string, error) {
	var ids []string
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		ids = append(ids, t)
		t, err = p.next()
		if err != nil {
			return nil, err
		}
		switch t {
		case ",":
			continue
		case ";":
			return ids, nil
		default:
			p.pos--
			return nil, p.errf("expected ',' or ';', found %q", t)
		}
	}
}

func (p *parser) parseModule() (*Netlist, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name, err := p.next()
	if err != nil {
		return nil, err
	}
	n := &Netlist{Name: name}
	// Port list (names are repeated in input/output declarations, so
	// the list itself is skipped).
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t == ")" {
			break
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch t {
		case "endmodule":
			if err := n.Validate(); err != nil {
				return nil, err
			}
			return n, nil
		case "input":
			ids, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			n.Inputs = append(n.Inputs, ids...)
		case "output":
			ids, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			n.Outputs = append(n.Outputs, ids...)
		case "wire":
			ids, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			n.Wires = append(n.Wires, ids...)
		case "assign":
			g, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			n.Gates = append(n.Gates, g)
		default:
			kind, ok := kindByName[t]
			if !ok {
				p.pos--
				return nil, p.errf("unknown construct %q", t)
			}
			g, err := p.parseGate(kind)
			if err != nil {
				return nil, err
			}
			n.Gates = append(n.Gates, g)
		}
	}
}

// parseGate reads "<kind> [inst] ( out, in, ... );".
func (p *parser) parseGate(kind GateKind) (Gate, error) {
	g := Gate{Kind: kind}
	t, err := p.next()
	if err != nil {
		return g, err
	}
	if t != "(" {
		g.Name = t
		if err := p.expect("("); err != nil {
			return g, err
		}
	}
	var args []string
	for {
		t, err := p.next()
		if err != nil {
			return g, err
		}
		args = append(args, t)
		t, err = p.next()
		if err != nil {
			return g, err
		}
		if t == ")" {
			break
		}
		if t != "," {
			p.pos--
			return g, p.errf("expected ',' or ')', found %q", t)
		}
	}
	if err := p.expect(";"); err != nil {
		return g, err
	}
	if len(args) < 2 {
		return g, p.errf("gate %s needs an output and at least one input", kind)
	}
	g.Out = args[0]
	g.Ins = args[1:]
	return g, nil
}

// parseAssign reads "assign out = in ;" (buffer) or
// "assign out = 1'b0/1'b1 ;" (constant), the only assign forms the
// contest files use.
func (p *parser) parseAssign() (Gate, error) {
	out, err := p.next()
	if err != nil {
		return Gate{}, err
	}
	if err := p.expect("="); err != nil {
		// '=' is not in the token alphabet above; accept the merged
		// token form "=" only if tokenize produced it. Report cleanly.
		return Gate{}, p.errf("assign statements must be 'assign out = in;'")
	}
	in, err := p.next()
	if err != nil {
		return Gate{}, err
	}
	if err := p.expect(";"); err != nil {
		return Gate{}, err
	}
	return Gate{Kind: GateBuf, Out: out, Ins: []string{in}}, nil
}
