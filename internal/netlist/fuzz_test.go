package netlist

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that everything
// it accepts survives a write/re-parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		sampleModule,
		"module m (a, f);\ninput a;\noutput f;\nbuf (f, a);\nendmodule",
		"module m (a, f);\ninput a;\noutput f;\nassign f = a;\nendmodule",
		"module m (); endmodule",
		"module m (a); input a; and (x, a, 1'b1); endmodule",
		"/* c */ module m (a, f); // c\ninput a; output f; not (f, a); endmodule",
		"module m (a, f);\ninput a;\noutput f;\nand (f, t_0, a);\nendmodule",
		"garbage",
		"module",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := ParseString(src)
		if err != nil {
			return
		}
		text := n.String()
		n2, err := ParseString(text)
		if err != nil {
			t.Fatalf("accepted module does not re-parse: %v\ninput: %q\nwritten:\n%s", err, src, text)
		}
		if n2.NumGates() != n.NumGates() || len(n2.Inputs) != len(n.Inputs) {
			t.Fatalf("round trip changed shape for %q", src)
		}
	})
}

// FuzzParseWeights checks the weight parser for panics.
func FuzzParseWeights(f *testing.F) {
	f.Add("a 1\nb 2\n")
	f.Add("# comment\nx 0\n")
	f.Add("broken")
	f.Add("w -1")
	f.Fuzz(func(t *testing.T, src string) {
		w, err := ParseWeights(strings.NewReader(src))
		if err != nil {
			return
		}
		for name := range w.Costs {
			if w.Cost(name) < 0 {
				t.Fatalf("negative cost accepted for %q", name)
			}
		}
	})
}
