package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Write emits the netlist in the contest's structural-Verilog subset.
func Write(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	ports := append(append([]string{}, n.Inputs...), n.Outputs...)
	fmt.Fprintf(bw, "module %s (%s);\n", n.Name, strings.Join(ports, ", "))
	writeDecl(bw, "input", n.Inputs)
	writeDecl(bw, "output", n.Outputs)
	writeDecl(bw, "wire", n.Wires)
	for _, g := range n.Gates {
		if g.Name != "" {
			fmt.Fprintf(bw, "%s %s (%s, %s);\n", g.Kind, g.Name, g.Out, strings.Join(g.Ins, ", "))
		} else {
			fmt.Fprintf(bw, "%s (%s, %s);\n", g.Kind, g.Out, strings.Join(g.Ins, ", "))
		}
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

func writeDecl(w io.Writer, kw string, ids []string) {
	const perLine = 10
	for i := 0; i < len(ids); i += perLine {
		j := i + perLine
		if j > len(ids) {
			j = len(ids)
		}
		fmt.Fprintf(w, "%s %s;\n", kw, strings.Join(ids[i:j], ", "))
	}
}

// String renders the netlist to a string (for tests and debugging).
func (n *Netlist) String() string {
	var sb strings.Builder
	_ = Write(&sb, n)
	return sb.String()
}
