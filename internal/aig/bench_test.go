package aig

import (
	"math/rand"
	"testing"
)

func benchGraph(n int) *AIG {
	rng := rand.New(rand.NewSource(7))
	g := New()
	pool := make([]Lit, 0, n+16)
	for i := 0; i < 16; i++ {
		pool = append(pool, g.AddPI("x"))
	}
	for i := 0; i < n; i++ {
		a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		pool = append(pool, g.And(a, b))
	}
	for o := 0; o < 8; o++ {
		g.AddPO("y", pool[len(pool)-1-o])
	}
	return g
}

// BenchmarkAnd measures hashed node construction.
func BenchmarkAnd(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g := New()
	pool := make([]Lit, 0, b.N+8)
	for i := 0; i < 8; i++ {
		pool = append(pool, g.AddPI("x"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := pool[rng.Intn(len(pool))]
		c := pool[rng.Intn(len(pool))]
		pool = append(pool, g.And(a, c))
	}
}

// BenchmarkTransfer measures cone copying with rehashing — the
// operation behind miter construction and quantifier expansion.
func BenchmarkTransfer(b *testing.B) {
	src := benchGraph(20000)
	roots := make([]Lit, src.NumPOs())
	for i := range roots {
		roots[i] = src.PO(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := New()
		m := IdentityMap(dst, src)
		Transfer(dst, src, m, roots)
	}
}

// BenchmarkSimWords measures 64-way parallel simulation.
func BenchmarkSimWords(b *testing.B) {
	g := benchGraph(20000)
	rng := rand.New(rand.NewSource(11))
	words := g.RandomSimWords(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SimWords(words)
	}
}

// BenchmarkBalance measures the depth-reduction pass.
func BenchmarkBalance(b *testing.B) {
	g := benchGraph(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Balance(g)
	}
}

// BenchmarkCleanup guards the pooled-scratch rebuild path: the pass
// runs on every window extraction and after every rewrite, so its
// per-call allocations (beyond the result graph itself) must stay
// flat. Run with -benchmem to see the allocs/op pin.
func BenchmarkCleanup(b *testing.B) {
	g := benchGraph(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cleanup(g)
	}
}

// BenchmarkRewrite measures the full cut-based rewriting pass.
func BenchmarkRewrite(b *testing.B) {
	g := benchGraph(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rewrite(g, RewriteOptions{})
	}
}
