package aig

import (
	"math/rand"
	"testing"
)

// fuzzGraph deterministically builds an AIG from a byte script: each
// byte either adds a PI or combines two existing edges with a gate.
// Every graph the fuzzer can describe is a valid AIG.
func fuzzGraph(data []byte) *AIG {
	g := New()
	edges := []Lit{ConstFalse, ConstTrue}
	for i, b := range data {
		if len(edges) > 300 {
			break
		}
		op := b >> 5
		x := edges[int(b&0x1f)%len(edges)]
		y := edges[int(b>>2)%len(edges)]
		var e Lit
		switch op {
		case 0:
			e = g.AddPI("")
		case 1:
			e = g.And(x, y)
		case 2:
			e = g.Or(x, y)
		case 3:
			e = g.Xor(x, y)
		case 4:
			e = g.And(x.Not(), y)
		case 5:
			e = g.Mux(x, y, edges[i%len(edges)])
		default:
			e = x.Not()
		}
		edges = append(edges, e)
	}
	for i := 0; i < 4 && i < len(edges); i++ {
		g.AddPO("", edges[len(edges)-1-i])
	}
	return g
}

// FuzzSimWords checks 64-pattern bit-parallel simulation against 64
// scalar Eval calls on fuzzer-built graphs.
func FuzzSimWords(f *testing.F) {
	f.Add([]byte{0, 0, 0x21, 0x45, 0x63}, int64(1))
	f.Add([]byte{0, 0, 0, 0xbf, 0x7e, 0x9d, 0x21}, int64(42))
	f.Add([]byte{}, int64(0))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		g := fuzzGraph(data)
		rng := rand.New(rand.NewSource(seed))
		piWords := g.RandomSimWords(rng)
		words := g.SimWords(piWords)

		inputs := make([]bool, g.NumPIs())
		ev := NewEvaluator(g)
		for bit := 0; bit < 64; bit++ {
			for i := range inputs {
				inputs[i] = piWords[i]>>uint(bit)&1 == 1
			}
			ev.Eval(inputs)
			for o := 0; o < g.NumPOs(); o++ {
				po := g.PO(o)
				want := ev.Lit(po)
				got := WordOf(words, po)>>uint(bit)&1 == 1
				if got != want {
					t.Fatalf("PO %d bit %d: SimWords=%v Eval=%v", o, bit, got, want)
				}
			}
		}
	})
}

func TestEvaluatorMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 120)
	for round := 0; round < 20; round++ {
		rng.Read(data)
		g := fuzzGraph(data)
		ev := NewEvaluator(g)
		inputs := make([]bool, g.NumPIs())
		for trial := 0; trial < 16; trial++ {
			for i := range inputs {
				inputs[i] = rng.Intn(2) == 1
			}
			want := g.Eval(inputs)
			ev.Eval(inputs) // reused buffer across trials
			for o := 0; o < g.NumPOs(); o++ {
				if ev.Lit(g.PO(o)) != want[o] {
					t.Fatalf("round %d trial %d PO %d: Evaluator disagrees with Eval", round, trial, o)
				}
				if g.EvalLit(g.PO(o), inputs) != want[o] {
					t.Fatalf("round %d trial %d PO %d: EvalLit disagrees with Eval", round, trial, o)
				}
			}
		}
	}
}

func TestSimulatorMatchesSimWords(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := make([]byte, 150)
	rng.Read(data)
	g := fuzzGraph(data)
	sm := NewSimulator(g)
	for trial := 0; trial < 16; trial++ {
		piWords := g.RandomSimWords(rng)
		want := g.SimWords(piWords)
		got := sm.Run(piWords) // reused buffer across trials
		for o := 0; o < g.NumPOs(); o++ {
			if WordOf(got, g.PO(o)) != WordOf(want, g.PO(o)) {
				t.Fatalf("trial %d PO %d: Simulator disagrees with SimWords", trial, o)
			}
		}
	}
}

// TestEvaluatorTracksGraphGrowth pins that an Evaluator picks up nodes
// added after its construction.
func TestEvaluatorTracksGraphGrowth(t *testing.T) {
	g := New()
	a, b := g.AddPI("a"), g.AddPI("b")
	ev := NewEvaluator(g)
	ev.Eval([]bool{true, true})
	if !ev.Lit(a) || !ev.Lit(b) {
		t.Fatal("PI values wrong")
	}
	x := g.Xor(a, b)
	ev.Eval([]bool{true, false})
	if !ev.Lit(x) {
		t.Fatal("grown node not evaluated")
	}
}
