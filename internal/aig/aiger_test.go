package aig

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func equalFunction(t *testing.T, g1, g2 *AIG, rng *rand.Rand) {
	t.Helper()
	if g1.NumPIs() != g2.NumPIs() || g1.NumPOs() != g2.NumPOs() {
		t.Fatalf("shape mismatch: %d/%d PIs, %d/%d POs",
			g1.NumPIs(), g2.NumPIs(), g1.NumPOs(), g2.NumPOs())
	}
	for trial := 0; trial < 200; trial++ {
		in := make([]bool, g1.NumPIs())
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		o1, o2 := g1.Eval(in), g2.Eval(in)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("output %d differs at %v", i, in)
			}
		}
	}
}

func TestAigerASCIIRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 20; iter++ {
		g := randomAIG(rng, 4+rng.Intn(5), 5+rng.Intn(40), 1+rng.Intn(3))
		var buf bytes.Buffer
		if err := WriteASCIIAiger(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAiger(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, buf.String())
		}
		equalFunction(t, g, back, rng)
	}
}

func TestAigerBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 20; iter++ {
		g := randomAIG(rng, 4+rng.Intn(5), 5+rng.Intn(40), 1+rng.Intn(3))
		var buf bytes.Buffer
		if err := WriteBinaryAiger(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAiger(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		equalFunction(t, g, back, rng)
	}
}

func TestAigerPreservesNames(t *testing.T) {
	g := New()
	a := g.AddPI("alpha")
	b := g.AddPI("beta")
	g.AddPO("gamma", g.And(a, b))
	var buf bytes.Buffer
	if err := WriteASCIIAiger(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAiger(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.PIName(0) != "alpha" || back.PIName(1) != "beta" || back.POName(0) != "gamma" {
		t.Fatalf("names lost: %q %q %q", back.PIName(0), back.PIName(1), back.POName(0))
	}
}

func TestAigerConstantOutputs(t *testing.T) {
	g := New()
	g.AddPI("x")
	g.AddPO("zero", ConstFalse)
	g.AddPO("one", ConstTrue)
	for _, write := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return WriteASCIIAiger(b, g) },
		func(b *bytes.Buffer) error { return WriteBinaryAiger(b, g) },
	} {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAiger(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		out := back.Eval([]bool{true})
		if out[0] != false || out[1] != true {
			t.Fatalf("constants wrong: %v", out)
		}
	}
}

func TestAigerKnownFile(t *testing.T) {
	// Hand-written aag for f = a & !b (classic AIGER example shape).
	src := `aag 3 2 0 1 1
2
4
6
6 2 5
i0 a
i1 b
o0 f
`
	g, err := ReadAiger(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		in := []bool{m&1 == 1, m&2 == 2}
		want := in[0] && !in[1]
		if g.Eval(in)[0] != want {
			t.Fatalf("f(%v) wrong", in)
		}
	}
}

func TestAigerRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"xyz 1 1 0 1 0\n",
		"aag 1 1 1 1 0\n2\n2\n",        // latches unsupported
		"aag 0 1 0 0 0\n",              // M < I
		"aag 2 1 0 1 1\n2\n4\n4 6 2\n", // uses var 3 > maxvar
	}
	for i, src := range cases {
		if _, err := ReadAiger(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAigerOutOfOrderRejected(t *testing.T) {
	// AND 6 references AND 8 defined later.
	src := `aag 4 1 0 1 2
2
6
6 8 2
8 2 3
`
	if _, err := ReadAiger(strings.NewReader(src)); err == nil {
		t.Fatal("non-topological file accepted")
	}
}
