package aig

import "sync"

// optScratch bundles the working buffers of the rebuild passes
// (ConeNodes, Transfer, Cleanup, Balance) so hot loops that rebuild
// AIGs many times — window extraction, cofactoring, quantifier
// expansion, the optimizer — do not reallocate visit marks, copy maps
// and operand lists on every call. Buffers are handed out through a
// sync.Pool, so nested and concurrent passes each get their own set.
//
// The mark sets are generation-stamped: a reset bumps the generation
// instead of zeroing, making it O(1). Slices handed out by litSlice
// carry stale values from earlier runs by design — callers must guard
// every read with the corresponding mark set.
type optScratch struct {
	gen   uint32
	mark  []uint32
	gen2  uint32
	mark2 []uint32
	lits  []Lit
	cone  []int32
	stack []int32
	ops   []Lit
	edges []Lit
	ints  []int
	ints2 []int
}

var optPool = sync.Pool{New: func() interface{} { return new(optScratch) }}

// resetMarks prepares the primary mark set for n items.
func (s *optScratch) resetMarks(n int) {
	if len(s.mark) < n {
		s.mark = append(s.mark, make([]uint32, n-len(s.mark))...)
	}
	s.gen++
	if s.gen == 0 { // generation counter wrapped: stamps are ambiguous
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.gen = 1
	}
}

func (s *optScratch) seen(i int) bool { return s.mark[i] == s.gen }
func (s *optScratch) see(i int)       { s.mark[i] = s.gen }

// resetMarks2 prepares the secondary mark set (for passes that need
// two independent sets live at once, like Balance's done/needed).
func (s *optScratch) resetMarks2(n int) {
	if len(s.mark2) < n {
		s.mark2 = append(s.mark2, make([]uint32, n-len(s.mark2))...)
	}
	s.gen2++
	if s.gen2 == 0 {
		for i := range s.mark2 {
			s.mark2[i] = 0
		}
		s.gen2 = 1
	}
}

func (s *optScratch) seen2(i int) bool { return s.mark2[i] == s.gen2 }
func (s *optScratch) see2(i int)       { s.mark2[i] = s.gen2 }

// litSlice returns an n-element Lit buffer with UNDEFINED contents;
// reads must be guarded by a mark set.
func (s *optScratch) litSlice(n int) []Lit {
	if cap(s.lits) < n {
		s.lits = make([]Lit, n)
	}
	return s.lits[:n]
}

// coneInto computes the cone of roots (ascending node indices) into
// the reusable cone buffer. The returned slice is valid until the
// next coneInto or resetMarks on this scratch.
func (s *optScratch) coneInto(g *AIG, roots []Lit) []int32 {
	s.resetMarks(len(g.nodes))
	s.stack = s.stack[:0]
	for _, r := range roots {
		if !s.seen(r.Node()) {
			s.see(r.Node())
			s.stack = append(s.stack, int32(r.Node()))
		}
	}
	for len(s.stack) > 0 {
		n := int(s.stack[len(s.stack)-1])
		s.stack = s.stack[:len(s.stack)-1]
		if g.nodes[n].kind != kindAnd {
			continue
		}
		if m := g.nodes[n].f0.Node(); !s.seen(m) {
			s.see(m)
			s.stack = append(s.stack, int32(m))
		}
		if m := g.nodes[n].f1.Node(); !s.seen(m) {
			s.see(m)
			s.stack = append(s.stack, int32(m))
		}
	}
	s.cone = s.cone[:0]
	for i := range g.nodes {
		if s.seen(i) {
			s.cone = append(s.cone, int32(i))
		}
	}
	return s.cone
}

// fanoutInto computes FanoutCounts into a reusable buffer.
func fanoutInto(g *AIG, buf *[]int) []int {
	n := len(g.nodes)
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	fc := (*buf)[:n]
	for i := range fc {
		fc[i] = 0
	}
	for _, nd := range g.nodes {
		if nd.kind == kindAnd {
			fc[nd.f0.Node()]++
			fc[nd.f1.Node()]++
		}
	}
	for _, p := range g.pos {
		fc[p.Node()]++
	}
	return fc
}
