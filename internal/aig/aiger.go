package aig

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the AIGER combinational exchange format
// (Biere's aag/aig formats, latch-free subset), so circuits can be
// moved between this package and standard AIG tooling.

// WriteASCIIAiger emits the circuit in the ASCII "aag" format.
func WriteASCIIAiger(w io.Writer, g *AIG) error {
	bw := bufio.NewWriter(w)
	order, lit := aigerNumbering(g)
	nAnds := len(order)
	fmt.Fprintf(bw, "aag %d %d 0 %d %d\n", g.NumPIs()+nAnds, g.NumPIs(), g.NumPOs(), nAnds)
	for i := 0; i < g.NumPIs(); i++ {
		fmt.Fprintf(bw, "%d\n", lit[g.PI(i).Node()])
	}
	for i := 0; i < g.NumPOs(); i++ {
		fmt.Fprintf(bw, "%d\n", aigerLit(lit, g.PO(i)))
	}
	for _, n := range order {
		f0, f1 := g.Fanins(n)
		a, b := aigerLit(lit, f0), aigerLit(lit, f1)
		if a < b {
			a, b = b, a
		}
		fmt.Fprintf(bw, "%d %d %d\n", lit[n], a, b)
	}
	// Symbol table: input and output names.
	for i := 0; i < g.NumPIs(); i++ {
		fmt.Fprintf(bw, "i%d %s\n", i, g.PIName(i))
	}
	for i := 0; i < g.NumPOs(); i++ {
		fmt.Fprintf(bw, "o%d %s\n", i, g.POName(i))
	}
	return bw.Flush()
}

// WriteBinaryAiger emits the circuit in the binary "aig" format.
func WriteBinaryAiger(w io.Writer, g *AIG) error {
	bw := bufio.NewWriter(w)
	order, lit := aigerNumbering(g)
	nAnds := len(order)
	fmt.Fprintf(bw, "aig %d %d 0 %d %d\n", g.NumPIs()+nAnds, g.NumPIs(), g.NumPOs(), nAnds)
	for i := 0; i < g.NumPOs(); i++ {
		fmt.Fprintf(bw, "%d\n", aigerLit(lit, g.PO(i)))
	}
	for _, n := range order {
		f0, f1 := g.Fanins(n)
		a, b := aigerLit(lit, f0), aigerLit(lit, f1)
		if a < b {
			a, b = b, a
		}
		lhs := lit[n]
		writeDelta(bw, uint32(lhs-a))
		writeDelta(bw, uint32(a-b))
	}
	for i := 0; i < g.NumPIs(); i++ {
		fmt.Fprintf(bw, "i%d %s\n", i, g.PIName(i))
	}
	for i := 0; i < g.NumPOs(); i++ {
		fmt.Fprintf(bw, "o%d %s\n", i, g.POName(i))
	}
	return bw.Flush()
}

// aigerNumbering assigns AIGER literals: inputs get 2,4,..., ANDs in
// the cone of the outputs get consecutive literals afterwards in
// topological order. lit maps node index -> positive AIGER literal.
func aigerNumbering(g *AIG) (andOrder []int, lit []int) {
	lit = make([]int, g.NumNodes())
	for i := range lit {
		lit[i] = -1
	}
	lit[0] = 0
	for i := 0; i < g.NumPIs(); i++ {
		lit[g.PI(i).Node()] = 2 * (i + 1)
	}
	roots := make([]Lit, g.NumPOs())
	for i := range roots {
		roots[i] = g.PO(i)
	}
	next := 2 * (g.NumPIs() + 1)
	for _, n := range g.ConeNodes(roots) {
		if g.IsAnd(n) {
			andOrder = append(andOrder, n)
			lit[n] = next
			next += 2
		}
	}
	return andOrder, lit
}

func aigerLit(lit []int, l Lit) int {
	v := lit[l.Node()]
	if l.Compl() {
		return v + 1
	}
	return v
}

func writeDelta(w *bufio.Writer, x uint32) {
	for x >= 0x80 {
		w.WriteByte(byte(x&0x7f | 0x80))
		x >>= 7
	}
	w.WriteByte(byte(x))
}

// ReadAiger parses either the ASCII ("aag") or binary ("aig") format
// (combinational subset: zero latches) and rebuilds the circuit with
// structural hashing.
func ReadAiger(r io.Reader) (*AIG, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("aiger: %w", err)
	}
	fields := strings.Fields(header)
	if len(fields) != 6 || (fields[0] != "aag" && fields[0] != "aig") {
		return nil, fmt.Errorf("aiger: malformed header %q", strings.TrimSpace(header))
	}
	nums := make([]int, 5)
	for i, f := range fields[1:] {
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("aiger: bad header field %q", f)
		}
		nums[i] = n
	}
	maxVar, nIn, nLatch, nOut, nAnd := nums[0], nums[1], nums[2], nums[3], nums[4]
	if nLatch != 0 {
		return nil, fmt.Errorf("aiger: sequential files (latches) are not supported")
	}
	if maxVar < nIn+nAnd {
		return nil, fmt.Errorf("aiger: header M=%d < I+A=%d", maxVar, nIn+nAnd)
	}

	g := New()
	// edgeOf maps AIGER variable -> AIG edge; defined tracks which
	// variables have been given a function (AND definitions must be
	// in topological order, as this package writes them).
	edgeOf := make([]Lit, maxVar+1)
	defined := make([]bool, maxVar+1)
	defined[0] = true // constant
	for i := 0; i < nIn; i++ {
		edgeOf[i+1] = g.AddPI(fmt.Sprintf("i%d", i))
		defined[i+1] = true
	}
	conv := func(aigerL int) (Lit, error) {
		v := aigerL >> 1
		if v > maxVar {
			return 0, fmt.Errorf("aiger: literal %d out of range", aigerL)
		}
		if !defined[v] {
			return 0, fmt.Errorf("aiger: variable %d used before its definition (file not topologically ordered)", v)
		}
		return edgeOf[v].XorCompl(aigerL&1 == 1), nil
	}

	readInt := func() (int, error) {
		line, err := br.ReadString('\n')
		if err != nil {
			return 0, fmt.Errorf("aiger: %w", err)
		}
		n, err := strconv.Atoi(strings.TrimSpace(line))
		if err != nil {
			return 0, fmt.Errorf("aiger: bad integer line %q", strings.TrimSpace(line))
		}
		return n, nil
	}

	var outLits []int
	if fields[0] == "aag" {
		inLits := make([]int, nIn)
		for i := range inLits {
			n, err := readInt()
			if err != nil {
				return nil, err
			}
			inLits[i] = n
			if n != 2*(i+1) {
				return nil, fmt.Errorf("aiger: non-canonical input literal %d", n)
			}
		}
		for i := 0; i < nOut; i++ {
			n, err := readInt()
			if err != nil {
				return nil, err
			}
			outLits = append(outLits, n)
		}
		for i := 0; i < nAnd; i++ {
			line, err := br.ReadString('\n')
			if err != nil {
				return nil, fmt.Errorf("aiger: %w", err)
			}
			var lhs, a, b int
			if _, err := fmt.Sscanf(strings.TrimSpace(line), "%d %d %d", &lhs, &a, &b); err != nil {
				return nil, fmt.Errorf("aiger: bad AND line %q", strings.TrimSpace(line))
			}
			ea, err := conv(a)
			if err != nil {
				return nil, err
			}
			eb, err := conv(b)
			if err != nil {
				return nil, err
			}
			if lhs&1 == 1 || lhs>>1 > maxVar {
				return nil, fmt.Errorf("aiger: bad AND lhs %d", lhs)
			}
			edgeOf[lhs>>1] = g.And(ea, eb)
			defined[lhs>>1] = true
		}
	} else {
		for i := 0; i < nOut; i++ {
			n, err := readInt()
			if err != nil {
				return nil, err
			}
			outLits = append(outLits, n)
		}
		for i := 0; i < nAnd; i++ {
			lhs := 2 * (nIn + 1 + i)
			d1, err := readDelta(br)
			if err != nil {
				return nil, err
			}
			d2, err := readDelta(br)
			if err != nil {
				return nil, err
			}
			a := lhs - int(d1)
			b := a - int(d2)
			if a < 0 || b < 0 {
				return nil, fmt.Errorf("aiger: negative literal in binary AND %d", i)
			}
			ea, err := conv(a)
			if err != nil {
				return nil, err
			}
			eb, err := conv(b)
			if err != nil {
				return nil, err
			}
			edgeOf[lhs>>1] = g.And(ea, eb)
			defined[lhs>>1] = true
		}
	}

	// Optional symbol table.
	names := map[string]string{}
	for {
		line, err := br.ReadString('\n')
		if line == "" && err != nil {
			break
		}
		line = strings.TrimSpace(line)
		if line == "c" {
			break // comment section
		}
		if line != "" {
			parts := strings.SplitN(line, " ", 2)
			if len(parts) == 2 {
				names[parts[0]] = parts[1]
			}
		}
		if err != nil {
			break
		}
	}
	for i := 0; i < nIn; i++ {
		if nm, ok := names[fmt.Sprintf("i%d", i)]; ok {
			g.piNames[i] = nm
		}
	}
	for i, ol := range outLits {
		e, err := conv(ol)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("o%d", i)
		if nm, ok := names[name]; ok {
			name = nm
		}
		g.AddPO(name, e)
	}
	return g, nil
}

func readDelta(br *bufio.Reader) (uint32, error) {
	var x uint32
	shift := 0
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("aiger: truncated binary section: %w", err)
		}
		x |= uint32(b&0x7f) << uint(shift)
		if b&0x80 == 0 {
			return x, nil
		}
		shift += 7
		if shift > 28 {
			return 0, fmt.Errorf("aiger: delta encoding overflow")
		}
	}
}
