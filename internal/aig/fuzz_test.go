package aig

import (
	"bytes"
	"testing"
)

// FuzzReadAiger checks the AIGER reader never panics and that every
// accepted file round-trips through the writer.
func FuzzReadAiger(f *testing.F) {
	// Seed with valid files from both writers.
	g := New()
	a, b := g.AddPI("a"), g.AddPI("b")
	g.AddPO("f", g.Or(g.And(a, b), a.Not()))
	var asc, bin bytes.Buffer
	_ = WriteASCIIAiger(&asc, g)
	_ = WriteBinaryAiger(&bin, g)
	f.Add(asc.Bytes())
	f.Add(bin.Bytes())
	f.Add([]byte("aag 0 0 0 0 0\n"))
	f.Add([]byte("aig 1 1 0 1 0\n2\n"))
	f.Add([]byte("bogus"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadAiger(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteASCIIAiger(&out, g); err != nil {
			t.Fatalf("accepted graph cannot be written: %v", err)
		}
		if _, err := ReadAiger(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("rewritten file does not re-parse: %v\n%s", err, out.String())
		}
	})
}
