package aig

// This file implements DAG-aware cut-based rewriting (the ABC
// "rewrite" pass, adapted to this package's append-only AIG): every
// AND node's 4-feasible cuts are canonicalized (npn.go) and the class
// replacement structures are tried over the cut leaves; a candidate
// is accepted when it grows the result graph less than copying the
// node would — counting both the fresh nodes it needs (structural
// hashing credits logic the new graph already shares) and the nodes
// of the old implementation its choice lets die.
//
// The input graph is never mutated. The output graph is built node by
// node in topological order, with live reference counts maintained on
// it: every node's count sums the real fanin edges of born logic and
// the pending references of not-yet-processed consumers of the
// original graph. Replacing a node releases its fanin copies' pending
// references, cascading counts to zero through logic nothing will
// reference again — exactly the classic dereference bookkeeping of
// in-place rewriting, transplanted to a copy-based pass. Dead nodes
// stay in the output graph (it is append-only) until the final
// Cleanup; the structural hash may resurrect them, re-referencing
// their cones. Candidate evaluation runs the same cascade as a trial
// (dereference, count, re-reference restores), so gains are measured
// against the graph that actually exists, not a prediction.
//
// The pass is fully deterministic: cut order, candidate order and
// tie-breaks are all index-driven.

// RewriteOptions tunes Rewrite and Optimize. The zero value is the
// recommended configuration.
type RewriteOptions struct {
	// ZeroGain accepts replacements that free exactly as many nodes as
	// they add. This moves structures toward the canonical library
	// forms, which can unlock sharing for later passes at the price of
	// perturbing structure for no local gain.
	ZeroGain bool
	// MaxCuts bounds the stored cuts per node (0 = 8).
	MaxCuts int
	// MaxIters bounds Optimize's rewrite+balance iterations (0 = 3).
	MaxIters int
}

// Rewrite returns a functionally equivalent graph with best-gain cut
// replacements applied and dead logic removed. PI names, order and
// count are preserved (even for unused inputs); PO names and order
// are preserved.
func Rewrite(g *AIG, opt RewriteOptions) *AIG {
	rw := &rewriter{
		g:       g,
		ng:      New(),
		opt:     opt,
		cuts:    enumerateCuts(g, opt.MaxCuts),
		pending: g.FanoutCounts(),
		mapped:  make([]Lit, g.NumNodes()),
	}
	rw.onHit = func(ngNode int) { rw.held = append(rw.held, int32(ngNode)) }
	rw.mapped[0] = ConstFalse
	rw.grow()
	for n := 1; n < g.NumNodes(); n++ {
		if g.IsPI(n) {
			l := rw.ng.AddPI(g.piNames[len(rw.ng.pis)])
			rw.grow()
			rw.mapped[n] = l
			rw.addPend(l.Node(), rw.pending[n])
			continue
		}
		rw.rewriteNode(n)
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		rw.ng.AddPO(g.POName(i), rw.mapped[po.Node()].XorCompl(po.Compl()))
	}
	// Displaced logic is dead in ng; Cleanup collects it (the graph is
	// append-only, so the pass cannot delete in place).
	return Cleanup(rw.ng)
}

// Optimize is the full optimization pipeline: iterated Rewrite +
// Balance + Cleanup until the node count stops improving, with a size
// guard — the result never has more AND nodes than Cleanup(g), and
// the PI/PO interface is preserved throughout.
func Optimize(g *AIG) *AIG { return OptimizeOpt(g, RewriteOptions{}) }

// OptimizeOpt is Optimize with explicit options.
func OptimizeOpt(g *AIG, opt RewriteOptions) *AIG {
	iters := opt.MaxIters
	if iters <= 0 {
		iters = 3
	}
	best := Cleanup(g)
	for i := 0; i < iters; i++ {
		next := Compress(Rewrite(best, opt))
		if next.NumAnds() >= best.NumAnds() {
			break
		}
		best = next
	}
	return best
}

type rewriter struct {
	g, ng *AIG
	opt   RewriteOptions
	cuts  [][]cut
	// pending[m] is the original fanout count of g node m (fanin edges
	// plus PO references): the references its copy will receive from
	// consumers not yet processed. It is added to the copy's count when
	// m is mapped and drains one unref per consumer processed; PO
	// references never drain, keeping output cones alive.
	pending []int
	mapped  []Lit
	// refs[v] is the live reference count of ng node v: born fanin
	// edges plus pending references of g nodes mapped to v. A node
	// holds references to its fanins exactly while refs[v] > 0 (a
	// freshly created node starts unborn at zero; its first reference
	// claims its fanin cone, recursively — the same path resurrects a
	// dead node the structural hash handed back).
	refs []int32
	// scratch buffers reused across nodes.
	held  []int32
	ins   [4]Lit
	onHit func(ngNode int) // appends to held; hoisted to avoid per-candidate closures
}

func (rw *rewriter) grow() {
	for len(rw.refs) < rw.ng.NumNodes() {
		rw.refs = append(rw.refs, 0)
	}
}

// ref adds one reference to v, claiming its fanin cone if this birth
// or resurrection is the node's first live reference.
func (rw *rewriter) ref(v int) {
	if rw.refs[v] == 0 && rw.ng.IsAnd(v) {
		f0, f1 := rw.ng.Fanins(v)
		rw.ref(f0.Node())
		rw.ref(f1.Node())
	}
	rw.refs[v]++
}

// unref drops one reference from v, cascading through nodes that
// reach zero, and returns how many AND nodes died. It is the exact
// inverse of ref, so a trial deref is undone by re-reffing.
func (rw *rewriter) unref(v int) int {
	rw.refs[v]--
	if rw.refs[v] != 0 || !rw.ng.IsAnd(v) {
		return 0
	}
	f0, f1 := rw.ng.Fanins(v)
	return 1 + rw.unref(f0.Node()) + rw.unref(f1.Node())
}

// addPend grants v the pending references of a just-mapped g node.
func (rw *rewriter) addPend(v, n int) {
	for i := 0; i < n; i++ {
		rw.ref(v)
	}
}

// rewriteNode picks the cheapest implementation for g node n — the
// plain copy or a library structure over one of its cuts — builds it,
// and releases n's references on its fanin copies.
func (rw *rewriter) rewriteNode(n int) {
	g, ng := rw.g, rw.ng
	f0, f1 := g.Fanins(n)
	va := rw.mapped[f0.Node()].XorCompl(f0.Compl())
	vb := rw.mapped[f1.Node()].XorCompl(f1.Compl())

	// The copy is the baseline candidate: one node unless the hash
	// already has it, holding both fanin copies alive.
	rw.held = rw.held[:0]
	copyNew := 1
	if l, ok := ng.probeAnd(va, vb); ok {
		copyNew = 0
		rw.held = append(rw.held, int32(l.Node()))
	} else {
		rw.held = append(rw.held, int32(va.Node()), int32(vb.Node()))
	}
	bestDelta := copyNew - rw.trialDeaths(va.Node(), vb.Node())
	// Candidates must beat the copy; ZeroGain admits ties. The
	// earliest best cut/program wins (their order is deterministic).
	margin := 0
	if rw.opt.ZeroGain {
		margin = 1
	}
	var bestProg *npnProgram
	var bestIns [4]Lit
	var bestNegOut bool
	for ci := 1; ci < len(rw.cuts[n]); ci++ {
		c := &rw.cuts[n][ci]
		canon, recipe := NPNCanon(c.tt)
		for j := 0; j < 4; j++ {
			// Canon input j reads cut leaf Perm[j]; positions past the
			// cut width are vacuous in the class function and pinned to
			// constant false.
			l := ConstFalse
			if v := int(recipe.Perm[j]); v < int(c.n) {
				l = rw.mapped[c.leaves[v]]
			}
			rw.ins[j] = l.XorCompl(recipe.NegIn>>uint(j)&1 == 1)
		}
		for _, prog := range npnProgramsFor(canon) {
			// Hold everything the structure would reference: its input
			// copies and every existing node the probe resolves a step
			// to. What the structure does not hold may die — that is the
			// candidate's saving.
			rw.held = rw.held[:0]
			for j := 0; j < 4; j++ {
				rw.held = append(rw.held, int32(rw.ins[j].Node()))
			}
			cost := prog.cost(ng, rw.ins, rw.onHit)
			delta := cost - rw.trialDeaths(va.Node(), vb.Node())
			if delta < bestDelta+margin && (bestProg == nil || delta < bestDelta) {
				bestDelta = delta
				bestProg = prog
				bestIns = rw.ins
				bestNegOut = recipe.NegOut
			}
		}
	}

	var root Lit
	if bestProg != nil {
		root = rw.buildProg(bestProg, bestIns).XorCompl(bestNegOut)
	} else {
		before := ng.NumNodes()
		root = ng.And(va, vb)
		if ng.NumNodes() > before {
			rw.grow()
		}
	}
	rw.mapped[n] = root
	rw.addPend(root.Node(), rw.pending[n])
	// n has consumed its fanins; their copies lose one pending
	// reference each, and logic nothing references anymore dies.
	rw.unref(va.Node())
	rw.unref(vb.Node())
}

// trialDeaths counts the AND nodes that would die if va and vb each
// lost one reference while the current candidate's held nodes stay
// alive. The deref/re-ref pair restores counts exactly (ref and unref
// are inverses), so trials are free of side effects.
func (rw *rewriter) trialDeaths(va, vb int) int {
	for _, h := range rw.held {
		rw.ref(int(h))
	}
	deaths := rw.unref(va) + rw.unref(vb)
	rw.ref(va)
	rw.ref(vb)
	for i := len(rw.held) - 1; i >= 0; i-- {
		rw.unref(int(rw.held[i]))
	}
	return deaths
}

// buildProg materializes a replacement structure, growing the ref
// table alongside the graph. Fanin references are claimed lazily by
// the root's first reference (see ref), so unborn intermediate steps
// cost nothing until something actually uses them.
func (rw *rewriter) buildProg(p *npnProgram, ins [4]Lit) Lit {
	var vals [npnMaxSlots]Lit
	vals[0] = ConstFalse
	copy(vals[1:5], ins[:])
	for i, st := range p.steps {
		a := vals[st[0]>>1].XorCompl(st[0]&1 == 1)
		b := vals[st[1]>>1].XorCompl(st[1]&1 == 1)
		before := rw.ng.NumNodes()
		vals[5+i] = rw.ng.And(a, b)
		if rw.ng.NumNodes() > before {
			rw.grow()
		}
	}
	return vals[p.root>>1].XorCompl(p.root&1 == 1)
}
