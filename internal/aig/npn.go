package aig

import "sync"

// This file implements NPN canonicalization of 4-variable truth
// tables and the precomputed replacement library the rewriting pass
// (rewrite.go) draws from. Two 4-input functions are NPN-equivalent
// when one becomes the other under input Negation, input Permutation
// and output Negation; the 65536 functions fall into exactly 222
// classes. The rewriter only needs one good AIG structure per class:
// a cut's truth table is canonicalized, the class structure is
// instantiated over the cut leaves through the recorded recipe, and
// structural hashing does the rest.
//
// The canonicalizer is built once, by orbit search: scanning all
// 65536 functions in ascending order, the first member of each
// not-yet-visited orbit is its minimum and becomes the class
// representative; a BFS over the generator moves (negate one input,
// swap two adjacent inputs, negate the output) labels every orbit
// member with the recipe that rebuilds it from the representative.
// The whole construction is deterministic and takes a few
// milliseconds, so it runs lazily under a sync.Once instead of being
// embedded as a generated table.

// NPNRecipe rebuilds a function f from its class representative c:
//
//	f(x0,x1,x2,x3) = c(y0,y1,y2,y3) ^ NegOut, where yj = x[Perm[j]] ^ NegIn<<j&1
//
// i.e. input j of the representative reads variable Perm[j],
// complemented when bit j of NegIn is set.
type NPNRecipe struct {
	Perm   [4]uint8 // input j of the representative reads variable Perm[j]
	NegIn  uint8    // bit j: input j of the representative is complemented
	NegOut bool     // the output is complemented
}

// Apply rebuilds the original truth table from the representative's
// (the inverse direction of canonicalization). Exercised exhaustively
// by the tests; the rewriter itself applies recipes to AIG edges, not
// truth tables.
func (r NPNRecipe) Apply(canon uint16) uint16 {
	var f uint16
	for m := 0; m < 16; m++ {
		idx := 0
		for j := 0; j < 4; j++ {
			v := m>>r.Perm[j]&1 == 1
			if r.NegIn>>j&1 == 1 {
				v = !v
			}
			if v {
				idx |= 1 << j
			}
		}
		if (canon>>idx&1 == 1) != r.NegOut {
			f |= 1 << m
		}
	}
	return f
}

// NPNCanon returns the canonical representative of tt's NPN class
// (the minimum truth table in the orbit) and the recipe rebuilding tt
// from it.
func NPNCanon(tt uint16) (uint16, NPNRecipe) {
	npnInit()
	return npnCanon[tt], NPNRecipe{
		Perm: [4]uint8{
			npnPerm[tt] & 3,
			npnPerm[tt] >> 2 & 3,
			npnPerm[tt] >> 4 & 3,
			npnPerm[tt] >> 6 & 3,
		},
		NegIn:  npnNeg[tt] & 0xf,
		NegOut: npnNeg[tt]&0x10 != 0,
	}
}

// NPNClasses returns the canonical representatives of all NPN classes
// of 4-variable functions, in ascending order. There are exactly 222.
func NPNClasses() []uint16 {
	npnInit()
	out := make([]uint16, len(npnReps))
	copy(out, npnReps)
	return out
}

var (
	npnOnce  sync.Once
	npnCanon [1 << 16]uint16
	npnPerm  [1 << 16]uint8 // packed σ: input j of canon reads var (npnPerm>>2j)&3
	npnNeg   [1 << 16]uint8 // bits 0..3: input negations; bit 4: output negation
	npnReps  []uint16
	npnProgs map[uint16][]*npnProgram // class representative → replacement structures
)

// projTT[v] is the truth table of the projection onto variable v.
var projTT = [4]uint16{0xAAAA, 0xCCCC, 0xF0F0, 0xFF00}

// ttFlipIn negates input v of a truth table: bit m takes the value of
// bit m^(1<<v).
func ttFlipIn(t uint16, v int) uint16 {
	s := uint(1) << uint(v)
	hi := t & projTT[v]
	lo := t &^ projTT[v]
	return hi>>s | lo<<s
}

// ttSwapIn exchanges adjacent inputs v and v+1: bits where the two
// variables agree stay put, bits where they differ trade places.
func ttSwapIn(t uint16, v int) uint16 {
	s := uint(1) << uint(v)
	up := projTT[v] &^ projTT[v+1]   // minterms with x_v=1, x_{v+1}=0
	down := projTT[v+1] &^ projTT[v] // minterms with x_v=0, x_{v+1}=1
	return t&^(up|down) | (t&up)<<s | (t&down)>>s
}

func npnInit() {
	npnOnce.Do(func() {
		visited := make([]bool, 1<<16)
		queue := make([]uint16, 0, 768)
		const identPerm = 0<<0 | 1<<2 | 2<<4 | 3<<6
		for f := 0; f < 1<<16; f++ {
			if visited[f] {
				continue
			}
			rep := uint16(f)
			npnReps = append(npnReps, rep)
			visited[f] = true
			npnCanon[f] = rep
			npnPerm[f] = identPerm
			npnNeg[f] = 0
			queue = append(queue[:0], rep)
			for len(queue) > 0 {
				t := queue[0]
				queue = queue[1:]
				p, n := npnPerm[t], npnNeg[t]
				visit := func(t2 uint16, p2, n2 uint8) {
					if !visited[t2] {
						visited[t2] = true
						npnCanon[t2] = rep
						npnPerm[t2] = p2
						npnNeg[t2] = n2
						queue = append(queue, t2)
					}
				}
				// Output negation.
				visit(^t, p, n^0x10)
				// Input negations: negating variable k complements every
				// canon input that reads k.
				for k := 0; k < 4; k++ {
					n2 := n
					for j := uint(0); j < 4; j++ {
						if p>>(2*j)&3 == uint8(k) {
							n2 ^= 1 << j
						}
					}
					visit(ttFlipIn(t, k), p, n2)
				}
				// Adjacent swaps: canon inputs reading k and k+1 trade
				// their variables.
				for k := 0; k < 3; k++ {
					p2 := uint8(0)
					for j := uint(0); j < 4; j++ {
						v := p >> (2 * j) & 3
						if v == uint8(k) {
							v = uint8(k + 1)
						} else if v == uint8(k+1) {
							v = uint8(k)
						}
						p2 |= v << (2 * j)
					}
					visit(ttSwapIn(t, k), p2, n)
				}
			}
		}
		npnProgs = make(map[uint16][]*npnProgram, len(npnReps))
		for _, rep := range npnReps {
			npnProgs[rep] = synthPrograms(rep)
		}
	})
}

// npnProgramsFor returns the replacement structures of a class
// representative (a truth table previously returned by NPNCanon):
// the ISOP-factored forms of the function and of its complement,
// smaller first. Keeping both matters — they are the two cube
// families of the function, and only one of them can share logic
// with a given existing implementation (XOR built as ab'+a'b versus
// XNOR built as ab+a'b' is the classic case).
func npnProgramsFor(canon uint16) []*npnProgram {
	npnInit()
	return npnProgs[canon]
}

// --- replacement library -------------------------------------------
//
// Each class representative is stored as a compact straight-line
// program over slots: slot 0 is constant false, slots 1..4 are the
// four canon inputs, slot 5+i is the i-th AND step. Operands are
// refs (slot<<1 | complement). Instantiating a program in a target
// AIG goes through (*AIG).And, so structural hashing shares any step
// that already exists there — and a probe-only pass (cost) counts
// exactly how many fresh nodes a build would add without adding any.

type npnProgram struct {
	steps [][2]uint8 // AND steps: two operand refs each
	root  uint8      // ref of the function root
}

const npnMaxSlots = 64 // 5 fixed slots + worst-case ISOP steps, with slack

// build instantiates the program in g over the four canon-input
// edges, returning the root edge.
func (p *npnProgram) build(g *AIG, ins [4]Lit) Lit {
	var vals [npnMaxSlots]Lit
	vals[0] = ConstFalse
	copy(vals[1:5], ins[:])
	for i, st := range p.steps {
		a := vals[st[0]>>1].XorCompl(st[0]&1 == 1)
		b := vals[st[1]>>1].XorCompl(st[1]&1 == 1)
		vals[5+i] = g.And(a, b)
	}
	return vals[p.root>>1].XorCompl(p.root&1 == 1)
}

// cost counts the AND nodes build would add to g right now, by
// probing the structural hash without inserting. A step whose
// operands both resolve probes the hash; a step depending on a
// missing node is itself necessarily new. Constant folding on
// unresolved operands is not modeled, so the count can only
// overestimate — never under — which keeps gain decisions sound.
// Every existing node the structure would reference is reported
// through onReuse (the caller charges reused nodes it had counted as
// dying).
func (p *npnProgram) cost(g *AIG, ins [4]Lit, onReuse func(ngNode int)) int {
	var vals [npnMaxSlots]Lit
	var known [npnMaxSlots]bool
	vals[0] = ConstFalse
	known[0] = true
	copy(vals[1:5], ins[:])
	known[1], known[2], known[3], known[4] = true, true, true, true
	added := 0
	for i, st := range p.steps {
		sa, sb := st[0]>>1, st[1]>>1
		if known[sa] && known[sb] {
			a := vals[sa].XorCompl(st[0]&1 == 1)
			b := vals[sb].XorCompl(st[1]&1 == 1)
			if l, ok := g.probeAnd(a, b); ok {
				vals[5+i] = l
				known[5+i] = true
				if onReuse != nil && l.Node() != 0 {
					onReuse(l.Node())
				}
				continue
			}
		}
		added++
	}
	return added
}

// probeAnd mirrors And's folding and hashing without creating a node:
// it reports the edge an And(a, b) call would return, when that edge
// already exists.
func (g *AIG) probeAnd(a, b Lit) (Lit, bool) {
	switch {
	case a == ConstFalse || b == ConstFalse || a == b.Not():
		return ConstFalse, true
	case a == ConstTrue:
		return b, true
	case b == ConstTrue || a == b:
		return a, true
	}
	if a > b {
		a, b = b, a
	}
	l, ok := g.strash[strashKey(a, b)]
	return l, ok
}

// synthPrograms builds the replacement structures for one class
// representative: the ISOP-factored forms of the function and of its
// complement (re-complemented at the root), each compressed by
// Balance/Cleanup, smaller first. Structurally identical programs
// collapse to one.
func synthPrograms(tt uint16) []*npnProgram {
	var progs []*npnProgram
	for pol := 0; pol < 2; pol++ {
		t := tt
		if pol == 1 {
			t = ^tt
		}
		s := New()
		var ins [4]Lit
		for i := range ins {
			ins[i] = s.AddPI([4]string{"v0", "v1", "v2", "v3"}[i])
		}
		root := buildSOP(s, ins, isop16(t))
		s.AddPO("f", root)
		s = Compress(s)
		progs = append(progs, compileProgram(s, s.PO(0).XorCompl(pol == 1)))
	}
	if sameProgram(progs[0], progs[1]) {
		return progs[:1]
	}
	if len(progs[1].steps) < len(progs[0].steps) {
		progs[0], progs[1] = progs[1], progs[0]
	}
	return progs
}

// sameProgram reports structural identity of two programs.
func sameProgram(a, b *npnProgram) bool {
	if a.root != b.root || len(a.steps) != len(b.steps) {
		return false
	}
	for i := range a.steps {
		if a.steps[i] != b.steps[i] {
			return false
		}
	}
	return true
}

// buildSOP materializes a cube cover as a two-level AND/OR network
// (Balance flattens and rebalances it afterwards).
func buildSOP(g *AIG, ins [4]Lit, cover []sopCube) Lit {
	f := ConstFalse
	for _, c := range cover {
		term := ConstTrue
		for v := 0; v < 4; v++ {
			if c.mask>>v&1 == 0 {
				continue
			}
			term = g.And(term, ins[v].XorCompl(c.pol>>v&1 == 0))
		}
		f = g.Or(f, term)
	}
	return f
}

// compileProgram serializes the cone of root in g (a 4-PI scratch
// graph) into program form. Cone order is topological, so fanins are
// always compiled before their consumers.
func compileProgram(g *AIG, root Lit) *npnProgram {
	slot := make([]uint8, g.NumNodes())
	slot[0] = 0
	for i := 0; i < g.NumPIs(); i++ {
		slot[g.PI(i).Node()] = uint8(1 + i)
	}
	p := &npnProgram{}
	for _, idx := range g.ConeNodes([]Lit{root}) {
		if !g.IsAnd(idx) {
			continue
		}
		f0, f1 := g.Fanins(idx)
		ref := func(f Lit) uint8 {
			r := slot[f.Node()] << 1
			if f.Compl() {
				r |= 1
			}
			return r
		}
		p.steps = append(p.steps, [2]uint8{ref(f0), ref(f1)})
		slot[idx] = uint8(5 + len(p.steps) - 1)
	}
	p.root = slot[root.Node()] << 1
	if root.Compl() {
		p.root |= 1
	}
	if 5+len(p.steps) > npnMaxSlots {
		panic("aig: npn program exceeds slot budget")
	}
	return p
}

// --- ISOP ----------------------------------------------------------

// sopCube is one product term over up to four variables: mask bit v
// present means variable v appears, with polarity pol bit v (1 =
// positive literal).
type sopCube struct {
	mask, pol uint8
}

// isop16 computes an irredundant sum-of-products cover of a
// 4-variable function by the Minato-Morreale interval algorithm
// (lower bound = upper bound = t, so the cover computes t exactly).
func isop16(t uint16) []sopCube {
	cover, f := isopRec(t, t, 3)
	if f != t {
		panic("aig: isop cover mismatch")
	}
	return cover
}

func ttCof0(t uint16, v int) uint16 {
	s := uint(1) << uint(v)
	lo := t &^ projTT[v]
	return lo | lo<<s
}

func ttCof1(t uint16, v int) uint16 {
	s := uint(1) << uint(v)
	hi := t & projTT[v]
	return hi | hi>>s
}

// isopRec covers an interval [L, U] (any f with L ⊆ f ⊆ U is
// acceptable), returning the cover and its truth table.
func isopRec(L, U uint16, v int) ([]sopCube, uint16) {
	if L == 0 {
		return nil, 0
	}
	if U == 0xFFFF {
		return []sopCube{{}}, 0xFFFF
	}
	// Skip variables the interval does not depend on. The interval
	// cannot run out of variables: a variable-free L is constant, and
	// both constants hit the base cases above (L nonzero and
	// variable-free forces L = U = 0xFFFF).
	for ttCof0(L, v) == ttCof1(L, v) && ttCof0(U, v) == ttCof1(U, v) {
		v--
	}
	L0, L1 := ttCof0(L, v), ttCof1(L, v)
	U0, U1 := ttCof0(U, v), ttCof1(U, v)
	// Minterms only coverable with ¬x_v, then only with x_v, then the
	// leftovers coverable by cubes free of x_v.
	c0, f0 := isopRec(L0&^U1, U0, v-1)
	c1, f1 := isopRec(L1&^U0, U1, v-1)
	c2, f2 := isopRec(L0&^f0|L1&^f1, U0&U1, v-1)
	cover := make([]sopCube, 0, len(c0)+len(c1)+len(c2))
	for _, c := range c0 {
		c.mask |= 1 << uint(v)
		cover = append(cover, c)
	}
	for _, c := range c1 {
		c.mask |= 1 << uint(v)
		c.pol |= 1 << uint(v)
		cover = append(cover, c)
	}
	cover = append(cover, c2...)
	f := f2 | f0&^projTT[v] | f1&projTT[v]
	return cover, f
}
