package aig

import (
	"math/bits"
	"sort"
)

// This file implements bounded 4-feasible cut enumeration: for every
// node, a small set of leaf sets (≤ 4 leaves each) such that every
// path from the node to the inputs passes through a leaf, with the
// node's truth table over those leaves computed alongside. The
// rewriting pass canonicalizes each cut's truth table and tries the
// class replacement structure over the cut's leaves.

// cutMaxLeaves is the cut width: 4 matches the NPN library.
const cutMaxLeaves = 4

// defaultMaxCuts bounds the stored cuts per node (the trivial cut
// rides on top). ABC keeps 8 for rewriting; beyond that, merge cost
// grows quadratically for little gain.
const defaultMaxCuts = 8

// cut is one k-feasible cut of a node: the leaf node indices
// (ascending), a Bloom-style signature for fast subset tests, and the
// node's function over the leaves (leaf i = truth-table variable i).
type cut struct {
	leaves [cutMaxLeaves]int32
	n      int8
	sig    uint64
	tt     uint16
}

// trivialCut is the unit cut {n}: the node is its own leaf.
func trivialCut(n int) cut {
	return cut{leaves: [cutMaxLeaves]int32{int32(n)}, n: 1, sig: cutSigBit(n), tt: projTT[0]}
}

func cutSigBit(n int) uint64 { return 1 << (uint(n) & 63) }

// hasLeaf reports whether node m is one of the cut's leaves.
func (c *cut) hasLeaf(m int) bool {
	for i := int8(0); i < c.n; i++ {
		if c.leaves[i] == int32(m) {
			return true
		}
	}
	return false
}

// mergeLeaves unions two ascending leaf lists into dst, reporting
// failure when the union exceeds the cut width.
func mergeLeaves(a, b *cut, dst *cut) bool {
	i, j, k := int8(0), int8(0), int8(0)
	for i < a.n || j < b.n {
		if k == cutMaxLeaves {
			return false
		}
		switch {
		case j == b.n || (i < a.n && a.leaves[i] < b.leaves[j]):
			dst.leaves[k] = a.leaves[i]
			i++
		case i == a.n || b.leaves[j] < a.leaves[i]:
			dst.leaves[k] = b.leaves[j]
			j++
		default:
			dst.leaves[k] = a.leaves[i]
			i++
			j++
		}
		k++
	}
	dst.n = k
	dst.sig = a.sig | b.sig
	return true
}

// ttRemap re-expresses a cut truth table over a superset leaf list:
// pos[i] is the position of the sub-cut's i-th leaf in the merged
// leaf list.
func ttRemap(t uint16, nVars int, pos *[cutMaxLeaves]uint8) uint16 {
	var out uint16
	for m := 0; m < 16; m++ {
		idx := 0
		for i := 0; i < nVars; i++ {
			idx |= m >> pos[i] & 1 << uint(i)
		}
		if t>>idx&1 == 1 {
			out |= 1 << m
		}
	}
	return out
}

// enumerateCuts computes up to maxCuts non-trivial cuts per node,
// bottom-up. cuts[n][0] is always the trivial cut. Deterministic:
// candidate cuts are sorted by (size, leaf ids) and deduplicated /
// dominance-filtered in that order.
func enumerateCuts(g *AIG, maxCuts int) [][]cut {
	if maxCuts <= 0 {
		maxCuts = defaultMaxCuts
	}
	cuts := make([][]cut, g.NumNodes())
	cuts[0] = []cut{{tt: 0}} // constant: empty cut, constant-false TT
	var cand []cut
	for n := 1; n < g.NumNodes(); n++ {
		if !g.IsAnd(n) {
			cuts[n] = []cut{trivialCut(n)}
			continue
		}
		f0, f1 := g.Fanins(n)
		cand = cand[:0]
		for i := range cuts[f0.Node()] {
			c0 := &cuts[f0.Node()][i]
			for j := range cuts[f1.Node()] {
				c1 := &cuts[f1.Node()][j]
				if bits.OnesCount64(c0.sig|c1.sig) > cutMaxLeaves {
					continue
				}
				var m cut
				if !mergeLeaves(c0, c1, &m) {
					continue
				}
				m.tt = cutFaninTT(c0, &m, f0.Compl()) & cutFaninTT(c1, &m, f1.Compl())
				cand = append(cand, m)
			}
		}
		sort.Slice(cand, func(a, b int) bool {
			ca, cb := &cand[a], &cand[b]
			if ca.n != cb.n {
				return ca.n < cb.n
			}
			for i := int8(0); i < ca.n; i++ {
				if ca.leaves[i] != cb.leaves[i] {
					return ca.leaves[i] < cb.leaves[i]
				}
			}
			return false
		})
		// Dedup equal leaf sets, drop cuts dominated by an earlier
		// (smaller-or-equal, hence already kept) cut, cap the list.
		kept := make([]cut, 1, maxCuts+1)
		kept[0] = trivialCut(n)
		for i := range cand {
			if len(kept) > maxCuts {
				break
			}
			c := &cand[i]
			dominated := false
			for k := 1; k < len(kept); k++ {
				d := &kept[k]
				if d.sig&^c.sig == 0 && leavesSubset(d, c) {
					dominated = true // equal sets land here too
					break
				}
			}
			if !dominated {
				kept = append(kept, *c)
			}
		}
		cuts[n] = kept
	}
	return cuts
}

// cutFaninTT expresses a fanin edge's function over the merged leaf
// list m (a superset of the fanin cut's leaves).
func cutFaninTT(c *cut, m *cut, compl bool) uint16 {
	var pos [cutMaxLeaves]uint8
	for i := int8(0); i < c.n; i++ {
		for j := int8(0); j < m.n; j++ {
			if m.leaves[j] == c.leaves[i] {
				pos[i] = uint8(j)
				break
			}
		}
	}
	t := ttRemap(c.tt, int(c.n), &pos)
	if compl {
		t = ^t
	}
	return t
}

// leavesSubset reports whether a's leaves are all leaves of b.
func leavesSubset(a, b *cut) bool {
	i, j := int8(0), int8(0)
	for i < a.n {
		if j == b.n {
			return false
		}
		switch {
		case a.leaves[i] == b.leaves[j]:
			i++
			j++
		case a.leaves[i] > b.leaves[j]:
			j++
		default:
			return false
		}
	}
	return true
}
