package aig

import "sort"

// Cleanup rebuilds the AIG keeping only the logic in the primary
// output cones. Dangling nodes disappear and the structural hash is
// rebuilt. PI names, order and count are preserved (even for unused
// inputs), so the interface does not change.
func Cleanup(g *AIG) *AIG {
	ng := New()
	piMap := make([]Lit, g.NumPIs())
	for i := range piMap {
		piMap[i] = ng.AddPI(g.PIName(i))
	}
	roots := make([]Lit, g.NumPOs())
	for i := range roots {
		roots[i] = g.PO(i)
	}
	outs := Transfer(ng, g, piMap, roots)
	for i, o := range outs {
		ng.AddPO(g.POName(i), o)
	}
	return ng
}

// Balance rebuilds the AIG with AND trees restructured to minimal
// depth (the classic "balance" pass): maximal fanout-free conjunction
// trees are flattened into their operand lists and rebuilt by always
// pairing the two shallowest operands. Functionality is preserved;
// depth typically drops, node count never grows beyond the original
// tree sizes.
func Balance(g *AIG) *AIG {
	fanout := g.FanoutCounts()
	ng := New()
	level := []int{0} // per ng node
	mapped := make([]Lit, g.NumNodes())
	done := make([]bool, g.NumNodes())
	mapped[0] = ConstFalse
	done[0] = true
	for i := 0; i < g.NumPIs(); i++ {
		mapped[g.PI(i).Node()] = ng.AddPI(g.PIName(i))
		level = append(level, 0)
		done[g.PI(i).Node()] = true
	}
	edgeLevel := func(l Lit) int { return level[l.Node()] }
	andTracked := func(a, b Lit) Lit {
		r := ng.And(a, b)
		for len(level) < ng.NumNodes() {
			// The And may have created one node; its level is one more
			// than its deepest fanin.
			la, lb := edgeLevel(a), edgeLevel(b)
			if lb > la {
				la = lb
			}
			level = append(level, la+1)
		}
		return r
	}

	// collectOperands flattens the conjunction tree hanging off edge
	// f: descend through positive edges into single-fanout AND nodes.
	var collectOperands func(f Lit, out *[]Lit)
	collectOperands = func(f Lit, out *[]Lit) {
		n := f.Node()
		if f.Compl() || !g.IsAnd(n) || fanout[n] != 1 {
			*out = append(*out, f)
			return
		}
		f0, f1 := g.Fanins(n)
		collectOperands(f0, out)
		collectOperands(f1, out)
	}

	// Determine which AND nodes become tree roots.
	roots := make([]Lit, g.NumPOs())
	for i := range roots {
		roots[i] = g.PO(i)
	}
	needed := make([]bool, g.NumNodes())
	var mark func(f Lit)
	mark = func(f Lit) {
		n := f.Node()
		if needed[n] || !g.IsAnd(n) {
			return
		}
		needed[n] = true
		var ops []Lit
		f0, f1 := g.Fanins(n)
		collectOperands(f0, &ops)
		collectOperands(f1, &ops)
		for _, op := range ops {
			mark(op)
		}
	}
	for _, r := range roots {
		mark(r)
		// The PO node itself must be materialized even when it sits
		// inside a fanout-free tree.
	}

	// Rebuild in topological (index) order.
	for n := 1; n < g.NumNodes(); n++ {
		if !g.IsAnd(n) || !needed[n] || done[n] {
			continue
		}
		var ops []Lit
		f0, f1 := g.Fanins(n)
		collectOperands(f0, &ops)
		collectOperands(f1, &ops)
		// Map operands into ng.
		edges := make([]Lit, len(ops))
		for i, op := range ops {
			edges[i] = mapped[op.Node()].XorCompl(op.Compl())
		}
		// Pair shallowest first (stable on ties for determinism).
		for len(edges) > 1 {
			sort.SliceStable(edges, func(a, b int) bool {
				return edgeLevel(edges[a]) < edgeLevel(edges[b])
			})
			e := andTracked(edges[0], edges[1])
			edges = append([]Lit{e}, edges[2:]...)
		}
		mapped[n] = edges[0]
		done[n] = true
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		ng.AddPO(g.POName(i), mapped[po.Node()].XorCompl(po.Compl()))
	}
	return ng
}

// Compress runs Balance followed by Cleanup — the light optimization
// pipeline the patch synthesizer applies after factoring.
func Compress(g *AIG) *AIG { return Cleanup(Balance(g)) }
