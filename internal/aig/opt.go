package aig

import "sort"

// Cleanup rebuilds the AIG keeping only the logic in the primary
// output cones. Dangling nodes disappear and the structural hash is
// rebuilt. PI names, order and count are preserved (even for unused
// inputs), so the interface does not change.
func Cleanup(g *AIG) *AIG {
	s := optPool.Get().(*optScratch)
	defer optPool.Put(s)
	ng := New()
	piMap := s.litSlice(g.NumPIs())
	for i := range piMap {
		piMap[i] = ng.AddPI(g.PIName(i))
	}
	outs := Transfer(ng, g, piMap, g.pos)
	for i, o := range outs {
		ng.AddPO(g.POName(i), o)
	}
	return ng
}

// Balance rebuilds the AIG with AND trees restructured to minimal
// depth (the classic "balance" pass): maximal fanout-free conjunction
// trees are flattened into their operand lists and rebuilt by always
// pairing the two shallowest operands. Functionality is preserved;
// depth typically drops, node count never grows beyond the original
// tree sizes.
func Balance(g *AIG) *AIG {
	s := optPool.Get().(*optScratch)
	defer optPool.Put(s)
	fanout := fanoutInto(g, &s.ints)
	ng := New()
	level := append(s.ints2[:0], 0) // per ng node
	mapped := s.litSlice(g.NumNodes())
	s.resetMarks(g.NumNodes())  // done: mapped[n] is valid
	s.resetMarks2(g.NumNodes()) // needed: n must be materialized
	mapped[0] = ConstFalse
	s.see(0)
	for i := 0; i < g.NumPIs(); i++ {
		mapped[g.PI(i).Node()] = ng.AddPI(g.PIName(i))
		level = append(level, 0)
		s.see(g.PI(i).Node())
	}
	edgeLevel := func(l Lit) int { return level[l.Node()] }
	andTracked := func(a, b Lit) Lit {
		r := ng.And(a, b)
		for len(level) < ng.NumNodes() {
			// The And may have created one node; its level is one more
			// than its deepest fanin.
			la, lb := edgeLevel(a), edgeLevel(b)
			if lb > la {
				la = lb
			}
			level = append(level, la+1)
		}
		return r
	}

	// collectOperands flattens the conjunction tree hanging off edge
	// f: descend through positive edges into single-fanout AND nodes.
	var collectOperands func(f Lit, out *[]Lit)
	collectOperands = func(f Lit, out *[]Lit) {
		n := f.Node()
		if f.Compl() || !g.IsAnd(n) || fanout[n] != 1 {
			*out = append(*out, f)
			return
		}
		f0, f1 := g.Fanins(n)
		collectOperands(f0, out)
		collectOperands(f1, out)
	}

	// Determine which AND nodes become tree roots (the PO node itself
	// must be materialized even when it sits inside a fanout-free
	// tree). Worklist instead of recursion so the operand buffer can
	// be reused per step.
	s.stack = s.stack[:0]
	for i := 0; i < g.NumPOs(); i++ {
		s.stack = append(s.stack, int32(g.PO(i).Node()))
	}
	for len(s.stack) > 0 {
		n := int(s.stack[len(s.stack)-1])
		s.stack = s.stack[:len(s.stack)-1]
		if !g.IsAnd(n) || s.seen2(n) {
			continue
		}
		s.see2(n)
		s.ops = s.ops[:0]
		f0, f1 := g.Fanins(n)
		collectOperands(f0, &s.ops)
		collectOperands(f1, &s.ops)
		for _, op := range s.ops {
			s.stack = append(s.stack, int32(op.Node()))
		}
	}

	// Rebuild in topological (index) order.
	for n := 1; n < g.NumNodes(); n++ {
		if !g.IsAnd(n) || !s.seen2(n) || s.seen(n) {
			continue
		}
		s.ops = s.ops[:0]
		f0, f1 := g.Fanins(n)
		collectOperands(f0, &s.ops)
		collectOperands(f1, &s.ops)
		// Map operands into ng.
		s.edges = s.edges[:0]
		for _, op := range s.ops {
			s.edges = append(s.edges, mapped[op.Node()].XorCompl(op.Compl()))
		}
		// Pair shallowest first (stable on ties for determinism). The
		// fresh edge takes the head slot of the in-place window, which
		// matches the prepend order the pass has always used.
		edges := s.edges
		for len(edges) > 1 {
			sort.SliceStable(edges, func(a, b int) bool {
				return edgeLevel(edges[a]) < edgeLevel(edges[b])
			})
			e := andTracked(edges[0], edges[1])
			edges[1] = e
			edges = edges[1:]
		}
		mapped[n] = edges[0]
		s.see(n)
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		ng.AddPO(g.POName(i), mapped[po.Node()].XorCompl(po.Compl()))
	}
	s.ints2 = level[:0]
	return ng
}

// Compress runs Balance followed by Cleanup — the light optimization
// pipeline the patch synthesizer applies after factoring.
func Compress(g *AIG) *AIG { return Cleanup(Balance(g)) }
