package aig

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDot renders the PO cones as a Graphviz digraph: PIs as boxes,
// AND nodes as circles, POs as double circles; dashed edges carry an
// inversion. Handy for debugging small patches.
func WriteDot(w io.Writer, g *AIG, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", name)
	fmt.Fprintln(bw, "  rankdir=BT;")
	roots := make([]Lit, g.NumPOs())
	for i := range roots {
		roots[i] = g.PO(i)
	}
	cone := g.ConeNodes(roots)
	for _, n := range cone {
		switch {
		case g.IsConst(n):
			fmt.Fprintf(bw, "  n%d [label=\"0\" shape=plaintext];\n", n)
		case g.IsPI(n):
			fmt.Fprintf(bw, "  n%d [label=%q shape=box];\n", n, g.PIName(g.PIIndex(n)))
		default:
			fmt.Fprintf(bw, "  n%d [label=\"∧\" shape=circle];\n", n)
			f0, f1 := g.Fanins(n)
			for _, f := range []Lit{f0, f1} {
				style := ""
				if f.Compl() {
					style = " [style=dashed]"
				}
				fmt.Fprintf(bw, "  n%d -> n%d%s;\n", f.Node(), n, style)
			}
		}
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		fmt.Fprintf(bw, "  o%d [label=%q shape=doublecircle];\n", i, g.POName(i))
		style := ""
		if po.Compl() {
			style = " [style=dashed]"
		}
		fmt.Fprintf(bw, "  n%d -> o%d%s;\n", po.Node(), i, style)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
