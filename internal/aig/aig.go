// Package aig implements And-Inverter Graphs: the circuit
// representation the ECO engine manipulates. Nodes are two-input AND
// gates; edges carry an optional complement (inversion) flag. The
// package provides structurally hashed construction (so equivalent
// AND gates are created once), constant folding, cone extraction,
// cofactoring and composition (Transfer), quantification by cofactor
// expansion, and 64-bit parallel simulation.
//
// Node 0 is the constant-false node. Primary inputs and AND nodes are
// appended after it; fanins always point to lower node indices, so
// node order is a topological order by construction.
package aig

import "fmt"

// Lit is an edge in the AIG: node index times two, plus one when the
// edge is complemented.
type Lit uint32

// Constant edges.
const (
	ConstFalse Lit = 0
	ConstTrue  Lit = 1
)

// MkLit builds the edge to node, complemented when compl is set.
func MkLit(node int, compl bool) Lit {
	l := Lit(node) << 1
	if compl {
		l |= 1
	}
	return l
}

// Node returns the node index of the edge.
func (l Lit) Node() int { return int(l >> 1) }

// Compl reports whether the edge is complemented.
func (l Lit) Compl() bool { return l&1 == 1 }

// Not returns the complemented edge.
func (l Lit) Not() Lit { return l ^ 1 }

// XorCompl complements the edge when c is true.
func (l Lit) XorCompl(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

// Regular strips the complement flag.
func (l Lit) Regular() Lit { return l &^ 1 }

func (l Lit) String() string {
	if l.Compl() {
		return fmt.Sprintf("!n%d", l.Node())
	}
	return fmt.Sprintf("n%d", l.Node())
}

// nodeKind discriminates the three node types.
type nodeKind uint8

const (
	kindConst nodeKind = iota
	kindPI
	kindAnd
)

type node struct {
	f0, f1 Lit
	kind   nodeKind
}

// AIG is a combinational And-Inverter Graph with named primary inputs
// and outputs. The zero value is not usable; construct with New.
type AIG struct {
	nodes  []node
	strash map[uint64]Lit

	pis     []int // node indices of PIs, in creation order
	piNames []string

	pos     []Lit
	poNames []string
}

// New returns an AIG containing only the constant node.
func New() *AIG {
	g := &AIG{strash: make(map[uint64]Lit)}
	g.nodes = append(g.nodes, node{kind: kindConst})
	return g
}

// NumNodes returns the total node count including the constant node.
func (g *AIG) NumNodes() int { return len(g.nodes) }

// NumAnds returns the number of AND nodes.
func (g *AIG) NumAnds() int { return len(g.nodes) - 1 - len(g.pis) }

// NumPIs returns the number of primary inputs.
func (g *AIG) NumPIs() int { return len(g.pis) }

// NumPOs returns the number of primary outputs.
func (g *AIG) NumPOs() int { return len(g.pos) }

// AddPI appends a primary input with the given name and returns its
// positive edge.
func (g *AIG) AddPI(name string) Lit {
	idx := len(g.nodes)
	g.nodes = append(g.nodes, node{kind: kindPI})
	g.pis = append(g.pis, idx)
	g.piNames = append(g.piNames, name)
	return MkLit(idx, false)
}

// AddPO appends a primary output driven by f.
func (g *AIG) AddPO(name string, f Lit) {
	g.pos = append(g.pos, f)
	g.poNames = append(g.poNames, name)
}

// PI returns the positive edge of the i-th primary input.
func (g *AIG) PI(i int) Lit { return MkLit(g.pis[i], false) }

// PIName returns the name of the i-th primary input.
func (g *AIG) PIName(i int) string { return g.piNames[i] }

// PIIndex returns, for a PI node index, its position among the PIs,
// or -1 if the node is not a PI.
func (g *AIG) PIIndex(nodeIdx int) int {
	for i, p := range g.pis {
		if p == nodeIdx {
			return i
		}
	}
	return -1
}

// PO returns the edge driving the i-th primary output.
func (g *AIG) PO(i int) Lit { return g.pos[i] }

// POName returns the name of the i-th primary output.
func (g *AIG) POName(i int) string { return g.poNames[i] }

// SetPO redirects the i-th primary output to f.
func (g *AIG) SetPO(i int, f Lit) { g.pos[i] = f }

// IsPI reports whether node idx is a primary input.
func (g *AIG) IsPI(idx int) bool { return g.nodes[idx].kind == kindPI }

// IsAnd reports whether node idx is an AND gate.
func (g *AIG) IsAnd(idx int) bool { return g.nodes[idx].kind == kindAnd }

// IsConst reports whether node idx is the constant node.
func (g *AIG) IsConst(idx int) bool { return g.nodes[idx].kind == kindConst }

// Fanins returns both fanin edges of an AND node.
func (g *AIG) Fanins(idx int) (Lit, Lit) {
	n := g.nodes[idx]
	return n.f0, n.f1
}

func strashKey(a, b Lit) uint64 { return uint64(a)<<32 | uint64(b) }

// And returns an edge computing a AND b, with constant folding and
// structural hashing.
func (g *AIG) And(a, b Lit) Lit {
	// Constant and trivial cases.
	switch {
	case a == ConstFalse || b == ConstFalse || a == b.Not():
		return ConstFalse
	case a == ConstTrue:
		return b
	case b == ConstTrue || a == b:
		return a
	}
	// Canonical order: smaller edge first.
	if a > b {
		a, b = b, a
	}
	key := strashKey(a, b)
	if l, ok := g.strash[key]; ok {
		return l
	}
	idx := len(g.nodes)
	g.nodes = append(g.nodes, node{f0: a, f1: b, kind: kindAnd})
	l := MkLit(idx, false)
	g.strash[key] = l
	return l
}

// Or returns a OR b.
func (g *AIG) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Nand returns NOT (a AND b).
func (g *AIG) Nand(a, b Lit) Lit { return g.And(a, b).Not() }

// Nor returns NOT (a OR b).
func (g *AIG) Nor(a, b Lit) Lit { return g.Or(a, b).Not() }

// Xor returns a XOR b.
func (g *AIG) Xor(a, b Lit) Lit {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Xnor returns NOT (a XOR b).
func (g *AIG) Xnor(a, b Lit) Lit { return g.Xor(a, b).Not() }

// Mux returns (sel ? t : e).
func (g *AIG) Mux(sel, t, e Lit) Lit {
	return g.Or(g.And(sel, t), g.And(sel.Not(), e))
}

// Implies returns (a -> b).
func (g *AIG) Implies(a, b Lit) Lit { return g.Or(a.Not(), b) }

// AndN folds And over all the given edges (true for none).
func (g *AIG) AndN(ls ...Lit) Lit {
	acc := ConstTrue
	for _, l := range ls {
		acc = g.And(acc, l)
	}
	return acc
}

// OrN folds Or over all the given edges (false for none).
func (g *AIG) OrN(ls ...Lit) Lit {
	acc := ConstFalse
	for _, l := range ls {
		acc = g.Or(acc, l)
	}
	return acc
}

// ConeNodes returns the node indices (ascending, hence topologically
// ordered) of all nodes in the transitive fanin cones of roots,
// including PI and constant nodes reached.
func (g *AIG) ConeNodes(roots []Lit) []int {
	s := optPool.Get().(*optScratch)
	defer optPool.Put(s)
	cone := s.coneInto(g, roots)
	out := make([]int, len(cone))
	for i, v := range cone {
		out[i] = int(v)
	}
	return out
}

// ConeSize returns the number of AND nodes in the cones of roots.
func (g *AIG) ConeSize(roots []Lit) int {
	n := 0
	for _, idx := range g.ConeNodes(roots) {
		if g.IsAnd(idx) {
			n++
		}
	}
	return n
}

// SupportPIs returns the PI positions (indices into the PI list) in
// the transitive fanin of roots.
func (g *AIG) SupportPIs(roots []Lit) []int {
	pos := make(map[int]int, len(g.pis))
	for i, p := range g.pis {
		pos[p] = i
	}
	var out []int
	for _, idx := range g.ConeNodes(roots) {
		if g.IsPI(idx) {
			out = append(out, pos[idx])
		}
	}
	return out
}

// Levels returns, for every node, its logic depth (PIs and the
// constant are level 0; an AND node is one more than its deepest
// fanin).
func (g *AIG) Levels() []int {
	lv := make([]int, len(g.nodes))
	for i, n := range g.nodes {
		if n.kind == kindAnd {
			l0, l1 := lv[n.f0.Node()], lv[n.f1.Node()]
			if l0 < l1 {
				l0 = l1
			}
			lv[i] = l0 + 1
		}
	}
	return lv
}

// FanoutCounts returns the number of fanout edges per node
// (PO references included).
func (g *AIG) FanoutCounts() []int {
	fc := make([]int, len(g.nodes))
	for _, n := range g.nodes {
		if n.kind == kindAnd {
			fc[n.f0.Node()]++
			fc[n.f1.Node()]++
		}
	}
	for _, p := range g.pos {
		fc[p.Node()]++
	}
	return fc
}
