package aig

import (
	"math/rand"
	"strings"
	"testing"
)

func assertSameFunction(t *testing.T, g1, g2 *AIG, rng *rand.Rand) {
	t.Helper()
	if g1.NumPIs() != g2.NumPIs() || g1.NumPOs() != g2.NumPOs() {
		t.Fatalf("interface changed: %d/%d PIs, %d/%d POs",
			g1.NumPIs(), g2.NumPIs(), g1.NumPOs(), g2.NumPOs())
	}
	for trial := 0; trial < 300; trial++ {
		in := make([]bool, g1.NumPIs())
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		o1, o2 := g1.Eval(in), g2.Eval(in)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("output %d differs at %v", i, in)
			}
		}
	}
}

func TestCleanupDropsDangling(t *testing.T) {
	g := New()
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	used := g.And(a, b)
	_ = g.And(g.And(a, c), b.Not()) // dangling logic
	g.AddPO("f", used)
	before := g.NumAnds()
	ng := Cleanup(g)
	if ng.NumAnds() >= before {
		t.Fatalf("cleanup kept dangling nodes: %d -> %d", before, ng.NumAnds())
	}
	if ng.NumPIs() != 3 {
		t.Fatal("cleanup must keep unused PIs for interface stability")
	}
	assertSameFunction(t, g, ng, rand.New(rand.NewSource(1)))
}

func TestBalanceReducesDepthOfChain(t *testing.T) {
	// A linear AND chain over 16 inputs has depth 15; balanced depth
	// is ceil(log2(16)) = 4.
	g := New()
	acc := g.AddPI("x0")
	for i := 1; i < 16; i++ {
		acc = g.And(acc, g.AddPI("x"+string(rune('a'+i))))
	}
	g.AddPO("f", acc)
	ng := Balance(g)
	depth := 0
	for _, l := range ng.Levels() {
		if l > depth {
			depth = l
		}
	}
	if depth != 4 {
		t.Fatalf("balanced depth = %d, want 4", depth)
	}
	assertSameFunction(t, g, ng, rand.New(rand.NewSource(2)))
}

func TestBalancePreservesRandomFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 30; iter++ {
		g := randomAIG(rng, 4+rng.Intn(4), 10+rng.Intn(60), 1+rng.Intn(3))
		ng := Balance(g)
		assertSameFunction(t, g, ng, rng)
		// Depth must never increase.
		d1, d2 := 0, 0
		for _, l := range g.Levels() {
			if l > d1 {
				d1 = l
			}
		}
		for _, l := range ng.Levels() {
			if l > d2 {
				d2 = l
			}
		}
		if d2 > d1 {
			t.Fatalf("iter %d: balance increased depth %d -> %d", iter, d1, d2)
		}
	}
}

func TestBalanceSharedNodesNotDuplicated(t *testing.T) {
	// A shared conjunction must stay shared, not be flattened into
	// both parents.
	g := New()
	a, b, c, d := g.AddPI("a"), g.AddPI("b"), g.AddPI("c"), g.AddPI("d")
	shared := g.And(a, b)
	f1 := g.And(shared, c)
	f2 := g.And(shared, d)
	g.AddPO("f1", f1)
	g.AddPO("f2", f2)
	ng := Balance(g)
	if ng.NumAnds() > g.NumAnds() {
		t.Fatalf("balance duplicated shared logic: %d -> %d ANDs", g.NumAnds(), ng.NumAnds())
	}
	assertSameFunction(t, g, ng, rand.New(rand.NewSource(4)))
}

func TestCompressPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomAIG(rng, 6, 80, 2)
	_ = g.And(g.PI(0), g.PI(1)) // dangling
	ng := Compress(g)
	assertSameFunction(t, g, ng, rng)
}

func TestBalanceConstantAndPassthrough(t *testing.T) {
	g := New()
	a := g.AddPI("a")
	g.AddPO("c0", ConstFalse)
	g.AddPO("c1", ConstTrue)
	g.AddPO("pass", a)
	g.AddPO("inv", a.Not())
	ng := Balance(g)
	assertSameFunction(t, g, ng, rand.New(rand.NewSource(6)))
}

func TestWriteDot(t *testing.T) {
	g := New()
	a, b := g.AddPI("a"), g.AddPI("b")
	g.AddPO("f", g.And(a, b.Not()).Not())
	var sb strings.Builder
	if err := WriteDot(&sb, g, "tiny"); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph", "shape=box", "doublecircle", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
}
