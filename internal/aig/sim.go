package aig

import "math/rand"

// evalNodes computes the value of every node for one input
// assignment. It reads the graph but never mutates it, so concurrent
// callers are safe as long as nobody is adding nodes.
func (g *AIG) evalNodes(inputs []bool) []bool {
	if len(inputs) != len(g.pis) {
		panic("aig: Eval input length mismatch")
	}
	val := make([]bool, len(g.nodes))
	for i, p := range g.pis {
		val[p] = inputs[i]
	}
	for idx, n := range g.nodes {
		if n.kind != kindAnd {
			continue
		}
		a := val[n.f0.Node()] != n.f0.Compl()
		b := val[n.f1.Node()] != n.f1.Compl()
		val[idx] = a && b
	}
	return val
}

// Eval evaluates all primary outputs for one input assignment.
// inputs[i] is the value of the i-th primary input.
func (g *AIG) Eval(inputs []bool) []bool {
	val := g.evalNodes(inputs)
	out := make([]bool, len(g.pos))
	for i, p := range g.pos {
		out[i] = val[p.Node()] != p.Compl()
	}
	return out
}

// EvalLit evaluates a single edge for one input assignment. Like
// Eval it is side-effect-free, so it may run concurrently with other
// read-only AIG operations (the sharded CEC path evaluates
// counterexamples from several workers against one shared miter).
func (g *AIG) EvalLit(l Lit, inputs []bool) bool {
	return g.evalNodes(inputs)[l.Node()] != l.Compl()
}

// SimWords runs 64 parallel input patterns. piWords[i] holds 64
// pattern bits for PI i. The returned slice holds one word per node,
// indexed by node id; read an edge's value with WordOf.
func (g *AIG) SimWords(piWords []uint64) []uint64 {
	if len(piWords) != len(g.pis) {
		panic("aig: SimWords input length mismatch")
	}
	val := make([]uint64, len(g.nodes))
	for i, p := range g.pis {
		val[p] = piWords[i]
	}
	for idx, n := range g.nodes {
		if n.kind != kindAnd {
			continue
		}
		a := val[n.f0.Node()]
		if n.f0.Compl() {
			a = ^a
		}
		b := val[n.f1.Node()]
		if n.f1.Compl() {
			b = ^b
		}
		val[idx] = a & b
	}
	return val
}

// WordOf reads the simulated word of edge l from a SimWords result.
func WordOf(words []uint64, l Lit) uint64 {
	w := words[l.Node()]
	if l.Compl() {
		return ^w
	}
	return w
}

// RandomSimWords generates one random 64-pattern word per PI using rng.
func (g *AIG) RandomSimWords(rng *rand.Rand) []uint64 {
	ws := make([]uint64, len(g.pis))
	for i := range ws {
		ws[i] = rng.Uint64()
	}
	return ws
}
