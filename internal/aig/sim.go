package aig

import "math/rand"

// Evaluator computes node values for single input assignments with a
// reusable buffer. One Eval pass makes every node readable through
// Lit, so callers probing many edges against one assignment (the
// sharded CEC merge path evaluating a counterexample against every
// output pair) pay the O(nodes) walk once instead of per edge — and
// repeated assignments reuse the buffer instead of allocating one per
// call. An Evaluator is single-goroutine; concurrent callers each
// build their own (the graph itself is only read).
type Evaluator struct {
	g   *AIG
	val []bool
}

// NewEvaluator builds an evaluator over g.
func NewEvaluator(g *AIG) *Evaluator { return &Evaluator{g: g} }

// Eval computes the value of every node for one input assignment;
// read edges with Lit afterwards. The graph may have grown since the
// last call — new nodes are picked up automatically.
func (ev *Evaluator) Eval(inputs []bool) {
	g := ev.g
	if len(inputs) != len(g.pis) {
		panic("aig: Eval input length mismatch")
	}
	if cap(ev.val) < len(g.nodes) {
		ev.val = make([]bool, len(g.nodes))
	}
	val := ev.val[:len(g.nodes)]
	ev.val = val
	for i, p := range g.pis {
		val[p] = inputs[i]
	}
	// Only PI and AND values are (re)written; the constant node keeps
	// its zero value from allocation and nothing else reads stale slots.
	for idx, n := range g.nodes {
		if n.kind != kindAnd {
			continue
		}
		a := val[n.f0.Node()] != n.f0.Compl()
		b := val[n.f1.Node()] != n.f1.Compl()
		val[idx] = a && b
	}
}

// Lit reads the value of edge l from the last Eval pass.
func (ev *Evaluator) Lit(l Lit) bool {
	return ev.val[l.Node()] != l.Compl()
}

// Eval evaluates all primary outputs for one input assignment.
// inputs[i] is the value of the i-th primary input.
func (g *AIG) Eval(inputs []bool) []bool {
	ev := NewEvaluator(g)
	ev.Eval(inputs)
	out := make([]bool, len(g.pos))
	for i, p := range g.pos {
		out[i] = ev.Lit(p)
	}
	return out
}

// EvalLit evaluates a single edge for one input assignment. It is
// side-effect-free, so it may run concurrently with other read-only
// AIG operations — but it allocates a fresh node buffer per call; use
// an Evaluator to amortize repeated evaluations.
func (g *AIG) EvalLit(l Lit, inputs []bool) bool {
	ev := NewEvaluator(g)
	ev.Eval(inputs)
	return ev.Lit(l)
}

// Simulator runs 64-pattern bit-parallel simulation with a reusable
// word buffer — the batched counterpart of Evaluator. Single-
// goroutine; the graph is only read.
type Simulator struct {
	g   *AIG
	val []uint64
}

// NewSimulator builds a simulator over g.
func NewSimulator(g *AIG) *Simulator { return &Simulator{g: g} }

// Run simulates 64 parallel input patterns. piWords[i] holds 64
// pattern bits for PI i. The returned slice holds one word per node,
// indexed by node id (read an edge with WordOf); it aliases the
// simulator's buffer and is only valid until the next Run.
func (sm *Simulator) Run(piWords []uint64) []uint64 {
	g := sm.g
	if len(piWords) != len(g.pis) {
		panic("aig: SimWords input length mismatch")
	}
	if cap(sm.val) < len(g.nodes) {
		sm.val = make([]uint64, len(g.nodes))
	}
	val := sm.val[:len(g.nodes)]
	sm.val = val
	for i, p := range g.pis {
		val[p] = piWords[i]
	}
	for idx, n := range g.nodes {
		if n.kind != kindAnd {
			continue
		}
		a := val[n.f0.Node()]
		if n.f0.Compl() {
			a = ^a
		}
		b := val[n.f1.Node()]
		if n.f1.Compl() {
			b = ^b
		}
		val[idx] = a & b
	}
	return val
}

// SimWords runs 64 parallel input patterns. piWords[i] holds 64
// pattern bits for PI i. The returned slice holds one word per node,
// indexed by node id; read an edge's value with WordOf. Allocates per
// call; use a Simulator to amortize repeated rounds.
func (g *AIG) SimWords(piWords []uint64) []uint64 {
	return NewSimulator(g).Run(piWords)
}

// WordOf reads the simulated word of edge l from a SimWords result.
func WordOf(words []uint64, l Lit) uint64 {
	w := words[l.Node()]
	if l.Compl() {
		return ^w
	}
	return w
}

// RandomSimWords generates one random 64-pattern word per PI using rng.
func (g *AIG) RandomSimWords(rng *rand.Rand) []uint64 {
	ws := make([]uint64, len(g.pis))
	for i := range ws {
		ws[i] = rng.Uint64()
	}
	return ws
}
