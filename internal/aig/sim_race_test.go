package aig

import (
	"sync"
	"testing"
)

// TestEvalLitConcurrent pins EvalLit's side-effect-free contract:
// concurrent EvalLit and Eval calls over one shared graph must not
// race (EvalLit used to temporarily swap g.pos, which tripped the
// race detector and could corrupt Eval results). Run under -race.
func TestEvalLitConcurrent(t *testing.T) {
	g := New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	x := g.Xor(g.And(a, b), c)
	y := g.Or(g.And(a, c), b.Not())
	g.AddPO("x", x)
	g.AddPO("y", y)

	inputs := [][]bool{
		{false, false, false},
		{true, false, true},
		{true, true, false},
		{true, true, true},
	}
	wantX := make([]bool, len(inputs))
	wantY := make([]bool, len(inputs))
	for i, in := range inputs {
		out := g.Eval(in)
		wantX[i], wantY[i] = out[0], out[1]
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				i := (w + iter) % len(inputs)
				if w%2 == 0 {
					if got := g.EvalLit(x, inputs[i]); got != wantX[i] {
						t.Errorf("EvalLit(x, %v) = %v, want %v", inputs[i], got, wantX[i])
						return
					}
					if got := g.EvalLit(y, inputs[i]); got != wantY[i] {
						t.Errorf("EvalLit(y, %v) = %v, want %v", inputs[i], got, wantY[i])
						return
					}
				} else {
					out := g.Eval(inputs[i])
					if out[0] != wantX[i] || out[1] != wantY[i] {
						t.Errorf("Eval(%v) = %v, want [%v %v]", inputs[i], out, wantX[i], wantY[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
