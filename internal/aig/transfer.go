package aig

// Transfer copies the cones of the given roots from src into dst,
// substituting piMap[i] (an edge in dst) for the i-th primary input of
// src. It returns the corresponding root edges in dst. Structural
// hashing in dst collapses any logic that becomes shared or constant.
//
// Transfer is the workhorse behind cofactoring, composition (plugging
// patch functions into targets), miter construction and quantifier
// expansion.
func Transfer(dst *AIG, src *AIG, piMap []Lit, roots []Lit) []Lit {
	if len(piMap) != src.NumPIs() {
		panic("aig: Transfer piMap length mismatch")
	}
	s := optPool.Get().(*optScratch)
	defer optPool.Put(s)
	cone := s.coneInto(src, roots)
	// The copy map is pooled and carries stale values; the mark set
	// says which entries are valid for this run.
	s.resetMarks(src.NumNodes())
	copyMap := s.litSlice(src.NumNodes())
	copyMap[0] = ConstFalse
	s.see(0)
	for i, p := range src.pis {
		copyMap[p] = piMap[i]
		s.see(p)
	}
	// Nodes are in topological order, so a single pass over the cone
	// suffices.
	for _, idx32 := range cone {
		idx := int(idx32)
		if s.seen(idx) {
			continue
		}
		n := src.nodes[idx]
		a := copyMap[n.f0.Node()].XorCompl(n.f0.Compl())
		b := copyMap[n.f1.Node()].XorCompl(n.f1.Compl())
		copyMap[idx] = dst.And(a, b)
		s.see(idx)
	}
	out := make([]Lit, len(roots))
	for i, r := range roots {
		out[i] = copyMap[r.Node()].XorCompl(r.Compl())
	}
	return out
}

// IdentityMap returns the PI map that plugs src's PIs one-to-one onto
// the first src.NumPIs() PIs of dst (creating them in dst with src's
// names if dst has fewer).
func IdentityMap(dst, src *AIG) []Lit {
	m := make([]Lit, src.NumPIs())
	for i := range m {
		if i < dst.NumPIs() {
			m[i] = dst.PI(i)
		} else {
			m[i] = dst.AddPI(src.PIName(i))
		}
	}
	return m
}

// Clone returns a deep copy of g (with structural hashing rebuilt).
func Clone(g *AIG) *AIG {
	ng := New()
	m := IdentityMap(ng, g)
	outs := Transfer(ng, g, m, g.pos)
	for i, o := range outs {
		ng.AddPO(g.POName(i), o)
	}
	return ng
}

// Cofactor returns, in dst, the roots of src with the PIs listed in
// fixed set to the given constants and all other PIs mapped through
// piMap (see Transfer).
func Cofactor(dst *AIG, src *AIG, piMap []Lit, fixed map[int]bool, roots []Lit) []Lit {
	m := make([]Lit, len(piMap))
	copy(m, piMap)
	for i, v := range fixed {
		if v {
			m[i] = ConstTrue
		} else {
			m[i] = ConstFalse
		}
	}
	return Transfer(dst, src, m, roots)
}

// UnivQuant builds, in dst, the universal quantification of the roots
// of src over the PI positions in quantVars: the AND over all 2^k
// cofactors. Other PIs are mapped through piMap. For a single root it
// returns one edge per root position (AND across cofactors per root).
//
// The expansion is exponential in len(quantVars); callers cap k and
// fall back to move-guided quantification (see internal/eco) beyond
// that.
func UnivQuant(dst *AIG, src *AIG, piMap []Lit, quantVars []int, roots []Lit) []Lit {
	out := make([]Lit, len(roots))
	for i := range out {
		out[i] = ConstTrue
	}
	k := len(quantVars)
	fixed := make(map[int]bool, k)
	for m := 0; m < 1<<uint(k); m++ {
		for j, v := range quantVars {
			fixed[v] = m>>uint(j)&1 == 1
		}
		co := Cofactor(dst, src, piMap, fixed, roots)
		for i := range out {
			out[i] = dst.And(out[i], co[i])
		}
	}
	return out
}

// ExistQuant is the dual of UnivQuant: OR over all cofactors.
func ExistQuant(dst *AIG, src *AIG, piMap []Lit, quantVars []int, roots []Lit) []Lit {
	out := make([]Lit, len(roots))
	for i := range out {
		out[i] = ConstFalse
	}
	k := len(quantVars)
	fixed := make(map[int]bool, k)
	for m := 0; m < 1<<uint(k); m++ {
		for j, v := range quantVars {
			fixed[v] = m>>uint(j)&1 == 1
		}
		co := Cofactor(dst, src, piMap, fixed, roots)
		for i := range out {
			out[i] = dst.Or(out[i], co[i])
		}
	}
	return out
}
