package aig

import (
	"math/rand"
	"testing"
)

// TestNPNClassCount pins the classic result: the 65536 4-variable
// functions fall into exactly 222 NPN classes.
func TestNPNClassCount(t *testing.T) {
	classes := NPNClasses()
	if len(classes) != 222 {
		t.Fatalf("got %d NPN classes, want 222", len(classes))
	}
	for i := 1; i < len(classes); i++ {
		if classes[i] <= classes[i-1] {
			t.Fatalf("class list not strictly ascending at %d: %04x after %04x", i, classes[i], classes[i-1])
		}
	}
}

// TestNPNCanonExhaustive verifies, for every one of the 65536
// functions, that the recipe rebuilds the function from its canonical
// representative, that the representative is itself canonical, and
// that it is the orbit minimum (no function maps to a smaller rep
// than its own canon — checked implicitly by canon stability under
// the recipe round-trip plus generator closure spot checks).
func TestNPNCanonExhaustive(t *testing.T) {
	for f := 0; f < 1<<16; f++ {
		tt := uint16(f)
		canon, recipe := NPNCanon(tt)
		if got := recipe.Apply(canon); got != tt {
			t.Fatalf("recipe for %04x does not rebuild it: canon %04x, got %04x", tt, canon, got)
		}
		if c2, r2 := NPNCanon(canon); c2 != canon {
			t.Fatalf("canon %04x of %04x is not itself canonical (maps to %04x)", canon, tt, c2)
		} else if r2.Apply(c2) != canon {
			t.Fatalf("identity recipe broken for canon %04x", canon)
		}
		if canon > tt {
			t.Fatalf("canon %04x exceeds class member %04x (not the orbit minimum)", canon, tt)
		}
	}
}

// TestNPNCanonGeneratorClosure checks that every generator move lands
// in the same class: negating an input, swapping adjacent inputs, or
// negating the output never changes the canonical representative.
func TestNPNCanonGeneratorClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		tt := uint16(rng.Uint32())
		canon, _ := NPNCanon(tt)
		check := func(tt2 uint16, what string) {
			if c2, _ := NPNCanon(tt2); c2 != canon {
				t.Fatalf("%s of %04x changes class: %04x vs %04x", what, tt, c2, canon)
			}
		}
		check(^tt, "output negation")
		for k := 0; k < 4; k++ {
			check(ttFlipIn(tt, k), "input negation")
		}
		for k := 0; k < 3; k++ {
			check(ttSwapIn(tt, k), "input swap")
		}
	}
}

// evalProgramTT evaluates a replacement structure over the four
// projection inputs, yielding its truth table.
func evalProgramTT(p *npnProgram, negOut bool, ins [4]uint16) uint16 {
	vals := make([]uint16, 5+len(p.steps))
	vals[0] = 0
	copy(vals[1:5], ins[:])
	rd := func(r uint8) uint16 {
		v := vals[r>>1]
		if r&1 == 1 {
			v = ^v
		}
		return v
	}
	for i, st := range p.steps {
		vals[5+i] = rd(st[0]) & rd(st[1])
	}
	out := rd(p.root)
	if negOut {
		out = ^out
	}
	return out
}

// TestNPNLibraryReplay proves every stored replacement structure
// computes its class function, and — through the recipe — every one
// of the 65536 functions, both by direct truth-table evaluation of
// the program and by instantiating it in a real AIG.
func TestNPNLibraryReplay(t *testing.T) {
	for _, rep := range NPNClasses() {
		progs := npnProgramsFor(rep)
		if len(progs) == 0 {
			t.Fatalf("no library structure for class %04x", rep)
		}
		for pi, p := range progs {
			if got := evalProgramTT(p, false, projTT); got != rep {
				t.Fatalf("library structure %d for class %04x computes %04x", pi, rep, got)
			}
			// Instantiate in an AIG and simulate, to cover build().
			g := New()
			var ins [4]Lit
			for i := range ins {
				ins[i] = g.AddPI("v")
			}
			root := p.build(g, ins)
			words := g.SimWords([]uint64{uint64(projTT[0]), uint64(projTT[1]), uint64(projTT[2]), uint64(projTT[3])})
			if got := uint16(WordOf(words, root)); got != rep {
				t.Fatalf("AIG instantiation %d of class %04x computes %04x", pi, rep, got)
			}
		}
	}
}

// TestNPNRecipeBuild drives the full rewrite substitution path for
// every 4-variable function: canonicalize, instantiate the class
// structure through the recipe, and check the built AIG edge computes
// the original function. Skipped under -short: it is ~20 s of
// single-threaded table math with no concurrency for the race passes
// to observe.
func TestNPNRecipeBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 65536-function sweep")
	}
	g := New()
	var pis [4]Lit
	for i := range pis {
		pis[i] = g.AddPI("x")
	}
	piWords := []uint64{uint64(projTT[0]), uint64(projTT[1]), uint64(projTT[2]), uint64(projTT[3])}
	for f := 0; f < 1<<16; f++ {
		tt := uint16(f)
		canon, recipe := NPNCanon(tt)
		var ins [4]Lit
		for j := 0; j < 4; j++ {
			ins[j] = pis[recipe.Perm[j]].XorCompl(recipe.NegIn>>uint(j)&1 == 1)
		}
		for pi, prog := range npnProgramsFor(canon) {
			root := prog.build(g, ins).XorCompl(recipe.NegOut)
			words := g.SimWords(piWords)
			if got := uint16(WordOf(words, root)); got != tt {
				t.Fatalf("recipe build %d of %04x computes %04x (canon %04x)", pi, tt, got, canon)
			}
		}
	}
}

// TestIsop16 checks the ISOP cover evaluates back to its function for
// every 4-variable function.
func TestIsop16(t *testing.T) {
	for f := 0; f < 1<<16; f++ {
		tt := uint16(f)
		cover := isop16(tt)
		var got uint16
		for _, c := range cover {
			term := uint16(0xFFFF)
			for v := 0; v < 4; v++ {
				if c.mask>>v&1 == 0 {
					continue
				}
				if c.pol>>v&1 == 1 {
					term &= projTT[v]
				} else {
					term &= ^projTT[v]
				}
			}
			got |= term
		}
		if got != tt {
			t.Fatalf("isop16(%04x) covers %04x", tt, got)
		}
	}
}

// randomRichAIG builds a random DAG with nPI inputs and nAnd candidate
// AND steps (folding may produce fewer), plus a few POs.
func randomRichAIG(rng *rand.Rand, nPI, nAnd, nPO int) *AIG {
	g := New()
	var edges []Lit
	for i := 0; i < nPI; i++ {
		edges = append(edges, g.AddPI("x"))
	}
	for i := 0; i < nAnd; i++ {
		a := edges[rng.Intn(len(edges))].XorCompl(rng.Intn(2) == 1)
		b := edges[rng.Intn(len(edges))].XorCompl(rng.Intn(2) == 1)
		switch rng.Intn(4) {
		case 0:
			edges = append(edges, g.And(a, b))
		case 1:
			edges = append(edges, g.Or(a, b))
		case 2:
			edges = append(edges, g.Xor(a, b))
		default:
			c := edges[rng.Intn(len(edges))].XorCompl(rng.Intn(2) == 1)
			edges = append(edges, g.Mux(c, a, b))
		}
	}
	for i := 0; i < nPO; i++ {
		g.AddPO("y", edges[len(edges)-1-i%len(edges)].XorCompl(rng.Intn(2) == 1))
	}
	return g
}

// equalByExhaustiveSim checks two same-interface AIGs agree on every
// input assignment (inputs ≤ 16, exercised in 64-pattern words).
func equalByExhaustiveSim(t *testing.T, g1, g2 *AIG) {
	t.Helper()
	if g1.NumPIs() != g2.NumPIs() || g1.NumPOs() != g2.NumPOs() {
		t.Fatalf("interface mismatch: %d/%d PIs, %d/%d POs", g1.NumPIs(), g2.NumPIs(), g1.NumPOs(), g2.NumPOs())
	}
	nPI := g1.NumPIs()
	if nPI > 16 {
		t.Fatalf("too many PIs for exhaustive simulation: %d", nPI)
	}
	total := 1 << uint(nPI)
	s1, s2 := NewSimulator(g1), NewSimulator(g2)
	ws := make([]uint64, nPI)
	for base := 0; base < total; base += 64 {
		for p := 0; p < nPI; p++ {
			var w uint64
			for b := 0; b < 64 && base+b < total; b++ {
				if (base+b)>>uint(p)&1 == 1 {
					w |= 1 << uint(b)
				}
			}
			ws[p] = w
		}
		w1 := s1.Run(ws)
		w2 := s2.Run(ws)
		n := total - base
		if n > 64 {
			n = 64
		}
		mask := ^uint64(0) >> uint(64-n)
		for i := 0; i < g1.NumPOs(); i++ {
			v1 := WordOf(w1, g1.PO(i)) & mask
			v2 := WordOf(w2, g2.PO(i)) & mask
			if v1 != v2 {
				t.Fatalf("PO %d differs at assignments %d..%d: %016x vs %016x", i, base, base+n-1, v1, v2)
			}
		}
	}
}

// TestRewriteEquivalenceRandom pins soundness of the pass on random
// graphs by exhaustive simulation, and checks Rewrite/Optimize
// preserve the PI/PO interface.
func TestRewriteEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		nPI := 2 + rng.Intn(9)
		g := randomRichAIG(rng, nPI, 10+rng.Intn(120), 1+rng.Intn(3))
		for _, opt := range []RewriteOptions{{}, {ZeroGain: true}, {MaxCuts: 4}} {
			rw := Rewrite(g, opt)
			equalByExhaustiveSim(t, g, rw)
			o := OptimizeOpt(g, opt)
			equalByExhaustiveSim(t, g, o)
			if o.NumAnds() > Cleanup(g).NumAnds() {
				t.Fatalf("Optimize grew the graph: %d > %d", o.NumAnds(), Cleanup(g).NumAnds())
			}
			for i := 0; i < g.NumPIs(); i++ {
				if rw.PIName(i) != g.PIName(i) || o.PIName(i) != g.PIName(i) {
					t.Fatalf("PI name not preserved at %d", i)
				}
			}
		}
	}
}

// TestRewriteShrinks pins that the pass actually reduces redundant
// structure: a graph built with deliberately unshared/unbalanced
// logic must come out smaller.
func TestRewriteShrinks(t *testing.T) {
	g := New()
	var x [8]Lit
	for i := range x {
		x[i] = g.AddPI("x")
	}
	// XOR and XNOR of the same pair, built with structures the
	// structural hash cannot share — NPN rewriting can (XNOR is the
	// complement of the XOR class). Two pairs, separately consumed.
	f1 := g.Xor(x[0], x[1])
	f2 := g.Or(g.And(x[0], x[1]), g.And(x[0].Not(), x[1].Not()))
	f3 := g.Xor(x[2], x[3])
	f4 := g.Or(g.And(x[2], x[3]), g.And(x[2].Not(), x[3].Not()))
	g.AddPO("a", g.And(f1, x[4]))
	g.AddPO("b", g.And(f2, x[5]))
	g.AddPO("c", g.And(f3, x[6]))
	g.AddPO("d", g.And(f4, x[7]))
	before := Cleanup(g).NumAnds()
	after := Optimize(g).NumAnds()
	if after >= before {
		t.Fatalf("Optimize did not shrink: %d -> %d", before, after)
	}
	equalByExhaustiveSim(t, g, Optimize(g))
}

// TestRewriteDeterministic pins bit-for-bit reproducibility: two runs
// over the same graph produce identical node arrays and POs.
func TestRewriteDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomRichAIG(rng, 3+rng.Intn(8), 20+rng.Intn(150), 2)
		a := OptimizeOpt(g, RewriteOptions{ZeroGain: trial%2 == 1})
		b := OptimizeOpt(g, RewriteOptions{ZeroGain: trial%2 == 1})
		if !sameAIG(a, b) {
			t.Fatalf("trial %d: two Optimize runs differ structurally", trial)
		}
	}
}

// sameAIG reports structural identity (same nodes in the same order,
// same POs) — much stronger than equivalence.
func sameAIG(a, b *AIG) bool {
	if a.NumNodes() != b.NumNodes() || a.NumPOs() != b.NumPOs() || a.NumPIs() != b.NumPIs() {
		return false
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.nodes[i] != b.nodes[i] {
			return false
		}
	}
	for i := 0; i < a.NumPOs(); i++ {
		if a.PO(i) != b.PO(i) || a.POName(i) != b.POName(i) {
			return false
		}
	}
	return true
}

// TestCutEnumeration sanity-checks cut sets on a small graph: every
// cut's truth table must match exhaustive simulation of the node over
// its leaves.
func TestCutEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g := randomRichAIG(rng, 2+rng.Intn(5), 5+rng.Intn(60), 1)
		cuts := enumerateCuts(g, 8)
		sm := NewSimulator(g)
		for n := 1; n < g.NumNodes(); n++ {
			if !g.IsAnd(n) {
				continue
			}
			for ci, c := range cuts[n] {
				if ci == 0 {
					if c.n != 1 || c.leaves[0] != int32(n) || c.tt != projTT[0] {
						t.Fatalf("node %d: malformed trivial cut", n)
					}
					continue
				}
				// Simulate: leaves get projection words, check node word.
				ws := make([]uint64, g.NumPIs())
				// Drive leaves through their own cones: instead, verify by
				// 16 full evaluations over random non-leaf PI values.
				for p := range ws {
					ws[p] = rng.Uint64()
				}
				words := sm.Run(ws)
				// Build expected: evaluate node function by plugging leaf
				// words into the cut TT.
				var want uint64
				for b := 0; b < 64; b++ {
					idx := 0
					for i := int8(0); i < c.n; i++ {
						if words[c.leaves[i]]>>uint(b)&1 == 1 {
							idx |= 1 << uint(i)
						}
					}
					if c.tt>>uint(idx)&1 == 1 {
						want |= 1 << uint(b)
					}
				}
				if got := words[n]; got != want {
					t.Fatalf("node %d cut %d: TT disagrees with simulation", n, ci)
				}
			}
		}
	}
}

// FuzzRewrite generates a random AIG from the fuzz seed, rewrites it,
// and checks exhaustive-simulation equivalence (≤ 12 PIs).
func FuzzRewrite(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(40), false)
	f.Add(int64(99), uint8(12), uint8(200), true)
	f.Add(int64(3), uint8(2), uint8(5), false)
	f.Fuzz(func(t *testing.T, seed int64, nPI, nAnd uint8, zeroGain bool) {
		pi := 2 + int(nPI)%11 // 2..12
		rng := rand.New(rand.NewSource(seed))
		g := randomRichAIG(rng, pi, 1+int(nAnd), 1+rng.Intn(3))
		o := OptimizeOpt(g, RewriteOptions{ZeroGain: zeroGain})
		equalByExhaustiveSim(t, g, o)
		if o.NumAnds() > Cleanup(g).NumAnds() {
			t.Fatalf("Optimize grew the graph: %d > %d", o.NumAnds(), Cleanup(g).NumAnds())
		}
	})
}
