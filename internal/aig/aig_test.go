package aig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLitHelpers(t *testing.T) {
	l := MkLit(7, true)
	if l.Node() != 7 || !l.Compl() {
		t.Fatalf("MkLit roundtrip: %v", l)
	}
	if l.Not().Compl() || l.Not().Node() != 7 {
		t.Fatalf("Not: %v", l.Not())
	}
	if l.Regular().Compl() {
		t.Fatal("Regular kept complement")
	}
	if l.XorCompl(true) != l.Not() || l.XorCompl(false) != l {
		t.Fatal("XorCompl wrong")
	}
	if ConstTrue != ConstFalse.Not() {
		t.Fatal("constants inconsistent")
	}
	if MkLit(3, false).String() != "n3" || MkLit(3, true).String() != "!n3" {
		t.Fatal("String wrong")
	}
}

func TestConstantFolding(t *testing.T) {
	g := New()
	a := g.AddPI("a")
	cases := []struct {
		got, want Lit
		name      string
	}{
		{g.And(ConstFalse, a), ConstFalse, "0&a"},
		{g.And(a, ConstFalse), ConstFalse, "a&0"},
		{g.And(ConstTrue, a), a, "1&a"},
		{g.And(a, ConstTrue), a, "a&1"},
		{g.And(a, a), a, "a&a"},
		{g.And(a, a.Not()), ConstFalse, "a&!a"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
	if g.NumAnds() != 0 {
		t.Fatalf("folding created nodes: %d", g.NumAnds())
	}
}

func TestStructuralHashing(t *testing.T) {
	g := New()
	a, b := g.AddPI("a"), g.AddPI("b")
	x := g.And(a, b)
	y := g.And(b, a)
	if x != y {
		t.Fatal("commuted AND not hashed")
	}
	if g.NumAnds() != 1 {
		t.Fatalf("NumAnds = %d", g.NumAnds())
	}
	_ = g.Or(a, b)
	n := g.NumAnds()
	_ = g.Or(b, a)
	if g.NumAnds() != n {
		t.Fatal("commuted OR not hashed")
	}
}

func TestGateOperators(t *testing.T) {
	g := New()
	a, b, s := g.AddPI("a"), g.AddPI("b"), g.AddPI("s")
	and := g.And(a, b)
	or := g.Or(a, b)
	nand := g.Nand(a, b)
	nor := g.Nor(a, b)
	xor := g.Xor(a, b)
	xnor := g.Xnor(a, b)
	mux := g.Mux(s, a, b)
	impl := g.Implies(a, b)
	for _, out := range []struct {
		name string
		l    Lit
		f    func(av, bv, sv bool) bool
	}{
		{"and", and, func(av, bv, sv bool) bool { return av && bv }},
		{"or", or, func(av, bv, sv bool) bool { return av || bv }},
		{"nand", nand, func(av, bv, sv bool) bool { return !(av && bv) }},
		{"nor", nor, func(av, bv, sv bool) bool { return !(av || bv) }},
		{"xor", xor, func(av, bv, sv bool) bool { return av != bv }},
		{"xnor", xnor, func(av, bv, sv bool) bool { return av == bv }},
		{"mux", mux, func(av, bv, sv bool) bool {
			if sv {
				return av
			}
			return bv
		}},
		{"implies", impl, func(av, bv, sv bool) bool { return !av || bv }},
	} {
		for m := 0; m < 8; m++ {
			in := []bool{m&1 == 1, m&2 == 2, m&4 == 4}
			got := g.EvalLit(out.l, in)
			want := out.f(in[0], in[1], in[2])
			if got != want {
				t.Errorf("%s(%v): got %v, want %v", out.name, in, got, want)
			}
		}
	}
}

func TestAndNOrN(t *testing.T) {
	g := New()
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	if g.AndN() != ConstTrue || g.OrN() != ConstFalse {
		t.Fatal("empty folds wrong")
	}
	all := g.AndN(a, b, c)
	any := g.OrN(a, b, c)
	for m := 0; m < 8; m++ {
		in := []bool{m&1 == 1, m&2 == 2, m&4 == 4}
		if g.EvalLit(all, in) != (in[0] && in[1] && in[2]) {
			t.Fatalf("AndN(%v)", in)
		}
		if g.EvalLit(any, in) != (in[0] || in[1] || in[2]) {
			t.Fatalf("OrN(%v)", in)
		}
	}
}

func TestEvalFullAdder(t *testing.T) {
	g := New()
	a, b, cin := g.AddPI("a"), g.AddPI("b"), g.AddPI("cin")
	sum := g.Xor(g.Xor(a, b), cin)
	cout := g.Or(g.And(a, b), g.And(cin, g.Xor(a, b)))
	g.AddPO("sum", sum)
	g.AddPO("cout", cout)
	for m := 0; m < 8; m++ {
		in := []bool{m&1 == 1, m&2 == 2, m&4 == 4}
		out := g.Eval(in)
		n := 0
		for _, v := range in {
			if v {
				n++
			}
		}
		if out[0] != (n%2 == 1) {
			t.Fatalf("sum(%v) = %v", in, out[0])
		}
		if out[1] != (n >= 2) {
			t.Fatalf("cout(%v) = %v", in, out[1])
		}
	}
}

func TestSimWordsMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := New()
	var ins []Lit
	for i := 0; i < 8; i++ {
		ins = append(ins, g.AddPI("x"))
	}
	// Random structure.
	pool := append([]Lit(nil), ins...)
	for i := 0; i < 40; i++ {
		a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		pool = append(pool, g.And(a, b))
	}
	g.AddPO("f", pool[len(pool)-1])
	g.AddPO("g", pool[len(pool)-3])

	words := g.RandomSimWords(rng)
	simmed := g.SimWords(words)
	for bit := 0; bit < 64; bit++ {
		in := make([]bool, len(ins))
		for i := range in {
			in[i] = words[i]>>uint(bit)&1 == 1
		}
		out := g.Eval(in)
		for o := 0; o < g.NumPOs(); o++ {
			w := WordOf(simmed, g.PO(o))
			if (w>>uint(bit)&1 == 1) != out[o] {
				t.Fatalf("bit %d PO %d mismatch", bit, o)
			}
		}
	}
}

func TestConeAndSupport(t *testing.T) {
	g := New()
	a, b, c := g.AddPI("a"), g.AddPI("b"), g.AddPI("c")
	_ = c
	x := g.And(a, b)
	y := g.And(x, a.Not())
	if got := g.ConeSize([]Lit{y}); got != 2 {
		t.Fatalf("ConeSize = %d, want 2", got)
	}
	sup := g.SupportPIs([]Lit{y})
	if len(sup) != 2 {
		t.Fatalf("support = %v, want {0,1}", sup)
	}
	for _, s := range sup {
		if s != 0 && s != 1 {
			t.Fatalf("unexpected support PI %d", s)
		}
	}
	// Cone of a PI only contains the PI.
	if got := g.ConeSize([]Lit{a}); got != 0 {
		t.Fatalf("PI cone size = %d", got)
	}
}

func TestLevels(t *testing.T) {
	g := New()
	a, b := g.AddPI("a"), g.AddPI("b")
	x := g.And(a, b)
	y := g.And(x, b.Not())
	lv := g.Levels()
	if lv[a.Node()] != 0 || lv[b.Node()] != 0 {
		t.Fatal("PI levels must be 0")
	}
	if lv[x.Node()] != 1 || lv[y.Node()] != 2 {
		t.Fatalf("levels wrong: %v", lv)
	}
}

func TestFanoutCounts(t *testing.T) {
	g := New()
	a, b := g.AddPI("a"), g.AddPI("b")
	x := g.And(a, b)
	y := g.And(x, a.Not())
	g.AddPO("y", y)
	fc := g.FanoutCounts()
	if fc[a.Node()] != 2 {
		t.Fatalf("fanout(a) = %d, want 2", fc[a.Node()])
	}
	if fc[x.Node()] != 1 || fc[y.Node()] != 1 {
		t.Fatalf("fanouts wrong: %v", fc)
	}
}

func TestTransferIdentityPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := randomAIG(rng, 6, 30, 2)
	dst := New()
	m := IdentityMap(dst, src)
	outs := Transfer(dst, src, m, []Lit{src.PO(0), src.PO(1)})
	for trial := 0; trial < 100; trial++ {
		in := make([]bool, src.NumPIs())
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		want := src.Eval(in)
		for i, o := range outs {
			if got := dst.EvalLit(o, in); got != want[i] {
				t.Fatalf("transfer output %d differs on %v", i, in)
			}
		}
	}
}

func TestClone(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src := randomAIG(rng, 5, 20, 2)
	cp := Clone(src)
	if cp.NumPIs() != src.NumPIs() || cp.NumPOs() != src.NumPOs() {
		t.Fatal("clone shape mismatch")
	}
	if cp.PIName(0) != src.PIName(0) || cp.POName(0) != src.POName(0) {
		t.Fatal("clone names mismatch")
	}
	for trial := 0; trial < 64; trial++ {
		in := make([]bool, src.NumPIs())
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		w, g2 := src.Eval(in), cp.Eval(in)
		for i := range w {
			if w[i] != g2[i] {
				t.Fatalf("clone output %d differs", i)
			}
		}
	}
}

func TestCofactor(t *testing.T) {
	g := New()
	a, b := g.AddPI("a"), g.AddPI("b")
	f := g.Xor(a, b)
	dst := New()
	m := IdentityMap(dst, g)
	pos := Cofactor(dst, g, m, map[int]bool{0: true}, []Lit{f})  // a=1: f = !b
	neg := Cofactor(dst, g, m, map[int]bool{0: false}, []Lit{f}) // a=0: f = b
	for _, bv := range []bool{false, true} {
		in := []bool{false, bv}
		if dst.EvalLit(pos[0], in) != !bv {
			t.Fatalf("positive cofactor wrong for b=%v", bv)
		}
		if dst.EvalLit(neg[0], in) != bv {
			t.Fatalf("negative cofactor wrong for b=%v", bv)
		}
	}
}

func TestUnivExistQuant(t *testing.T) {
	// f = a XOR b. ∀a f = 0, ∃a f = 1.
	g := New()
	a, b := g.AddPI("a"), g.AddPI("b")
	f := g.Xor(a, b)
	dst := New()
	m := IdentityMap(dst, g)
	u := UnivQuant(dst, g, m, []int{0}, []Lit{f})
	e := ExistQuant(dst, g, m, []int{0}, []Lit{f})
	if u[0] != ConstFalse {
		t.Fatalf("∀a (a⊕b) should fold to false, got %v", u[0])
	}
	if e[0] != ConstTrue {
		t.Fatalf("∃a (a⊕b) should fold to true, got %v", e[0])
	}
	// g2 = a AND b: ∀a g2 = 0, ∃a g2 = b.
	g2 := g.And(a, b)
	u2 := UnivQuant(dst, g, m, []int{0}, []Lit{g2})
	e2 := ExistQuant(dst, g, m, []int{0}, []Lit{g2})
	if u2[0] != ConstFalse {
		t.Fatalf("∀a (a·b) = %v", u2[0])
	}
	for _, bv := range []bool{false, true} {
		if dst.EvalLit(e2[0], []bool{false, bv}) != bv {
			t.Fatalf("∃a (a·b) should equal b")
		}
	}
	// Quantifying both variables of XOR: ∀ = false, ∃ = true.
	u3 := UnivQuant(dst, g, m, []int{0, 1}, []Lit{f})
	e3 := ExistQuant(dst, g, m, []int{0, 1}, []Lit{f})
	if u3[0] != ConstFalse || e3[0] != ConstTrue {
		t.Fatalf("two-var quantification wrong: %v %v", u3[0], e3[0])
	}
}

// randomAIG builds a random AIG for property tests.
func randomAIG(rng *rand.Rand, nPI, nAnd, nPO int) *AIG {
	g := New()
	pool := []Lit{ConstTrue}
	for i := 0; i < nPI; i++ {
		pool = append(pool, g.AddPI("x"))
	}
	for i := 0; i < nAnd; i++ {
		a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		pool = append(pool, g.And(a, b))
	}
	for o := 0; o < nPO; o++ {
		g.AddPO("o", pool[len(pool)-1-o].XorCompl(rng.Intn(2) == 1))
	}
	return g
}

func TestPropertyDeMorgan(t *testing.T) {
	// Property: for random a, b edges in a random AIG,
	// !(a AND b) == (!a OR !b) as evaluated functions.
	f := func(seed int64, mask uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAIG(rng, 4, 10, 1)
		pool := []Lit{ConstTrue, g.PI(0), g.PI(1), g.PI(2), g.PI(3), g.PO(0)}
		a := pool[int(mask)%len(pool)]
		b := pool[int(mask>>4)%len(pool)]
		nand := g.And(a, b).Not()
		orn := g.Or(a.Not(), b.Not())
		for m := 0; m < 16; m++ {
			in := []bool{m&1 == 1, m&2 == 2, m&4 == 4, m&8 == 8}
			if g.EvalLit(nand, in) != g.EvalLit(orn, in) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransferComposes(t *testing.T) {
	// Property: transferring through an intermediate AIG preserves
	// functionality.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomAIG(rng, 5, 25, 1)
		mid := New()
		m1 := IdentityMap(mid, src)
		r1 := Transfer(mid, src, m1, []Lit{src.PO(0)})
		dst := New()
		m2 := IdentityMap(dst, mid)
		r2 := Transfer(dst, mid, m2, r1)
		for trial := 0; trial < 32; trial++ {
			in := make([]bool, 5)
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			if src.Eval(in)[0] != dst.EvalLit(r2[0], in) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPIIndexAndAccessors(t *testing.T) {
	g := New()
	a, b := g.AddPI("a"), g.AddPI("b")
	x := g.And(a, b)
	g.AddPO("x", x)
	if g.PIIndex(a.Node()) != 0 || g.PIIndex(b.Node()) != 1 {
		t.Fatal("PIIndex wrong")
	}
	if g.PIIndex(x.Node()) != -1 {
		t.Fatal("PIIndex of AND node should be -1")
	}
	if !g.IsAnd(x.Node()) || g.IsAnd(a.Node()) || !g.IsPI(a.Node()) || !g.IsConst(0) {
		t.Fatal("kind predicates wrong")
	}
	f0, f1 := g.Fanins(x.Node())
	if f0.Regular() != a && f1.Regular() != a {
		t.Fatal("fanins missing a")
	}
	g.SetPO(0, x.Not())
	if g.PO(0) != x.Not() {
		t.Fatal("SetPO failed")
	}
	if g.POName(0) != "x" || g.PIName(1) != "b" {
		t.Fatal("names wrong")
	}
}
