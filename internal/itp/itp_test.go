package itp

import (
	"math/rand"
	"testing"

	"ecopatch/internal/aig"
	"ecopatch/internal/sat"
)

// checkInterpolant verifies the two Craig properties by exhaustive
// enumeration over nVars total variables:
//   - every assignment satisfying A satisfies I (projected on shared),
//   - no assignment satisfies both I and B.
func checkInterpolant(t *testing.T, nVars int, aCl, bCl [][]sat.Lit, shared []sat.Var,
	g *aig.AIG, root aig.Lit, sharedEdge map[sat.Var]aig.Lit) {
	t.Helper()
	evalClauses := func(cls [][]sat.Lit, m int) bool {
		for _, c := range cls {
			ok := false
			for _, l := range c {
				if (m>>uint(l.Var())&1 == 1) != l.Sign() {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	for m := 0; m < 1<<uint(nVars); m++ {
		// Evaluate I on the shared projection.
		in := make([]bool, g.NumPIs())
		for i, v := range shared {
			_ = i
			e := sharedEdge[v]
			in[g.PIIndex(e.Node())] = m>>uint(v)&1 == 1
		}
		iv := g.EvalLit(root, in)
		if evalClauses(aCl, m) && !iv {
			t.Fatalf("A(%b) but not I: interpolant too strong", m)
		}
		if evalClauses(bCl, m) && iv {
			t.Fatalf("B(%b) and I: interpolant too weak", m)
		}
	}
}

// buildAndInterpolate adds A then B to a proof-logging solver and
// computes the interpolant if UNSAT. Returns ok=false when the
// combined formula is satisfiable.
func buildAndInterpolate(t *testing.T, nVars int, aCl, bCl [][]sat.Lit, shared []sat.Var) (ok bool) {
	t.Helper()
	s := sat.New()
	p := s.StartProof()
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	for _, c := range aCl {
		s.AddClause(c...)
	}
	p.BeginB()
	bOK := true
	for _, c := range bCl {
		if !s.AddClause(c...) {
			bOK = false
			break
		}
	}
	if bOK && s.Solve() != sat.Unsat {
		return false
	}
	g := aig.New()
	sharedEdge := make(map[sat.Var]aig.Lit)
	for _, v := range shared {
		sharedEdge[v] = g.AddPI("s")
	}
	root, err := Interpolant(p, g, sharedEdge)
	if err != nil {
		t.Fatalf("Interpolant: %v", err)
	}
	checkInterpolant(t, nVars, aCl, bCl, shared, g, root, sharedEdge)
	return true
}

func lit(v int, neg bool) sat.Lit { return sat.MkLit(sat.Var(v), neg) }

func TestSimpleInterpolant(t *testing.T) {
	// A: (x0) (¬x0 ∨ s)   [forces s]
	// B: (¬s ∨ x2) (¬x2)  [forces ¬s]
	// shared: s = var 1.
	aCl := [][]sat.Lit{{lit(0, false)}, {lit(0, true), lit(1, false)}}
	bCl := [][]sat.Lit{{lit(1, true), lit(2, false)}, {lit(2, true)}}
	if !buildAndInterpolate(t, 3, aCl, bCl, []sat.Var{1}) {
		t.Fatal("instance unexpectedly SAT")
	}
}

func TestInterpolantTwoSharedVars(t *testing.T) {
	// A forces s0 XOR s1 (via local var x0), B forces s0 == s1.
	// A: (x0∨s0∨s1)(x0∨¬s0∨¬s1)(¬x0∨s0∨s1)(¬x0∨¬s0∨¬s1)  => s0 xor s1
	aCl := [][]sat.Lit{
		{lit(2, false), lit(0, false), lit(1, false)},
		{lit(2, false), lit(0, true), lit(1, true)},
		{lit(2, true), lit(0, false), lit(1, false)},
		{lit(2, true), lit(0, true), lit(1, true)},
	}
	// B: (s0∨¬s1)(¬s0∨s1) => s0 == s1
	bCl := [][]sat.Lit{
		{lit(0, false), lit(1, true)},
		{lit(0, true), lit(1, false)},
	}
	if !buildAndInterpolate(t, 3, aCl, bCl, []sat.Var{0, 1}) {
		t.Fatal("instance unexpectedly SAT")
	}
}

func TestSatInstanceHasNoFinal(t *testing.T) {
	s := sat.New()
	p := s.StartProof()
	v := s.NewVar()
	s.AddClause(sat.PosLit(v))
	if s.Solve() != sat.Sat {
		t.Fatal("should be SAT")
	}
	g := aig.New()
	if _, err := Interpolant(p, g, nil); err == nil {
		t.Fatal("expected error for SAT instance")
	}
}

func TestRandomInterpolants(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	unsatSeen := 0
	for iter := 0; iter < 400 && unsatSeen < 60; iter++ {
		// Variables: 0..nShared-1 shared, then A-locals, then B-locals.
		nShared := 1 + rng.Intn(3)
		nALoc := rng.Intn(3)
		nBLoc := rng.Intn(3)
		nVars := nShared + nALoc + nBLoc
		randClause := func(local int, nLocal int) []sat.Lit {
			k := 1 + rng.Intn(3)
			c := make([]sat.Lit, 0, k)
			for j := 0; j < k; j++ {
				var v int
				if nLocal > 0 && rng.Intn(2) == 0 {
					v = local + rng.Intn(nLocal)
				} else {
					v = rng.Intn(nShared)
				}
				c = append(c, lit(v, rng.Intn(2) == 1))
			}
			return c
		}
		var aCl, bCl [][]sat.Lit
		for i := 0; i < 2+rng.Intn(6); i++ {
			aCl = append(aCl, randClause(nShared, nALoc))
		}
		for i := 0; i < 2+rng.Intn(6); i++ {
			bCl = append(bCl, randClause(nShared+nALoc, nBLoc))
		}
		shared := make([]sat.Var, nShared)
		for i := range shared {
			shared[i] = sat.Var(i)
		}
		if buildAndInterpolate(t, nVars, aCl, bCl, shared) {
			unsatSeen++
		}
	}
	if unsatSeen < 10 {
		t.Fatalf("only %d UNSAT instances; test too weak", unsatSeen)
	}
}

func TestInterpolantOfMiterIsPatchLike(t *testing.T) {
	// ECO-flavoured use: A = onset copy (f must be 1), B = offset copy
	// (f must be 0), shared = divisor variables. Take f = d0 & d1:
	// A says (d0,d1) is in the onset, B says it is in the offset;
	// interpolant must separate them, i.e. I(d) must itself be a
	// function with onset ⊇ {11} and offset ⊇ {00,01,10}: exactly AND.
	s := sat.New()
	p := s.StartProof()
	d0 := s.NewVar()
	d1 := s.NewVar()
	fA := s.NewVar() // A-local output var
	fB := s.NewVar() // B-local output var
	// A: fA <-> d0&d1, fA = 1.
	aCl := [][]sat.Lit{
		{sat.NegLit(fA), sat.PosLit(d0)},
		{sat.NegLit(fA), sat.PosLit(d1)},
		{sat.PosLit(fA), sat.NegLit(d0), sat.NegLit(d1)},
		{sat.PosLit(fA)},
	}
	for _, c := range aCl {
		s.AddClause(c...)
	}
	p.BeginB()
	bCl := [][]sat.Lit{
		{sat.NegLit(fB), sat.PosLit(d0)},
		{sat.NegLit(fB), sat.PosLit(d1)},
		{sat.PosLit(fB), sat.NegLit(d0), sat.NegLit(d1)},
		{sat.NegLit(fB)},
	}
	for _, c := range bCl {
		s.AddClause(c...)
	}
	if s.Solve() != sat.Unsat {
		t.Fatal("onset/offset overlap should be UNSAT")
	}
	g := aig.New()
	e0, e1 := g.AddPI("d0"), g.AddPI("d1")
	root, err := Interpolant(p, g, map[sat.Var]aig.Lit{d0: e0, d1: e1})
	if err != nil {
		t.Fatal(err)
	}
	// I must be exactly AND here (onset {11} forced, offset all others).
	for m := 0; m < 4; m++ {
		in := []bool{m&1 == 1, m&2 == 2}
		want := in[0] && in[1]
		if g.EvalLit(root, in) != want {
			t.Fatalf("interpolant(%v) = %v, want %v", in, g.EvalLit(root, in), want)
		}
	}
}

// TestXorChainInterpolant forces deep resolution proofs: A defines
// s = x1 ⊕ x2 ⊕ ... ⊕ xk through a chain of Tseitin-style XOR
// constraints, B asserts the complementary parity. The refutation
// exercises learnt-clause chains and the level-0 cone bookkeeping.
func TestXorChainInterpolant(t *testing.T) {
	for _, k := range []int{3, 5, 8} {
		s := sat.New()
		p := s.StartProof()
		// Variables: x1..xk (A-local), chain c1..ck with ck == shared s.
		xs := make([]sat.Var, k)
		for i := range xs {
			xs[i] = s.NewVar()
		}
		cs := make([]sat.Var, k)
		for i := range cs {
			cs[i] = s.NewVar()
		}
		addXorDef := func(z, a, b sat.Var) {
			// z = a ⊕ b
			s.AddClause(sat.NegLit(z), sat.PosLit(a), sat.PosLit(b))
			s.AddClause(sat.NegLit(z), sat.NegLit(a), sat.NegLit(b))
			s.AddClause(sat.PosLit(z), sat.NegLit(a), sat.PosLit(b))
			s.AddClause(sat.PosLit(z), sat.PosLit(a), sat.NegLit(b))
		}
		// c1 = x1 (buf), ci = c(i-1) ⊕ xi.
		s.AddClause(sat.NegLit(cs[0]), sat.PosLit(xs[0]))
		s.AddClause(sat.PosLit(cs[0]), sat.NegLit(xs[0]))
		for i := 1; i < k; i++ {
			addXorDef(cs[i], cs[i-1], xs[i])
		}
		// Pin all xs true so the parity of ck is k mod 2 — forced by A.
		for i := range xs {
			s.AddClause(sat.PosLit(xs[i]))
		}
		shared := cs[k-1]
		p.BeginB()
		// B asserts the opposite parity of the shared variable.
		if k%2 == 1 {
			s.AddClause(sat.NegLit(shared))
		} else {
			s.AddClause(sat.PosLit(shared))
		}
		if got := s.Solve(); got != sat.Unsat {
			t.Fatalf("k=%d: expected UNSAT, got %v", k, got)
		}
		g := aig.New()
		e := g.AddPI("s")
		root, err := Interpolant(p, g, map[sat.Var]aig.Lit{shared: e})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// The interpolant over {shared} must be exactly "shared has
		// the parity A forces": I(v) = v if k odd else !v.
		want := func(v bool) bool {
			if k%2 == 1 {
				return v
			}
			return !v
		}
		for _, v := range []bool{false, true} {
			if g.EvalLit(root, []bool{v}) != want(v) {
				t.Fatalf("k=%d: interpolant(%v) wrong", k, v)
			}
		}
	}
}
