// Package itp computes Craig interpolants from resolution refutations
// using McMillan's construction. The paper's predecessor [15] derives
// ECO patch functions as interpolants of the unsatisfiable two-copy
// miter (expression (3)); this package reproduces that baseline so the
// cube-enumeration method of §3.5 can be compared against "general
// interpolation" (experiment E7 in DESIGN.md).
package itp

import (
	"fmt"

	"ecopatch/internal/aig"
	"ecopatch/internal/sat"
)

// Interpolant builds, in dst, a circuit I over the shared variables
// such that A ⇒ I and I ∧ B is unsatisfiable, where A and B are the
// two clause partitions recorded in the proof. varEdge maps the shared
// SAT variables to dst edges; every shared variable occurring in the
// proof must be present.
func Interpolant(p *sat.Proof, dst *aig.AIG, varEdge map[sat.Var]aig.Lit) (aig.Lit, error) {
	if !p.HasFinal() {
		return 0, fmt.Errorf("itp: proof has no refutation (formula not proved UNSAT)")
	}
	global := p.GlobalVars()

	partial := make(map[int32]aig.Lit)
	litEdge := func(l sat.Lit) (aig.Lit, error) {
		e, ok := varEdge[l.Var()]
		if !ok {
			return 0, fmt.Errorf("itp: shared variable %d has no edge mapping", l.Var())
		}
		return e.XorCompl(l.Sign()), nil
	}

	// Collect the clause ids the final derivation transitively needs,
	// then process them in ascending id order (chains only reference
	// smaller ids), avoiding recursion on deep proofs.
	needed := make(map[int32]bool)
	work := append([]int32(nil), p.FinalChain...)
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		if needed[id] {
			continue
		}
		needed[id] = true
		if chain, _, ok := p.Chain(id); ok {
			work = append(work, chain...)
		}
	}
	order := make([]int32, 0, len(needed))
	for id := int32(1); id <= p.MaxID(); id++ {
		if needed[id] {
			order = append(order, id)
		}
	}

	itpOf := func(id int32) (aig.Lit, error) {
		e, ok := partial[id]
		if !ok {
			return 0, fmt.Errorf("itp: clause %d used before computed", id)
		}
		return e, nil
	}

	for _, id := range order {
		if p.RootPart(id) != 0 {
			var e aig.Lit
			switch p.RootPart(id) {
			case sat.PartA:
				e = aig.ConstFalse
				for _, l := range p.RootLits(id) {
					if global[l.Var()] {
						le, err := litEdge(l)
						if err != nil {
							return 0, err
						}
						e = dst.Or(e, le)
					}
				}
			case sat.PartB:
				e = aig.ConstTrue
			}
			partial[id] = e
			continue
		}
		chain, pivots, ok := p.Chain(id)
		if !ok {
			return 0, fmt.Errorf("itp: unknown clause id %d", id)
		}
		e, err := resolveChain(p, dst, global, chain, pivots, itpOf)
		if err != nil {
			return 0, err
		}
		partial[id] = e
	}

	return resolveChain(p, dst, global, p.FinalChain, p.FinalPivots, itpOf)
}

// resolveChain combines partial interpolants along one resolution
// chain: OR at A-local pivots, AND at global pivots (McMillan).
func resolveChain(p *sat.Proof, dst *aig.AIG, global map[sat.Var]bool,
	chain []int32, pivots []sat.Var, itpOf func(int32) (aig.Lit, error)) (aig.Lit, error) {
	if len(chain) == 0 {
		return 0, fmt.Errorf("itp: empty resolution chain")
	}
	if len(chain) != len(pivots)+1 {
		return 0, fmt.Errorf("itp: malformed chain: %d antecedents, %d pivots", len(chain), len(pivots))
	}
	acc, err := itpOf(chain[0])
	if err != nil {
		return 0, err
	}
	for k, id := range chain[1:] {
		next, err := itpOf(id)
		if err != nil {
			return 0, err
		}
		if global[pivots[k]] {
			acc = dst.And(acc, next)
		} else {
			acc = dst.Or(acc, next)
		}
	}
	return acc, nil
}
