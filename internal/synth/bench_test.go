package synth

import (
	"math/rand"
	"testing"

	"ecopatch/internal/aig"
)

// BenchmarkIsopTT measures truth-table ISOP over 6 variables.
func BenchmarkIsopTT(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	fs := make([]TT, 256)
	for i := range fs {
		fs[i] = TT(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := fs[i%len(fs)]
		IsopTT(f, f, 6)
	}
}

// BenchmarkFactor measures quick-factor synthesis of random covers.
func BenchmarkFactor(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	sops := make([]*SOP, 64)
	for i := range sops {
		s := NewSOP(12)
		for c := 0; c < 24; c++ {
			cb := NewCube(12)
			for v := 0; v < 12; v++ {
				cb[v] = CubeLit(rng.Intn(3))
			}
			s.AddCube(cb)
		}
		sops[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sops[i%len(sops)]
		g := aig.New()
		ins := make([]aig.Lit, s.NVars)
		for j := range ins {
			ins[j] = g.AddPI("x")
		}
		BuildAIG(g, ins, s)
	}
}

// BenchmarkRefactor measures the cone-resynthesis pass.
func BenchmarkRefactor(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	g := aig.New()
	pool := make([]aig.Lit, 0, 5016)
	for i := 0; i < 16; i++ {
		pool = append(pool, g.AddPI("x"))
	}
	for i := 0; i < 5000; i++ {
		x := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		y := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
		pool = append(pool, g.And(x, y))
	}
	g.AddPO("f", pool[len(pool)-1])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Refactor(g)
	}
}
