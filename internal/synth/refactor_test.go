package synth

import (
	"math/rand"
	"testing"

	"ecopatch/internal/aig"
)

func sameFunc(t *testing.T, g1, g2 *aig.AIG, rng *rand.Rand) {
	t.Helper()
	for trial := 0; trial < 300; trial++ {
		in := make([]bool, g1.NumPIs())
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		o1, o2 := g1.Eval(in), g2.Eval(in)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("output %d differs at %v", i, in)
			}
		}
	}
}

func TestRefactorShrinksRedundantCone(t *testing.T) {
	// Build a deliberately wasteful computation of a simple function:
	// f = a | b written as mux(a, or(a,b), and(b, or(a,b))) — lots of
	// fanout-free junk that collapses to a single OR after refactor.
	g := aig.New()
	a, b := g.AddPI("a"), g.AddPI("b")
	or1 := g.Or(a, b)
	f := g.Or(g.And(a, or1), g.And(a.Not(), g.And(b, g.Or(a, b.Not()).Not()).Not()))
	// f simplifies; exact function checked below against the original.
	g.AddPO("f", f)
	before := g.ConeSize([]aig.Lit{f})
	ng := Refactor(g)
	after := ng.ConeSize([]aig.Lit{ng.PO(0)})
	if after >= before {
		t.Fatalf("refactor did not shrink: %d -> %d", before, after)
	}
	sameFunc(t, g, ng, rand.New(rand.NewSource(1)))
}

func TestRefactorPreservesRandomFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 25; iter++ {
		g := aig.New()
		var pool []aig.Lit
		nPI := 4 + rng.Intn(4)
		for i := 0; i < nPI; i++ {
			pool = append(pool, g.AddPI("x"))
		}
		for i := 0; i < 20+rng.Intn(80); i++ {
			a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			pool = append(pool, g.And(a, b))
		}
		g.AddPO("f", pool[len(pool)-1])
		g.AddPO("h", pool[len(pool)-3].Not())
		ng := Refactor(g)
		sameFunc(t, g, ng, rng)
	}
}

func TestOptimizePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 10; iter++ {
		g := aig.New()
		var pool []aig.Lit
		for i := 0; i < 6; i++ {
			pool = append(pool, g.AddPI("x"))
		}
		for i := 0; i < 60; i++ {
			a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			pool = append(pool, g.And(a, b))
		}
		g.AddPO("f", pool[len(pool)-1])
		ng := Optimize(g)
		sameFunc(t, g, ng, rng)
		if ng.NumPIs() != g.NumPIs() || ng.NumPOs() != g.NumPOs() {
			t.Fatal("interface changed")
		}
	}
}

func TestRefactorXorChain(t *testing.T) {
	// XOR chains are the classic case where SOP-based refactoring must
	// not blow up: the trial synthesis guard keeps the original
	// structure when the SOP form is bigger.
	g := aig.New()
	acc := g.AddPI("x0")
	for i := 1; i < 12; i++ {
		acc = g.Xor(acc, g.AddPI("x"))
	}
	g.AddPO("f", acc)
	before := g.NumAnds()
	ng := Refactor(g)
	after := ng.ConeSize([]aig.Lit{ng.PO(0)})
	if after > before {
		t.Fatalf("refactor grew an XOR chain: %d -> %d", before, after)
	}
	sameFunc(t, g, ng, rand.New(rand.NewSource(4)))
}
