package synth

// CoverContains reports whether cube c is entirely covered by the
// union of the given cubes. It is the classical recursive tautology
// reduction: find a covering or intersecting cube and split c on one
// of its bound variables. maxSplits bounds the recursion (the check
// conservatively answers false when the budget runs out).
func CoverContains(cubes []Cube, c Cube, maxSplits int) bool {
	return coverContains(cubes, c, &maxSplits)
}

func coverContains(cubes []Cube, c Cube, budget *int) bool {
	if *budget <= 0 {
		return false
	}
	*budget--
	var splitVar = -1
	for _, o := range cubes {
		if o.Covers(c) {
			return true
		}
		if o.Disjoint(c) {
			continue
		}
		// o intersects c but does not cover it: some variable is
		// bound in o and free in c; split c there.
		for v := range c {
			if c[v] == Dash && o[v] != Dash {
				splitVar = v
				break
			}
		}
		if splitVar >= 0 {
			break
		}
	}
	if splitVar < 0 {
		// No cube covers c and every intersecting cube binds no new
		// variable — impossible unless nothing intersects: uncovered.
		return false
	}
	c0 := c.Clone()
	c0[splitVar] = Neg
	if !coverContains(cubes, c0, budget) {
		return false
	}
	c1 := c.Clone()
	c1[splitVar] = Pos
	return coverContains(cubes, c1, budget)
}

// MakeIrredundant removes cubes that are covered by the union of the
// remaining cubes (a stronger cleanup than RemoveContained, which
// only checks single-cube containment). Larger cubes are kept
// preferentially. The per-cube check budget keeps the pass linear-ish
// on large covers.
func (s *SOP) MakeIrredundant() {
	if len(s.Cubes) < 2 {
		return
	}
	// Try to remove the most-literal (smallest) cubes first.
	order := make([]int, len(s.Cubes))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by descending literal count (stable).
	for i := 1; i < len(order); i++ {
		x := order[i]
		j := i - 1
		for ; j >= 0 && s.Cubes[order[j]].NumLits() < s.Cubes[x].NumLits(); j-- {
			order[j+1] = order[j]
		}
		order[j+1] = x
	}
	removed := make([]bool, len(s.Cubes))
	for _, i := range order {
		var others []Cube
		for j, c := range s.Cubes {
			if j != i && !removed[j] {
				others = append(others, c)
			}
		}
		if len(others) == 0 {
			break
		}
		if CoverContains(others, s.Cubes[i], 2000) {
			removed[i] = true
		}
	}
	keep := s.Cubes[:0]
	for j, c := range s.Cubes {
		if !removed[j] {
			keep = append(keep, c)
		}
	}
	s.Cubes = keep
}
