package synth

import (
	"math/rand"
	"testing"
)

func TestCoverContainsBasic(t *testing.T) {
	// c = x0 covered by {x0&x1, x0&!x1}.
	c := cubeOf(2, map[int]CubeLit{0: Pos})
	cubes := []Cube{
		cubeOf(2, map[int]CubeLit{0: Pos, 1: Pos}),
		cubeOf(2, map[int]CubeLit{0: Pos, 1: Neg}),
	}
	if !CoverContains(cubes, c, 1000) {
		t.Fatal("split cover not detected")
	}
	// Not covered when one half is missing.
	if CoverContains(cubes[:1], c, 1000) {
		t.Fatal("half cover reported as full")
	}
	// Direct containment.
	if !CoverContains([]Cube{NewCube(2)}, c, 1000) {
		t.Fatal("universal cube must cover everything")
	}
	// Disjoint cube covers nothing.
	if CoverContains([]Cube{cubeOf(2, map[int]CubeLit{0: Neg})}, c, 1000) {
		t.Fatal("disjoint cube reported as covering")
	}
}

func TestCoverContainsBudget(t *testing.T) {
	c := NewCube(8)
	var cubes []Cube
	for m := 0; m < 256; m++ {
		cc := NewCube(8)
		for v := 0; v < 8; v++ {
			if m>>uint(v)&1 == 1 {
				cc[v] = Pos
			} else {
				cc[v] = Neg
			}
		}
		cubes = append(cubes, cc)
	}
	// Full minterm cover: covered with enough budget, "false" with a
	// tiny one (conservative).
	if !CoverContains(cubes, c, 1<<20) {
		t.Fatal("full minterm cover not detected")
	}
	if CoverContains(cubes, c, 3) {
		t.Fatal("budget-limited check must be conservative")
	}
}

func TestMakeIrredundantRemovesUnionCovered(t *testing.T) {
	// f = x0 + !x0&x1 + x1  — the middle term is inside x1; the last
	// two make "x1", and "x0&x1" style redundancies get caught too.
	s := NewSOP(2)
	s.AddCube(cubeOf(2, map[int]CubeLit{0: Pos}))
	s.AddCube(cubeOf(2, map[int]CubeLit{0: Neg, 1: Pos})) // ⊆ x0 ∪ x1
	s.AddCube(cubeOf(2, map[int]CubeLit{1: Pos}))
	before := make([]bool, 4)
	for m := 0; m < 4; m++ {
		before[m] = s.Eval([]bool{m&1 == 1, m&2 == 2})
	}
	s.MakeIrredundant()
	if len(s.Cubes) != 2 {
		t.Fatalf("cubes after irredundant: %d, want 2 (%s)", len(s.Cubes), s)
	}
	for m := 0; m < 4; m++ {
		if s.Eval([]bool{m&1 == 1, m&2 == 2}) != before[m] {
			t.Fatalf("function changed at %d", m)
		}
	}
}

func TestMakeIrredundantPreservesFunctionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 150; iter++ {
		nv := 2 + rng.Intn(5)
		s := NewSOP(nv)
		for i := 0; i < 1+rng.Intn(10); i++ {
			c := NewCube(nv)
			for v := 0; v < nv; v++ {
				c[v] = CubeLit(rng.Intn(3))
			}
			s.AddCube(c)
		}
		before := make([]bool, 1<<uint(nv))
		for m := range before {
			in := make([]bool, nv)
			for i := range in {
				in[i] = m>>uint(i)&1 == 1
			}
			before[m] = s.Eval(in)
		}
		nBefore := len(s.Cubes)
		s.MakeIrredundant()
		if len(s.Cubes) > nBefore {
			t.Fatal("irredundant grew the cover")
		}
		for m := range before {
			in := make([]bool, nv)
			for i := range in {
				in[i] = m>>uint(i)&1 == 1
			}
			if s.Eval(in) != before[m] {
				t.Fatalf("iter %d: function changed at minterm %d", iter, m)
			}
		}
	}
}
