package synth

import "ecopatch/internal/aig"

// BuildAIG synthesizes the SOP into dst as a factored multi-level
// circuit and returns the root edge. inputs[i] is the dst edge used
// for SOP variable i. The factoring is the classic "quick factor"
// algebraic division: extract the common cube, then divide by the
// most frequent literal recursively. Structural hashing in dst
// provides additional sharing.
func BuildAIG(dst *aig.AIG, inputs []aig.Lit, s *SOP) aig.Lit {
	if len(inputs) != s.NVars {
		panic("synth: BuildAIG input count mismatch")
	}
	if s.IsConstTrue() {
		return aig.ConstTrue
	}
	return factor(dst, inputs, s.Cubes)
}

// litEdge maps a (variable, polarity) pair to a dst edge.
func litEdge(inputs []aig.Lit, v int, pol CubeLit) aig.Lit {
	if pol == Neg {
		return inputs[v].Not()
	}
	return inputs[v]
}

func factor(dst *aig.AIG, inputs []aig.Lit, cubes []Cube) aig.Lit {
	switch len(cubes) {
	case 0:
		return aig.ConstFalse
	case 1:
		acc := aig.ConstTrue
		for v, pol := range cubes[0] {
			if pol != Dash {
				acc = dst.And(acc, litEdge(inputs, v, pol))
			}
		}
		return acc
	}
	// Common-cube extraction.
	common := cubes[0].Clone()
	for _, c := range cubes[1:] {
		for v := range common {
			if common[v] != Dash && common[v] != c[v] {
				common[v] = Dash
			}
		}
	}
	if common.NumLits() > 0 {
		rest := make([]Cube, len(cubes))
		for i, c := range cubes {
			r := c.Clone()
			for v, pol := range common {
				if pol != Dash {
					r[v] = Dash
				}
			}
			rest[i] = r
		}
		cc := aig.ConstTrue
		for v, pol := range common {
			if pol != Dash {
				cc = dst.And(cc, litEdge(inputs, v, pol))
			}
		}
		return dst.And(cc, factor(dst, inputs, rest))
	}
	// Best literal: highest occurrence count; ties broken by lowest
	// variable index and positive polarity for determinism.
	bestV, bestPol, bestCount := -1, Dash, 1
	nv := len(cubes[0])
	for v := 0; v < nv; v++ {
		posN, negN := 0, 0
		for _, c := range cubes {
			switch c[v] {
			case Pos:
				posN++
			case Neg:
				negN++
			}
		}
		if posN > bestCount {
			bestV, bestPol, bestCount = v, Pos, posN
		}
		if negN > bestCount {
			bestV, bestPol, bestCount = v, Neg, negN
		}
	}
	if bestV < 0 {
		// No literal occurs twice: plain OR of cube ANDs.
		acc := aig.ConstFalse
		for _, c := range cubes {
			acc = dst.Or(acc, factor(dst, inputs, []Cube{c}))
		}
		return acc
	}
	// Divide: F = l*Q + R.
	var quotient, remainder []Cube
	for _, c := range cubes {
		if c[bestV] == bestPol {
			q := c.Clone()
			q[bestV] = Dash
			quotient = append(quotient, q)
		} else {
			remainder = append(remainder, c)
		}
	}
	l := litEdge(inputs, bestV, bestPol)
	return dst.Or(dst.And(l, factor(dst, inputs, quotient)), factor(dst, inputs, remainder))
}

// FromOnset builds an SOP containing one full minterm cube per onset
// entry. Each onset entry is an assignment to all NVars variables.
func FromOnset(nVars int, onset [][]bool) *SOP {
	s := NewSOP(nVars)
	for _, m := range onset {
		c := NewCube(nVars)
		for i, v := range m {
			if v {
				c[i] = Pos
			} else {
				c[i] = Neg
			}
		}
		s.AddCube(c)
	}
	return s
}
