package synth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecopatch/internal/aig"
)

func cubeOf(n int, lits map[int]CubeLit) Cube {
	c := NewCube(n)
	for v, p := range lits {
		c[v] = p
	}
	return c
}

func TestCubeEval(t *testing.T) {
	c := cubeOf(3, map[int]CubeLit{0: Pos, 2: Neg}) // x0 & !x2
	cases := []struct {
		in   []bool
		want bool
	}{
		{[]bool{true, false, false}, true},
		{[]bool{true, true, false}, true},
		{[]bool{false, true, false}, false},
		{[]bool{true, true, true}, false},
	}
	for _, cs := range cases {
		if got := c.Eval(cs.in); got != cs.want {
			t.Errorf("Eval(%v) = %v, want %v", cs.in, got, cs.want)
		}
	}
	if NewCube(3).Eval([]bool{false, false, false}) != true {
		t.Error("universal cube must evaluate true")
	}
}

func TestCubeCoversDisjoint(t *testing.T) {
	a := cubeOf(3, map[int]CubeLit{0: Pos})         // x0
	b := cubeOf(3, map[int]CubeLit{0: Pos, 1: Neg}) // x0 & !x1
	c := cubeOf(3, map[int]CubeLit{0: Neg})         // !x0
	if !a.Covers(b) {
		t.Error("x0 must cover x0&!x1")
	}
	if b.Covers(a) {
		t.Error("x0&!x1 must not cover x0")
	}
	if !a.Covers(a) {
		t.Error("cube must cover itself")
	}
	if !a.Disjoint(c) || a.Disjoint(b) {
		t.Error("disjointness wrong")
	}
	if a.NumLits() != 1 || b.NumLits() != 2 {
		t.Error("NumLits wrong")
	}
}

func TestCubeString(t *testing.T) {
	c := cubeOf(3, map[int]CubeLit{0: Pos, 2: Neg})
	if c.String() != "x0&!x2" {
		t.Fatalf("String = %q", c.String())
	}
	if NewCube(2).String() != "1" {
		t.Fatalf("universal cube String = %q", NewCube(2).String())
	}
}

func TestSOPBasics(t *testing.T) {
	s := NewSOP(2)
	if !s.IsConstFalse() || s.String() != "0" {
		t.Fatal("empty SOP must be const false")
	}
	s.AddCube(NewCube(2))
	if !s.IsConstTrue() {
		t.Fatal("universal cube makes SOP const true")
	}
}

func TestRemoveContained(t *testing.T) {
	s := NewSOP(3)
	s.AddCube(cubeOf(3, map[int]CubeLit{0: Pos}))
	s.AddCube(cubeOf(3, map[int]CubeLit{0: Pos, 1: Neg})) // contained
	s.AddCube(cubeOf(3, map[int]CubeLit{2: Neg}))
	s.RemoveContained()
	if len(s.Cubes) != 2 {
		t.Fatalf("cubes after containment removal: %d, want 2: %s", len(s.Cubes), s)
	}
	// Duplicates: one must survive.
	d := NewSOP(2)
	d.AddCube(cubeOf(2, map[int]CubeLit{0: Pos}))
	d.AddCube(cubeOf(2, map[int]CubeLit{0: Pos}))
	d.RemoveContained()
	if len(d.Cubes) != 1 {
		t.Fatalf("duplicate cubes not merged: %d", len(d.Cubes))
	}
}

func TestSupport(t *testing.T) {
	s := NewSOP(4)
	s.AddCube(cubeOf(4, map[int]CubeLit{1: Pos}))
	s.AddCube(cubeOf(4, map[int]CubeLit{3: Neg}))
	sup := s.Support()
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 3 {
		t.Fatalf("support = %v", sup)
	}
}

// buildAndCompare factors the SOP into an AIG and checks exhaustive
// functional equality with direct SOP evaluation.
func buildAndCompare(t *testing.T, s *SOP) int {
	t.Helper()
	g := aig.New()
	inputs := make([]aig.Lit, s.NVars)
	for i := range inputs {
		inputs[i] = g.AddPI("x")
	}
	root := BuildAIG(g, inputs, s)
	for m := 0; m < 1<<uint(s.NVars); m++ {
		in := make([]bool, s.NVars)
		for i := range in {
			in[i] = m>>uint(i)&1 == 1
		}
		if g.EvalLit(root, in) != s.Eval(in) {
			t.Fatalf("factored AIG differs from SOP %q at %v", s, in)
		}
	}
	return g.ConeSize([]aig.Lit{root})
}

func TestBuildAIGSimple(t *testing.T) {
	// f = x0 x1 + x0 !x2 : common literal x0 should be factored.
	s := NewSOP(3)
	s.AddCube(cubeOf(3, map[int]CubeLit{0: Pos, 1: Pos}))
	s.AddCube(cubeOf(3, map[int]CubeLit{0: Pos, 2: Neg}))
	size := buildAndCompare(t, s)
	// Factored: x0 & (x1 | !x2) = 2 ANDs.
	if size > 2 {
		t.Fatalf("factored size %d, want <= 2", size)
	}
}

func TestBuildAIGConstants(t *testing.T) {
	g := aig.New()
	empty := NewSOP(0)
	if BuildAIG(g, nil, empty) != aig.ConstFalse {
		t.Fatal("empty SOP must synthesize to const false")
	}
	taut := NewSOP(2)
	taut.AddCube(NewCube(2))
	inputs := []aig.Lit{g.AddPI("a"), g.AddPI("b")}
	if BuildAIG(g, inputs, taut) != aig.ConstTrue {
		t.Fatal("tautology must synthesize to const true")
	}
}

func TestBuildAIGRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 100; iter++ {
		nv := 2 + rng.Intn(5)
		s := NewSOP(nv)
		nc := 1 + rng.Intn(8)
		for i := 0; i < nc; i++ {
			c := NewCube(nv)
			for v := 0; v < nv; v++ {
				switch rng.Intn(3) {
				case 0:
					c[v] = Pos
				case 1:
					c[v] = Neg
				}
			}
			s.AddCube(c)
		}
		buildAndCompare(t, s)
	}
}

func TestFactoringSharesLogic(t *testing.T) {
	// f = a b c + a b d + a b e : expect roughly a&b&(c|d|e), 4 ANDs,
	// far fewer than the flat 3*2+2 = 8.
	s := NewSOP(5)
	s.AddCube(cubeOf(5, map[int]CubeLit{0: Pos, 1: Pos, 2: Pos}))
	s.AddCube(cubeOf(5, map[int]CubeLit{0: Pos, 1: Pos, 3: Pos}))
	s.AddCube(cubeOf(5, map[int]CubeLit{0: Pos, 1: Pos, 4: Pos}))
	size := buildAndCompare(t, s)
	if size > 4 {
		t.Fatalf("factored size %d, want <= 4", size)
	}
}

func TestFromOnset(t *testing.T) {
	onset := [][]bool{{true, false}, {false, true}} // XOR onset
	s := FromOnset(2, onset)
	for m := 0; m < 4; m++ {
		in := []bool{m&1 == 1, m&2 == 2}
		if s.Eval(in) != (in[0] != in[1]) {
			t.Fatalf("FromOnset XOR wrong at %v", in)
		}
	}
}

func TestPropertyFactorPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(4)
		s := NewSOP(nv)
		for i := 0; i < 1+rng.Intn(6); i++ {
			c := NewCube(nv)
			for v := 0; v < nv; v++ {
				c[v] = CubeLit(rng.Intn(3))
			}
			s.AddCube(c)
		}
		g := aig.New()
		inputs := make([]aig.Lit, nv)
		for i := range inputs {
			inputs[i] = g.AddPI("x")
		}
		root := BuildAIG(g, inputs, s)
		for m := 0; m < 1<<uint(nv); m++ {
			in := make([]bool, nv)
			for i := range in {
				in[i] = m>>uint(i)&1 == 1
			}
			if g.EvalLit(root, in) != s.Eval(in) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveContainedPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(4)
		s := NewSOP(nv)
		for i := 0; i < 1+rng.Intn(8); i++ {
			c := NewCube(nv)
			for v := 0; v < nv; v++ {
				c[v] = CubeLit(rng.Intn(3))
			}
			s.AddCube(c)
		}
		before := make([]bool, 1<<uint(nv))
		for m := range before {
			in := make([]bool, nv)
			for i := range in {
				in[i] = m>>uint(i)&1 == 1
			}
			before[m] = s.Eval(in)
		}
		s.RemoveContained()
		for m := range before {
			in := make([]bool, nv)
			for i := range in {
				in[i] = m>>uint(i)&1 == 1
			}
			if s.Eval(in) != before[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
