// Package synth provides the logic-synthesis substrate for patch
// functions: Sum-Of-Products (SOP) cube algebra, single-cube
// containment, and algebraic factoring of an SOP into a multi-level
// AIG (the role ABC's factor/strash plays in the paper — §3.5: "The
// SOP expression is then factored and synthesized in ABC").
package synth

import (
	"strings"
)

// CubeLit is the polarity of one variable inside a cube.
type CubeLit int8

// Cube literal states.
const (
	Dash CubeLit = iota // variable absent
	Pos                 // positive literal
	Neg                 // negative literal
)

// Cube is a product term over NVars variables (one CubeLit per
// variable position).
type Cube []CubeLit

// NewCube returns the universal cube (all dashes) over n variables.
func NewCube(n int) Cube { return make(Cube, n) }

// Clone copies the cube.
func (c Cube) Clone() Cube { return append(Cube(nil), c...) }

// NumLits counts the literals in the cube.
func (c Cube) NumLits() int {
	n := 0
	for _, l := range c {
		if l != Dash {
			n++
		}
	}
	return n
}

// Eval evaluates the cube on an assignment.
func (c Cube) Eval(assign []bool) bool {
	for i, l := range c {
		switch l {
		case Pos:
			if !assign[i] {
				return false
			}
		case Neg:
			if assign[i] {
				return false
			}
		}
	}
	return true
}

// Covers reports whether c covers d: every minterm of d is a minterm
// of c, i.e. c's literal set is a subset of d's.
func (c Cube) Covers(d Cube) bool {
	for i, l := range c {
		if l != Dash && l != d[i] {
			return false
		}
	}
	return true
}

// Disjoint reports whether c and d share no minterm (some variable
// appears with opposite polarities).
func (c Cube) Disjoint(d Cube) bool {
	for i, l := range c {
		if l != Dash && d[i] != Dash && l != d[i] {
			return true
		}
	}
	return false
}

// String renders the cube using letters (x0, !x1, ...) joined by '&'.
func (c Cube) String() string {
	var parts []string
	for i, l := range c {
		switch l {
		case Pos:
			parts = append(parts, varName(i))
		case Neg:
			parts = append(parts, "!"+varName(i))
		}
	}
	if len(parts) == 0 {
		return "1"
	}
	return strings.Join(parts, "&")
}

func varName(i int) string {
	return "x" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [12]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// SOP is a sum (disjunction) of cubes over NVars variables.
type SOP struct {
	NVars int
	Cubes []Cube
}

// NewSOP returns an empty (constant-false) SOP.
func NewSOP(nVars int) *SOP { return &SOP{NVars: nVars} }

// AddCube appends a cube (it is not copied).
func (s *SOP) AddCube(c Cube) {
	if len(c) != s.NVars {
		panic("synth: cube width mismatch")
	}
	s.Cubes = append(s.Cubes, c)
}

// Eval evaluates the SOP on an assignment.
func (s *SOP) Eval(assign []bool) bool {
	for _, c := range s.Cubes {
		if c.Eval(assign) {
			return true
		}
	}
	return false
}

// IsConstFalse reports whether the SOP has no cubes.
func (s *SOP) IsConstFalse() bool { return len(s.Cubes) == 0 }

// IsConstTrue reports whether some cube is universal.
func (s *SOP) IsConstTrue() bool {
	for _, c := range s.Cubes {
		if c.NumLits() == 0 {
			return true
		}
	}
	return false
}

// NumLiterals counts literals over all cubes (a standard SOP cost).
func (s *SOP) NumLiterals() int {
	n := 0
	for _, c := range s.Cubes {
		n += c.NumLits()
	}
	return n
}

// RemoveContained drops cubes covered by another cube (single-cube
// containment), keeping the first of duplicates.
func (s *SOP) RemoveContained() {
	keep := s.Cubes[:0]
	for i, c := range s.Cubes {
		covered := false
		for j, d := range s.Cubes {
			if i == j {
				continue
			}
			if d.Covers(c) && !(c.Covers(d) && j > i) {
				covered = true
				break
			}
		}
		if !covered {
			keep = append(keep, c)
		}
	}
	s.Cubes = keep
}

// Support returns the variable positions used by at least one cube.
func (s *SOP) Support() []int {
	used := make([]bool, s.NVars)
	for _, c := range s.Cubes {
		for i, l := range c {
			if l != Dash {
				used[i] = true
			}
		}
	}
	var out []int
	for i, u := range used {
		if u {
			out = append(out, i)
		}
	}
	return out
}

// String renders the SOP as "cube + cube + ...".
func (s *SOP) String() string {
	if s.IsConstFalse() {
		return "0"
	}
	parts := make([]string, len(s.Cubes))
	for i, c := range s.Cubes {
		parts[i] = c.String()
	}
	return strings.Join(parts, " + ")
}
