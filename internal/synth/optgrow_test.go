package synth

import (
	"math/rand"
	"testing"

	"ecopatch/internal/aig"
)

func TestOptimizeNeverGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 30; iter++ {
		g := aig.New()
		var pool []aig.Lit
		for i := 0; i < 8; i++ {
			pool = append(pool, g.AddPI("x"))
		}
		for i := 0; i < 300; i++ {
			a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			pool = append(pool, g.And(a, b))
		}
		for o := 0; o < 3; o++ {
			g.AddPO("y", pool[len(pool)-1-o])
		}
		before := aig.Cleanup(g).NumAnds()
		after := Optimize(g).NumAnds()
		if after > before {
			t.Fatalf("iter %d: optimize grew %d -> %d", iter, before, after)
		}
	}
}
