package synth

// Truth-table utilities and the Minato-Morreale irredundant
// sum-of-products computation over functions of up to 6 variables
// (packed into one uint64). Used by the AIG refactoring pass to
// re-synthesize small cones.

// TT is a truth table over up to 6 variables: bit m holds f(m), with
// variable i contributing bit i of the minterm index m.
type TT uint64

// ttVarMasks[i] has bit m set iff minterm m has variable i = 1.
var ttVarMasks = [6]TT{
	0xaaaaaaaaaaaaaaaa,
	0xcccccccccccccccc,
	0xf0f0f0f0f0f0f0f0,
	0xff00ff00ff00ff00,
	0xffff0000ffff0000,
	0xffffffff00000000,
}

// ttSpace returns the mask of valid minterms for n variables.
func ttSpace(n int) TT {
	if n >= 6 {
		return ^TT(0)
	}
	return TT(1)<<(1<<uint(n)) - 1
}

// TTVar returns the truth table of variable i (within 6 vars).
func TTVar(i int) TT { return ttVarMasks[i] }

// Cofactor0 fixes variable v to 0 (result replicated over both
// halves so masks stay aligned).
func (t TT) Cofactor0(v int) TT {
	m := ttVarMasks[v]
	lo := t & ^TT(m)
	return lo | lo<<(1<<uint(v))
}

// Cofactor1 fixes variable v to 1.
func (t TT) Cofactor1(v int) TT {
	m := ttVarMasks[v]
	hi := t & TT(m)
	return hi | hi>>(1<<uint(v))
}

// DependsOn reports whether the function depends on variable v.
func (t TT) DependsOn(v int, nVars int) bool {
	space := ttSpace(nVars)
	return (t.Cofactor0(v)^t.Cofactor1(v))&space != 0
}

// EvalCubeTT returns the truth table of a cube over nVars variables.
func EvalCubeTT(c Cube) TT {
	t := ^TT(0)
	for v, pol := range c {
		switch pol {
		case Pos:
			t &= ttVarMasks[v]
		case Neg:
			t &= ^ttVarMasks[v]
		}
	}
	return t
}

// SOPToTT evaluates an SOP (over ≤6 variables) to a truth table.
func SOPToTT(s *SOP) TT {
	var t TT
	for _, c := range s.Cubes {
		t |= EvalCubeTT(c)
	}
	return t & ttSpace(s.NVars)
}

// IsopTT computes an irredundant sum-of-products cover F with
// lower ⊆ F ⊆ upper using the Minato-Morreale recursion. lower and
// upper are truth tables over nVars variables (lower ⊆ upper must
// hold; minterms in upper\lower are don't-cares).
func IsopTT(lower, upper TT, nVars int) *SOP {
	space := ttSpace(nVars)
	lower &= space
	upper &= space
	if lower&^upper != 0 {
		panic("synth: IsopTT lower not contained in upper")
	}
	s := NewSOP(nVars)
	cubes, _ := isopRec(lower, upper, nVars, nVars)
	s.Cubes = cubes
	return s
}

// isopRec returns the cover cubes and the function they compute.
func isopRec(lower, upper TT, v int, nVars int) ([]Cube, TT) {
	if lower == 0 {
		return nil, 0
	}
	space := ttSpace(nVars)
	if upper&space == space {
		return []Cube{NewCube(nVars)}, space
	}
	// Find the top variable both bounds depend on.
	v--
	for v >= 0 {
		if lower.DependsOn(v, nVars) || upper.DependsOn(v, nVars) {
			break
		}
		v--
	}
	if v < 0 {
		// No dependence but lower != 0 and upper != space: lower must
		// be constant-true over the space — handled above; reaching
		// here means lower ⊆ upper forces upper == space.
		return []Cube{NewCube(nVars)}, space
	}
	l0, l1 := lower.Cofactor0(v), lower.Cofactor1(v)
	u0, u1 := upper.Cofactor0(v), upper.Cofactor1(v)

	// Cubes that must carry literal ¬v / v.
	c0, f0 := isopRec(l0&^u1, u0, v, nVars)
	c1, f1 := isopRec(l1&^u0, u1, v, nVars)
	// Remaining onset handled without a v literal.
	lNew := (l0 &^ f0) | (l1 &^ f1)
	c2, f2 := isopRec(lNew, u0&u1, v, nVars)

	var out []Cube
	for _, c := range c0 {
		c[v] = Neg
		out = append(out, c)
	}
	for _, c := range c1 {
		c[v] = Pos
		out = append(out, c)
	}
	out = append(out, c2...)
	fn := (f0 & ^TT(ttVarMasks[v])) | (f1 & TT(ttVarMasks[v])) | f2
	return out, fn & ttSpace(nVars)
}
