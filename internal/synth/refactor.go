package synth

import "ecopatch/internal/aig"

// Refactor resynthesizes small fanout-free cones: each maximal cone
// with at most six leaves is collapsed to a truth table, re-covered
// with an irredundant SOP (Minato-Morreale) and re-factored; the new
// structure replaces the old one when it uses fewer AND nodes. This
// is a light version of ABC's refactor pass and complements Balance,
// which only restructures pure conjunction trees.
func Refactor(g *aig.AIG) *aig.AIG {
	const maxLeaves = 6
	fanout := g.FanoutCounts()
	ng := aig.New()
	mapped := make([]aig.Lit, g.NumNodes())
	done := make([]bool, g.NumNodes())
	mapped[0] = aig.ConstFalse
	done[0] = true
	for i := 0; i < g.NumPIs(); i++ {
		mapped[g.PI(i).Node()] = ng.AddPI(g.PIName(i))
		done[g.PI(i).Node()] = true
	}

	// Mark the nodes that must exist in the output: cone roots (POs
	// and leaves of other cones), discovered top-down.
	roots := make([]aig.Lit, g.NumPOs())
	for i := range roots {
		roots[i] = g.PO(i)
	}
	needed := make([]bool, g.NumNodes())
	var mark func(n int)
	mark = func(n int) {
		if needed[n] || !g.IsAnd(n) {
			return
		}
		needed[n] = true
		_, leaves := collectFFCone(g, n, fanout, maxLeaves)
		for _, l := range leaves {
			mark(l)
		}
	}
	for _, r := range roots {
		mark(r.Node())
	}

	for n := 1; n < g.NumNodes(); n++ {
		if !g.IsAnd(n) || !needed[n] || done[n] {
			continue
		}
		interior, leaves := collectFFCone(g, n, fanout, maxLeaves)
		rebuilt := false
		if len(leaves) <= maxLeaves && len(interior) >= 3 {
			tt := coneTT(g, n, leaves)
			sop := IsopTT(tt, tt, len(leaves))
			// Trial synthesis to count nodes.
			trial := aig.New()
			trialIns := make([]aig.Lit, len(leaves))
			for i := range trialIns {
				trialIns[i] = trial.AddPI("l")
			}
			trialRoot := BuildAIG(trial, trialIns, sop)
			if trial.ConeSize([]aig.Lit{trialRoot}) < len(interior) {
				ins := make([]aig.Lit, len(leaves))
				for i, l := range leaves {
					if !done[l] {
						panic("synth: refactor leaf not yet mapped (cone mismatch)")
					}
					ins[i] = mapped[l]
				}
				mapped[n] = BuildAIG(ng, ins, sop)
				rebuilt = true
			}
		}
		if !rebuilt {
			// Copy the cone structurally (interior nodes in index
			// order are topologically consistent).
			for _, m := range interior {
				if done[m] {
					continue
				}
				f0, f1 := g.Fanins(m)
				a := mapped[f0.Node()].XorCompl(f0.Compl())
				b := mapped[f1.Node()].XorCompl(f1.Compl())
				mapped[m] = ng.And(a, b)
				done[m] = true
			}
		}
		done[n] = true
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		ng.AddPO(g.POName(i), mapped[po.Node()].XorCompl(po.Compl()))
	}
	return ng
}

// collectFFCone gathers the maximal fanout-free cone rooted at AND
// node n whose leaf count stays within cap: interior nodes (ascending
// index, root included) and leaf nodes.
func collectFFCone(g *aig.AIG, n int, fanout []int, cap int) (interior, leaves []int) {
	inInterior := map[int]bool{n: true}
	leafSet := map[int]bool{}
	f0, f1 := g.Fanins(n)
	leafSet[f0.Node()] = true
	leafSet[f1.Node()] = true
	// Expansion must be deterministic: mark and rebuild recompute the
	// cone independently and have to agree on its leaves. Expand the
	// largest-index expandable leaf each round (deepest first).
	for {
		cand := -1
		var sorted []int
		for l := range leafSet {
			sorted = append(sorted, l)
		}
		sortInts(sorted)
		for i := len(sorted) - 1; i >= 0; i-- {
			l := sorted[i]
			if !g.IsAnd(l) || fanout[l] != 1 {
				continue
			}
			lf0, lf1 := g.Fanins(l)
			newCount := len(leafSet) - 1
			if !leafSet[lf0.Node()] && !inInterior[lf0.Node()] {
				newCount++
			}
			if !leafSet[lf1.Node()] && !inInterior[lf1.Node()] && lf0.Node() != lf1.Node() {
				newCount++
			}
			if newCount > cap {
				continue
			}
			cand = l
			break
		}
		if cand < 0 {
			break
		}
		lf0, lf1 := g.Fanins(cand)
		delete(leafSet, cand)
		inInterior[cand] = true
		leafSet[lf0.Node()] = true
		leafSet[lf1.Node()] = true
	}
	for m := range inInterior {
		interior = append(interior, m)
	}
	for l := range leafSet {
		leaves = append(leaves, l)
	}
	sortInts(interior)
	sortInts(leaves)
	return interior, leaves
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for ; j >= 0 && xs[j] > x; j-- {
			xs[j+1] = xs[j]
		}
		xs[j+1] = x
	}
}

// coneTT evaluates the cone of n as a truth table over the given leaf
// nodes (leaf i becomes variable i).
func coneTT(g *aig.AIG, n int, leaves []int) TT {
	idx := make(map[int]int, len(leaves))
	for i, l := range leaves {
		idx[l] = i
	}
	memo := make(map[int]TT)
	var eval func(m int) TT
	eval = func(m int) TT {
		if i, ok := idx[m]; ok {
			return TTVar(i)
		}
		if v, ok := memo[m]; ok {
			return v
		}
		if g.IsConst(m) {
			return 0
		}
		f0, f1 := g.Fanins(m)
		a := eval(f0.Node())
		if f0.Compl() {
			a = ^a
		}
		b := eval(f1.Node())
		if f1.Compl() {
			b = ^b
		}
		v := a & b
		memo[m] = v
		return v
	}
	return eval(n)
}

// Optimize runs the full light optimization pipeline: balance,
// refactor, cleanup.
func Optimize(g *aig.AIG) *aig.AIG { return aig.Cleanup(Refactor(aig.Balance(g))) }
