package synth

import (
	"math/rand"
	"testing"
)

func TestTTBasics(t *testing.T) {
	// 2-var space: minterms 0..3.
	space := ttSpace(2)
	if space != 0xf {
		t.Fatalf("space(2) = %x", space)
	}
	a := TTVar(0) & space // 1010
	b := TTVar(1) & space // 1100
	if a != 0xa || b != 0xc {
		t.Fatalf("vars wrong: %x %x", a, b)
	}
	and := a & b
	if and != 0x8 {
		t.Fatalf("and = %x", and)
	}
	if !and.DependsOn(0, 2) || !and.DependsOn(1, 2) {
		t.Fatal("dependence wrong")
	}
	if (a&^TTVar(1)).DependsOn(1, 2) == false {
		// a&!b depends on b
		t.Fatal("a&!b should depend on b")
	}
	c0 := and.Cofactor0(0) & space
	c1 := and.Cofactor1(0) & space
	if c0 != 0 {
		t.Fatalf("(a&b)|a=0 should be 0, got %x", c0)
	}
	if c1 != b {
		t.Fatalf("(a&b)|a=1 should be b, got %x", c1)
	}
}

func TestEvalCubeTT(t *testing.T) {
	c := cubeOf(3, map[int]CubeLit{0: Pos, 2: Neg})
	tt := EvalCubeTT(c) & ttSpace(3)
	for m := 0; m < 8; m++ {
		want := (m&1 == 1) && (m&4 == 0)
		if (tt>>uint(m)&1 == 1) != want {
			t.Fatalf("cube TT wrong at minterm %d", m)
		}
	}
}

func TestIsopExactCover(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for iter := 0; iter < 300; iter++ {
		nVars := 1 + rng.Intn(6)
		space := ttSpace(nVars)
		f := TT(rng.Uint64()) & space
		s := IsopTT(f, f, nVars)
		if got := SOPToTT(s); got != f {
			t.Fatalf("iter %d: ISOP(%x) computed %x (nVars=%d, cover %s)",
				iter, f, got, nVars, s)
		}
	}
}

func TestIsopRespectsDontCares(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for iter := 0; iter < 300; iter++ {
		nVars := 1 + rng.Intn(6)
		space := ttSpace(nVars)
		lower := TT(rng.Uint64()) & space
		upper := (lower | TT(rng.Uint64())) & space
		s := IsopTT(lower, upper, nVars)
		got := SOPToTT(s)
		if lower&^got != 0 {
			t.Fatalf("iter %d: cover misses onset bits %x", iter, lower&^got)
		}
		if got&^upper != 0 {
			t.Fatalf("iter %d: cover exceeds upper bound by %x", iter, got&^upper)
		}
	}
}

func TestIsopConstants(t *testing.T) {
	s := IsopTT(0, 0, 3)
	if !s.IsConstFalse() {
		t.Fatal("ISOP of empty onset must be const false")
	}
	space := ttSpace(3)
	s = IsopTT(space, space, 3)
	if !s.IsConstTrue() || len(s.Cubes) != 1 {
		t.Fatalf("ISOP of full onset must be one universal cube: %s", s)
	}
}

func TestIsopDontCareSimplifies(t *testing.T) {
	// onset = {11}, dc = {10, 01, 00}: the cover may be the universal
	// cube (1 cube, 0 literals).
	lower := EvalCubeTT(cubeOf(2, map[int]CubeLit{0: Pos, 1: Pos})) & ttSpace(2)
	s := IsopTT(lower, ttSpace(2), 2)
	if s.NumLiterals() != 0 {
		t.Fatalf("full-DC cover should be trivial, got %s", s)
	}
}

func TestIsopBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lower ⊄ upper")
		}
	}()
	IsopTT(ttSpace(2), 0, 2)
}
