package qbf

import (
	"fmt"

	"ecopatch/internal/aig"
	"ecopatch/internal/cnf"
	"ecopatch/internal/sat"
)

// Countermodel is a Herbrand countermodel for a refuted ∃x∀t φ(t,x):
// functions t_j(x) such that φ(t(x), x) is false for every x. The
// functions live in G as edges over the PIs listed in XPIs (the same
// positions as the original formula's x variables).
type Countermodel struct {
	G    *aig.AIG
	XPIs []int     // PI positions in G for the x variables
	T    []aig.Lit // one edge per t variable, in tPIs order
}

// BuildCountermodel assembles Herbrand functions from the countermove
// set of a refuted formula (Result.Moves): move i applies at input x
// when it falsifies φ there and no earlier move does; the functions
// select the applying move's constants. This is the certificate
// construction of §3.6.2 — for a feasibility miter M it yields, per
// target, a case-tree over at most len(moves) cofactors instead of
// the full 2^k expansion.
//
// The construction is verified internally (SAT check that
// φ(t(x), x) is unsatisfiable); an error is returned if the move set
// does not actually certify the refutation.
func BuildCountermodel(g *aig.AIG, root aig.Lit, xPIs, tPIs []int, moves [][]bool) (*Countermodel, error) {
	if len(moves) == 0 {
		return nil, fmt.Errorf("qbf: no countermoves to build from")
	}
	cm := &Countermodel{G: aig.New()}
	piMapBase := make([]aig.Lit, g.NumPIs())
	newPI := make([]aig.Lit, g.NumPIs())
	for i := 0; i < g.NumPIs(); i++ {
		newPI[i] = cm.G.AddPI(g.PIName(i))
		piMapBase[i] = newPI[i]
	}
	for _, p := range xPIs {
		cm.XPIs = append(cm.XPIs, p)
	}

	// phiAt(move) = φ(move, x) as an edge over the copied PIs.
	phiAt := func(move []bool) aig.Lit {
		piMap := append([]aig.Lit(nil), piMapBase...)
		for j, p := range tPIs {
			if move[j] {
				piMap[p] = aig.ConstTrue
			} else {
				piMap[p] = aig.ConstFalse
			}
		}
		return aig.Transfer(cm.G, g, piMap, []aig.Lit{root})[0]
	}

	// Selector for move i: ¬φ(m_i, x) ∧ ∧_{l<i} φ(m_l, x).
	cm.T = make([]aig.Lit, len(tPIs))
	for j := range cm.T {
		cm.T[j] = aig.ConstFalse
	}
	prefixAllHold := aig.ConstTrue
	anySelected := aig.ConstFalse
	for _, mv := range moves {
		phi := phiAt(mv)
		sel := cm.G.And(prefixAllHold, phi.Not())
		for j := range tPIs {
			if mv[j] {
				cm.T[j] = cm.G.Or(cm.T[j], sel)
			}
		}
		anySelected = cm.G.Or(anySelected, sel)
		prefixAllHold = cm.G.And(prefixAllHold, phi)
	}

	// Verify: φ(t(x), x) must be unsatisfiable. (Equivalently,
	// anySelected must be a tautology, but checking the substituted
	// formula directly is the stronger end-to-end test.)
	piMap := append([]aig.Lit(nil), newPI...)
	for j, p := range tPIs {
		piMap[p] = cm.T[j]
	}
	substituted := aig.Transfer(cm.G, g, piMap, []aig.Lit{root})[0]
	s := sat.New()
	enc := cnf.NewEncoder(s, cm.G)
	if !s.AddClause(enc.Lit(substituted)) {
		return cm, nil // substituted is constant false: certified
	}
	switch s.Solve() {
	case sat.Unsat:
		return cm, nil
	case sat.Sat:
		return nil, fmt.Errorf("qbf: move set does not certify the refutation")
	default:
		return nil, fmt.Errorf("qbf: certificate verification gave up")
	}
}
