package qbf

import (
	"math/rand"
	"testing"

	"ecopatch/internal/aig"
)

// solveBrute decides ∃x∀t φ by enumeration.
func solveBrute(g *aig.AIG, root aig.Lit, xPIs, tPIs []int) bool {
	n := g.NumPIs()
	in := make([]bool, n)
	var tryX func(i int) bool
	var allT func(i int) bool
	allT = func(i int) bool {
		if i == len(tPIs) {
			return g.EvalLit(root, in)
		}
		in[tPIs[i]] = false
		if !allT(i + 1) {
			return false
		}
		in[tPIs[i]] = true
		return allT(i + 1)
	}
	tryX = func(i int) bool {
		if i == len(xPIs) {
			return allT(0)
		}
		in[xPIs[i]] = false
		if tryX(i + 1) {
			return true
		}
		in[xPIs[i]] = true
		return tryX(i + 1)
	}
	return tryX(0)
}

func TestTautologyOverT(t *testing.T) {
	// φ = t OR !t = const true: ∃x∀t φ holds trivially.
	g := aig.New()
	tv := g.AddPI("t")
	g.AddPI("x")
	root := g.Or(tv, tv.Not())
	res, err := Solve(g, root, []int{1}, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatal("tautology should hold")
	}
}

func TestNoWitness(t *testing.T) {
	// φ = (x == t): for any x, choosing t = !x falsifies φ.
	g := aig.New()
	tv := g.AddPI("t")
	x := g.AddPI("x")
	root := g.Xnor(x, tv)
	res, err := Solve(g, root, []int{1}, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatalf("x==t should not admit a witness; got witness %v", res.Witness)
	}
	if len(res.Moves) == 0 {
		t.Fatal("refutation must collect countermoves")
	}
}

func TestWitnessCorrect(t *testing.T) {
	// φ = x OR t: x=1 is a witness.
	g := aig.New()
	tv := g.AddPI("t")
	x := g.AddPI("x")
	root := g.Or(x, tv)
	res, err := Solve(g, root, []int{1}, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatal("x|t should hold with x=1")
	}
	if len(res.Witness) != 1 || !res.Witness[0] {
		t.Fatalf("witness = %v, want [true]", res.Witness)
	}
}

func TestWitnessIsVerifiable(t *testing.T) {
	// Random instances: whenever Holds, the witness must satisfy
	// φ(t, witness) for all t by brute force.
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 60; iter++ {
		g := aig.New()
		nX, nT := 1+rng.Intn(3), 1+rng.Intn(3)
		var xPIs, tPIs []int
		var pool []aig.Lit
		for i := 0; i < nT; i++ {
			tPIs = append(tPIs, g.NumPIs())
			pool = append(pool, g.AddPI("t"))
		}
		for i := 0; i < nX; i++ {
			xPIs = append(xPIs, g.NumPIs())
			pool = append(pool, g.AddPI("x"))
		}
		for i := 0; i < 12; i++ {
			a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			pool = append(pool, g.And(a, b))
		}
		root := pool[len(pool)-1].XorCompl(rng.Intn(2) == 1)

		res, err := Solve(g, root, xPIs, tPIs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := solveBrute(g, root, xPIs, tPIs)
		if res.Holds != want {
			t.Fatalf("iter %d: CEGAR=%v brute=%v", iter, res.Holds, want)
		}
		if res.Holds {
			// Check witness against every t assignment.
			in := make([]bool, g.NumPIs())
			for i, p := range xPIs {
				in[p] = res.Witness[i]
			}
			for m := 0; m < 1<<uint(nT); m++ {
				for i, p := range tPIs {
					in[p] = m>>uint(i)&1 == 1
				}
				if !g.EvalLit(root, in) {
					t.Fatalf("iter %d: witness %v fails at t-minterm %b", iter, res.Witness, m)
				}
			}
		}
	}
}

func TestMovesCertifyRefutation(t *testing.T) {
	// When refuted, for every x some collected move must falsify φ.
	rng := rand.New(rand.NewSource(29))
	refuted := 0
	for iter := 0; iter < 60 && refuted < 20; iter++ {
		g := aig.New()
		nX, nT := 1+rng.Intn(2), 1+rng.Intn(3)
		var xPIs, tPIs []int
		var pool []aig.Lit
		for i := 0; i < nT; i++ {
			tPIs = append(tPIs, g.NumPIs())
			pool = append(pool, g.AddPI("t"))
		}
		for i := 0; i < nX; i++ {
			xPIs = append(xPIs, g.NumPIs())
			pool = append(pool, g.AddPI("x"))
		}
		for i := 0; i < 10; i++ {
			a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			pool = append(pool, g.And(a, b))
		}
		root := pool[len(pool)-1]
		res, err := Solve(g, root, xPIs, tPIs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Holds {
			continue
		}
		refuted++
		in := make([]bool, g.NumPIs())
		for xm := 0; xm < 1<<uint(nX); xm++ {
			for i, p := range xPIs {
				in[p] = xm>>uint(i)&1 == 1
			}
			covered := false
			for _, mv := range res.Moves {
				for i, p := range tPIs {
					in[p] = mv[i]
				}
				if !g.EvalLit(root, in) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("iter %d: x-minterm %b not refuted by any move", iter, xm)
			}
		}
	}
	if refuted == 0 {
		t.Fatal("no refuted instances generated; weak test")
	}
}

func TestCopiesFewerThanFullExpansion(t *testing.T) {
	// With k universal variables, CEGAR should essentially never need
	// the full 2^k copies on easy structured formulas.
	g := aig.New()
	const k = 6
	var ts []aig.Lit
	var tPIs []int
	for i := 0; i < k; i++ {
		tPIs = append(tPIs, g.NumPIs())
		ts = append(ts, g.AddPI("t"))
	}
	var xPIs []int
	x := g.AddPI("x")
	xPIs = append(xPIs, g.NumPIs()-1)
	// φ = x OR (t0 & t1 & ... & tk-1): holds with x=1.
	root := g.Or(x, g.AndN(ts...))
	res, err := Solve(g, root, xPIs, tPIs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatal("should hold")
	}
	if res.Copies >= 1<<k {
		t.Fatalf("copies = %d, expected far fewer than %d", res.Copies, 1<<k)
	}
}

func TestOverlapRejected(t *testing.T) {
	g := aig.New()
	g.AddPI("a")
	if _, err := Solve(g, aig.ConstTrue, []int{0}, []int{0}, Options{}); err == nil {
		t.Fatal("overlapping x/t not rejected")
	}
}

func TestBuildCountermodel(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	built := 0
	for iter := 0; iter < 80 && built < 25; iter++ {
		g := aig.New()
		nX, nT := 1+rng.Intn(3), 1+rng.Intn(3)
		var xPIs, tPIs []int
		var pool []aig.Lit
		for i := 0; i < nT; i++ {
			tPIs = append(tPIs, g.NumPIs())
			pool = append(pool, g.AddPI("t"))
		}
		for i := 0; i < nX; i++ {
			xPIs = append(xPIs, g.NumPIs())
			pool = append(pool, g.AddPI("x"))
		}
		for i := 0; i < 12; i++ {
			a := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			b := pool[rng.Intn(len(pool))].XorCompl(rng.Intn(2) == 1)
			pool = append(pool, g.And(a, b))
		}
		root := pool[len(pool)-1].XorCompl(rng.Intn(2) == 1)
		res, err := Solve(g, root, xPIs, tPIs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Holds || len(res.Moves) == 0 {
			continue
		}
		cm, err := BuildCountermodel(g, root, xPIs, tPIs, res.Moves)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		built++
		// Spot-check by evaluation: for random x, φ(t(x), x) is false.
		for trial := 0; trial < 32; trial++ {
			in := make([]bool, g.NumPIs())
			for _, p := range xPIs {
				in[p] = rng.Intn(2) == 1
			}
			for j, p := range tPIs {
				in[p] = cm.G.EvalLit(cm.T[j], in)
			}
			if g.EvalLit(root, in) {
				t.Fatalf("iter %d: countermodel fails at %v", iter, in)
			}
		}
	}
	if built < 5 {
		t.Fatalf("only %d countermodels built; weak test", built)
	}
}

func TestBuildCountermodelRejectsBadMoves(t *testing.T) {
	// φ = t XOR x: for each x only one t falsifies; a single move
	// cannot certify the refutation for both x values.
	g := aig.New()
	tv := g.AddPI("t")
	x := g.AddPI("x")
	root := g.Xor(tv, x)
	// ∃x∀t (t⊕x) is false; the CEGAR needs both moves. Give only one.
	if _, err := BuildCountermodel(g, root, []int{1}, []int{0}, [][]bool{{false}}); err == nil {
		t.Fatal("incomplete move set accepted as certificate")
	}
	if _, err := BuildCountermodel(g, root, []int{1}, []int{0}, nil); err == nil {
		t.Fatal("empty move set accepted")
	}
}
