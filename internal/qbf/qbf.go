// Package qbf implements a CEGAR solver for 2QBF formulas of the form
// ∃x ∀t φ(t, x), the shape of the ECO feasibility question
// (expression (1) of the paper: ECO is impossible iff ∃x ∀t M(t,x)).
//
// The solver is the classical expansion-based CEGAR: an existential
// solver proposes x over a growing conjunction ∧_i φ(t^i, x) of
// cofactor copies; a universal solver looks for a countermove t*
// falsifying φ(t, x*); each countermove adds one more copy. When the
// existential side becomes UNSAT, the collected countermoves certify
// that no x works — and double as the certificate the ECO engine uses
// for move-guided structural patches (§3.6.2), where they replace the
// full 2^k cofactor expansion.
package qbf

import (
	"fmt"

	"ecopatch/internal/aig"
	"ecopatch/internal/cnf"
	"ecopatch/internal/sat"
)

// Result is the outcome of a 2QBF solve.
type Result struct {
	// Holds reports whether ∃x ∀t φ(t,x) is true.
	Holds bool
	// Witness is an x assignment proving Holds (indexed like xPIs).
	Witness []bool
	// Moves are the countermoves t^i collected during CEGAR (indexed
	// like tPIs). When Holds is false they certify the refutation:
	// for every x some move falsifies φ.
	Moves [][]bool
	// Copies is the number of φ-copies in the final expansion — the
	// "number of ECO miter copies" metric of §3.6.2.
	Copies int
	// Iterations is the number of CEGAR rounds executed.
	Iterations int
}

// Options controls the CEGAR loop.
type Options struct {
	// MaxIterations bounds CEGAR rounds (0 means 10000).
	MaxIterations int
	// ConfBudget bounds SAT conflicts per solver call (≤0 unlimited).
	ConfBudget int64
	// OnSolver, when non-nil, observes the SAT solvers the CEGAR loop
	// creates, so callers can Interrupt a long-running solve from
	// another goroutine.
	OnSolver func(*sat.Solver)
}

// Solve decides ∃x ∀t φ(t,x). The formula is the AIG edge root of g;
// xPIs and tPIs partition (a subset of) g's PI positions. PIs in
// neither list are treated as existential (grouped with x).
func Solve(g *aig.AIG, root aig.Lit, xPIs, tPIs []int, opts Options) (*Result, error) {
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 10000
	}
	inT := make(map[int]bool, len(tPIs))
	for _, p := range tPIs {
		inT[p] = true
	}
	for _, p := range xPIs {
		if inT[p] {
			return nil, fmt.Errorf("qbf: PI %d in both x and t", p)
		}
	}

	// Existential side: expansion AIG over x variables only.
	expg := aig.New()
	xEdge := make(map[int]aig.Lit, len(xPIs)) // src PI pos -> exp edge
	for _, p := range xPIs {
		xEdge[p] = expg.AddPI(g.PIName(p))
	}
	// Any PI neither in x nor t is existential too.
	for i := 0; i < g.NumPIs(); i++ {
		if _, ok := xEdge[i]; !ok && !inT[i] {
			xEdge[i] = expg.AddPI(g.PIName(i))
		}
	}
	expSolver := sat.New()
	expEnc := cnf.NewEncoder(expSolver, expg)
	// Encode the x PIs up front for witness readback.
	xLits := make([]sat.Lit, len(xPIs))
	for i, p := range xPIs {
		xLits[i] = expEnc.Lit(xEdge[p])
	}

	// Universal side: φ encoded once with free x and t.
	uniSolver := sat.New()
	uniEnc := cnf.NewEncoder(uniSolver, g)
	uniRoot := uniEnc.Lit(root)
	uniX := make([]sat.Lit, len(xPIs))
	for i, p := range xPIs {
		uniX[i] = uniEnc.Lit(g.PI(p))
	}
	uniT := make([]sat.Lit, len(tPIs))
	for i, p := range tPIs {
		uniT[i] = uniEnc.Lit(g.PI(p))
	}

	if opts.ConfBudget > 0 {
		expSolver.SetConfBudget(opts.ConfBudget)
		uniSolver.SetConfBudget(opts.ConfBudget)
	}
	if opts.OnSolver != nil {
		opts.OnSolver(expSolver)
		opts.OnSolver(uniSolver)
	}

	res := &Result{}
	// addCopy conjoins φ(move, x) to the expansion.
	addCopy := func(move []bool) {
		piMap := make([]aig.Lit, g.NumPIs())
		for i := 0; i < g.NumPIs(); i++ {
			if e, ok := xEdge[i]; ok {
				piMap[i] = e
			}
		}
		for i, p := range tPIs {
			if move[i] {
				piMap[p] = aig.ConstTrue
			} else {
				piMap[p] = aig.ConstFalse
			}
		}
		r := aig.Transfer(expg, g, piMap, []aig.Lit{root})[0]
		expSolver.AddClause(expEnc.Lit(r)) // copy must be satisfied
		res.Copies++
	}

	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		switch expSolver.Solve() {
		case sat.Unsat:
			// No x satisfies all collected copies: formula is false.
			res.Holds = false
			return res, nil
		case sat.Unknown:
			return res, fmt.Errorf("qbf: existential solver exceeded budget after %d iterations", res.Iterations)
		}
		xStar := make([]bool, len(xPIs))
		assumps := make([]sat.Lit, 0, len(xPIs)+1)
		for i := range xPIs {
			xStar[i] = expSolver.ModelBool(xLits[i])
			assumps = append(assumps, uniX[i].XorSign(!xStar[i]))
		}
		// Countermove query: some t with φ(t, x*) = 0?
		assumps = append(assumps, uniRoot.Not())
		switch uniSolver.Solve(assumps...) {
		case sat.Unsat:
			// ∀t φ(t, x*): witness found.
			res.Holds = true
			res.Witness = xStar
			return res, nil
		case sat.Unknown:
			return res, fmt.Errorf("qbf: universal solver exceeded budget after %d iterations", res.Iterations)
		}
		move := make([]bool, len(tPIs))
		for i := range tPIs {
			move[i] = uniSolver.ModelBool(uniT[i])
		}
		res.Moves = append(res.Moves, move)
		addCopy(move)
	}
	return res, fmt.Errorf("qbf: iteration limit %d exceeded", maxIter)
}
