// Package cache provides the in-process memoization stores threaded
// through the solve stack: a SolveCache keyed by captured CNF
// formulas (SAT/UNSAT verdicts plus models for feasibility and
// pair-check queries) and a generic Store keyed by canonical word
// vectors (window-level patch functions, QBF feasibility outcomes).
//
// Both stores key by an FNV-1a hash but never trust it alone: a hash
// match is screened by a full-content comparison before a hit is
// served, mirroring the cec.Sweep bucket discipline, so a 64-bit
// collision costs one extra comparison instead of a wrong verdict.
// Collisions screened out this way are counted and surfaced through
// eco.Stats and /metrics — an unverified hit is impossible by
// construction.
//
// Eviction is FIFO and doubly bounded: by entry count and by a
// retained-word budget, so a long-running daemon caching large
// formulas does not grow without bound.
package cache

import (
	"sync"

	"ecopatch/internal/cnf"
	"ecopatch/internal/sat"
)

// FNV-1a constants (the same pair cec.Sweep uses for its signature
// buckets).
const (
	fnvOffset uint64 = 1469598103934665603
	fnvPrime  uint64 = 1099511628211
)

// HashWords returns the FNV-1a hash of a canonical key vector.
func HashWords(words []uint64) uint64 {
	h := fnvOffset
	for _, w := range words {
		for i := 0; i < 64; i += 8 {
			h ^= (w >> uint(i)) & 0xff
			h *= fnvPrime
		}
	}
	return h
}

// wordsEqual is the collision screen: full content comparison.
func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Stats is a point-in-time snapshot of one store's counters.
type Stats struct {
	Hits       int64
	Misses     int64
	Collisions int64 // hash matches rejected by the content screen
	Evictions  int64
	Entries    int
	Words      int64 // retained key/value words, for the budget
}

// add merges o into s (the umbrella Cache sums its stores).
func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Collisions += o.Collisions
	s.Evictions += o.Evictions
	s.Entries += o.Entries
	s.Words += o.Words
}

// perEntryWords sizes the word budget: maxEntries entries of this
// average retained size. Large formulas evict more aggressively.
const perEntryWords = 2048

// entry is one Store record. dead marks FIFO-evicted entries still
// waiting to be compacted out of their bucket.
type entry struct {
	hash uint64
	key  []uint64
	val  any
	dead bool
}

// Store is a bounded, mutex-guarded map from canonical []uint64 keys
// to opaque values. Safe for concurrent use.
type Store struct {
	mu         sync.Mutex
	maxEntries int
	maxWords   int64
	buckets    map[uint64][]*entry
	fifo       []*entry
	head       int // fifo[:head] already evicted
	words      int64
	hits       int64
	misses     int64
	collisions int64
	evictions  int64
}

// NewStore builds a store retaining up to maxEntries entries
// (default 4096 when <= 0).
func NewStore(maxEntries int) *Store {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &Store{
		maxEntries: maxEntries,
		maxWords:   int64(maxEntries) * perEntryWords,
		buckets:    make(map[uint64][]*entry),
	}
}

// Lookup returns the value cached under key, whether it was found,
// and how many hash collisions the content screen rejected during the
// probe.
func (s *Store) Lookup(key []uint64) (any, bool, int) {
	h := HashWords(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	coll := 0
	for _, e := range s.buckets[h] {
		if e.dead {
			continue
		}
		if wordsEqual(e.key, key) {
			s.hits++
			s.collisions += int64(coll)
			return e.val, true, coll
		}
		coll++
	}
	s.misses++
	s.collisions += int64(coll)
	return nil, false, coll
}

// Insert caches val under key. The first insertion of a key wins;
// re-inserting an equal key is a no-op, so concurrent producers of
// the same entry stay deterministic. The store takes ownership of key.
func (s *Store) Insert(key []uint64, val any) {
	h := HashWords(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.buckets[h] {
		if !e.dead && wordsEqual(e.key, key) {
			return
		}
	}
	e := &entry{hash: h, key: key, val: val}
	s.buckets[h] = append(s.buckets[h], e)
	s.fifo = append(s.fifo, e)
	s.words += int64(len(key))
	s.evictLocked()
}

// evictLocked drops the oldest entries while over either bound.
func (s *Store) evictLocked() {
	for len(s.fifo)-s.head > s.maxEntries || s.words > s.maxWords {
		if s.head >= len(s.fifo) {
			return
		}
		e := s.fifo[s.head]
		s.head++
		e.dead = true
		s.words -= int64(len(e.key))
		s.removeFromBucketLocked(e)
		s.evictions++
	}
	// Compact the fifo prefix once it dominates the slice.
	if s.head > 64 && s.head*2 > len(s.fifo) {
		s.fifo = append([]*entry(nil), s.fifo[s.head:]...)
		s.head = 0
	}
}

func (s *Store) removeFromBucketLocked(e *entry) {
	b := s.buckets[e.hash]
	for i, x := range b {
		if x == e {
			b[i] = b[len(b)-1]
			b = b[:len(b)-1]
			break
		}
	}
	if len(b) == 0 {
		delete(s.buckets, e.hash)
	} else {
		s.buckets[e.hash] = b
	}
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:       s.hits,
		Misses:     s.misses,
		Collisions: s.collisions,
		Evictions:  s.evictions,
		Entries:    len(s.fifo) - s.head,
		Words:      s.words,
	}
}

// Verdict is a memoized SAT outcome. Model is indexed by capture
// variable and is present exactly when Status is Sat, so a hit can
// reconstruct counterexamples through the literals handed out during
// capture. Unknown verdicts are never cached (a budget expiry is not
// a fact about the formula).
type Verdict struct {
	Status sat.Status
	Model  []bool
}

// LitTrue reports the model value of a capture literal.
func (v Verdict) LitTrue(l sat.Lit) bool {
	return v.Model[int(l.Var())] != l.Sign()
}

// solveEntry is one SolveCache record. The captured formula itself is
// the key: capture already exists on the portfolio path, so keying by
// it is zero-copy, and Formula.Equal is the collision screen.
type solveEntry struct {
	hash    uint64
	f       *cnf.Formula
	assumps []sat.Lit
	v       Verdict
	dead    bool
}

// SolveCache memoizes SAT verdicts of captured formulas plus
// assumptions. Safe for concurrent use.
type SolveCache struct {
	// OnInsert, when non-nil, observes every insertion of a NEW entry
	// (duplicate re-inserts do not fire it), called after the cache
	// lock is released. The persist layer hooks it to append the entry
	// to the on-disk log. Must be set before the cache sees concurrent
	// use; the arguments are owned by the cache and must be treated as
	// read-only.
	OnInsert func(f *cnf.Formula, assumps []sat.Lit, v Verdict)
	// OnEvict, when non-nil, observes FIFO evictions (n entries
	// dropped), called after the cache lock is released. The persist
	// layer hooks it for garbage accounting. Same set-before-use rule
	// as OnInsert.
	OnEvict func(n int)

	mu         sync.Mutex
	maxEntries int
	maxWords   int64
	buckets    map[uint64][]*solveEntry
	fifo       []*solveEntry
	head       int
	words      int64
	hits       int64
	misses     int64
	collisions int64
	evictions  int64
}

// NewSolveCache builds a solve cache retaining up to maxEntries
// verdicts (default 4096 when <= 0).
func NewSolveCache(maxEntries int) *SolveCache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &SolveCache{
		maxEntries: maxEntries,
		maxWords:   int64(maxEntries) * perEntryWords,
		buckets:    make(map[uint64][]*solveEntry),
	}
}

func assumpsEqual(a, b []sat.Lit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// entryWords estimates the retained size of one verdict.
func entryWords(f *cnf.Formula, assumps []sat.Lit, v Verdict) int64 {
	return int64(f.Words() + len(assumps) + (len(v.Model)+7)/8)
}

// Lookup returns the verdict cached for (f, assumps), whether one was
// found, and the number of collisions the content screen rejected.
func (c *SolveCache) Lookup(f *cnf.Formula, assumps []sat.Lit) (Verdict, bool, int) {
	h := f.Hash(assumps)
	c.mu.Lock()
	defer c.mu.Unlock()
	coll := 0
	for _, e := range c.buckets[h] {
		if e.dead {
			continue
		}
		if e.f.Equal(f) && assumpsEqual(e.assumps, assumps) {
			c.hits++
			c.collisions += int64(coll)
			return e.v, true, coll
		}
		coll++
	}
	c.misses++
	c.collisions += int64(coll)
	return Verdict{}, false, coll
}

// Insert caches a verdict. Unknown verdicts are dropped, a Sat
// verdict must carry its model, and the first insertion of a formula
// wins. The cache takes ownership of f and assumps.
func (c *SolveCache) Insert(f *cnf.Formula, assumps []sat.Lit, v Verdict) {
	if v.Status == sat.Unknown {
		return
	}
	if v.Status == sat.Sat && len(v.Model) < f.NumVars() {
		return // incomplete model: a hit could not reconstruct literals
	}
	h := f.Hash(assumps)
	c.mu.Lock()
	for _, e := range c.buckets[h] {
		if !e.dead && e.f.Equal(f) && assumpsEqual(e.assumps, assumps) {
			c.mu.Unlock()
			return
		}
	}
	e := &solveEntry{hash: h, f: f, assumps: assumps, v: v}
	c.buckets[h] = append(c.buckets[h], e)
	c.fifo = append(c.fifo, e)
	c.words += entryWords(f, assumps, v)
	evicted := c.evictLocked()
	onInsert, onEvict := c.OnInsert, c.OnEvict
	c.mu.Unlock()
	if onInsert != nil {
		onInsert(f, assumps, v)
	}
	if evicted > 0 && onEvict != nil {
		onEvict(evicted)
	}
}

func (c *SolveCache) evictLocked() int {
	evicted := 0
	for len(c.fifo)-c.head > c.maxEntries || c.words > c.maxWords {
		if c.head >= len(c.fifo) {
			break
		}
		e := c.fifo[c.head]
		c.head++
		e.dead = true
		c.words -= entryWords(e.f, e.assumps, e.v)
		b := c.buckets[e.hash]
		for i, x := range b {
			if x == e {
				b[i] = b[len(b)-1]
				b = b[:len(b)-1]
				break
			}
		}
		if len(b) == 0 {
			delete(c.buckets, e.hash)
		} else {
			c.buckets[e.hash] = b
		}
		c.evictions++
		evicted++
	}
	if c.head > 64 && c.head*2 > len(c.fifo) {
		c.fifo = append([]*solveEntry(nil), c.fifo[c.head:]...)
		c.head = 0
	}
	return evicted
}

// Range calls fn for every live entry in FIFO order, stopping early
// when fn returns false. fn runs under the cache lock: it must not
// call back into the cache, and must treat the arguments as
// read-only. The persist layer uses it to snapshot the cache for
// compaction and save-to-file.
func (c *SolveCache) Range(fn func(f *cnf.Formula, assumps []sat.Lit, v Verdict) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.fifo[c.head:] {
		if e.dead {
			continue
		}
		if !fn(e.f, e.assumps, e.v) {
			return
		}
	}
}

// Stats snapshots the cache's counters.
func (c *SolveCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:       c.hits,
		Misses:     c.misses,
		Collisions: c.collisions,
		Evictions:  c.evictions,
		Entries:    len(c.fifo) - c.head,
		Words:      c.words,
	}
}

// Cache is the umbrella handed to the engine: one solve cache (CEC
// pair checks, cofactor feasibility) and one window store (per-target
// patch functions, QBF feasibility outcomes). A single Cache may be
// shared by many concurrent solves — the ecod daemon hands every job
// the same one.
type Cache struct {
	Solve  *SolveCache
	Window *Store
}

// New builds a cache bounding each store to entries records
// (default 4096 when <= 0).
func New(entries int) *Cache {
	return &Cache{Solve: NewSolveCache(entries), Window: NewStore(entries)}
}

// Stats sums the snapshots of both stores.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	var s Stats
	if c.Solve != nil {
		s.add(c.Solve.Stats())
	}
	if c.Window != nil {
		s.add(c.Window.Stats())
	}
	return s
}
