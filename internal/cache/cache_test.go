package cache

import (
	"fmt"
	"testing"

	"ecopatch/internal/cnf"
	"ecopatch/internal/sat"
)

func TestStoreLookupInsert(t *testing.T) {
	s := NewStore(16)
	key := []uint64{1, 2, 3}
	if _, ok, _ := s.Lookup(key); ok {
		t.Fatal("hit on empty store")
	}
	s.Insert(append([]uint64(nil), key...), "v1")
	v, ok, coll := s.Lookup(key)
	if !ok || v.(string) != "v1" || coll != 0 {
		t.Fatalf("lookup = (%v, %v, %d)", v, ok, coll)
	}
	// First insertion wins; an equal key re-insert is a no-op.
	s.Insert(append([]uint64(nil), key...), "v2")
	if v, _, _ := s.Lookup(key); v.(string) != "v1" {
		t.Fatalf("re-insert overwrote: %v", v)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestStoreCollisionScreen forces a 64-bit hash collision by injecting
// an entry whose recorded hash equals another key's hash but whose
// content differs: the content screen must reject it, count it, and
// still find the real entry behind it.
func TestStoreCollisionScreen(t *testing.T) {
	s := NewStore(16)
	key := []uint64{7, 8, 9}
	h := HashWords(key)

	// A fake colliding entry placed first in the bucket.
	fake := &entry{hash: h, key: []uint64{0xdead, 0xbeef}, val: "wrong"}
	s.mu.Lock()
	s.buckets[h] = append(s.buckets[h], fake)
	s.fifo = append(s.fifo, fake)
	s.mu.Unlock()

	// Miss with one screened collision (content differs).
	if v, ok, coll := s.Lookup(key); ok || coll != 1 {
		t.Fatalf("lookup on collision = (%v, %v, %d), want miss with 1 collision", v, ok, coll)
	}

	s.Insert(append([]uint64(nil), key...), "right")
	v, ok, coll := s.Lookup(key)
	if !ok || v.(string) != "right" {
		t.Fatalf("real entry not found behind collision: (%v, %v)", v, ok)
	}
	if coll != 1 {
		t.Fatalf("collisions screened = %d, want 1", coll)
	}
	if st := s.Stats(); st.Collisions < 2 {
		t.Fatalf("collision counter = %d, want >= 2", st.Collisions)
	}
}

func TestStoreEvictionBounds(t *testing.T) {
	const max = 8
	s := NewStore(max)
	for i := 0; i < 10*max; i++ {
		s.Insert([]uint64{uint64(i)}, i)
		if st := s.Stats(); st.Entries > max {
			t.Fatalf("entries = %d exceeds bound %d", st.Entries, max)
		}
	}
	st := s.Stats()
	if st.Evictions != 10*max-max {
		t.Fatalf("evictions = %d, want %d", st.Evictions, 10*max-max)
	}
	// Oldest entries are gone, newest survive.
	if _, ok, _ := s.Lookup([]uint64{0}); ok {
		t.Fatal("oldest entry survived FIFO eviction")
	}
	if _, ok, _ := s.Lookup([]uint64{uint64(10*max - 1)}); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestStoreWordBudget(t *testing.T) {
	s := NewStore(4) // word budget = 4 * perEntryWords
	big := make([]uint64, 3*perEntryWords)
	for i := 0; i < 4; i++ {
		k := append([]uint64(nil), big...)
		k[0] = uint64(i)
		s.Insert(k, i)
	}
	st := s.Stats()
	if st.Words > int64(4*perEntryWords) {
		t.Fatalf("retained words %d exceed budget %d", st.Words, 4*perEntryWords)
	}
	if st.Evictions == 0 {
		t.Fatal("word budget never triggered eviction")
	}
}

// captureFormula builds a tiny distinct formula: (x0 | x1) & seed-unit.
func captureFormula(seed int) *cnf.Formula {
	f := &cnf.Formula{}
	a, b := f.NewVar(), f.NewVar()
	f.AddClause(sat.PosLit(a), sat.PosLit(b))
	for i := 0; i < seed; i++ {
		v := f.NewVar()
		f.AddClause(sat.PosLit(v))
	}
	return f
}

func TestSolveCacheVerdicts(t *testing.T) {
	c := NewSolveCache(16)
	f := captureFormula(1)
	if _, ok, _ := c.Lookup(f, nil); ok {
		t.Fatal("hit on empty cache")
	}
	// Unknown verdicts are never retained (budget expiry is not a fact
	// about the formula).
	c.Insert(captureFormula(1), nil, Verdict{Status: sat.Unknown})
	if _, ok, _ := c.Lookup(f, nil); ok {
		t.Fatal("unknown verdict was cached")
	}
	// Sat without a full model is rejected too.
	c.Insert(captureFormula(1), nil, Verdict{Status: sat.Sat, Model: []bool{true}})
	if _, ok, _ := c.Lookup(f, nil); ok {
		t.Fatal("incomplete model was cached")
	}
	model := make([]bool, f.NumVars())
	model[0] = true
	c.Insert(captureFormula(1), nil, Verdict{Status: sat.Sat, Model: model})
	v, ok, _ := c.Lookup(f, nil)
	if !ok || v.Status != sat.Sat {
		t.Fatalf("lookup = (%+v, %v)", v, ok)
	}
	if !v.LitTrue(sat.PosLit(0)) || v.LitTrue(sat.NegLit(0)) {
		t.Fatal("LitTrue does not honor literal polarity")
	}

	// Assumptions are part of the key.
	if _, ok, _ := c.Lookup(f, []sat.Lit{sat.PosLit(0)}); ok {
		t.Fatal("hit across different assumptions")
	}
	c.Insert(captureFormula(1), []sat.Lit{sat.PosLit(0)}, Verdict{Status: sat.Unsat})
	if v, ok, _ := c.Lookup(f, []sat.Lit{sat.PosLit(0)}); !ok || v.Status != sat.Unsat {
		t.Fatalf("assumption-keyed lookup = (%+v, %v)", v, ok)
	}
}

func TestSolveCacheDistinctFormulas(t *testing.T) {
	c := NewSolveCache(64)
	for i := 0; i < 20; i++ {
		c.Insert(captureFormula(i), nil, Verdict{Status: sat.Unsat})
	}
	for i := 0; i < 20; i++ {
		v, ok, _ := c.Lookup(captureFormula(i), nil)
		if !ok || v.Status != sat.Unsat {
			t.Fatalf("formula %d: lookup = (%+v, %v)", i, v, ok)
		}
	}
	if st := c.Stats(); st.Entries != 20 || st.Hits != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUmbrellaCacheStats(t *testing.T) {
	c := New(8)
	c.Window.Insert([]uint64{1}, "w")
	c.Window.Lookup([]uint64{1})
	c.Solve.Insert(captureFormula(0), nil, Verdict{Status: sat.Unsat})
	c.Solve.Lookup(captureFormula(0), nil)
	st := c.Stats()
	if st.Hits != 2 || st.Entries != 2 {
		t.Fatalf("umbrella stats = %+v", st)
	}
	var nilCache *Cache
	if s := nilCache.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
}

func TestHashWordsDisperses(t *testing.T) {
	seen := make(map[uint64][]uint64)
	for i := 0; i < 4096; i++ {
		k := []uint64{uint64(i), uint64(i * 3)}
		h := HashWords(k)
		if prev, ok := seen[h]; ok {
			t.Fatalf("hash collision between %v and %v", prev, k)
		}
		seen[h] = k
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore(128)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 500; i++ {
				k := []uint64{uint64(i % 64)}
				s.Insert(append([]uint64(nil), k...), fmt.Sprintf("v%d", i%64))
				if v, ok, _ := s.Lookup(k); ok && v.(string) != fmt.Sprintf("v%d", i%64) {
					err = fmt.Errorf("goroutine %d: key %v got %v", g, k, v)
					break
				}
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
