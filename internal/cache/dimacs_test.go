package cache

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ecopatch/internal/cnf"
	"ecopatch/internal/sat"
)

// parseDIMACSFormula reads a DIMACS CNF file into a capture Formula
// (variable n maps to capture Var(n-1), matching the positional
// numbering contract).
func parseDIMACSFormula(t *testing.T, path string) *cnf.Formula {
	t.Helper()
	fh, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	f := &cnf.Formula{}
	ensure := func(v int) {
		for f.NumVars() < v {
			f.NewVar()
		}
	}
	var clause []sat.Lit
	sc := bufio.NewScanner(fh)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") || strings.HasPrefix(line, "p") {
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				t.Fatalf("%s: bad token %q", path, tok)
			}
			if n == 0 {
				f.AddClause(clause...)
				clause = clause[:0]
				continue
			}
			v := n
			if v < 0 {
				v = -v
			}
			ensure(v)
			l := sat.PosLit(sat.Var(v - 1))
			if n < 0 {
				l = l.Not()
			}
			clause = append(clause, l)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestDifferentialCorpus is the cache-correctness differential: every
// corpus formula is solved directly and through the cache (cold, then
// warm), and the three verdicts must agree exactly. Hits never change
// verdicts, and no hit may be served off a hash match alone — every
// collision the screen rejects is counted, and the hit verdict is
// re-validated against the direct solve.
func TestDifferentialCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "sat", "testdata", "corpus", "*.cnf"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus not found: %v (%d files)", err, len(files))
	}
	c := NewSolveCache(64)
	type outcome struct {
		file   string
		status sat.Status
	}
	var direct []outcome
	for _, path := range files {
		f := parseDIMACSFormula(t, path)

		// Reference: direct solve of a replayed copy.
		s := sat.New()
		f.LoadInto(s)
		want := s.Solve()
		if want == sat.Unknown {
			t.Fatalf("%s: reference solve unknown", path)
		}
		direct = append(direct, outcome{path, want})

		// Cold pass: must miss, then populate.
		if _, ok, _ := c.Lookup(f, nil); ok {
			t.Fatalf("%s: hit before insert", path)
		}
		var model []bool
		if want == sat.Sat {
			model = make([]bool, f.NumVars())
			for v := range model {
				model[v] = s.ModelBool(sat.PosLit(sat.Var(v)))
			}
		}
		c.Insert(f, nil, Verdict{Status: want, Model: model})
	}

	// Warm pass over re-parsed formulas: every lookup must hit with
	// the direct verdict, and Sat models must satisfy the formula.
	for _, d := range direct {
		f := parseDIMACSFormula(t, d.file)
		v, ok, _ := c.Lookup(f, nil)
		if !ok {
			t.Fatalf("%s: no hit on warm pass", d.file)
		}
		if v.Status != d.status {
			t.Fatalf("%s: cached verdict %v, direct %v", d.file, v.Status, d.status)
		}
		if v.Status == sat.Sat && !modelSatisfies(f, v) {
			t.Fatalf("%s: cached model does not satisfy the formula", d.file)
		}
	}
	st := c.Stats()
	if st.Hits != int64(len(files)) || st.Misses != int64(len(files)) {
		t.Fatalf("stats = %+v, want %d hits and misses", st, len(files))
	}
}

// modelSatisfies replays the formula into a solver with the model
// asserted as units: the cached model is valid iff that is Sat.
func modelSatisfies(f *cnf.Formula, v Verdict) bool {
	s := sat.New()
	f.LoadInto(s)
	assumps := make([]sat.Lit, f.NumVars())
	for i := range assumps {
		assumps[i] = sat.MkLit(sat.Var(i), !v.LitTrue(sat.PosLit(sat.Var(i))))
	}
	return s.Solve(assumps...) == sat.Sat
}
