// Package seq extends the combinational ECO engine to sequential
// netlists (circuits with dff gates) — the direction the paper points
// to via its reference [10] ("the proposed combinational ECO solution
// can be extended to be sequential").
//
// Two constructions are provided:
//
//   - ToCombinational applies the classical state-blind reduction:
//     every latch output becomes a pseudo primary input and every
//     latch input a pseudo primary output, turning the sequential ECO
//     into a combinational one over the transition relation. This is
//     sound (a patch valid for every state is valid for every
//     reachable state) but may be pessimistic when the fix is only
//     needed on reachable states.
//
//   - Unroll expands the circuit over k time frames (initial state
//     zero), which supports bounded sequential equivalence checking
//     of the patched design.
package seq

import (
	"context"
	"fmt"

	"ecopatch/internal/aig"
	"ecopatch/internal/cec"
	"ecopatch/internal/eco"
	"ecopatch/internal/netlist"
)

// Latches returns the dff gates of a netlist in declaration order.
func Latches(n *netlist.Netlist) []netlist.Gate {
	var out []netlist.Gate
	for _, g := range n.Gates {
		if g.Kind == netlist.GateDff {
			out = append(out, g)
		}
	}
	return out
}

// IsSequential reports whether the netlist contains latches.
func IsSequential(n *netlist.Netlist) bool { return len(Latches(n)) > 0 }

// ToCombinational rewrites a sequential netlist into its transition
// netlist: each dff (q, d) is removed; q joins the inputs and a fresh
// output q$next buffers d. Combinational logic is untouched, so ECO
// target points survive the rewrite.
func ToCombinational(n *netlist.Netlist) (*netlist.Netlist, error) {
	out := &netlist.Netlist{
		Name:    n.Name + "_comb",
		Inputs:  append([]string(nil), n.Inputs...),
		Outputs: append([]string(nil), n.Outputs...),
		Wires:   append([]string(nil), n.Wires...),
	}
	for _, g := range n.Gates {
		if g.Kind != netlist.GateDff {
			out.Gates = append(out.Gates, g)
			continue
		}
		q, d := g.Out, g.Ins[0]
		out.Inputs = append(out.Inputs, q)
		next := q + "$next"
		out.Outputs = append(out.Outputs, next)
		out.Gates = append(out.Gates, netlist.Gate{
			Kind: netlist.GateBuf, Out: next, Ins: []string{d},
		})
	}
	// q was declared as a wire; it is an input now.
	latchQ := make(map[string]bool)
	for _, g := range Latches(n) {
		latchQ[g.Out] = true
	}
	wires := out.Wires[:0]
	for _, w := range out.Wires {
		if !latchQ[w] {
			wires = append(wires, w)
		}
	}
	out.Wires = wires
	return out, out.Validate()
}

// Unroll builds the k-frame combinational expansion of a sequential
// netlist as an AIG: frame-f inputs are fresh PIs named
// "<in>@<f>", frame-f outputs become POs "<out>@<f>", and latches are
// initialized to zero in frame 0. Target points (t_* wires) become
// per-frame PIs "<t>@<f>".
func Unroll(n *netlist.Netlist, frames int) (*aig.AIG, error) {
	if frames < 1 {
		return nil, fmt.Errorf("seq: frames must be >= 1")
	}
	comb, err := ToCombinational(n)
	if err != nil {
		return nil, err
	}
	res, err := netlist.ToAIG(comb)
	if err != nil {
		return nil, err
	}
	latches := Latches(n)
	poIndex := make(map[string]int, res.G.NumPOs())
	for i := 0; i < res.G.NumPOs(); i++ {
		poIndex[res.G.POName(i)] = i
	}

	u := aig.New()
	// State edges carried between frames; zero-initialized.
	state := make([]aig.Lit, len(latches))
	for i := range state {
		state[i] = aig.ConstFalse
	}
	for f := 0; f < frames; f++ {
		piMap := make([]aig.Lit, res.G.NumPIs())
		for i := 0; i < res.G.NumPIs(); i++ {
			name := res.G.PIName(i)
			if li := latchIndex(latches, name); li >= 0 {
				piMap[i] = state[li]
			} else {
				piMap[i] = u.AddPI(fmt.Sprintf("%s@%d", name, f))
			}
		}
		roots := make([]aig.Lit, res.G.NumPOs())
		for i := range roots {
			roots[i] = res.G.PO(i)
		}
		moved := aig.Transfer(u, res.G, piMap, roots)
		for li, g := range latches {
			state[li] = moved[poIndex[g.Out+"$next"]]
		}
		for _, o := range n.Outputs {
			u.AddPO(fmt.Sprintf("%s@%d", o, f), moved[poIndex[o]])
		}
	}
	return u, nil
}

func latchIndex(latches []netlist.Gate, q string) int {
	for i, g := range latches {
		if g.Out == q {
			return i
		}
	}
	return -1
}

// BoundedCEC checks sequential equivalence of two latch-compatible
// netlists over k frames from the all-zero initial state.
func BoundedCEC(a, b *netlist.Netlist, frames int) (cec.Result, error) {
	ua, err := Unroll(a, frames)
	if err != nil {
		return cec.Result{}, err
	}
	ub, err := Unroll(b, frames)
	if err != nil {
		return cec.Result{}, err
	}
	return cec.CheckAIGs(ua, ub)
}

// Solve runs the sequential ECO flow: both netlists are reduced to
// their transition netlists (state-blind), the combinational engine
// computes the patches, and the patched sequential design is
// re-checked by bounded equivalence over verifyFrames frames.
//
// The implementation and specification must have the same latch set
// (matching q names); the patch may use latch outputs as support
// signals — they are ordinary, weighted divisors of the transition
// netlist.
func Solve(inst *eco.Instance, opt eco.Options, verifyFrames int) (*eco.Result, error) {
	return SolveContext(context.Background(), inst, opt, verifyFrames)
}

// SolveContext is Solve under a context: the deadline/cancellation is
// forwarded to the combinational engine (see eco.SolveContext).
func SolveContext(ctx context.Context, inst *eco.Instance, opt eco.Options, verifyFrames int) (*eco.Result, error) {
	if err := checkLatchCompatible(inst.Impl, inst.Spec); err != nil {
		return nil, err
	}
	combImpl, err := ToCombinational(inst.Impl)
	if err != nil {
		return nil, err
	}
	combSpec, err := ToCombinational(inst.Spec)
	if err != nil {
		return nil, err
	}
	// The q$next pseudo-outputs are buffers of the latch-input
	// signals; give them the same cost so support selection prefers
	// the real signal name, and map any residual uses back afterwards.
	weights := netlist.NewWeights()
	for k, v := range inst.Weights.Costs {
		weights.Set(k, v)
	}
	weights.Default = inst.Weights.Default
	nextToD := make(map[string]string)
	for _, g := range Latches(inst.Impl) {
		if netlist.IsConstToken(g.Ins[0]) {
			continue
		}
		nextToD[g.Out+"$next"] = g.Ins[0]
		weights.Set(g.Out+"$next", inst.Weights.Cost(g.Ins[0]))
	}
	combInst := &eco.Instance{
		Name:    inst.Name + "_seq",
		Impl:    combImpl,
		Spec:    combSpec,
		Weights: weights,
	}
	res, err := eco.SolveContext(ctx, combInst, opt)
	if err != nil {
		return nil, err
	}
	if res.Patch != nil {
		res.Patch = renameInputs(res.Patch, nextToD)
		for i := range res.Patches {
			for j, s := range res.Patches[i].Support {
				if d, ok := nextToD[s]; ok {
					res.Patches[i].Support[j] = d
				}
			}
		}
	}
	if !res.Feasible || !res.Verified || verifyFrames < 1 {
		return res, nil
	}
	// Splice the patch into the sequential implementation and check
	// bounded equivalence as an independent end-to-end validation.
	patched, err := splicePatch(inst.Impl, res.Patch)
	if err != nil {
		return nil, err
	}
	bc, err := BoundedCEC(patched, inst.Spec, verifyFrames)
	if err != nil {
		return nil, err
	}
	if !bc.Equivalent {
		return nil, fmt.Errorf("seq: patched design differs within %d frames (transition-level verification passed; this indicates an engine bug)", verifyFrames)
	}
	return res, nil
}

func checkLatchCompatible(a, b *netlist.Netlist) error {
	la, lb := Latches(a), Latches(b)
	if len(la) != len(lb) {
		return fmt.Errorf("seq: latch count mismatch: %d vs %d", len(la), len(lb))
	}
	seen := make(map[string]bool, len(la))
	for _, g := range la {
		seen[g.Out] = true
	}
	for _, g := range lb {
		if !seen[g.Out] {
			return fmt.Errorf("seq: spec latch %q missing in implementation", g.Out)
		}
	}
	return nil
}

// splicePatch inlines a patch module (inputs = impl signals, outputs
// = t_* targets) into the sequential implementation netlist.
func splicePatch(impl *netlist.Netlist, patch *netlist.Netlist) (*netlist.Netlist, error) {
	out := &netlist.Netlist{
		Name:    impl.Name + "_patched",
		Inputs:  append([]string(nil), impl.Inputs...),
		Outputs: append([]string(nil), impl.Outputs...),
		Wires:   append([]string(nil), impl.Wires...),
		Gates:   append([]netlist.Gate(nil), impl.Gates...),
	}
	// Patch-internal wires are prefixed to avoid collisions; patch
	// inputs refer to impl signals directly; patch outputs drive the
	// formerly undriven t_* wires.
	isInput := make(map[string]bool, len(patch.Inputs))
	for _, in := range patch.Inputs {
		isInput[in] = true
	}
	rename := func(s string) string {
		if netlist.IsConstToken(s) || isInput[s] {
			return s
		}
		for _, o := range patch.Outputs {
			if s == o {
				return s // targets keep their names
			}
		}
		return "eco_patch$" + s
	}
	for _, w := range patch.Wires {
		out.Wires = append(out.Wires, rename(w))
	}
	for _, g := range patch.Gates {
		ng := netlist.Gate{Kind: g.Kind, Name: g.Name, Out: rename(g.Out)}
		for _, in := range g.Ins {
			ng.Ins = append(ng.Ins, rename(in))
		}
		out.Gates = append(out.Gates, ng)
	}
	return out, out.Validate()
}

// renameInputs rewrites patch-module input names through the mapping,
// merging duplicates that arise when both an alias and its source were
// inputs.
func renameInputs(patch *netlist.Netlist, mapping map[string]string) *netlist.Netlist {
	if len(mapping) == 0 {
		return patch
	}
	rn := func(s string) string {
		if d, ok := mapping[s]; ok {
			return d
		}
		return s
	}
	out := &netlist.Netlist{
		Name:    patch.Name,
		Outputs: append([]string(nil), patch.Outputs...),
		Wires:   append([]string(nil), patch.Wires...),
	}
	seen := make(map[string]bool)
	for _, in := range patch.Inputs {
		nm := rn(in)
		if !seen[nm] {
			seen[nm] = true
			out.Inputs = append(out.Inputs, nm)
		}
	}
	for _, g := range patch.Gates {
		ng := netlist.Gate{Kind: g.Kind, Name: g.Name, Out: g.Out}
		for _, in := range g.Ins {
			ng.Ins = append(ng.Ins, rn(in))
		}
		out.Gates = append(out.Gates, ng)
	}
	return out
}
