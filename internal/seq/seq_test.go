package seq

import (
	"testing"

	"ecopatch/internal/eco"
	"ecopatch/internal/netlist"
)

// counterSrc is a 2-bit counter with enable: q1q0 increments when en.
const counterSrc = `
module ctr (en, q0o, q1o);
input en;
output q0o, q1o;
wire q0, q1, d0, d1, tgl1;
dff (q0, d0);
dff (q1, d1);
xor (d0, q0, en);
and (tgl1, q0, en);
xor (d1, q1, tgl1);
buf (q0o, q0);
buf (q1o, q1);
endmodule`

func parse(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	n, err := netlist.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestLatchesAndIsSequential(t *testing.T) {
	n := parse(t, counterSrc)
	ls := Latches(n)
	if len(ls) != 2 || !IsSequential(n) {
		t.Fatalf("latches = %d", len(ls))
	}
	comb := parse(t, `
module m (a, f);
input a;
output f;
not (f, a);
endmodule`)
	if IsSequential(comb) {
		t.Fatal("combinational circuit reported sequential")
	}
}

func TestToCombinationalShape(t *testing.T) {
	n := parse(t, counterSrc)
	c, err := ToCombinational(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 1+2 {
		t.Fatalf("inputs = %v", c.Inputs)
	}
	if len(c.Outputs) != 2+2 {
		t.Fatalf("outputs = %v", c.Outputs)
	}
	res, err := netlist.ToAIG(c)
	if err != nil {
		t.Fatal(err)
	}
	// Transition semantics: next q0 = q0^en; next q1 = q1^(q0&en).
	for m := 0; m < 8; m++ {
		en := m&1 == 1
		q0 := m&2 == 2
		q1 := m&4 == 4
		out := res.G.Eval([]bool{en, q0, q1})
		// Outputs order: q0o, q1o, q0$next, q1$next.
		if out[0] != q0 || out[1] != q1 {
			t.Fatalf("visible outputs wrong at %d", m)
		}
		if out[2] != (q0 != en) {
			t.Fatalf("q0$next wrong at %d", m)
		}
		if out[3] != (q1 != (q0 && en)) {
			t.Fatalf("q1$next wrong at %d", m)
		}
	}
}

// simulateCounter computes the expected counter outputs per frame.
func simulateCounter(enables []bool) [][2]bool {
	q0, q1 := false, false
	out := make([][2]bool, len(enables))
	for f, en := range enables {
		out[f] = [2]bool{q0, q1} // outputs observe the current state
		nq0 := q0 != en
		nq1 := q1 != (q0 && en)
		q0, q1 = nq0, nq1
	}
	return out
}

func TestUnrollMatchesSimulation(t *testing.T) {
	n := parse(t, counterSrc)
	const frames = 5
	u, err := Unroll(n, frames)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumPIs() != frames || u.NumPOs() != 2*frames {
		t.Fatalf("unroll shape: %d PIs, %d POs", u.NumPIs(), u.NumPOs())
	}
	for pattern := 0; pattern < 1<<frames; pattern++ {
		in := make([]bool, frames)
		for f := range in {
			in[f] = pattern>>uint(f)&1 == 1
		}
		want := simulateCounter(in)
		out := u.Eval(in)
		for f := 0; f < frames; f++ {
			if out[2*f] != want[f][0] || out[2*f+1] != want[f][1] {
				t.Fatalf("pattern %05b frame %d: got (%v,%v) want %v",
					pattern, f, out[2*f], out[2*f+1], want[f])
			}
		}
	}
}

func TestBoundedCEC(t *testing.T) {
	a := parse(t, counterSrc)
	b := parse(t, counterSrc)
	res, err := BoundedCEC(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("identical counters not equivalent")
	}
	// A counter whose second bit toggles unconditionally differs.
	c := parse(t, `
module ctr (en, q0o, q1o);
input en;
output q0o, q1o;
wire q0, q1, d0, d1;
dff (q0, d0);
dff (q1, d1);
xor (d0, q0, en);
not (d1, q1);
buf (q0o, q0);
buf (q1o, q1);
endmodule`)
	res, err = BoundedCEC(a, c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("different counters reported equivalent")
	}
}

func TestSequentialECO(t *testing.T) {
	// Implementation: the toggle condition of q1 was cut out (t_0).
	impl := parse(t, `
module ctr (en, q0o, q1o);
input en;
output q0o, q1o;
wire q0, q1, d0, d1;
dff (q0, d0);
dff (q1, d1);
xor (d0, q0, en);
xor (d1, q1, t_0);
buf (q0o, q0);
buf (q1o, q1);
endmodule`)
	spec := parse(t, counterSrc)
	w := netlist.NewWeights()
	for _, s := range []string{"en", "q0", "q1", "d0", "d1"} {
		w.Set(s, 5)
	}
	// The output buffers alias the state bits; price them up so the
	// canonical names win dedup.
	w.Set("q0o", 6)
	w.Set("q1o", 6)
	inst := &eco.Instance{Name: "seqctr", Impl: impl, Spec: spec, Weights: w}
	res, err := Solve(inst, eco.DefaultOptions(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || !res.Verified {
		t.Fatalf("feasible=%v verified=%v", res.Feasible, res.Verified)
	}
	// The patch computes q0&en; valid supports draw from the
	// transition-netlist signals {q0, en, d0} (d0 = q0^en combines
	// with either input).
	if len(res.Patches) != 1 {
		t.Fatalf("patches = %d", len(res.Patches))
	}
	for _, s := range res.Patches[0].Support {
		if s != "q0" && s != "en" && s != "d0" {
			t.Fatalf("unexpected support signal %q", s)
		}
	}
}

func TestSequentialECOInfeasible(t *testing.T) {
	// The target cannot influence q0o at all, but q0's next-state
	// function differs: infeasible.
	impl := parse(t, `
module m (en, q0o);
input en;
output q0o;
wire q0, d0, dead;
dff (q0, d0);
buf (d0, en);
and (dead, t_0, en);
buf (q0o, q0);
endmodule`)
	spec := parse(t, `
module m (en, q0o);
input en;
output q0o;
wire q0, d0;
dff (q0, d0);
not (d0, en);
buf (q0o, q0);
endmodule`)
	inst := &eco.Instance{
		Name: "inf", Impl: impl, Spec: spec, Weights: netlist.NewWeights(),
	}
	res, err := Solve(inst, eco.DefaultOptions(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("unfixable sequential change reported feasible")
	}
}

func TestLatchMismatchRejected(t *testing.T) {
	impl := parse(t, counterSrc)
	spec := parse(t, `
module ctr (en, q0o, q1o);
input en;
output q0o, q1o;
wire q0, d0;
dff (q0, d0);
xor (d0, q0, en);
buf (q0o, q0);
buf (q1o, q0);
endmodule`)
	inst := &eco.Instance{
		Name: "mismatch", Impl: impl, Spec: spec, Weights: netlist.NewWeights(),
	}
	if _, err := Solve(inst, eco.DefaultOptions(), 2); err == nil {
		t.Fatal("latch mismatch not rejected")
	}
}
