#!/bin/sh
# Tier-1 verification: build, vet, full tests, and a short race pass
# over the concurrency layer (solver interrupts, parallel bench
# harness). Run from the repository root.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race -short ./...

# Focused race pass over the intra-solve parallelism paths: the SAT
# portfolio (racing members + clause exchange), sharded/batched
# equivalence checking, the parallel engine routes, and the daemon's
# CPU-slot semaphore. These also run under `-race -short ./...` above;
# the explicit -count=1 run defeats test caching so the parallel
# machinery is always exercised fresh.
go test -race -count=1 -run 'Portfolio|Parallel|Shard|Slot|CPUSlots' \
	./internal/sat ./internal/cec ./internal/eco ./internal/server

# Focused race pass over the cache layer: the shared solve/window
# stores (hit/miss/collision/eviction under concurrent access), the
# engine determinism differentials, and the daemon's dedup paths.
go test -race -short -count=1 ./internal/cache
go test -race -count=1 -run 'Cache|Dedup|Retry|Warm' \
	./internal/eco ./internal/server ./internal/bench

# Focused race pass over the CNF preprocessing layer: BVE + model
# reconstruction, subsumption/strengthening, vivification, and the
# prep-on differentials through the engine and the equivalence
# checker.
go test -race -count=1 -run 'Prep|Reconstruct|Vivif|Subsum|Elim' \
	./internal/sat ./internal/cnf ./internal/eco ./internal/cec

# Focused race pass over the bit-parallel simulation layer: the
# pattern/model banks, the evaluator/simulator rewrites, and the
# sim-on engine differentials (verdict/cost parity, serial and cache
# determinism, options-key separation).
go test -race -count=1 ./internal/sim
go test -race -count=1 -run 'Sim|Evaluator|Sweep' \
	./internal/aig ./internal/eco ./internal/cec

# Focused race pass over the DAG-aware rewriting layer: the NPN
# canonicalizer and replacement library, the rewriting pass itself
# (equivalence, determinism, shrink differentials), and the rewrite-on
# engine/cec/daemon differentials (verdict/cost parity, cache-key
# separation, counterexample readback). -short skips the exhaustive
# 65536-function recipe sweep — single-threaded table math the full
# non-race suite above already runs; internal/bench's rewrite parity
# test (pure solving, also covered above) stays out for the same
# reason.
go test -race -short -count=1 -run 'NPN|Rewrite|Cut|Isop|Optimize' \
	./internal/aig ./internal/eco ./internal/cec ./internal/server

# Focused race pass over the persistence layer: the segment log
# (group-commit fsync, rotation, compaction vs concurrent appends),
# torn-tail recovery, the daemon's replay/restore paths, and the
# persisted-cache determinism differential.
go test -race -count=1 ./internal/persist
go test -race -count=1 -run 'Persist|Restart|Recover|Torn|Compact|List' \
	./internal/server ./internal/eco

# Optional, non-gating: microbenchmark sweep (scripts/bench.sh writes
# BENCH_sat.txt / BENCH_sat.json) and a short fuzz smoke over the
# preprocessing model-reconstruction stack. Enable with BENCH=1.
if [ "${BENCH:-0}" = "1" ]; then
	./scripts/bench.sh || echo "bench.sh failed (non-gating)"
	go test -run FuzzPrepReconstruction -fuzz FuzzPrepReconstruction \
		-fuzztime=10s ./internal/sat \
		|| echo "prep fuzz smoke failed (non-gating)"
	go test -run FuzzPersistDecode -fuzz FuzzPersistDecode \
		-fuzztime=10s ./internal/persist \
		|| echo "persist fuzz smoke failed (non-gating)"
	go test -run FuzzSimWords -fuzz FuzzSimWords \
		-fuzztime=10s ./internal/aig \
		|| echo "sim fuzz smoke failed (non-gating)"
	go test -run FuzzRewrite -fuzz FuzzRewrite \
		-fuzztime=10s ./internal/aig \
		|| echo "rewrite fuzz smoke failed (non-gating)"
fi

# Optional, gating when enabled: end-to-end ecod daemon smoke tests —
# serve/submit/metrics/drain, then the crash-safety pass (kill -9,
# restart on the same -data-dir, torn-tail recovery). Enable with
# SMOKE=1.
if [ "${SMOKE:-0}" = "1" ]; then
	./scripts/smoke_server.sh
	./scripts/smoke_persist.sh
fi
